(* Quickstart: index an XML snippet and run ELCA / SLCA / top-K keyword
   queries through the public API.

     dune exec examples/quickstart.exe                                  *)

let bibliography =
  {|<bib>
      <book year="1999">
        <title>Modern Information Retrieval</title>
        <authors><author>baeza yates</author><author>ribeiro neto</author></authors>
        <topics>ranking keyword retrieval models</topics>
      </book>
      <book year="2003">
        <title>XRank ranked keyword search over XML documents</title>
        <authors><author>guo</author><author>shao</author></authors>
        <topics>xml keyword search ranking</topics>
      </book>
      <book year="2005">
        <title>Efficient keyword search for smallest LCAs in XML databases</title>
        <authors><author>xu</author><author>papakonstantinou</author></authors>
        <topics>xml slca algorithms</topics>
      </book>
      <proceedings>
        <conference>icde</conference>
        <paper><title>supporting top-k keyword search in xml databases</title></paper>
        <paper><title>join processing in relational databases</title></paper>
      </proceedings>
    </bib>|}

let () =
  (* 1. Build an engine: parse, label (Dewey + JDewey) and index. *)
  let eng = Xk_core.Engine.of_string bibliography in

  let show title hits =
    Fmt.pr "@.%s@." title;
    if hits = [] then Fmt.pr "  (no results)@.";
    List.iteri
      (fun i h -> Fmt.pr "  %d. %a@." (i + 1) (Xk_core.Engine.pp_hit eng) h)
      hits
  in

  (* 2. Complete result sets under both semantics.  Results are the
     lowest elements that contain every keyword (after the ELCA
     exclusion / SLCA minimality pruning), ranked by damped tf-idf. *)
  show "ELCA results for {xml, keyword}:"
    (Xk_core.Engine.query eng [ "xml"; "keyword" ]);
  show "SLCA results for {xml, keyword}:"
    (Xk_core.Engine.query ~semantics:Xk_core.Engine.Slca eng [ "xml"; "keyword" ]);

  (* 3. The same query through every implemented algorithm - the paper's
     competitors produce identical result sets, by construction. *)
  let q = [ "keyword"; "search"; "databases" ] in
  List.iter
    (fun (name, algorithm) ->
      let hits = Xk_core.Engine.query ~algorithm eng q in
      Fmt.pr "@.%s finds %d results for {%s}@." name (List.length hits)
        (String.concat " " q);
      show "" hits)
    [
      ("join-based (this paper)", Xk_core.Engine.Join_based);
      ("stack-based baseline", Xk_core.Engine.Stack_based);
      ("index-based baseline", Xk_core.Engine.Index_based);
    ];

  (* 4. Top-K: ask for the best two results only. *)
  show "top-2 for {xml, search} via the join-based top-K algorithm:"
    (Xk_core.Engine.query_topk eng [ "xml"; "search" ] ~k:2)
