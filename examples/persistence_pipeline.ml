(* The storage pipeline end to end: generate a corpus, persist both index
   forms (raw postings for fast reload, the column store for lazy
   column-at-a-time query I/O), reload each, and verify the three engines
   agree on a query.

     dune exec examples/persistence_pipeline.exe                        *)

let time name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Fmt.pr "%-34s %6.1f ms@." name ((Unix.gettimeofday () -. t0) *. 1000.);
  r

let () =
  let dir = Filename.get_temp_dir_name () in
  let xml_path = Filename.concat dir "xk_demo_corpus.xml" in
  let idx_path = Filename.concat dir "xk_demo_corpus.idx" in
  let col_path = Filename.concat dir "xk_demo_corpus.col" in

  (* 1. Generate and serialize a corpus. *)
  let corpus =
    time "generate DBLP-like corpus" (fun () ->
        Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled 0.3))
  in
  time "write XML" (fun () -> Xk_xml.Xml_print.to_file xml_path corpus.doc);

  (* 2. Parse + label + tokenize once; persist both index forms. *)
  let doc = time "parse XML" (fun () -> Xk_xml.Xml_parser.parse_file_exn xml_path) in
  let label = time "label (Dewey + JDewey)" (fun () -> Xk_encoding.Labeling.label doc) in
  let idx = time "build index (tokenize)" (fun () -> Xk_index.Index.build label) in
  time "save raw postings" (fun () -> Xk_index.Index_io.save idx idx_path);
  time "save column store" (fun () -> Xk_index.Jstore.write idx col_path);
  Fmt.pr "  postings file: %.2f MB, column store: %.2f MB@."
    (float_of_int (Xk_index.Index_io.file_size idx_path) /. 1048576.)
    (float_of_int (Xk_index.Jstore.file_size col_path) /. 1048576.);

  (* 3. Reload through both paths. *)
  let reloaded =
    time "reload raw postings" (fun () ->
        Xk_index.Index_io.load (Xk_encoding.Labeling.label doc) idx_path)
  in
  let store = time "open column store" (fun () -> Xk_index.Jstore.open_file col_path) in

  (* 4. Same query, three engines. *)
  let q = List.nth corpus.correlated_queries 2 in
  Fmt.pr "@.query {%s}@." (String.concat " " q);
  let from_memory = Xk_core.Engine.of_index idx in
  let from_file = Xk_core.Engine.of_index reloaded in
  let h1 = Xk_core.Engine.query from_memory q in
  let h2 = Xk_core.Engine.query from_file q in
  Fmt.pr "  in-memory engine:   %d results@." (List.length h1);
  Fmt.pr "  reloaded engine:    %d results (%s)@." (List.length h2)
    (if List.map (fun (h : Xk_baselines.Hit.t) -> h.node) h1
        = List.map (fun (h : Xk_baselines.Hit.t) -> h.node) h2
     then "identical"
     else "MISMATCH!");

  (* The column store runs the join over lazily decoded columns. *)
  let ids = List.map (fun w -> Option.get (Xk_index.Jstore.term_id store w)) q in
  Xk_index.Jstore.reset_stats store;
  let lists = Array.of_list (List.map (Xk_index.Jstore.jlist store) ids) in
  let h3 =
    Xk_core.Join_query.run lists (Xk_index.Index.damping idx)
      Xk_core.Join_query.Elca
  in
  let s = Xk_index.Jstore.stats store in
  let stored =
    List.fold_left (fun a id -> a + Xk_index.Jstore.term_bytes store id) 0 ids
  in
  Fmt.pr "  column-store engine: %d results; decoded %d of %d bytes (%d columns)@."
    (List.length h3) s.bytes_decoded stored s.columns_decoded;

  List.iter Sys.remove [ xml_path; idx_path; col_path ]
