(* Top-K processing demo: shows the early-termination behaviour of the
   join-based top-K algorithm (Section IV) against complete evaluation and
   RDIL, with operator statistics - pulled entries, processed columns,
   early-exit level - and the effect of the tightened star-join threshold.

     dune exec examples/topk_demo.exe                                   *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let () =
  Fmt.pr "generating DBLP-like corpus ...@.";
  let corpus = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled 1.0) in
  let eng = Xk_core.Engine.create corpus.doc in
  let idx = Xk_core.Engine.index eng in
  let damping = Xk_index.Index.damping idx in

  let demo label q =
    Fmt.pr "@.=== query {%s} (%s) ===@." (String.concat " " q) label;
    let total = List.length (Xk_core.Engine.query eng q) in
    Fmt.pr "complete result set: %d ELCAs@." total;

    (* Join-based top-K with statistics. *)
    let ids = Xk_index.Index.term_ids_exn idx q in
    Xk_index.Index.warm idx ids;
    let slists = Array.of_list (List.map (Xk_index.Index.score_list idx) ids) in
    let rows =
      List.fold_left
        (fun a id -> a + Xk_index.Index.df idx id)
        0 ids
    in
    let stats = Xk_core.Topk_keyword.new_stats () in
    let hits, ms =
      time (fun () -> Xk_core.Topk_keyword.topk ~stats slists damping ~k:10)
    in
    Fmt.pr
      "top-10 join:  %.2f ms; %d sorted accesses (lists hold %d rows), %d columns, early exit at level %d@."
      ms stats.pulled rows stats.columns stats.early_exit_level;
    List.iteri
      (fun i (h : Xk_core.Topk_keyword.hit) ->
        if i < 3 then Fmt.pr "   #%d level %d score %.4f@." (i + 1) h.level h.score)
      hits;

    (* Competitors. *)
    let _, ms_complete =
      time (fun () ->
          Xk_core.Engine.query_topk ~algorithm:Xk_core.Engine.Complete_then_sort
            eng q ~k:10)
    in
    let rstats = { Xk_baselines.Rdil.pulled = 0; verified = 0 } in
    let _, ms_rdil =
      time (fun () -> Xk_baselines.Rdil.topk ~stats:rstats idx ids ~k:10)
    in
    Fmt.pr "complete+sort: %.2f ms@." ms_complete;
    Fmt.pr "RDIL:          %.2f ms; pulled %d, verified %d candidates@." ms_rdil
      rstats.pulled rstats.verified;

    (* Threshold ablation: the paper's bound vs HRJN's. *)
    let s_tight = Xk_core.Topk_keyword.new_stats () in
    ignore
      (Xk_core.Topk_keyword.topk ~stats:s_tight ~threshold:Xk_core.Topk_keyword.Tight
         slists damping ~k:10);
    let s_classic = Xk_core.Topk_keyword.new_stats () in
    ignore
      (Xk_core.Topk_keyword.topk ~stats:s_classic
         ~threshold:Xk_core.Topk_keyword.Classic slists damping ~k:10);
    Fmt.pr "threshold: tight pulls %d vs classic pulls %d@." s_tight.pulled
      s_classic.pulled
  in

  (* Correlated keywords: results are plentiful and deep - the top-K join
     terminates long before the lists are exhausted. *)
  demo "correlated" (List.nth corpus.correlated_queries 2);
  (* Uncorrelated keywords of the same frequency: few results, so the
     top-K join degenerates to scanning (the Figure 10(a) regime). *)
  demo "uncorrelated" (List.nth corpus.uncorrelated_queries 2);

  (* The hybrid planner routes between the two automatically from the
     join-cardinality estimate (Section V-D). *)
  Fmt.pr "@.=== hybrid planner ===@.";
  List.iter
    (fun q ->
      let jls =
        Array.of_list
          (List.map (Xk_index.Index.jlist idx) (Xk_index.Index.term_ids_exn idx q))
      in
      let label = Xk_core.Engine.label eng in
      let level_width l = Xk_encoding.Labeling.level_width label ~depth:l in
      let est = Xk_core.Hybrid.estimate_results jls ~level_width in
      let choice =
        match Xk_core.Hybrid.choose jls ~level_width ~k:10 with
        | Xk_core.Hybrid.Use_topk -> "top-K join"
        | Xk_core.Hybrid.Use_complete -> "complete join"
      in
      Fmt.pr "{%s}: estimated %.0f results -> %s@." (String.concat " " q) est
        choice)
    [
      List.nth corpus.correlated_queries 2;
      List.nth corpus.uncorrelated_queries 0;
    ]
