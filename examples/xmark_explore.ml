(* Deep-tree search over an XMark-like auction corpus: the recursive
   parlist/listitem structure exercises deep JDewey columns, and the
   ELCA / SLCA difference becomes visible when keyword co-occurrences
   nest.

     dune exec examples/xmark_explore.exe                               *)

let () =
  Fmt.pr "generating XMark-like corpus ...@.";
  let corpus = Xk_datagen.Xmark_gen.generate (Xk_datagen.Xmark_gen.scaled 1.0) in
  let eng = Xk_core.Engine.create corpus.doc in
  let idx = Xk_core.Engine.index eng in
  let label = Xk_core.Engine.label eng in
  Fmt.pr "%d items, %d nodes, tree height %d@." corpus.total_items
    (Xk_encoding.Labeling.node_count label)
    (Xk_encoding.Labeling.height label);

  (* A nesting example built by hand: a parlist item about "vintage clock"
     inside a description that also mentions both words at a higher
     level.  ELCA keeps both levels (the outer one has its own witnesses);
     SLCA keeps only the innermost. *)
  let nested =
    Xk_core.Engine.of_string
      {|<item>
          <description>
            <style>vintage finish</style>
            <kind>wall clock</kind>
            <parlist>
              <listitem><text>vintage brass clock works</text></listitem>
              <listitem><text>shipping worldwide</text></listitem>
            </parlist>
          </description>
        </item>|}
  in
  let show eng title hits =
    Fmt.pr "%s@." title;
    List.iteri
      (fun i h -> Fmt.pr "  %d. %a@." (i + 1) (Xk_core.Engine.pp_hit eng) h)
      hits
  in
  Fmt.pr "@.nesting example for {vintage, clock}:@.";
  show nested "  ELCA (keeps the outer description - it has its own witnesses):"
    (Xk_core.Engine.query nested [ "vintage"; "clock" ]);
  show nested "  SLCA (innermost only):"
    (Xk_core.Engine.query ~semantics:Xk_core.Engine.Slca nested
       [ "vintage"; "clock" ]);

  (* Planted correlated terms over item descriptions. *)
  List.iter
    (fun q ->
      Fmt.pr "@.correlated query {%s}:@." (String.concat " " q);
      let hits = Xk_core.Engine.query eng q in
      Fmt.pr "  %d ELCAs; deepest results:@." (List.length hits);
      let deepest =
        List.sort
          (fun (a : Xk_baselines.Hit.t) b ->
            Int.compare
              (Xk_encoding.Labeling.depth label b.node)
              (Xk_encoding.Labeling.depth label a.node))
          hits
      in
      List.iteri
        (fun i (h : Xk_baselines.Hit.t) ->
          if i < 3 then
            Fmt.pr "  depth %d: %a@."
              (Xk_encoding.Labeling.depth label h.node)
              (Xk_core.Engine.pp_hit eng) h)
        deepest;
      show eng "  top-3 by score:" (Xk_core.Engine.query_topk eng q ~k:3))
    corpus.correlated_queries;

  (* Column statistics: how deep the inverted lists reach on this corpus
     versus the shallow DBLP shape. *)
  Fmt.pr "@.per-level node counts:@.";
  for d = 1 to Xk_encoding.Labeling.height label do
    Fmt.pr "  level %2d: %d nodes@." d (Xk_encoding.Labeling.level_width label ~depth:d)
  done;
  ignore idx
