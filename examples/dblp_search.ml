(* Bibliographic search over a DBLP-like corpus: builds a synthetic corpus
   (papers grouped by conference then year, as in the paper's experimental
   setup), indexes it, and compares all complete-result algorithms on
   frequency-skewed workloads.

     dune exec examples/dblp_search.exe -- [scale]                      *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.3
  in
  Fmt.pr "generating DBLP-like corpus at scale %.2f ...@." scale;
  let corpus = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled scale) in
  let (eng, ms) = time (fun () -> Xk_core.Engine.create corpus.doc) in
  let label = Xk_core.Engine.label eng in
  let idx = Xk_core.Engine.index eng in
  Fmt.pr "indexed %d papers / %d nodes / %d terms in %.0f ms@."
    corpus.total_papers
    (Xk_encoding.Labeling.node_count label)
    (Xk_index.Index.term_count idx)
    ms;

  (* Workload: a frequent keyword plus a rare keyword, as in Figure 9. *)
  let rng = Xk_datagen.Rng.create 7 in
  let high = Xk_workload.Workload.max_df idx in
  let queries =
    Xk_workload.Workload.random_queries rng idx ~k:2 ~high ~low:30 ~n:3
    @ Xk_workload.Workload.equal_freq_queries rng idx ~k:3 ~freq:(high / 8) ~n:2
  in

  List.iter
    (fun q ->
      Fmt.pr "@.query {%s}  (frequencies: %s)@." (String.concat " " q)
        (String.concat ", "
           (List.map
              (fun w ->
                string_of_int
                  (Xk_index.Index.df idx (Option.get (Xk_index.Index.term_id idx w))))
              q));
      (* Materialize every list shape first: timings below are hot-cache,
         as in the paper's experiments. *)
      Xk_index.Index.warm idx (Xk_index.Index.term_ids_exn idx q);
      let reference = ref [] in
      List.iter
        (fun (name, algorithm) ->
          let hits, ms = time (fun () -> Xk_core.Engine.query ~algorithm eng q) in
          Fmt.pr "  %-12s %4d results in %6.2f ms@." name (List.length hits) ms;
          (* All algorithms must agree - a live cross-check. *)
          (match !reference with
          | [] -> reference := Xk_baselines.Hit.nodes hits
          | ref_nodes ->
              if Xk_baselines.Hit.nodes hits <> ref_nodes then
                Fmt.pr "  !!! %s DISAGREES with the join-based results@." name))
        [
          ("join-based", Xk_core.Engine.Join_based);
          ("stack-based", Xk_core.Engine.Stack_based);
          ("index-based", Xk_core.Engine.Index_based);
        ];
      (* Show the top three results. *)
      let top = Xk_core.Engine.query_topk eng q ~k:3 in
      List.iteri
        (fun i h -> Fmt.pr "    top%d %a@." (i + 1) (Xk_core.Engine.pp_hit eng) h)
        top)
    queries;

  (* Context-dependent correlation (Section III-C of the paper): the
     planted correlated pair co-occurs inside papers; the frequency-matched
     uncorrelated pair only co-occurs at conference level, so its results
     sit higher in the tree. *)
  let avg_depth q =
    let hits = Xk_core.Engine.query eng q in
    if hits = [] then 0.
    else
      List.fold_left
        (fun a (h : Xk_baselines.Hit.t) ->
          a +. float_of_int (Xk_encoding.Labeling.depth label h.node))
        0. hits
      /. float_of_int (List.length hits)
  in
  let corr = List.nth corpus.correlated_queries 2 in
  let uncorr = List.nth corpus.uncorrelated_queries 2 in
  Fmt.pr "@.average result depth:@.";
  Fmt.pr "  correlated   {%s}: %.2f@." (String.concat " " corr) (avg_depth corr);
  Fmt.pr "  uncorrelated {%s}: %.2f@." (String.concat " " uncorr) (avg_depth uncorr)
