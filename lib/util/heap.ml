(* Binary max-heap keyed by float priorities, used by the top-K operators
   to hold generated-but-blocked results. *)

type 'a t = {
  mutable keys : float array;
  mutable vals : 'a array;
  mutable len : int;
}

let create () = { keys = [||]; vals = [||]; len = 0 }

let size h = h.len
let is_empty h = h.len = 0

let grow h v =
  let cap = max 8 (2 * Array.length h.keys) in
  let keys = Array.make cap 0. in
  let vals = Array.make cap v in
  Array.blit h.keys 0 keys 0 h.len;
  Array.blit h.vals 0 vals 0 h.len;
  h.keys <- keys;
  h.vals <- vals

let swap h i j =
  let k = h.keys.(i) and v = h.vals.(i) in
  h.keys.(i) <- h.keys.(j);
  h.vals.(i) <- h.vals.(j);
  h.keys.(j) <- k;
  h.vals.(j) <- v

let push h key v =
  if h.len >= Array.length h.keys then grow h v;
  h.keys.(h.len) <- key;
  h.vals.(h.len) <- v;
  let i = ref h.len in
  h.len <- h.len + 1;
  while !i > 0 && h.keys.((!i - 1) / 2) < h.keys.(!i) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek h = if h.len = 0 then None else Some (h.keys.(0), h.vals.(0))

let pop h =
  if h.len = 0 then None
  else begin
    let top = (h.keys.(0), h.vals.(0)) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.keys.(0) <- h.keys.(h.len);
      h.vals.(0) <- h.vals.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.len && h.keys.(l) > h.keys.(!m) then m := l;
        if r < h.len && h.keys.(r) > h.keys.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          swap h !i !m;
          i := !m
        end
      done
    end;
    Some top
  end

let drain h =
  let rec go acc = match pop h with None -> List.rev acc | Some x -> go (x :: acc) in
  go []
