(** Typed error discipline for library code.

    Library modules never call [failwith] (an untyped [Failure] that
    callers cannot match on reliably) and never write bare
    [assert false]; [tools/xklint]'s [typed-error] rule rejects both.
    Instead:

    - precondition violations (caller misuse) raise [Invalid_argument]
      through {!invalid}/{!invalidf}, keeping the conventional exception
      while funnelling every raise through one audited choke point;
    - statically unreachable branches raise {!Unreachable} through
      {!unreachable}/{!unreachablef} with a ["Module.fn: why"] message,
      so an impossible case that does fire identifies itself instead of
      producing an anonymous [Assert_failure]. *)

exception Unreachable of string
(** A branch the surrounding invariants rule out was reached: always a
    bug in this library, never a caller error. *)

val invalid : string -> 'a
(** [invalid msg] raises [Invalid_argument msg]. *)

val invalidf : ('a, unit, string, 'b) format4 -> 'a
(** [invalidf fmt ...] is {!invalid} with a formatted message. *)

val unreachable : string -> 'a
(** [unreachable msg] raises [Unreachable msg].  By convention [msg]
    starts with ["Module.function: "] and states the invariant that was
    violated. *)

val unreachablef : ('a, unit, string, 'b) format4 -> 'a
(** [unreachablef fmt ...] is {!unreachable} with a formatted message. *)
