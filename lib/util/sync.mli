(** Exception-safe mutual exclusion.

    Every critical section in the tree goes through {!with_lock} (or the
    higher-level {!Protected}) so that a raising critical section can
    never leak a held lock.  [tools/xklint]'s [bare-lock] rule enforces
    this: direct [Mutex.lock]/[Mutex.unlock] calls are rejected
    everywhere except inside this module. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
(** [with_lock m f] runs [f ()] with [m] held and releases [m] whether
    [f] returns or raises.  [f] may block on a [Condition.t] associated
    with [m]: [Condition.wait] releases and reacquires the same mutex,
    so the unlock in the exit path stays balanced. *)

(** A value that is only reachable with its private mutex held.

    [Protected.create v] pairs [v] with a fresh mutex; the only access
    path, {!Protected.with_}, runs a function over [v] inside
    {!with_lock}.  Mutating fields of [v] (mutable record fields, a
    [Hashtbl.t], ...) is safe exactly because no caller can observe [v]
    without the lock.  [xklint]'s [shared-state] rule recognizes
    [Protected.create] as a sanctioned wrapper for top-level mutable
    state in domain-crossing libraries. *)
module Protected : sig
  type 'a t

  val create : 'a -> 'a t
  val with_ : 'a t -> ('a -> 'b) -> 'b
end
