(** Binary max-heap keyed by float priorities. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit
val peek : 'a t -> (float * 'a) option
val pop : 'a t -> (float * 'a) option

val drain : 'a t -> (float * 'a) list
(** Pop everything, highest priority first. *)
