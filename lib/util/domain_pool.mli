(** A fixed-size pool of OCaml 5 domains consuming jobs from one shared
    MPMC queue guarded by a [Mutex]/[Condition] pair.

    Producers ({!submit}/{!async}) may run on any domain, including pool
    workers of {e other} pools; results come back through {!future}
    handles.  There is no work stealing: the queue is the single point of
    coordination, which keeps the pool small and obviously correct. *)

type t

val create : ?domains:int -> unit -> t
(** Spawn the worker domains.  [domains] defaults to
    [Domain.recommended_domain_count () - 1] (at least 1, leaving one
    core to the submitting domain).  Raises [Invalid_argument] when
    [domains < 1]. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a fire-and-forget job.  An exception escaping the job is
    discarded (workers never die); use {!async} when the outcome matters.
    Raises [Invalid_argument] after {!shutdown}. *)

(** {1 Futures} *)

type 'a future

val async : t -> (unit -> 'a) -> 'a future
(** Enqueue a job and return a handle to its eventual result. *)

val await : 'a future -> ('a, exn * Printexc.raw_backtrace) result
(** Block until the job finishes.  An exception raised by the job is
    delivered as [Error] with the backtrace captured at the raise site —
    the worker domain itself never dies. *)

val await_exn : 'a future -> 'a
(** Like {!await} but re-raises the job's exception (with its original
    backtrace) in the awaiting domain. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Evaluate [f] over all elements on the pool, preserving order.  All
    jobs are submitted before the first await, so the pool pipelines
    them across workers. *)

val shutdown : t -> unit
(** Drain the queue, run every job already submitted, then join all
    workers.  Idempotent; subsequent {!submit}/{!async} calls raise. *)
