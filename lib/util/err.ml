exception Unreachable of string

let () =
  Printexc.register_printer (function
    | Unreachable msg -> Some (Printf.sprintf "Unreachable(%s)" msg)
    | _ -> None)

let invalid msg = raise (Invalid_argument msg)
let invalidf fmt = Printf.ksprintf invalid fmt
let unreachable msg = raise (Unreachable msg)
let unreachablef fmt = Printf.ksprintf unreachable fmt
