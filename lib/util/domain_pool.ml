(* A fixed-size domain pool over one Mutex/Condition-guarded MPMC queue.

   Workers loop: wait for the queue to be non-empty (or the pool to be
   closed), pop one job with the lock held, run it with the lock
   released.  Shutdown flips [closed] and broadcasts; workers keep
   draining the queue until it is empty, so every job submitted before
   shutdown runs exactly once.

   Every critical section goes through [Sync.with_lock]: a raising
   section (e.g. the closed-pool check in [submit]) releases its lock on
   the way out. *)

type job = unit -> unit

type t = {
  lock : Mutex.t;
  has_work : Condition.t;
  jobs : job Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array; (* [||] once joined *)
}

let size t = Array.length t.workers

let worker pool () =
  let rec loop () =
    let job =
      Sync.with_lock pool.lock (fun () ->
          while Queue.is_empty pool.jobs && not pool.closed do
            Condition.wait pool.has_work pool.lock
          done;
          if Queue.is_empty pool.jobs then None (* closed: exit *)
          else Some (Queue.pop pool.jobs))
    in
    match job with
    | None -> ()
    | Some job ->
        (try job () with _ -> ());
        loop ()
  in
  loop ()

let create ?domains () =
  let n =
    match domains with
    | Some d ->
        if d < 1 then Err.invalid "Domain_pool.create: domains < 1";
        d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    {
      lock = Mutex.create ();
      has_work = Condition.create ();
      jobs = Queue.create ();
      closed = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init n (fun _ -> Domain.spawn (worker pool));
  pool

let submit t job =
  Sync.with_lock t.lock (fun () ->
      if t.closed then
        Err.invalid "Domain_pool.submit: pool is shut down";
      Queue.push job t.jobs;
      Condition.signal t.has_work)

(* Futures: a one-shot mailbox with its own lock, filled by the worker
   and emptied by any number of awaiters. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

let async t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  submit t (fun () ->
      let outcome =
        match f () with
        | v -> Done v
        | exception e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Sync.with_lock fut.fm (fun () ->
          fut.state <- outcome;
          Condition.broadcast fut.fc));
  fut

let await fut =
  (* [settled] runs with [fut.fm] held; [Condition.wait] releases and
     reacquires it, so the single unlock in [with_lock] stays balanced. *)
  let rec settled () =
    match fut.state with
    | Pending ->
        Condition.wait fut.fc fut.fm;
        settled ()
    | Done v -> Ok v
    | Failed (e, bt) -> Error (e, bt)
  in
  Sync.with_lock fut.fm settled

let await_exn fut =
  match await fut with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let map_array t f xs =
  let futs = Array.map (fun x -> async t (fun () -> f x)) xs in
  Array.map await_exn futs

let shutdown t =
  let workers =
    Sync.with_lock t.lock (fun () ->
        let workers = t.workers in
        t.closed <- true;
        t.workers <- [||];
        Condition.broadcast t.has_work;
        workers)
  in
  Array.iter Domain.join workers
