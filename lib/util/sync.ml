(* The one audited home of bare Mutex.lock/unlock: everything else goes
   through [with_lock], which xklint's bare-lock rule enforces. *)
[@@@xklint.allow bare-lock]

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

module Protected = struct
  type 'a t = { lock : Mutex.t; value : 'a }

  let create value = { lock = Mutex.create (); value }
  let with_ t f = with_lock t.lock (fun () -> f t.value)
end
