(** Query workload construction for the experiments (paper Section V):
    frequency-bucketed random keyword sets and equal-frequency sets.
    Control terms (digit-suffixed) never enter random workloads. *)

type query = string list

val has_digit : string -> bool

val terms_in_df_range : Xk_index.Index.t -> lo:int -> hi:int -> int array
(** Non-control term ids with df in [lo, hi], most frequent first. *)

val pick_near : Xk_datagen.Rng.t -> Xk_index.Index.t -> near:int -> string
(** A random term with df in a factor-2 window of [near]; the window
    widens until inhabited.  Raises [Invalid_argument] only when the
    corpus has no usable terms. *)

val max_df : Xk_index.Index.t -> int
(** Highest df over non-control terms (the experiments' "high
    frequency"). *)

val random_queries :
  Xk_datagen.Rng.t ->
  Xk_index.Index.t ->
  k:int ->
  high:int ->
  low:int ->
  n:int ->
  query list
(** [n] queries of [k] distinct keywords: one near [high], the rest near
    [low] - the Figure 9/10 workload shape. *)

val equal_freq_queries :
  Xk_datagen.Rng.t -> Xk_index.Index.t -> k:int -> freq:int -> n:int -> query list
