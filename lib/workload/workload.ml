(* Query workload construction for the experiments (Section V): random
   keyword sets drawn from document-frequency buckets, equal-frequency
   sets, and the planted correlated sets of the generators.

   "For each experiment, forty queries within each frequency range are
   randomly selected" - [random_queries] reproduces that: each query takes
   one keyword near the high frequency and k-1 keywords near the low
   frequency.  Control terms (digit-suffixed) are excluded from random
   selection so the planted correlations do not leak into the random
   workloads. *)

type query = string list

let has_digit s =
  let r = ref false in
  String.iter (fun c -> if c >= '0' && c <= '9' then r := true) s;
  !r

(* Term ids whose df lies in [lo, hi], most frequent first. *)
let terms_in_df_range (idx : Xk_index.Index.t) ~lo ~hi =
  let out = ref [] in
  let ids = Xk_index.Index.terms_by_df idx in
  Array.iter
    (fun id ->
      let df = Xk_index.Index.df idx id in
      if df >= lo && df <= hi && not (has_digit (Xk_index.Index.term idx id))
      then out := id :: !out)
    ids;
  Array.of_list (List.rev !out)

(* A random term with df within a factor-2 window of [near]; the window
   widens until it is inhabited, degenerating to "any indexable term" for
   absurd targets.  Fails only on a corpus with no usable terms at all. *)
let pick_near rng (idx : Xk_index.Index.t) ~near =
  (* No document frequency can exceed the corpus node count; a window of
     [1, df_ceiling] is "everything". *)
  let df_ceiling =
    Xk_encoding.Labeling.node_count (Xk_index.Index.label idx) + 1
  in
  let rec go spread =
    let lo = max 1 (near / spread) in
    let hi =
      if near >= df_ceiling / spread then df_ceiling else near * spread
    in
    let pool = terms_in_df_range idx ~lo ~hi in
    if Array.length pool > 0 then
      Xk_index.Index.term idx pool.(Xk_datagen.Rng.int rng (Array.length pool))
    else if lo = 1 && hi = df_ceiling then
      Xk_util.Err.invalid "Workload.pick_near: empty corpus"
    else go (spread * 8)
  in
  go 2

(* Highest df over non-control terms: the experiments pin the high
   frequency to it, as the paper pins 100k. *)
let max_df (idx : Xk_index.Index.t) =
  let ids = Xk_index.Index.terms_by_df idx in
  let rec go i =
    if i >= Array.length ids then 1
    else if has_digit (Xk_index.Index.term idx ids.(i)) then go (i + 1)
    else Xk_index.Index.df idx ids.(i)
  in
  go 0

(* [n] queries of [k] keywords: one near [high], k-1 near [low], all
   distinct within a query. *)
let random_queries rng (idx : Xk_index.Index.t) ~k ~high ~low ~n : query list =
  List.init n (fun _ ->
      let rec distinct acc need near =
        if need = 0 then acc
        else begin
          let w = pick_near rng idx ~near in
          if List.mem w acc then distinct acc need near
          else distinct (w :: acc) (need - 1) near
        end
      in
      let lows = distinct [] (k - 1) low in
      distinct lows 1 high)

let equal_freq_queries rng (idx : Xk_index.Index.t) ~k ~freq ~n : query list =
  List.init n (fun _ ->
      let rec distinct acc need =
        if need = 0 then acc
        else begin
          let w = pick_near rng idx ~near:freq in
          if List.mem w acc then distinct acc need
          else distinct (w :: acc) (need - 1)
        end
      in
      distinct [] k)
