exception Injected_io of string
exception Injected_failure of string

type config = {
  io_failures : int;
  corrupt_reads : int;
  io_latency_ms : float;
  query_failures : int;
  query_latency_ms : float;
}

let none =
  {
    io_failures = 0;
    corrupt_reads = 0;
    io_latency_ms = 0.;
    query_failures = 0;
    query_latency_ms = 0.;
  }

let of_spec ?(latency_ms = 2.0) ?(count = 1) spec =
  let parts =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok acc
    | "io" :: rest -> go { acc with io_failures = count } rest
    | "corrupt" :: rest -> go { acc with corrupt_reads = count } rest
    | "latency" :: rest ->
        go { acc with io_latency_ms = latency_ms; query_latency_ms = latency_ms } rest
    | "query" :: rest -> go { acc with query_failures = count } rest
    | other :: _ ->
        Error
          (Printf.sprintf "unknown fault class %S (io|corrupt|latency|query)"
             other)
  in
  go none parts

(* The environment configuration is computed once at module init (before
   any domain is spawned), so reading it later is race-free. *)
let env_config =
  match Sys.getenv_opt "XK_FAULTS" with
  | None | Some "" -> none
  | Some spec -> (
      let latency_ms =
        Option.bind (Sys.getenv_opt "XK_FAULT_LATENCY_MS") float_of_string_opt
      in
      let count =
        Option.bind (Sys.getenv_opt "XK_FAULT_COUNT") int_of_string_opt
      in
      match of_spec ?latency_ms ?count spec with
      | Ok c -> c
      | Error msg ->
          Printf.eprintf "warning: XK_FAULTS ignored: %s\n%!" msg;
          none)

(* All mutable state sits behind one [Sync.Protected] value: fault
   injection is never on a genuine hot path, and no code path can reach
   the override or the counters without holding its lock. *)
type state = {
  mutable override : config option;
  io_attempts : (string, int) Hashtbl.t;
  read_attempts : (string, int) Hashtbl.t;
  corrupt_paths : (string, unit) Hashtbl.t;
  unmappable_paths : (string, unit) Hashtbl.t;
  mutable queries_seen : int;
}

let state =
  Xk_util.Sync.Protected.create
    {
      override = None;
      io_attempts = Hashtbl.create 8;
      read_attempts = Hashtbl.create 8;
      corrupt_paths = Hashtbl.create 8;
      unmappable_paths = Hashtbl.create 8;
      queries_seen = 0;
    }

let with_state f = Xk_util.Sync.Protected.with_ state f

let clear_counters st =
  Hashtbl.reset st.io_attempts;
  Hashtbl.reset st.read_attempts;
  Hashtbl.reset st.corrupt_paths;
  Hashtbl.reset st.unmappable_paths;
  st.queries_seen <- 0

let configure c =
  with_state (fun st ->
      st.override <- Some c;
      clear_counters st)

let reset () =
  with_state (fun st ->
      st.override <- None;
      clear_counters st)

let active () =
  with_state (fun st ->
      match st.override with Some c -> c | None -> env_config)

let enabled () = active () <> none

let bump tbl key =
  let n = Option.value (Hashtbl.find_opt tbl key) ~default:0 in
  Hashtbl.replace tbl key (n + 1);
  n

let before_io ~path =
  let c = active () in
  if c <> none then begin
    if c.io_latency_ms > 0. then Unix.sleepf (c.io_latency_ms /. 1000.);
    let attempt = with_state (fun st -> bump st.io_attempts path) in
    if attempt < c.io_failures then
      raise
        (Injected_io
           (Printf.sprintf "injected transient IO error (attempt %d) reading %s"
              (attempt + 1) path))
  end

let mark_corrupt ~path =
  with_state (fun st -> Hashtbl.replace st.corrupt_paths path ())

let marked_corrupt ~path =
  with_state (fun st -> Hashtbl.mem st.corrupt_paths path)

let heal ~path =
  with_state (fun st ->
      Hashtbl.remove st.corrupt_paths path;
      Hashtbl.remove st.unmappable_paths path;
      Hashtbl.remove st.io_attempts path;
      Hashtbl.remove st.read_attempts path)

let mark_unmappable ~path =
  with_state (fun st -> Hashtbl.replace st.unmappable_paths path ())

let unmappable ~path =
  with_state (fun st -> Hashtbl.mem st.unmappable_paths path)

let flip_byte data =
  let b = Bytes.of_string data in
  let pos = Bytes.length b / 2 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x42));
  Bytes.unsafe_to_string b

let mangle_read ~path data =
  if String.length data = 0 then data
  else begin
    let marked = with_state (fun st -> Hashtbl.mem st.corrupt_paths path) in
    if marked then flip_byte data
    else
      let c = active () in
      if c.corrupt_reads = 0 then data
      else begin
        let read = with_state (fun st -> bump st.read_attempts path) in
        if read >= c.corrupt_reads then data else flip_byte data
      end
  end

let on_query () =
  let c = active () in
  if c <> none then begin
    if c.query_latency_ms > 0. then Unix.sleepf (c.query_latency_ms /. 1000.);
    let n =
      with_state (fun st ->
          st.queries_seen <- st.queries_seen + 1;
          st.queries_seen)
    in
    if n <= c.query_failures then
      raise (Injected_failure (Printf.sprintf "injected query failure #%d" n))
  end
