(** Cooperative execution budgets: a per-request token carrying an
    optional wall-clock deadline, an optional tick allowance (a
    deterministic resource budget counted in cooperative checks - used by
    tests to stop a query at an exact, reproducible point), and a
    cancellation flag that any domain may raise.

    Hot loops poll the token with {!alive} (non-raising, for anytime
    algorithms that return their current best results) or {!check}
    (raising {!Expired}, for complete-result algorithms where a partial
    answer would be wrong).  Both are cheap: the wall clock is sampled
    once every 32 checks. *)

exception Expired
(** Raised by {!check} once the budget is exhausted or cancelled. *)

type t

val unlimited : t
(** The shared no-op budget: never expires, cannot be cancelled.  All
    budget parameters default to it. *)

val create : ?deadline_ms:float -> ?ticks:int -> unit -> t
(** A fresh budget.  [deadline_ms] is relative to now; [ticks] bounds the
    number of cooperative checks before expiry (deterministic).  With
    neither, the budget only expires through {!cancel}. *)

val cancel : t -> unit
(** Flag the budget as cancelled; safe from any domain.  Raises
    [Invalid_argument] on {!unlimited}. *)

val cancelled : t -> bool

val alive : t -> bool
(** [true] while the budget still has room.  The first call past the
    deadline / tick allowance / cancellation trips the budget permanently. *)

val check : t -> unit
(** {!alive}, raising {!Expired} instead of returning [false]. *)

val exhausted : t -> bool
(** Whether the budget has tripped (observed expiry or cancellation).
    Anytime algorithms use this after the fact to tag their result as
    partial. *)

val is_limited : t -> bool
(** Whether the budget can ever expire (deadline or ticks set). *)

val remaining_ms : t -> float option
(** Milliseconds of wall budget left, clamped at 0; [None] when the
    budget has no deadline.  Used to propagate the {e remaining} budget
    into an RPC request so a remote shard works against the caller's
    deadline, not a fresh one. *)

val ticks_left : t -> int option
(** Ticks left in the deterministic allowance, clamped at 0; [None]
    when the budget has no tick bound. *)
