(** Background replica scrubbing: re-validate every copy of a replicated
    shard set and classify each as clean, damaged, or missing.

    Scrubbing is the detection half of self-healing (repair lives in
    [Xk_index.Repair], which feeds a scrub report back through the
    atomic-write path).  A pass walks the [shard x replica] file matrix
    in bounded slices: the budget is polled before every file, so a
    deadline or cancellation stops the pass at a file boundary (the
    report is then marked incomplete), and after every [slice] files the
    scrubber sleeps [throttle_ms] so a background pass never starves the
    serving IO path.  The verifier itself is injected — callers in the
    index layer pass [Index_io.verify], which re-validates the full v3
    framing (header, directory, terms, and per-term row CRCs) through
    the same open path queries use. *)

type status =
  | Clean  (** the copy verified end to end *)
  | Damaged of string  (** verification failed; human-readable cause *)
  | Missing  (** the file is gone *)

type entry = {
  e_shard : int;
  e_replica : int;
  e_file : string;
  e_status : status;
}

type report = {
  entries : entry list;  (** one per scanned copy, manifest order *)
  scanned : int;
  clean : int;
  damaged : int;
  missing : int;
  complete : bool;  (** [false] when the budget expired mid-pass *)
}

val status_label : status -> string

val healthy : report -> bool
(** A complete pass that found every copy clean. *)

val needs_repair : report -> entry list
(** The damaged and missing entries, manifest order. *)

val summary_line : report -> string
(** One-line pass summary for logs and the fleet status line. *)

val run :
  ?budget:Budget.t ->
  ?slice:int ->
  ?throttle_ms:float ->
  ?sleep:(float -> unit) ->
  verify:(string -> (unit, string) result) ->
  string array array ->
  report
(** Scrub the [shard][replica] file matrix.  [slice] (default 4, must be
    >= 1) files are verified between throttle sleeps of [throttle_ms]
    (default 0); [budget] (default unlimited) is polled before every
    file and an expiry ends the pass early with [complete = false].
    [sleep] overrides the throttle action (milliseconds) for tests. *)

val spawn :
  ?budget:Budget.t ->
  ?slice:int ->
  ?throttle_ms:float ->
  ?sleep:(float -> unit) ->
  verify:(string -> (unit, string) result) ->
  string array array ->
  report Domain.t
(** {!run} on a fresh background domain; join the handle for the
    report.  Serving threads keep the main domain — combined with the
    slice throttle this keeps scrubbing strictly lower priority than
    query traffic. *)
