(** Per-replica circuit breaker: stop sending work to a replica that
    keeps failing, probe it again after a cooldown.

    States: [Closed] (normal; consecutive failures counted), [Open]
    (everything rejected until [reset_after_ms] elapses), [Half_open]
    (up to [half_open_probes] trial requests admitted; a failure
    re-opens, enough successes close).

    Time comes from an injected [clock : unit -> float] (milliseconds),
    so tests step a fake clock instead of sleeping.  Thread-safe. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;  (** consecutive failures that trip the breaker *)
  reset_after_ms : float;  (** cooldown before Open admits a probe *)
  half_open_probes : int;  (** successes needed to close from Half_open *)
}

type t

type stats = {
  state : state;
  consecutive_failures : int;
  opens : int;  (** times the breaker tripped *)
  rejected : int;  (** requests refused while Open / probe-saturated *)
}

val default_config : config
(** threshold 5, cooldown 1000 ms, 1 probe. *)

val create :
  ?config:config ->
  ?clock:(unit -> float) ->
  ?on_transition:(state -> state -> unit) ->
  unit ->
  t
(** [clock] defaults to wall time in ms.  Raises [Invalid_argument] on
    a non-positive threshold or probe count.  [on_transition from to_]
    fires once per state change (trip, probe admission, close), {e after}
    the breaker's lock is released — it must stay non-blocking (no IO,
    no lock acquisition; enforced by the [no-blocking-in-callback] lint
    rule), because it runs on the request path of whichever caller
    triggered the transition. *)

val allow : t -> bool
(** May a request proceed?  Also performs the Open -> Half_open
    transition once the cooldown has elapsed.  Callers that get [true]
    should report the outcome via {!record_success} / {!record_failure}. *)

val record_success : t -> unit
val record_failure : t -> unit
val state : t -> state
val stats : t -> stats
val state_label : state -> string
