(* Budgets are owned by one request and polled from the single worker
   domain running it, so [tripped]/[count] are plain mutable fields; only
   the cancellation flag crosses domains and is atomic. *)

exception Expired

type t = {
  deadline : float option; (* absolute Unix.gettimeofday seconds *)
  ticks : int option;      (* max cooperative checks *)
  cancelled : bool Atomic.t;
  mutable tripped : bool;
  mutable count : int;
}

let make deadline ticks =
  { deadline; ticks; cancelled = Atomic.make false; tripped = false; count = 0 }

let unlimited = make None None

let create ?deadline_ms ?ticks () =
  let deadline =
    Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.)) deadline_ms
  in
  make deadline ticks

let cancel t =
  if t == unlimited then Xk_util.Err.invalid "Budget.cancel: unlimited budget";
  Atomic.set t.cancelled true

let cancelled t = Atomic.get t.cancelled

(* The wall clock is sampled on the first check and then every 32nd. *)
let sample_mask = 31

let alive t =
  if t.tripped then false
  else if Atomic.get t.cancelled then begin
    t.tripped <- true;
    false
  end
  else
    match (t.deadline, t.ticks) with
    | None, None -> true
    | deadline, ticks ->
        t.count <- t.count + 1;
        let dead =
          (match ticks with Some n -> t.count > n | None -> false)
          || match deadline with
             | Some d ->
                 t.count land sample_mask = 1 && Unix.gettimeofday () > d
             | None -> false
        in
        if dead then t.tripped <- true;
        not dead

let check t = if not (alive t) then raise Expired
let exhausted t = t.tripped
let is_limited t = t.deadline <> None || t.ticks <> None

let remaining_ms t =
  Option.map
    (fun d -> Float.max 0. ((d -. Unix.gettimeofday ()) *. 1000.))
    t.deadline

let ticks_left t = Option.map (fun n -> max 0 (n - t.count)) t.ticks
