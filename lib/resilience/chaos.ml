(* Deterministic chaos schedules for replica serving.

   A schedule is a list of events addressed by (shard, replica), with
   [`*`] wildcards.  Determinism comes from a global attempt tick: every
   [on_attempt] advances the counter, and kill/slow events arm at a
   fixed tick, so a test or CI matrix replays the same failure sequence
   on every run.  Segment corruption is not simulated here — callers map
   [Corrupt] targets to replica file paths and register them with
   [Fault_injection.mark_corrupt] before loading.

   [on_attempt] decides under the schedule lock but raises / sleeps
   outside it. *)

exception Killed of { shard : int; replica : int }
exception Crashed of string

type target = { t_shard : int option; t_replica : int option }

type event =
  | Kill of { target : target; from_tick : int }
  | Slow of { target : target; from_tick : int; ms : float }
  | Corrupt of { target : target }
  | Drop of { target : target; from_tick : int }
  | Crash of { step : string }

type schedule = event list

type state = {
  mutable events : schedule;
  mutable tick : int;
  mutable sleep : float -> unit;
  mutable kills : int; (* attempts killed so far *)
  mutable slowdowns : int; (* attempts delayed so far *)
  mutable drops : int; (* connections refused so far *)
  mutable crashes : int; (* crash points fired so far *)
}

let default_sleep ms = if ms > 0. then Unix.sleepf (ms /. 1000.)

let state =
  Xk_util.Sync.Protected.create
    {
      events = [];
      tick = 0;
      sleep = default_sleep;
      kills = 0;
      slowdowns = 0;
      drops = 0;
      crashes = 0;
    }

let matches t ~shard ~replica =
  (match t.t_shard with None -> true | Some s -> s = shard)
  && match t.t_replica with None -> true | Some r -> r = replica

let install ?(sleep = default_sleep) events =
  Xk_util.Sync.Protected.with_ state (fun st ->
      st.events <- events;
      st.tick <- 0;
      st.sleep <- sleep;
      st.kills <- 0;
      st.slowdowns <- 0;
      st.drops <- 0;
      st.crashes <- 0)

let clear () = install []

let active () = Xk_util.Sync.Protected.with_ state (fun st -> st.events <> [])
let tick () = Xk_util.Sync.Protected.with_ state (fun st -> st.tick)

type counters = { kills : int; slowdowns : int; drops : int; crashes : int }

let counters () =
  Xk_util.Sync.Protected.with_ state (fun st ->
      {
        kills = st.kills;
        slowdowns = st.slowdowns;
        drops = st.drops;
        crashes = st.crashes;
      })

let corrupt_targets () =
  Xk_util.Sync.Protected.with_ state (fun st ->
      List.filter_map
        (function
          | Corrupt { target } -> Some target
          | Kill _ | Slow _ | Drop _ | Crash _ -> None)
        st.events)

let corrupt_matches ~shard ~replica =
  List.exists (fun t -> matches t ~shard ~replica) (corrupt_targets ())

let on_attempt ~shard ~replica =
  (* Decide under the lock, act outside it. *)
  let verdict =
    Xk_util.Sync.Protected.with_ state (fun st ->
        if st.events = [] then `Pass
        else begin
          st.tick <- st.tick + 1;
          let now = st.tick in
          let kill =
            List.exists
              (function
                | Kill { target; from_tick } ->
                    now >= from_tick && matches target ~shard ~replica
                | Slow _ | Corrupt _ | Drop _ | Crash _ -> false)
              st.events
          in
          if kill then begin
            st.kills <- st.kills + 1;
            `Kill
          end
          else begin
            let delay =
              List.fold_left
                (fun acc -> function
                  | Slow { target; from_tick; ms }
                    when now >= from_tick && matches target ~shard ~replica ->
                      acc +. ms
                  | Kill _ | Slow _ | Corrupt _ | Drop _ | Crash _ -> acc)
                0.0 st.events
            in
            if delay > 0. then begin
              st.slowdowns <- st.slowdowns + 1;
              `Slow (st.sleep, delay)
            end
            else `Pass
          end
        end)
  in
  match verdict with
  | `Pass -> ()
  | `Kill -> raise (Killed { shard; replica })
  | `Slow (sleep, ms) -> sleep ms

(* Connection-level drill: checked by the remote transport before it
   dials a replica.  Reads the current tick without advancing it —
   [on_attempt] already ticked for this attempt, and a drop must hit
   the same attempt its kill-sibling would. *)
let on_connect ~shard ~replica =
  let dropped =
    Xk_util.Sync.Protected.with_ state (fun st ->
        st.events <> []
        && List.exists
             (function
               | Drop { target; from_tick } ->
                   st.tick >= from_tick && matches target ~shard ~replica
               | Kill _ | Slow _ | Corrupt _ | Crash _ -> false)
             st.events
        && begin
             st.drops <- st.drops + 1;
             true
           end)
  in
  if dropped then raise (Killed { shard; replica })

let crash_armed step =
  Xk_util.Sync.Protected.with_ state (fun st ->
      List.exists
        (function
          | Crash c -> c.step = step
          | Kill _ | Slow _ | Corrupt _ | Drop _ -> false)
        st.events)

(* Fires at most once per installed event: the decision consumes the
   event under the lock, the raise happens outside it. *)
let crash_point step =
  let fire =
    Xk_util.Sync.Protected.with_ state (fun st ->
        let armed =
          List.exists
            (function
              | Crash c -> c.step = step
              | Kill _ | Slow _ | Corrupt _ | Drop _ -> false)
            st.events
        in
        if armed then begin
          st.events <-
            List.filter
              (function
                | Crash c -> c.step <> step
                | Kill _ | Slow _ | Corrupt _ | Drop _ -> true)
              st.events;
          st.crashes <- st.crashes + 1
        end;
        armed)
  in
  if fire then raise (Crashed step)

let crash_steps () =
  Xk_util.Sync.Protected.with_ state (fun st ->
      List.filter_map
        (function
          | Crash c -> Some c.step
          | Kill _ | Slow _ | Corrupt _ | Drop _ -> None)
        st.events)

(* Spec syntax, comma-separated events:
     kill@s<S>r<R>:<tick>         kill attempts on shard S replica R from tick
     slow@s<S>r<R>:<tick>:<ms>    add <ms> latency from tick
     corrupt@s<S>r<R>             corrupt that replica's segment on disk
     drop@s<S>r<R>:<tick>         refuse connections to that replica from tick
     crash@<step>                 die once at a named durability step
   S and R accept [*] as a wildcard, e.g. [kill@s*r1:0]. *)

let parse_target s =
  match String.index_opt s 'r' with
  | Some i when String.length s > 1 && s.[0] = 's' ->
      let shard_str = String.sub s 1 (i - 1) in
      let rep_str = String.sub s (i + 1) (String.length s - i - 1) in
      let part name = function
        | "*" -> Ok None
        | v -> (
            match int_of_string_opt v with
            | Some n when n >= 0 -> Ok (Some n)
            | _ -> Error (Printf.sprintf "bad %s %S" name v))
      in
      Result.bind (part "shard" shard_str) (fun t_shard ->
          Result.map
            (fun t_replica -> { t_shard; t_replica })
            (part "replica" rep_str))
  | _ -> Error (Printf.sprintf "bad target %S (want s<N>r<M>)" s)

let parse_event item =
  match String.index_opt item '@' with
  | None -> Error (Printf.sprintf "bad chaos event %S (missing '@')" item)
  | Some i -> (
      let kind = String.sub item 0 i in
      let rest = String.sub item (i + 1) (String.length item - i - 1) in
      let fields = String.split_on_char ':' rest in
      match (kind, fields) with
      | "kill", [ tgt; tick ] ->
          Result.bind (parse_target tgt) (fun target ->
              match int_of_string_opt tick with
              | Some from_tick when from_tick >= 0 ->
                  Ok (Kill { target; from_tick })
              | _ -> Error (Printf.sprintf "bad kill tick %S" tick))
      | "slow", [ tgt; tick; ms ] ->
          Result.bind (parse_target tgt) (fun target ->
              match (int_of_string_opt tick, float_of_string_opt ms) with
              | Some from_tick, Some ms when from_tick >= 0 && ms >= 0. ->
                  Ok (Slow { target; from_tick; ms })
              | _ -> Error (Printf.sprintf "bad slow params %S" rest))
      | "corrupt", [ tgt ] ->
          Result.map (fun target -> Corrupt { target }) (parse_target tgt)
      | "drop", [ tgt; tick ] ->
          Result.bind (parse_target tgt) (fun target ->
              match int_of_string_opt tick with
              | Some from_tick when from_tick >= 0 ->
                  Ok (Drop { target; from_tick })
              | _ -> Error (Printf.sprintf "bad drop tick %S" tick))
      | "crash", [ step ] when step <> "" -> Ok (Crash { step })
      | _ ->
          Error
            (Printf.sprintf
               "bad chaos event %S (want kill@T:tick, slow@T:tick:ms, \
                corrupt@T, drop@T:tick, crash@step)"
               item))

let of_spec spec =
  let items =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if items = [] then Error "empty chaos spec"
  else
    List.fold_left
      (fun acc item ->
        Result.bind acc (fun evs ->
            Result.map (fun ev -> ev :: evs) (parse_event item)))
      (Ok []) items
    |> Result.map List.rev
