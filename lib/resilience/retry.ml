let with_backoff ?(retries = 4) ?(backoff_ms = 1.0) ~retryable f =
  let rec go attempt delay =
    match f () with
    | Ok _ as ok -> ok
    | Error e when attempt < retries && retryable e ->
        if delay > 0. then Unix.sleepf (delay /. 1000.);
        go (attempt + 1) (delay *. 2.)
    | Error _ as err -> err
  in
  go 0 backoff_ms
