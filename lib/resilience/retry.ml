let default_sleep ms = if ms > 0. then Unix.sleepf (ms /. 1000.)

let with_backoff_info ?(retries = 4) ?(backoff_ms = 1.0) ?(sleep = default_sleep)
    ~retryable f =
  let rec go attempt delay =
    match f () with
    | Ok _ as ok -> (ok, attempt + 1)
    | Error e when attempt < retries && retryable e ->
        sleep delay;
        go (attempt + 1) (delay *. 2.)
    | Error _ as err -> (err, attempt + 1)
  in
  go 0 backoff_ms

let with_backoff ?retries ?backoff_ms ?sleep ~retryable f =
  fst (with_backoff_info ?retries ?backoff_ms ?sleep ~retryable f)
