let default_sleep ms = if ms > 0. then Unix.sleepf (ms /. 1000.)

module Jitter = struct
  (* Decorrelated jitter (min(cap, uniform(base, 3 * prev))): each delay
     is drawn from a range anchored on the previous one, so a cohort of
     restarting clients spreads out instead of thundering back in
     lockstep.  The generator is a tiny xorshift seeded explicitly -
     deterministic under test, distinct across supervisor instances. *)

  type t = { mutable rng : int }

  let create ?(seed = 0x2545F49) () =
    (* A zero state would be a fixed point of xorshift; [lor 1] rules it
       out for every seed. *)
    { rng = (seed lxor 0x9E3779B9) lor 1 }

  let uniform t =
    let x = t.rng in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    t.rng <- x;
    float_of_int (x land 0xFFFFFF) /. 16777216.0

  let next t ~base_ms ~cap_ms ~prev_ms =
    let base = Float.max 0. base_ms in
    let hi = Float.max base (prev_ms *. 3.) in
    Float.min cap_ms (base +. ((hi -. base) *. uniform t))
end

let with_backoff_info ?(retries = 4) ?(backoff_ms = 1.0) ?max_backoff_ms ?jitter
    ?(sleep = default_sleep) ~retryable f =
  let cap = Option.value max_backoff_ms ~default:infinity in
  let next_delay prev =
    match jitter with
    | Some j -> Jitter.next j ~base_ms:backoff_ms ~cap_ms:cap ~prev_ms:prev
    | None -> Float.min cap (prev *. 2.)
  in
  let first_delay =
    match jitter with
    | Some j -> Jitter.next j ~base_ms:backoff_ms ~cap_ms:cap ~prev_ms:backoff_ms
    | None -> Float.min cap backoff_ms
  in
  let rec go attempt delay =
    match f () with
    | Ok _ as ok -> (ok, attempt + 1)
    | Error e when attempt < retries && retryable e ->
        sleep delay;
        go (attempt + 1) (next_delay delay)
    | Error _ as err -> (err, attempt + 1)
  in
  go 0 first_delay

let with_backoff ?retries ?backoff_ms ?max_backoff_ms ?jitter ?sleep ~retryable f
    =
  fst
    (with_backoff_info ?retries ?backoff_ms ?max_backoff_ms ?jitter ?sleep
       ~retryable f)
