(** Budget-aware hedged requests: run the primary attempt inline and,
    if it is still unresolved after [delay_ms], launch one hedged
    attempt on a borrowed worker.  First successful response wins; the
    loser's {!Budget.t} is cancelled so anytime algorithms stop
    cooperatively.

    Deadlock freedom: the calling thread only ever runs the primary.
    [spawn] (typically [Domain_pool.submit]) carries the delay watcher
    and the hedge; if the pool is saturated and never runs them, the
    primary completes alone.  A primary failure waits only for a hedge
    that has actually started executing — a queued-but-unstarted hedge
    is revoked, so no worker blocks on pool capacity.

    A hedge failure never preempts a running primary; the hedge's
    error surfaces only if the primary also fails.  [clock] / [sleep]
    (milliseconds) are injectable so tests drive the race without
    real waiting. *)

type winner = Primary | Hedge

type 'a outcome = {
  value : 'a;
  winner : winner;
  fired : bool;  (** whether the hedge attempt was launched at all *)
}

val run :
  ?clock:(unit -> float) ->
  ?sleep:(float -> unit) ->
  ?make_budget:(unit -> Budget.t) ->
  spawn:((unit -> unit) -> unit) ->
  delay_ms:float ->
  primary:(Budget.t -> 'a) ->
  hedge:(Budget.t -> 'a) ->
  unit ->
  'a outcome
(** Both attempts receive a fresh budget from [make_budget] (default: a
    plain cancellable {!Budget.create}); poll it with
    [Budget.alive]/[check] to honour loser cancellation.  Callers with
    deadline or tick budgets pass them via [make_budget] so one token
    carries both the work bound and the loser-kill (an uncancellable
    {!Budget.unlimited} is tolerated — the kill is skipped).  Raises
    the primary's exception when both attempts fail (or the hedge never
    ran); raises [Invalid_argument] on negative [delay_ms]. *)
