(* Background replica scrubbing: walk a manifest's replica files and
   re-validate each copy through an injected verifier.

   The walk is sliced: after every [slice] files the scrubber sleeps
   [throttle_ms], so a scrub pass trickles along without saturating the
   IO path that serving depends on, and the budget is polled before
   every file so a deadline (or cancellation from the serving side)
   stops the pass at a file boundary.  The verifier is injected rather
   than imported — the index layer passes [Index_io.verify], keeping
   this module free of a dependency cycle and letting tests substitute
   arbitrary classifiers. *)

type status = Clean | Damaged of string | Missing

type entry = {
  e_shard : int;
  e_replica : int;
  e_file : string;
  e_status : status;
}

type report = {
  entries : entry list;
  scanned : int;
  clean : int;
  damaged : int;
  missing : int;
  complete : bool;
}

let status_label = function
  | Clean -> "clean"
  | Damaged _ -> "damaged"
  | Missing -> "missing"

let healthy r = r.complete && r.damaged = 0 && r.missing = 0
let needs_repair r = List.filter (fun e -> e.e_status <> Clean) r.entries

let summary_line r =
  Printf.sprintf "scrub: %d scanned, %d clean, %d damaged, %d missing%s"
    r.scanned r.clean r.damaged r.missing
    (if r.complete then "" else " (budget expired; pass incomplete)")

exception Budget_stop

let default_sleep ms = if ms > 0. then Unix.sleepf (ms /. 1000.)

let run ?(budget = Budget.unlimited) ?(slice = 4) ?(throttle_ms = 0.)
    ?(sleep = default_sleep) ~verify files =
  if slice < 1 then Xk_util.Err.invalid "Scrub.run: slice < 1";
  let entries = ref [] in
  let clean = ref 0 and damaged = ref 0 and missing = ref 0 in
  let in_slice = ref 0 in
  let complete = ref true in
  (try
     Array.iteri
       (fun s replicas ->
         Array.iteri
           (fun r file ->
             if not (Budget.alive budget) then begin
               complete := false;
               raise Budget_stop
             end;
             if !in_slice >= slice then begin
               sleep throttle_ms;
               in_slice := 0
             end;
             incr in_slice;
             let st =
               if not (Sys.file_exists file) then Missing
               else
                 match verify file with
                 | Ok () -> Clean
                 | Error msg -> Damaged msg
             in
             (match st with
             | Clean -> incr clean
             | Damaged _ -> incr damaged
             | Missing -> incr missing);
             entries :=
               { e_shard = s; e_replica = r; e_file = file; e_status = st }
               :: !entries)
           replicas)
       files
   with Budget_stop -> ());
  let entries = List.rev !entries in
  {
    entries;
    scanned = List.length entries;
    clean = !clean;
    damaged = !damaged;
    missing = !missing;
    complete = !complete;
  }

let spawn ?budget ?slice ?throttle_ms ?sleep ~verify files =
  Domain.spawn (fun () -> run ?budget ?slice ?throttle_ms ?sleep ~verify files)
