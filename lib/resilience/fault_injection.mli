(** Deterministic fault injection for resilience tests and drills.

    Faults are configured either programmatically ({!configure}) or from
    the environment ([XK_FAULTS=io,corrupt,latency,query], with
    [XK_FAULT_COUNT] and [XK_FAULT_LATENCY_MS] tuning the counts and
    delays).  Injection is deterministic, not probabilistic: the first
    [io_failures] read attempts per path raise a transient IO error, the
    next [corrupt_reads] reads per path return the bytes with one bit
    range flipped (a torn read that a checksummed reader detects and
    re-reads), and the first [query_failures] query executions raise.
    That makes a full test suite runnable with faults enabled: resilient
    paths (retry, checksum re-read) recover and still succeed, while the
    fault machinery is exercised on every call. *)

exception Injected_io of string
(** A simulated transient IO error (the retryable class). *)

exception Injected_failure of string
(** A simulated in-flight query failure. *)

type config = {
  io_failures : int;      (** first N read attempts per path raise *)
  corrupt_reads : int;    (** next N reads per path are byte-flipped *)
  io_latency_ms : float;  (** sleep before every read *)
  query_failures : int;   (** first N query executions raise *)
  query_latency_ms : float;  (** sleep before every query execution *)
}

val none : config

val of_spec :
  ?latency_ms:float -> ?count:int -> string -> (config, string) result
(** Parse a comma-separated fault list: [io], [corrupt], [latency],
    [query].  [count] (default 1) sets the failure counts, [latency_ms]
    (default 2.0) the delays of the [latency] class. *)

val configure : config -> unit
(** Install a configuration (overriding the environment) and reset all
    per-path/per-process counters. *)

val reset : unit -> unit
(** Drop the programmatic configuration (back to the environment) and
    reset all counters. *)

val active : unit -> config
val enabled : unit -> bool

(** {1 Hooks} - called by the instrumented layers. *)

val before_io : path:string -> unit
(** Storage read hook: sleeps [io_latency_ms], then raises {!Injected_io}
    for the first [io_failures] attempts on [path]. *)

val mangle_read : path:string -> string -> string
(** Storage read hook: flips one byte of the data for the first
    [corrupt_reads] reads of [path], and on {e every} read of a path
    registered via {!mark_corrupt} (persistent corruption — a damaged
    replica segment stays damaged, independent of the config). *)

val mark_corrupt : path:string -> unit
(** Register persistent corruption for [path]: all subsequent reads are
    byte-flipped even when no fault config is active.  [Chaos] drivers
    use this to take out specific replica segments.  Cleared by
    {!configure} / {!reset}. *)

val marked_corrupt : path:string -> bool

val heal : path:string -> unit
(** Clear the persistent {!mark_corrupt} / {!mark_unmappable} marks and
    the per-path fault counters for [path] — the repair counterpart of
    {!mark_corrupt}: once [Xk_index.Repair] rewrites a copy, the
    simulated media is new and must read clean again.  Other paths'
    marks are untouched. *)

val mark_unmappable : path:string -> unit
(** Register a map failure for [path]: the zero-copy segment loader
    refuses to mmap it (as if the kernel had rejected the mapping) and
    reports its typed map error, exercising the channel/replica fallback.
    Cleared by {!configure} / {!reset}. *)

val unmappable : path:string -> bool

val on_query : unit -> unit
(** Query-execution hook: sleeps [query_latency_ms], then raises
    {!Injected_failure} for the first [query_failures] executions. *)
