(** Bounded retry with exponential backoff for operations whose failures
    split into a transient class (worth retrying) and a permanent one.

    This is the {e only} retry loop in the tree: storage readers
    ([Index_io], [Shard_io]) route every retryable class through it —
    including the [`Suspect] header re-read class — so attempt budgets
    are uniform and the attempt count can be surfaced in typed errors. *)

val with_backoff :
  ?retries:int ->
  ?backoff_ms:float ->
  ?sleep:(float -> unit) ->
  retryable:('e -> bool) ->
  (unit -> ('a, 'e) result) ->
  ('a, 'e) result
(** Run the thunk, retrying up to [retries] (default 4) extra times while
    it returns a [retryable] error, sleeping [backoff_ms] (default 1.0)
    before the first retry and doubling after each.  The last error is
    returned when retries run out; non-retryable errors return
    immediately.  [sleep] overrides the delay action (milliseconds) —
    tests inject a recorder so backoff growth is observable without
    sleeping. *)

val with_backoff_info :
  ?retries:int ->
  ?backoff_ms:float ->
  ?sleep:(float -> unit) ->
  retryable:('e -> bool) ->
  (unit -> ('a, 'e) result) ->
  ('a, 'e) result * int
(** {!with_backoff} plus the number of attempts actually made (>= 1):
    callers that report typed errors attach it so an exhausted retry
    budget is distinguishable from a first-try permanent failure. *)
