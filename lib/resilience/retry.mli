(** Bounded retry with exponential backoff for operations whose failures
    split into a transient class (worth retrying) and a permanent one.

    This is the {e only} retry loop in the tree: storage readers
    ([Index_io], [Shard_io]) route every retryable class through it —
    including the [`Suspect] header re-read class — so attempt budgets
    are uniform and the attempt count can be surfaced in typed errors. *)

(** Decorrelated-jitter delay source, shared by {!with_backoff} and the
    fleet supervisor's restart backoff: each delay is drawn uniformly
    from [[base, max base (3 * prev)]] and clamped to a cap, so a cohort
    of replicas that failed together does not reconnect (or restart) in
    lockstep and thundering-herd the recovering host.  The generator is
    seeded explicitly: tests inject a fixed seed for reproducible delay
    sequences, production callers vary the seed per instance. *)
module Jitter : sig
  type t

  val create : ?seed:int -> unit -> t
  (** A fresh generator.  Equal seeds yield equal delay sequences. *)

  val next : t -> base_ms:float -> cap_ms:float -> prev_ms:float -> float
  (** The next delay: uniform in [[base_ms, max base_ms (3 * prev_ms)]],
      clamped to [cap_ms]. *)
end

val with_backoff :
  ?retries:int ->
  ?backoff_ms:float ->
  ?max_backoff_ms:float ->
  ?jitter:Jitter.t ->
  ?sleep:(float -> unit) ->
  retryable:('e -> bool) ->
  (unit -> ('a, 'e) result) ->
  ('a, 'e) result
(** Run the thunk, retrying up to [retries] (default 4) extra times while
    it returns a [retryable] error, sleeping [backoff_ms] (default 1.0)
    before the first retry and doubling after each, clamped to
    [max_backoff_ms] (default unbounded).  With [jitter], every delay
    (including the first) is drawn from the decorrelated-jitter
    distribution instead of the deterministic doubling.  The last error
    is returned when retries run out; non-retryable errors return
    immediately.  [sleep] overrides the delay action (milliseconds) —
    tests inject a recorder so backoff growth is observable without
    sleeping. *)

val with_backoff_info :
  ?retries:int ->
  ?backoff_ms:float ->
  ?max_backoff_ms:float ->
  ?jitter:Jitter.t ->
  ?sleep:(float -> unit) ->
  retryable:('e -> bool) ->
  (unit -> ('a, 'e) result) ->
  ('a, 'e) result * int
(** {!with_backoff} plus the number of attempts actually made (>= 1):
    callers that report typed errors attach it so an exhausted retry
    budget is distinguishable from a first-try permanent failure. *)
