(** Bounded retry with exponential backoff for operations whose failures
    split into a transient class (worth retrying) and a permanent one. *)

val with_backoff :
  ?retries:int ->
  ?backoff_ms:float ->
  retryable:('e -> bool) ->
  (unit -> ('a, 'e) result) ->
  ('a, 'e) result
(** Run the thunk, retrying up to [retries] (default 4) extra times while
    it returns a [retryable] error, sleeping [backoff_ms] (default 1.0)
    before the first retry and doubling after each.  The last error is
    returned when retries run out; non-retryable errors return
    immediately. *)
