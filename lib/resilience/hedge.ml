(* Hedged execution: run [primary] inline; if it has not settled after
   [delay_ms], launch [hedge] on a borrowed worker and take the first
   {e successful} response.  The loser's budget is cancelled so it winds
   down cooperatively instead of burning a replica for a discarded
   answer.

   The primary runs in the calling thread on purpose: hedging must
   never deadlock a saturated pool, so [spawn] only ever carries the
   watcher and the optional second attempt — if the pool has no free
   worker, neither runs and the primary completes alone.

   Failure rules: a hedge failure never preempts a still-running
   primary, and a primary failure only waits for a hedge that has
   actually started running (a merely-queued hedge is revoked, so a
   worker never blocks on pool capacity). *)

type winner = Primary | Hedge

type 'a outcome = { value : 'a; winner : winner; fired : bool }

type 'a state = {
  mutable result : (winner * 'a) option; (* first success wins *)
  mutable primary_error : exn option;
  mutable hedge_error : exn option;
  mutable hedge_state : [ `Idle | `Revoked | `Running | `Done ];
  mutable hedge_spawned : bool;
}

let default_clock () = Unix.gettimeofday () *. 1000.0
let default_sleep ms = if ms > 0. then Unix.sleepf (ms /. 1000.)

(* [make_budget] may hand back [Budget.unlimited], which refuses
   cancellation; losing the loser-kill there is fine (the budget can
   never bound work anyway). *)
let cancel_quietly b =
  try Budget.cancel b with Invalid_argument _ -> ()

let run ?(clock = default_clock) ?(sleep = default_sleep)
    ?(make_budget = fun () -> Budget.create ()) ~spawn ~delay_ms ~primary
    ~hedge () =
  if delay_ms < 0. then Xk_util.Err.invalid "Hedge.run: delay_ms < 0";
  let slot =
    Xk_util.Sync.Protected.create
      {
        result = None;
        primary_error = None;
        hedge_error = None;
        hedge_state = `Idle;
        hedge_spawned = false;
      }
  in
  let primary_budget = make_budget () in
  let hedge_budget = make_budget () in
  let with_slot f = Xk_util.Sync.Protected.with_ slot f in
  let hedge_job () =
    let admitted =
      with_slot (fun s ->
          match s.hedge_state with
          | `Idle when s.result = None ->
              s.hedge_state <- `Running;
              true
          | `Idle ->
              s.hedge_state <- `Revoked;
              false
          | `Revoked | `Running | `Done -> false)
    in
    if admitted then begin
      (match hedge hedge_budget with
      | v ->
          let won =
            with_slot (fun s ->
                s.hedge_state <- `Done;
                match s.result with
                | Some _ -> false
                | None ->
                    s.result <- Some (Hedge, v);
                    true)
          in
          if won then cancel_quietly primary_budget
      | exception e ->
          with_slot (fun s ->
              s.hedge_state <- `Done;
              s.hedge_error <- Some e))
    end
  in
  let fire_hedge () =
    let launch =
      with_slot (fun s ->
          if s.result = None && s.primary_error = None && s.hedge_state = `Idle
             && not s.hedge_spawned
          then begin
            s.hedge_spawned <- true;
            true
          end
          else false)
    in
    if launch then spawn hedge_job
  in
  let deadline = clock () +. delay_ms in
  (* Watcher on a borrowed worker: sleep out the delay, fire the hedge
     if the primary is still running. *)
  spawn (fun () ->
      let rec wait () =
        if
          with_slot (fun s ->
              s.result = None && s.primary_error = None
              && s.hedge_state = `Idle)
        then begin
          let now = clock () in
          if now >= deadline then fire_hedge ()
          else begin
            sleep (Float.min 1.0 (deadline -. now));
            wait ()
          end
        end
      in
      wait ());
  (* Primary, inline. *)
  (match primary primary_budget with
  | v ->
      let won =
        with_slot (fun s ->
            match s.result with
            | Some _ -> false
            | None ->
                s.result <- Some (Primary, v);
                true)
      in
      if won then cancel_quietly hedge_budget
  | exception e -> with_slot (fun s -> s.primary_error <- Some e));
  let finish s =
    match (s.result, s.primary_error) with
    | Some (winner, value), _ -> `Done { value; winner; fired = s.hedge_spawned }
    | None, Some pe -> (
        (* Primary failed.  Wait only for a hedge that is truly running;
           revoke one that is idle or merely queued. *)
        match s.hedge_state with
        | `Running -> `Wait
        | `Done -> (
            match s.hedge_error with
            | Some _ | None -> `Raise pe)
        | `Idle | `Revoked ->
            s.hedge_state <- `Revoked;
            `Raise pe)
    | None, None ->
        Xk_util.Err.unreachable
          "Hedge.run: primary returned with neither result nor error"
  in
  let rec settle () =
    match with_slot finish with
    | `Done outcome -> outcome
    | `Raise e -> raise e
    | `Wait ->
        sleep 0.2;
        settle ()
  in
  settle ()
