(* Closed / Open / Half_open circuit breaker.

   Closed counts consecutive failures; at [failure_threshold] the
   breaker opens and [allow] rejects until [reset_after_ms] has elapsed
   on the injected clock, then Half_open admits up to
   [half_open_probes] trial requests: any failure re-opens (and restarts
   the cooldown), [half_open_probes] consecutive successes close.

   The clock is a plain [unit -> float] in milliseconds so tests drive
   state transitions without sleeping.  All state sits behind one
   [Sync.Protected]; the clock is sampled before taking the lock. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;
  reset_after_ms : float;
  half_open_probes : int;
}

let default_config =
  { failure_threshold = 5; reset_after_ms = 1000.0; half_open_probes = 1 }

type core = {
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : float; (* clock ms when we last tripped *)
  mutable probes_in_flight : int; (* Half_open admissions not yet resolved *)
  mutable probe_successes : int;
  mutable opens : int;
  mutable rejected : int;
}

type t = {
  config : config;
  clock : unit -> float;
  on_transition : (state -> state -> unit) option;
  core : core Xk_util.Sync.Protected.t;
}

type stats = { state : state; consecutive_failures : int; opens : int; rejected : int }

let default_clock () = Unix.gettimeofday () *. 1000.0

let create ?(config = default_config) ?(clock = default_clock) ?on_transition
    () =
  if config.failure_threshold < 1 then
    Xk_util.Err.invalid "Circuit_breaker.create: failure_threshold < 1";
  if config.half_open_probes < 1 then
    Xk_util.Err.invalid "Circuit_breaker.create: half_open_probes < 1";
  {
    config;
    clock;
    on_transition;
    core =
      Xk_util.Sync.Protected.create
        {
          state = Closed;
          consecutive_failures = 0;
          opened_at = neg_infinity;
          probes_in_flight = 0;
          probe_successes = 0;
          opens = 0;
          rejected = 0;
        };
  }

let trip t (core : core) =
  core.state <- Open;
  core.opened_at <- t.clock ();
  core.opens <- core.opens + 1;
  core.probes_in_flight <- 0;
  core.probe_successes <- 0

(* Transition callbacks fire after the lock is released: the callback
   belongs to the caller (logging, supervisor accounting) and must not
   be able to deadlock or stall the breaker's own critical section.
   The (from, to) pair observed may therefore lag the live state by one
   racing update, which is fine for its observability purpose. *)
let notify t = function
  | None -> ()
  | Some (from_, to_) -> (
      match t.on_transition with None -> () | Some f -> f from_ to_)

let allow t =
  let now = t.clock () in
  let admitted, transition =
    Xk_util.Sync.Protected.with_ t.core (fun core ->
        match core.state with
        | Closed -> (true, None)
        | Open when now -. core.opened_at >= t.config.reset_after_ms ->
            core.state <- Half_open;
            core.probes_in_flight <- 1;
            core.probe_successes <- 0;
            (true, Some (Open, Half_open))
        | Open ->
            core.rejected <- core.rejected + 1;
            (false, None)
        | Half_open when core.probes_in_flight < t.config.half_open_probes ->
            core.probes_in_flight <- core.probes_in_flight + 1;
            (true, None)
        | Half_open ->
            core.rejected <- core.rejected + 1;
            (false, None))
  in
  notify t transition;
  admitted

let record_success t =
  let transition =
    Xk_util.Sync.Protected.with_ t.core (fun core ->
        core.consecutive_failures <- 0;
        match core.state with
        | Closed -> None
        | Half_open ->
            core.probe_successes <- core.probe_successes + 1;
            if core.probe_successes >= t.config.half_open_probes then begin
              core.state <- Closed;
              core.probes_in_flight <- 0;
              core.probe_successes <- 0;
              Some (Half_open, Closed)
            end
            else None
        | Open ->
            (* Late success from a request admitted before the trip: the
               cooldown still stands, but don't count it against anyone. *)
            None)
  in
  notify t transition

let record_failure t =
  let transition =
    Xk_util.Sync.Protected.with_ t.core (fun core ->
        match core.state with
        | Half_open ->
            trip t core;
            Some (Half_open, Open)
        | Open -> None
        | Closed ->
            core.consecutive_failures <- core.consecutive_failures + 1;
            if core.consecutive_failures >= t.config.failure_threshold then begin
              trip t core;
              Some (Closed, Open)
            end
            else None)
  in
  notify t transition

let state t = Xk_util.Sync.Protected.with_ t.core (fun core -> core.state)

let stats t =
  Xk_util.Sync.Protected.with_ t.core (fun core ->
      {
        state = core.state;
        consecutive_failures = core.consecutive_failures;
        opens = core.opens;
        rejected = core.rejected;
      })

let state_label = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"
