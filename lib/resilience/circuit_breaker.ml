(* Closed / Open / Half_open circuit breaker.

   Closed counts consecutive failures; at [failure_threshold] the
   breaker opens and [allow] rejects until [reset_after_ms] has elapsed
   on the injected clock, then Half_open admits up to
   [half_open_probes] trial requests: any failure re-opens (and restarts
   the cooldown), [half_open_probes] consecutive successes close.

   The clock is a plain [unit -> float] in milliseconds so tests drive
   state transitions without sleeping.  All state sits behind one
   [Sync.Protected]; the clock is sampled before taking the lock. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;
  reset_after_ms : float;
  half_open_probes : int;
}

let default_config =
  { failure_threshold = 5; reset_after_ms = 1000.0; half_open_probes = 1 }

type core = {
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : float; (* clock ms when we last tripped *)
  mutable probes_in_flight : int; (* Half_open admissions not yet resolved *)
  mutable probe_successes : int;
  mutable opens : int;
  mutable rejected : int;
}

type t = { config : config; clock : unit -> float; core : core Xk_util.Sync.Protected.t }

type stats = { state : state; consecutive_failures : int; opens : int; rejected : int }

let default_clock () = Unix.gettimeofday () *. 1000.0

let create ?(config = default_config) ?(clock = default_clock) () =
  if config.failure_threshold < 1 then
    Xk_util.Err.invalid "Circuit_breaker.create: failure_threshold < 1";
  if config.half_open_probes < 1 then
    Xk_util.Err.invalid "Circuit_breaker.create: half_open_probes < 1";
  {
    config;
    clock;
    core =
      Xk_util.Sync.Protected.create
        {
          state = Closed;
          consecutive_failures = 0;
          opened_at = neg_infinity;
          probes_in_flight = 0;
          probe_successes = 0;
          opens = 0;
          rejected = 0;
        };
  }

let trip t (core : core) =
  core.state <- Open;
  core.opened_at <- t.clock ();
  core.opens <- core.opens + 1;
  core.probes_in_flight <- 0;
  core.probe_successes <- 0

let allow t =
  let now = t.clock () in
  Xk_util.Sync.Protected.with_ t.core (fun core ->
      match core.state with
      | Closed -> true
      | Open when now -. core.opened_at >= t.config.reset_after_ms ->
          core.state <- Half_open;
          core.probes_in_flight <- 1;
          core.probe_successes <- 0;
          true
      | Open ->
          core.rejected <- core.rejected + 1;
          false
      | Half_open when core.probes_in_flight < t.config.half_open_probes ->
          core.probes_in_flight <- core.probes_in_flight + 1;
          true
      | Half_open ->
          core.rejected <- core.rejected + 1;
          false)

let record_success t =
  Xk_util.Sync.Protected.with_ t.core (fun core ->
      core.consecutive_failures <- 0;
      match core.state with
      | Closed -> ()
      | Half_open ->
          core.probe_successes <- core.probe_successes + 1;
          if core.probe_successes >= t.config.half_open_probes then begin
            core.state <- Closed;
            core.probes_in_flight <- 0;
            core.probe_successes <- 0
          end
      | Open ->
          (* Late success from a request admitted before the trip: the
             cooldown still stands, but don't count it against anyone. *)
          ())

let record_failure t =
  Xk_util.Sync.Protected.with_ t.core (fun core ->
      match core.state with
      | Half_open -> trip t core
      | Open -> ()
      | Closed ->
          core.consecutive_failures <- core.consecutive_failures + 1;
          if core.consecutive_failures >= t.config.failure_threshold then
            trip t core)

let state t = Xk_util.Sync.Protected.with_ t.core (fun core -> core.state)

let stats t =
  Xk_util.Sync.Protected.with_ t.core (fun core ->
      {
        state = core.state;
        consecutive_failures = core.consecutive_failures;
        opens = core.opens;
        rejected = core.rejected;
      })

let state_label = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"
