(* Per-replica health: a fixed-size ring of the most recent observations
   (ok flag + latency).  All state lives behind one [Sync.Protected]
   value; recording is O(1) and snapshots fold the live window, so the
   router can rank replicas on every request without bookkeeping. *)

type obs = { ok : bool; latency_ms : float }

type state = {
  window : obs option array;
  mutable next : int; (* ring cursor *)
  mutable seen : int; (* total observations ever *)
}

type t = state Xk_util.Sync.Protected.t

type snapshot = {
  observations : int;
  window_size : int;
  successes : int;
  failures : int;
  success_rate : float;
  mean_latency_ms : float;
}

let create ?(window = 32) () =
  if window < 1 then Xk_util.Err.invalid "Health.create: window < 1";
  Xk_util.Sync.Protected.create
    { window = Array.make window None; next = 0; seen = 0 }

let record t ~ok ~latency_ms =
  Xk_util.Sync.Protected.with_ t (fun st ->
      st.window.(st.next) <- Some { ok; latency_ms };
      st.next <- (st.next + 1) mod Array.length st.window;
      st.seen <- st.seen + 1)

let snapshot t =
  Xk_util.Sync.Protected.with_ t (fun st ->
      let successes = ref 0 and failures = ref 0 and lat = ref 0.0 in
      Array.iter
        (function
          | None -> ()
          | Some o ->
              if o.ok then incr successes else incr failures;
              lat := !lat +. o.latency_ms)
        st.window;
      let n = !successes + !failures in
      {
        observations = st.seen;
        window_size = Array.length st.window;
        successes = !successes;
        failures = !failures;
        success_rate =
          (if n = 0 then 1.0 else float_of_int !successes /. float_of_int n);
        mean_latency_ms = (if n = 0 then 0.0 else !lat /. float_of_int n);
      })

let score t =
  let s = snapshot t in
  (* Success rate dominates; among equals, lower latency ranks higher.
     The latency term is squashed into [0, 0.001) so it can never
     outvote a single success-rate difference over a 32-wide window. *)
  s.success_rate +. (0.001 /. (1.0 +. s.mean_latency_ms))
