(** Deterministic chaos schedules for replica serving, layered on
    {!Fault_injection}.

    A schedule addresses events at (shard, replica) pairs — with
    wildcards — and arms kill / latency events at a global {e attempt
    tick} that every {!on_attempt} call advances, so a given schedule
    replays the same failure sequence on every run.  The schedule is
    process-global, like [Fault_injection]'s config: install it once at
    startup (or per test, under the test lock).

    Corruption events are disk-level rather than attempt-level: callers
    resolve [Corrupt] targets to replica segment paths themselves (via
    [Shard_io.replica_path]) and register them with
    [Fault_injection.mark_corrupt] before loading — this module never
    touches storage. *)

exception Killed of { shard : int; replica : int }
(** Raised by {!on_attempt} for an armed kill event: the replica is
    "down" for this attempt.  [Shard_exec] treats it as a replica
    failure and fails over. *)

exception Crashed of string
(** Raised by {!crash_point} for an armed crash event: the process
    "dies" at this durability step.  Mutation code paths place
    {!crash_point} calls between their durability steps and never clean
    up on [Crashed], so everything already flushed stays on disk exactly
    as a [kill -9] would leave it; recovery drills then reopen the
    index and assert it heals. *)

type target = { t_shard : int option; t_replica : int option }
(** [None] is a wildcard matching every shard / replica. *)

type event =
  | Kill of { target : target; from_tick : int }
  | Slow of { target : target; from_tick : int; ms : float }
  | Corrupt of { target : target }
  | Drop of { target : target; from_tick : int }
      (** connection-level: refuse to dial the replica (remote transport
          only — in-process replicas have no connection to drop) *)
  | Crash of { step : string }
      (** process-level: die at a named durability step (see
          [Xk_index.Live.crash_steps]).  Fires once, then disarms, so
          post-crash recovery in the same process runs unimpeded. *)

type schedule = event list

type counters = {
  kills : int;  (** attempts killed so far *)
  slowdowns : int;  (** attempts delayed so far *)
  drops : int;  (** connections refused so far *)
  crashes : int;  (** crash points fired so far *)
}

val install : ?sleep:(float -> unit) -> schedule -> unit
(** Replace the global schedule and reset the tick and counters.
    [sleep] (ms) services [Slow] events; tests inject a recorder. *)

val clear : unit -> unit
val active : unit -> bool

val tick : unit -> int
(** Attempts observed since {!install}. *)

val counters : unit -> counters

val on_attempt : shard:int -> replica:int -> unit
(** Advance the tick and apply the schedule to this attempt: raises
    {!Killed} for an armed kill, sleeps for armed latency (decision is
    made under the schedule lock, the sleep happens outside it).  No-op
    when no schedule is installed — the tick does not advance either,
    so background traffic cannot skew an armed schedule. *)

val on_connect : shard:int -> replica:int -> unit
(** Apply armed [Drop] events to a connection attempt: raises {!Killed}
    when the target's connections are being refused.  Reads the tick
    {e without} advancing it — the surrounding {!on_attempt} already
    counted this attempt.  Called by the remote transport just before
    dialing a replica. *)

val corrupt_targets : unit -> target list
(** The [Corrupt] targets of the installed schedule, for callers to map
    to segment paths and register via [Fault_injection.mark_corrupt]. *)

val corrupt_matches : shard:int -> replica:int -> bool

val crash_armed : string -> bool
(** Whether a [Crash] event for this step is installed and has not fired
    yet.  Torn-write drills consult this before deciding to write only a
    prefix of their bytes; they then call {!crash_point} to fire. *)

val crash_point : string -> unit
(** Fire an armed [Crash] for this step: consume the event (it will not
    fire again), count it, and raise {!Crashed}.  No-op when the step is
    not armed. *)

val crash_steps : unit -> string list
(** The steps of the installed schedule's [Crash] events, for spec
    validation against the steps a subsystem actually implements. *)

val of_spec : string -> (schedule, string) result
(** Parse a comma-separated spec: [kill@s<S>r<R>:<tick>],
    [slow@s<S>r<R>:<tick>:<ms>], [corrupt@s<S>r<R>],
    [drop@s<S>r<R>:<tick>], [crash@<step>]; [S]/[R] accept [*] as a
    wildcard (e.g. [kill@s*r1:0] kills replica 1 of every shard from
    the first attempt). *)
