(** Rolling per-replica health: the last [window] request outcomes and
    latencies, folded into a success rate and mean latency that the
    replica router uses to rank candidates.

    Thread-safe (one private mutex per value); recording an observation
    is O(1), snapshots fold the window on demand.  A fresh window scores
    as fully healthy so new replicas are not starved of traffic. *)

type t

type snapshot = {
  observations : int;  (** total observations ever recorded *)
  window_size : int;
  successes : int;  (** successes inside the live window *)
  failures : int;  (** failures inside the live window *)
  success_rate : float;  (** successes / window observations; 1.0 when empty *)
  mean_latency_ms : float;  (** mean over the live window; 0.0 when empty *)
}

val create : ?window:int -> unit -> t
(** A fresh, empty window (default size 32).  Raises [Invalid_argument]
    on [window < 1]. *)

val record : t -> ok:bool -> latency_ms:float -> unit
(** Append one observation, evicting the oldest once the window is
    full.  Safe from any domain. *)

val snapshot : t -> snapshot

val score : t -> float
(** Routing preference, higher is better: success rate dominant, mean
    latency as a strictly weaker tiebreak (bounded so it can never
    outweigh one success/failure difference).  1.0+ for an empty
    window. *)
