(* Stack-based baseline (the DIL-style merge of XRank [5] and the stack
   algorithms of [6], [10]): all posting lists are merged in document order
   and a stack holding the current root-to-node path aggregates keyword
   containment bottom-up.  Results therefore appear in document order -
   the very property that prevents top-K early termination (Section I). *)

type entry = {
  mutable mask : int;          (* keywords contained in this subtree *)
  mutable desc_full : bool;    (* some strict descendant contains all *)
  alive : float array;         (* best damped score, exclusion applied *)
  best : float array;          (* best damped score, no exclusion *)
  mutable repr : int;          (* an occurrence node inside the subtree *)
}

let fresh k repr =
  {
    mask = 0;
    desc_full = false;
    alive = Array.make k neg_infinity;
    best = Array.make k neg_infinity;
    repr;
  }

type semantics = Elca | Slca

let run ?(budget = Xk_resilience.Budget.unlimited) semantics
    (idx : Xk_index.Index.t) (terms : int list) =
  let k = List.length terms in
  if k = 0 || k > 62 then Xk_util.Err.invalid "Stack.run: 1..62 keywords";
  let label = Xk_index.Index.label idx in
  let decay = Xk_score.Damping.apply (Xk_index.Index.damping idx) 1 in
  let all_bits = (1 lsl k) - 1 in
  let posts = Array.of_list (List.map (Xk_index.Index.posting idx) terms) in
  let cursors = Array.make k 0 in
  let results = ref [] in
  (* The stack is the path of the previously processed occurrence:
     path.(d-1) aggregates the subtree of its depth-d ancestor. *)
  let height = Xk_encoding.Labeling.height label in
  let path = Array.init height (fun _ -> fresh k (-1)) in
  let plen = ref 0 in
  let prev_dewey = ref ([||] : Xk_encoding.Dewey.t) in
  let emit d (e : entry) =
    let report score =
      match Xk_encoding.Labeling.ancestor_at label e.repr ~depth:d with
      | Some node -> results := { Hit.node; score } :: !results
      | None ->
          Xk_util.Err.unreachable
            "Stack.run: stack entry has no ancestor at its depth"
    in
    match semantics with
    | Elca ->
        let ok = ref true and score = ref 0. in
        for i = 0 to k - 1 do
          if e.alive.(i) = neg_infinity then ok := false
          else score := !score +. e.alive.(i)
        done;
        if !ok then report !score
    | Slca ->
        if e.mask = all_bits && not e.desc_full then begin
          let score = ref 0. in
          for i = 0 to k - 1 do
            score := !score +. e.best.(i)
          done;
          report !score
        end
  in
  let pop () =
    let d = !plen in
    let e = path.(d - 1) in
    emit d e;
    if d > 1 then begin
      let p = path.(d - 2) in
      let full = e.mask = all_bits in
      p.mask <- p.mask lor e.mask;
      p.desc_full <- p.desc_full || full || e.desc_full;
      if p.repr < 0 then p.repr <- e.repr;
      for i = 0 to k - 1 do
        if not full then begin
          let v = e.alive.(i) *. decay in
          if v > p.alive.(i) then p.alive.(i) <- v
        end;
        let v = e.best.(i) *. decay in
        if v > p.best.(i) then p.best.(i) <- v
      done
    end;
    plen := d - 1
  in
  let push node =
    let d = !plen in
    let e = path.(d) in
    e.mask <- 0;
    e.desc_full <- false;
    e.repr <- node;
    Array.fill e.alive 0 k neg_infinity;
    Array.fill e.best 0 k neg_infinity;
    plen := d + 1
  in
  let occurrence i dv node g =
    let common =
      min (Xk_encoding.Dewey.common_prefix_len !prev_dewey dv) !plen
    in
    while !plen > common do
      pop ()
    done;
    for _ = !plen + 1 to Array.length dv do
      push node
    done;
    let e = path.(!plen - 1) in
    e.mask <- e.mask lor (1 lsl i);
    if g > e.alive.(i) then e.alive.(i) <- g;
    if g > e.best.(i) then e.best.(i) <- g;
    prev_dewey := dv
  in
  let exhausted = ref false in
  while not !exhausted do
    Xk_resilience.Budget.check budget;
    (* Smallest unconsumed Dewey id across the k cursors. *)
    let besti = ref (-1) and bestd = ref [||] in
    for i = 0 to k - 1 do
      if cursors.(i) < Xk_index.Posting.length posts.(i) then begin
        let d = Xk_index.Posting.dewey posts.(i) cursors.(i) in
        if !besti < 0 || Xk_encoding.Dewey.compare d !bestd < 0 then begin
          besti := i;
          bestd := d
        end
      end
    done;
    if !besti < 0 then exhausted := true
    else begin
      let i = !besti in
      let r = cursors.(i) in
      cursors.(i) <- r + 1;
      occurrence i !bestd
        (Xk_index.Posting.node posts.(i) r)
        (Xk_index.Posting.score posts.(i) r)
    end
  done;
  (* Drain the remaining path: each pop may emit a result, so the
     emission discipline (one poll per emitted result) applies here
     just as in the main loop. *)
  while !plen > 0 do
    Xk_resilience.Budget.check budget;
    pop ()
  done;
  List.rev !results

let elca ?budget idx terms = run ?budget Elca idx terms
let slca ?budget idx terms = run ?budget Slca idx terms
