(** The naive LCA semantics of paper Section II-A: every combination of
    one occurrence per keyword contributes its LCA.  Used by the
    motivation experiment (result-size blowup) and as extra test
    cross-validation; ELCA and SLCA result sets are always subsets. *)

val combination_count : Xk_index.Index.t -> int list -> float
(** prod |Li| - the naive semantics' result size before deduplication. *)

val lca_set : Xk_index.Index.t -> int list -> int list
(** Distinct LCA nodes, linear time, document order. *)

exception Too_many_combinations

val brute : ?max_combinations:int -> Xk_index.Index.t -> int list -> int list
(** Literal enumeration (sorted, distinct); raises
    {!Too_many_combinations} past the cap (default 10^6). *)
