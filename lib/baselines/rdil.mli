(** RDIL (XRank [5]): Threshold-Algorithm-style top-K over
    score-descending lists with B-tree-style probes, the straightforward
    TA application the paper argues against (Section II-C). *)

type stats = { mutable pulled : int; mutable verified : int }

val topk :
  ?stats:stats ->
  ?budget:Xk_resilience.Budget.t ->
  Xk_index.Index.t ->
  int list ->
  k:int ->
  Hit.t list
(** The K best ELCAs, best first.  Exact (same results as the oracle's top
    K), but pays the costs the paper describes: candidate verification
    re-derives the semantic pruning per candidate, and the undamped
    threshold converges slowly.  Polls the budget per sorted access and
    raises [Xk_resilience.Budget.Expired] on expiry (RDIL candidates are
    not confirmed incrementally, so no partial prefix is available). *)
