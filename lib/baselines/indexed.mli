(** Index-based baseline: Indexed Lookup Eager SLCA [6] and indexed ELCA
    with candidate verification [8].  Drives off the shortest list with
    binary-search probes into the others - O(d k |L1| log |L|).

    Both evaluators poll the budget per driver occurrence / candidate and
    raise [Xk_resilience.Budget.Expired] on expiry. *)

val slca : ?budget:Xk_resilience.Budget.t -> Xk_index.Index.t -> int list -> Hit.t list
val elca : ?budget:Xk_resilience.Budget.t -> Xk_index.Index.t -> int list -> Hit.t list
