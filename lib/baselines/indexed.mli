(** Index-based baseline: Indexed Lookup Eager SLCA [6] and indexed ELCA
    with candidate verification [8].  Drives off the shortest list with
    binary-search probes into the others - O(d k |L1| log |L|). *)

val slca : Xk_index.Index.t -> int list -> Hit.t list
val elca : Xk_index.Index.t -> int list -> Hit.t list
