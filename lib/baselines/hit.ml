(* A query result: a node (by labeler index) with its ranking score. *)

type t = { node : int; score : float }

let compare_score_desc a b =
  let c = Float.compare b.score a.score in
  if c <> 0 then c else Int.compare a.node b.node

let compare_node a b = Int.compare a.node b.node

let sort_desc hits = List.sort compare_score_desc hits

let top_k k hits = List.filteri (fun i _ -> i < k) (sort_desc hits)

let nodes hits = List.map (fun h -> h.node) hits
