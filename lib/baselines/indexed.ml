(* Index-based baseline: the Indexed Lookup Eager SLCA algorithm of [6] and
   an EDBT'08-style indexed ELCA algorithm [8].  Both drive off the
   shortest posting list and probe the others by binary search (the role
   BerkeleyDB B-trees play in the original implementations), giving the
   O(d k |L1| log |L|) complexity quoted in Section III-C. *)

let posting_array idx terms =
  Array.of_list (List.map (Xk_index.Index.posting idx) terms)

(* Per-keyword maximum damped score over a document-order range of a list
   (used for SLCA scores, which have no exclusion). *)
let range_best damping p ~lo ~hi ~depth =
  let best = ref neg_infinity in
  for r = lo to hi - 1 do
    let d = Xk_index.Posting.dewey p r in
    let g = Xk_index.Posting.score p r in
    let v = g *. Xk_score.Damping.apply damping (Array.length d - depth) in
    if v > !best then best := v
  done;
  !best

let slca ?(budget = Xk_resilience.Budget.unlimited) (idx : Xk_index.Index.t)
    (terms : int list) =
  let k = List.length terms in
  if k = 0 then Xk_util.Err.invalid "Indexed.slca";
  let label = Xk_index.Index.label idx in
  let damping = Xk_index.Index.damping idx in
  let posts = posting_array idx terms in
  let drv = Elca_verify.shortest_list posts in
  let p1 = posts.(drv) in
  (* Candidate per driver occurrence: its deepest all-containing ancestor. *)
  let cands = ref [] in
  for r = 0 to Xk_index.Posting.length p1 - 1 do
    Xk_resilience.Budget.check budget;
    let x = Xk_index.Posting.dewey p1 r in
    let depth = Elca_verify.cand_depth posts drv x in
    if depth >= 1 then cands := Array.sub x 0 depth :: !cands
  done;
  let cands = Array.of_list (List.sort_uniq Xk_encoding.Dewey.compare !cands) in
  (* A candidate is an SLCA iff no other candidate lies in its subtree; in
     document order it suffices to look at the immediate successor. *)
  let out = ref [] in
  let n = Array.length cands in
  for i = 0 to n - 1 do
    Xk_resilience.Budget.check budget;
    let c = cands.(i) in
    let minimal =
      i = n - 1 || not (Xk_encoding.Dewey.is_ancestor c cands.(i + 1))
    in
    if minimal then begin
      let depth = Array.length c in
      let score = ref 0. in
      Array.iter
        (fun p ->
          let lo, hi = Xk_index.Posting.subtree_range p c in
          score := !score +. range_best damping p ~lo ~hi ~depth)
        posts;
      let node =
        (* Locate the candidate through any driver occurrence below it. *)
        let r = Xk_index.Posting.lower_bound p1 c in
        match
          Xk_encoding.Labeling.ancestor_at label
            (Xk_index.Posting.node p1 r)
            ~depth
        with
        | Some u -> u
        | None ->
            Xk_util.Err.unreachable
              "Indexed.slca: posting node has no ancestor at its depth"
      in
      out := { Hit.node; score = !score } :: !out
    end
  done;
  List.rev !out

let elca ?(budget = Xk_resilience.Budget.unlimited) (idx : Xk_index.Index.t)
    (terms : int list) =
  let k = List.length terms in
  if k = 0 then Xk_util.Err.invalid "Indexed.elca";
  let label = Xk_index.Index.label idx in
  let damping = Xk_index.Index.damping idx in
  let posts = posting_array idx terms in
  let drv = Elca_verify.shortest_list posts in
  let p1 = posts.(drv) in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  for r = 0 to Xk_index.Posting.length p1 - 1 do
    Xk_resilience.Budget.check budget;
    let x = Xk_index.Posting.dewey p1 r in
    let depth = Elca_verify.cand_depth posts drv x in
    if depth >= 1 then begin
      let u = Array.sub x 0 depth in
      let key = Xk_encoding.Dewey.to_string u in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        match Elca_verify.verify posts damping u with
        | None -> ()
        | Some score ->
            let node =
              match
                Xk_encoding.Labeling.ancestor_at label
                  (Xk_index.Posting.node p1 r)
                  ~depth
              with
              | Some n -> n
              | None ->
                  Xk_util.Err.unreachable
                    "Indexed.elca: posting node has no ancestor at its depth"
            in
            out := { Hit.node; score } :: !out
      end
    end
  done;
  List.rev !out
