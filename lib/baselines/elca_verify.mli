(** Shared probe machinery for the index-driven baselines: deepest
    all-containing-ancestor candidates and scan-with-skip ELCA
    verification. *)

val closest_depth :
  Xk_index.Posting.t array -> int -> Xk_encoding.Dewey.t -> int
(** Deepest depth at which an ancestor of the node contains an occurrence
    from list [i]. *)

val cand_depth : Xk_index.Posting.t array -> int -> Xk_encoding.Dewey.t -> int
(** Depth of the node's deepest all-containing ancestor; the node itself
    belongs to the list at the given index. *)

val verify :
  Xk_index.Posting.t array ->
  Xk_score.Damping.t ->
  Xk_encoding.Dewey.t ->
  float option
(** [Some score] iff the node (given as its Dewey id) is an ELCA;
    occurrences under deeper all-containing nodes are excluded with whole
    subtrees skipped per probe. *)

val shortest_list : Xk_index.Posting.t array -> int
