(* Ground-truth ELCA/SLCA straight from the definitions, by a bottom-up
   pass over the whole labeled tree.  Quadratic-ish in tree size and memory
   hungry (per-keyword arrays over all nodes) - meant as the correctness
   oracle for the test suite, not as a competitor.

   Semantics (see DESIGN.md): u is an ELCA iff for every keyword there is
   an occurrence under u with no all-containing node strictly between the
   occurrence and u; u is an SLCA iff u contains all keywords and no strict
   descendant does.  Scores follow Section II-B: per keyword the maximum
   damped local score of the contributing occurrences (for ELCA, of the
   non-excluded ones), combined by sum. *)

let run (idx : Xk_index.Index.t) (terms : int list) =
  let k = List.length terms in
  if k = 0 || k > 62 then Xk_util.Err.invalid "Oracle.run: 1..62 keywords";
  let label = Xk_index.Index.label idx in
  let damping = Xk_index.Index.damping idx in
  let decay = Xk_score.Damping.apply damping 1 in
  let n = Xk_encoding.Labeling.node_count label in
  let all_bits = (1 lsl k) - 1 in
  let mask = Array.make n 0 in
  (* alive.(i): per-node best damped score of keyword i occurrences not
     under any all-containing strict descendant; best.(i): same without the
     exclusion (for SLCA scores). *)
  let alive = Array.init k (fun _ -> Array.make n neg_infinity) in
  let best = Array.init k (fun _ -> Array.make n neg_infinity) in
  List.iteri
    (fun i tid ->
      let p = Xk_index.Index.posting idx tid in
      for r = 0 to Xk_index.Posting.length p - 1 do
        let node = Xk_index.Posting.node p r in
        let g = Xk_index.Posting.score p r in
        mask.(node) <- mask.(node) lor (1 lsl i);
        if g > alive.(i).(node) then alive.(i).(node) <- g;
        if g > best.(i).(node) then best.(i).(node) <- g
      done)
    terms;
  let desc_full = Array.make n false in
  let elcas = ref [] and slcas = ref [] in
  (* Children carry larger indexes than their parents (document order), so
     a single reverse scan finalizes every node before its parent sees it. *)
  let finalize u =
    if mask.(u) = all_bits then begin
      let is_elca = ref true in
      let score = ref 0. in
      for i = 0 to k - 1 do
        if alive.(i).(u) = neg_infinity then is_elca := false
        else score := !score +. alive.(i).(u)
      done;
      if !is_elca then elcas := { Hit.node = u; score = !score } :: !elcas;
      if not desc_full.(u) then begin
        let score = ref 0. in
        for i = 0 to k - 1 do
          score := !score +. best.(i).(u)
        done;
        slcas := { Hit.node = u; score = !score } :: !slcas
      end
    end
  in
  for u = n - 1 downto 1 do
    finalize u;
    let p = Xk_encoding.Labeling.parent label u in
    let u_full = mask.(u) = all_bits in
    mask.(p) <- mask.(p) lor mask.(u);
    desc_full.(p) <- desc_full.(p) || u_full || desc_full.(u);
    for i = 0 to k - 1 do
      if not u_full then begin
        let v = alive.(i).(u) *. decay in
        if v > alive.(i).(p) then alive.(i).(p) <- v
      end;
      let v = best.(i).(u) *. decay in
      if v > best.(i).(p) then best.(i).(p) <- v
    done
  done;
  if n > 0 then finalize 0;
  (List.rev !elcas, List.rev !slcas)

let elca idx terms = fst (run idx terms)
let slca idx terms = snd (run idx terms)
