(* RDIL (XRank [5]): the straightforward application of the Threshold
   Algorithm to XML keyword search that the paper argues against
   (Section II-C).

   Each inverted list is sorted by descending local score.  At every step
   one occurrence is pulled from the list with the highest next score; its
   deepest all-containing ancestor is located by closest-occurrence probes
   (the role of the B-trees over the Dewey-ordered lists) and verified as
   an ELCA with the scan-and-skip verifier.  The scores of unseen results
   are bounded by the sum of the next undamped local scores; generated
   results at or above the bound are emitted without blocking.

   The two weaknesses the paper points out are visible in this
   implementation: verification re-derives the semantic pruning from
   scratch for every candidate, and a high local score says nothing about
   the damped global score, so the threshold decreases slowly. *)

type stats = { mutable pulled : int; mutable verified : int }

let topk ?stats ?(budget = Xk_resilience.Budget.unlimited)
    (idx : Xk_index.Index.t) (terms : int list) ~k:want =
  let k = List.length terms in
  if k = 0 then Xk_util.Err.invalid "Rdil.topk";
  let label = Xk_index.Index.label idx in
  let damping = Xk_index.Index.damping idx in
  let posts = Array.of_list (List.map (Xk_index.Index.posting idx) terms) in
  (* Score-descending row orders: the "ranked" Dewey inverted lists. *)
  let orders =
    Array.map
      (fun p ->
        let n = Xk_index.Posting.length p in
        let rows = Array.init n (fun r -> r) in
        Array.sort
          (fun a b ->
            let c =
              Float.compare (Xk_index.Posting.score p b)
                (Xk_index.Posting.score p a)
            in
            if c <> 0 then c else Int.compare a b)
          rows;
        rows)
      posts
  in
  let cursors = Array.make k 0 in
  let next_score i =
    if cursors.(i) >= Array.length orders.(i) then neg_infinity
    else Xk_index.Posting.score posts.(i) orders.(i).(cursors.(i))
  in
  let processed : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let blocked : int Xk_util.Heap.t = Xk_util.Heap.create () in
  let out = ref [] and emitted = ref 0 in
  let bump_stat f = match stats with Some s -> f s | None -> () in
  let threshold () =
    let t = ref 0. in
    for i = 0 to k - 1 do
      t := !t +. next_score i
    done;
    !t (* neg_infinity once any list is exhausted: all results generated *)
  in
  let flush () =
    let rec go () =
      if !emitted < want then
        match Xk_util.Heap.peek blocked with
        | Some (score, node) when score >= threshold () ->
            ignore (Xk_util.Heap.pop blocked);
            out := { Hit.node; score } :: !out;
            incr emitted;
            go ()
        | Some _ | None -> ()
    in
    go ()
  in
  let exhausted () = Array.for_all2 (fun c o -> c >= Array.length o) cursors orders in
  while !emitted < want && not (exhausted ()) do
    Xk_resilience.Budget.check budget;
    (* Sorted access on the list with the highest next local score. *)
    let besti = ref 0 in
    for i = 1 to k - 1 do
      if next_score i > next_score !besti then besti := i
    done;
    let i = !besti in
    let row = orders.(i).(cursors.(i)) in
    cursors.(i) <- cursors.(i) + 1;
    bump_stat (fun s -> s.pulled <- s.pulled + 1);
    let x = Xk_index.Posting.dewey posts.(i) row in
    let depth = Elca_verify.cand_depth posts i x in
    if depth >= 1 then begin
      let u = Array.sub x 0 depth in
      let key = Xk_encoding.Dewey.to_string u in
      if not (Hashtbl.mem processed key) then begin
        Hashtbl.add processed key ();
        bump_stat (fun s -> s.verified <- s.verified + 1);
        match Elca_verify.verify posts damping u with
        | None -> ()
        | Some score ->
            let node =
              match
                Xk_encoding.Labeling.ancestor_at label
                  (Xk_index.Posting.node posts.(i) row)
                  ~depth
              with
              | Some n -> n
              | None ->
                  Xk_util.Err.unreachable
                    "Rdil.topk: posting node has no ancestor at its depth"
            in
            Xk_util.Heap.push blocked score node
      end
    end;
    flush ()
  done;
  flush ();
  List.rev !out
