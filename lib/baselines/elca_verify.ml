(* Shared ELCA machinery for the probe-driven baselines (indexed, RDIL):
   candidate computation by closest-occurrence probes and candidate
   verification by a scan that skips excluded (all-containing) subtrees. *)

(* Deepest depth at which an ancestor of [x] contains an occurrence from
   list [i]: the longest common prefix with the closest occurrences on
   either side in document order. *)
let closest_depth (posts : Xk_index.Posting.t array) i (x : Xk_encoding.Dewey.t)
    =
  let p = posts.(i) in
  let best = ref 0 in
  (match Xk_index.Posting.pred p x with
  | Some r ->
      best :=
        max !best
          (Xk_encoding.Dewey.common_prefix_len x (Xk_index.Posting.dewey p r))
  | None -> ());
  (match Xk_index.Posting.succ p x with
  | Some r ->
      best :=
        max !best
          (Xk_encoding.Dewey.common_prefix_len x (Xk_index.Posting.dewey p r))
  | None -> ());
  !best

(* Depth of the deepest all-containing ancestor of [x], where [x] itself
   belongs to list [self] (0 when some keyword is absent from the tree). *)
let cand_depth posts self (x : Xk_encoding.Dewey.t) =
  let depth = ref (Array.length x) in
  Array.iteri
    (fun i _ -> if i <> self then depth := min !depth (closest_depth posts i x))
    posts;
  !depth

(* Verify that the node [u] (a Dewey prefix of the given [depth]) is an
   ELCA; return its ranking score if so.  For each keyword the subtree
   range of [u] is scanned for an occurrence whose deepest all-containing
   ancestor is [u] itself; occurrences under a deeper all-containing node w
   are excluded and subtree(w) is skipped wholesale. *)
let verify (posts : Xk_index.Posting.t array) damping (u : Xk_encoding.Dewey.t)
    =
  let depth = Array.length u in
  let ok = ref true in
  let score = ref 0. in
  Array.iteri
    (fun i p ->
      if !ok then begin
        let lo, hi = Xk_index.Posting.subtree_range p u in
        let best = ref neg_infinity in
        let rc = ref lo in
        while !rc < hi do
          let y = Xk_index.Posting.dewey p !rc in
          let dy = cand_depth posts i y in
          if dy = depth then begin
            let g = Xk_index.Posting.score p !rc in
            let v =
              g *. Xk_score.Damping.apply damping (Array.length y - depth)
            in
            if v > !best then best := v;
            incr rc
          end
          else begin
            (* y sits under a deeper all-containing node w: skip w. *)
            let w = Array.sub y 0 dy in
            let next =
              Xk_index.Posting.lower_bound p (Xk_encoding.Dewey.range_end w)
            in
            rc := max next (!rc + 1)
          end
        done;
        if !best = neg_infinity then ok := false
        else score := !score +. !best
      end)
    posts;
  if !ok then Some !score else None

let shortest_list (posts : Xk_index.Posting.t array) =
  let best = ref 0 in
  Array.iteri
    (fun i (p : Xk_index.Posting.t) ->
      if Xk_index.Posting.length p < Xk_index.Posting.length posts.(!best) then
        best := i)
    posts;
  !best
