(** Stack-based baseline (XRank/DIL-style [5], [6]): all posting lists are
    merged in document order and a stack over the current root-to-node
    path aggregates containment bottom-up.  Results come in document
    order - the property that blocks top-K early termination. *)

val elca : Xk_index.Index.t -> int list -> Hit.t list
(** Complete ELCA set for a list of term ids, document order. *)

val slca : Xk_index.Index.t -> int list -> Hit.t list
