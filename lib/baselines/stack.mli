(** Stack-based baseline (XRank/DIL-style [5], [6]): all posting lists are
    merged in document order and a stack over the current root-to-node
    path aggregates containment bottom-up.  Results come in document
    order - the property that blocks top-K early termination.

    The merge loop polls the budget per consumed occurrence and raises
    [Xk_resilience.Budget.Expired] on expiry (complete-result semantics
    admit no partial answer). *)

val elca : ?budget:Xk_resilience.Budget.t -> Xk_index.Index.t -> int list -> Hit.t list
(** Complete ELCA set for a list of term ids, document order. *)

val slca : ?budget:Xk_resilience.Budget.t -> Xk_index.Index.t -> int list -> Hit.t list
