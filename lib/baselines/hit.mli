(** A query result: a node (by labeler index) with its ranking score. *)

type t = { node : int; score : float }

val compare_score_desc : t -> t -> int
(** Descending score, node index as the tiebreak. *)

val compare_node : t -> t -> int

val sort_desc : t list -> t list

val top_k : int -> t list -> t list
(** The K best by score. *)

val nodes : t list -> int list
