(* The naive LCA semantics of Section II-A, which the paper's introduction
   argues against: LCA(L1, ..., Lk) = { lca(v1, ..., vk) | vi in Li }.
   The combination count is prod |Li| - exponential in the query size -
   though many combinations share an LCA.

   Two implementations:

   - [lca_set]: the distinct-LCA set in linear time, from the
     characterization: u is the LCA of some combination iff u contains all
     keywords and either u is itself an occurrence (pick it and the LCA is
     pinned to u) or at least two distinct children subtrees of u hold
     occurrences (pick witnesses on both sides, completing the combination
     anywhere under u);
   - [brute]: literal enumeration with a combination cap, used to validate
     the characterization in the test suite and by the motivation bench. *)

let combination_count (idx : Xk_index.Index.t) terms =
  List.fold_left
    (fun acc tid -> acc *. float_of_int (Xk_index.Index.df idx tid))
    1. terms

(* Distinct LCAs, linear time, document order. *)
let lca_set (idx : Xk_index.Index.t) (terms : int list) : int list =
  let k = List.length terms in
  if k = 0 || k > 62 then Xk_util.Err.invalid "Naive_lca.lca_set: 1..62 keywords";
  let label = Xk_index.Index.label idx in
  let n = Xk_encoding.Labeling.node_count label in
  let all_bits = (1 lsl k) - 1 in
  let mask = Array.make n 0 in
  let direct = Array.make n false in
  (* Children subtrees (of each node) containing occurrences, capped at 2. *)
  let occ_children = Array.make n 0 in
  List.iteri
    (fun i tid ->
      let nodes, _ = Xk_index.Index.raw_rows idx tid in
      Array.iter
        (fun v ->
          mask.(v) <- mask.(v) lor (1 lsl i);
          direct.(v) <- true)
        nodes)
    terms;
  let out = ref [] in
  let finalize u =
    if
      mask.(u) = all_bits
      && (direct.(u) || (k >= 2 && occ_children.(u) >= 2))
    then out := u :: !out
  in
  (* Children carry larger indexes than parents: one reverse scan. *)
  for u = n - 1 downto 1 do
    finalize u;
    let p = Xk_encoding.Labeling.parent label u in
    if mask.(u) <> 0 then occ_children.(p) <- min 2 (occ_children.(p) + 1);
    mask.(p) <- mask.(p) lor mask.(u)
  done;
  if n > 0 then finalize 0;
  List.rev !out

exception Too_many_combinations

(* Literal enumeration; raises [Too_many_combinations] past the cap. *)
let brute ?(max_combinations = 1_000_000) (idx : Xk_index.Index.t)
    (terms : int list) : int list =
  if terms = [] then Xk_util.Err.invalid "Naive_lca.brute: no keywords";
  if combination_count idx terms > float_of_int max_combinations then
    raise Too_many_combinations;
  let label = Xk_index.Index.label idx in
  let lists =
    List.map
      (fun tid ->
        let nodes, _ = Xk_index.Index.raw_rows idx tid in
        Array.map (fun v -> Xk_encoding.Labeling.jdewey_seq label v) nodes)
      terms
  in
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  (* [path] is the JDewey path of the LCA of the occurrences chosen so
     far; shrinking it to the common level with each further choice is
     exactly lca(v1, ..., vk). *)
  let rec enum (path : Xk_encoding.Jdewey.t option) lists =
    match lists with
    | [] -> (
        match path with
        | Some p when Array.length p > 0 ->
            Hashtbl.replace seen (Array.length p, p.(Array.length p - 1)) ()
        | Some _ | None -> ())
    | l :: rest ->
        Array.iter
          (fun (s : Xk_encoding.Jdewey.t) ->
            let path' =
              match path with
              | None -> s
              | Some p -> Array.sub p 0 (Xk_encoding.Jdewey.lca_level p s)
            in
            enum (Some path') rest)
          l
  in
  enum None lists;
  Hashtbl.fold
    (fun (depth, jnum) () acc ->
      match Xk_encoding.Labeling.find label ~depth ~jnum with
      | Some node -> node :: acc
      | None -> acc)
    seen []
  |> List.sort Int.compare
