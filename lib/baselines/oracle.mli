(** Definitional ground truth for ELCA and SLCA, by a bottom-up pass over
    the whole labeled tree.  Memory- and time-hungry by design: this is
    the correctness oracle of the test suite, not a competitor. *)

val run : Xk_index.Index.t -> int list -> Hit.t list * Hit.t list
(** [(elcas, slcas)] for a list of term ids (1..62 keywords), in document
    order, with Section II-B scores. *)

val elca : Xk_index.Index.t -> int list -> Hit.t list
val slca : Xk_index.Index.t -> int list -> Hit.t list
