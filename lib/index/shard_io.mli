(** Persistence for sharded indices: one CRC-checked manifest plus N
    {!Index_io} segment replicas per shard.

    The manifest records the partition (subtree-to-shard assignment and
    shard count) and each shard's replica basenames; segments live next
    to the manifest, so a saved shard set can be moved as a directory.
    Loading re-derives each shard's sub-document from the corpus and the
    stored assignment, then attaches the shard segments with
    corpus-global ranking statistics — exactly what {!Sharding.partition}
    builds in memory.

    Replicas are the storage failure domain: each copy is written and
    verified independently at save time, and the loader falls back
    across copies in manifest order on [Corrupted] / [Truncated] /
    [Io_failed], so a shard is lost only when {e every} replica fails.
    Failures are typed per layer: a bad manifest is {!Manifest}, a lost
    shard is {!Shard} and carries every replica's failure with its
    attempt count.  Both layers run the same retry/fault-injection
    machinery as {!Index_io}. *)

type error =
  | Manifest of { error : Index_io.error; attempts : int }
      (** the manifest itself failed to load, after [attempts] reads *)
  | Shard of { shard : int; failures : (string * Index_io.load_error) list }
      (** every replica of a shard failed; one entry per replica file *)

val error_message : error -> string

val segment_path : string -> shard:int -> string
(** Where shard [shard] of the manifest at [path] stores its primary
    segment ([path] with a [.NNN.seg] suffix) — replica 0. *)

val replica_path : string -> shard:int -> replica:int -> string
(** Replica [replica] of shard [shard]: replica 0 is {!segment_path},
    further copies add an [.rN] infix ([path.NNN.rN.seg]). *)

exception Verify_failed of string
(** Raised by {!save} when a freshly written replica fails its
    post-save framing/CRC verification. *)

val save :
  ?replicas:int ->
  ?endpoints:(string * int) array array ->
  Sharding.t ->
  string ->
  unit
(** Write the manifest at [path] and [replicas] (default 1) segment
    copies per shard beside it, each atomically (temp file + rename)
    and each verified ({!Index_io.verify}) after the write.
    [endpoints], when given, records a serving (host, port) per replica
    — shape [shards x replicas] — so a gather tier can dial the fleet
    straight from the manifest.  Raises [Invalid_argument] on
    [replicas < 1] or a mis-shaped [endpoints], and {!Verify_failed} if
    a written copy does not read back clean. *)

val load_result :
  ?damping:Xk_score.Damping.t ->
  ?cache_capacity:int ->
  ?retries:int ->
  ?backoff_ms:float ->
  ?verify_columns:bool ->
  Xk_xml.Xml_tree.document ->
  string ->
  (Sharding.t, error) result
(** Load a sharded index of [doc] from the manifest at [path], falling
    back across each shard's replicas in manifest order.  Transient IO
    errors and checksum mismatches are retried per file with exponential
    backoff (defaults as in {!Index_io.load_result}); never raises on
    bad input.  [verify_columns] makes every v3 segment verify its
    column checksums eagerly at open ({!Index_io.load_result}), so a
    damaged replica is rejected — and fallen over — at load time. *)

val replica_files : string -> (string array array, error) result
(** The full replica paths recorded in the manifest at [path], indexed
    [shard][replica].  Chaos drivers use this to map (shard, replica)
    corruption targets onto segment files. *)

val endpoints : string -> ((string * int) option array array, error) result
(** The serving endpoints recorded in the manifest at [path], indexed
    [shard][replica]; [None] per replica with no endpoint (and for every
    replica of a v2 manifest). *)

val partition_spec : string -> (int * int array, error) result
(** The shard count and subtree-to-shard assignment recorded in the
    manifest at [path] — what a repair rebuild needs to re-partition the
    corpus exactly as the stored shards were ({!Sharding.partition}
    [~assignment]). *)

(** Typed per-copy state, as reported by {!replica_status}: what a
    repair planner needs to know about each copy without attempting a
    full load. *)
type copy_status =
  | Copy_clean  (** the copy passes full {!Index_io.verify} *)
  | Copy_damaged of Index_io.load_error
      (** present but failed verification, with its attempt count *)
  | Copy_missing  (** the file is gone *)

val copy_status_label : copy_status -> string

val replica_status :
  ?retries:int ->
  ?backoff_ms:float ->
  string ->
  ((string * copy_status) array array, error) result
(** The verification state of every copy recorded in the manifest at
    [path], indexed [shard][replica], without building any index: each
    present copy runs full {!Index_io.verify} (header, directory, terms,
    and per-term row CRCs) with the usual retry envelope.  This is the
    repair-planning view: [Xk_index.Repair] and the scrubber classify
    from it, and a {!Fault_injection.mark_corrupt}/heal cycle round-trips
    through it ([Copy_damaged] while marked, [Copy_clean] after the mark
    is healed and the copy rewritten). *)

val is_manifest : string -> bool
(** Whether the file starts with a shard-manifest magic (current v3,
    v2, or legacy v1; used by the CLI to sniff sharded vs. plain
    segments).  False on unreadable files. *)
