(** Persistence for sharded indices: one CRC-checked manifest plus one
    {!Index_io} segment per shard.

    The manifest records the partition (subtree-to-shard assignment and
    shard count) and the shard segments' basenames; segments live next to
    the manifest, so a saved shard set can be moved as a directory.
    Loading re-derives each shard's sub-document from the corpus and the
    stored assignment, then attaches the shard segments with
    corpus-global ranking statistics — exactly what {!Sharding.partition}
    builds in memory.

    Failures are typed per layer: a bad manifest is {!Manifest}, a bad
    shard segment is {!Shard} and names the shard, so one corrupted
    segment degrades into a reportable per-shard failure instead of a
    crash.  Both layers run the same retry/fault-injection machinery as
    {!Index_io}. *)

type error =
  | Manifest of Index_io.error  (** the manifest itself failed to load *)
  | Shard of { shard : int; file : string; error : Index_io.error }
      (** a shard segment failed to load *)

val error_message : error -> string

val segment_path : string -> shard:int -> string
(** Where shard [shard] of the manifest at [path] stores its segment
    ([path] with a [.NNN.seg] suffix). *)

val save : Sharding.t -> string -> unit
(** Write the manifest at [path] and every shard segment beside it, each
    atomically (temp file + rename). *)

val load_result :
  ?damping:Xk_score.Damping.t ->
  ?cache_capacity:int ->
  ?retries:int ->
  ?backoff_ms:float ->
  Xk_xml.Xml_tree.document ->
  string ->
  (Sharding.t, error) result
(** Load a sharded index of [doc] from the manifest at [path].  Transient
    IO errors and checksum mismatches are retried per file with
    exponential backoff (defaults as in {!Index_io.load_result}); never
    raises on bad input. *)

val is_manifest : string -> bool
(** Whether the file starts with the shard-manifest magic (used by the
    CLI to sniff sharded vs. plain segments).  False on unreadable
    files. *)
