(** Score-ordered organization of a JDewey list for top-K processing
    (paper Section IV-C, Figure 7): rows grouped by sequence length,
    descending local score within a group. *)

type group = { len : int; rows : int array (** descending local score *) }

type t

val make : Jlist.t -> Xk_score.Damping.t -> t

val jlist : t -> Jlist.t

val groups : t -> group array
(** Ascending [len]. *)

val max_damped : t -> level:int -> float
(** Static ceiling of the damped scores any row can contribute at a level;
    [neg_infinity] when the level is empty.  Implements the cross-column
    upper bounds (including the paper's column-skip rule). *)

val has_len : t -> int -> bool

val encoded_size : t -> int
(** On-disk bytes in the score-ordered layout (Table I, "Top-K Join"). *)
