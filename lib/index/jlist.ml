(* The JDewey inverted list of one keyword: document-ordered rows (one per
   node directly containing the keyword) with their JDewey sequences and
   local scores, plus the per-level columns the join-based algorithms scan.

   Columns may be materialized eagerly (from in-memory sequences) or
   decoded on demand from a column store ({!Jstore}): the join algorithms
   only touch the columns of the levels they visit, which is the paper's
   "the algorithm does not read the whole JDewey sequences from the disk
   at once" I/O argument.  The sequences themselves are only forced by
   consumers that need per-row values (the top-K cursors). *)

type t = {
  seqs : Xk_encoding.Jdewey.t array Lazy.t; (* ascending in JDewey order *)
  nodes : int array;                        (* node index per row *)
  scores : float array;                     (* local score g per row *)
  row_lens : int array;                     (* sequence length per row *)
  max_len : int;
  columns : Column.t option array; (* columns.(l-1) is level l *)
  loader : (int -> Column.t) option; (* decode level on miss *)
}

let length t = Array.length t.nodes
let max_len t = t.max_len
let seq t r = (Lazy.force t.seqs).(r)
let node t r = t.nodes.(r)
let score t r = t.scores.(r)
let row_len t r = t.row_lens.(r)

let column t ~level =
  if level < 1 || level > t.max_len then
    Xk_util.Err.invalid "Jlist.column: level out of range";
  match t.columns.(level - 1) with
  | Some c -> c
  | None -> (
      match t.loader with
      | None ->
          (* eager lists always populate all columns *)
          Xk_util.Err.unreachable "Jlist.column: eager list missing a column"
      | Some load ->
          let c = load level in
          t.columns.(level - 1) <- Some c;
          c)

let make ~seqs ~nodes ~scores =
  let n = Array.length seqs in
  if Array.length nodes <> n || Array.length scores <> n then
    Xk_util.Err.invalid "Jlist.make: length mismatch";
  let max_len = Array.fold_left (fun m s -> max m (Array.length s)) 0 seqs in
  let columns =
    Array.init max_len (fun i ->
        Some (Column.build seqs ~level:(i + 1)))
  in
  {
    seqs = Lazy.from_val seqs;
    nodes;
    scores;
    row_lens = Array.map Array.length seqs;
    max_len;
    columns;
    loader = None;
  }

(* A store-backed list: columns decode on first touch; sequences (needed
   only by per-row consumers such as the top-K cursors) reconstruct from
   all columns when forced. *)
let make_lazy ~nodes ~scores ~row_lens ~max_len ~loader =
  let n = Array.length nodes in
  if Array.length scores <> n || Array.length row_lens <> n then
    Xk_util.Err.invalid "Jlist.make_lazy: length mismatch";
  let columns = Array.make max_len None in
  let rec t =
    {
      seqs =
        lazy
          (let seqs = Array.init n (fun r -> Array.make row_lens.(r) 0) in
           for level = 1 to max_len do
             let c = column t ~level in
             Array.iter
               (fun (run : Column.run) ->
                 for r = run.start_row to run.start_row + run.count - 1 do
                   seqs.(r).(level - 1) <- run.value
                 done)
               (Column.runs c)
           done;
           seqs);
      nodes;
      scores;
      row_lens;
      max_len;
      columns;
      loader = Some loader;
    }
  in
  t

(* Serialized size of the list in the join-based layout: every column
   through the column codec, plus per-row node payloads (node ids as
   varints).  Used by the Table I accounting. *)
let encoded_size t =
  let cols = ref 0 in
  for level = 1 to t.max_len do
    cols := !cols + Column.encoded_size (column t ~level)
  done;
  let payload =
    Array.fold_left (fun acc v -> acc + Xk_storage.Varint.size v) 0 t.nodes
  in
  !cols + payload
