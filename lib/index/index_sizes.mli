(** Index-size accounting for Table I: serialized bytes of every index
    flavour compared in the paper. *)

type flavour_size = {
  inverted_lists : int;
  auxiliary : int;
      (** sparse indices (join flavours) or B-trees (RDIL); 0 otherwise *)
}

type report = {
  join_based : flavour_size;
  stack_based : flavour_size;
  index_based : flavour_size;
  topk_join : flavour_size;
  rdil : flavour_size;
}

val report : Index.t -> report
(** Runs the real serializers over every term of the dictionary. *)

val zero : report

val add : report -> report -> report
(** Flavour-wise sum — the report of a sharded index is the sum of its
    shards' reports. *)

val aggregate : report list -> report

val total : flavour_size -> int
(** [inverted_lists + auxiliary] of one flavour (convenience for
    display). *)
