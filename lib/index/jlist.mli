(** The JDewey inverted list of one keyword: document-ordered rows with
    JDewey sequences and local scores, plus per-level columns. *)

type t

val make :
  seqs:Xk_encoding.Jdewey.t array ->
  nodes:int array ->
  scores:float array ->
  t
(** Rows must already be in JDewey (= document) order. *)

val make_lazy :
  nodes:int array ->
  scores:float array ->
  row_lens:int array ->
  max_len:int ->
  loader:(int -> Column.t) ->
  t
(** A store-backed list: [loader level] decodes a column on first touch
    (the paper's column-at-a-time disk reads); sequences reconstruct from
    all columns if a per-row consumer forces them. *)

val length : t -> int
(** Number of rows (occurrences). *)

val max_len : t -> int
(** Longest sequence length = deepest populated level. *)

val seq : t -> int -> Xk_encoding.Jdewey.t
val node : t -> int -> int
val score : t -> int -> float
val row_len : t -> int -> int

val column : t -> level:int -> Column.t

val encoded_size : t -> int
(** On-disk bytes in the join-based column layout (Table I accounting). *)
