(* Growable int arrays used while accumulating postings. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () = { data = Array.make (max 1 capacity) 0; len = 0 }

let push b x =
  if b.len = Array.length b.data then begin
    let data = Array.make (2 * b.len) 0 in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let length b = b.len
let get b i = b.data.(i)
let contents b = Array.sub b.data 0 b.len
