(* Index-size accounting for Table I.  Each flavour is measured by running
   the corresponding real serializer over every term's list:

   - join-based: column codec (delta blocks / run-length triples) plus
     sparse indices over large columns;
   - stack-based: prefix-compressed Dewey lists;
   - index-based: one (keyword, Dewey) composite-key B-tree entry per
     occurrence (the BerkeleyDB layout of [6], [8]);
   - top-K join: score-ordered group layout plus the same sparse indices;
   - RDIL: the Dewey lists plus one B+-tree per keyword.

   Every flavour also carries the dictionary bytes. *)

type flavour_size = { inverted_lists : int; auxiliary : int }

type report = {
  join_based : flavour_size;   (* auxiliary = sparse indices *)
  stack_based : flavour_size;  (* auxiliary = 0 *)
  index_based : flavour_size;  (* inverted_lists = composite B-tree *)
  topk_join : flavour_size;    (* auxiliary = sparse indices *)
  rdil : flavour_size;         (* auxiliary = per-list B-trees *)
}

let zero_flavour = { inverted_lists = 0; auxiliary = 0 }

let zero =
  {
    join_based = zero_flavour;
    stack_based = zero_flavour;
    index_based = zero_flavour;
    topk_join = zero_flavour;
    rdil = zero_flavour;
  }

let add_flavour a b =
  {
    inverted_lists = a.inverted_lists + b.inverted_lists;
    auxiliary = a.auxiliary + b.auxiliary;
  }

let add a b =
  {
    join_based = add_flavour a.join_based b.join_based;
    stack_based = add_flavour a.stack_based b.stack_based;
    index_based = add_flavour a.index_based b.index_based;
    topk_join = add_flavour a.topk_join b.topk_join;
    rdil = add_flavour a.rdil b.rdil;
  }

let aggregate = List.fold_left add zero

let total f = f.inverted_lists + f.auxiliary

let sparse_threshold_runs = 256

let sparse_size_of_jlist jl =
  let total = ref 0 in
  for level = 1 to Jlist.max_len jl do
    let c = Jlist.column jl ~level in
    if Column.num_runs c >= sparse_threshold_runs then begin
      let sp = Sparse_index.build c in
      total := !total + Sparse_index.encoded_size sp
    end
  done;
  !total

let report (idx : Index.t) =
  let dict_bytes = Xk_text.Dictionary.approx_bytes (Index.dict idx) in
  let join_il = ref 0
  and join_sparse = ref 0
  and stack_il = ref 0
  and topk_il = ref 0 in
  let postings_for_btree = ref [] in
  let terms = Index.term_count idx in
  for id = 0 to terms - 1 do
    if Index.df idx id > 0 then begin
      (* Build the shapes without going through the per-term caches: this
         pass runs over the whole dictionary, so lists are discarded
         immediately after being measured. *)
      let label = Index.label idx in
      let r_nodes, _tfs = Index.raw_rows idx id in
      let scores = Index.local_scores idx id in
      let seqs =
        Array.map (fun n -> Xk_encoding.Labeling.jdewey_seq label n) r_nodes
      in
      let deweys =
        Array.map (fun n -> Xk_encoding.Labeling.dewey label n) r_nodes
      in
      let jl = Jlist.make ~seqs ~nodes:r_nodes ~scores in
      join_il := !join_il + Jlist.encoded_size jl;
      join_sparse := !join_sparse + sparse_size_of_jlist jl;
      let p = Posting.make ~deweys ~nodes:r_nodes ~scores in
      stack_il := !stack_il + Posting.encoded_size p;
      let sl = Score_list.make jl (Index.damping idx) in
      topk_il := !topk_il + Score_list.encoded_size sl;
      postings_for_btree := (Index.term idx id, deweys) :: !postings_for_btree
    end
  done;
  let btree = Xk_storage.Btree_sim.composite_btree_size !postings_for_btree in
  let rdil_btrees = Xk_storage.Btree_sim.per_list_btree_size !postings_for_btree in
  {
    join_based =
      { inverted_lists = !join_il + dict_bytes; auxiliary = !join_sparse };
    stack_based = { inverted_lists = !stack_il + dict_bytes; auxiliary = 0 };
    index_based = { inverted_lists = btree; auxiliary = 0 };
    topk_join =
      { inverted_lists = !topk_il + dict_bytes; auxiliary = !join_sparse };
    rdil = { inverted_lists = !stack_il + dict_bytes; auxiliary = rdil_btrees };
  }
