(** Document-ordered Dewey posting list (the baselines' inverted-list
    view). *)

type t

val make :
  deweys:Xk_encoding.Dewey.t array ->
  nodes:int array ->
  scores:float array ->
  t

val length : t -> int
val dewey : t -> int -> Xk_encoding.Dewey.t
val node : t -> int -> int
val score : t -> int -> float

val lower_bound : t -> Xk_encoding.Dewey.t -> int
(** First row with dewey >= the argument. *)

val succ : t -> Xk_encoding.Dewey.t -> int option
(** Closest row at or after a Dewey id. *)

val pred : t -> Xk_encoding.Dewey.t -> int option
(** Closest row strictly before a Dewey id. *)

val count_in_subtree : t -> Xk_encoding.Dewey.t -> int
val subtree_range : t -> Xk_encoding.Dewey.t -> int * int

val encoded_size : t -> int
(** On-disk bytes with prefix-compressed Dewey ids. *)
