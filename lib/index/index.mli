(** The corpus index: dictionary plus raw postings, with the
    algorithm-specific list shapes (Dewey postings, JDewey column lists,
    score-ordered lists) materialized per term on demand and cached.

    The shape caches are sharded, bounded LRU caches ({!Shard_cache}), so
    a built index is safe to share across domains: {!jlist}, {!posting},
    {!score_list} and {!warm} may be called concurrently, and each term's
    shape is materialized exactly once per cache residency. *)

type t

type stats_override = {
  so_total_nodes : int;  (** corpus-wide node count for the scorer norm *)
  so_df : string -> int;
      (** corpus-wide document frequency of a term.  Evaluated lazily, at
          list-shape materialization time, so the table behind it may be
          filled after construction (the sharded build does exactly
          that). *)
}
(** Corpus-global ranking statistics.  A partitioned index
    ({!Sharding}) scores each shard with the {e whole} corpus's node
    count and document frequencies, so per-row scores are bit-identical
    to the unsharded index and per-shard top-K results merge exactly. *)

val build :
  ?damping:Xk_score.Damping.t ->
  ?cache_capacity:int ->
  ?stats:stats_override ->
  Xk_encoding.Labeling.t ->
  t
(** One pass over the labeled tree; text nodes contribute their character
    data, elements their attribute values.  [cache_capacity] (default
    8192) bounds each of the three shape caches; the least recently used
    term is evicted when a cache is full.  [stats] overrides the ranking
    statistics derived from this tree alone (sharded indices). *)

val of_raw :
  ?damping:Xk_score.Damping.t ->
  ?cache_capacity:int ->
  ?stats:stats_override ->
  Xk_encoding.Labeling.t ->
  (string * int array * int array) list ->
  t
(** Reassemble an index from persisted (term, nodes, tfs) postings; used by
    {!Index_io.load}.  Term ids are assigned in list order. *)

type provider = {
  pv_terms : int;  (** number of terms; ids are [0 .. pv_terms - 1] *)
  pv_row_count : int -> int;  (** posting-list length of a term, O(1) *)
  pv_rows : int -> int array * int array;
      (** decode a term's (nodes, tfs) rows.  Must be callable from any
          domain (pure decoding of immutable bytes); may raise the
          segment's typed fault exception on lazily-detected corruption. *)
}
(** Lazily-fetched rows: a zero-copy segment ({!Index_io} v3) decodes a
    term's rows from mapped columns on first use instead of materializing
    every posting at open. *)

val of_provider :
  ?damping:Xk_score.Damping.t ->
  ?cache_capacity:int ->
  ?stats:stats_override ->
  dict:Xk_text.Dictionary.t ->
  Xk_encoding.Labeling.t ->
  provider ->
  t
(** Wrap a lazy rows source.  [dict] must already be interned in term-id
    order with per-term statistics set (the v3 loader reads them from the
    segment directory); raises [Invalid_argument] if its size differs
    from [pv_terms]. *)

val label : t -> Xk_encoding.Labeling.t
val dict : t -> Xk_text.Dictionary.t
val damping : t -> Xk_score.Damping.t
val scorer : t -> Xk_score.Scorer.t

val term_count : t -> int

val term_id : t -> string -> int option
(** Case-insensitive lookup. *)

val term : t -> int -> string

val df : t -> int -> int
(** Posting-list length of a term (= keyword frequency in the paper's
    experiments). *)

val jlist : t -> int -> Jlist.t
val posting : t -> int -> Posting.t
val score_list : t -> int -> Score_list.t

val warm : t -> int list -> unit
(** Materialize every list shape for the given terms (hot-cache setting). *)

val cache_stats : t -> Shard_cache.stats
(** Hit/miss/eviction counters and occupancy summed over the three shape
    caches (so [capacity] is three times the per-shape bound). *)

val raw_rows : t -> int -> int array * int array
(** Uncached (nodes, tfs) rows of a term, for whole-dictionary sweeps. *)

val local_scores : t -> int -> float array

val term_ids_exn : t -> string list -> int list
(** Ids for query words; raises [Invalid_argument] on unknown keywords. *)

val terms_by_df : t -> int array
(** All term ids, most frequent first. *)
