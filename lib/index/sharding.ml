(* Document-partitioned indexing: top-level subtrees are distributed over
   N self-contained shard indices that all score with corpus-global
   statistics, so sharded execution reproduces the unsharded results
   bit-for-bit (see the interface for the root-result story).

   Only shard 0 keeps the root element's attributes: the root is
   replicated into every shard as a structural anchor, but its directly
   contained text must be indexed exactly once or document frequencies
   (and root witnesses) would double-count. *)

type strategy = Round_robin | Hash

type shard = { sh_index : Index.t; sh_to_global : int array }

(* One entry per top-level subtree, in document order: where its nodes
   start globally and in its shard's local numbering. *)
type segment = {
  seg_global_start : int;
  seg_size : int;
  seg_shard : int;
  seg_local_start : int;
}

type t = {
  shards : shard array;
  assignment : int array;
  total_nodes : int;
  segments : segment array;
}

let subtree_size (n : Xk_xml.Xml_tree.node) =
  let rec go acc = function
    | Xk_xml.Xml_tree.Text _ -> acc + 1
    | Xk_xml.Xml_tree.Element e -> List.fold_left go (acc + 1) e.children
  in
  go 0 n

let child_tag = function
  | Xk_xml.Xml_tree.Element e -> e.tag
  | Xk_xml.Xml_tree.Text _ -> "#text"

let assign strategy ~shards (doc : Xk_xml.Xml_tree.document) =
  if shards < 1 then Xk_util.Err.invalid "Sharding.assign: shards < 1";
  let children = Array.of_list doc.root.children in
  match strategy with
  | Round_robin -> Array.init (Array.length children) (fun i -> i mod shards)
  | Hash ->
      Array.mapi (fun i c -> Hashtbl.hash (i, child_tag c) mod shards) children

let validate_assignment ~shards ~children (a : int array) =
  if Array.length a <> children then
    Xk_util.Err.invalidf "Sharding: assignment covers %d of %d subtrees"
      (Array.length a) children;
  Array.iter
    (fun s ->
      if s < 0 || s >= shards then
        Xk_util.Err.invalidf "Sharding: subtree assigned to shard %d" s)
    a

let build_with ?shards ~(assignment : int array) ~make
    (doc : Xk_xml.Xml_tree.document) =
  let children = Array.of_list doc.root.children in
  let n_children = Array.length children in
  let shards =
    (* At least as many shards as the assignment names; the caller may ask
       for trailing empty shards (they index a bare root). *)
    let named = Array.fold_left (fun m s -> max m (s + 1)) 1 assignment in
    match shards with
    | None -> named
    | Some n ->
        if n < 1 then Xk_util.Err.invalid "Sharding.build_with: shards < 1";
        max n named
  in
  validate_assignment ~shards ~children:n_children assignment;
  let sizes = Array.map subtree_size children in
  let global_starts = Array.make n_children 1 in
  for j = 1 to n_children - 1 do
    global_starts.(j) <- global_starts.(j - 1) + sizes.(j - 1)
  done;
  let total_nodes = 1 + Array.fold_left ( + ) 0 sizes in
  (* Corpus-global document frequencies: the table is filled after every
     shard index exists, which is sound because shards only consult
     [so_df] when a list shape is first materialized. *)
  let global_df : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let stats =
    {
      Index.so_total_nodes = total_nodes;
      so_df =
        (fun term ->
          match Hashtbl.find_opt global_df term with
          | Some df -> df
          | None -> 1);
    }
  in
  let segments = Array.make n_children None in
  let exception Stop of int in
  (* 'e is smuggled through a mutable cell so the exception stays
     monomorphic. *)
  let error = ref None in
  let build_shard s =
    let local_start = ref 1 in
    let assigned = ref [] in
    for j = 0 to n_children - 1 do
      if assignment.(j) = s then begin
        segments.(j) <-
          Some
            {
              seg_global_start = global_starts.(j);
              seg_size = sizes.(j);
              seg_shard = s;
              seg_local_start = !local_start;
            };
        local_start := !local_start + sizes.(j);
        assigned := children.(j) :: !assigned
      end
    done;
    let sub_root =
      {
        Xk_xml.Xml_tree.tag = doc.root.tag;
        attrs = (if s = 0 then doc.root.attrs else []);
        children = List.rev !assigned;
      }
    in
    let label = Xk_encoding.Labeling.label { Xk_xml.Xml_tree.root = sub_root } in
    match make ~shard:s label ~stats with
    | Error e ->
        error := Some e;
        raise (Stop s)
    | Ok idx ->
        let to_global = Array.make (Xk_encoding.Labeling.node_count label) 0 in
        for j = 0 to n_children - 1 do
          match segments.(j) with
          | Some seg when seg.seg_shard = s ->
              for i = 0 to seg.seg_size - 1 do
                to_global.(seg.seg_local_start + i) <- seg.seg_global_start + i
              done
          | _ -> ()
        done;
        { sh_index = idx; sh_to_global = to_global }
  in
  match Array.init shards build_shard with
  | exception Stop _ -> (
      match !error with
      | Some e -> Error e
      | None ->
          Xk_util.Err.unreachable "Sharding.build_with: Stop without error")
  | built ->
      (* Fill the global df table now that every shard's dictionary
         exists; shard node sets are disjoint, so local dfs sum. *)
      Array.iter
        (fun sh ->
          let idx = sh.sh_index in
          for id = 0 to Index.term_count idx - 1 do
            let df = Index.df idx id in
            if df > 0 then begin
              let term = Index.term idx id in
              let prev =
                Option.value (Hashtbl.find_opt global_df term) ~default:0
              in
              Hashtbl.replace global_df term (prev + df)
            end
          done)
        built;
      Ok
        {
          shards = built;
          assignment;
          total_nodes;
          segments =
            Array.map
              (function
                | Some seg -> seg
                | None ->
                    Xk_util.Err.unreachable
                      "Sharding.build_with: segment left unfilled")
              segments;
        }

let partition ?damping ?cache_capacity ?(strategy = Round_robin) ?assignment
    ~shards (doc : Xk_xml.Xml_tree.document) =
  if shards < 1 then Xk_util.Err.invalid "Sharding.partition: shards < 1";
  let n_children = List.length doc.root.children in
  let assignment =
    match assignment with
    | Some a ->
        validate_assignment ~shards ~children:n_children a;
        Array.copy a
    | None -> assign strategy ~shards doc
  in
  let make ~shard:_ label ~stats =
    Ok (Index.build ?damping ?cache_capacity ~stats label)
  in
  match build_with ~shards ~assignment ~make doc with
  | Error (_ : unit) ->
      Xk_util.Err.unreachable "Sharding.partition: infallible make failed"
  | Ok t -> t

let count t = Array.length t.shards
let index t s = t.shards.(s).sh_index
let assignment t = Array.copy t.assignment
let total_nodes t = t.total_nodes
let subtree_count t = Array.length t.assignment

let to_global t ~shard local = t.shards.(shard).sh_to_global.(local)

let locate t g =
  if g = 0 then (0, 0)
  else if g < 0 || g >= t.total_nodes then
    Xk_util.Err.invalidf "Sharding.locate: node %d out of range" g
  else begin
    (* Binary search the document-ordered segment table. *)
    let lo = ref 0 and hi = ref (Array.length t.segments - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.segments.(mid).seg_global_start <= g then lo := mid else hi := mid - 1
    done;
    let seg = t.segments.(!lo) in
    (seg.seg_shard, seg.seg_local_start + (g - seg.seg_global_start))
  end

let cache_stats t =
  Shard_cache.aggregate
    (Array.to_list (Array.map (fun sh -> Index.cache_stats sh.sh_index) t.shards))

let size_reports t =
  Array.map (fun sh -> Index_sizes.report sh.sh_index) t.shards

let size_report t = Index_sizes.aggregate (Array.to_list (size_reports t))

(* --- Root-result evidence ------------------------------------------- *)

type root_summary = {
  rs_best_all : float array;
  rs_best_free : float array;
  rs_full_subtree : bool;
}

(* The join algorithms reach the root having erased exactly the rows that
   sit inside a subtree containing every query keyword (matches are
   upward-closed below the root, so any erased row's own top-level
   subtree is keyword-complete).  One pass over the keyword lists
   therefore reconstructs the root's evidence: group occurrences by
   top-level subtree, find the keyword-complete subtrees, and take
   per-keyword maxima of the root-damped contributions over all rows
   ([rs_best_all]) and over the un-erased rows ([rs_best_free]). *)
let root_summary ?(budget = Xk_resilience.Budget.unlimited) t ~shard words =
  let idx = index t shard in
  let lab = Index.label idx in
  let damping = Index.damping idx in
  let nw = List.length words in
  let ids = Array.of_list (List.map (Index.term_id idx) words) in
  let best_all = Array.make nw neg_infinity in
  let best_free = Array.make nw neg_infinity in
  let coverage : (int, bool array) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i id ->
      match id with
      | None -> ()
      | Some id ->
          let jl = Index.jlist idx id in
          for r = 0 to Jlist.length jl - 1 do
            Xk_resilience.Budget.check budget;
            match Xk_encoding.Labeling.ancestor_at lab (Jlist.node jl r) ~depth:2 with
            | None -> () (* an occurrence at the root itself *)
            | Some top ->
                let mask =
                  match Hashtbl.find_opt coverage top with
                  | Some m -> m
                  | None ->
                      let m = Array.make nw false in
                      Hashtbl.add coverage top m;
                      m
                in
                mask.(i) <- true
          done)
    ids;
  let complete mask = Array.for_all Fun.id mask in
  let full_subtree =
    nw > 0 && Hashtbl.fold (fun _ m acc -> acc || complete m) coverage false
  in
  Array.iteri
    (fun i id ->
      match id with
      | None -> ()
      | Some id ->
          let jl = Index.jlist idx id in
          for r = 0 to Jlist.length jl - 1 do
            Xk_resilience.Budget.check budget;
            let damped =
              Jlist.score jl r
              *. Xk_score.Damping.apply damping (Jlist.row_len jl r - 1)
            in
            if damped > best_all.(i) then best_all.(i) <- damped;
            let free =
              match
                Xk_encoding.Labeling.ancestor_at lab (Jlist.node jl r) ~depth:2
              with
              | None -> true
              | Some top -> not (complete (Hashtbl.find coverage top))
            in
            if free && damped > best_free.(i) then best_free.(i) <- damped
          done)
    ids;
  { rs_best_all = best_all; rs_best_free = best_free; rs_full_subtree = full_subtree }
