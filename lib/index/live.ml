(* The live store.  Layout and crash discipline are documented in the
   interface; the invariants the code below leans on:

   - the [.docs] files plus the WAL are the source of truth; [.idx]
     files are tokenization caches that rebuild from the [.docs] on any
     load failure;
   - the manifest is the commit point of a compaction: every file it
     references is fully written and fsynced before the manifest rename,
     and nothing it stopped referencing is unlinked until after;
   - the published state is one immutable value behind an [Atomic];
     mutators swap it, readers [Atomic.get] it and never look back;
   - the writer token is a compare-and-swap flag, so no lock is ever
     held across file IO (and a competing writer fails fast with
     [Busy] instead of queueing behind an fsync). *)

module Varint = Xk_storage.Varint
module Crc32 = Xk_storage.Crc32
module Durable = Xk_storage.Durable
module Chaos = Xk_resilience.Chaos

type error =
  | Busy
  | Unknown_doc of int
  | Unstorable of string
  | Corrupt of string
  | Io of string

let error_message = function
  | Busy -> "another mutation is in progress"
  | Unknown_doc id -> Printf.sprintf "no live document with id %d" id
  | Unstorable m -> "unstorable subtree: " ^ m
  | Corrupt m -> "corrupt live store: " ^ m
  | Io m -> "live store IO failure: " ^ m

let of_wal_error = function
  | Wal.Corrupted m -> Corrupt m
  | Wal.Io m -> Io m

type seg = { seg_gen : int; seg_docs : (int * Xk_xml.Xml_tree.node) list }

type state = {
  st_lsn : int;
  st_next_doc : int;
  st_sealed : seg list; (* ascending generation *)
  st_delta : Delta.t;
  st_snapshot : Snapshot.t;
}

type t = {
  l_dir : string;
  l_fsync : bool;
  l_auto : int option;
  l_damping : Xk_score.Damping.t option;
  l_root_tag : string;
  l_root_attrs : Xk_xml.Xml_tree.attribute list;
  l_writer : bool Atomic.t;
  mutable l_wal : Wal.t; (* touched only under the writer token *)
  l_state : state Atomic.t;
}

type mutation =
  | Add of Xk_xml.Xml_tree.node
  | Replace of int * Xk_xml.Xml_tree.node
  | Remove of int

let crash_steps =
  [
    "wal-append";
    "wal-pre-fsync";
    "wal-post-fsync";
    "compact-begin";
    "compact-docs-torn";
    "compact-docs";
    "compact-seg";
    "compact-manifest";
    "compact-rotate";
    "compact-done";
  ]

(* Paths *)

let manifest_path dir = Filename.concat dir "live.manifest"
let wal_path dir = Filename.concat dir "wal.log"
let docs_path dir gen = Filename.concat dir (Printf.sprintf "seg-%04d.docs" gen)
let idx_path dir gen = Filename.concat dir (Printf.sprintf "seg-%04d.idx" gen)

(* CRC-framed whole files (manifest, sealed documents).  Same outer
   layout as the WAL and index segments: magic, varint version, varint
   payload length, varint CRC-32, payload. *)

let manifest_magic = "XKLIV001"
let docs_magic = "XKDOC001"
let frame_version = 1

let write_framed ~fsync ~magic path payload =
  let buf = Buffer.create (String.length payload + 24) in
  Buffer.add_string buf magic;
  Varint.write buf frame_version;
  Varint.write buf (String.length payload);
  Varint.write buf (Crc32.string payload);
  Buffer.add_string buf payload;
  Durable.write_string_atomically ~fsync path (Buffer.contents buf)

let read_framed ~magic path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error (Io m)
  | data -> (
      let name = Filename.basename path in
      let mlen = String.length magic in
      if String.length data < mlen || String.sub data 0 mlen <> magic then
        Error (Corrupt (name ^ ": bad magic"))
      else
        let cur = Varint.cursor_at data mlen in
        match (Varint.read_opt cur, Varint.read_opt cur, Varint.read_opt cur) with
        | Some v, _, _ when v <> frame_version ->
            Error (Corrupt (Printf.sprintf "%s: unsupported version %d" name v))
        | Some _, Some plen, Some crc ->
            if cur.Varint.pos + plen <> String.length data then
              Error (Corrupt (name ^ ": bad payload length"))
            else if Crc32.sub data ~pos:cur.Varint.pos ~len:plen <> crc then
              Error (Corrupt (name ^ ": checksum mismatch"))
            else Ok (String.sub data cur.Varint.pos plen)
        | _ -> Error (Corrupt (name ^ ": truncated header")))

(* Payload codecs.  Decoders parse bytes whose CRC already checked out,
   so a short read here is structural damage, not a torn write; the
   local exception keeps them readable and is converted to [Corrupt]
   at the single entry point of each decoder. *)

exception Bad of string

let rd cur =
  match Varint.read_opt cur with
  | Some v -> v
  | None -> raise (Bad "truncated payload")

let rd_string cur =
  let n = rd cur in
  if n < 0 || cur.Varint.pos + n > String.length cur.Varint.data then
    raise (Bad "truncated payload");
  let s = String.sub cur.Varint.data cur.Varint.pos n in
  cur.Varint.pos <- cur.Varint.pos + n;
  s

type manifest = {
  m_root_tag : string;
  m_root_attrs : Xk_xml.Xml_tree.attribute list;
  m_next_doc : int;
  m_durable_lsn : int;
  m_gens : int list;
}

let encode_manifest m =
  let buf = Buffer.create 256 in
  let str s =
    Varint.write buf (String.length s);
    Buffer.add_string buf s
  in
  str m.m_root_tag;
  Varint.write buf (List.length m.m_root_attrs);
  List.iter
    (fun (a : Xk_xml.Xml_tree.attribute) ->
      str a.attr_name;
      str a.attr_value)
    m.m_root_attrs;
  Varint.write buf m.m_next_doc;
  Varint.write buf m.m_durable_lsn;
  Varint.write buf (List.length m.m_gens);
  List.iter (Varint.write buf) m.m_gens;
  Buffer.contents buf

let decode_manifest payload =
  match
    let cur = Varint.cursor payload in
    let m_root_tag = rd_string cur in
    let nattrs = rd cur in
    let m_root_attrs =
      List.init nattrs (fun _ ->
          let attr_name = rd_string cur in
          let attr_value = rd_string cur in
          { Xk_xml.Xml_tree.attr_name; attr_value })
    in
    let m_next_doc = rd cur in
    let m_durable_lsn = rd cur in
    let ngens = rd cur in
    let m_gens = List.init ngens (fun _ -> rd cur) in
    { m_root_tag; m_root_attrs; m_next_doc; m_durable_lsn; m_gens }
  with
  | m -> Ok m
  | exception Bad msg -> Error (Corrupt ("manifest: " ^ msg))

let encode_docs docs =
  let buf = Buffer.create 4096 in
  Varint.write buf (List.length docs);
  List.iter
    (fun (id, subtree) ->
      Varint.write buf id;
      Wal.encode_subtree buf subtree)
    docs;
  Buffer.contents buf

let decode_docs payload =
  match
    let cur = Varint.cursor payload in
    let n = rd cur in
    List.init n (fun _ ->
        let id = rd cur in
        match Wal.decode_subtree cur with
        | Ok subtree -> (id, subtree)
        | Error m -> raise (Bad m))
  with
  | docs -> Ok (List.sort (fun (a, _) (b, _) -> Int.compare a b) docs)
  | exception Bad msg -> Error (Corrupt ("documents: " ^ msg))

(* Snapshot assembly: shard 0 is the delta, one shard per sealed
   generation after it.  A generation none of whose documents the delta
   touches is clean and may serve its saved index. *)

let build_snapshot ?damping ~dir ~root_tag ~root_attrs ~lsn ~sealed ~delta () =
  let delta_group = { Snapshot.g_docs = Delta.upserts delta; g_index = None } in
  let seg_group seg =
    let surviving =
      List.filter (fun (id, _) -> not (Delta.touches delta id)) seg.seg_docs
    in
    let dirty = List.compare_lengths surviving seg.seg_docs <> 0 in
    {
      Snapshot.g_docs = surviving;
      g_index = (if dirty then None else Some (idx_path dir seg.seg_gen));
    }
  in
  Snapshot.build ?damping ~root_tag ~root_attrs ~lsn
    (delta_group :: List.map seg_group sealed)

(* Construction and recovery *)

let create ?(fsync = true) ?auto_compact ?damping ~root_tag ?(root_attrs = [])
    dir =
  match
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  with
  | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  | () -> (
      if Sys.file_exists (manifest_path dir) then
        Error (Io (dir ^ ": already a live store"))
      else
        match
          write_framed ~fsync ~magic:manifest_magic (manifest_path dir)
            (encode_manifest
               {
                 m_root_tag = root_tag;
                 m_root_attrs = root_attrs;
                 m_next_doc = 0;
                 m_durable_lsn = 0;
                 m_gens = [];
               })
        with
        | exception Sys_error m -> Error (Io m)
        | () ->
            Result.bind
              (Result.map_error of_wal_error
                 (Wal.create ~fsync ~base_lsn:0 (wal_path dir)))
              (fun wal ->
                let snapshot =
                  build_snapshot ?damping ~dir ~root_tag ~root_attrs ~lsn:0
                    ~sealed:[] ~delta:Delta.empty ()
                in
                Ok
                  {
                    l_dir = dir;
                    l_fsync = fsync;
                    l_auto = auto_compact;
                    l_damping = damping;
                    l_root_tag = root_tag;
                    l_root_attrs = root_attrs;
                    l_writer = Atomic.make false;
                    l_wal = wal;
                    l_state =
                      Atomic.make
                        {
                          st_lsn = 0;
                          st_next_doc = 0;
                          st_sealed = [];
                          st_delta = Delta.empty;
                          st_snapshot = snapshot;
                        };
                  }))

(* seg-<gen>.docs / seg-<gen>.idx basename -> generation *)
let seg_file_gen name =
  let parse suffix =
    if
      Filename.check_suffix name suffix
      && String.length name > 4 + String.length suffix
      && String.sub name 0 4 = "seg-"
    then
      int_of_string_opt
        (String.sub name 4 (String.length name - 4 - String.length suffix))
    else None
  in
  match parse ".docs" with Some g -> Some g | None -> parse ".idx"

(* Remove what no manifest references: temp files of writes that never
   committed, and segment files of generations the manifest dropped
   (a crash between segment writes and the manifest rename, or between
   the rename and the unlink pass). *)
let gc_orphans dir ~gens =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          let orphan =
            Filename.check_suffix name ".tmp"
            || match seg_file_gen name with
               | Some g -> not (List.mem g gens)
               | None -> false
          in
          if orphan then
            try Sys.remove (Filename.concat dir name)
            with Sys_error _ -> ())
        names

let ( let* ) = Result.bind

let open_ ?(fsync = true) ?auto_compact ?damping dir =
  let* payload = read_framed ~magic:manifest_magic (manifest_path dir) in
  let* m = decode_manifest payload in
  let* sealed =
    List.fold_left
      (fun acc gen ->
        let* segs = acc in
        let* payload = read_framed ~magic:docs_magic (docs_path dir gen) in
        let* docs = decode_docs payload in
        Ok ({ seg_gen = gen; seg_docs = docs } :: segs))
      (Ok []) m.m_gens
  in
  let sealed = List.rev sealed in
  let wal_file = wal_path dir in
  let* wal, records =
    let missing =
      (not (Sys.file_exists wal_file))
      ||
      match Unix.stat wal_file with
      | { st_size = 0; _ } -> true
      | _ -> false
      | exception Unix.Unix_error _ -> false
    in
    if missing then
      Result.map_error of_wal_error
        (Result.map
           (fun w -> (w, []))
           (Wal.create ~fsync ~base_lsn:m.m_durable_lsn wal_file))
    else Result.map_error of_wal_error (Wal.open_existing ~fsync wal_file)
  in
  let delta, max_insert =
    List.fold_left
      (fun (delta, mx) (r : Wal.record) ->
        if r.lsn <= m.m_durable_lsn then (delta, mx)
        else
          ( Delta.apply delta r.op,
            match r.op with
            | Wal.Insert { doc_id; _ } -> max mx doc_id
            | Wal.Delete _ -> mx ))
      (Delta.empty, -1) records
  in
  gc_orphans dir ~gens:m.m_gens;
  let lsn = max m.m_durable_lsn (Wal.lsn wal) in
  let next_doc = max m.m_next_doc (max_insert + 1) in
  let snapshot =
    build_snapshot ?damping ~dir ~root_tag:m.m_root_tag
      ~root_attrs:m.m_root_attrs ~lsn ~sealed ~delta ()
  in
  Ok
    {
      l_dir = dir;
      l_fsync = fsync;
      l_auto = auto_compact;
      l_damping = damping;
      l_root_tag = m.m_root_tag;
      l_root_attrs = m.m_root_attrs;
      l_writer = Atomic.make false;
      l_wal = wal;
      l_state =
        Atomic.make
          {
            st_lsn = lsn;
            st_next_doc = next_doc;
            st_sealed = sealed;
            st_delta = delta;
            st_snapshot = snapshot;
          };
    }

let close t = Wal.close t.l_wal

(* Accessors *)

let snapshot t = (Atomic.get t.l_state).st_snapshot
let lsn t = (Atomic.get t.l_state).st_lsn
let doc_count t = Snapshot.doc_count (snapshot t)
let pending_ops t = Delta.ops (Atomic.get t.l_state).st_delta
let sealed_gens t = List.map (fun s -> s.seg_gen) (Atomic.get t.l_state).st_sealed
let dir t = t.l_dir

(* The writer token.  Fun.protect releases it even when a chaos crash
   point fires mid-mutation: the "dead process" semantics apply to the
   files, not to the in-memory token of the test harness's process. *)
let with_writer t f =
  if Atomic.compare_and_set t.l_writer false true then
    Fun.protect ~finally:(fun () -> Atomic.set t.l_writer false) f
  else Error Busy

(* Compaction *)

let rm path = try Sys.remove path with Sys_error _ -> ()

let compact_steps t st ~clean ~dirty ~delta =
  Chaos.crash_point "compact-begin";
  let merged =
    List.sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (Delta.upserts delta
      @ List.concat_map
          (fun seg ->
            List.filter
              (fun (id, _) -> not (Delta.touches delta id))
              seg.seg_docs)
          dirty)
  in
  let next_gen =
    1 + List.fold_left (fun m s -> max m s.seg_gen) 0 st.st_sealed
  in
  if Chaos.crash_armed "compact-docs-torn" && merged <> [] then begin
    (* a torn temp write: half the docs file lands, then the process
       dies before the rename.  Recovery's orphan GC must remove it. *)
    let payload = encode_docs merged in
    let oc = open_out_bin (docs_path t.l_dir next_gen ^ ".tmp") in
    output_string oc (String.sub payload 0 (String.length payload / 2));
    flush oc;
    close_out_noerr oc;
    Chaos.crash_point "compact-docs-torn"
  end;
  let* new_seg =
    if merged = [] then Ok None
    else begin
      write_framed ~fsync:t.l_fsync ~magic:docs_magic
        (docs_path t.l_dir next_gen)
        (encode_docs merged);
      Chaos.crash_point "compact-docs";
      let sub =
        {
          Xk_xml.Xml_tree.root =
            Xk_xml.Xml_tree.element t.l_root_tag (List.map snd merged);
        }
      in
      let idx =
        Index.build ?damping:t.l_damping (Xk_encoding.Labeling.label sub)
      in
      Index_io.save idx (idx_path t.l_dir next_gen);
      let* () =
        match Index_io.verify (idx_path t.l_dir next_gen) with
        | Ok () -> Ok ()
        | Error le ->
            Error
              (Io
                 ("segment verify failed after write: "
                 ^ Index_io.load_error_message le))
      in
      Chaos.crash_point "compact-seg";
      Ok (Some { seg_gen = next_gen; seg_docs = merged })
    end
  in
  Chaos.crash_point "compact-manifest";
  let gens' =
    List.map (fun s -> s.seg_gen) clean
    @ match new_seg with Some s -> [ s.seg_gen ] | None -> []
  in
  write_framed ~fsync:t.l_fsync ~magic:manifest_magic (manifest_path t.l_dir)
    (encode_manifest
       {
         m_root_tag = t.l_root_tag;
         m_root_attrs = t.l_root_attrs;
         m_next_doc = st.st_next_doc;
         m_durable_lsn = st.st_lsn;
         m_gens = gens';
       });
  Chaos.crash_point "compact-rotate";
  (* Rotate the WAL through a temp file and a rename, so there is no
     instant at which [wal.log] exists with a half-written header. *)
  Wal.close t.l_wal;
  let wal_file = wal_path t.l_dir in
  let* w0 =
    Result.map_error of_wal_error
      (Wal.create ~fsync:t.l_fsync ~base_lsn:st.st_lsn (wal_file ^ ".tmp"))
  in
  Wal.close w0;
  Sys.rename (wal_file ^ ".tmp") wal_file;
  if t.l_fsync then Durable.fsync_dir t.l_dir;
  let* w, _ =
    Result.map_error of_wal_error (Wal.open_existing ~fsync:t.l_fsync wal_file)
  in
  t.l_wal <- w;
  Chaos.crash_point "compact-done";
  List.iter
    (fun s ->
      rm (docs_path t.l_dir s.seg_gen);
      rm (idx_path t.l_dir s.seg_gen))
    dirty;
  (* Readers are untouched: the published snapshot already serves this
     content, only the storage layout behind future snapshots moved. *)
  Atomic.set t.l_state
    {
      st with
      st_sealed = (clean @ match new_seg with Some s -> [ s ] | None -> []);
      st_delta = Delta.empty;
    };
  Ok ()

let compact_locked t =
  let st = Atomic.get t.l_state in
  let delta = st.st_delta in
  let dirty, clean =
    List.partition
      (fun seg -> List.exists (fun (id, _) -> Delta.touches delta id) seg.seg_docs)
      st.st_sealed
  in
  if Delta.is_empty delta && dirty = [] && Wal.base_lsn t.l_wal = st.st_lsn
  then Ok ()
  else
    match compact_steps t st ~clean ~dirty ~delta with
    | exception Sys_error m -> Error (Io m)
    | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
    | r -> r

let compact t = with_writer t (fun () -> compact_locked t)

(* Mutation *)

(* Round-trip a subtree through the WAL codec before anything touches
   disk: the delta then holds exactly what recovery would reconstruct,
   so the in-memory store and a post-crash reopen cannot diverge, and a
   subtree the codec cannot carry is rejected up front. *)
let canonical_op op =
  match op with
  | Wal.Delete _ -> Ok op
  | Wal.Insert { doc_id; subtree } -> (
      let buf = Buffer.create 256 in
      Wal.encode_subtree buf subtree;
      match Wal.decode_subtree (Varint.cursor (Buffer.contents buf)) with
      | Ok subtree -> Ok (Wal.Insert { doc_id; subtree })
      | Error m -> Error (Unstorable m))

let plan_batch st muts =
  let live = Hashtbl.create 64 in
  List.iter
    (fun seg ->
      List.iter
        (fun (id, _) ->
          if not (Delta.is_deleted st.st_delta id) then
            Hashtbl.replace live id ())
        seg.seg_docs)
    st.st_sealed;
  List.iter
    (fun (id, _) -> Hashtbl.replace live id ())
    (Delta.upserts st.st_delta);
  let* ops_rev, ids_rev, next =
    List.fold_left
      (fun acc mut ->
        let* ops, ids, next = acc in
        match mut with
        | Add subtree ->
            let* op = canonical_op (Wal.Insert { doc_id = next; subtree }) in
            Hashtbl.replace live next ();
            Ok (op :: ops, next :: ids, next + 1)
        | Replace (id, subtree) ->
            if not (Hashtbl.mem live id) then Error (Unknown_doc id)
            else
              let* op = canonical_op (Wal.Insert { doc_id = id; subtree }) in
              Ok (op :: ops, id :: ids, next)
        | Remove id ->
            if not (Hashtbl.mem live id) then Error (Unknown_doc id)
            else begin
              Hashtbl.remove live id;
              Ok (Wal.Delete { doc_id = id } :: ops, id :: ids, next)
            end)
      (Ok ([], [], st.st_next_doc))
      muts
  in
  Ok (List.rev ops_rev, List.rev ids_rev, next)

let mutate t muts =
  with_writer t (fun () ->
      let st = Atomic.get t.l_state in
      let* ops, ids, _next = plan_batch st muts in
      (* Append everything we can; a failed append keeps the durable
         prefix applied so memory and disk agree. *)
      let rec append_all acc = function
        | [] -> (List.rev acc, None)
        | op :: rest -> (
            match Wal.append t.l_wal op with
            | Ok _ -> append_all (op :: acc) rest
            | Error e -> (List.rev acc, Some (of_wal_error e)))
      in
      let applied, failure = append_all [] ops in
      let publish () =
        if applied <> [] then begin
          let delta = List.fold_left Delta.apply st.st_delta applied in
          let next_doc =
            List.fold_left
              (fun n op ->
                match op with
                | Wal.Insert { doc_id; _ } -> max n (doc_id + 1)
                | Wal.Delete _ -> n)
              st.st_next_doc applied
          in
          let lsn = Wal.lsn t.l_wal in
          let snapshot =
            build_snapshot ?damping:t.l_damping ~dir:t.l_dir
              ~root_tag:t.l_root_tag ~root_attrs:t.l_root_attrs ~lsn
              ~sealed:st.st_sealed ~delta ()
          in
          Atomic.set t.l_state
            {
              st_lsn = lsn;
              st_next_doc = next_doc;
              st_sealed = st.st_sealed;
              st_delta = delta;
              st_snapshot = snapshot;
            }
        end
      in
      publish ();
      match failure with
      | Some e -> Error e
      | None -> (
          match t.l_auto with
          | Some threshold
            when Delta.ops (Atomic.get t.l_state).st_delta >= threshold ->
              let* () = compact_locked t in
              Ok ids
          | _ -> Ok ids))
