(** Partitioned (sharded) indexing of one corpus.

    The corpus is split {e by document}: every top-level subtree (child
    of the root) is assigned to exactly one shard, and each shard is a
    self-contained {!Index.t} over a sub-document made of the shared root
    element plus its assigned subtrees.  Shards score with corpus-global
    statistics ({!Index.stats_override}), so every per-row score is
    bit-identical to the unsharded index — per-shard results merge into
    exactly the unsharded result set.

    Because all results below the root live entirely inside one
    top-level subtree, deep results of the sharded corpus are the
    disjoint union of the shards' deep results.  The only node whose
    result spans shards is the root itself; {!root_summary} extracts the
    per-shard evidence (best damped witness per keyword, with and
    without the exclusion induced by keyword-complete subtrees) from
    which a gather step reconstructs the root's ELCA/SLCA membership and
    exact score (see [Xk_exec.Shard_exec]). *)

type strategy =
  | Round_robin  (** subtree [i] goes to shard [i mod n] *)
  | Hash  (** deterministic hash of subtree position and root tag *)

type t

val assign : strategy -> shards:int -> Xk_xml.Xml_tree.document -> int array
(** The assignment (top-level child index -> shard) a strategy induces. *)

val partition :
  ?damping:Xk_score.Damping.t ->
  ?cache_capacity:int ->
  ?strategy:strategy ->
  ?assignment:int array ->
  shards:int ->
  Xk_xml.Xml_tree.document ->
  t
(** Build a sharded index in memory.  [assignment] overrides [strategy]
    (default [Round_robin]); its length must equal the number of
    top-level subtrees and its values must be in [\[0, shards)].
    [damping]/[cache_capacity] as in {!Index.build}, applied per shard.
    Raises [Invalid_argument] on [shards < 1] or a malformed
    assignment. *)

val build_with :
  ?shards:int ->
  assignment:int array ->
  make:
    (shard:int ->
    Xk_encoding.Labeling.t ->
    stats:Index.stats_override ->
    (Index.t, 'e) result) ->
  Xk_xml.Xml_tree.document ->
  (t, 'e) result
(** Generalized constructor: [make] produces each shard's index from its
    sub-document labeling and the corpus-global statistics override
    (built fresh or loaded from a segment — see {!Shard_io}).  [shards]
    may exceed what the assignment names (trailing shards index a bare
    root).  Stops at the first error.  The [stats] handed to [make]
    resolve document frequencies lazily, so they are valid only once
    [build_with] returns. *)

val count : t -> int
(** Number of shards (some may hold no subtrees). *)

val index : t -> int -> Index.t
val assignment : t -> int array

val total_nodes : t -> int
(** Node count of the whole corpus (= every shard's scorer norm). *)

val subtree_count : t -> int

val to_global : t -> shard:int -> int -> int
(** Map a shard-local node index to the unsharded document's node index
    (the labelers are deterministic, so the mapping is positional). *)

val locate : t -> int -> int * int
(** Inverse of {!to_global}: global node index -> (shard, local node).
    The root, present in every shard, locates to shard 0.  Raises
    [Invalid_argument] when out of range. *)

val cache_stats : t -> Shard_cache.stats
(** {!Shard_cache.aggregate} over every shard's shape caches. *)

val size_reports : t -> Index_sizes.report array
(** Per-shard serialized-size accounting. *)

val size_report : t -> Index_sizes.report
(** {!Index_sizes.aggregate} of {!size_reports}. *)

(** {1 Root-result evidence}

    Per query keyword [i] (position in the given word list):
    [rs_best_all.(i)] is the best root-damped witness contribution in the
    shard (= [neg_infinity] when the keyword does not occur there);
    [rs_best_free.(i)] restricts to occurrences {e not} inside a
    keyword-complete top-level subtree — exactly the occurrences the
    join algorithm has not excluded when it reaches the root;
    [rs_full_subtree] reports whether any of the shard's top-level
    subtrees contains every query keyword (which forbids a root SLCA). *)
type root_summary = {
  rs_best_all : float array;
  rs_best_free : float array;
  rs_full_subtree : bool;
}

val root_summary :
  ?budget:Xk_resilience.Budget.t -> t -> shard:int -> string list -> root_summary
(** One pass over the shard's inverted lists of the given keywords
    (matching is case-insensitive, as in the engine).  Polls [budget] and
    raises [Xk_resilience.Budget.Expired] on expiry. *)
