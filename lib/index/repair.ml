(* Replica repair: turn a scrub report back into full replication.

   Every damaged or missing copy is rewritten from a surviving clean
   copy of the same shard (byte-for-byte), or rebuilt from an in-memory
   index (the Live store's sealed generations, or a freshly partitioned
   corpus) when no clean copy survives.  Publication is the same
   recipe the original save used: Durable.write_*_atomically stages the
   bytes in a temp file, fsyncs, renames into place and fsyncs the
   directory, so a concurrent reader either maps the old inode (which
   its open mapping keeps alive and consistent) or the complete healed
   file — never a torn mixture.  Every heal is verified after the write
   through the same full Index_io.verify the scrubber uses; a copy that
   does not read back clean is reported Unrepairable, never silently
   trusted.  Within one repair pass a freshly healed copy immediately
   counts as a source for the next damaged copy of its shard. *)

type copy = { r_shard : int; r_replica : int; r_file : string }
type source = From_replica of string | Rebuilt

type outcome =
  | Repaired of { copy : copy; source : source }
  | Unrepairable of { copy : copy; reason : string }

type summary = { outcomes : outcome list; repaired : int; unrepairable : int }

let outcome_copy = function
  | Repaired { copy; _ } | Unrepairable { copy; _ } -> copy

let outcome_line o =
  let c = outcome_copy o in
  match o with
  | Repaired { source = From_replica src; _ } ->
      Printf.sprintf "repaired s%dr%d %s from %s" c.r_shard c.r_replica
        c.r_file (Filename.basename src)
  | Repaired { source = Rebuilt; _ } ->
      Printf.sprintf "repaired s%dr%d %s (rebuilt)" c.r_shard c.r_replica
        c.r_file
  | Unrepairable { reason; _ } ->
      Printf.sprintf "unrepairable s%dr%d %s: %s" c.r_shard c.r_replica
        c.r_file reason

let verify_to_result ?retries ?backoff_ms file =
  match Index_io.verify ?retries ?backoff_ms file with
  | Ok () -> Ok ()
  | Error e -> Error (Index_io.load_error_message e)

let scrub ?budget ?slice ?throttle_ms ?sleep ?retries ?backoff_ms path =
  match Shard_io.replica_files path with
  | Error _ as e -> e
  | Ok files ->
      Ok
        (Xk_resilience.Scrub.run ?budget ?slice ?throttle_ms ?sleep
           ~verify:(verify_to_result ?retries ?backoff_ms)
           files)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Rewrite [target]: clear any injected-fault marks first (the simulated
   media is being replaced), publish atomically, then verify the healed
   copy end to end before claiming success. *)
let heal_copy ?retries ?backoff_ms ~write target =
  Xk_resilience.Fault_injection.heal ~path:target;
  match write target with
  | exception exn -> Error (Printexc.to_string exn)
  | () -> (
      match verify_to_result ?retries ?backoff_ms target with
      | Ok () -> Ok ()
      | Error msg -> Error ("post-write verify failed: " ^ msg))

let repair ?rebuild ?retries ?backoff_ms (report : Xk_resilience.Scrub.report)
    =
  (* Clean copies per shard, kept current as heals land: a copy healed
     early in the pass can source later heals of its shard. *)
  let clean = Hashtbl.create 8 in
  List.iter
    (fun (e : Xk_resilience.Scrub.entry) ->
      if e.e_status = Xk_resilience.Scrub.Clean then
        Hashtbl.replace clean e.e_shard
          (e.e_file
          :: Option.value (Hashtbl.find_opt clean e.e_shard) ~default:[]))
    report.entries;
  let heal_one (e : Xk_resilience.Scrub.entry) =
    let copy = { r_shard = e.e_shard; r_replica = e.e_replica; r_file = e.e_file } in
    let finish source = function
      | Ok () ->
          Hashtbl.replace clean e.e_shard
            (e.e_file
            :: Option.value (Hashtbl.find_opt clean e.e_shard) ~default:[]);
          Repaired { copy; source }
      | Error reason -> Unrepairable { copy; reason }
    in
    let sources =
      Option.value (Hashtbl.find_opt clean e.e_shard) ~default:[]
      |> List.filter (fun src -> src <> e.e_file)
    in
    match sources with
    | src :: _ ->
        heal_copy ?retries ?backoff_ms
          ~write:(fun target ->
            Xk_storage.Durable.write_string_atomically target (read_file src))
          e.e_file
        |> finish (From_replica src)
    | [] -> (
        match rebuild with
        | None ->
            Unrepairable { copy; reason = "no clean replica to copy from" }
        | Some make -> (
            match make ~shard:e.e_shard with
            | None ->
                Unrepairable
                  { copy; reason = "no clean replica and no rebuild source" }
            | Some idx ->
                heal_copy ?retries ?backoff_ms
                  ~write:(fun target -> Index_io.save idx target)
                  e.e_file
                |> finish Rebuilt))
  in
  let outcomes =
    List.map heal_one (Xk_resilience.Scrub.needs_repair report)
  in
  let repaired =
    List.length
      (List.filter (function Repaired _ -> true | _ -> false) outcomes)
  in
  {
    outcomes;
    repaired;
    unrepairable = List.length outcomes - repaired;
  }

let summary_line (r : summary) =
  Printf.sprintf "repair: %d repaired, %d unrepairable" r.repaired
    r.unrepairable
