(** The in-memory delta segment: the net effect of every WAL record
    since the last compaction, as a persistent (immutable) value.

    A delta is a pair of maps — pending upserts (document id to its
    current subtree) and pending deletes.  Applying [Insert] records an
    upsert and cancels any pending delete of the same id; applying
    [Delete] records a delete and drops any pending upsert.  Because
    values are immutable, a published snapshot keeps whatever delta it
    was built from no matter how many operations land afterwards —
    that is the snapshot-isolation half of the live store. *)

type t

val empty : t
val is_empty : t -> bool

val apply : t -> Wal.op -> t

val ops : t -> int
(** Number of document ids the delta currently touches (upserts plus
    deletes); the live store's auto-compaction threshold watches it. *)

val upserts : t -> (int * Xk_xml.Xml_tree.node) list
(** Pending upserts in ascending document-id order. *)

val deletes : t -> int list
(** Pending deletes in ascending document-id order (ids whose latest
    operation is [Delete]). *)

val upsert : t -> int -> Xk_xml.Xml_tree.node option
val is_deleted : t -> int -> bool

val touches : t -> int -> bool
(** Whether the delta upserts or deletes this document id — a sealed
    segment holding a touched id is {e dirty} and must be rebuilt
    rather than served from its saved index. *)
