(** Replica repair: restore full replication from a scrub report.

    {!scrub} classifies every copy of a shard manifest through the full
    {!Index_io.verify} path (the detection half, see
    [Xk_resilience.Scrub]); {!repair} rewrites each damaged or missing
    copy from a surviving clean replica of the same shard — or rebuilds
    it from an injected index source (the [Live] store's sealed
    generations, or a re-partitioned corpus) when no clean copy
    survives.

    {b Atomicity.}  A heal publishes through
    [Xk_storage.Durable.write_string_atomically] (stage, fsync, rename,
    fsync dir) — the same recipe {!Shard_io.save} uses — so a concurrent
    reader observes either the old inode (kept alive and self-consistent
    by its open mapping) or the complete healed file, never a torn
    segment, and the manifest itself is untouched (replica basenames are
    stable, so no manifest swap is needed).  Every healed copy is
    re-verified end to end after the write; one that does not read back
    clean is reported {!Unrepairable}, never silently trusted.

    A [Repaired] outcome means the copy serves again: the serving tier's
    breaker re-admits the replica through its half-open probe on the
    next cooldown, so healing feeds back into rotation without a
    restart. *)

type copy = { r_shard : int; r_replica : int; r_file : string }

type source =
  | From_replica of string  (** byte-copied from this clean replica file *)
  | Rebuilt  (** regenerated from the injected rebuild source *)

type outcome =
  | Repaired of { copy : copy; source : source }
  | Unrepairable of { copy : copy; reason : string }

type summary = { outcomes : outcome list; repaired : int; unrepairable : int }

val outcome_copy : outcome -> copy
val outcome_line : outcome -> string

val scrub :
  ?budget:Xk_resilience.Budget.t ->
  ?slice:int ->
  ?throttle_ms:float ->
  ?sleep:(float -> unit) ->
  ?retries:int ->
  ?backoff_ms:float ->
  string ->
  (Xk_resilience.Scrub.report, Shard_io.error) result
(** Scrub every replica recorded in the manifest at the given path:
    [Xk_resilience.Scrub.run] over {!Shard_io.replica_files} with
    {!Index_io.verify} as the verifier.  [slice]/[throttle_ms]/[budget]
    bound and pace the walk; [retries]/[backoff_ms] are the per-file
    verify retry envelope. *)

val repair :
  ?rebuild:(shard:int -> Index.t option) ->
  ?retries:int ->
  ?backoff_ms:float ->
  Xk_resilience.Scrub.report ->
  summary
(** Heal every non-clean entry of the report, in manifest order.  Each
    target is rewritten from a clean copy of its shard (a copy healed
    earlier in the same pass counts), else rebuilt via [rebuild ~shard]
    when provided, else reported {!Unrepairable}.  Injected-fault marks
    on a target are cleared before the rewrite (the simulated media is
    replaced), and every heal is verified post-write. *)

val summary_line : summary -> string
