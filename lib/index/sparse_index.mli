(** Sparse index over a column: every n-th run value, probed to narrow a
    binary search to one stride. *)

type t

val default_stride : int

val build : ?stride:int -> Column.t -> t

val probe : t -> num_runs:int -> int -> int * int
(** [probe t ~num_runs v] is a run-index window [\[lo, hi)] that contains
    [v]'s run if the column holds it. *)

val encoded_size : t -> int
