(* Index persistence, version 2: a checksummed segment so that storage
   faults surface as typed errors instead of opaque crashes.

   Layout:  magic "XKIDX002" | version varint | payload-length varint |
   payload CRC-32 varint | payload.  The payload is the v1 body: node
   count, term count, then per term the term bytes, the row count,
   delta-coded node ids and tf values.

   The read path classifies failures (truncation vs. corruption vs.
   transient IO) and retries the transient class - OS errors, injected
   faults, and checksum mismatches, which a re-read distinguishes from
   media corruption (a torn read heals, a corrupt file does not).  Saving
   goes through a temp file + rename, so a crashed writer never leaves a
   half-written segment under the live name. *)

let magic = "XKIDX002"
let magic_v1 = "XKIDX001"
let version = 2

type error =
  | Truncated of string
  | Corrupted of string
  | Io_failed of string

type load_error = { error : error; attempts : int }

let error_message = function
  | Truncated msg -> "truncated segment: " ^ msg
  | Corrupted msg -> "corrupted segment: " ^ msg
  | Io_failed msg -> "io error: " ^ msg

let load_error_message { error; attempts } =
  if attempts > 1 then
    Printf.sprintf "%s (after %d attempts)" (error_message error) attempts
  else error_message error

exception Format_error of string

let encode_payload (idx : Index.t) =
  let buf = Buffer.create (1 lsl 20) in
  let label = Index.label idx in
  Xk_storage.Varint.write buf (Xk_encoding.Labeling.node_count label);
  let terms = Index.term_count idx in
  Xk_storage.Varint.write buf terms;
  for id = 0 to terms - 1 do
    let term = Index.term idx id in
    Xk_storage.Varint.write buf (String.length term);
    Buffer.add_string buf term;
    let nodes, tfs = Index.raw_rows idx id in
    Xk_storage.Varint.write buf (Array.length nodes);
    let prev = ref 0 in
    Array.iter
      (fun n ->
        Xk_storage.Varint.write buf (n - !prev);
        prev := n)
      nodes;
    Array.iter (fun tf -> Xk_storage.Varint.write buf tf) tfs
  done;
  Buffer.contents buf

let save (idx : Index.t) path =
  let payload = encode_payload idx in
  let header = Buffer.create 32 in
  Buffer.add_string header magic;
  Xk_storage.Varint.write header version;
  Xk_storage.Varint.write header (String.length payload);
  Xk_storage.Varint.write header (Xk_storage.Crc32.string payload);
  Xk_storage.Durable.write_atomically path (fun oc ->
      Buffer.output_buffer oc header;
      output_string oc payload)

(* Payload decoding.  The CRC has already been verified when this runs, so
   structural errors indicate a logic-level mismatch and are classified as
   corruption (with the node-count check carrying its own message). *)

exception Decode of string

let decode_payload ?damping ?cache_capacity ?stats
    (label : Xk_encoding.Labeling.t) data ~pos : Index.t =
  let c = Xk_storage.Varint.cursor_at data pos in
  let nodes_expected = Xk_storage.Varint.read c in
  if nodes_expected <> Xk_encoding.Labeling.node_count label then
    raise
      (Decode
         (Printf.sprintf "index built over %d nodes, document has %d"
            nodes_expected
            (Xk_encoding.Labeling.node_count label)));
  let terms = Xk_storage.Varint.read c in
  let entries = ref [] in
  (try
     for _ = 1 to terms do
       let tlen = Xk_storage.Varint.read c in
       if c.pos + tlen > String.length data then raise (Decode "term cut short");
       let term = String.sub data c.pos tlen in
       c.pos <- c.pos + tlen;
       let rows = Xk_storage.Varint.read c in
       if rows < 0 then raise (Decode "negative row count");
       let nodes = Array.make rows 0 in
       let prev = ref 0 in
       for r = 0 to rows - 1 do
         prev := !prev + Xk_storage.Varint.read c;
         if !prev >= nodes_expected then raise (Decode "node id out of range");
         nodes.(r) <- !prev
       done;
       let tfs = Array.init rows (fun _ -> Xk_storage.Varint.read c) in
       entries := (term, nodes, tfs) :: !entries
     done
   with Invalid_argument _ -> raise (Decode "payload structure cut short"));
  Index.of_raw ?damping ?cache_capacity ?stats label (List.rev !entries)

(* One read attempt, with fault-injection hooks and typed classification.
   [`Transient], [`Crc] and [`Suspect] are the retryable classes:
   [`Suspect] carries a header-level anomaly (bad magic, version,
   truncation) that a torn read can cause just as well as real corruption
   - a re-read distinguishes the two, and the carried error is reported
   if every retry sees it again.  Only [`Fatal] skips retrying: it is
   raised after the checksum verified, so the bytes are authentic. *)
(* Framing check shared by the loader and {!verify}: magic, version,
   declared payload length, payload CRC.  Returns the payload offset. *)
let check_framing data :
    (int, [> `Crc of string | `Suspect of error ]) result =
  let mlen = String.length magic in
  if String.length data < mlen then
    Error (`Suspect (Truncated "shorter than the segment magic"))
  else
    let m = String.sub data 0 mlen in
    if m = magic_v1 then
      Error
        (`Suspect
          (Corrupted "legacy v1 segment without checksum; rebuild the index"))
    else if m <> magic then Error (`Suspect (Corrupted "bad magic"))
    else
      match
        let c = Xk_storage.Varint.cursor_at data mlen in
        let v = Xk_storage.Varint.read c in
        let plen = Xk_storage.Varint.read c in
        let crc = Xk_storage.Varint.read c in
        (v, plen, crc, c.pos)
      with
      | exception Invalid_argument _ ->
          Error (`Suspect (Truncated "header cut short"))
      | v, _, _, _ when v <> version ->
          Error (`Suspect (Corrupted (Printf.sprintf "unsupported version %d" v)))
      | _, plen, crc, body ->
          let avail = String.length data - body in
          if avail < plen then
            Error
              (`Suspect
                (Truncated
                   (Printf.sprintf "payload has %d of %d bytes" avail plen)))
          else if avail > plen then
            Error
              (`Suspect
                (Corrupted
                   (Printf.sprintf "%d trailing bytes after the payload"
                      (avail - plen))))
          else if Xk_storage.Crc32.sub data ~pos:body ~len:plen <> crc then
            Error (`Crc "payload checksum mismatch")
          else Ok body

let read_all path :
    (string, [> `Transient of string ]) result =
  match
    Xk_resilience.Fault_injection.before_io ~path;
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Xk_resilience.Fault_injection.mangle_read ~path data
  with
  | exception Xk_resilience.Fault_injection.Injected_io msg ->
      Error (`Transient msg)
  | exception Sys_error msg -> Error (`Transient msg)
  | data -> Ok data

let attempt ?damping ?cache_capacity ?stats label path :
    ( Index.t,
      [ `Transient of string | `Crc of string | `Suspect of error | `Fatal of error ]
    )
    result =
  match read_all path with
  | Error _ as e -> e
  | Ok data -> (
      match check_framing data with
      | Error _ as e -> e
      | Ok body -> (
          match
            decode_payload ?damping ?cache_capacity ?stats label data ~pos:body
          with
          | idx -> Ok idx
          | exception Decode msg -> Error (`Fatal (Corrupted msg))))

let retryable = function
  | `Transient _ | `Crc _ | `Suspect _ -> true
  | `Fatal _ -> false

let classify = function
  | `Transient msg -> Io_failed msg
  | `Crc msg -> Corrupted msg
  | `Suspect e | `Fatal e -> e

let load_result ?damping ?cache_capacity ?stats ?(retries = 4)
    ?(backoff_ms = 1.0) label path =
  match
    Xk_resilience.Retry.with_backoff_info ~retries ~backoff_ms ~retryable
      (fun () -> attempt ?damping ?cache_capacity ?stats label path)
  with
  | Ok idx, _ -> Ok idx
  | Error e, attempts -> Error { error = classify e; attempts }

let verify ?(retries = 4) ?(backoff_ms = 1.0) path =
  match
    Xk_resilience.Retry.with_backoff_info ~retries ~backoff_ms ~retryable
      (fun () ->
        match read_all path with
        | Error _ as e -> e
        | Ok data -> (
            match check_framing data with
            | Error _ as e -> e
            | Ok _body -> Ok ()))
  with
  | Ok (), _ -> Ok ()
  | Error e, attempts -> Error { error = classify e; attempts }

let load ?damping label path =
  match load_result ?damping label path with
  | Ok idx -> idx
  | Error e -> raise (Format_error (load_error_message e))

let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n
