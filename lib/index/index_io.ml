(* Index persistence: the dictionary and raw postings in one binary file,
   so a corpus only pays tokenization once.  Loading re-attaches the
   postings to a freshly labeled document (labels are deterministic in the
   document, so node ids line up; a node-count check guards against
   mismatched files).

   Layout: magic, node count, term count, then per term the term bytes,
   the row count, delta-coded node ids and tf values. *)

let magic = "XKIDX001"

exception Format_error of string

let save (idx : Index.t) path =
  let buf = Buffer.create (1 lsl 20) in
  Buffer.add_string buf magic;
  let label = Index.label idx in
  Xk_storage.Varint.write buf (Xk_encoding.Labeling.node_count label);
  let terms = Index.term_count idx in
  Xk_storage.Varint.write buf terms;
  for id = 0 to terms - 1 do
    let term = Index.term idx id in
    Xk_storage.Varint.write buf (String.length term);
    Buffer.add_string buf term;
    let nodes, tfs = Index.raw_rows idx id in
    Xk_storage.Varint.write buf (Array.length nodes);
    let prev = ref 0 in
    Array.iter
      (fun n ->
        Xk_storage.Varint.write buf (n - !prev);
        prev := n)
      nodes;
    Array.iter (fun tf -> Xk_storage.Varint.write buf tf) tfs
  done;
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

let load ?damping (label : Xk_encoding.Labeling.t) path : Index.t =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  if len < String.length magic || String.sub data 0 (String.length magic) <> magic
  then raise (Format_error "bad magic");
  let c = Xk_storage.Varint.cursor_at data (String.length magic) in
  let nodes_expected = Xk_storage.Varint.read c in
  if nodes_expected <> Xk_encoding.Labeling.node_count label then
    raise
      (Format_error
         (Printf.sprintf "index built over %d nodes, document has %d"
            nodes_expected
            (Xk_encoding.Labeling.node_count label)));
  let terms = Xk_storage.Varint.read c in
  let entries = ref [] in
  (try
     for _ = 1 to terms do
       let tlen = Xk_storage.Varint.read c in
       if c.pos + tlen > String.length data then
         raise (Format_error "truncated term");
       let term = String.sub data c.pos tlen in
       c.pos <- c.pos + tlen;
       let rows = Xk_storage.Varint.read c in
       let nodes = Array.make rows 0 in
       let prev = ref 0 in
       for r = 0 to rows - 1 do
         prev := !prev + Xk_storage.Varint.read c;
         if !prev >= nodes_expected then raise (Format_error "node id out of range");
         nodes.(r) <- !prev
       done;
       let tfs = Array.init rows (fun _ -> Xk_storage.Varint.read c) in
       entries := (term, nodes, tfs) :: !entries
     done
   with Invalid_argument _ -> raise (Format_error "truncated file"));
  Index.of_raw ?damping label (List.rev !entries)

let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n
