(* Index persistence.

   Two on-disk generations coexist:

   v2 ("XKIDX002") — a checksummed varint stream: magic | version varint
   | payload-length varint | payload CRC-32 varint | payload (node
   count, term count, then per term the bytes, row count, delta-coded
   node ids and tf values).  Loading reads the whole file through a
   channel and materializes every posting.

   v3 ("XKIDX003") — the zero-copy segment.  Fixed-width little-endian
   columns, each region page-aligned, so the file can be mmapped and
   served without decoding the postings at open:

     page 0   header (fixed 100 bytes, CRC-32 over itself, zero-padded)
     terms    all term bytes concatenated in id order   [terms_crc]
     nodes    u32 node id per posting row               [per-term rows_crc]
     tfs      u32 term frequency per posting row        [per-term rows_crc]
     dir      40 bytes per term: term_off u64, term_len u32, row_off u64,
              row_count u32, cf u64, rows_crc u32, pad u32  [dir_crc]

   Opening a v3 segment maps the file, verifies the header, directory
   and terms-region checksums, interns the dictionary from the directory
   (statistics come from the directory, not from counting rows), and
   hands {!Index.of_provider} a lazy row decoder: a term's rows are
   decoded from the mapped columns on first use, with that term's
   [rows_crc] verified once.  Open cost is O(dictionary), not
   O(postings).

   The read path classifies failures (truncation vs. corruption vs.
   transient IO) and retries the transient class — OS errors, injected
   faults, and checksum mismatches, which a re-read distinguishes from
   media corruption (a torn read heals, a corrupt file does not).
   Structural errors found after a covering checksum verified are fatal:
   the bytes are authentic, retrying cannot help.  Saving goes through a
   temp file + rename, so a crashed writer never leaves a half-written
   segment under the live name.

   Fault injection cannot mangle a mapped page, so whenever injection is
   active for the process (or the path is marked corrupt) the v3 open
   switches to a string-backed reader fed through the same
   {!Xk_resilience.Fault_injection.mangle_read} hook as v2, and verifies
   {e everything} eagerly — every term's rows_crc, every padding byte,
   the exact file size — so a single flipped byte anywhere in the file
   is detected on that read, exactly as the chaos drills expect. *)

let magic = "XKIDX002"
let magic_v1 = "XKIDX001"
let magic_v3 = "XKIDX003"
let version = 2

type error =
  | Truncated of string
  | Corrupted of string
  | Io_failed of string

type load_error = { error : error; attempts : int }

let error_message = function
  | Truncated msg -> "truncated segment: " ^ msg
  | Corrupted msg -> "corrupted segment: " ^ msg
  | Io_failed msg -> "io error: " ^ msg

let load_error_message { error; attempts } =
  if attempts > 1 then
    Printf.sprintf "%s (after %d attempts)" (error_message error) attempts
  else error_message error

exception Format_error of string

exception Segment_fault of string
(* Raised by the lazy v3 row decoder (see the .mli). *)

(* ------------------------------------------------------------------ *)
(* v2 writer (varint stream)                                          *)
(* ------------------------------------------------------------------ *)

let encode_payload (idx : Index.t) =
  let buf = Buffer.create (1 lsl 20) in
  let label = Index.label idx in
  Xk_storage.Varint.write buf (Xk_encoding.Labeling.node_count label);
  let terms = Index.term_count idx in
  Xk_storage.Varint.write buf terms;
  for id = 0 to terms - 1 do
    let term = Index.term idx id in
    Xk_storage.Varint.write buf (String.length term);
    Buffer.add_string buf term;
    let nodes, tfs = Index.raw_rows idx id in
    Xk_storage.Varint.write buf (Array.length nodes);
    let prev = ref 0 in
    Array.iter
      (fun n ->
        Xk_storage.Varint.write buf (n - !prev);
        prev := n)
      nodes;
    Array.iter (fun tf -> Xk_storage.Varint.write buf tf) tfs
  done;
  Buffer.contents buf

let save_v2 (idx : Index.t) path =
  let payload = encode_payload idx in
  let header = Buffer.create 32 in
  Buffer.add_string header magic;
  Xk_storage.Varint.write header version;
  Xk_storage.Varint.write header (String.length payload);
  Xk_storage.Varint.write header (Xk_storage.Crc32.string payload);
  Xk_storage.Durable.write_atomically path (fun oc ->
      Buffer.output_buffer oc header;
      output_string oc payload)

(* ------------------------------------------------------------------ *)
(* v3 writer (page-aligned columns)                                   *)
(* ------------------------------------------------------------------ *)

let page_size = 4096
let header_size = 100
let dir_entry_size = 40

let align_up n = (n + page_size - 1) / page_size * page_size

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let add_u64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let add_padding buf upto =
  for _ = Buffer.length buf + 1 to upto do
    Buffer.add_char buf '\000'
  done

(* The layout is fully determined by (term_count, total_rows, terms_len):
   the reader recomputes it and rejects a header whose offsets disagree,
   so offset tampering is structural corruption even past the CRC. *)
type v3_layout = {
  l3_node_count : int;
  l3_term_count : int;
  l3_total_rows : int;
  l3_terms_off : int;
  l3_terms_len : int;
  l3_nodes_off : int;
  l3_tfs_off : int;
  l3_dir_off : int;
  l3_dir_len : int;
  l3_file_size : int;
}

let layout_of ~node_count ~term_count ~total_rows ~terms_len =
  let terms_off = page_size in
  let nodes_off = align_up (terms_off + terms_len) in
  let tfs_off = align_up (nodes_off + (4 * total_rows)) in
  let dir_off = align_up (tfs_off + (4 * total_rows)) in
  let dir_len = dir_entry_size * term_count in
  {
    l3_node_count = node_count;
    l3_term_count = term_count;
    l3_total_rows = total_rows;
    l3_terms_off = terms_off;
    l3_terms_len = terms_len;
    l3_nodes_off = nodes_off;
    l3_tfs_off = tfs_off;
    l3_dir_off = dir_off;
    l3_dir_len = dir_len;
    l3_file_size = align_up (dir_off + dir_len);
  }

let save (idx : Index.t) path =
  let label = Index.label idx in
  let dict = Index.dict idx in
  let node_count = Xk_encoding.Labeling.node_count label in
  let term_count = Index.term_count idx in
  let total_rows = ref 0 in
  let terms_len = ref 0 in
  for id = 0 to term_count - 1 do
    total_rows := !total_rows + Index.df idx id;
    terms_len := !terms_len + String.length (Index.term idx id)
  done;
  let lay =
    layout_of ~node_count ~term_count ~total_rows:!total_rows
      ~terms_len:!terms_len
  in
  let buf = Buffer.create lay.l3_file_size in
  (* Header, with the two region CRCs patched in after the regions are
     serialized: emit the regions into their own buffers first. *)
  let terms_buf = Buffer.create (max 16 !terms_len) in
  let nodes_buf = Buffer.create (max 16 (4 * !total_rows)) in
  let tfs_buf = Buffer.create (max 16 (4 * !total_rows)) in
  let dir_buf = Buffer.create (max 16 lay.l3_dir_len) in
  let row_off = ref 0 in
  let term_off = ref lay.l3_terms_off in
  for id = 0 to term_count - 1 do
    let term = Index.term idx id in
    Buffer.add_string terms_buf term;
    let nodes, tfs = Index.raw_rows idx id in
    let count = Array.length nodes in
    let slice = Buffer.create (max 16 (8 * count)) in
    Array.iter (fun n -> add_u32 slice n) nodes;
    Array.iter (fun tf -> add_u32 slice tf) tfs;
    let slice = Buffer.contents slice in
    Buffer.add_substring nodes_buf slice 0 (4 * count);
    Buffer.add_substring tfs_buf slice (4 * count) (4 * count);
    let rows_crc = Xk_storage.Crc32.string slice in
    add_u64 dir_buf !term_off;
    add_u32 dir_buf (String.length term);
    add_u64 dir_buf !row_off;
    add_u32 dir_buf count;
    add_u64 dir_buf (Xk_text.Dictionary.cf dict id);
    add_u32 dir_buf rows_crc;
    add_u32 dir_buf 0;
    term_off := !term_off + String.length term;
    row_off := !row_off + count
  done;
  let terms_region = Buffer.contents terms_buf in
  let dir_region = Buffer.contents dir_buf in
  Buffer.add_string buf magic_v3;
  add_u32 buf 3;
  add_u32 buf page_size;
  add_u64 buf node_count;
  add_u64 buf term_count;
  add_u64 buf !total_rows;
  add_u64 buf lay.l3_terms_off;
  add_u64 buf lay.l3_terms_len;
  add_u64 buf lay.l3_nodes_off;
  add_u64 buf lay.l3_tfs_off;
  add_u64 buf lay.l3_dir_off;
  add_u64 buf lay.l3_dir_len;
  add_u32 buf (Xk_storage.Crc32.string terms_region);
  add_u32 buf (Xk_storage.Crc32.string dir_region);
  add_u32 buf (Xk_storage.Crc32.sub (Buffer.contents buf) ~pos:0 ~len:96);
  assert (Buffer.length buf = header_size);
  add_padding buf lay.l3_terms_off;
  Buffer.add_string buf terms_region;
  add_padding buf lay.l3_nodes_off;
  Buffer.add_buffer buf nodes_buf;
  add_padding buf lay.l3_tfs_off;
  Buffer.add_buffer buf tfs_buf;
  add_padding buf lay.l3_dir_off;
  Buffer.add_string buf dir_region;
  add_padding buf lay.l3_file_size;
  assert (Buffer.length buf = lay.l3_file_size);
  Xk_storage.Durable.write_atomically path (fun oc -> Buffer.output_buffer oc buf)

(* ------------------------------------------------------------------ *)
(* v2 reader                                                          *)
(* ------------------------------------------------------------------ *)

(* Payload decoding.  The CRC has already been verified when this runs, so
   structural errors indicate a logic-level mismatch and are classified as
   corruption (with the node-count check carrying its own message). *)

exception Decode of string

let decode_payload ?damping ?cache_capacity ?stats
    (label : Xk_encoding.Labeling.t) data ~pos : Index.t =
  let c = Xk_storage.Varint.cursor_at data pos in
  let nodes_expected = Xk_storage.Varint.read c in
  if nodes_expected <> Xk_encoding.Labeling.node_count label then
    raise
      (Decode
         (Printf.sprintf "index built over %d nodes, document has %d"
            nodes_expected
            (Xk_encoding.Labeling.node_count label)));
  let terms = Xk_storage.Varint.read c in
  let entries = ref [] in
  (try
     for _ = 1 to terms do
       let tlen = Xk_storage.Varint.read c in
       if c.pos + tlen > String.length data then raise (Decode "term cut short");
       let term = String.sub data c.pos tlen in
       c.pos <- c.pos + tlen;
       let rows = Xk_storage.Varint.read c in
       if rows < 0 then raise (Decode "negative row count");
       let nodes = Array.make rows 0 in
       let prev = ref 0 in
       for r = 0 to rows - 1 do
         prev := !prev + Xk_storage.Varint.read c;
         if !prev >= nodes_expected then raise (Decode "node id out of range");
         nodes.(r) <- !prev
       done;
       let tfs = Array.init rows (fun _ -> Xk_storage.Varint.read c) in
       entries := (term, nodes, tfs) :: !entries
     done
   with Invalid_argument _ -> raise (Decode "payload structure cut short"));
  Index.of_raw ?damping ?cache_capacity ?stats label (List.rev !entries)

(* One read attempt, with fault-injection hooks and typed classification.
   [`Transient], [`Crc] and [`Suspect] are the retryable classes:
   [`Suspect] carries a header-level anomaly (bad magic, version,
   truncation) that a torn read can cause just as well as real corruption
   - a re-read distinguishes the two, and the carried error is reported
   if every retry sees it again.  Only [`Fatal] skips retrying: it is
   raised after the checksum verified, so the bytes are authentic. *)
(* Framing check shared by the loader and {!verify}: magic, version,
   declared payload length, payload CRC.  Returns the payload offset. *)
let check_framing data :
    (int, [> `Crc of string | `Suspect of error ]) result =
  let mlen = String.length magic in
  if String.length data < mlen then
    Error (`Suspect (Truncated "shorter than the segment magic"))
  else
    let m = String.sub data 0 mlen in
    if m = magic_v1 then
      Error
        (`Suspect
          (Corrupted "legacy v1 segment without checksum; rebuild the index"))
    else if m <> magic then Error (`Suspect (Corrupted "bad magic"))
    else
      match
        let c = Xk_storage.Varint.cursor_at data mlen in
        let v = Xk_storage.Varint.read c in
        let plen = Xk_storage.Varint.read c in
        let crc = Xk_storage.Varint.read c in
        (v, plen, crc, c.pos)
      with
      | exception Invalid_argument _ ->
          Error (`Suspect (Truncated "header cut short"))
      | v, _, _, _ when v <> version ->
          Error (`Suspect (Corrupted (Printf.sprintf "unsupported version %d" v)))
      | _, plen, crc, body ->
          let avail = String.length data - body in
          if avail < plen then
            Error
              (`Suspect
                (Truncated
                   (Printf.sprintf "payload has %d of %d bytes" avail plen)))
          else if avail > plen then
            Error
              (`Suspect
                (Corrupted
                   (Printf.sprintf "%d trailing bytes after the payload"
                      (avail - plen))))
          else if Xk_storage.Crc32.sub data ~pos:body ~len:plen <> crc then
            Error (`Crc "payload checksum mismatch")
          else Ok body

let read_all path :
    (string, [> `Transient of string ]) result =
  match
    Xk_resilience.Fault_injection.before_io ~path;
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Xk_resilience.Fault_injection.mangle_read ~path data
  with
  | exception Xk_resilience.Fault_injection.Injected_io msg ->
      Error (`Transient msg)
  | exception Sys_error msg -> Error (`Transient msg)
  | data -> Ok data

(* ------------------------------------------------------------------ *)
(* v3 reader                                                          *)
(* ------------------------------------------------------------------ *)

(* The zero-copy reader works over a mapped file; the fault-injection
   reader works over a string fed through [mangle_read].  Everything
   below is written against this small common interface. *)
type reader = Map of Xk_storage.Mmap.t | Str of string

(* Structured parse failure, classified like the v2 attempt errors:
   [`Crc] and truncation may be torn reads (retry), structural errors
   behind a verified checksum are fatal.  Declared over the full attempt
   error type so a caught payload needs no variant coercion. *)
exception Bad of
    [ `Transient of string | `Crc of string | `Suspect of error | `Fatal of error ]

let bad_crc msg = raise (Bad (`Crc msg))
let bad_trunc msg = raise (Bad (`Suspect (Truncated msg)))
let bad_struct msg = raise (Bad (`Fatal (Corrupted msg)))

let rd_size = function
  | Map m -> Xk_storage.Mmap.size m
  | Str s -> String.length s

(* Bounds are checked by the callers against the verified header before
   any raw access; the Mmap accessors re-check defensively. *)
let rd_u32 r pos =
  match r with
  | Map m -> Xk_storage.Mmap.u32 m pos
  | Str s -> Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF

let rd_u64 r pos =
  match r with
  | Map m -> Xk_storage.Mmap.u64 m pos
  | Str s ->
      let v = String.get_int64_le s pos in
      if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0
      then bad_struct (Printf.sprintf "stored offset at %d exceeds host int" pos)
      else Int64.to_int v

let rd_sub r ~pos ~len =
  match r with
  | Map m -> Xk_storage.Mmap.sub_string m ~pos ~len
  | Str s -> String.sub s pos len

let rd_crc r ~pos ~len =
  match r with
  | Map m -> Xk_storage.Mmap.crc32 m ~pos ~len
  | Str s -> Xk_storage.Crc32.sub s ~pos ~len

(* Decoded v3 directory plus the reader it indexes into: the persistent
   state behind the lazy row provider. *)
type v3_segment = {
  sg_path : string;
  sg_reader : reader;
  sg_lay : v3_layout;
  sg_terms : string;  (* the CRC-verified terms region, copied out *)
  sg_term_offs : int array;
  sg_term_lens : int array;
  sg_row_offs : int array;
  sg_row_counts : int array;
  sg_cfs : int array;
  sg_rows_crcs : int array;
  (* One flag per term: has this term's rows_crc been verified?  Written
     without synchronization — a benign race: two domains may both verify
     the same slice, and a stale read only causes a redundant check. *)
  sg_verified : Bytes.t;
}

let parse_v3_header (r : reader) : v3_layout =
  let size = rd_size r in
  if size < header_size then bad_trunc "shorter than the v3 header";
  if rd_crc r ~pos:0 ~len:96 <> rd_u32 r 96 then bad_crc "header checksum mismatch";
  (* The header is authentic past this point: every further anomaly is
     structural, not a torn read. *)
  let v = rd_u32 r 8 in
  if v <> 3 then bad_struct (Printf.sprintf "v3 magic but version %d" v);
  let ps = rd_u32 r 12 in
  if ps <> page_size then
    bad_struct (Printf.sprintf "unsupported page size %d" ps);
  let node_count = rd_u64 r 16 in
  let term_count = rd_u64 r 24 in
  let total_rows = rd_u64 r 32 in
  let lay =
    layout_of ~node_count ~term_count ~total_rows
      ~terms_len:(rd_u64 r 48)
  in
  if
    rd_u64 r 40 <> lay.l3_terms_off
    || rd_u64 r 56 <> lay.l3_nodes_off
    || rd_u64 r 64 <> lay.l3_tfs_off
    || rd_u64 r 72 <> lay.l3_dir_off
    || rd_u64 r 80 <> lay.l3_dir_len
  then bad_struct "region offsets disagree with the counts";
  if size < lay.l3_file_size then
    bad_trunc
      (Printf.sprintf "file has %d of %d bytes" size lay.l3_file_size);
  if size > lay.l3_file_size then
    bad_struct
      (Printf.sprintf "%d trailing bytes after the last region"
         (size - lay.l3_file_size));
  lay

let parse_v3_dir path (r : reader) (lay : v3_layout) : v3_segment =
  (* The directory and terms regions are decoded from one contiguous
     copy each: a bulk blit plus string primitives beats per-field
     access through the mapping by an order of magnitude, and the CRC
     runs over the same copy the fields are parsed from, so a page torn
     between checksum and parse cannot slip through. *)
  let dir = rd_sub r ~pos:lay.l3_dir_off ~len:lay.l3_dir_len in
  if Xk_storage.Crc32.string dir <> rd_u32 r 92 then
    bad_crc "directory checksum mismatch";
  let terms = rd_sub r ~pos:lay.l3_terms_off ~len:lay.l3_terms_len in
  if Xk_storage.Crc32.string terms <> rd_u32 r 88 then
    bad_crc "terms-region checksum mismatch";
  (* Manual byte assembly: the [String.get_int*_le] primitives box their
     results without flambda, and five boxed reads per entry would put
     the allocator on the open path's hot loop. *)
  let byte s i = Char.code (String.unsafe_get s i) in
  let du32 pos =
    byte dir pos
    lor (byte dir (pos + 1) lsl 8)
    lor (byte dir (pos + 2) lsl 16)
    lor (byte dir (pos + 3) lsl 24)
  in
  let du64 pos =
    let hi = byte dir (pos + 7) in
    (* The host int is 63-bit: high bits there cannot be a valid offset. *)
    if hi land 0xC0 <> 0 then
      bad_struct
        (Printf.sprintf "stored offset at %d exceeds host int"
           (lay.l3_dir_off + pos));
    du32 pos
    lor (byte dir (pos + 4) lsl 32)
    lor (byte dir (pos + 5) lsl 40)
    lor (byte dir (pos + 6) lsl 48)
    lor (hi lsl 56)
  in
  let n = lay.l3_term_count in
  let term_offs = Array.make n 0
  and term_lens = Array.make n 0
  and row_offs = Array.make n 0
  and row_counts = Array.make n 0
  and cfs = Array.make n 0
  and rows_crcs = Array.make n 0 in
  let next_term = ref lay.l3_terms_off in
  let next_row = ref 0 in
  for id = 0 to n - 1 do
    let e = id * dir_entry_size in
    let term_off = du64 e in
    let term_len = du32 (e + 8) in
    let row_off = du64 (e + 12) in
    let row_count = du32 (e + 20) in
    let cf = du64 (e + 24) in
    let rows_crc = du32 (e + 32) in
    if du32 (e + 36) <> 0 then
      bad_struct (Printf.sprintf "directory entry %d: nonzero padding" id);
    (* The entries must tile both the terms region and the row space
       exactly: any overlap, gap or overhang is structural corruption. *)
    if term_off <> !next_term then
      bad_struct (Printf.sprintf "directory entry %d: term bytes misplaced" id);
    if row_off <> !next_row then
      bad_struct (Printf.sprintf "directory entry %d: rows misplaced" id);
    next_term := term_off + term_len;
    next_row := row_off + row_count;
    term_offs.(id) <- term_off;
    term_lens.(id) <- term_len;
    row_offs.(id) <- row_off;
    row_counts.(id) <- row_count;
    cfs.(id) <- cf;
    rows_crcs.(id) <- rows_crc
  done;
  if !next_term <> lay.l3_terms_off + lay.l3_terms_len then
    bad_struct "directory does not cover the terms region";
  if !next_row <> lay.l3_total_rows then
    bad_struct "directory does not cover the posting rows";
  {
    sg_path = path;
    sg_reader = r;
    sg_lay = lay;
    sg_terms = terms;
    sg_term_offs = term_offs;
    sg_term_lens = term_lens;
    sg_row_offs = row_offs;
    sg_row_counts = row_counts;
    sg_cfs = cfs;
    sg_rows_crcs = rows_crcs;
    sg_verified = Bytes.make (max 1 n) '\000';
  }

(* CRC over a term's nodes slice ++ tfs slice, incrementally, without
   copying the mapped pages. *)
let rows_crc_of sg id =
  let count = sg.sg_row_counts.(id) in
  let npos = sg.sg_lay.l3_nodes_off + (4 * sg.sg_row_offs.(id)) in
  let tpos = sg.sg_lay.l3_tfs_off + (4 * sg.sg_row_offs.(id)) in
  match sg.sg_reader with
  | Map m ->
      Xk_storage.Mmap.crc32_update
        (Xk_storage.Mmap.crc32 m ~pos:npos ~len:(4 * count))
        m ~pos:tpos ~len:(4 * count)
  | Str s ->
      Xk_storage.Crc32.update
        (Xk_storage.Crc32.sub s ~pos:npos ~len:(4 * count))
        s ~pos:tpos ~len:(4 * count)

(* Verify one term's column slices, at most once per segment.  The flag
   write is unsynchronized — a benign race (see [sg_verified]). *)
let ensure_rows_verified sg id =
  if Bytes.unsafe_get sg.sg_verified id = '\000' then begin
    if rows_crc_of sg id <> sg.sg_rows_crcs.(id) then
      raise
        (Segment_fault
           (Printf.sprintf "%s: term %d column checksum mismatch" sg.sg_path id));
    Bytes.unsafe_set sg.sg_verified id '\001'
  end

(* Decode one term's rows from the columns.  Node ids are range-checked
   against the header's node count: a value past it cannot index the
   labeling and means the verified checksum was computed over corrupt
   data at save time — surfaced as the same typed fault. *)
let decode_rows sg id =
  ensure_rows_verified sg id;
  let count = sg.sg_row_counts.(id) in
  let npos = sg.sg_lay.l3_nodes_off + (4 * sg.sg_row_offs.(id)) in
  let tpos = sg.sg_lay.l3_tfs_off + (4 * sg.sg_row_offs.(id)) in
  (* Each column slice is copied out in one blit and decoded from the
     copy: one closed-map check per slice instead of one per row. *)
  let nslice = rd_sub sg.sg_reader ~pos:npos ~len:(4 * count) in
  let tslice = rd_sub sg.sg_reader ~pos:tpos ~len:(4 * count) in
  let u32_of s i =
    let b j = Char.code (String.unsafe_get s ((4 * i) + j)) in
    b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  in
  let nodes =
    Array.init count (fun i ->
        let n = u32_of nslice i in
        if n >= sg.sg_lay.l3_node_count then
          raise
            (Segment_fault
               (Printf.sprintf "%s: term %d row %d: node id %d out of range"
                  sg.sg_path id i n));
        n)
  in
  let tfs = Array.init count (fun i -> u32_of tslice i) in
  (nodes, tfs)

(* Every padding byte between the regions must be zero: padding is not
   covered by any region checksum, so the eager (fault-injection) path
   sweeps it to guarantee that a single flipped byte anywhere in the
   file is detected.  A nonzero pad may be a torn read, so it is
   classified with the retryable checksum class. *)
let check_padding (r : reader) (lay : v3_layout) =
  let sweep ~from ~upto =
    let pos = ref from in
    while !pos < upto do
      let len = min 4 (upto - !pos) in
      let v =
        if len = 4 then rd_u32 r !pos
        else
          let s = rd_sub r ~pos:!pos ~len in
          String.fold_left (fun a c -> a lor Char.code c) 0 s
      in
      if v <> 0 then
        bad_crc (Printf.sprintf "nonzero padding byte near offset %d" !pos);
      pos := !pos + len
    done
  in
  sweep ~from:header_size ~upto:lay.l3_terms_off;
  sweep ~from:(lay.l3_terms_off + lay.l3_terms_len) ~upto:lay.l3_nodes_off;
  sweep
    ~from:(lay.l3_nodes_off + (4 * lay.l3_total_rows))
    ~upto:lay.l3_tfs_off;
  sweep ~from:(lay.l3_tfs_off + (4 * lay.l3_total_rows)) ~upto:lay.l3_dir_off;
  sweep ~from:(lay.l3_dir_off + lay.l3_dir_len) ~upto:lay.l3_file_size

(* Intern the dictionary in id order with the directory's statistics:
   this — not row decoding — is the open-time cost of a v3 segment. *)
let dict_of_segment sg =
  let dict = Xk_text.Dictionary.create ~size:sg.sg_lay.l3_term_count () in
  for id = 0 to sg.sg_lay.l3_term_count - 1 do
    let term =
      String.sub sg.sg_terms
        (sg.sg_term_offs.(id) - sg.sg_lay.l3_terms_off)
        sg.sg_term_lens.(id)
    in
    let got = Xk_text.Dictionary.intern dict term in
    if got <> id then
      bad_struct (Printf.sprintf "duplicate term in directory (id %d)" id);
    Xk_text.Dictionary.set_stats dict id ~df:sg.sg_row_counts.(id)
      ~cf:sg.sg_cfs.(id)
  done;
  dict

let open_v3 ?damping ?cache_capacity ?stats ~verify_columns label path
    (r : reader) : Index.t =
  let lay = parse_v3_header r in
  if lay.l3_node_count <> Xk_encoding.Labeling.node_count label then
    raise
      (Bad
         (`Fatal
           (Corrupted
              (Printf.sprintf "index built over %d nodes, document has %d"
                 lay.l3_node_count
                 (Xk_encoding.Labeling.node_count label)))));
  let sg = parse_v3_dir path r lay in
  (* The padding sweep always runs: padding is outside every region
     checksum, and it touches at most one partial page per region
     boundary, so it costs nothing next to the directory parse. *)
  check_padding r lay;
  if verify_columns then begin
    for id = 0 to lay.l3_term_count - 1 do
      if rows_crc_of sg id <> sg.sg_rows_crcs.(id) then
        bad_crc (Printf.sprintf "term %d column checksum mismatch" id)
      else Bytes.unsafe_set sg.sg_verified id '\001'
    done
  end;
  let dict = dict_of_segment sg in
  let provider : Index.provider =
    {
      pv_terms = lay.l3_term_count;
      pv_row_count = (fun id -> sg.sg_row_counts.(id));
      pv_rows =
        (fun id ->
          try decode_rows sg id
          with Xk_storage.Mmap.Fault e ->
            raise (Segment_fault (Xk_storage.Mmap.error_message e)));
    }
  in
  Index.of_provider ?damping ?cache_capacity ?stats ~dict label provider

(* One v3 open attempt.  The mmap path is the production one; whenever
   fault injection is active for the process (or this path is marked
   corrupt) the segment is instead read through the byte-level
   [mangle_read] hook into a string and verified eagerly and completely,
   because a mapped page cannot be mangled and lazy verification would
   let an injected flip go undetected until first touch. *)
let attempt_v3 ?damping ?cache_capacity ?stats ~verify_columns label path :
    ( Index.t,
      [ `Transient of string
      | `Crc of string
      | `Suspect of error
      | `Fatal of error ] )
    result =
  let module FI = Xk_resilience.Fault_injection in
  if FI.unmappable ~path then
    Error
      (`Fatal
        (Io_failed
           (Printf.sprintf "injected map failure for %s" path)))
  else if FI.enabled () || FI.marked_corrupt ~path then
    match read_all path with
    | Error _ as e -> e
    | Ok data -> (
        match
          open_v3 ?damping ?cache_capacity ?stats ~verify_columns:true label
            path (Str data)
        with
        | idx -> Ok idx
        | exception Bad e -> Error e)
  else
    match Xk_storage.Mmap.map path with
    | Error e ->
        Error (`Fatal (Io_failed (Xk_storage.Mmap.error_message e)))
    | Ok m -> (
        match
          open_v3 ?damping ?cache_capacity ?stats ~verify_columns label path
            (Map m)
        with
        | idx -> Ok idx
        | exception Bad e ->
            Xk_storage.Mmap.close m;
            Error e)

(* ------------------------------------------------------------------ *)
(* Dispatch, retry policy, public API                                 *)
(* ------------------------------------------------------------------ *)

(* Sniff the magic to pick the generation.  Runs the [before_io] hook so
   the transient-fault drills fire once per load attempt on the v3 path
   too (the v2 path re-reads the whole file afterwards; its per-path
   attempt counter has already been consumed, so the retry arithmetic is
   unchanged). *)
let sniff_magic path : (string, [> `Transient of string ]) result =
  match
    Xk_resilience.Fault_injection.before_io ~path;
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = min 8 (in_channel_length ic) in
        really_input_string ic n)
  with
  | exception Xk_resilience.Fault_injection.Injected_io msg ->
      Error (`Transient msg)
  | exception Sys_error msg -> Error (`Transient msg)
  | m -> Ok m

let attempt ?damping ?cache_capacity ?stats ~verify_columns label path :
    ( Index.t,
      [ `Transient of string | `Crc of string | `Suspect of error | `Fatal of error ]
    )
    result =
  match sniff_magic path with
  | Error _ as e -> e
  | Ok m when m = magic_v3 ->
      attempt_v3 ?damping ?cache_capacity ?stats ~verify_columns label path
  | Ok _ -> (
      match read_all path with
      | Error _ as e -> e
      | Ok data -> (
          match check_framing data with
          | Error _ as e -> e
          | Ok body -> (
              match
                decode_payload ?damping ?cache_capacity ?stats label data
                  ~pos:body
              with
              | idx -> Ok idx
              | exception Decode msg -> Error (`Fatal (Corrupted msg)))))

let retryable = function
  | `Transient _ | `Crc _ | `Suspect _ -> true
  | `Fatal _ -> false

let classify = function
  | `Transient msg -> Io_failed msg
  | `Crc msg -> Corrupted msg
  | `Suspect e | `Fatal e -> e

let load_result ?damping ?cache_capacity ?stats ?(retries = 4)
    ?(backoff_ms = 1.0) ?(verify_columns = false) label path =
  match
    Xk_resilience.Retry.with_backoff_info ~retries ~backoff_ms ~retryable
      (fun () ->
        attempt ?damping ?cache_capacity ?stats ~verify_columns label path)
  with
  | Ok idx, _ -> Ok idx
  | Error e, attempts -> Error { error = classify e; attempts }

(* Framing-only verification.  For a v2 segment this checks the header
   and the payload checksum; for v3 it is a {e full} verification —
   every region and column checksum plus the padding sweep — because
   the lazy load path deliberately skips the column checks that the v2
   load performs implicitly, and the replica writers that call [verify]
   after each copy need equivalent coverage. *)
let verify_attempt path :
    ( unit,
      [ `Transient of string | `Crc of string | `Suspect of error | `Fatal of error ]
    )
    result =
  match read_all path with
  | Error _ as e -> e
  | Ok data ->
      if String.length data >= 8 && String.sub data 0 8 = magic_v3 then
        match
          let r = Str data in
          let lay = parse_v3_header r in
          let sg = parse_v3_dir path r lay in
          check_padding r lay;
          for id = 0 to lay.l3_term_count - 1 do
            if rows_crc_of sg id <> sg.sg_rows_crcs.(id) then
              bad_crc (Printf.sprintf "term %d column checksum mismatch" id)
          done
        with
        | () -> Ok ()
        | exception Bad e -> Error e
      else
        match check_framing data with
        | Error _ as e -> e
        | Ok _body -> Ok ()

let verify ?(retries = 4) ?(backoff_ms = 1.0) path =
  match
    Xk_resilience.Retry.with_backoff_info ~retries ~backoff_ms ~retryable
      (fun () -> verify_attempt path)
  with
  | Ok (), _ -> Ok ()
  | Error e, attempts -> Error { error = classify e; attempts }

let load ?damping label path =
  match load_result ?damping label path with
  | Ok idx -> idx
  | Error e -> raise (Format_error (load_error_message e))

let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n

(* Introspection for tests and benches: which generation is a file, and
   where do a v3 segment's regions live (so a drill can corrupt a
   specific column with surgical precision). *)
let format_version path =
  let ic = open_in_bin path in
  let m =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (min 8 (in_channel_length ic)))
  in
  if m = magic_v1 then Some 1
  else if m = magic then Some 2
  else if m = magic_v3 then Some 3
  else None

let layout path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if String.length data < 8 || String.sub data 0 8 <> magic_v3 then
    Error (Corrupted "not a v3 segment")
  else
    match parse_v3_header (Str data) with
    | lay -> Ok lay
    | exception Bad e -> Error (classify e)

