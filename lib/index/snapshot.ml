type group = {
  g_docs : (int * Xk_xml.Xml_tree.node) list;
  g_index : string option;
}

type t = {
  sn_lsn : int;
  sn_doc : Xk_xml.Xml_tree.document;
  sn_doc_ids : int array;
  sn_sharding : Sharding.t;
}

let build ?damping ~root_tag ~root_attrs ~lsn groups =
  if groups = [] then Xk_util.Err.invalid "Snapshot.build: no groups";
  let groups = Array.of_list groups in
  let tagged =
    List.concat
      (List.mapi
         (fun g grp -> List.map (fun (id, node) -> (id, g, node)) grp.g_docs)
         (Array.to_list groups))
  in
  let sorted =
    List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) tagged
  in
  (let rec dup_check = function
     | (a, _, _) :: ((b, _, _) :: _ as rest) ->
         if a = b then
           Xk_util.Err.invalidf "Snapshot.build: duplicate document id %d" a
         else dup_check rest
     | _ -> ()
   in
   dup_check sorted);
  let doc_ids = Array.of_list (List.map (fun (id, _, _) -> id) sorted) in
  let assignment = Array.of_list (List.map (fun (_, g, _) -> g) sorted) in
  let children = List.map (fun (_, _, node) -> node) sorted in
  let doc =
    { Xk_xml.Xml_tree.root = Xk_xml.Xml_tree.element ~attrs:root_attrs root_tag children }
  in
  let make ~shard labeling ~stats =
    let built () = Index.build ?damping ~stats labeling in
    match groups.(shard).g_index with
    | None -> Ok (built ())
    | Some path -> (
        match Index_io.load_result ?damping ~stats labeling path with
        | Ok idx -> Ok idx
        | Error (_ : Index_io.load_error) ->
            (* a damaged saved segment costs a rebuild, not a failed
               snapshot: the subtrees are the source of truth *)
            Ok (built ()))
  in
  match
    Sharding.build_with ~shards:(Array.length groups) ~assignment ~make doc
  with
  | Ok sharding ->
      { sn_lsn = lsn; sn_doc = doc; sn_doc_ids = doc_ids; sn_sharding = sharding }
  | Error () -> Xk_util.Err.unreachable "Snapshot.build: make never fails"

let lsn t = t.sn_lsn
let document t = t.sn_doc
let doc_ids t = t.sn_doc_ids
let doc_count t = Array.length t.sn_doc_ids
let sharding t = t.sn_sharding
