(** Growable int arrays used while accumulating postings. *)

type t

val create : ?capacity:int -> unit -> t
val push : t -> int -> unit
val length : t -> int
val get : t -> int -> int
val contents : t -> int array
