(* Append-only write-ahead log.  Framing keeps records self-delimiting
   ([varint len | varint crc | payload]) so recovery can walk the file
   without trusting anything but the bytes themselves: a record that
   ends past EOF, or whose trailing checksum fails, is a torn tail from
   a crash mid-append and is truncated away; a checksum failure with
   intact records after it cannot come from a crash and is reported as
   corruption instead.

   All byte-level reads go through bounds-checked helpers rather than
   the raw [Varint] cursor: recovery parses files that are torn by
   construction, and a decoder that raises on short input would turn
   the expected case into an exception. *)

module Varint = Xk_storage.Varint
module Crc32 = Xk_storage.Crc32
module Chaos = Xk_resilience.Chaos

let magic = "XKWAL001"
let version = 1

type op =
  | Insert of { doc_id : int; subtree : Xk_xml.Xml_tree.node }
  | Delete of { doc_id : int }

type record = { lsn : int; op : op }

type error = Corrupted of string | Io of string

let error_message = function
  | Corrupted m -> "corrupted WAL: " ^ m
  | Io m -> "WAL IO failure: " ^ m

type t = {
  w_path : string;
  w_fsync : bool;
  w_base : int;
  mutable w_oc : out_channel option;
  mutable w_lsn : int;
}

let read_varint_opt = Varint.read_opt

let take (cur : Varint.cursor) n =
  if n < 0 || cur.pos + n > String.length cur.data then Error "short read"
  else begin
    let s = String.sub cur.data cur.pos n in
    cur.pos <- cur.pos + n;
    Ok s
  end

(* Subtree codec, shared with the sealed-segment document files. *)

let encode_subtree buf (node : Xk_xml.Xml_tree.node) =
  match node with
  | Element e ->
      Buffer.add_char buf '\000';
      let xml = Xk_xml.Xml_print.to_string { Xk_xml.Xml_tree.root = e } in
      Varint.write buf (String.length xml);
      Buffer.add_string buf xml
  | Text s ->
      Buffer.add_char buf '\001';
      Varint.write buf (String.length s);
      Buffer.add_string buf s

let decode_subtree cur =
  match take cur 1 with
  | Error _ as e -> e
  | Ok flag -> (
      match read_varint_opt cur with
      | None -> Error "short read"
      | Some len -> (
          match take cur len with
          | Error _ as e -> e
          | Ok bytes -> (
              match flag.[0] with
              | '\000' -> (
                  match Xk_xml.Xml_parser.parse_string ~keep_ws:true bytes with
                  | Ok doc -> Ok (Xk_xml.Xml_tree.Element doc.root)
                  | Error e ->
                      Error
                        (Printf.sprintf "bad subtree XML: %s" e.message))
              | '\001' -> Ok (Xk_xml.Xml_tree.Text bytes)
              | c ->
                  Error
                    (Printf.sprintf "bad subtree flag 0x%02x" (Char.code c)))))

let encode_op op =
  let buf = Buffer.create 64 in
  (match op with
  | Insert { doc_id; subtree } ->
      Buffer.add_char buf '\001';
      Varint.write buf doc_id;
      encode_subtree buf subtree
  | Delete { doc_id } ->
      Buffer.add_char buf '\002';
      Varint.write buf doc_id);
  Buffer.contents buf

let decode_op payload =
  let cur = Varint.cursor payload in
  match take cur 1 with
  | Error _ as e -> e
  | Ok tag -> (
      match read_varint_opt cur with
      | None -> Error "short read"
      | Some doc_id -> (
          match tag.[0] with
          | '\001' ->
              Result.map
                (fun subtree -> Insert { doc_id; subtree })
                (decode_subtree cur)
          | '\002' -> Ok (Delete { doc_id })
          | c -> Error (Printf.sprintf "bad op tag 0x%02x" (Char.code c))))

let header_bytes ~base_lsn =
  let buf = Buffer.create 16 in
  Buffer.add_string buf magic;
  Varint.write buf version;
  Varint.write buf base_lsn;
  Buffer.contents buf

let open_append path =
  open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path

let create ?(fsync = true) ~base_lsn path =
  match
    let oc = open_out_bin path in
    output_string oc (header_bytes ~base_lsn);
    flush oc;
    if fsync then Xk_storage.Durable.fsync_out_channel oc;
    close_out oc;
    if fsync then Xk_storage.Durable.fsync_dir (Filename.dirname path)
  with
  | () ->
      Ok
        {
          w_path = path;
          w_fsync = fsync;
          w_base = base_lsn;
          w_oc = Some (open_append path);
          w_lsn = base_lsn;
        }
  | exception Sys_error m -> Error (Io m)

(* Walk the records after the header.  Returns the surviving payloads
   and the offset of the first byte past the last intact record; a torn
   tail shows up as [keep < String.length data]. *)
let scan_records data ~from =
  let len = String.length data in
  let cur = Varint.cursor_at data from in
  let rec go acc keep =
    if cur.Varint.pos >= len then Ok (List.rev acc, keep)
    else
      match read_varint_opt cur with
      | None -> Ok (List.rev acc, keep) (* torn mid-length *)
      | Some plen -> (
          match read_varint_opt cur with
          | None -> Ok (List.rev acc, keep) (* torn mid-crc *)
          | Some crc ->
              if cur.pos + plen > len then Ok (List.rev acc, keep)
                (* declared length past EOF: torn payload *)
              else if Crc32.sub data ~pos:cur.pos ~len:plen <> crc then
                if cur.pos + plen >= len then Ok (List.rev acc, keep)
                  (* final record, bad bytes: torn *)
                else
                  Error
                    (Printf.sprintf
                       "record checksum mismatch at offset %d (not the \
                        final record)"
                       keep)
              else begin
                let payload = String.sub data cur.pos plen in
                cur.pos <- cur.pos + plen;
                go (payload :: acc) cur.pos
              end)
  in
  go [] from

let open_existing ?(fsync = true) path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error (Io m)
  | data -> (
      let hlen = String.length magic in
      if String.length data < hlen || String.sub data 0 hlen <> magic then
        Error (Corrupted "bad magic")
      else
        let cur = Varint.cursor_at data hlen in
        match (read_varint_opt cur, read_varint_opt cur) with
        | Some v, _ when v <> version ->
            Error (Corrupted (Printf.sprintf "unsupported version %d" v))
        | Some _, Some base_lsn -> (
            match scan_records data ~from:cur.pos with
            | Error m -> Error (Corrupted m)
            | Ok (payloads, keep) -> (
                let decoded =
                  List.fold_left
                    (fun acc payload ->
                      Result.bind acc (fun (records, lsn) ->
                          match decode_op payload with
                          | Ok op ->
                              Ok ({ lsn = lsn + 1; op } :: records, lsn + 1)
                          | Error m ->
                              (* valid checksum, undecodable bytes: not
                                 crash damage *)
                              Error (Corrupted ("bad record: " ^ m))))
                    (Ok ([], base_lsn))
                    payloads
                in
                match decoded with
                | Error _ as e -> e
                | Ok (rev_records, last_lsn) -> (
                    match
                      if keep < String.length data then begin
                        (* heal the torn tail in place *)
                        Unix.truncate path keep;
                        if fsync then begin
                          Xk_storage.Durable.fsync_file path;
                          Xk_storage.Durable.fsync_dir
                            (Filename.dirname path)
                        end
                      end
                    with
                    | exception Unix.Unix_error (e, _, _) ->
                        Error (Io (Unix.error_message e))
                    | () -> (
                        match open_append path with
                        | exception Sys_error m -> Error (Io m)
                        | oc ->
                            Ok
                              ( {
                                  w_path = path;
                                  w_fsync = fsync;
                                  w_base = base_lsn;
                                  w_oc = Some oc;
                                  w_lsn = last_lsn;
                                },
                                List.rev rev_records )))))
        | _ -> Error (Corrupted "truncated header"))

let writer t =
  match t.w_oc with
  | Some oc -> Ok oc
  | None -> Error (Io "log is closed")

let append t op =
  Result.bind (writer t) (fun oc ->
      let payload = encode_op op in
      let frame = Buffer.create (String.length payload + 10) in
      Varint.write frame (String.length payload);
      Varint.write frame (Crc32.string payload);
      Buffer.add_string frame payload;
      let data = Buffer.contents frame in
      match
        if Chaos.crash_armed "wal-append" then begin
          (* a torn write: half the frame reaches the file, then the
             process dies.  No cleanup — recovery must heal this. *)
          output_string oc (String.sub data 0 (String.length data / 2));
          flush oc;
          Chaos.crash_point "wal-append"
        end;
        output_string oc data;
        flush oc;
        Chaos.crash_point "wal-pre-fsync";
        if t.w_fsync then
          Xk_storage.Durable.fsync_fd (Unix.descr_of_out_channel oc);
        Chaos.crash_point "wal-post-fsync"
      with
      | () ->
          t.w_lsn <- t.w_lsn + 1;
          Ok t.w_lsn
      | exception Sys_error m -> Error (Io m))

let base_lsn t = t.w_base
let lsn t = t.w_lsn
let path t = t.w_path

let close t =
  match t.w_oc with
  | None -> ()
  | Some oc ->
      t.w_oc <- None;
      close_out_noerr oc
