module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

type t = { d_upserts : Xk_xml.Xml_tree.node Imap.t; d_deletes : Iset.t }

let empty = { d_upserts = Imap.empty; d_deletes = Iset.empty }
let is_empty t = Imap.is_empty t.d_upserts && Iset.is_empty t.d_deletes

let apply t (op : Wal.op) =
  match op with
  | Insert { doc_id; subtree } ->
      {
        d_upserts = Imap.add doc_id subtree t.d_upserts;
        d_deletes = Iset.remove doc_id t.d_deletes;
      }
  | Delete { doc_id } ->
      {
        d_upserts = Imap.remove doc_id t.d_upserts;
        d_deletes = Iset.add doc_id t.d_deletes;
      }

let ops t = Imap.cardinal t.d_upserts + Iset.cardinal t.d_deletes
let upserts t = Imap.bindings t.d_upserts
let deletes t = Iset.elements t.d_deletes
let upsert t id = Imap.find_opt id t.d_upserts
let is_deleted t id = Iset.mem id t.d_deletes
let touches t id = Imap.mem id t.d_upserts || Iset.mem id t.d_deletes
