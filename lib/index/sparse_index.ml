(* Sparse index over a column (Section III-C: "in practice sparse indices
   can be built over columns to improve efficiency").  Every [stride]-th
   run's value is sampled; a probe binary-searches the samples and hands
   back a narrow run range for the column's own search to finish.  The
   sampled values are also what the Table I "sparse" column measures. *)

type t = {
  stride : int;
  values : int array; (* sampled run values *)
  positions : int array; (* run index of each sample *)
}

let default_stride = 64

let build ?(stride = default_stride) (c : Column.t) =
  if stride < 1 then Xk_util.Err.invalid "Sparse_index.build";
  let runs = Column.runs c in
  let n = Array.length runs in
  let count = (n + stride - 1) / stride in
  let values = Array.make count 0 in
  let positions = Array.make count 0 in
  for i = 0 to count - 1 do
    values.(i) <- runs.(i * stride).value;
    positions.(i) <- i * stride
  done;
  { stride; values; positions }

(* Run-index window [lo, hi) guaranteed to contain [value] if present. *)
let probe t ~num_runs value =
  let n = Array.length t.values in
  if n = 0 then (0, 0)
  else begin
    (* Greatest sample <= value. *)
    let lo = ref 0 and hi = ref (n - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if t.values.(mid) <= value then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !best < 0 then (0, min t.stride num_runs)
    else
      let start = t.positions.(!best) in
      (start, min (start + t.stride) num_runs)
  end

let encoded_size t =
  Array.fold_left (fun a v -> a + Xk_storage.Varint.size v + 4) 0 t.values
