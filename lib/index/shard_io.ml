(* Sharded-index persistence: a small checksummed manifest that records
   the partition, next to N Index_io segment replicas per shard.

   Manifest layout (version 3):  magic "XKSHM003" | version varint |
   payload-length varint | payload CRC-32 varint | payload.  The payload
   is the shard count, the subtree count, the assignment array, then per
   shard a replica count followed by, per replica, the segment basename
   and an optional serving endpoint (presence flag, then host bytes and
   a port varint).  Version 2 manifests (no endpoints) still load; v1
   (no replica lists at all) is refused with a rebuild hint.  Node data
   lives only in the per-shard segments; reloading re-derives the
   sub-documents from the corpus and the stored assignment, so a
   manifest stays valid for exactly the document it was built from
   (per-shard node-count checks enforce that).

   Replicas are written and verified independently (framing + CRC check
   after each copy), and the loader falls back across them in manifest
   order: a shard is lost only when every replica fails, and the typed
   error then carries each replica's failure and attempt count. *)

let magic = "XKSHM003"
let magic_v2 = "XKSHM002"
let magic_v1 = "XKSHM001"
let version = 3
let version_v2 = 2

type error =
  | Manifest of { error : Index_io.error; attempts : int }
  | Shard of { shard : int; failures : (string * Index_io.load_error) list }

let error_message = function
  | Manifest { error; attempts } ->
      "manifest: "
      ^ Index_io.load_error_message { Index_io.error; attempts }
  | Shard { shard; failures } ->
      let per_replica =
        List.map
          (fun (file, e) ->
            Printf.sprintf "%s: %s" file (Index_io.load_error_message e))
          failures
      in
      Printf.sprintf "shard %d: all %d replicas failed (%s)" shard
        (List.length failures)
        (String.concat "; " per_replica)

let segment_path path ~shard = Printf.sprintf "%s.%03d.seg" path shard

let replica_path path ~shard ~replica =
  if replica = 0 then segment_path path ~shard
  else Printf.sprintf "%s.%03d.r%d.seg" path shard replica

let write_atomically path (write : out_channel -> unit) =
  Xk_storage.Durable.write_atomically path write

exception Verify_failed of string

let save ?(replicas = 1) ?endpoints t path =
  if replicas < 1 then Xk_util.Err.invalid "Shard_io.save: replicas < 1";
  let shards = Sharding.count t in
  (match endpoints with
  | None -> ()
  | Some e ->
      if
        Array.length e <> shards
        || Array.exists (fun row -> Array.length row <> replicas) e
      then
        Xk_util.Err.invalid
          "Shard_io.save: endpoints shape must be shards x replicas");
  let payload = Buffer.create 256 in
  Xk_storage.Varint.write payload shards;
  let assignment = Sharding.assignment t in
  Xk_storage.Varint.write payload (Array.length assignment);
  Array.iter (Xk_storage.Varint.write payload) assignment;
  for s = 0 to shards - 1 do
    Xk_storage.Varint.write payload replicas;
    for r = 0 to replicas - 1 do
      let base = Filename.basename (replica_path path ~shard:s ~replica:r) in
      Xk_storage.Varint.write payload (String.length base);
      Buffer.add_string payload base;
      match endpoints with
      | None -> Xk_storage.Varint.write payload 0
      | Some e ->
          let host, port = e.(s).(r) in
          Xk_storage.Varint.write payload 1;
          Xk_storage.Varint.write payload (String.length host);
          Buffer.add_string payload host;
          Xk_storage.Varint.write payload port
    done
  done;
  let payload = Buffer.contents payload in
  write_atomically path (fun oc ->
      let header = Buffer.create 32 in
      Buffer.add_string header magic;
      Xk_storage.Varint.write header version;
      Xk_storage.Varint.write header (String.length payload);
      Xk_storage.Varint.write header (Xk_storage.Crc32.string payload);
      Buffer.output_buffer oc header;
      output_string oc payload);
  (* Each replica is written and verified independently: a write that
     slips through [Index_io.save]'s atomic rename but lands damaged
     must surface now, not at failover time. *)
  for s = 0 to shards - 1 do
    for r = 0 to replicas - 1 do
      let file = replica_path path ~shard:s ~replica:r in
      Index_io.save (Sharding.index t s) file;
      match Index_io.verify file with
      | Ok () -> ()
      | Error e ->
          raise
            (Verify_failed
               (Printf.sprintf "replica %s failed post-save verification: %s"
                  file
                  (Index_io.load_error_message e)))
    done
  done

exception Decode of string

type manifest = {
  m_shards : int;
  m_assignment : int array;
  m_files : string array array; (* per shard, replica basenames in order *)
  m_endpoints : (string * int) option array array;
      (* same shape as [m_files]; v2 manifests decode to all-[None] *)
}

let decode_manifest data ~pos ~with_endpoints =
  let c = Xk_storage.Varint.cursor_at data pos in
  let read_str what =
    let len = Xk_storage.Varint.read c in
    if len < 0 || c.pos + len > String.length data then
      raise (Decode (what ^ " cut short"));
    let s = String.sub data c.pos len in
    c.pos <- c.pos + len;
    s
  in
  try
    let shards = Xk_storage.Varint.read c in
    if shards < 1 then raise (Decode "no shards");
    let subtrees = Xk_storage.Varint.read c in
    let assignment =
      Array.init subtrees (fun _ ->
          let s = Xk_storage.Varint.read c in
          if s >= shards then raise (Decode "assignment names a missing shard");
          s)
    in
    let endpoints = ref [] in
    let files =
      Array.init shards (fun _ ->
          let replicas = Xk_storage.Varint.read c in
          if replicas < 1 then raise (Decode "shard with no replicas");
          let row_eps = Array.make replicas None in
          let row =
            Array.init replicas (fun r ->
                let f = read_str "segment name" in
                if with_endpoints then begin
                  match Xk_storage.Varint.read c with
                  | 0 -> ()
                  | 1 ->
                      let host = read_str "endpoint host" in
                      let port = Xk_storage.Varint.read c in
                      if port > 0xFFFF then raise (Decode "endpoint port > 65535");
                      row_eps.(r) <- Some (host, port)
                  | _ -> raise (Decode "bad endpoint flag")
                end;
                f)
          in
          endpoints := row_eps :: !endpoints;
          row)
    in
    {
      m_shards = shards;
      m_assignment = assignment;
      m_files = files;
      m_endpoints = Array.of_list (List.rev !endpoints);
    }
  with Invalid_argument _ -> raise (Decode "payload structure cut short")

(* One manifest read attempt; same failure classes and fault-injection
   hooks as the segment reader in [Index_io]: header-level anomalies are
   [`Suspect] (a torn read heals on re-read, real corruption repeats). *)
let attempt_manifest path :
    ( manifest,
      [ `Transient of string
      | `Crc of string
      | `Suspect of Index_io.error
      | `Fatal of Index_io.error ] )
    result =
  match
    Xk_resilience.Fault_injection.before_io ~path;
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Xk_resilience.Fault_injection.mangle_read ~path data
  with
  | exception Xk_resilience.Fault_injection.Injected_io msg ->
      Error (`Transient msg)
  | exception Sys_error msg -> Error (`Transient msg)
  | data -> (
      let mlen = String.length magic in
      if String.length data < mlen then
        Error (`Suspect (Index_io.Truncated "shorter than the manifest magic"))
      else if String.sub data 0 mlen = magic_v1 then
        Error
          (`Suspect
            (Index_io.Corrupted
               "legacy v1 manifest without replica lists; rebuild the index"))
      else
        (* v2 manifests (no endpoints) stay loadable; the magic decides
           which payload layout and version number to expect. *)
        let file_magic = String.sub data 0 mlen in
        let expected_version, with_endpoints =
          if file_magic = magic_v2 then (version_v2, false) else (version, true)
        in
        if file_magic <> magic && file_magic <> magic_v2 then
          Error (`Suspect (Index_io.Corrupted "bad manifest magic"))
        else
          match
            let c = Xk_storage.Varint.cursor_at data mlen in
            let v = Xk_storage.Varint.read c in
            let plen = Xk_storage.Varint.read c in
            let crc = Xk_storage.Varint.read c in
            (v, plen, crc, c.pos)
          with
          | exception Invalid_argument _ ->
              Error (`Suspect (Index_io.Truncated "header cut short"))
          | v, _, _, _ when v <> expected_version ->
              Error
                (`Suspect
                  (Index_io.Corrupted
                     (Printf.sprintf "unsupported manifest version %d" v)))
          | _, plen, crc, body -> (
              let avail = String.length data - body in
              if avail < plen then
                Error
                  (`Suspect
                    (Index_io.Truncated
                       (Printf.sprintf "payload has %d of %d bytes" avail plen)))
              else if avail > plen then
                Error
                  (`Suspect
                    (Index_io.Corrupted
                       (Printf.sprintf "%d trailing bytes after the payload"
                          (avail - plen))))
              else if Xk_storage.Crc32.sub data ~pos:body ~len:plen <> crc then
                Error (`Crc "manifest checksum mismatch")
              else
                match decode_manifest data ~pos:body ~with_endpoints with
                | m -> Ok m
                | exception Decode msg ->
                    Error (`Fatal (Index_io.Corrupted msg))))

let load_manifest ?(retries = 4) ?(backoff_ms = 1.0) path =
  match
    Xk_resilience.Retry.with_backoff_info ~retries ~backoff_ms
      ~retryable:(function
        | `Transient _ | `Crc _ | `Suspect _ -> true
        | `Fatal _ -> false)
      (fun () -> attempt_manifest path)
  with
  | Ok m, _ -> Ok m
  | Error e, attempts ->
      let error =
        match e with
        | `Transient msg -> Index_io.Io_failed msg
        | `Crc msg -> Index_io.Corrupted msg
        | `Suspect e | `Fatal e -> e
      in
      Error (Manifest { error; attempts })

let load_result ?damping ?cache_capacity ?retries ?backoff_ms ?verify_columns
    (doc : Xk_xml.Xml_tree.document) path =
  match load_manifest ?retries ?backoff_ms path with
  | Error _ as e -> e
  | Ok m ->
      let subtrees = List.length doc.root.children in
      if Array.length m.m_assignment <> subtrees then
        Error
          (Manifest
             {
               error =
                 Index_io.Corrupted
                   (Printf.sprintf
                      "manifest covers %d subtrees, document has %d"
                      (Array.length m.m_assignment)
                      subtrees);
               attempts = 1;
             })
      else
        let dir = Filename.dirname path in
        let make ~shard label ~stats =
          (* Replica fallback: try each copy in manifest order, succeed
             on the first clean load, and report every failure when the
             whole shard is lost. *)
          let rec try_replicas failures = function
            | [] ->
                Error (Shard { shard; failures = List.rev failures })
            | file :: rest -> (
                let full = Filename.concat dir file in
                match
                  Index_io.load_result ?damping ?cache_capacity ~stats
                    ?retries ?backoff_ms ?verify_columns label full
                with
                | Ok idx -> Ok idx
                | Error e -> try_replicas ((full, e) :: failures) rest)
          in
          try_replicas [] (Array.to_list m.m_files.(shard))
        in
        Sharding.build_with ~shards:m.m_shards ~assignment:m.m_assignment ~make
          doc

let replica_files path =
  match load_manifest path with
  | Error _ as e -> e
  | Ok m ->
      let dir = Filename.dirname path in
      Ok (Array.map (Array.map (Filename.concat dir)) m.m_files)

let endpoints path =
  match load_manifest path with
  | Error _ as e -> e
  | Ok m -> Ok m.m_endpoints

let partition_spec path =
  match load_manifest path with
  | Error _ as e -> e
  | Ok m -> Ok (m.m_shards, m.m_assignment)

type copy_status =
  | Copy_clean
  | Copy_damaged of Index_io.load_error
  | Copy_missing

let copy_status_label = function
  | Copy_clean -> "clean"
  | Copy_damaged _ -> "damaged"
  | Copy_missing -> "missing"

let replica_status ?retries ?backoff_ms path =
  match replica_files path with
  | Error _ as e -> e
  | Ok files ->
      Ok
        (Array.map
           (Array.map (fun file ->
                if not (Sys.file_exists file) then (file, Copy_missing)
                else
                  match Index_io.verify ?retries ?backoff_ms file with
                  | Ok () -> (file, Copy_clean)
                  | Error e -> (file, Copy_damaged e)))
           files)

let is_manifest path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (String.length magic))
  with
  | m -> m = magic || m = magic_v2 || m = magic_v1
  | exception (Sys_error _ | End_of_file) -> false
