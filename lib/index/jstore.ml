(* Column-oriented on-disk storage for JDewey inverted lists - the layout
   of the paper's Figure 2(a): each keyword's list is stored by column
   (one compressed blob per tree level) next to a row payload (node ids,
   local scores, sequence lengths).

   Readers decode one column at a time, which is what makes Algorithm 1's
   I/O pattern real: a query touches only the levels it joins (starting at
   the minimum of the lists' depths) and never pays for the rest of the
   sequences.  The [stats] counters expose exactly how many bytes each
   query decoded; the experiment harness reports them.

   File layout: magic | data blobs | directory | directory offset (8 B).
   The directory holds, per term: the term bytes, row/level counts and the
   (offset, length) of the payload and of every column blob. *)

let magic = "XKCOL001"

exception Format_error of string

type stats = {
  mutable payloads_decoded : int;
  mutable columns_decoded : int;
  mutable bytes_decoded : int;
}

type entry = {
  term : string;
  rows : int;
  max_len : int;
  payload_off : int;
  payload_len : int;
  cols : (int * int) array; (* per level: offset, length *)
}

type t = {
  data : string;
  entries : entry array;
  by_term : (string, int) Hashtbl.t;
  stats : stats;
  cache : (int, Jlist.t) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let add_payload buf (nodes : int array) (row_lens : int array)
    (scores : float array) =
  Xk_storage.Varint.write buf (Array.length nodes);
  let prev = ref 0 in
  Array.iter
    (fun n ->
      Xk_storage.Varint.write buf (n - !prev);
      prev := n)
    nodes;
  Array.iter (fun l -> Xk_storage.Varint.write buf l) row_lens;
  Array.iter (fun s -> Buffer.add_int64_le buf (Int64.bits_of_float s)) scores

let write (idx : Index.t) path =
  let label = Index.label idx in
  let data = Buffer.create (1 lsl 20) in
  Buffer.add_string data magic;
  let dir = Buffer.create (1 lsl 16) in
  let terms = Index.term_count idx in
  Xk_storage.Varint.write dir terms;
  for id = 0 to terms - 1 do
    let term = Index.term idx id in
    let nodes, _tfs = Index.raw_rows idx id in
    let scores = Index.local_scores idx id in
    let seqs =
      Array.map (fun n -> Xk_encoding.Labeling.jdewey_seq label n) nodes
    in
    let row_lens = Array.map Array.length seqs in
    let max_len = Array.fold_left max 0 row_lens in
    Xk_storage.Varint.write dir (String.length term);
    Buffer.add_string dir term;
    Xk_storage.Varint.write dir (Array.length nodes);
    Xk_storage.Varint.write dir max_len;
    let payload_off = Buffer.length data in
    add_payload data nodes row_lens scores;
    Xk_storage.Varint.write dir payload_off;
    Xk_storage.Varint.write dir (Buffer.length data - payload_off);
    for level = 1 to max_len do
      let col = Column.build seqs ~level in
      let off = Buffer.length data in
      let (_ : Xk_storage.Column_codec.scheme) =
        Xk_storage.Column_codec.encode data (Column.to_codec_runs col)
      in
      Xk_storage.Varint.write dir off;
      Xk_storage.Varint.write dir (Buffer.length data - off)
    done
  done;
  let dir_off = Buffer.length data in
  Buffer.add_buffer data dir;
  Buffer.add_int64_le data (Int64.of_int dir_off);
  let oc = open_out_bin path in
  Buffer.output_buffer oc data;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

let open_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  if len < String.length magic + 8 then raise (Format_error "file too short");
  if String.sub data 0 (String.length magic) <> magic then
    raise (Format_error "bad magic");
  let dir_off = Int64.to_int (String.get_int64_le data (len - 8)) in
  if dir_off < 0 || dir_off >= len - 8 then
    raise (Format_error "bad directory offset");
  let c = Xk_storage.Varint.cursor_at data dir_off in
  let terms = Xk_storage.Varint.read c in
  let by_term = Hashtbl.create (2 * terms) in
  let entries =
    Array.init terms (fun id ->
        let tlen = Xk_storage.Varint.read c in
        if c.pos + tlen > len then raise (Format_error "truncated term");
        let term = String.sub data c.pos tlen in
        c.pos <- c.pos + tlen;
        let rows = Xk_storage.Varint.read c in
        let max_len = Xk_storage.Varint.read c in
        let payload_off = Xk_storage.Varint.read c in
        let payload_len = Xk_storage.Varint.read c in
        let cols =
          Array.init max_len (fun _ ->
              let off = Xk_storage.Varint.read c in
              let clen = Xk_storage.Varint.read c in
              (off, clen))
        in
        Hashtbl.replace by_term term id;
        { term; rows; max_len; payload_off; payload_len; cols })
  in
  {
    data;
    entries;
    by_term;
    stats = { payloads_decoded = 0; columns_decoded = 0; bytes_decoded = 0 };
    cache = Hashtbl.create 64;
  }

let term_count t = Array.length t.entries
let term t id = t.entries.(id).term
let term_id t w = Hashtbl.find_opt t.by_term (String.lowercase_ascii w)
let stats t = t.stats

let reset_stats t =
  t.stats.payloads_decoded <- 0;
  t.stats.columns_decoded <- 0;
  t.stats.bytes_decoded <- 0

(* Total on-disk bytes of one term (payload plus all columns). *)
let term_bytes t id =
  let e = t.entries.(id) in
  Array.fold_left (fun a (_, l) -> a + l) e.payload_len e.cols

let decode_payload t (e : entry) =
  t.stats.payloads_decoded <- t.stats.payloads_decoded + 1;
  t.stats.bytes_decoded <- t.stats.bytes_decoded + e.payload_len;
  let c = Xk_storage.Varint.cursor_at t.data e.payload_off in
  let rows = Xk_storage.Varint.read c in
  if rows <> e.rows then raise (Format_error "row count mismatch");
  let nodes = Array.make rows 0 in
  let prev = ref 0 in
  for r = 0 to rows - 1 do
    prev := !prev + Xk_storage.Varint.read c;
    nodes.(r) <- !prev
  done;
  let row_lens = Array.init rows (fun _ -> Xk_storage.Varint.read c) in
  let scores =
    Array.init rows (fun _ ->
        let v = String.get_int64_le t.data c.pos in
        c.pos <- c.pos + 8;
        Int64.float_of_bits v)
  in
  (nodes, row_lens, scores)

(* Decode the level-[level] column: the codec stores (value, count) runs
   over the column's own row sequence; start rows are recovered from the
   list's row lengths (rows shorter than [level] are absent). *)
let decode_column t (e : entry) (row_lens : int array) ~level =
  let off, len = e.cols.(level - 1) in
  t.stats.columns_decoded <- t.stats.columns_decoded + 1;
  t.stats.bytes_decoded <- t.stats.bytes_decoded + len;
  let raw =
    Xk_storage.Column_codec.decode (Xk_storage.Varint.cursor_at t.data off)
  in
  (* Row indexes of the rows this column covers, in order. *)
  let covered = ref [] in
  for r = Array.length row_lens - 1 downto 0 do
    if row_lens.(r) >= level then covered := r :: !covered
  done;
  let covered = Array.of_list !covered in
  let pos = ref 0 in
  let runs =
    Array.map
      (fun (r : Xk_storage.Column_codec.run) ->
        let start_row = covered.(!pos) in
        (* Contiguity of same-value rows is a theorem of the encoding
           (DESIGN.md); check it instead of trusting the file. *)
        if covered.(!pos + r.count - 1) <> start_row + r.count - 1 then
          raise (Format_error "non-contiguous run");
        pos := !pos + r.count;
        { Column.value = r.value; start_row; count = r.count })
      raw
  in
  Column.of_runs runs

let jlist t id : Jlist.t =
  match Hashtbl.find_opt t.cache id with
  | Some jl -> jl
  | None ->
      let e = t.entries.(id) in
      let nodes, row_lens, scores = decode_payload t e in
      let jl =
        Jlist.make_lazy ~nodes ~scores ~row_lens ~max_len:e.max_len
          ~loader:(fun level -> decode_column t e row_lens ~level)
      in
      Hashtbl.replace t.cache id jl;
      jl

let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n
