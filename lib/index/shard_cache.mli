(** A thread-safe, sharded, bounded LRU cache keyed by non-negative
    integers (term ids).

    Each shard is guarded by its own [Mutex], so lookups of terms that
    fall in different shards never contend.  A miss computes the value
    {e while holding the shard lock}: concurrent requests for the same
    term therefore materialize it exactly once, and requests for other
    terms of the same shard wait — deliberate, so an expensive list
    materialization is never duplicated.  When a shard exceeds its share
    of the capacity the least-recently-used entry is evicted.

    Hit, miss and eviction counters are maintained per shard and
    aggregated by {!stats}. *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;   (** live cached values *)
  capacity : int;  (** maximum live values (rounded up to a shard multiple) *)
}

val create : ?shards:int -> capacity:int -> unit -> 'a t
(** [create ~capacity ()] makes a cache holding at most [capacity] values
    spread over [shards] (default 16, clamped to [capacity]) lock shards.
    Raises [Invalid_argument] when [capacity < 1]. *)

val find_or_add : 'a t -> int -> compute:(int -> 'a) -> 'a
(** [find_or_add t key ~compute] returns the cached value for [key], or
    runs [compute key] under the shard lock, caches the result (evicting
    the shard's LRU entry when full) and returns it.  An exception from
    [compute] is re-raised and nothing is cached. *)

val mem : 'a t -> int -> bool
(** Presence test; does not touch the LRU order or the counters. *)

val stats : 'a t -> stats
(** Counters and occupancy summed over all shards. *)

val zero_stats : stats
val add_stats : stats -> stats -> stats
(** Pointwise sum, for aggregating several caches into one report. *)

val aggregate : stats list -> stats
(** Pointwise sum of a whole list — the cache report of a sharded index
    is the aggregate over its shards' caches. *)
