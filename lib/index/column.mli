(** One column (tree level) of a JDewey inverted list, stored as sorted
    runs of equal numbers over contiguous row indices — the paper's second
    compression scheme and the unit of range checking. *)

type run = { value : int; start_row : int; count : int }

type t

val build : Xk_encoding.Jdewey.t array -> level:int -> t
(** Column [level] (1-based) of document-ordered sequences; rows with
    shorter sequences do not appear. *)

val of_runs : run array -> t
(** Reassemble from complete runs (the store's decoding path). *)

val runs : t -> run array
val num_runs : t -> int

val entries : t -> int
(** Total rows covered (sum of run counts). *)

val is_empty : t -> bool

val find : t -> int -> run option
(** Run holding a JDewey number, by binary search. *)

val lower_bound : t -> int -> int
(** Index of the first run with value >= the argument. *)

val max_value : t -> int option

val to_codec_runs : t -> Xk_storage.Column_codec.run array
val encoded_size : t -> int
