(* Score-ordered organization of a JDewey list for top-K processing
   (Section IV-C, Figure 7).

   Sequences are grouped by length; within a group the damping factor at
   any level is a common constant, so descending local score is a total
   order valid at every level.  A column's global score order is then
   recovered online by merging the group cursors; {!max_damped} gives the
   static per-level score ceilings used for the cross-column thresholds. *)

type group = { len : int; rows : int array (* descending local score *) }

type t = {
  jlist : Jlist.t;
  groups : group array; (* ascending [len] *)
  max_damped : float array; (* per level l: ceiling of damped scores *)
}

let make (jl : Jlist.t) (damping : Xk_score.Damping.t) =
  let n = Jlist.length jl in
  let by_len = Hashtbl.create 16 in
  for r = 0 to n - 1 do
    let len = Jlist.row_len jl r in
    let rows = try Hashtbl.find by_len len with Not_found -> [] in
    Hashtbl.replace by_len len (r :: rows)
  done;
  let groups =
    Hashtbl.fold
      (fun len rows acc ->
        let rows = Array.of_list rows in
        Array.sort
          (fun a b ->
            let c = Float.compare (Jlist.score jl b) (Jlist.score jl a) in
            if c <> 0 then c else Int.compare a b)
          rows;
        { len; rows } :: acc)
      by_len []
  in
  let groups = Array.of_list groups in
  Array.sort (fun a b -> Int.compare a.len b.len) groups;
  let height = Jlist.max_len jl in
  let max_damped =
    Array.init height (fun i ->
        let level = i + 1 in
        Array.fold_left
          (fun acc g ->
            if g.len >= level && Array.length g.rows > 0 then
              let top = Jlist.score jl g.rows.(0) in
              Float.max acc
                (top *. Xk_score.Damping.apply damping (g.len - level))
            else acc)
          neg_infinity groups)
  in
  { jlist = jl; groups; max_damped }

let jlist t = t.jlist
let groups t = t.groups

let max_damped t ~level =
  if level < 1 || level > Array.length t.max_damped then neg_infinity
  else t.max_damped.(level - 1)

let has_len t len = Array.exists (fun g -> g.len = len) t.groups

(* Serialized size in the score-ordered layout: per group, sequences are
   stored in score order, so columns lose their sortedness and store raw
   varint numbers; each row also carries a 4-byte quantized score.  This is
   the "Top-K Join" inverted-list layout of Table I. *)
let encoded_size t =
  let jl = t.jlist in
  Array.fold_left
    (fun acc g ->
      let per_group =
        Array.fold_left
          (fun acc r ->
            let s = Jlist.seq jl r in
            let seq_bytes =
              Array.fold_left
                (fun a v -> a + Xk_storage.Varint.size v)
                0 s
            in
            acc + seq_bytes + 4 (* score *) + Xk_storage.Varint.size (Jlist.node jl r))
          0 g.rows
      in
      acc + per_group + 8 (* group header: len + row count *))
    0 t.groups
