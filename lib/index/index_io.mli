(** Index persistence: dictionary + raw postings in one binary file.

    Loading attaches the postings to a freshly labeled copy of the same
    document (labels are deterministic), so a corpus pays tokenization only
    once. *)

exception Format_error of string

val save : Index.t -> string -> unit

val load : ?damping:Xk_score.Damping.t -> Xk_encoding.Labeling.t -> string -> Index.t
(** Raises {!Format_error} on corrupt input or when the file was built over
    a document with a different node count. *)

val file_size : string -> int
