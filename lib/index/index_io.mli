(** Fault-tolerant index persistence: dictionary + raw postings in one
    binary segment with a magic/version header and a CRC-32 payload
    checksum.

    Loading attaches the postings to a freshly labeled copy of the same
    document (labels are deterministic), so a corpus pays tokenization only
    once.  Reads classify their failures - {!Truncated} (the file ends
    before the declared payload), {!Corrupted} (bad magic, version,
    checksum or structure), {!Io_failed} (the transient class: OS errors
    and injected faults) - and the transient class, plus checksum
    mismatches and header anomalies (either can be a torn read, which a
    re-read heals), is retried with exponential backoff before an error
    is reported.  {!Xk_resilience.Fault_injection} hooks into the
    read path, so the whole machinery is testable. *)

type error =
  | Truncated of string  (** file shorter than the declared layout *)
  | Corrupted of string
      (** bad magic/version, persistent checksum mismatch, malformed
          payload, or a document/node-count mismatch *)
  | Io_failed of string  (** transient IO failures survived every retry *)

type load_error = { error : error; attempts : int }
(** A load failure plus the number of read attempts the shared
    {!Xk_resilience.Retry} policy made before reporting it, so an
    exhausted retry budget is distinguishable from a first-try
    permanent failure. *)

val error_message : error -> string

val load_error_message : load_error -> string

exception Format_error of string
(** Raised by the legacy {!load} wrapper, with {!error_message} applied. *)

val save : Index.t -> string -> unit
(** Write a checksummed segment durably and atomically: temp file,
    fsync, rename, directory fsync ({!Xk_storage.Durable}). *)

val load_result :
  ?damping:Xk_score.Damping.t ->
  ?cache_capacity:int ->
  ?stats:Index.stats_override ->
  ?retries:int ->
  ?backoff_ms:float ->
  Xk_encoding.Labeling.t ->
  string ->
  (Index.t, load_error) result
(** Load a segment, retrying transient IO errors and checksum mismatches
    up to [retries] (default 4) times with exponential backoff starting at
    [backoff_ms] (default 1.0).  Never raises on bad input.  [stats]
    overrides the ranking statistics as in {!Index.of_raw} (sharded
    segments, see {!Shard_io}). *)

val verify : ?retries:int -> ?backoff_ms:float -> string -> (unit, load_error) result
(** Check a segment's framing — magic, version, declared length, payload
    CRC — without decoding the payload.  Same retry policy as
    {!load_result}.  Replica writers run this after each copy so a
    damaged replica is caught at save time, not at failover time. *)

val load : ?damping:Xk_score.Damping.t -> Xk_encoding.Labeling.t -> string -> Index.t
(** {!load_result}, raising {!Format_error} on any error (legacy API). *)

val file_size : string -> int
