(** Fault-tolerant index persistence, in two on-disk generations.

    {b v2} ("XKIDX002") is a checksummed varint stream: magic/version
    header, CRC-32 payload checksum, then dictionary + delta-coded
    postings.  Loading reads the whole file and materializes every
    posting list.

    {b v3} ("XKIDX003") is the zero-copy segment: fixed-width
    little-endian columns (node ids, term frequencies), the concatenated
    term bytes, and a 40-byte-per-term directory, each region aligned to
    a 4096-byte page, each covered by a CRC-32.  Loading memory-maps the
    file ({!Xk_storage.Mmap}), verifies the header, directory and
    terms-region checksums, interns the dictionary from the directory
    (statistics included — no row is touched), and decodes a term's rows
    lazily from the mapped columns on first access, verifying that
    term's column checksum once.  Open cost is O(dictionary); the
    kernel pages postings in on demand.  Scores are bit-identical to the
    v2 path: both feed the same (tf, df) integers to the same scorer.

    {!save} writes v3; {!load_result} dispatches on the magic, so v2
    segments written by earlier releases keep loading through the
    channel path and {!save_v2} keeps the writer for them.

    Reads classify their failures — {!Truncated} (the file ends before
    the declared layout), {!Corrupted} (bad magic, version, checksum or
    structure), {!Io_failed} (the transient class: OS errors, injected
    faults, and map failures) — and the transient class, plus checksum
    mismatches and header anomalies (either can be a torn read, which a
    re-read heals), is retried with exponential backoff before an error
    is reported.  Structural anomalies behind a verified checksum are
    fatal and skip the retries.  {!Xk_resilience.Fault_injection} hooks
    into the read path; when injection is active a v3 segment is read
    through the byte-mangling hook into process memory and verified
    eagerly and completely (every column checksum, every padding byte),
    so injected corruption anywhere in the file is detected at open. *)

type error =
  | Truncated of string  (** file shorter than the declared layout *)
  | Corrupted of string
      (** bad magic/version, persistent checksum mismatch, malformed
          structure, or a document/node-count mismatch *)
  | Io_failed of string
      (** transient IO failures that survived every retry, or a failed
          (or injected) memory-map of a v3 segment *)

type load_error = { error : error; attempts : int }
(** A load failure plus the number of read attempts the shared
    {!Xk_resilience.Retry} policy made before reporting it, so an
    exhausted retry budget is distinguishable from a first-try
    permanent failure. *)

val error_message : error -> string

val load_error_message : load_error -> string

exception Format_error of string
(** Raised by the legacy {!load} wrapper, with {!error_message} applied. *)

exception Segment_fault of string
(** Raised by the {e lazy} v3 row decoder: a term's column checksum
    fails on first access, a decoded node id is out of range, or the
    mapping was closed under the reader.  Eager-open failures never use
    this — they are returned as {!load_error} values.  Raised at query
    time, it propagates out of list materialization; the replicated
    executor's failover-on-raise treats it like any other replica
    failure. *)

val save : Index.t -> string -> unit
(** Write a v3 zero-copy segment durably and atomically: temp file,
    fsync, rename, directory fsync ({!Xk_storage.Durable}). *)

val save_v2 : Index.t -> string -> unit
(** Write the v2 varint-stream format (for compatibility fixtures and
    the loader benches). *)

val load_result :
  ?damping:Xk_score.Damping.t ->
  ?cache_capacity:int ->
  ?stats:Index.stats_override ->
  ?retries:int ->
  ?backoff_ms:float ->
  ?verify_columns:bool ->
  Xk_encoding.Labeling.t ->
  string ->
  (Index.t, load_error) result
(** Load a segment of either generation (dispatch on the magic),
    retrying transient IO errors and checksum mismatches up to [retries]
    (default 4) times with exponential backoff starting at [backoff_ms]
    (default 1.0).  Never raises on bad input.  [stats] overrides the
    ranking statistics as in {!Index.of_raw} (sharded segments, see
    {!Shard_io}).  [verify_columns] (default false) makes a v3 open
    verify every column checksum and padding byte eagerly instead of
    lazily — the paranoid mode for replica-fallback paths that must
    reject a damaged segment at open time rather than at first query. *)

val verify : ?retries:int -> ?backoff_ms:float -> string -> (unit, load_error) result
(** Check a segment without building an index.  v2: framing + payload
    CRC.  v3: {e full} verification — header, directory, terms region,
    every per-term column checksum, the padding sweep and the exact file
    size — since the lazy load path deliberately defers the column
    checks.  Same retry policy as {!load_result}.  Replica writers run
    this after each copy so a damaged replica is caught at save time,
    not at failover time. *)

val load : ?damping:Xk_score.Damping.t -> Xk_encoding.Labeling.t -> string -> Index.t
(** {!load_result}, raising {!Format_error} on any error (legacy API). *)

val file_size : string -> int

(** {1 Introspection} — for tests, drills and benches. *)

val format_version : string -> int option
(** Generation of the segment at a path, from its magic: [Some 1], [2]
    or [3], or [None] for an unrecognized file. *)

type v3_layout = {
  l3_node_count : int;
  l3_term_count : int;
  l3_total_rows : int;
  l3_terms_off : int;
  l3_terms_len : int;
  l3_nodes_off : int;
  l3_tfs_off : int;
  l3_dir_off : int;
  l3_dir_len : int;
  l3_file_size : int;
}
(** Region geometry of a v3 segment.  Fully determined by the three
    counts (the loader recomputes and cross-checks it), exposed so a
    fault drill can corrupt one specific region. *)

val layout : string -> (v3_layout, error) result
(** Parse and verify a v3 header, returning its geometry. *)

val page_size : int
(** Region alignment of the v3 format (4096). *)
