(** Crash-safe live index mutation.

    A live store is a directory holding the mutable corpus:

    - [live.manifest] — root element identity, the next document id,
      the durable LSN and the sealed generation list (CRC-framed,
      replaced atomically);
    - [seg-<gen>.docs] — a sealed generation's documents (id plus
      serialized subtree, CRC-framed), the source of truth;
    - [seg-<gen>.idx] — the generation's saved {!Index_io} segment, a
      tokenization cache rebuilt from the [.docs] file if damaged;
    - [wal.log] — the {!Wal} of every mutation since the last
      compaction.

    Mutations go WAL-first: each operation is framed, appended and
    fsynced before it is applied to the in-memory {!Delta}, then the
    batch publishes one fresh {!Snapshot} with a single atomic pointer
    swap.  Readers pin whatever snapshot is current and keep it for the
    whole query — concurrent mutation and compaction never move data
    under them.  A single writer token (compare-and-swap, no lock held
    across IO) serializes mutators; a second concurrent mutator gets
    {!error.Busy} instead of blocking.

    {!compact} folds the delta and any dirty generations into a new
    sealed generation (documents first, then the index segment, each
    written atomically and the index verified after writing), publishes
    a manifest whose durable LSN covers every absorbed record, rotates
    the WAL, and only then unlinks replaced files.  A crash between any
    two of those steps recovers to either the pre- or post-compaction
    state: {!open_} replays only WAL records above the manifest's
    durable LSN, heals a torn WAL tail, and removes orphaned segment
    and temp files no manifest references.

    Every durability step doubles as a {!Xk_resilience.Chaos} crash
    point ([crash@<step>], steps in {!crash_steps}), which is how the
    recovery drills in [test/test_live.ml] and the CI crash matrix
    exercise the whole crash surface. *)

type error =
  | Busy  (** another mutation or compaction holds the writer token *)
  | Unknown_doc of int  (** replace/remove of a document id not live *)
  | Unstorable of string
      (** a subtree that does not survive serialization (rejected
          before anything reaches the WAL) *)
  | Corrupt of string
      (** manifest, segment or WAL damage recovery cannot heal *)
  | Io of string

val error_message : error -> string

type t

type mutation =
  | Add of Xk_xml.Xml_tree.node  (** insert; the store assigns the id *)
  | Replace of int * Xk_xml.Xml_tree.node
  | Remove of int

val create :
  ?fsync:bool ->
  ?auto_compact:int ->
  ?damping:Xk_score.Damping.t ->
  root_tag:string ->
  ?root_attrs:Xk_xml.Xml_tree.attribute list ->
  string ->
  (t, error) result
(** [create ~root_tag dir] initializes an empty store in [dir]
    (created if missing; refused if a manifest already exists).
    [auto_compact] compacts automatically once the delta touches that
    many documents.  [fsync:false] disables syncing (tests only). *)

val open_ :
  ?fsync:bool ->
  ?auto_compact:int ->
  ?damping:Xk_score.Damping.t ->
  string ->
  (t, error) result
(** Open an existing store, running recovery: load the manifest and
    sealed generations, replay WAL records above the durable LSN,
    truncate a torn WAL tail, delete orphaned files, and build the
    initial snapshot. *)

val close : t -> unit

val snapshot : t -> Snapshot.t
(** The currently published snapshot.  Immutable — safe to query while
    mutations and compactions run. *)

val lsn : t -> int
val doc_count : t -> int
val pending_ops : t -> int
(** Documents the un-compacted delta touches. *)

val sealed_gens : t -> int list
val dir : t -> string

val mutate : t -> mutation list -> (int list, error) result
(** Apply one batch: validate every operation (so a bad batch fails
    before its first WAL write), append and fsync each record, then
    publish a single snapshot covering the whole batch.  Returns the
    document id each operation touched, in batch order.  On an IO
    error mid-batch the already-durable prefix is still applied and
    published — disk and memory never disagree. *)

val compact : t -> (unit, error) result
(** Fold the delta and dirty generations into a new sealed generation
    and reset the WAL.  A no-op when nothing changed since the last
    compaction.  Readers are unaffected: the published snapshot is
    reused, only the storage layout changes. *)

val crash_steps : string list
(** Every crash point the mutation and compaction paths fire, in
    execution order — the CI crash matrix iterates exactly this
    list. *)
