(** Column-oriented on-disk storage for JDewey inverted lists (the layout
    of paper Figure 2(a)).  Readers decode one column at a time, giving
    Algorithm 1 its claimed I/O pattern: queries only pay for the levels
    they join. *)

exception Format_error of string

type stats = {
  mutable payloads_decoded : int;
  mutable columns_decoded : int;
  mutable bytes_decoded : int;
}

type t

val write : Index.t -> string -> unit
(** Serialize every term's list: compressed column blobs plus a row
    payload (node ids, local scores, sequence lengths). *)

val open_file : string -> t
(** Raises {!Format_error} on corrupt input. *)

val term_count : t -> int
val term : t -> int -> string

val term_id : t -> string -> int option
(** Case-insensitive lookup of a store-local term id. *)

val jlist : t -> int -> Jlist.t
(** A lazy list over the stored blobs: the payload decodes now, each
    column on first touch (cached thereafter). *)

val term_bytes : t -> int -> int
(** Total stored bytes of a term, for comparison against
    [stats.bytes_decoded]. *)

val stats : t -> stats
val reset_stats : t -> unit

val file_size : string -> int
