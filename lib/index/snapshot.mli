(** An immutable, queryable view of the live store at one LSN.

    A snapshot is a {!Sharding.t} over the store's current documents:
    shard 0 is the in-memory delta segment, shards 1..n are the sealed
    on-disk segments.  Building through {!Sharding.build_with} hands
    every shard the corpus-global statistics of {e this} snapshot's
    document set, so scores are bit-identical to an unsharded index
    rebuilt from scratch over the same documents — mutation never
    perturbs ranking, it only changes the corpus.

    Sealed segments whose documents the delta does not touch load their
    saved {!Index_io} segment (skipping tokenization); dirty or unsaved
    segments rebuild from their subtrees.  A load failure of a saved
    segment falls back to rebuilding — a damaged segment file degrades
    to extra work, never to a failed snapshot.

    Snapshots are immutable: readers that pinned one keep answering
    from it while the writer publishes successors. *)

type group = {
  g_docs : (int * Xk_xml.Xml_tree.node) list;
      (** (document id, top-level subtree), ascending by id *)
  g_index : string option;
      (** saved {!Index_io} segment built over exactly these documents
          (attr-free root), or [None] to tokenize from scratch *)
}

type t

val build :
  ?damping:Xk_score.Damping.t ->
  root_tag:string ->
  root_attrs:Xk_xml.Xml_tree.attribute list ->
  lsn:int ->
  group list ->
  t
(** [build ~root_tag ~root_attrs ~lsn groups] assembles the snapshot
    document (shared root plus every group's subtrees in ascending
    document-id order) and indexes it with one shard per group.  The
    first group is the delta shard and must come first even when empty
    — it is the only shard whose sub-document keeps the root
    attributes, so sealed shards stay position-stable across
    compactions.  Document ids must be unique across groups. *)

val lsn : t -> int
val document : t -> Xk_xml.Xml_tree.document
(** The reconstructed corpus: original root (tag and attributes) with
    every live subtree, in ascending document-id order.  An
    {!Xk_core.Engine} built over this document is the from-scratch
    reference the snapshot's answers are compared against. *)

val doc_ids : t -> int array
(** Document id of each top-level child of {!document}, ascending. *)

val doc_count : t -> int
val sharding : t -> Sharding.t
(** Query through [Xk_exec.Shard_exec.create] over this. *)
