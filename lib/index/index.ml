(* The corpus index: term dictionary plus raw postings (node, tf) built in
   one pass over the labeled tree.  The algorithm-specific list shapes —
   Dewey postings, JDewey column lists, score-ordered lists — are
   materialized per term on demand and cached, which mirrors the paper's
   hot-cache experimental setting.

   The three shape caches are sharded, bounded LRU caches (Shard_cache),
   so one index can be shared by concurrent query domains: everything
   else in [t] is immutable after construction (the dictionary is only
   written during build/of_raw). *)

type raw = { r_nodes : int array; r_tfs : int array }

(* Lazily-fetched rows: a zero-copy segment (Index_io v3) decodes a
   term's rows from mapped columns on first use instead of materializing
   the whole postings file at open.  [pv_rows] must be safe to call from
   any domain (it is pure decoding of immutable mapped bytes) and may
   raise the segment's typed fault exception; the per-shape caches above
   it make repeated query access cheap. *)
type provider = {
  pv_terms : int;
  pv_row_count : int -> int;
  pv_rows : int -> int array * int array;
}

type rows_src = Arrays of raw array | Lazy_rows of provider

let default_cache_capacity = 8192

(* Corpus-global ranking statistics, for shards of a partitioned corpus:
   the scorer norm uses the whole corpus's node count and [so_df] the
   whole corpus's per-term document frequency, so shard-local scores are
   bit-identical to the unsharded index.  [so_df] is only consulted at
   list-shape materialization time, so it may read a table that is filled
   after all shards have been constructed. *)
type stats_override = { so_total_nodes : int; so_df : string -> int }

type t = {
  label : Xk_encoding.Labeling.t;
  dict : Xk_text.Dictionary.t;
  raws : rows_src;
  scorer : Xk_score.Scorer.t;
  damping : Xk_score.Damping.t;
  df_override : (string -> int) option;
  jcache : Jlist.t Shard_cache.t;
  pcache : Posting.t Shard_cache.t;
  scache : Score_list.t Shard_cache.t;
}

(* Text a node "directly contains": its own character data for text nodes,
   its attribute values for elements. *)
let direct_text (x : Xk_xml.Xml_tree.node) =
  match x with
  | Xk_xml.Xml_tree.Text s -> s
  | Xk_xml.Xml_tree.Element e ->
      (match e.attrs with
      | [] -> ""
      | attrs ->
          String.concat " "
            (List.map (fun (a : Xk_xml.Xml_tree.attribute) -> a.attr_value) attrs))

let make_caches capacity =
  if capacity < 1 then Xk_util.Err.invalid "Index: cache_capacity < 1";
  ( Shard_cache.create ~capacity (),
    Shard_cache.create ~capacity (),
    Shard_cache.create ~capacity () )

let scorer_for ?stats label =
  let total_nodes =
    match stats with
    | Some s -> s.so_total_nodes
    | None -> Xk_encoding.Labeling.node_count label
  in
  Xk_score.Scorer.make ~total_nodes

let df_override_of stats =
  Option.map (fun s -> s.so_df) stats

let build ?(damping = Xk_score.Damping.default)
    ?(cache_capacity = default_cache_capacity) ?stats
    (label : Xk_encoding.Labeling.t) =
  let dict = Xk_text.Dictionary.create () in
  let nodes_bufs : Ibuf.t array ref = ref (Array.make 1024 (Ibuf.create ())) in
  let tfs_bufs : Ibuf.t array ref = ref (Array.make 1024 (Ibuf.create ())) in
  let buf_count = ref 0 in
  let ensure id =
    let cap = Array.length !nodes_bufs in
    if id >= cap then begin
      let nb = Array.make (max (2 * cap) (id + 1)) (Ibuf.create ()) in
      let tb = Array.make (max (2 * cap) (id + 1)) (Ibuf.create ()) in
      Array.blit !nodes_bufs 0 nb 0 cap;
      Array.blit !tfs_bufs 0 tb 0 cap;
      nodes_bufs := nb;
      tfs_bufs := tb
    end;
    while !buf_count <= id do
      !nodes_bufs.(!buf_count) <- Ibuf.create ();
      !tfs_bufs.(!buf_count) <- Ibuf.create ();
      incr buf_count
    done
  in
  let tally : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let n = Xk_encoding.Labeling.node_count label in
  for i = 0 to n - 1 do
    let text = direct_text (Xk_encoding.Labeling.xml_node label i) in
    if String.length text > 0 then begin
      Hashtbl.reset tally;
      Xk_text.Tokenizer.iter_indexed text (fun w ->
          let id = Xk_text.Dictionary.intern dict w in
          let tf = try Hashtbl.find tally id with Not_found -> 0 in
          Hashtbl.replace tally id (tf + 1));
      Hashtbl.iter
        (fun id tf ->
          ensure id;
          Ibuf.push !nodes_bufs.(id) i;
          Ibuf.push !tfs_bufs.(id) tf;
          Xk_text.Dictionary.bump_df dict id;
          Xk_text.Dictionary.bump_cf dict id tf)
        tally
    end
  done;
  let terms = Xk_text.Dictionary.size dict in
  let raws =
    Array.init terms (fun id ->
        if id < !buf_count then
          { r_nodes = Ibuf.contents !nodes_bufs.(id);
            r_tfs = Ibuf.contents !tfs_bufs.(id) }
        else { r_nodes = [||]; r_tfs = [||] })
  in
  let jcache, pcache, scache = make_caches cache_capacity in
  {
    label;
    dict;
    raws = Arrays raws;
    scorer = scorer_for ?stats label;
    damping;
    df_override = df_override_of stats;
    jcache;
    pcache;
    scache;
  }

(* Reassemble an index from persisted raw postings (see Index_io). *)
let of_raw ?(damping = Xk_score.Damping.default)
    ?(cache_capacity = default_cache_capacity) ?stats
    (label : Xk_encoding.Labeling.t)
    (entries : (string * int array * int array) list) =
  let dict = Xk_text.Dictionary.create () in
  let raws =
    List.map
      (fun (term, nodes, tfs) ->
        if Array.length nodes <> Array.length tfs then
          Xk_util.Err.invalid "Index.of_raw: row length mismatch";
        let id = Xk_text.Dictionary.intern dict term in
        for _ = 1 to Array.length nodes do
          Xk_text.Dictionary.bump_df dict id
        done;
        Xk_text.Dictionary.bump_cf dict id (Array.fold_left ( + ) 0 tfs);
        { r_nodes = nodes; r_tfs = tfs })
      entries
  in
  let jcache, pcache, scache = make_caches cache_capacity in
  {
    label;
    dict;
    raws = Arrays (Array.of_list raws);
    scorer = scorer_for ?stats label;
    damping;
    df_override = df_override_of stats;
    jcache;
    pcache;
    scache;
  }

(* Wrap a lazy rows source (a mapped segment).  The caller supplies the
   dictionary already interned in term-id order with its statistics set
   from the segment directory: that is what makes open cost proportional
   to the dictionary, not to the postings. *)
let of_provider ?(damping = Xk_score.Damping.default)
    ?(cache_capacity = default_cache_capacity) ?stats ~dict
    (label : Xk_encoding.Labeling.t) (pv : provider) =
  if Xk_text.Dictionary.size dict <> pv.pv_terms then
    Xk_util.Err.invalid "Index.of_provider: dictionary/provider size mismatch";
  let jcache, pcache, scache = make_caches cache_capacity in
  {
    label;
    dict;
    raws = Lazy_rows pv;
    scorer = scorer_for ?stats label;
    damping;
    df_override = df_override_of stats;
    jcache;
    pcache;
    scache;
  }

let label t = t.label
let dict t = t.dict
let damping t = t.damping
let scorer t = t.scorer

let term_count t =
  match t.raws with Arrays a -> Array.length a | Lazy_rows pv -> pv.pv_terms

(* Fetch one term's rows.  The Arrays form shares the stored arrays (the
   callers never mutate them); the lazy form decodes fresh arrays from
   the mapped columns each call — per-query cost is amortized by the
   shape caches, and whole-dictionary sweeps pay streaming decode. *)
let fetch_raw t id =
  match t.raws with
  | Arrays a -> a.(id)
  | Lazy_rows pv ->
      let nodes, tfs = pv.pv_rows id in
      { r_nodes = nodes; r_tfs = tfs }

let term_id t w = Xk_text.Dictionary.find t.dict (String.lowercase_ascii w)
let term t id = Xk_text.Dictionary.term t.dict id

let df t id =
  match t.raws with
  | Arrays a -> Array.length a.(id).r_nodes
  | Lazy_rows pv -> pv.pv_row_count id

(* Local scores of a term's rows.  [df] is the term's corpus-wide
   document frequency: the row count here, unless the index is one shard
   of a partitioned corpus, in which case the override supplies the sum
   over all shards. *)
let scores_of_raw t id (r : raw) =
  let df =
    match t.df_override with
    | None -> Array.length r.r_nodes
    | Some df -> df (Xk_text.Dictionary.term t.dict id)
  in
  Array.map (fun tf -> Xk_score.Scorer.local_score t.scorer ~tf ~df) r.r_tfs

let jlist t id =
  Shard_cache.find_or_add t.jcache id ~compute:(fun id ->
      let r = fetch_raw t id in
      let seqs =
        Array.map (fun n -> Xk_encoding.Labeling.jdewey_seq t.label n) r.r_nodes
      in
      let scores = scores_of_raw t id r in
      Jlist.make ~seqs ~nodes:r.r_nodes ~scores)

let posting t id =
  Shard_cache.find_or_add t.pcache id ~compute:(fun id ->
      let r = fetch_raw t id in
      let deweys =
        Array.map (fun n -> Xk_encoding.Labeling.dewey t.label n) r.r_nodes
      in
      let scores = scores_of_raw t id r in
      Posting.make ~deweys ~nodes:r.r_nodes ~scores)

(* Note: the compute step takes the jcache shard lock from inside the
   scache shard lock.  Safe, because jlist's compute never locks scache
   (no cyclic lock order across the three caches). *)
let score_list t id =
  Shard_cache.find_or_add t.scache id ~compute:(fun id ->
      Score_list.make (jlist t id) t.damping)

let cache_stats t =
  Shard_cache.(
    add_stats (stats t.jcache) (add_stats (stats t.pcache) (stats t.scache)))

(* Pre-materialize every list shape for the given terms: the benches call
   this before timing so measurements reflect the paper's hot cache. *)
let warm t ids =
  List.iter
    (fun id ->
      ignore (jlist t id);
      ignore (posting t id);
      ignore (score_list t id))
    ids

let term_ids_exn t words =
  List.map
    (fun w ->
      match term_id t w with
      | Some id -> id
      | None -> Xk_util.Err.invalidf "unknown keyword %S" w)
    words

(* Uncached access for whole-dictionary sweeps (index-size accounting),
   which must not blow up the per-term caches. *)
let raw_rows t id =
  let r = fetch_raw t id in
  (r.r_nodes, r.r_tfs)

let local_scores t id = scores_of_raw t id (fetch_raw t id)

(* Terms sorted by descending document frequency, for workload selection. *)
let terms_by_df t =
  let ids = Array.init (term_count t) (fun i -> i) in
  Array.sort (fun a b -> Int.compare (df t b) (df t a)) ids;
  ids
