(* One column of a JDewey inverted list: the level-l JDewey numbers of all
   sequences of length >= l, in list (= document) order.

   Rows holding the same number at level l are contiguous in the list — a
   consequence of Property 3.1 proved in the paper and re-checked as a
   qcheck property in the test suite — so the column is exactly a sorted
   array of runs (value, start_row, count) over consecutive row indices.
   This is simultaneously the in-memory working form of the paper's second
   compression scheme and the unit of its range checking. *)

type run = { value : int; start_row : int; count : int }

type t = { runs : run array; entries : int }

let runs t = t.runs
let num_runs t = Array.length t.runs
let entries t = t.entries
let is_empty t = Array.length t.runs = 0

(* Build the level-[l] column (1-based) from document-ordered sequences. *)
let build (seqs : Xk_encoding.Jdewey.t array) ~level =
  if level < 1 then Xk_util.Err.invalid "Column.build: level must be >= 1";
  let acc = ref [] in
  let n_runs = ref 0 in
  let cur_value = ref (-1) and cur_start = ref (-1) and cur_count = ref 0 in
  let flush () =
    if !cur_count > 0 then begin
      acc := { value = !cur_value; start_row = !cur_start; count = !cur_count } :: !acc;
      incr n_runs
    end
  in
  let total = ref 0 in
  Array.iteri
    (fun r (s : Xk_encoding.Jdewey.t) ->
      if Array.length s >= level then begin
        let v = s.(level - 1) in
        incr total;
        if v = !cur_value && !cur_start + !cur_count = r then
          incr cur_count
        else begin
          (* Runs must be strictly increasing and internally contiguous;
             both follow from Property 3.1 for document-ordered input. *)
          assert (v > !cur_value);
          flush ();
          cur_value := v;
          cur_start := r;
          cur_count := 1
        end
      end)
    seqs;
  flush ();
  { runs = Array.of_list (List.rev !acc); entries = !total }

(* Reassemble a column from complete runs (store decoding path). *)
let of_runs (runs : run array) =
  let entries = Array.fold_left (fun a r -> a + r.count) 0 runs in
  { runs; entries }

(* Binary search for the run holding [value]. *)
let find t value =
  let runs = t.runs in
  let lo = ref 0 and hi = ref (Array.length runs - 1) in
  let res = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = runs.(mid) in
    if r.value = value then begin
      res := Some r;
      lo := !hi + 1
    end
    else if r.value < value then lo := mid + 1
    else hi := mid - 1
  done;
  !res

(* Index of the first run with value >= [value] (Array.length runs if none):
   the resume point for merge scans. *)
let lower_bound t value =
  let runs = t.runs in
  let lo = ref 0 and hi = ref (Array.length runs) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if runs.(mid).value < value then lo := mid + 1 else hi := mid
  done;
  !lo

let max_value t =
  let n = Array.length t.runs in
  if n = 0 then None else Some t.runs.(n - 1).value

let to_codec_runs t : Xk_storage.Column_codec.run array =
  Array.map
    (fun r -> { Xk_storage.Column_codec.value = r.value; count = r.count })
    t.runs

let encoded_size t = Xk_storage.Column_codec.encoded_size (to_codec_runs t)
