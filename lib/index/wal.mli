(** Write-ahead log for live index mutation.

    One append-only file per live store.  The header is a magic string,
    a format version and the {e base LSN} — the log sequence number the
    durable (compacted) state already covers, so replay after a crash
    applies only records the segments have not absorbed.  Each record is
    framed as [varint length | varint crc32 | payload] and fsynced
    before the mutation is acknowledged, which makes every acknowledged
    operation recoverable.

    A crash mid-append leaves a {e torn} final record: the declared
    length runs past the end of the file, or the checksum of the bytes
    that did land does not match.  {!open_existing} heals that tail —
    the file is truncated back to the last intact record and the torn
    suffix is gone, exactly the pre-mutation state the writer never got
    to acknowledge.  Damage {e before} the tail is different: an
    earlier record can only fail its CRC through bit rot, not through a
    crash, so it is reported as {!Corrupted} rather than silently
    dropped.

    The writer cooperates with {!Xk_resilience.Chaos} crash drills: an
    armed [crash@wal-append] makes {!append} write only a prefix of the
    record before dying, simulating the torn write that recovery must
    heal. *)

type op =
  | Insert of { doc_id : int; subtree : Xk_xml.Xml_tree.node }
      (** insert-or-replace: the document with this id becomes
          [subtree] *)
  | Delete of { doc_id : int }

type record = { lsn : int; op : op }

type error =
  | Corrupted of string
      (** bad magic, version, or a checksum failure before the final
          record — damage replay must not paper over *)
  | Io of string  (** the OS refused an open/read/write *)

val error_message : error -> string

type t
(** An open log with its write channel positioned at the end.  Handles
    are single-writer: the live store serializes access through its
    writer token. *)

val create : ?fsync:bool -> base_lsn:int -> string -> (t, error) result
(** Create (or truncate) the log at a path, writing a fresh header.
    [fsync:false] skips every sync (tests only). *)

val open_existing :
  ?fsync:bool -> string -> (t * record list, error) result
(** Open an existing log for recovery: parse the header, decode every
    intact record, truncate a torn tail in place, and return the handle
    positioned for appending together with the surviving records in
    append order.  Records at or below the base LSN have already been
    compacted into segments; the caller skips them during replay. *)

val append : t -> op -> (int, error) result
(** Frame, write and fsync one record; returns its LSN.  The record is
    durable when [append] returns.  Fires the [wal-append] (torn
    write), [wal-pre-fsync] and [wal-post-fsync] crash points. *)

val base_lsn : t -> int
val lsn : t -> int
(** LSN of the last record written or recovered (= [base_lsn] when the
    log is empty). *)

val path : t -> string
val close : t -> unit

(** {1 Subtree codec}

    Shared with the sealed-segment document files: a flag byte (0 =
    element, serialized XML; 1 = raw text) then a length-prefixed byte
    string. *)

val encode_subtree : Buffer.t -> Xk_xml.Xml_tree.node -> unit

val decode_subtree :
  Xk_storage.Varint.cursor -> (Xk_xml.Xml_tree.node, string) result
