(* Document-ordered Dewey posting list: the view of an inverted list used
   by the stack-based, index-based and RDIL baselines. *)

type t = {
  deweys : Xk_encoding.Dewey.t array; (* ascending document order *)
  nodes : int array;
  scores : float array; (* local score g per row *)
}

let length t = Array.length t.deweys
let dewey t r = t.deweys.(r)
let node t r = t.nodes.(r)
let score t r = t.scores.(r)

let make ~deweys ~nodes ~scores =
  let n = Array.length deweys in
  if Array.length nodes <> n || Array.length scores <> n then
    Xk_util.Err.invalid "Posting.make: length mismatch";
  { deweys; nodes; scores }

(* First row with dewey >= [d] (length if none): the basis for the
   pred/succ probes and range counting of the index-based algorithms. *)
let lower_bound t (d : Xk_encoding.Dewey.t) =
  let lo = ref 0 and hi = ref (Array.length t.deweys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Xk_encoding.Dewey.compare t.deweys.(mid) d < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

(* Closest row at or after [d] in document order. *)
let succ t d =
  let i = lower_bound t d in
  if i < Array.length t.deweys then Some i else None

(* Closest row strictly before [d] in document order. *)
let pred t d =
  let i = lower_bound t d in
  if i > 0 then Some (i - 1) else None

(* Number of rows inside the subtree of [u] (document-order interval
   [u, range_end u)). *)
let count_in_subtree t (u : Xk_encoding.Dewey.t) =
  let lo = lower_bound t u in
  let hi = lower_bound t (Xk_encoding.Dewey.range_end u) in
  hi - lo

let subtree_range t (u : Xk_encoding.Dewey.t) =
  let lo = lower_bound t u in
  let hi = lower_bound t (Xk_encoding.Dewey.range_end u) in
  (lo, hi)

let encoded_size t =
  Xk_storage.Dewey_codec.encoded_size t.deweys
  + Array.fold_left (fun a v -> a + Xk_storage.Varint.size v) 0 t.nodes
