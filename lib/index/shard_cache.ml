(* A sharded, mutex-guarded, bounded LRU cache keyed by term id.

   The per-term list shapes (Jlist, Posting, Score_list) are cheap to
   look up and expensive to materialize, so a miss computes under the
   shard lock: two domains racing for the same term produce one
   materialization, and the shape a query observes is always a fully
   constructed value.  Recency is a per-shard logical clock stamped on
   every access; eviction scans the shard for the smallest stamp, which
   is O(shard size) but shards stay small (capacity / #shards). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let zero_stats = { hits = 0; misses = 0; evictions = 0; entries = 0; capacity = 0 }

let add_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    evictions = a.evictions + b.evictions;
    entries = a.entries + b.entries;
    capacity = a.capacity + b.capacity;
  }

let aggregate = List.fold_left add_stats zero_stats

type 'a entry = { value : 'a; mutable stamp : int }

type 'a shard = {
  lock : Mutex.t;
  tbl : (int, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type 'a t = { shards : 'a shard array; shard_capacity : int }

let create ?(shards = 16) ~capacity () =
  if capacity < 1 then Xk_util.Err.invalid "Shard_cache.create: capacity < 1";
  let shards = max 1 (min shards capacity) in
  let shard_capacity = (capacity + shards - 1) / shards in
  {
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            tbl = Hashtbl.create 64;
            clock = 0;
            hits = 0;
            misses = 0;
            evictions = 0;
          });
    shard_capacity;
  }

let shard_of t key = t.shards.((key land max_int) mod Array.length t.shards)

(* Remove the entry with the smallest recency stamp. *)
let evict_lru s =
  let victim = ref (-1) and oldest = ref max_int in
  Hashtbl.iter
    (fun k (e : _ entry) ->
      if e.stamp < !oldest then begin
        oldest := e.stamp;
        victim := k
      end)
    s.tbl;
  if !victim >= 0 then begin
    Hashtbl.remove s.tbl !victim;
    s.evictions <- s.evictions + 1
  end

let find_or_add t key ~compute =
  let s = shard_of t key in
  Xk_util.Sync.with_lock s.lock (fun () ->
      s.clock <- s.clock + 1;
      match Hashtbl.find_opt s.tbl key with
      | Some e ->
          s.hits <- s.hits + 1;
          e.stamp <- s.clock;
          e.value
      | None ->
          s.misses <- s.misses + 1;
          let v = compute key in
          if Hashtbl.length s.tbl >= t.shard_capacity then evict_lru s;
          Hashtbl.replace s.tbl key { value = v; stamp = s.clock };
          v)

let mem t key =
  let s = shard_of t key in
  Xk_util.Sync.with_lock s.lock (fun () -> Hashtbl.mem s.tbl key)

let stats t =
  Array.fold_left
    (fun acc (s : _ shard) ->
      let st =
        Xk_util.Sync.with_lock s.lock (fun () ->
            {
              hits = s.hits;
              misses = s.misses;
              evictions = s.evictions;
              entries = Hashtbl.length s.tbl;
              capacity = t.shard_capacity;
            })
      in
      add_stats acc st)
    zero_stats t.shards
