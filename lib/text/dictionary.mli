(** Term dictionary: interns terms to dense ids and tracks per-term document
    frequency (nodes directly containing the term) and collection frequency
    (total occurrences). *)

type t

val create : ?size:int -> unit -> t
(** [size] presizes the table for a known term count (segment loaders),
    avoiding every rehash and growth copy during bulk interning. *)

val intern : t -> string -> int
(** Id of a term, allocating a fresh id on first sight. *)

val find : t -> string -> int option
val term : t -> int -> string
val size : t -> int

val df : t -> int -> int
val cf : t -> int -> int
val bump_df : t -> int -> unit
val bump_cf : t -> int -> int -> unit

val set_stats : t -> int -> df:int -> cf:int -> unit
(** Set both frequencies of a term at once; used by segment loaders that
    read the statistics from a directory instead of counting rows. *)

val iter : t -> (int -> string -> unit) -> unit

val approx_bytes : t -> int
(** Serialized footprint (term bytes + statistics), used by the index-size
    accounting. *)
