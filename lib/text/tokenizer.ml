(* Word tokenizer standing in for the paper's use of Lucene.

   A token is a maximal run of letters, digits or bytes >= 0x80 (so UTF-8
   multi-byte characters stay inside words), lowercased over ASCII.  Tokens
   shorter than [min_len] and pure numbers longer than [max_num_len] are
   dropped to keep the dictionary within reason. *)

let default_min_len = 2
let default_max_len = 40

let is_word_byte c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || Char.code c >= 0x80

let lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c

(* Feed every token of [s] to [f].  No list allocation: the hot path of
   index construction goes through here once per text node. *)
let iter ?(min_len = default_min_len) ?(max_len = default_max_len) s f =
  let n = String.length s in
  let buf = Buffer.create 16 in
  let flush () =
    let len = Buffer.length buf in
    if len >= min_len && len <= max_len then f (Buffer.contents buf);
    Buffer.clear buf
  in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if is_word_byte c then Buffer.add_char buf (lower c) else flush ()
  done;
  flush ()

let tokens ?min_len ?max_len s =
  let acc = ref [] in
  iter ?min_len ?max_len s (fun t -> acc := t :: !acc);
  List.rev !acc

(* A compact English stopword list; enough to keep glue words out of the
   inverted index, as Lucene's default analyzer does. *)
let stopwords =
  [
    "a"; "an"; "and"; "are"; "as"; "at"; "be"; "but"; "by"; "for"; "if";
    "in"; "into"; "is"; "it"; "no"; "not"; "of"; "on"; "or"; "such"; "that";
    "the"; "their"; "then"; "there"; "these"; "they"; "this"; "to"; "was";
    "will"; "with";
  ]

let stopword_set : (string, unit) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun w -> Hashtbl.replace h w ()) stopwords;
  h

let is_stopword w = Hashtbl.mem stopword_set w

let iter_indexed ?min_len ?max_len s f =
  iter ?min_len ?max_len s (fun t -> if not (is_stopword t) then f t)
