(** Word tokenizer (the Lucene stand-in).

    Tokens are maximal runs of letters/digits/high bytes, ASCII-lowercased.
    [min_len]/[max_len] (default 2/40) bound accepted token lengths. *)

val default_min_len : int
val default_max_len : int

val iter : ?min_len:int -> ?max_len:int -> string -> (string -> unit) -> unit
(** Feed each token of a string to a callback, allocation-light. *)

val tokens : ?min_len:int -> ?max_len:int -> string -> string list

val is_stopword : string -> bool

val iter_indexed :
  ?min_len:int -> ?max_len:int -> string -> (string -> unit) -> unit
(** Like {!iter} but skips stopwords; the index builder's entry point. *)
