(* Term dictionary: interns term strings to dense integer ids and tracks
   collection statistics (document frequency = number of nodes directly
   containing the term; collection frequency = total occurrences). *)

type t = {
  ids : (string, int) Hashtbl.t;
  mutable terms : string array;
  mutable dfs : int array;
  mutable cfs : int array;
  mutable len : int;
}

(* [size] presizes the table and arrays: a segment loader knows the
   exact term count and skips every rehash and growth copy. *)
let create ?(size = 1024) () =
  let size = max 16 size in
  {
    ids = Hashtbl.create (max 4096 size);
    terms = Array.make size "";
    dfs = Array.make size 0;
    cfs = Array.make size 0;
    len = 0;
  }

let grow t =
  let cap = Array.length t.terms in
  let terms = Array.make (2 * cap) "" in
  let dfs = Array.make (2 * cap) 0 in
  let cfs = Array.make (2 * cap) 0 in
  Array.blit t.terms 0 terms 0 t.len;
  Array.blit t.dfs 0 dfs 0 t.len;
  Array.blit t.cfs 0 cfs 0 t.len;
  t.terms <- terms;
  t.dfs <- dfs;
  t.cfs <- cfs

let intern t w =
  match Hashtbl.find_opt t.ids w with
  | Some id -> id
  | None ->
      if t.len = Array.length t.terms then grow t;
      let id = t.len in
      t.terms.(id) <- w;
      t.len <- id + 1;
      Hashtbl.add t.ids w id;
      id

let find t w = Hashtbl.find_opt t.ids w
let term t id = t.terms.(id)
let size t = t.len
let df t id = t.dfs.(id)
let cf t id = t.cfs.(id)
let bump_df t id = t.dfs.(id) <- t.dfs.(id) + 1
let bump_cf t id n = t.cfs.(id) <- t.cfs.(id) + n

(* Bulk form for loaders that know the statistics up front (the v3
   segment directory): O(1) instead of one bump per posting row. *)
let set_stats t id ~df ~cf =
  t.dfs.(id) <- df;
  t.cfs.(id) <- cf

let iter t f =
  for id = 0 to t.len - 1 do
    f id t.terms.(id)
  done

(* Serialized footprint of the dictionary itself (term bytes + statistics),
   counted into every index flavour's size in Table I. *)
let approx_bytes t =
  let b = ref 0 in
  for id = 0 to t.len - 1 do
    b := !b + String.length t.terms.(id) + 1 + 8
  done;
  !b
