(* The per-shard job, factored out of the scatter/gather so the RPC
   shard server runs the identical code path — remote parity with the
   in-process run is by construction, not by re-implementation. *)

type result = {
  sr_summary : Xk_index.Sharding.root_summary option;
  sr_outcome : Xk_core.Engine.run_outcome;
  sr_bound : float;
}

let canonical_words words =
  List.sort_uniq String.compare (List.map String.lowercase_ascii words)

let is_anytime (r : Xk_core.Engine.request) =
  match r.req_mode with
  | Topk ((Topk_join | Hybrid), _) -> true
  | Topk ((Complete_then_sort | Rdil_baseline), _) | Complete _ -> false

let last_score hits =
  match List.rev hits with
  | [] -> infinity
  | (h : Xk_baselines.Hit.t) :: _ -> h.score

let run ~sharding ~engine ~shard ~budget ~words (req : Xk_core.Engine.request)
    =
  (* The summary runs first under the same budget: gathering needs it to
     reconstruct the root even when the query part only gets half-way. *)
  match Xk_index.Sharding.root_summary ~budget sharding ~shard words with
  | exception Xk_resilience.Budget.Expired ->
      {
        sr_summary = None;
        sr_outcome = (if is_anytime req then Partial [] else Timed_out);
        sr_bound = infinity;
      }
  | summary ->
      let req' : Xk_core.Engine.request =
        match req.req_mode with
        | Topk (alg, k) ->
            (* One extra slot: a shard-local root hit is dropped below, and
               the re-derived global root can displace one deep hit. *)
            { req with req_mode = Topk (alg, k + 1) }
        | Complete _ -> req
      in
      let out = Xk_core.Engine.run_request_outcome ~budget engine req' in
      (* The bound reflects what the shard did NOT confirm, so it is taken
         before the root hit is dropped. *)
      let bound =
        match out with
        | Done _ ->
            (* Complete answer, or full local top-(K+1): anything unreturned
               is dominated by K returned hits of this very shard, so it
               cannot enter the global top-K. *)
            neg_infinity
        | Partial hs -> last_score hs
        | Timed_out -> infinity
      in
      let globalize hs =
        List.filter_map
          (fun (h : Xk_baselines.Hit.t) ->
            if h.node = 0 then None
            else
              Some
                { h with node = Xk_index.Sharding.to_global sharding ~shard h.node })
          hs
      in
      let out : Xk_core.Engine.run_outcome =
        match out with
        | Done hs -> Done (globalize hs)
        | Partial hs -> Partial (globalize hs)
        | Timed_out -> Timed_out
      in
      { sr_summary = Some summary; sr_outcome = out; sr_bound = bound }
