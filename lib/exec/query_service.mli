(** Concurrent query serving: one shared {!Xk_core.Engine.t}, one
    {!Domain_pool}, batches of heterogeneous requests executed in
    parallel.

    Sharing is safe because the engine's only mutable query-path state —
    the index's per-term shape caches — sits behind sharded locks
    ({!Xk_index.Shard_cache}); every [Ok] result is bit-identical to the
    sequential {!Xk_core.Engine.query_batch} on the same batch.
    [exec_batch] may itself be called concurrently from several client
    domains: their requests interleave on the pool.

    Resilience: every request resolves to an {!outcome}.  Exceptions
    raised by a request (including injected faults) are captured with
    their backtrace and delivered as [Failed] — worker domains never die
    and the service stays usable.  Deadlines degrade anytime top-K
    requests to [Partial] prefixes; complete evaluations report
    [Timeout].  With [max_queue] set, requests beyond the in-flight bound
    are refused up front as [Rejected]. *)

type t

(** Per-request result of a batch execution. *)
type outcome =
  | Ok of Xk_baselines.Hit.t list  (** ran to completion *)
  | Partial of Xk_baselines.Hit.t list
      (** deadline expired; a confirmed prefix of the full top-K *)
  | Degraded of {
      hits : Xk_baselines.Hit.t list;
          (** confirmed prefix over the reachable shards only *)
      missing_shards : int list;  (** shards whose replicas all failed *)
      coverage : float;  (** fraction of top-level subtrees reachable *)
    }
      (** replicated serving lost at least one whole shard; the missing
          shards' upper bounds are pinned to [+inf], so every reported
          hit is provably in the true top-K {e of the reachable data}
          and no full-corpus confirmation is claimed *)
  | Timeout  (** deadline expired with no partial result available *)
  | Rejected  (** refused by admission control, never executed *)
  | Failed of { message : string; backtrace : string }
      (** the request raised; the worker survived *)

val hits : outcome -> Xk_baselines.Hit.t list
(** The hits carried by [Ok]/[Partial]/[Degraded]; [[]] otherwise. *)

val is_failure : outcome -> bool
(** [true] only for [Failed] — the hard-failure predicate used for exit
    codes (timeouts, rejections and degraded service are service
    policy, not errors). *)

val outcome_label : outcome -> string
(** ["ok"], ["partial"], ["degraded"], ["timeout"], ["rejected"] or
    ["failed"]. *)

val create : ?domains:int -> ?max_queue:int -> Xk_core.Engine.t -> t
(** Spawn a service over the engine.  [domains] as in
    {!Domain_pool.create}.  [max_queue] bounds the number of admitted
    in-flight requests (queued + executing); absent means unbounded.
    Raises [Invalid_argument] when [max_queue < 1]. *)

val engine : t -> Xk_core.Engine.t
val domains : t -> int

val exec_batch :
  ?deadline_ms:float ->
  t ->
  Xk_core.Engine.request list ->
  outcome list
(** Execute every request on the pool and return outcomes in request
    order.  Blocks until the whole batch settles.  [deadline_ms] applies
    per request, to each one that does not carry its own
    [req_deadline_ms]; the clock starts at admission, so queueing time
    counts against it. *)

val exec_batch_hits :
  ?deadline_ms:float ->
  t ->
  Xk_core.Engine.request list ->
  Xk_baselines.Hit.t list list
(** [exec_batch] projected through {!hits} — convenience for callers that
    only care about successful results. *)

type stats = {
  domains : int;
  batches : int;  (** [exec_batch] calls so far *)
  queries : int;  (** individual requests received (admitted or not) *)
  completed : int;  (** requests that finished [Ok] *)
  partials : int;  (** requests degraded to [Partial] *)
  timeouts : int;  (** requests that report [Timeout] *)
  rejected : int;  (** requests refused by admission control *)
  failed : int;  (** requests that raised ([Failed]) *)
  max_queue : int option;  (** the admission bound, if any *)
  cache : Xk_index.Shard_cache.stats;
      (** hit/miss/eviction counters of the engine's shape caches *)
}

val stats : t -> stats

val shutdown : t -> unit
(** Shut the underlying pool down (finishing any in-flight batch). *)
