(** Concurrent query serving: one shared {!Xk_core.Engine.t}, one
    {!Domain_pool}, batches of heterogeneous requests executed in
    parallel.

    Sharing is safe because the engine's only mutable query-path state —
    the index's per-term shape caches — sits behind sharded locks
    ({!Xk_index.Shard_cache}); every result is bit-identical to the
    sequential {!Xk_core.Engine.query_batch} on the same batch.
    [exec_batch] may itself be called concurrently from several client
    domains: their requests interleave on the pool. *)

type t

val create : ?domains:int -> Xk_core.Engine.t -> t
(** Spawn a service over the engine.  [domains] as in
    {!Domain_pool.create}. *)

val engine : t -> Xk_core.Engine.t
val domains : t -> int

val exec_batch :
  t -> Xk_core.Engine.request list -> Xk_baselines.Hit.t list list
(** Execute every request on the pool and return the result lists in
    request order.  Blocks until the whole batch is done. *)

type stats = {
  domains : int;
  batches : int;  (** [exec_batch] calls so far *)
  queries : int;  (** individual requests executed *)
  cache : Xk_index.Shard_cache.stats;
      (** hit/miss/eviction counters of the engine's shape caches *)
}

val stats : t -> stats

val shutdown : t -> unit
(** Shut the underlying pool down (finishing any in-flight batch). *)
