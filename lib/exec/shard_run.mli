(** The per-shard unit of work, shared by every transport: the local
    scatter/gather in {!Shard_exec} and the RPC {!Shard_server} both run
    exactly this job, which is what makes remote serving bit-identical
    to in-process serving.

    One run evaluates a request against one shard's engine under a
    budget: root summary first (the gather needs it to reconstruct the
    root even from a half-finished shard), then the budget-aware engine
    with one extra top-K slot, then the shard's confirmation bound and
    the translation of hit nodes to global numbering. *)

type result = {
  sr_summary : Xk_index.Sharding.root_summary option;
      (** [None]: the budget expired before the summary finished *)
  sr_outcome : Xk_core.Engine.run_outcome;
      (** hits in global numbering, shard-local root hits dropped *)
  sr_bound : float;
      (** upper bound on the score of anything the shard did not
          confirm: [neg_infinity] once a shard can no longer place a new
          hit in the global top-K, [+inf] for a shard that reported
          nothing *)
}

val canonical_words : string list -> string list
(** The keyword positions of every root summary, and the summation
    order of the root score: canonical terms, exactly the engine's plan
    order. *)

val is_anytime : Xk_core.Engine.request -> bool
(** Whether the request's mode degrades to a confirmed [Partial] prefix
    on budget expiry rather than [Timed_out]. *)

val run :
  sharding:Xk_index.Sharding.t ->
  engine:Xk_core.Engine.t ->
  shard:int ->
  budget:Xk_resilience.Budget.t ->
  words:string list ->
  Xk_core.Engine.request ->
  result
(** One engine run over one replica's engine; [words] must be
    {!canonical_words} of the request.  Exceptions (chaos kills,
    injected faults, genuine bugs) propagate to the caller's failover
    loop. *)
