(** The server side of remote shard serving: a {!Shard_run} job behind
    the {!Xk_rpc} frame protocol.

    A shard server wraps a fully loaded sharded index (scoring uses
    corpus-global statistics, so every shard's dictionary must be
    present) but serves queries for exactly one [(shard, replica)]
    identity.  {!handle_query} rebuilds a fresh
    {!Xk_resilience.Budget.t} from the deadline and tick allowance
    propagated in the request — a remote shard degrades to a confirmed
    [Partial] prefix under the caller's budget exactly like an
    in-process one.

    Chaos: when a schedule is installed in the server process,
    {!Xk_resilience.Chaos.on_attempt} runs before each query with the
    server's own identity; an armed kill closes the connection without a
    reply — on the wire, indistinguishable from the process dying.  Any
    other handler exception answers [Refused], which the client treats
    as a replica failure and fails over. *)

type t

val create : sharding:Xk_index.Sharding.t -> shard:int -> replica:int -> t
(** A server identity over a loaded index.  Raises [Invalid_argument]
    when [shard] is out of range. *)

val handle_query : t -> Xk_rpc.Wire.query -> Xk_rpc.Wire.reply
(** Serve one decoded query: checks the request targets this server's
    shard, threads a {!Xk_resilience.Budget.t} rebuilt from the
    request's remaining deadline / ticks through the {!Shard_run} job,
    and never lets an exception escape — failures become [Refused]. *)

val dispatch :
  t -> Xk_rpc.Frame.kind -> string -> (Xk_rpc.Frame.kind * string) option
(** The frame-level handler for {!Xk_rpc.Server.run}: [Ping] answers
    [Pong], [Query] decodes and runs {!handle_query} (undecodable
    payloads answer [Refused] with the typed frame error's message), an
    armed chaos kill returns [None] (abrupt close).  Unexpected kinds
    answer [Refused]. *)

val serve : ?host:string -> port:int -> t -> (Xk_rpc.Server.t, string) result
(** Bind a listener for this server ([port = 0] picks an ephemeral
    one).  The caller drives it: [Xk_rpc.Server.run listener
    ~handler:(dispatch t)], and [Xk_rpc.Server.stop] from another
    domain to shut down. *)
