(* A fixed-size domain pool over one Mutex/Condition-guarded MPMC queue.

   Workers loop: wait for the queue to be non-empty (or the pool to be
   closed), pop one job with the lock held, run it with the lock
   released.  Shutdown flips [closed] and broadcasts; workers keep
   draining the queue until it is empty, so every job submitted before
   shutdown runs exactly once. *)

type job = unit -> unit

type t = {
  lock : Mutex.t;
  has_work : Condition.t;
  jobs : job Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array; (* [||] once joined *)
}

let size t = Array.length t.workers

let worker pool () =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.jobs && not pool.closed do
      Condition.wait pool.has_work pool.lock
    done;
    if Queue.is_empty pool.jobs then Mutex.unlock pool.lock (* closed: exit *)
    else begin
      let job = Queue.pop pool.jobs in
      Mutex.unlock pool.lock;
      (try job () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let n =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Domain_pool.create: domains < 1";
        d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    {
      lock = Mutex.create ();
      has_work = Condition.create ();
      jobs = Queue.create ();
      closed = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init n (fun _ -> Domain.spawn (worker pool));
  pool

let submit t job =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Domain_pool.submit: pool is shut down"
  end;
  Queue.push job t.jobs;
  Condition.signal t.has_work;
  Mutex.unlock t.lock

(* Futures: a one-shot mailbox with its own lock, filled by the worker
   and emptied by any number of awaiters. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

let async t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  submit t (fun () ->
      let outcome =
        match f () with
        | v -> Done v
        | exception e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock fut.fm;
      fut.state <- outcome;
      Condition.broadcast fut.fc;
      Mutex.unlock fut.fm);
  fut

let await fut =
  Mutex.lock fut.fm;
  let rec settled () =
    match fut.state with
    | Pending ->
        Condition.wait fut.fc fut.fm;
        settled ()
    | s -> s
  in
  let s = settled () in
  Mutex.unlock fut.fm;
  match s with
  | Done v -> Ok v
  | Failed (e, bt) -> Error (e, bt)
  | Pending -> assert false

let await_exn fut =
  match await fut with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let map_array t f xs =
  let futs = Array.map (fun x -> async t (fun () -> f x)) xs in
  Array.map await_exn futs

let shutdown t =
  Mutex.lock t.lock;
  let workers = t.workers in
  t.closed <- true;
  t.workers <- [||];
  Condition.broadcast t.has_work;
  Mutex.unlock t.lock;
  Array.iter Domain.join workers
