(* The pool now lives in [Xk_util] so the RPC server can reuse it
   (xk_rpc cannot depend on xk_exec); this alias keeps every existing
   [Xk_exec.Domain_pool] reference and its type equalities intact. *)
include Xk_util.Domain_pool
