(** Fleet supervision for [serve-shard] processes: keep every replica of
    a replicated shard set running, restart crashers with jittered
    backoff, quarantine persistent flappers, and run the scrub/repair
    cycle on a cadence.

    Each supervised replica moves through [Starting -> Up (unconfirmed)
    -> Up (confirmed)] as it spawns and first answers a ping; a process
    exit, a ping failure after confirmation, or an exhausted start grace
    counts one consecutive failure and schedules a respawn after a
    decorrelated-jitter delay ([Retry.Jitter] — replicas that died
    together do not restart in lockstep).  A replica whose consecutive
    failures exceed the flap cap is [Quarantined]: the supervisor stops
    restarting it and reports it, instead of hot-looping on a persistent
    crasher.  A healthy cycle resets the count, so only genuine flapping
    accumulates.

    The process table ({!procs}) and clock are injected: tests drive
    whole kill-then-restart and flap drills with a fake table and a
    stepped clock; the CLI ([xkq supervise]) binds
    [Unix.create_process] / [waitpid] / [kill] and the RPC ping.  The
    optional heal closure (wired to [Xk_index.Repair] by the CLI) runs
    every [heal_every] cycles, closing the scrub/repair loop on the
    supervision cadence. *)

type spec = {
  sv_shard : int;
  sv_replica : int;
  sv_host : string;
  sv_port : int;
}

val spec_label : spec -> string
(** ["s<shard>r<replica>"]. *)

(** The injected process table.  [spawn] starts a server for a spec and
    returns its pid; [alive] asks whether a pid still runs; [kill]
    terminates one; [ping] asks whether the spec's endpoint answers. *)
type procs = {
  spawn : spec -> (int, string) result;
  alive : int -> bool;
  kill : int -> unit;
  ping : spec -> bool;
}

type config = {
  backoff_base_ms : float;  (** restart backoff floor *)
  backoff_cap_ms : float;  (** restart backoff ceiling *)
  flap_cap : int;  (** consecutive failures beyond which a replica is
                       quarantined (must be >= 1) *)
  start_grace_ms : float;  (** how long a fresh spawn may stay
                               ping-unready before it counts as failed *)
  heal_every : int;  (** run the heal closure every N cycles; 0 never *)
}

val default_config : config
(** base 200 ms, cap 5 s, flap cap 5, start grace 30 s, heal every
    cycle. *)

type replica_state =
  | Starting
  | Up of { pid : int; confirmed : bool }
  | Backoff of { until_ms : float; failures : int }
  | Quarantined of { failures : int }

type heal_report = {
  h_clean : int;
  h_damaged : int;
  h_missing : int;
  h_repaired : int;
  h_unrepairable : int;
}

type event =
  | Spawned of { spec : spec; pid : int }
  | Died of { spec : spec; reason : string }
  | Backoff_scheduled of { spec : spec; delay_ms : float; failures : int }
  | Quarantine of { spec : spec; failures : int }
  | Heal_ran of heal_report
  | Heal_failed of string

type t

val create :
  ?config:config ->
  ?clock:(unit -> float) ->
  ?seed:int ->
  ?on_event:(event -> unit) ->
  ?heal:(unit -> heal_report) ->
  procs:procs ->
  spec list ->
  t
(** A supervisor over the given replicas (all [Starting]; nothing runs
    until the first {!cycle}).  [clock] is milliseconds (defaults to
    wall time); [seed] makes the restart jitter deterministic.
    [on_event] observes every lifecycle event — it runs on the
    supervision loop and must stay non-blocking (enforced by the
    [no-blocking-in-callback] lint rule).  Raises [Invalid_argument] on
    an empty spec list or [flap_cap < 1]. *)

val cycle : t -> unit
(** One supervision pass: spawn [Starting] replicas, check every [Up]
    pid (liveness, then ping), respawn expired [Backoff] entries, and
    run the heal closure when the cadence says so. *)

val run :
  ?cycles:int ->
  ?interval_ms:float ->
  ?sleep:(float -> unit) ->
  ?on_cycle:(t -> unit) ->
  t ->
  unit
(** {!cycle} every [interval_ms] (default 500) until [cycles] passes
    have run (default: until {!stop}).  [on_cycle] observes each pass
    (the CLI prints the status line from it). *)

val stop : t -> unit
(** Ask {!run} to end after the current pass; safe from any domain
    (signal handlers flag it). *)

val stopped : t -> bool

val shutdown : t -> unit
(** {!stop}, then kill every running child. *)

type fleet = {
  up : int;  (** confirmed-healthy replicas *)
  starting : int;  (** spawned but not yet ping-confirmed *)
  backing_off : int;
  quarantined : int;
  restarts : int;  (** respawns beyond each replica's first spawn *)
  cycles : int;
}

val fleet : t -> fleet
val states : t -> (spec * replica_state) array

val healthy : t -> bool
(** Every replica [Up] and confirmed. *)

val status_line : t -> string
(** The one-line fleet summary, including the last heal report. *)
