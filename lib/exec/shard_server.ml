(* One shard replica behind the RPC frame protocol.  The query path is
   the same [Shard_run] job the in-process transport runs, under a
   budget rebuilt from the request frame — so remote answers are
   bit-identical to local ones, stragglers included. *)

type t = {
  sharding : Xk_index.Sharding.t;
  engine : Xk_core.Engine.t;
  shard : int;
  replica : int;
}

let create ~sharding ~shard ~replica =
  if shard < 0 || shard >= Xk_index.Sharding.count sharding then
    Xk_util.Err.invalid "Shard_server.create: shard out of range";
  {
    sharding;
    engine = Xk_core.Engine.of_index (Xk_index.Sharding.index sharding shard);
    shard;
    replica;
  }

(* The budget is rebuilt from what the caller had left at send time:
   the remote run works against the caller's deadline, not a fresh
   one, so deadline-driven degradation is preserved across the hop. *)
let handle_query t (q : Xk_rpc.Wire.query) : Xk_rpc.Wire.reply =
  if q.q_shard <> t.shard then
    Refused
      (Printf.sprintf "this server serves shard %d, not %d" t.shard q.q_shard)
  else
    let budget =
      if q.q_deadline_ms = None && q.q_ticks = None then
        Xk_resilience.Budget.unlimited
      else
        Xk_resilience.Budget.create ?deadline_ms:q.q_deadline_ms
          ?ticks:q.q_ticks ()
    in
    let req : Xk_core.Engine.request =
      {
        req_words = q.q_words;
        req_semantics = q.q_semantics;
        req_mode = q.q_mode;
        req_deadline_ms = q.q_deadline_ms;
      }
    in
    let words = Shard_run.canonical_words q.q_words in
    match
      Shard_run.run ~sharding:t.sharding ~engine:t.engine ~shard:t.shard
        ~budget ~words req
    with
    | r ->
        Served
          {
            s_summary = r.sr_summary;
            s_outcome = r.sr_outcome;
            s_bound = r.sr_bound;
          }
    | exception (Xk_resilience.Chaos.Killed _ as e) -> raise e
    | exception e -> Refused (Printexc.to_string e)

let dispatch t (kind : Xk_rpc.Frame.kind) payload =
  match kind with
  | Ping -> Some (Xk_rpc.Frame.Pong, "")
  | Query -> (
      match
        (* An armed kill drops the connection before any work — on the
           wire this is the process dying mid-request. *)
        Xk_resilience.Chaos.on_attempt ~shard:t.shard ~replica:t.replica;
        match Xk_rpc.Wire.decode_query payload with
        | Error e -> Xk_rpc.Wire.Refused (Xk_rpc.Frame.error_message e)
        | Ok q -> handle_query t q
      with
      | reply -> Some (Xk_rpc.Frame.Reply, Xk_rpc.Wire.encode_reply reply)
      | exception Xk_resilience.Chaos.Killed _ -> None)
  | Pong | Reply ->
      Some
        ( Xk_rpc.Frame.Reply,
          Xk_rpc.Wire.encode_reply (Refused "unexpected frame kind") )

let serve ?host ~port _t = Xk_rpc.Server.create ?host ~port ()
