(* Scatter/gather over a sharded index, served by replicas.

   Per-shard scoring uses corpus-global statistics (Sharding builds the
   shards that way), and the engine orders a query's lists by term string,
   so every per-shard hit carries the exact float score the unsharded
   engine would compute.  That makes the gather a pure merge problem:

   - deep hits (below the root) concatenate across shards;
   - the root is re-derived from per-shard root summaries: per keyword
     the global best damped witness is the max of the shard maxima, and
     summing those in canonical term order reproduces the unsharded root
     score bit for bit;
   - for top-K, per-shard upper bounds decide how much of the merge is
     confirmed (see the interface).

   Replication: each shard is served by N interchangeable replicas
   (engines over the same shard index), each with its own health window
   and circuit breaker.  A shard job routes to the healthiest admitted
   replica, optionally hedges a straggling attempt, fails over to the
   next replica on any attempt failure, and declares the shard
   unreachable only when every replica has been exhausted — at which
   point the gather degrades coverage instead of failing the query:
   the missing shard's upper bound is +inf (nothing can be confirmed
   against the full corpus), but the confirmed prefix over the
   reachable shards is still sound for the reachable data.

   Transports: a replica is either an in-process engine or a remote
   shard server (Xk_rpc endpoint).  Both run the same Shard_run job —
   the server re-executes it under a budget rebuilt from the request
   frame — so routing, hedging, failover and gathering are transport
   blind, and remote answers are bit-identical to local ones. *)

type shard_result = Shard_run.result = {
  sr_summary : Xk_index.Sharding.root_summary option;
  sr_outcome : Xk_core.Engine.run_outcome;
  sr_bound : float;
}

type shard_status =
  | Served of shard_result
  | Unreachable of { attempts : int }
      (* every replica of the shard failed; [attempts] were made *)

type transport =
  | Engine of Xk_core.Engine.t
  | Endpoint of { host : string; port : int }

type replica = {
  rep_transport : transport;
  rep_health : Xk_resilience.Health.t;
  rep_breaker : Xk_resilience.Circuit_breaker.t;
}

type stats = {
  shards : int;
  replicas : int;
  domains : int;
  batches : int;
  queries : int;
  completed : int;
  partials : int;
  degraded : int;
  timeouts : int;
  rejected : int;
  failed : int;
  failovers : int;
  hedges : int;
  hedge_wins : int;
  max_queue : int option;
  cache : Xk_index.Shard_cache.stats;
}

type t = {
  sharding : Xk_index.Sharding.t;
  reps : replica array array; (* [shard].(replica) *)
  pres : Xk_core.Engine.t Lazy.t array; (* presentation engine per shard *)
  pool : Domain_pool.t;
  max_queue : int option;
  hedge_delay_ms : float option;
  rpc_timeout_ms : float;
  clock : unit -> float;
  in_flight : int Atomic.t;
  batches : int Atomic.t;
  queries : int Atomic.t;
  completed : int Atomic.t;
  partials : int Atomic.t;
  degraded : int Atomic.t;
  timeouts : int Atomic.t;
  rejected : int Atomic.t;
  failed : int Atomic.t;
  failovers : int Atomic.t;
  hedges : int Atomic.t;
  hedge_wins : int Atomic.t;
}

let default_clock () = Unix.gettimeofday () *. 1000.0

let create ?domains ?max_queue ?(replicas = 1) ?breaker
    ?(clock = default_clock) ?hedge_delay_ms ?endpoints
    ?(rpc_timeout_ms = 5000.) sharding =
  (match max_queue with
  | Some m when m < 1 -> Xk_util.Err.invalid "Shard_exec.create: max_queue < 1"
  | _ -> ());
  if replicas < 1 then Xk_util.Err.invalid "Shard_exec.create: replicas < 1";
  (match hedge_delay_ms with
  | Some d when d < 0. ->
      Xk_util.Err.invalid "Shard_exec.create: hedge_delay_ms < 0"
  | _ -> ());
  let shards = Xk_index.Sharding.count sharding in
  (* With endpoints, the fleet shape comes from the manifest: one remote
     replica per recorded (host, port), uniform across shards. *)
  let replicas, transport_for =
    match endpoints with
    | None ->
        ( replicas,
          fun s _ ->
            Engine (Xk_core.Engine.of_index (Xk_index.Sharding.index sharding s))
        )
    | Some (e : (string * int) array array) ->
        if
          Array.length e <> shards || shards = 0
          || Array.length e.(0) < 1
          || Array.exists (fun row -> Array.length row <> Array.length e.(0)) e
        then
          Xk_util.Err.invalid
            "Shard_exec.create: endpoints shape must be shards x replicas";
        ( Array.length e.(0),
          fun s r ->
            let host, port = e.(s).(r) in
            Endpoint { host; port } )
  in
  {
    sharding;
    reps =
      Array.init shards (fun s ->
          Array.init replicas (fun r ->
              {
                rep_transport = transport_for s r;
                rep_health = Xk_resilience.Health.create ();
                rep_breaker =
                  Xk_resilience.Circuit_breaker.create ?config:breaker ~clock ();
              }));
    pres =
      Array.init shards (fun s ->
          lazy (Xk_core.Engine.of_index (Xk_index.Sharding.index sharding s)));
    pool = Domain_pool.create ?domains ();
    max_queue;
    hedge_delay_ms;
    rpc_timeout_ms;
    clock;
    in_flight = Atomic.make 0;
    batches = Atomic.make 0;
    queries = Atomic.make 0;
    completed = Atomic.make 0;
    partials = Atomic.make 0;
    degraded = Atomic.make 0;
    timeouts = Atomic.make 0;
    rejected = Atomic.make 0;
    failed = Atomic.make 0;
    failovers = Atomic.make 0;
    hedges = Atomic.make 0;
    hedge_wins = Atomic.make 0;
  }

let sharding t = t.sharding

(* Presentation engines are built lazily from the locally loaded index:
   with a remote transport, replica slots hold endpoints, not engines. *)
let engine t s = Lazy.force t.pres.(s)
let shard_count t = Array.length t.reps
let replica_count t = Array.length t.reps.(0)

let remote t =
  Array.exists
    (Array.exists (fun r ->
         match r.rep_transport with Endpoint _ -> true | Engine _ -> false))
    t.reps

let domains t = Domain_pool.size t.pool

let replica_health t ~shard ~replica =
  Xk_resilience.Health.snapshot t.reps.(shard).(replica).rep_health

let breaker_state t ~shard ~replica =
  Xk_resilience.Circuit_breaker.state t.reps.(shard).(replica).rep_breaker

let canonical_words = Shard_run.canonical_words
let is_anytime = Shard_run.is_anytime

let admit t =
  let n = Atomic.fetch_and_add t.in_flight 1 in
  match t.max_queue with
  | Some m when n >= m ->
      Atomic.decr t.in_flight;
      false
  | _ -> true

(* --- The per-shard job ------------------------------------------------ *)

(* One attempt over the wire: the connection drill runs after the
   attempt hooks, the remaining budget travels in the request frame, and
   any transport or protocol failure surfaces as [Client.Rpc_failed] —
   which the failover loop treats like any other replica exception. *)
let remote_attempt t ~host ~port ~shard ~ri ~budget
    (req : Xk_core.Engine.request) =
  Xk_resilience.Chaos.on_connect ~shard ~replica:ri;
  let q : Xk_rpc.Wire.query =
    {
      q_shard = shard;
      q_words = req.req_words;
      q_semantics = req.req_semantics;
      q_mode = req.req_mode;
      q_deadline_ms = Xk_resilience.Budget.remaining_ms budget;
      q_ticks = Xk_resilience.Budget.ticks_left budget;
    }
  in
  let s = Xk_rpc.Client.query ~timeout_ms:t.rpc_timeout_ms ~host ~port q in
  {
    sr_summary = s.Xk_rpc.Wire.s_summary;
    sr_outcome = s.s_outcome;
    sr_bound = s.s_bound;
  }

(* One attempt on one replica: chaos and fault hooks first, then the
   engine run (in-process or over the wire); health and breaker record
   the outcome either way.  A budget-bounded run that merely times out
   still {e served} — only an exception is a replica failure. *)
let attempt_replica t ~shard ~ri ~budget ~words req =
  let rep = t.reps.(shard).(ri) in
  let start = t.clock () in
  match
    Xk_resilience.Chaos.on_attempt ~shard ~replica:ri;
    Xk_resilience.Fault_injection.on_query ();
    match rep.rep_transport with
    | Engine engine ->
        Shard_run.run ~sharding:t.sharding ~engine ~shard ~budget ~words req
    | Endpoint { host; port } ->
        remote_attempt t ~host ~port ~shard ~ri ~budget req
  with
  | r ->
      Xk_resilience.Health.record rep.rep_health ~ok:true
        ~latency_ms:(t.clock () -. start);
      Xk_resilience.Circuit_breaker.record_success rep.rep_breaker;
      r
  | exception e ->
      Xk_resilience.Health.record rep.rep_health ~ok:false
        ~latency_ms:(t.clock () -. start);
      Xk_resilience.Circuit_breaker.record_failure rep.rep_breaker;
      raise e

(* Replica routing order: admitted replicas first (healthiest first),
   then — as a last resort — the replicas their breakers refused, so a
   shard with every breaker open still gets one round of attempts
   rather than an instant Unreachable. *)
let route t shard =
  let reps = t.reps.(shard) in
  let scored =
    Array.to_list
      (Array.mapi
         (fun i r ->
           ( i,
             Xk_resilience.Circuit_breaker.allow r.rep_breaker,
             Xk_resilience.Health.score r.rep_health ))
         reps)
  in
  let by_score l =
    List.stable_sort (fun (_, _, a) (_, _, b) -> Float.compare b a) l
    |> List.map (fun (i, _, _) -> i)
  in
  let admitted, refused = List.partition (fun (_, ok, _) -> ok) scored in
  by_score admitted @ by_score refused

(* Serve one shard: route, hedge the first attempt when configured,
   fail over across the remaining replicas, and report Unreachable only
   when every replica failed. *)
let serve_shard t ~shard ~make_budget ~words req =
  let attempt ri budget = attempt_replica t ~shard ~ri ~budget ~words req in
  let hedged_attempt ri ~delay_ms alt =
    let o =
      Xk_resilience.Hedge.run ~clock:t.clock ~make_budget
        ~spawn:(Domain_pool.submit t.pool)
        ~delay_ms
        ~primary:(fun b -> attempt ri b)
        ~hedge:(fun b -> attempt alt b)
        ()
    in
    if o.fired then begin
      Atomic.incr t.hedges;
      if o.winner = Hedge then Atomic.incr t.hedge_wins
    end;
    o.value
  in
  let rec failover attempts = function
    | [] -> Unreachable { attempts }
    | ri :: rest -> (
        if attempts > 0 then Atomic.incr t.failovers;
        match
          match (t.hedge_delay_ms, rest) with
          | Some delay_ms, alt :: _ when attempts = 0 ->
              hedged_attempt ri ~delay_ms alt
          | _ -> attempt ri (make_budget ())
        with
        | r -> Served r
        | exception _ -> failover (attempts + 1) rest)
  in
  failover 0 (route t shard)

(* --- Root reconstruction ---------------------------------------------- *)

let root_hit (req : Xk_core.Engine.request) summaries nw =
  if nw = 0 || Array.length summaries = 0 then None
  else
    let max_over f i =
      Array.fold_left
        (fun m (s : Xk_index.Sharding.root_summary) -> Float.max m (f s).(i))
        neg_infinity summaries
    in
    let witness =
      match req.req_semantics with
      | Xk_core.Engine.Elca ->
          (* ELCA: occurrences inside keyword-complete subtrees are claimed
             by descendants; the root stands on the free witnesses. *)
          Some (fun s -> s.Xk_index.Sharding.rs_best_free)
      | Xk_core.Engine.Slca ->
          (* SLCA: any keyword-complete subtree hides the root entirely. *)
          if
            Array.exists
              (fun (s : Xk_index.Sharding.root_summary) -> s.rs_full_subtree)
              summaries
          then None
          else Some (fun s -> s.Xk_index.Sharding.rs_best_all)
    in
    match witness with
    | None -> None
    | Some f ->
        let score = ref 0.0 and complete = ref true in
        for i = 0 to nw - 1 do
          let best = max_over f i in
          if best = neg_infinity then complete := false
          else score := !score +. best
        done;
        if !complete then Some { Xk_baselines.Hit.node = 0; score = !score }
        else None

(* --- Gather ----------------------------------------------------------- *)

(* Fraction of top-level subtrees living on reachable shards. *)
let coverage_of t missing =
  let assignment = Xk_index.Sharding.assignment t.sharding in
  let total = Array.length assignment in
  if total = 0 then 0.0
  else
    let reachable =
      Array.fold_left
        (fun n s -> if List.mem s missing then n else n + 1)
        0 assignment
    in
    float_of_int reachable /. float_of_int total

(* Gather with lost shards: the full-corpus confirmation bound is +inf
   (a missing shard could hold arbitrarily good hits), so the outcome
   can never be [Ok] — instead the confirmed prefix is recomputed
   against the {e reachable} shards' bounds only, which is exactly the
   top-K guarantee restricted to the reachable data.  The root hit is
   dropped: its exact global score needs every shard's summary. *)
let gather_degraded t (req : Xk_core.Engine.request) ~missing results :
    Query_service.outcome =
  let deep =
    Array.to_list results
    |> List.concat_map (fun r ->
           match r.sr_outcome with Done hs | Partial hs -> hs | Timed_out -> [])
  in
  let merged = List.sort Xk_baselines.Hit.compare_score_desc deep in
  let all_done =
    Array.for_all
      (fun r -> match r.sr_outcome with Done _ -> true | _ -> false)
      results
  in
  let coverage = coverage_of t missing in
  let finish hits =
    Query_service.Degraded { hits; missing_shards = missing; coverage }
  in
  match req.req_mode with
  | Complete _ -> if all_done then finish merged else Query_service.Timeout
  | Topk (_, k) ->
      if all_done then finish (Xk_baselines.Hit.top_k k merged)
      else if not (is_anytime req) then Query_service.Timeout
      else begin
        let bound =
          Array.fold_left (fun u r -> Float.max u r.sr_bound) neg_infinity
            results
        in
        let confirmed =
          List.filteri (fun i _ -> i < k) merged
          |> List.filter (fun (h : Xk_baselines.Hit.t) -> h.score > bound)
        in
        if confirmed <> [] then finish confirmed else Query_service.Timeout
      end

let gather t (req : Xk_core.Engine.request) nw
    (statuses : (shard_status, exn * Printexc.raw_backtrace) result array) :
    Query_service.outcome =
  let failure =
    Array.to_seq statuses
    |> Seq.fold_lefti
         (fun acc shard r ->
           match (acc, r) with
           | Some _, _ | _, Ok _ -> acc
           | None, Error (e, bt) ->
               Some
                 (Query_service.Failed
                    {
                      message =
                        Printf.sprintf "shard %d: %s" shard
                          (Printexc.to_string e);
                      backtrace = Printexc.raw_backtrace_to_string bt;
                    }))
         None
  in
  match failure with
  | Some f -> f
  | None -> (
      let statuses =
        Array.map
          (function
            | Ok s -> s
            | Error _ ->
                Xk_util.Err.unreachable
                  "Shard_exec.gather: failure already handled above")
          statuses
      in
      let missing =
        Array.to_list statuses
        |> List.mapi (fun shard s ->
               match s with Unreachable _ -> Some shard | Served _ -> None)
        |> List.filter_map Fun.id
      in
      let results =
        Array.to_list statuses
        |> List.filter_map (function Served r -> Some r | Unreachable _ -> None)
        |> Array.of_list
      in
      if missing <> [] then gather_degraded t req ~missing results
      else
        let summaries =
          if Array.for_all (fun r -> r.sr_summary <> None) results then
            Some
              (Array.map
                 (fun r ->
                   match r.sr_summary with
                   | Some s -> s
                   | None ->
                       Xk_util.Err.unreachable
                         "Shard_exec.gather: summary checked by for_all above")
                 results)
          else None
        in
        let root =
          match summaries with Some ss -> root_hit req ss nw | None -> None
        in
        let deep =
          Array.to_list results
          |> List.concat_map (fun r ->
                 match r.sr_outcome with
                 | Done hs | Partial hs -> hs
                 | Timed_out -> [])
        in
        let merged =
          List.sort Xk_baselines.Hit.compare_score_desc
            (match root with Some h -> h :: deep | None -> deep)
        in
        let all_done =
          Array.for_all
            (fun r -> match r.sr_outcome with Done _ -> true | _ -> false)
            results
        in
        match req.req_mode with
        | Complete _ ->
            (* A complete result set has no meaningful prefix. *)
            if all_done then Query_service.Ok merged else Query_service.Timeout
        | Topk (_, k) ->
            if all_done then Query_service.Ok (Xk_baselines.Hit.top_k k merged)
            else if not (is_anytime req) then Query_service.Timeout
            else begin
              (* Confirm merged candidates strictly above every live bound:
                 a straggler could still produce a hit scoring exactly a live
                 bound, and the (score, node) tiebreak could place it first. *)
              let bound =
                Array.fold_left (fun u r -> Float.max u r.sr_bound) neg_infinity
                  results
              in
              let confirmed =
                List.filteri (fun i _ -> i < k) merged
                |> List.filter (fun (h : Xk_baselines.Hit.t) -> h.score > bound)
              in
              if List.length confirmed = k then Query_service.Ok confirmed
              else if confirmed <> [] then Query_service.Partial confirmed
              else Query_service.Timeout
            end)

(* --- Dispatch --------------------------------------------------------- *)

(* Submit one request's shard jobs; [finish] gathers (and settles the
   admission slot exactly once, when the last shard job completes). *)
let submit t ?deadline_ms ?budget_for (req : Xk_core.Engine.request) =
  Atomic.incr t.queries;
  if not (admit t) then begin
    Atomic.incr t.rejected;
    fun () -> Query_service.Rejected
  end
  else begin
    let words = canonical_words req.req_words in
    let nw = List.length words in
    (* A fresh budget per replica attempt: deadlines are anchored at
       admission (queueing and earlier attempts consume them), tick
       budgets from [budget_for] restart per attempt. *)
    let budget_thunk shard =
      match budget_for with
      | Some f -> fun () -> f shard
      | None -> (
          match (req.req_deadline_ms, deadline_ms) with
          | Some d, _ | None, Some d ->
              let deadline_abs = t.clock () +. d in
              fun () ->
                Xk_resilience.Budget.create
                  ~deadline_ms:(Float.max 0. (deadline_abs -. t.clock ()))
                  ()
          | None, None -> fun () -> Xk_resilience.Budget.unlimited)
    in
    let remaining = Atomic.make (Array.length t.reps) in
    let futures =
      Array.init (Array.length t.reps) (fun shard ->
          let make_budget = budget_thunk shard in
          Domain_pool.async t.pool (fun () ->
              Fun.protect
                ~finally:(fun () ->
                  if Atomic.fetch_and_add remaining (-1) = 1 then
                    Atomic.decr t.in_flight)
                (fun () -> serve_shard t ~shard ~make_budget ~words req)))
    in
    fun () ->
      let statuses = Array.map Domain_pool.await futures in
      let outcome = gather t req nw statuses in
      (match outcome with
      | Query_service.Ok _ -> Atomic.incr t.completed
      | Query_service.Partial _ -> Atomic.incr t.partials
      | Query_service.Degraded _ -> Atomic.incr t.degraded
      | Query_service.Timeout -> Atomic.incr t.timeouts
      | Query_service.Rejected -> Atomic.incr t.rejected
      | Query_service.Failed _ -> Atomic.incr t.failed);
      outcome
  end

let exec ?deadline_ms ?budget_for t req =
  Atomic.incr t.batches;
  (submit t ?deadline_ms ?budget_for req) ()

let exec_batch ?deadline_ms t reqs =
  Atomic.incr t.batches;
  (* Fan everything out before the first gather so shard jobs of distinct
     requests pipeline across the pool. *)
  let finishers = List.map (fun r -> submit t ?deadline_ms r) reqs in
  List.map (fun finish -> finish ()) finishers

let stats t =
  {
    shards = shard_count t;
    replicas = replica_count t;
    domains = domains t;
    batches = Atomic.get t.batches;
    queries = Atomic.get t.queries;
    completed = Atomic.get t.completed;
    partials = Atomic.get t.partials;
    degraded = Atomic.get t.degraded;
    timeouts = Atomic.get t.timeouts;
    rejected = Atomic.get t.rejected;
    failed = Atomic.get t.failed;
    failovers = Atomic.get t.failovers;
    hedges = Atomic.get t.hedges;
    hedge_wins = Atomic.get t.hedge_wins;
    max_queue = t.max_queue;
    cache = Xk_index.Sharding.cache_stats t.sharding;
  }

let shutdown t = Domain_pool.shutdown t.pool

(* --- Presentation ----------------------------------------------------- *)

let locate t (h : Xk_baselines.Hit.t) =
  let shard, local = Xk_index.Sharding.locate t.sharding h.node in
  (shard, { h with node = local })

let element_of_hit t h =
  let shard, local = locate t h in
  Xk_core.Engine.element_of_hit (engine t shard) local

let snippet ?width t words h =
  let shard, local = locate t h in
  Xk_core.Engine.snippet ?width (engine t shard) words local

let pp_hit t fmt h =
  let shard, local = locate t h in
  Xk_core.Engine.pp_hit (engine t shard) fmt local
