(* Scatter/gather over a sharded index.

   Per-shard scoring uses corpus-global statistics (Sharding builds the
   shards that way), and the engine orders a query's lists by term string,
   so every per-shard hit carries the exact float score the unsharded
   engine would compute.  That makes the gather a pure merge problem:

   - deep hits (below the root) concatenate across shards;
   - the root is re-derived from per-shard root summaries: per keyword
     the global best damped witness is the max of the shard maxima, and
     summing those in canonical term order reproduces the unsharded root
     score bit for bit;
   - for top-K, per-shard upper bounds decide how much of the merge is
     confirmed (see the interface). *)

type shard_result = {
  sr_summary : Xk_index.Sharding.root_summary option;
      (* None: the budget expired before the summary finished *)
  sr_outcome : Xk_core.Engine.run_outcome;
      (* hits in global numbering, shard-local root hits dropped *)
  sr_bound : float;
      (* upper bound on the score of anything the shard did not confirm:
         [neg_infinity] once a shard can no longer place a new hit in the
         global top-K, [+inf] for a shard that reported nothing *)
}

type stats = {
  shards : int;
  domains : int;
  batches : int;
  queries : int;
  completed : int;
  partials : int;
  timeouts : int;
  rejected : int;
  failed : int;
  max_queue : int option;
  cache : Xk_index.Shard_cache.stats;
}

type t = {
  sharding : Xk_index.Sharding.t;
  engines : Xk_core.Engine.t array;
  pool : Domain_pool.t;
  max_queue : int option;
  in_flight : int Atomic.t;
  batches : int Atomic.t;
  queries : int Atomic.t;
  completed : int Atomic.t;
  partials : int Atomic.t;
  timeouts : int Atomic.t;
  rejected : int Atomic.t;
  failed : int Atomic.t;
}

let create ?domains ?max_queue sharding =
  (match max_queue with
  | Some m when m < 1 -> Xk_util.Err.invalid "Shard_exec.create: max_queue < 1"
  | _ -> ());
  {
    sharding;
    engines =
      Array.init (Xk_index.Sharding.count sharding) (fun s ->
          Xk_core.Engine.of_index (Xk_index.Sharding.index sharding s));
    pool = Domain_pool.create ?domains ();
    max_queue;
    in_flight = Atomic.make 0;
    batches = Atomic.make 0;
    queries = Atomic.make 0;
    completed = Atomic.make 0;
    partials = Atomic.make 0;
    timeouts = Atomic.make 0;
    rejected = Atomic.make 0;
    failed = Atomic.make 0;
  }

let sharding t = t.sharding
let engine t s = t.engines.(s)
let shard_count t = Array.length t.engines
let domains t = Domain_pool.size t.pool

(* The keyword positions of every root summary, and the summation order of
   the root score: canonical terms, exactly the engine's plan order. *)
let canonical_words words =
  List.sort_uniq String.compare (List.map String.lowercase_ascii words)

let admit t =
  let n = Atomic.fetch_and_add t.in_flight 1 in
  match t.max_queue with
  | Some m when n >= m ->
      Atomic.decr t.in_flight;
      false
  | _ -> true

(* --- The per-shard job ------------------------------------------------ *)

let is_anytime (r : Xk_core.Engine.request) =
  match r.req_mode with
  | Topk ((Topk_join | Hybrid), _) -> true
  | Topk ((Complete_then_sort | Rdil_baseline), _) | Complete _ -> false

let last_score hits =
  match List.rev hits with [] -> infinity | (h : Xk_baselines.Hit.t) :: _ -> h.score

let run_shard t ~shard ~budget ~words (req : Xk_core.Engine.request) =
  Xk_resilience.Fault_injection.on_query ();
  (* The summary runs first under the same budget: gathering needs it to
     reconstruct the root even when the query part only gets half-way. *)
  match Xk_index.Sharding.root_summary ~budget t.sharding ~shard words with
  | exception Xk_resilience.Budget.Expired ->
      {
        sr_summary = None;
        sr_outcome = (if is_anytime req then Partial [] else Timed_out);
        sr_bound = infinity;
      }
  | summary ->
      let req' : Xk_core.Engine.request =
        match req.req_mode with
        | Topk (alg, k) ->
            (* One extra slot: a shard-local root hit is dropped below, and
               the re-derived global root can displace one deep hit. *)
            { req with req_mode = Topk (alg, k + 1) }
        | Complete _ -> req
      in
      let out = Xk_core.Engine.run_request_outcome ~budget t.engines.(shard) req' in
      (* The bound reflects what the shard did NOT confirm, so it is taken
         before the root hit is dropped. *)
      let bound =
        match out with
        | Done hs ->
            (* Complete answer, or full local top-(K+1): anything unreturned
               is dominated by K returned hits of this very shard, so it
               cannot enter the global top-K. *)
            ignore hs;
            neg_infinity
        | Partial hs -> last_score hs
        | Timed_out -> infinity
      in
      let globalize hs =
        List.filter_map
          (fun (h : Xk_baselines.Hit.t) ->
            if h.node = 0 then None
            else
              Some
                { h with node = Xk_index.Sharding.to_global t.sharding ~shard h.node })
          hs
      in
      let out : Xk_core.Engine.run_outcome =
        match out with
        | Done hs -> Done (globalize hs)
        | Partial hs -> Partial (globalize hs)
        | Timed_out -> Timed_out
      in
      { sr_summary = Some summary; sr_outcome = out; sr_bound = bound }

(* --- Root reconstruction ---------------------------------------------- *)

let root_hit (req : Xk_core.Engine.request) summaries nw =
  if nw = 0 || Array.length summaries = 0 then None
  else
    let max_over f i =
      Array.fold_left
        (fun m (s : Xk_index.Sharding.root_summary) -> Float.max m (f s).(i))
        neg_infinity summaries
    in
    let witness =
      match req.req_semantics with
      | Xk_core.Engine.Elca ->
          (* ELCA: occurrences inside keyword-complete subtrees are claimed
             by descendants; the root stands on the free witnesses. *)
          Some (fun s -> s.Xk_index.Sharding.rs_best_free)
      | Xk_core.Engine.Slca ->
          (* SLCA: any keyword-complete subtree hides the root entirely. *)
          if
            Array.exists
              (fun (s : Xk_index.Sharding.root_summary) -> s.rs_full_subtree)
              summaries
          then None
          else Some (fun s -> s.Xk_index.Sharding.rs_best_all)
    in
    match witness with
    | None -> None
    | Some f ->
        let score = ref 0.0 and complete = ref true in
        for i = 0 to nw - 1 do
          let best = max_over f i in
          if best = neg_infinity then complete := false
          else score := !score +. best
        done;
        if !complete then Some { Xk_baselines.Hit.node = 0; score = !score }
        else None

(* --- Gather ----------------------------------------------------------- *)

let gather (req : Xk_core.Engine.request) nw
    (results : (shard_result, exn * Printexc.raw_backtrace) result array) :
    Query_service.outcome =
  let failure =
    Array.to_seq results
    |> Seq.fold_lefti
         (fun acc shard r ->
           match (acc, r) with
           | Some _, _ | _, Ok _ -> acc
           | None, Error (e, bt) ->
               Some
                 (Query_service.Failed
                    {
                      message =
                        Printf.sprintf "shard %d: %s" shard
                          (Printexc.to_string e);
                      backtrace = Printexc.raw_backtrace_to_string bt;
                    }))
         None
  in
  match failure with
  | Some f -> f
  | None ->
      let results =
        Array.map
          (function
            | Ok r -> r
            | Error _ ->
                Xk_util.Err.unreachable
                  "Shard_exec.gather: failure already handled above")
          results
      in
      let summaries =
        if Array.for_all (fun r -> r.sr_summary <> None) results then
          Some
            (Array.map
               (fun r ->
                 match r.sr_summary with
                 | Some s -> s
                 | None ->
                     Xk_util.Err.unreachable
                       "Shard_exec.gather: summary checked by for_all above")
               results)
        else None
      in
      let root =
        match summaries with Some ss -> root_hit req ss nw | None -> None
      in
      let deep =
        Array.to_list results
        |> List.concat_map (fun r ->
               match r.sr_outcome with Done hs | Partial hs -> hs | Timed_out -> [])
      in
      let merged =
        List.sort Xk_baselines.Hit.compare_score_desc
          (match root with Some h -> h :: deep | None -> deep)
      in
      let all_done =
        Array.for_all
          (fun r -> match r.sr_outcome with Done _ -> true | _ -> false)
          results
      in
      match req.req_mode with
      | Complete _ ->
          (* A complete result set has no meaningful prefix. *)
          if all_done then Query_service.Ok merged else Query_service.Timeout
      | Topk (_, k) ->
          if all_done then Query_service.Ok (Xk_baselines.Hit.top_k k merged)
          else if not (is_anytime req) then Query_service.Timeout
          else begin
            (* Confirm merged candidates strictly above every live bound:
               a straggler could still produce a hit scoring exactly a live
               bound, and the (score, node) tiebreak could place it first. *)
            let bound =
              Array.fold_left (fun u r -> Float.max u r.sr_bound) neg_infinity
                results
            in
            let confirmed =
              List.filteri (fun i _ -> i < k) merged
              |> List.filter (fun (h : Xk_baselines.Hit.t) -> h.score > bound)
            in
            if List.length confirmed = k then Query_service.Ok confirmed
            else if confirmed <> [] then Query_service.Partial confirmed
            else Query_service.Timeout
          end

(* --- Dispatch --------------------------------------------------------- *)

(* Submit one request's shard jobs; [finish] gathers (and settles the
   admission slot exactly once, when the last shard job completes). *)
let submit t ?deadline_ms ?budget_for (req : Xk_core.Engine.request) =
  Atomic.incr t.queries;
  if not (admit t) then begin
    Atomic.incr t.rejected;
    fun () -> Query_service.Rejected
  end
  else begin
    let words = canonical_words req.req_words in
    let nw = List.length words in
    let budget_of shard =
      match budget_for with
      | Some f -> f shard
      | None -> (
          match (req.req_deadline_ms, deadline_ms) with
          | Some d, _ | None, Some d ->
              Xk_resilience.Budget.create ~deadline_ms:d ()
          | None, None -> Xk_resilience.Budget.unlimited)
    in
    let remaining = Atomic.make (Array.length t.engines) in
    let futures =
      Array.init (Array.length t.engines) (fun shard ->
          let budget = budget_of shard in
          Domain_pool.async t.pool (fun () ->
              Fun.protect
                ~finally:(fun () ->
                  if Atomic.fetch_and_add remaining (-1) = 1 then
                    Atomic.decr t.in_flight)
                (fun () -> run_shard t ~shard ~budget ~words req)))
    in
    fun () ->
      let results = Array.map Domain_pool.await futures in
      let outcome = gather req nw results in
      (match outcome with
      | Query_service.Ok _ -> Atomic.incr t.completed
      | Query_service.Partial _ -> Atomic.incr t.partials
      | Query_service.Timeout -> Atomic.incr t.timeouts
      | Query_service.Rejected -> Atomic.incr t.rejected
      | Query_service.Failed _ -> Atomic.incr t.failed);
      outcome
  end

let exec ?deadline_ms ?budget_for t req =
  Atomic.incr t.batches;
  (submit t ?deadline_ms ?budget_for req) ()

let exec_batch ?deadline_ms t reqs =
  Atomic.incr t.batches;
  (* Fan everything out before the first gather so shard jobs of distinct
     requests pipeline across the pool. *)
  let finishers = List.map (fun r -> submit t ?deadline_ms r) reqs in
  List.map (fun finish -> finish ()) finishers

let stats t =
  {
    shards = shard_count t;
    domains = domains t;
    batches = Atomic.get t.batches;
    queries = Atomic.get t.queries;
    completed = Atomic.get t.completed;
    partials = Atomic.get t.partials;
    timeouts = Atomic.get t.timeouts;
    rejected = Atomic.get t.rejected;
    failed = Atomic.get t.failed;
    max_queue = t.max_queue;
    cache = Xk_index.Sharding.cache_stats t.sharding;
  }

let shutdown t = Domain_pool.shutdown t.pool

(* --- Presentation ----------------------------------------------------- *)

let locate t (h : Xk_baselines.Hit.t) =
  let shard, local = Xk_index.Sharding.locate t.sharding h.node in
  (shard, { h with node = local })

let element_of_hit t h =
  let shard, local = locate t h in
  Xk_core.Engine.element_of_hit t.engines.(shard) local

let snippet ?width t words h =
  let shard, local = locate t h in
  Xk_core.Engine.snippet ?width t.engines.(shard) words local

let pp_hit t fmt h =
  let shard, local = locate t h in
  Xk_core.Engine.pp_hit t.engines.(shard) fmt local
