(** Scatter/gather query execution over a sharded index.

    Each request fans out to one job per shard on a {!Domain_pool}; every
    shard runs the ordinary budget-aware engine over its self-contained
    index, and a gather step merges the per-shard results into exactly
    the unsharded engine's answer:

    - {e complete} (ELCA/SLCA): deep results live entirely inside one
      shard, so the merge concatenates them, reconstructs the root's
      membership and exact score from per-shard {!Xk_index.Sharding.root_summary}
      evidence, and sorts;
    - {e top-K}: each shard answers its local top [K+1] (one extra slot
      because shard-local root hits are discarded and the root is re-derived
      globally).  The gather keeps a global best-first merge plus a per-shard
      upper bound on what that shard could still contribute — a shard that
      answered in full can no longer place anything new in the global top-K,
      a partial shard is bounded by its last confirmed score, a timed-out
      shard by [+inf].  Merged candidates strictly above every live bound are
      confirmed; [K] confirmations yield [Ok] even with stragglers, otherwise
      the confirmed prefix degrades to [Partial] exactly like the single-index
      anytime engine.

    Outcomes reuse {!Query_service.outcome}; a failing shard (injected
    fault, corrupted state) surfaces as [Failed] naming the shard, never
    as a crash.  Admission control bounds in-flight {e requests} (not
    shard jobs), mirroring {!Query_service}. *)

type t

val create : ?domains:int -> ?max_queue:int -> Xk_index.Sharding.t -> t
(** Wrap a sharded index: one engine per shard, one shared pool.
    [domains] as in {!Domain_pool.create}; [max_queue] bounds admitted
    in-flight requests (raises [Invalid_argument] when [< 1]). *)

val sharding : t -> Xk_index.Sharding.t
val engine : t -> int -> Xk_core.Engine.t
val shard_count : t -> int
val domains : t -> int

val exec :
  ?deadline_ms:float ->
  ?budget_for:(int -> Xk_resilience.Budget.t) ->
  t ->
  Xk_core.Engine.request ->
  Query_service.outcome
(** Run one request over every shard and gather.  [deadline_ms] applies
    when the request carries none; each shard gets its own budget over
    the same wall-clock deadline.  [budget_for] overrides the budget per
    shard index — deterministic tick budgets for tests. *)

val exec_batch :
  ?deadline_ms:float ->
  t ->
  Xk_core.Engine.request list ->
  Query_service.outcome list
(** Fan every request of the batch out before the first gather, so shard
    jobs of different requests pipeline across the pool.  Outcomes in
    request order. *)

type stats = {
  shards : int;
  domains : int;
  batches : int;  (** [exec]/[exec_batch] calls so far *)
  queries : int;  (** requests received (admitted or not) *)
  completed : int;
  partials : int;
  timeouts : int;
  rejected : int;
  failed : int;
  max_queue : int option;
  cache : Xk_index.Shard_cache.stats;
      (** {!Xk_index.Sharding.cache_stats} aggregate over all shards *)
}

val stats : t -> stats

val shutdown : t -> unit

(** {1 Presentation}

    Hits gathered from shards carry {e global} node indices; these
    helpers route a hit back to its owning shard for display. *)

val locate : t -> Xk_baselines.Hit.t -> int * Xk_baselines.Hit.t
(** The owning shard and the hit re-expressed in its local numbering. *)

val element_of_hit : t -> Xk_baselines.Hit.t -> Xk_xml.Xml_tree.element option

val snippet :
  ?width:int ->
  t ->
  string list ->
  Xk_baselines.Hit.t ->
  (string * string) list

val pp_hit : t -> Format.formatter -> Xk_baselines.Hit.t -> unit
