(** Scatter/gather query execution over a sharded index, served by
    replicas with failover, circuit breakers, hedging, and graceful
    coverage degradation.

    Each request fans out to one job per shard on a {!Domain_pool};
    every shard runs the ordinary budget-aware engine over its
    self-contained index, and a gather step merges the per-shard results
    into exactly the unsharded engine's answer:

    - {e complete} (ELCA/SLCA): deep results live entirely inside one
      shard, so the merge concatenates them, reconstructs the root's
      membership and exact score from per-shard {!Xk_index.Sharding.root_summary}
      evidence, and sorts;
    - {e top-K}: each shard answers its local top [K+1] (one extra slot
      because shard-local root hits are discarded and the root is re-derived
      globally).  The gather keeps a global best-first merge plus a per-shard
      upper bound on what that shard could still contribute — a shard that
      answered in full can no longer place anything new in the global top-K,
      a partial shard is bounded by its last confirmed score, a timed-out
      shard by [+inf].  Merged candidates strictly above every live bound are
      confirmed; [K] confirmations yield [Ok] even with stragglers, otherwise
      the confirmed prefix degrades to [Partial] exactly like the single-index
      anytime engine.

    {2 Replicated serving}

    Each shard is served by [replicas] interchangeable engine instances,
    each with a rolling {!Xk_resilience.Health} window and a
    {!Xk_resilience.Circuit_breaker}.  A shard job routes to the
    healthiest replica its breaker admits; when [hedge_delay_ms] is set
    and a second replica exists, the first attempt is hedged
    ({!Xk_resilience.Hedge}) against the next-best replica.  Any attempt
    failure — a chaos kill, an injected fault, a genuine exception —
    records against that replica and fails over to the next one; a
    shard becomes unreachable only when every replica has failed.

    An unreachable shard no longer fails the query.  Its upper bound is
    pinned to [+inf] — no full-corpus top-K can be confirmed, so the
    outcome is never [Ok] — and the gather instead reports
    {!Query_service.outcome.Degraded}: the confirmed prefix computed
    against the {e reachable} shards' bounds (provably the top-K of the
    reachable data), the missing shard list, and the surviving coverage
    fraction.  The global root hit is dropped in degraded answers (its
    exact score needs every shard's summary).  [Failed] remains only
    for errors outside replica serving.  Admission control bounds
    in-flight {e requests} (not shard jobs), mirroring
    {!Query_service}.

    {2 Transports}

    A replica is either an in-process engine over the shard's index or
    a remote shard server ([xkq serve-shard]) addressed by an
    [endpoints] (host, port) grid — typically read back from the v3
    manifest ({!Xk_index.Shard_io.endpoints}).  Remote attempts send
    the request — with the budget's {e remaining} deadline and tick
    allowance — over the {!Xk_rpc} frame protocol; the server re-runs
    the identical {!Shard_run} job, so remote answers are bit-identical
    to local ones.  Connection failures, malformed frames and remote
    refusals raise inside the attempt like any replica fault: health
    and breaker record them, and the job fails over to the next
    replica.  When every replica of a shard is unreachable the query
    degrades exactly as above — the +inf bound rule is transport
    blind. *)

type t

val create :
  ?domains:int ->
  ?max_queue:int ->
  ?replicas:int ->
  ?breaker:Xk_resilience.Circuit_breaker.config ->
  ?clock:(unit -> float) ->
  ?hedge_delay_ms:float ->
  ?endpoints:(string * int) array array ->
  ?rpc_timeout_ms:float ->
  Xk_index.Sharding.t ->
  t
(** Wrap a sharded index: [replicas] (default 1) engines per shard, one
    shared pool.  [domains] as in {!Domain_pool.create}; [max_queue]
    bounds admitted in-flight requests; [breaker] configures every
    replica's circuit breaker; [clock] (ms, injectable for tests) feeds
    breakers, health latency, and deadline anchoring; [hedge_delay_ms]
    enables hedged attempts once a replica has been slower than this
    for a given shard job (absent: hedging off).

    [endpoints] switches every replica to the remote transport: slot
    [(s, r)] dials [endpoints.(s).(r)] instead of running an in-process
    engine, and the replica count comes from the grid's (uniform) row
    length, overriding [replicas].  [rpc_timeout_ms] (default 5000)
    bounds unbudgeted remote attempts so a wedged server fails over
    rather than hanging a shard job.  Raises [Invalid_argument] on
    [max_queue < 1], [replicas < 1], a negative hedge delay, or a
    mis-shaped endpoint grid. *)

val sharding : t -> Xk_index.Sharding.t
val engine : t -> int -> Xk_core.Engine.t
(** A presentation engine for the shard, built lazily from the locally
    loaded index (replica slots may be remote and hold no engine) —
    presentation helpers only. *)

val remote : t -> bool
(** Whether any replica uses the remote transport. *)

val shard_count : t -> int
val replica_count : t -> int

val domains : t -> int

val replica_health : t -> shard:int -> replica:int -> Xk_resilience.Health.snapshot
val breaker_state : t -> shard:int -> replica:int -> Xk_resilience.Circuit_breaker.state

val exec :
  ?deadline_ms:float ->
  ?budget_for:(int -> Xk_resilience.Budget.t) ->
  t ->
  Xk_core.Engine.request ->
  Query_service.outcome
(** Run one request over every shard and gather.  [deadline_ms] applies
    when the request carries none; the deadline is anchored at admission
    and shared by all of a shard's replica attempts (queueing and failed
    attempts consume it).  [budget_for] overrides the budget per shard
    index and is re-invoked for {e each} replica attempt — deterministic
    tick budgets for tests. *)

val exec_batch :
  ?deadline_ms:float ->
  t ->
  Xk_core.Engine.request list ->
  Query_service.outcome list
(** Fan every request of the batch out before the first gather, so shard
    jobs of different requests pipeline across the pool.  Outcomes in
    request order. *)

type stats = {
  shards : int;
  replicas : int;  (** replicas per shard *)
  domains : int;
  batches : int;  (** [exec]/[exec_batch] calls so far *)
  queries : int;  (** requests received (admitted or not) *)
  completed : int;
  partials : int;
  degraded : int;  (** requests served with lost shards *)
  timeouts : int;
  rejected : int;
  failed : int;
  failovers : int;  (** replica attempts beyond the first, per shard job *)
  hedges : int;  (** hedged attempts actually launched *)
  hedge_wins : int;  (** hedged attempts that beat the primary *)
  max_queue : int option;
  cache : Xk_index.Shard_cache.stats;
      (** {!Xk_index.Sharding.cache_stats} aggregate over all shards *)
}

val stats : t -> stats

val shutdown : t -> unit

(** {1 Presentation}

    Hits gathered from shards carry {e global} node indices; these
    helpers route a hit back to its owning shard for display. *)

val locate : t -> Xk_baselines.Hit.t -> int * Xk_baselines.Hit.t
(** The owning shard and the hit re-expressed in its local numbering. *)

val element_of_hit : t -> Xk_baselines.Hit.t -> Xk_xml.Xml_tree.element option

val snippet :
  ?width:int ->
  t ->
  string list ->
  Xk_baselines.Hit.t ->
  (string * string) list

val pp_hit : t -> Format.formatter -> Xk_baselines.Hit.t -> unit
