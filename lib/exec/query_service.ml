(* Batched parallel query execution over one shared engine.  Each request
   becomes one pool job; Domain_pool.map_array preserves request order,
   so the output is positionally identical to the sequential
   Engine.query_batch reference. *)

type stats = {
  domains : int;
  batches : int;
  queries : int;
  cache : Xk_index.Shard_cache.stats;
}

type t = {
  engine : Xk_core.Engine.t;
  pool : Domain_pool.t;
  batches : int Atomic.t;
  queries : int Atomic.t;
}

let create ?domains engine =
  {
    engine;
    pool = Domain_pool.create ?domains ();
    batches = Atomic.make 0;
    queries = Atomic.make 0;
  }

let engine t = t.engine
let domains t = Domain_pool.size t.pool

let exec_batch t (reqs : Xk_core.Engine.request list) =
  let arr = Array.of_list reqs in
  Atomic.incr t.batches;
  ignore (Atomic.fetch_and_add t.queries (Array.length arr));
  Domain_pool.map_array t.pool
    (fun r -> Xk_core.Engine.run_request t.engine r)
    arr
  |> Array.to_list

let stats t =
  {
    domains = domains t;
    batches = Atomic.get t.batches;
    queries = Atomic.get t.queries;
    cache = Xk_index.Index.cache_stats (Xk_core.Engine.index t.engine);
  }

let shutdown t = Domain_pool.shutdown t.pool
