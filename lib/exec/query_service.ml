(* Batched parallel query execution over one shared engine.  Each request
   becomes one pool job; futures preserve request order, so the output is
   positionally identical to the sequential Engine.query_batch reference.

   Resilience: every request comes back as an [outcome] rather than a bare
   hit list.  A job that raises is delivered as [Failed] (the worker domain
   survives); budget expiry surfaces as [Partial] (anytime top-K) or
   [Timeout]; when [max_queue] is set, requests beyond the in-flight bound
   are turned away as [Rejected] without ever reaching the pool. *)

type outcome =
  | Ok of Xk_baselines.Hit.t list
  | Partial of Xk_baselines.Hit.t list
  | Degraded of {
      hits : Xk_baselines.Hit.t list;
      missing_shards : int list;
      coverage : float;
    }
  | Timeout
  | Rejected
  | Failed of { message : string; backtrace : string }

let hits = function
  | Ok hs | Partial hs | Degraded { hits = hs; _ } -> hs
  | Timeout | Rejected | Failed _ -> []

let is_failure = function Failed _ -> true | _ -> false

let outcome_label = function
  | Ok _ -> "ok"
  | Partial _ -> "partial"
  | Degraded _ -> "degraded"
  | Timeout -> "timeout"
  | Rejected -> "rejected"
  | Failed _ -> "failed"

type stats = {
  domains : int;
  batches : int;
  queries : int;
  completed : int;
  partials : int;
  timeouts : int;
  rejected : int;
  failed : int;
  max_queue : int option;
  cache : Xk_index.Shard_cache.stats;
}

type t = {
  engine : Xk_core.Engine.t;
  pool : Domain_pool.t;
  max_queue : int option;
  in_flight : int Atomic.t;
  batches : int Atomic.t;
  queries : int Atomic.t;
  completed : int Atomic.t;
  partials : int Atomic.t;
  timeouts : int Atomic.t;
  rejected : int Atomic.t;
  failed : int Atomic.t;
}

let create ?domains ?max_queue engine =
  (match max_queue with
  | Some m when m < 1 -> Xk_util.Err.invalid "Query_service.create: max_queue < 1"
  | _ -> ());
  {
    engine;
    pool = Domain_pool.create ?domains ();
    max_queue;
    in_flight = Atomic.make 0;
    batches = Atomic.make 0;
    queries = Atomic.make 0;
    completed = Atomic.make 0;
    partials = Atomic.make 0;
    timeouts = Atomic.make 0;
    rejected = Atomic.make 0;
    failed = Atomic.make 0;
  }

let engine t = t.engine
let domains t = Domain_pool.size t.pool

(* Admission: count the request in-flight; turn it away when the bound is
   already met.  The increment-then-check order means a racing admit can
   momentarily overshoot the bound by the number of concurrent submitters,
   never by more. *)
let admit t =
  let n = Atomic.fetch_and_add t.in_flight 1 in
  match t.max_queue with
  | Some m when n >= m ->
      Atomic.decr t.in_flight;
      false
  | _ -> true

let exec_batch ?deadline_ms t (reqs : Xk_core.Engine.request list) =
  Atomic.incr t.batches;
  ignore (Atomic.fetch_and_add t.queries (List.length reqs));
  let run (r : Xk_core.Engine.request) =
    if not (admit t) then begin
      Atomic.incr t.rejected;
      None
    end
    else begin
      (* The deadline clock starts at admission, so time spent queued
         behind other requests counts against it.  A per-request deadline
         overrides the batch-wide one. *)
      let budget =
        match (r.req_deadline_ms, deadline_ms) with
        | Some d, _ | None, Some d -> Xk_resilience.Budget.create ~deadline_ms:d ()
        | None, None -> Xk_resilience.Budget.unlimited
      in
      Some
        (Domain_pool.async t.pool (fun () ->
             Fun.protect
               ~finally:(fun () -> Atomic.decr t.in_flight)
               (fun () ->
                 Xk_resilience.Fault_injection.on_query ();
                 Xk_core.Engine.run_request_outcome ~budget t.engine r)))
    end
  in
  (* Submit everything before the first await so the pool pipelines. *)
  let futs = List.map run reqs in
  List.map
    (fun fut ->
      match fut with
      | None -> Rejected
      | Some fut -> (
          match Domain_pool.await fut with
          | Stdlib.Ok (Xk_core.Engine.Done hs) ->
              Atomic.incr t.completed;
              Ok hs
          | Stdlib.Ok (Xk_core.Engine.Partial hs) ->
              Atomic.incr t.partials;
              Partial hs
          | Stdlib.Ok Xk_core.Engine.Timed_out ->
              Atomic.incr t.timeouts;
              Timeout
          | Stdlib.Error (e, bt) ->
              Atomic.incr t.failed;
              Failed
                {
                  message = Printexc.to_string e;
                  backtrace = Printexc.raw_backtrace_to_string bt;
                }))
    futs

let exec_batch_hits ?deadline_ms t reqs =
  List.map hits (exec_batch ?deadline_ms t reqs)

let stats t =
  {
    domains = domains t;
    batches = Atomic.get t.batches;
    queries = Atomic.get t.queries;
    completed = Atomic.get t.completed;
    partials = Atomic.get t.partials;
    timeouts = Atomic.get t.timeouts;
    rejected = Atomic.get t.rejected;
    failed = Atomic.get t.failed;
    max_queue = t.max_queue;
    cache = Xk_index.Index.cache_stats (Xk_core.Engine.index t.engine);
  }

let shutdown t = Domain_pool.shutdown t.pool
