(* Fleet supervision: own the serve-shard process table and keep it up.

   Every cycle, each supervised replica is checked: a dead process (or
   one that stops answering pings after it has once been confirmed
   healthy, or that exhausts its start grace without confirming) counts
   a failure and schedules a respawn after a decorrelated-jitter backoff
   (Retry.Jitter), so replicas that died together do not restart in
   lockstep.  A replica whose consecutive-failure count exceeds the flap
   cap is Quarantined: the supervisor stops restarting it and says so,
   instead of hot-looping on a persistent crasher.  A full healthy cycle
   (alive + ping) resets the failure count, so only genuine flapping
   accumulates toward the cap.

   The process table is injected as a record of closures (spawn / alive
   / kill / ping), as is the clock: unit tests drive whole
   kill-then-restart and flap drills with a fake table and a stepped
   clock, while the CLI binds Unix.create_process / waitpid / kill and
   the RPC ping.  An optional heal closure runs every heal_every cycles
   — the CLI wires it to Repair.scrub + Repair.repair over the fleet's
   manifest, closing the scrub/repair loop on the supervisor cadence. *)

type spec = { sv_shard : int; sv_replica : int; sv_host : string; sv_port : int }

let spec_label s = Printf.sprintf "s%dr%d" s.sv_shard s.sv_replica

type procs = {
  spawn : spec -> (int, string) result;
  alive : int -> bool;
  kill : int -> unit;
  ping : spec -> bool;
}

type config = {
  backoff_base_ms : float;
  backoff_cap_ms : float;
  flap_cap : int;
  start_grace_ms : float;
  heal_every : int;
}

let default_config =
  {
    backoff_base_ms = 200.;
    backoff_cap_ms = 5000.;
    flap_cap = 5;
    start_grace_ms = 30_000.;
    heal_every = 1;
  }

type replica_state =
  | Starting
  | Up of { pid : int; confirmed : bool }
  | Backoff of { until_ms : float; failures : int }
  | Quarantined of { failures : int }

type heal_report = {
  h_clean : int;
  h_damaged : int;
  h_missing : int;
  h_repaired : int;
  h_unrepairable : int;
}

type event =
  | Spawned of { spec : spec; pid : int }
  | Died of { spec : spec; reason : string }
  | Backoff_scheduled of { spec : spec; delay_ms : float; failures : int }
  | Quarantine of { spec : spec; failures : int }
  | Heal_ran of heal_report
  | Heal_failed of string

type entry = {
  spec : spec;
  mutable st : replica_state;
  mutable failures : int;
  mutable last_delay_ms : float;
  mutable spawns : int;
  mutable started_ms : float;  (* clock at the last spawn, for start grace *)
}

type t = {
  config : config;
  clock : unit -> float;
  jitter : Xk_resilience.Retry.Jitter.t;
  procs : procs;
  heal : (unit -> heal_report) option;
  on_event : event -> unit;
  entries : entry array;
  mutable cycles : int;
  mutable last_heal : heal_report option;
  stopped : bool Atomic.t;
}

let create ?(config = default_config) ?clock ?seed ?(on_event = fun _ -> ())
    ?heal ~procs specs =
  if config.flap_cap < 1 then
    Xk_util.Err.invalid "Supervisor.create: flap_cap < 1";
  if specs = [] then Xk_util.Err.invalid "Supervisor.create: no replicas";
  let clock =
    match clock with Some c -> c | None -> fun () -> Unix.gettimeofday () *. 1000.
  in
  {
    config;
    clock;
    jitter = Xk_resilience.Retry.Jitter.create ?seed ();
    procs;
    heal;
    on_event;
    entries =
      specs
      |> List.map (fun spec ->
             {
               spec;
               st = Starting;
               failures = 0;
               last_delay_ms = 0.;
               spawns = 0;
               started_ms = 0.;
             })
      |> Array.of_list;
    cycles = 0;
    last_heal = None;
    stopped = Atomic.make false;
  }

(* One more consecutive failure for [e]: either schedule a jittered
   respawn or, past the flap cap, quarantine it for good. *)
let fail t e reason =
  t.on_event (Died { spec = e.spec; reason });
  e.failures <- e.failures + 1;
  if e.failures > t.config.flap_cap then begin
    e.st <- Quarantined { failures = e.failures };
    t.on_event (Quarantine { spec = e.spec; failures = e.failures })
  end
  else begin
    let prev =
      if e.last_delay_ms > 0. then e.last_delay_ms else t.config.backoff_base_ms
    in
    let delay =
      Xk_resilience.Retry.Jitter.next t.jitter ~base_ms:t.config.backoff_base_ms
        ~cap_ms:t.config.backoff_cap_ms ~prev_ms:prev
    in
    e.last_delay_ms <- delay;
    e.st <- Backoff { until_ms = t.clock () +. delay; failures = e.failures };
    t.on_event
      (Backoff_scheduled { spec = e.spec; delay_ms = delay; failures = e.failures })
  end

let spawn_now t e =
  match t.procs.spawn e.spec with
  | Ok pid ->
      e.spawns <- e.spawns + 1;
      e.st <- Up { pid; confirmed = false };
      e.started_ms <- t.clock ();
      t.on_event (Spawned { spec = e.spec; pid })
  | Error msg -> fail t e ("spawn failed: " ^ msg)

let check_up t e ~pid ~confirmed =
  if not (t.procs.alive pid) then fail t e "process exited"
  else if t.procs.ping e.spec then begin
    e.st <- Up { pid; confirmed = true };
    e.failures <- 0;
    e.last_delay_ms <- 0.
  end
  else if confirmed then begin
    t.procs.kill pid;
    fail t e "ping failed"
  end
  else if t.clock () -. e.started_ms > t.config.start_grace_ms then begin
    t.procs.kill pid;
    fail t e "never became ready within start grace"
  end
(* else: still inside the start grace — leave it to finish loading *)

let cycle t =
  t.cycles <- t.cycles + 1;
  Array.iter
    (fun e ->
      match e.st with
      | Quarantined _ -> ()
      | Starting -> spawn_now t e
      | Backoff { until_ms; _ } ->
          if t.clock () >= until_ms then spawn_now t e
      | Up { pid; confirmed } -> check_up t e ~pid ~confirmed)
    t.entries;
  match t.heal with
  | Some heal when t.config.heal_every > 0 && t.cycles mod t.config.heal_every = 0
    -> (
      match heal () with
      | report ->
          t.last_heal <- Some report;
          t.on_event (Heal_ran report)
      | exception exn -> t.on_event (Heal_failed (Printexc.to_string exn)))
  | _ -> ()

type fleet = {
  up : int;
  starting : int;
  backing_off : int;
  quarantined : int;
  restarts : int;
  cycles : int;
}

let fleet (t : t) =
  let up = ref 0 and starting = ref 0 and backing_off = ref 0 in
  let quarantined = ref 0 and restarts = ref 0 in
  Array.iter
    (fun e ->
      restarts := !restarts + max 0 (e.spawns - 1);
      match e.st with
      | Up { confirmed = true; _ } -> incr up
      | Up { confirmed = false; _ } | Starting -> incr starting
      | Backoff _ -> incr backing_off
      | Quarantined _ -> incr quarantined)
    t.entries;
  {
    up = !up;
    starting = !starting;
    backing_off = !backing_off;
    quarantined = !quarantined;
    restarts = !restarts;
    cycles = t.cycles;
  }

let status_line t =
  let f = fleet t in
  let total = Array.length t.entries in
  let heal =
    match t.last_heal with
    | None -> ""
    | Some h ->
        Printf.sprintf "; heal: %d clean, %d damaged, %d missing, %d repaired, %d unrepairable"
          h.h_clean h.h_damaged h.h_missing h.h_repaired h.h_unrepairable
  in
  Printf.sprintf
    "fleet: %d/%d up, %d starting, %d backoff, %d quarantined, %d restarts, cycle %d%s"
    f.up total f.starting f.backing_off f.quarantined f.restarts f.cycles heal

let states t = Array.map (fun e -> (e.spec, e.st)) t.entries

let healthy t =
  Array.for_all
    (fun e -> match e.st with Up { confirmed = true; _ } -> true | _ -> false)
    t.entries

let stop t = Atomic.set t.stopped true
let stopped t = Atomic.get t.stopped

let shutdown t =
  stop t;
  Array.iter
    (fun e ->
      match e.st with
      | Up { pid; _ } ->
          t.procs.kill pid;
          e.st <- Starting
      | _ -> ())
    t.entries

let run ?cycles ?(interval_ms = 500.) ?(sleep = fun ms -> Unix.sleepf (ms /. 1000.))
    ?(on_cycle = fun _ -> ()) t =
  let continue n = match cycles with None -> true | Some c -> n < c in
  let rec go n =
    if continue n && not (stopped t) then begin
      cycle t;
      on_cycle t;
      if continue (n + 1) && not (stopped t) then begin
        sleep interval_ms;
        go (n + 1)
      end
    end
  in
  go 0
