(** Zipf-distributed rank sampling (rank 0 most frequent). *)

type t

val make : n:int -> exponent:float -> t
val size : t -> int
val sample : t -> Rng.t -> int
