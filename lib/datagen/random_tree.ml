(* Small random XML trees with a tiny keyword alphabet: the fuzz input for
   the correctness properties (all algorithms vs. the definitional
   oracle). *)

type config = {
  max_depth : int;
  max_children : int;
  keywords : int; (* alphabet size: kw0 .. kw(n-1) *)
  text_prob : float; (* probability a child slot is a text node *)
  word_prob : float; (* probability a text node holds a keyword *)
}

let default =
  { max_depth = 6; max_children = 4; keywords = 4; text_prob = 0.5; word_prob = 0.8 }

let keyword i = Printf.sprintf "kw%d" i

let generate ?(config = default) rng : Xk_xml.Xml_tree.document =
  let open Xk_xml.Xml_tree in
  let word () =
    if Rng.float rng < config.word_prob then keyword (Rng.int rng config.keywords)
    else "filler"
  in
  (* Keep text children non-adjacent: a serializer-parser pass merges
     adjacent character data, so adjacent text nodes would break structural
     round-trip comparisons without reflecting a real defect. *)
  let no_adjacent_text children =
    List.fold_right
      (fun c acc ->
        match (c, acc) with
        | Xk_xml.Xml_tree.Text a, Xk_xml.Xml_tree.Text b :: rest ->
            Xk_xml.Xml_tree.Text (a ^ " " ^ b) :: rest
        | c, acc -> c :: acc)
      children []
  in
  let rec node depth =
    if depth >= config.max_depth || Rng.float rng < config.text_prob then
      text (word () ^ if Rng.bool rng then " " ^ word () else "")
    else
      elem
        (Printf.sprintf "e%d" (Rng.int rng 3))
        (no_adjacent_text
           (List.init (Rng.int rng (config.max_children + 1)) (fun _ ->
                node (depth + 1))))
  in
  let children =
    no_adjacent_text
      (List.init (1 + Rng.int rng config.max_children) (fun _ -> node 2))
  in
  { root = element "root" children }
