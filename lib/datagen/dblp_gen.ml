(* Synthetic DBLP-like corpus (the paper's substitution for the 496 MB DBLP
   dump; see DESIGN.md §3).

   Shape follows the paper's setup: "we group the papers firstly by
   conference/journal names, and then by years" - so the tree is
   dblp / conf / year / paper / {title, authors/author, pages}.

   Three properties of the real data matter to the experiments and are
   reproduced here:

   - Zipfian term frequencies (keyword-frequency buckets for Figure 9);
   - context-biased vocabularies: half of a paper's title tokens come from
     the conference's topic slice of the vocabulary, so keyword correlation
     depends on the level - low at paper level, high at conference level
     (the Section III-C discussion);
   - planted control terms with exact frequencies and co-occurrence rates,
     giving the correlated query sets of Figure 10(b) reproducible
     definitions.  Control terms carry digit suffixes and never collide
     with the syllable vocabulary. *)

type config = {
  seed : int;
  conferences : int;
  years_per_conf : int;
  papers_per_year : int; (* mean; actual counts vary +/- 50% *)
  vocab_size : int;
  zipf_exponent : float;
  title_words : int; (* mean *)
  topic_slice : int; (* vocabulary slice width per conference topic *)
}

let default =
  {
    seed = 42;
    conferences = 120;
    years_per_conf = 10;
    papers_per_year = 14;
    vocab_size = 20_000;
    zipf_exponent = 1.1;
    title_words = 8;
    topic_slice = 400;
  }

(* Scale the corpus size by [f] (conference count). *)
let scaled f =
  {
    default with
    conferences = max 2 (int_of_float (float_of_int default.conferences *. f));
  }

type corpus = {
  doc : Xk_xml.Xml_tree.document;
  correlated_queries : string list list;
  uncorrelated_queries : string list list;
  total_papers : int;
}

(* Planted occurrences live either in the paper's title text (depth 6) or
   in an extra author field (depth 7). *)
type extras = {
  title : string list array; (* per paper, tokens appended to the title *)
  author : string list array; (* per paper, tokens in an extra author *)
}

let drop (slots : string list array) term ~tf p =
  for _ = 1 to tf do
    slots.(p) <- term :: slots.(p)
  done

(* Plant [freq] solitary occurrences of [term]: the score profile of the
   correlated sets (see below) without any planted co-occurrence. *)
let plant rng extras term ~freq =
  let n = Array.length extras.title in
  let freq = min freq (n / 2) in
  let half = freq / 2 and deco = freq / 8 in
  Array.iter (drop extras.title term ~tf:1) (Rng.sample rng ~n ~k:half);
  Array.iter (drop extras.author term ~tf:4) (Rng.sample rng ~n ~k:deco);
  Array.iter
    (drop extras.title term ~tf:2)
    (Rng.sample rng ~n ~k:(max 0 (freq - half - deco)))

(* Plant a correlated set.  The layout reproduces the score structure the
   paper's evaluation turns on:

   - [overlap] of the budget: tf-1 co-occurrences in one title - the bulk
     of the (deep) results, with modest local scores;
   - a few dozen "strong pairs": tf-3 co-occurrences in one title - the
     top-10 material, reachable near the heads of the score-ordered lists;
   - tf-4 author-field occurrences (depth 7) that never co-occur, and
     tf-4 conference-level decoys whose join is heavily damped: these sit
     at the very top of the local-score order, so RDIL's undamped
     threshold (Section II-C) stays pinned above the real results' scores
     until they are all consumed and verified, while the join-based top-K
     sees them per column with damping applied. *)
let plant_correlated rng extras ~conf_ranges terms ~freq ~overlap =
  let n = Array.length extras.title in
  let freq = min freq (n / 2) in
  let shared = int_of_float (float_of_int freq *. overlap) in
  let strong = min 40 (shared / 4) in
  let author_decoys = freq / 8 in
  let conf_decoys = freq / 16 in
  let singles = max 0 (freq - shared - strong - author_decoys - conf_decoys) in
  let shared_papers = Rng.sample rng ~n ~k:(shared + strong) in
  List.iter
    (fun term ->
      Array.iteri
        (fun i p ->
          drop extras.title term ~tf:(if i < strong then 3 else 1) p)
        shared_papers)
    terms;
  for _ = 1 to conf_decoys do
    let start, count = conf_ranges.(Rng.int rng (Array.length conf_ranges)) in
    if count >= List.length terms then begin
      let papers = Rng.sample rng ~n:count ~k:(List.length terms) in
      List.iteri
        (fun i term -> drop extras.title term ~tf:4 (start + papers.(i)))
        terms
    end
  done;
  List.iter
    (fun term ->
      Array.iter (drop extras.author term ~tf:4)
        (Rng.sample rng ~n ~k:author_decoys);
      Array.iter (drop extras.title term ~tf:2) (Rng.sample rng ~n ~k:singles))
    terms

let words_of_title rng zipf cfg ~topic =
  let n = max 3 (Rng.range rng (cfg.title_words / 2) (3 * cfg.title_words / 2)) in
  let buf = Buffer.create 64 in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    let rank =
      if Rng.bool rng then Zipf.sample zipf rng
      else topic + Zipf.sample zipf rng mod cfg.topic_slice
    in
    Buffer.add_string buf (Vocab.word (min rank (cfg.vocab_size - 1)))
  done;
  Buffer.contents buf

let generate (cfg : config) : corpus =
  let rng = Rng.create cfg.seed in
  let zipf = Zipf.make ~n:cfg.vocab_size ~exponent:cfg.zipf_exponent in
  (* Fix the per-(conf, year) paper counts first, so control terms can be
     planted against the global paper numbering. *)
  let counts =
    Array.init cfg.conferences (fun _ ->
        Array.init cfg.years_per_conf (fun _ ->
            max 1
              (Rng.range rng (cfg.papers_per_year / 2)
                 (3 * cfg.papers_per_year / 2))))
  in
  let total_papers = Array.fold_left (fun a ys -> Array.fold_left ( + ) a ys) 0 counts in
  (* Global paper-index range of each conference, for conference-level
     decoy planting. *)
  let conf_ranges =
    let start = ref 0 in
    Array.map
      (fun ys ->
        let count = Array.fold_left ( + ) 0 ys in
        let r = (!start, count) in
        start := !start + count;
        r)
      counts
  in
  let extras =
    { title = Array.make total_papers []; author = Array.make total_papers [] }
  in
  let base = max 10 (total_papers / 12) in
  (* Correlated pairs at three frequency scales, a correlated triple, and
     frequency-matched uncorrelated controls. *)
  let correlated = ref [] and uncorrelated = ref [] in
  for i = 1 to 3 do
    let a = Vocab.control ~group:"cpa" ~index:i
    and b = Vocab.control ~group:"cpb" ~index:i in
    plant_correlated rng extras ~conf_ranges [ a; b ] ~freq:(base * i)
      ~overlap:0.7;
    correlated := [ a; b ] :: !correlated;
    let ua = Vocab.control ~group:"upa" ~index:i
    and ub = Vocab.control ~group:"upb" ~index:i in
    plant rng extras ua ~freq:(base * i);
    plant rng extras ub ~freq:(base * i);
    uncorrelated := [ ua; ub ] :: !uncorrelated
  done;
  let t3 =
    [
      Vocab.control ~group:"cta" ~index:1;
      Vocab.control ~group:"ctb" ~index:1;
      Vocab.control ~group:"ctc" ~index:1;
    ]
  in
  plant_correlated rng extras ~conf_ranges t3 ~freq:(base * 2) ~overlap:0.6;
  correlated := t3 :: !correlated;
  (* Emit the tree. *)
  let open Xk_xml.Xml_tree in
  let paper_idx = ref 0 in
  let confs =
    List.init cfg.conferences (fun c ->
        let topic = c * cfg.topic_slice mod cfg.vocab_size in
        let years =
          List.init cfg.years_per_conf (fun y ->
              let papers =
                List.init counts.(c).(y) (fun _ ->
                    let p = !paper_idx in
                    incr paper_idx;
                    let title = words_of_title rng zipf cfg ~topic in
                    let title =
                      match extras.title.(p) with
                      | [] -> title
                      | ex -> title ^ " " ^ String.concat " " ex
                    in
                    let authors =
                      List.init (1 + Rng.int rng 3) (fun _ ->
                          elem "author"
                            [
                              text
                                (Vocab.word (Zipf.sample zipf rng)
                                ^ " "
                                ^ Vocab.word (Zipf.sample zipf rng));
                            ])
                    in
                    let authors =
                      (* One extra author element per distinct planted
                         term: different control terms must not share a
                         text node through this side channel. *)
                      match extras.author.(p) with
                      | [] -> authors
                      | ex ->
                          let grouped =
                            List.sort_uniq String.compare ex
                            |> List.map (fun term ->
                                   let reps =
                                     List.filter (String.equal term) ex
                                   in
                                   elem "author"
                                     [ text (String.concat " " reps) ])
                          in
                          authors @ grouped
                    in
                    elem "paper"
                      [
                        elem "title" [ text title ];
                        elem "authors" authors;
                        elem "pages"
                          [
                            text
                              (Printf.sprintf "%d %d" (Rng.int rng 500)
                                 (500 + Rng.int rng 30));
                          ];
                      ])
              in
              elem "year"
                ~attrs:[ attr "value" (string_of_int (1998 + y)) ]
                papers)
        in
        elem "conf"
          ~attrs:[ attr "name" (Printf.sprintf "conf%d" c) ]
          (elem "fullname" [ text (words_of_title rng zipf cfg ~topic) ] :: years))
  in
  let doc = { root = element "dblp" confs } in
  {
    doc;
    correlated_queries = List.rev !correlated;
    uncorrelated_queries = List.rev !uncorrelated;
    total_papers;
  }
