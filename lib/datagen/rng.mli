(** Deterministic SplitMix64 generator: corpora and workloads must be
    reproducible from a seed across runs and machines. *)

type t

val create : int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [0, bound); raises on non-positive bound. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val range : t -> int -> int -> int
(** Uniform in [lo, hi] inclusive. *)

val sample : t -> n:int -> k:int -> int array
(** [k] distinct values from [0, n). *)

val shuffle : t -> 'a array -> unit

val split : t -> t
(** An independent generator seeded from this one. *)
