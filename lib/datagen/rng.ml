(* Deterministic SplitMix64 generator: corpora and workloads must be
   reproducible from a seed across runs and machines. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then Xk_util.Err.invalid "Rng.int: bound must be positive";
  (* Mask to OCaml's positive int range: a 63-bit shift result can still
     land in the native int's sign bit. *)
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let float t =
  (* 53 random bits into [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int v /. 9007199254740992.

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Uniform int in [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then Xk_util.Err.invalid "Rng.range";
  lo + int t (hi - lo + 1)

(* k distinct ints from [0, n), by partial Fisher-Yates on an index pool. *)
let sample t ~n ~k =
  if k > n then Xk_util.Err.invalid "Rng.sample: k > n";
  let pool = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 k

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = create (Int64.to_int (next_int64 t))
