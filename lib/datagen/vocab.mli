(** Synthetic vocabulary: prefix-free syllable words (distinct per rank,
    tokenizer-stable) and digit-suffixed control-term names that never
    collide with them. *)

val word : int -> string
val control : group:string -> index:int -> string
