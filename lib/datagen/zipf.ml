(* Zipf-distributed sampling over ranks 0..n-1 (rank 0 most frequent),
   by inverse transform over the precomputed CDF.  Word frequencies in
   text corpora are Zipfian; this is what gives the synthetic corpora
   keyword-frequency buckets spanning several orders of magnitude, like
   DBLP's. *)

type t = { cdf : float array }

let make ~n ~exponent =
  if n <= 0 then Xk_util.Err.invalid "Zipf.make";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for r = 0 to n - 1 do
    acc := !acc +. (1. /. (float_of_int (r + 1) ** exponent));
    cdf.(r) <- !acc
  done;
  let total = !acc in
  for r = 0 to n - 1 do
    cdf.(r) <- cdf.(r) /. total
  done;
  { cdf }

let size t = Array.length t.cdf

let sample t rng =
  let u = Rng.float rng in
  (* First rank with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo
