(** Synthetic XMark-like auction corpus (the substitution for XMark factor
    1.0 - see DESIGN.md §3): deep recursive item descriptions
    (parlist/listitem/text), people and auctions, with planted correlated
    control terms over item descriptions. *)

type config = {
  seed : int;
  regions : int;
  items_per_region : int;
  people : int;
  open_auctions : int;
  vocab_size : int;
  zipf_exponent : float;
  sentence_words : int;
}

val default : config
val scaled : float -> config

type corpus = {
  doc : Xk_xml.Xml_tree.document;
  correlated_queries : string list list;
  total_items : int;
}

val generate : config -> corpus
(** Deterministic in [config.seed]. *)
