(** Small random XML trees over a tiny keyword alphabet - the fuzz input
    of the correctness property tests. *)

type config = {
  max_depth : int;
  max_children : int;
  keywords : int;  (** alphabet size: kw0 .. kw(n-1) *)
  text_prob : float;
  word_prob : float;
}

val default : config

val keyword : int -> string
(** ["kw<i>"] *)

val generate : ?config:config -> Rng.t -> Xk_xml.Xml_tree.document
