(* Synthetic XMark-like auction corpus (the substitution for XMark factor
   1.0; see DESIGN.md §3).  Reproduces what matters to the experiments:
   XMark's deeper, recursive structure - item descriptions nest parlist /
   listitem / text up to three levels - which populates deep JDewey
   columns, plus Zipfian text and planted correlated control terms spread
   over item descriptions. *)

type config = {
  seed : int;
  regions : int;
  items_per_region : int;
  people : int;
  open_auctions : int;
  vocab_size : int;
  zipf_exponent : float;
  sentence_words : int;
}

let default =
  {
    seed = 17;
    regions = 6;
    items_per_region = 250;
    people = 600;
    open_auctions = 400;
    vocab_size = 15_000;
    zipf_exponent = 1.1;
    sentence_words = 9;
  }

let scaled f =
  {
    default with
    items_per_region =
      max 10 (int_of_float (float_of_int default.items_per_region *. f));
    people = max 10 (int_of_float (float_of_int default.people *. f));
    open_auctions =
      max 10 (int_of_float (float_of_int default.open_auctions *. f));
  }

type corpus = {
  doc : Xk_xml.Xml_tree.document;
  correlated_queries : string list list;
  total_items : int;
}

let sentence rng zipf cfg =
  let n = max 3 (Rng.range rng (cfg.sentence_words / 2) (2 * cfg.sentence_words)) in
  let buf = Buffer.create 64 in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Vocab.word (Zipf.sample zipf rng))
  done;
  Buffer.contents buf

let generate (cfg : config) : corpus =
  let rng = Rng.create cfg.seed in
  let zipf = Zipf.make ~n:cfg.vocab_size ~exponent:cfg.zipf_exponent in
  let open Xk_xml.Xml_tree in
  let total_items = cfg.regions * cfg.items_per_region in
  let extras = Array.make total_items [] in
  let base = max 8 (total_items / 4) in
  let correlated = ref [] in
  (* Same planted score structure as the DBLP generator (see Dblp_gen):
     tf-1 shared co-occurrences as the result bulk, a few tf-3 strong
     pairs as top-10 material, tf-2/4 solitary tails. *)
  for i = 1 to 2 do
    let a = Vocab.control ~group:"xca" ~index:i
    and b = Vocab.control ~group:"xcb" ~index:i in
    let n = Array.length extras in
    let freq = min (base * i) (n / 2) in
    let shared = int_of_float (float_of_int freq *. 0.6) in
    let strong = min 30 (shared / 4) in
    let shared_items = Rng.sample rng ~n ~k:(shared + strong) in
    let drop term ~tf p =
      for _ = 1 to tf do
        extras.(p) <- term :: extras.(p)
      done
    in
    List.iter
      (fun term ->
        Array.iteri
          (fun j p -> drop term ~tf:(if j < strong then 3 else 1) p)
          shared_items;
        let tail = max 0 (freq - shared - strong) in
        Array.iter
          (fun p -> drop term ~tf:(if Rng.float rng < 0.2 then 4 else 2) p)
          (Rng.sample rng ~n ~k:tail))
      [ a; b ];
    correlated := [ a; b ] :: !correlated
  done;
  (* Recursive parlist structure: the deep part of the tree.  Planted
     tokens are attached to exactly one text node of the description (the
     first emitted), so per-item document frequencies stay exact. *)
  let rec parlist depth pending =
    let items =
      List.init
        (1 + Rng.int rng 3)
        (fun _ ->
          let body =
            if depth < 2 && Rng.int rng 4 = 0 then parlist (depth + 1) pending
            else begin
              let ex = !pending in
              pending := [];
              elem "text"
                [
                  text
                    (match ex with
                    | [] -> sentence rng zipf cfg
                    | ex -> sentence rng zipf cfg ^ " " ^ String.concat " " ex);
                ]
            end
          in
          elem "listitem" [ body ])
    in
    elem "parlist" items
  in
  let item_idx = ref 0 in
  let region_names =
    [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]
  in
  let regions =
    List.init cfg.regions (fun r ->
        let items =
          List.init cfg.items_per_region (fun _ ->
              let p = !item_idx in
              incr item_idx;
              elem "item"
                ~attrs:[ attr "id" (Printf.sprintf "item%d" p) ]
                [
                  elem "location" [ text (sentence rng zipf cfg) ];
                  elem "name" [ text (sentence rng zipf cfg) ];
                  elem "description" [ parlist 0 (ref extras.(p)) ];
                  elem "mailbox"
                    [
                      elem "mail"
                        [
                          elem "from" [ text (Vocab.word (Zipf.sample zipf rng)) ];
                          elem "text" [ text (sentence rng zipf cfg) ];
                        ];
                    ];
                ])
        in
        elem region_names.(r mod Array.length region_names) items)
  in
  let people =
    List.init cfg.people (fun p ->
        elem "person"
          ~attrs:[ attr "id" (Printf.sprintf "person%d" p) ]
          [
            elem "name" [ text (sentence rng zipf cfg) ];
            elem "profile"
              [
                elem "interest" [ text (Vocab.word (Zipf.sample zipf rng)) ];
                elem "education" [ text (Vocab.word (Zipf.sample zipf rng)) ];
              ];
          ])
  in
  let auctions =
    List.init cfg.open_auctions (fun a ->
        elem "open_auction"
          ~attrs:[ attr "id" (Printf.sprintf "auction%d" a) ]
          [
            elem "initial" [ text (string_of_int (Rng.int rng 500)) ];
            elem "annotation"
              [
                elem "description"
                  [ elem "text" [ text (sentence rng zipf cfg) ] ];
              ];
          ])
  in
  let doc =
    {
      root =
        element "site"
          [
            elem "regions" regions;
            elem "people" people;
            elem "open_auctions" auctions;
          ];
    }
  in
  { doc; correlated_queries = List.rev !correlated; total_items }
