(** Synthetic DBLP-like corpus (the substitution for the paper's 496 MB
    DBLP dump - see DESIGN.md §3): papers grouped by conference then year,
    Zipfian vocabulary with per-conference topic bias, and planted control
    terms with exact frequencies, co-occurrence rates and the score
    structure the Figure 10 experiments depend on. *)

type config = {
  seed : int;
  conferences : int;
  years_per_conf : int;
  papers_per_year : int;  (** mean; actual counts vary +/- 50% *)
  vocab_size : int;
  zipf_exponent : float;
  title_words : int;  (** mean *)
  topic_slice : int;  (** vocabulary slice width per conference topic *)
}

val default : config

val scaled : float -> config
(** Scale the corpus (conference count) by a factor. *)

type corpus = {
  doc : Xk_xml.Xml_tree.document;
  correlated_queries : string list list;
      (** planted keyword sets with high paper-level co-occurrence *)
  uncorrelated_queries : string list list;
      (** frequency-matched controls without planted co-occurrence *)
  total_papers : int;
}

val generate : config -> corpus
(** Deterministic in [config.seed]. *)
