(* Synthetic vocabulary: pronounceable syllable words, deterministic in the
   rank.  The syllable set is prefix-free, so concatenations decode
   uniquely and distinct ranks give distinct words.  Control terms (planted
   by the generators for the correlated-query workloads) carry a digit
   suffix, which no syllable word contains, so the two name spaces never
   collide. *)

let syllables =
  [|
    "ba"; "ce"; "di"; "fo"; "gu"; "ha"; "je"; "ki"; "lo"; "mu"; "na"; "pe";
    "qui"; "ro"; "su"; "ta"; "ve"; "wi"; "xo"; "zu"; "bra"; "cle"; "dri";
    "flo"; "gru"; "pla"; "sta"; "tre"; "vla"; "sno";
  |]

let word rank =
  if rank < 0 then Xk_util.Err.invalid "Vocab.word";
  let b = Array.length syllables in
  (* Offsetting by b^2 makes every word at least three syllables and the
     base-b digit strings (hence the words) pairwise distinct. *)
  let n = rank + (b * b) in
  let rec digits n acc = if n = 0 then acc else digits (n / b) ((n mod b) :: acc) in
  let buf = Buffer.create 8 in
  List.iter (fun d -> Buffer.add_string buf syllables.(d)) (digits n []);
  Buffer.contents buf

let control ~group ~index = Printf.sprintf "%s%d" group index
