(** Prefix-compressed codec for document-ordered Dewey posting lists
    (the compression scheme of Xu & Papakonstantinou used by the baseline
    indexes). *)

val encode : Buffer.t -> Xk_encoding.Dewey.t array -> unit
val decode : Varint.cursor -> Xk_encoding.Dewey.t array
val encoded_size : Xk_encoding.Dewey.t array -> int
