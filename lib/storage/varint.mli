(** LEB128 variable-length integer codec. *)

val write : Buffer.t -> int -> unit
(** Unsigned LEB128; raises [Invalid_argument] on negatives. *)

val write_signed : Buffer.t -> int -> unit
(** Zig-zag + LEB128, for signed deltas. *)

type cursor = { data : string; mutable pos : int }

val cursor : string -> cursor
val cursor_at : string -> int -> cursor
val at_end : cursor -> bool
val read : cursor -> int
val read_signed : cursor -> int

val read_opt : cursor -> int option
(** Like {!read} but [None] when the data ends mid-value, leaving the
    cursor untouched — for parsers of possibly-torn input (crash
    recovery), where short reads are expected rather than bugs. *)

val size : int -> int
(** Encoded byte length of an unsigned value. *)
