(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) - the integrity checksum of
    the on-disk index segments. *)

val sub : string -> pos:int -> len:int -> int
(** Checksum of a substring, as a non-negative int in [0, 2^32). *)

val string : string -> int
(** [string s = sub s ~pos:0 ~len:(String.length s)]. *)

val update : int -> string -> pos:int -> len:int -> int
(** Incremental form: feed more bytes into a running checksum. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The byte-array shape of a memory-mapped file ({!Mmap}). *)

val update_big : int -> bigstring -> pos:int -> len:int -> int
(** {!update} over a mapped byte array, so checksum verification of a
    segment column never copies the mapped pages into OCaml strings. *)

val big_sub : bigstring -> pos:int -> len:int -> int
(** [big_sub b ~pos ~len = update_big 0 b ~pos ~len]. *)
