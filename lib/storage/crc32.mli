(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) - the integrity checksum of
    the on-disk index segments. *)

val sub : string -> pos:int -> len:int -> int
(** Checksum of a substring, as a non-negative int in [0, 2^32). *)

val string : string -> int
(** [string s = sub s ~pos:0 ~len:(String.length s)]. *)

val update : int -> string -> pos:int -> len:int -> int
(** Incremental form: feed more bytes into a running checksum. *)
