(* LEB128 variable-length integers, the base codec for every on-disk
   structure in the repository. *)

let write buf n =
  if n < 0 then Xk_util.Err.invalid "Varint.write: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

(* Zig-zag encoding for signed deltas. *)
let write_signed buf n =
  let z = if n >= 0 then n lsl 1 else ((-n) lsl 1) - 1 in
  write buf z

type cursor = { data : string; mutable pos : int }

let cursor data = { data; pos = 0 }
let cursor_at data pos = { data; pos }
let at_end c = c.pos >= String.length c.data

let read c =
  let rec go shift acc =
    if c.pos >= String.length c.data then
      Xk_util.Err.invalid "Varint.read: truncated input";
    let b = Char.code c.data.[c.pos] in
    c.pos <- c.pos + 1;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_signed c =
  let z = read c in
  if z land 1 = 0 then z lsr 1 else -((z + 1) lsr 1)

(* Total variant for parsers of possibly-torn input (WAL recovery):
   short input is an expected outcome there, not a programming error. *)
let read_opt c =
  let len = String.length c.data in
  let rec go shift acc pos =
    if pos >= len then None
    else
      let b = Char.code c.data.[pos] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then begin
        c.pos <- pos + 1;
        Some acc
      end
      else go (shift + 7) acc (pos + 1)
  in
  go 0 0 c.pos

let size n =
  let rec go n acc = if n < 0x80 then acc else go (n lsr 7) (acc + 1) in
  go (max n 0) 1
