(* Prefix-compressed codec for document-ordered Dewey posting lists, the
   scheme of Xu & Papakonstantinou [6] used by the stack-based and
   index-based baselines: each id stores the length of the prefix it shares
   with its predecessor plus the remaining components. *)

let encode buf (ids : Xk_encoding.Dewey.t array) =
  Varint.write buf (Array.length ids);
  let prev = ref [||] in
  Array.iter
    (fun (d : Xk_encoding.Dewey.t) ->
      let shared = Xk_encoding.Dewey.common_prefix_len !prev d in
      Varint.write buf shared;
      Varint.write buf (Array.length d - shared);
      for i = shared to Array.length d - 1 do
        Varint.write buf d.(i)
      done;
      prev := d)
    ids

let decode (c : Varint.cursor) : Xk_encoding.Dewey.t array =
  let n = Varint.read c in
  let out = Array.make n [||] in
  let prev = ref [||] in
  for i = 0 to n - 1 do
    let shared = Varint.read c in
    let rest = Varint.read c in
    let d = Array.make (shared + rest) 0 in
    Array.blit !prev 0 d 0 shared;
    for j = shared to shared + rest - 1 do
      d.(j) <- Varint.read c
    done;
    out.(i) <- d;
    prev := d
  done;
  out

let encoded_size ids =
  let buf = Buffer.create 256 in
  encode buf ids;
  Buffer.length buf
