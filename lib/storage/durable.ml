(* Durable write primitives.  The policy lives here so every segment,
   manifest and WAL writer follows the same sequence: write the temp
   file, fsync it, rename, fsync the directory.  fsync failures on
   descriptors that cannot be synced (pipes in tests, filesystems
   without directory sync) are swallowed — durability hardening must
   not turn a completed write into an error. *)

let fsync_fd fd = try Unix.fsync fd with Unix.Unix_error _ -> ()

let fsync_out_channel oc =
  flush oc;
  fsync_fd (Unix.descr_of_out_channel oc)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> fsync_fd fd)

let fsync_file path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> fsync_fd fd)

let write_atomically ?(fsync = true) path write =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     write oc;
     if fsync then fsync_out_channel oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  if fsync then fsync_dir (Filename.dirname path)

let write_string_atomically ?fsync path data =
  write_atomically ?fsync path (fun oc -> output_string oc data)
