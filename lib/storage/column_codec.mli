(** Codec for one column of a JDewey inverted list (paper Section III-D):
    block-local delta coding for high-cardinality columns, (value, count)
    run-length triples for low-cardinality ones. *)

type scheme = Delta | Rle

type run = { value : int; count : int }
(** One run of equal JDewey numbers; the run's starting row is the sum of
    the preceding counts. *)

val choose_scheme : run array -> scheme
(** Scheme selection from the run/entry ratio. *)

val encode_with : Buffer.t -> scheme -> run array -> unit
val encode : Buffer.t -> run array -> scheme
val decode : Varint.cursor -> run array

val encoded_size : run array -> int
(** Bytes the column occupies on disk (used by Table I accounting). *)
