(** Crash-durable file writes: fsync primitives and the
    write-fsync-rename-fsync sequence every persistent artifact in the
    tree goes through.

    A bare [Sys.rename] after buffered writes is only atomic against
    concurrent readers — after a power cut the renamed file may hold
    garbage (the data never reached the platter) or the rename itself
    may be lost (the directory entry was never flushed).  The full
    sequence is: write the temp file, [fsync] it, rename over the live
    name, then [fsync] the containing directory.  [tools/xklint]'s
    [durability-sync] rule enforces that any rename in [lib/index] or
    [lib/storage] keeps an fsync in sight. *)

val fsync_fd : Unix.file_descr -> unit
(** [Unix.fsync], with [EINVAL]/[ENOTSUP] swallowed (some filesystems
    refuse to sync certain descriptors; a refusal must not turn a
    successful write into an error). *)

val fsync_out_channel : out_channel -> unit
(** Flush the channel, then {!fsync_fd} its descriptor. *)

val fsync_dir : string -> unit
(** Open a directory read-only and fsync it, so a rename inside it
    survives a crash.  Errors are swallowed: directory fsync is
    best-effort hardening on platforms that support it. *)

val fsync_file : string -> unit
(** Open an existing file and fsync it (used after out-of-band writes). *)

val write_atomically : ?fsync:bool -> string -> (out_channel -> unit) -> unit
(** [write_atomically path write] runs [write] over a fresh [path.tmp],
    fsyncs it, renames it over [path] and fsyncs the directory.  On any
    exception the temp file is removed and the exception re-raised; the
    live [path] is never observed half-written.  [fsync:false] skips
    both syncs (tests that simulate lost writes). *)

val write_string_atomically : ?fsync:bool -> string -> string -> unit
(** {!write_atomically} of one preassembled byte string. *)
