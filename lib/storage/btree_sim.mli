(** Storage model of the BerkeleyDB B-tree layouts used by the paper's
    competitors, for Table I's index-size accounting. *)

val page_size : int

val dewey_bytes : Xk_encoding.Dewey.t -> int

val composite_btree_size : (string * Xk_encoding.Dewey.t array) list -> int
(** Bytes of the single (keyword, Dewey) composite-key B-tree of the
    index-based baseline: one entry per occurrence, keyword bytes repeated
    per entry. *)

val per_list_btree_size : (string * Xk_encoding.Dewey.t array) list -> int
(** Bytes of RDIL's per-keyword B+-trees over document-ordered lists. *)
