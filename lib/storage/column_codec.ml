(* On-disk codec for one column of a JDewey inverted list (paper
   Section III-D).

   A column is a sorted sequence of JDewey numbers; equal numbers are
   adjacent, so the in-memory form is a run list [(value, count)] (the row
   start of each run is the cumulative count).  Two block-level schemes are
   implemented, mirroring the paper's two compression schemes from C-Store:

   - [Delta]: for columns with many distinct values.  Each block stores the
     first value verbatim and every subsequent value as a delta from its
     predecessor; the (rare) runs longer than one row carry an explicit
     count behind a flag bit.
   - [Rle]: for columns with few distinct values.  Runs are stored as
     (value-delta, count) pairs - the paper's (v, r, c) triples with [r]
     implicit as the running sum of counts.

   [encode] picks the scheme per column from the run/entry ratio, which is
   the paper's "many distinct values" vs "few distinct values" distinction
   made concrete. *)

type scheme = Delta | Rle

type run = { value : int; count : int }

let block_entries = 128
(* Runs per block.  With ~4-byte entries this approximates the paper's
   disk-block granularity while keeping per-block headers amortized. *)

let choose_scheme (runs : run array) =
  let entries = Array.fold_left (fun a r -> a + r.count) 0 runs in
  if entries = 0 then Delta
  else if 2 * Array.length runs <= entries then Rle
  else Delta

(* Delta-scheme entry: the delta is shifted left one bit; the low bit flags
   a multi-row run whose count follows.  Consecutive runs have strictly
   increasing values, so the delta itself is >= 1 and nothing is lost. *)
let write_delta_entry buf dv count =
  if count = 1 then Varint.write buf (dv lsl 1)
  else begin
    Varint.write buf ((dv lsl 1) lor 1);
    Varint.write buf count
  end

let read_delta_entry c =
  let tagged = Varint.read c in
  let dv = tagged lsr 1 in
  let count = if tagged land 1 = 1 then Varint.read c else 1 in
  (dv, count)

let encode_with buf scheme (runs : run array) =
  Buffer.add_char buf (match scheme with Delta -> 'D' | Rle -> 'R');
  Varint.write buf (Array.length runs);
  let n = Array.length runs in
  let i = ref 0 in
  while !i < n do
    let stop = min n (!i + block_entries) in
    (* Block header: first value verbatim, plus its count. *)
    Varint.write buf runs.(!i).value;
    Varint.write buf runs.(!i).count;
    let prev = ref runs.(!i).value in
    incr i;
    while !i < stop do
      let r = runs.(!i) in
      let dv = r.value - !prev in
      (match scheme with
      | Rle ->
          Varint.write buf dv;
          Varint.write buf r.count
      | Delta -> write_delta_entry buf dv r.count);
      prev := r.value;
      incr i
    done
  done

let encode buf (runs : run array) =
  let scheme = choose_scheme runs in
  encode_with buf scheme runs;
  scheme

let decode (c : Varint.cursor) : run array =
  let scheme =
    match c.data.[c.pos] with
    | 'D' -> Delta
    | 'R' -> Rle
    | ch -> Xk_util.Err.invalidf "Column_codec.decode: bad tag %C" ch
  in
  c.pos <- c.pos + 1;
  let n = Varint.read c in
  let runs = Array.make n { value = 0; count = 0 } in
  let i = ref 0 in
  while !i < n do
    let stop = min n (!i + block_entries) in
    let v = Varint.read c in
    let cnt = Varint.read c in
    runs.(!i) <- { value = v; count = cnt };
    let prev = ref v in
    incr i;
    while !i < stop do
      let dv, count =
        match scheme with
        | Rle ->
            let dv = Varint.read c in
            let count = Varint.read c in
            (dv, count)
        | Delta -> read_delta_entry c
      in
      let value = !prev + dv in
      runs.(!i) <- { value; count };
      prev := value;
      incr i
    done
  done;
  runs

let encoded_size (runs : run array) =
  let buf = Buffer.create 256 in
  let (_ : scheme) = encode buf runs in
  Buffer.length buf
