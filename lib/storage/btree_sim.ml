(* Storage model of the BerkeleyDB B-tree layouts that the paper's
   competitors use, for the Table I index-size accounting:

   - the index-based baseline of [6], [8] stores one (keyword, Dewey id)
     composite key per occurrence in a single B-tree, so a keyword with an
     n-entry posting list repeats its bytes n times;
   - RDIL builds one B+-tree per keyword over the document-ordered list.

   Page parameters follow BerkeleyDB defaults: 4 KiB pages at ~67% fill,
   a per-entry header, and ~1.5% of leaf volume in internal pages. *)

let page_size = 4096
let fill_factor = 0.67
let entry_overhead = 12 (* per-entry page-slot index + lengths *)
let internal_fraction = 0.015

let dewey_bytes (d : Xk_encoding.Dewey.t) =
  Array.fold_left (fun a c -> a + Varint.size c) 0 d

(* Size of the single composite-key B-tree of the index-based baseline. *)
let composite_btree_size (postings : (string * Xk_encoding.Dewey.t array) list)
    =
  let leaf =
    List.fold_left
      (fun acc (term, ids) ->
        let kb = String.length term in
        Array.fold_left
          (fun acc d -> acc + kb + dewey_bytes d + entry_overhead)
          acc ids)
      0 postings
  in
  let leaf_pages =
    int_of_float (ceil (float_of_int leaf /. (float_of_int page_size *. fill_factor)))
  in
  let total_pages =
    leaf_pages + int_of_float (ceil (float_of_int leaf_pages *. internal_fraction))
  in
  max 1 total_pages * page_size

(* Size of RDIL's B+-trees over the document-ordered lists.  Small lists
   share pages (a page-per-keyword floor would dwarf the inverted lists for
   a Zipfian dictionary, which is not what the original reports), so the
   model is fill-factor-adjusted bytes plus the internal-page fraction. *)
let per_list_btree_size (postings : (string * Xk_encoding.Dewey.t array) list) =
  let leaf =
    List.fold_left
      (fun acc (_term, ids) ->
        Array.fold_left
          (fun a d -> a + dewey_bytes d + entry_overhead + 8
           (* value: offset into the score-ordered list *))
          acc ids)
      0 postings
  in
  let adjusted = float_of_int leaf /. fill_factor *. (1. +. internal_fraction) in
  int_of_float (ceil adjusted)
