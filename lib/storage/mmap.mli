(** Read-only memory-mapped files: the substrate of the zero-copy v3
    index segments.

    {!map} wraps [Unix.map_file] into a handle whose accessors are
    bounds-checked and lifetime-checked: after {!close} every access
    raises {!Fault} [Closed] instead of touching unmapped memory
    semantics.  The mapping itself is released by the GC when the last
    reference to the handle dies (the stdlib exposes no explicit
    munmap); {!close} exists so an owner — a segment handle being
    retired — can {e invalidate} the map eagerly and turn any straggling
    reader into a typed error instead of a silent read of stale pages.

    A handle must stay owned by exactly one segment handle: never store
    the handle, or byte ranges obtained from it, in caches that outlive
    the segment (the [mmap-lifetime] xklint rule mechanizes this for
    [lib/index] and [lib/storage]).  Decode into plain OCaml values
    before anything long-lived sees the data. *)

type t

type error =
  | Map_failed of string
      (** open/fstat/mmap failed (missing file, permissions, resource
          limits, an injected map fault) *)
  | Bounds of { what : string; pos : int; len : int; size : int }
      (** an access of [len] bytes at [pos] falls outside the [size]-byte
          map, or a stored 64-bit offset does not fit the host int *)
  | Closed of string  (** access after {!close}; carries the path *)

exception Fault of error
(** Raised by the accessors below on a bounds violation or a closed
    handle.  {!map} itself never raises: mapping failures are returned
    as values. *)

val error_message : error -> string

val map : string -> (t, error) result
(** Map a whole file read-only ([MAP_PRIVATE]).  An empty file is a
    [Map_failed] (mmap of zero bytes is undefined); the caller's framing
    check rejects it as truncated long before this matters. *)

val size : t -> int
val path : t -> string

val close : t -> unit
(** Invalidate the handle: subsequent accessors raise {!Fault}[ (Closed _)].
    Idempotent.  Does not unmap the pages (the GC does, once every
    [Bigarray] slice handed out before the close is dead). *)

val is_closed : t -> bool

(** {1 Accessors} — little-endian, bounds-checked, raise {!Fault}. *)

val u8 : t -> int -> int
val u32 : t -> int -> int

val u64 : t -> int -> int
(** Raises {!Fault} [(Bounds _)] when the stored value exceeds the host's
    int range (it then cannot be a valid offset into any mappable file). *)

val sub_string : t -> pos:int -> len:int -> string
(** Copy a window out of the map (term bytes, small slices). *)

val crc32 : t -> pos:int -> len:int -> int
(** CRC-32 of a window, computed directly over the mapped pages. *)

val crc32_update : int -> t -> pos:int -> len:int -> int
(** Incremental form, for checksums spanning discontiguous windows (a
    term's nodes slice followed by its tfs slice). *)
