(* Read-only mmap with typed failures and an explicit close.

   The handle owns the Bigarray produced by Unix.map_file; every
   accessor checks the closed flag and the byte range first, so a reader
   holding a retired segment gets a typed Fault, never a read of memory
   the segment no longer vouches for.  The closed flag is an Atomic:
   close may race with readers on other domains, and the worst outcome
   of that race is one last well-bounded read of still-mapped pages. *)

type error =
  | Map_failed of string
  | Bounds of { what : string; pos : int; len : int; size : int }
  | Closed of string

exception Fault of error

type t = {
  m_path : string;
  ba : Crc32.bigstring;
  m_size : int;
  closed : bool Atomic.t;
}

let error_message = function
  | Map_failed msg -> "map failed: " ^ msg
  | Bounds { what; pos; len; size } ->
      Printf.sprintf "mapped read out of bounds: %s of %d bytes at %d in a %d-byte map"
        what len pos size
  | Closed path -> Printf.sprintf "mapped segment %s used after close" path

let map path =
  match
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        if size = 0 then Error (Map_failed (path ^ ": empty file"))
        else
          let ga =
            Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]
          in
          Ok
            {
              m_path = path;
              ba = Bigarray.array1_of_genarray ga;
              m_size = size;
              closed = Atomic.make false;
            })
  with
  | r -> r
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Map_failed (Printf.sprintf "%s: %s: %s" path fn (Unix.error_message e)))
  | exception Sys_error msg -> Error (Map_failed msg)

let size t = t.m_size
let path t = t.m_path
let close t = Atomic.set t.closed true
let is_closed t = Atomic.get t.closed

let check t ~what ~pos ~len =
  if Atomic.get t.closed then raise (Fault (Closed t.m_path));
  if pos < 0 || len < 0 || pos + len > t.m_size then
    raise (Fault (Bounds { what; pos; len; size = t.m_size }))

let u8 t pos =
  check t ~what:"u8" ~pos ~len:1;
  Char.code (Bigarray.Array1.get t.ba pos)

let u32 t pos =
  check t ~what:"u32" ~pos ~len:4;
  let b i = Char.code (Bigarray.Array1.get t.ba (pos + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let u64 t pos =
  check t ~what:"u64" ~pos ~len:8;
  let b i = Char.code (Bigarray.Array1.get t.ba (pos + i)) in
  (* The host int is 63-bit: a value with the top two bytes' high bits
     set cannot be represented, and cannot be a valid file offset
     either, so it is reported as a bounds fault. *)
  if b 7 land 0xC0 <> 0 then
    raise (Fault (Bounds { what = "u64"; pos; len = 8; size = t.m_size }));
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) lor (b 4 lsl 32)
  lor (b 5 lsl 40) lor (b 6 lsl 48) lor (b 7 lsl 56)

let sub_string t ~pos ~len =
  check t ~what:"sub_string" ~pos ~len;
  (* Bulk copy with the range checked once: segment opens copy whole
     regions (the directory can be megabytes) through this. *)
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get t.ba (pos + i))
  done;
  Bytes.unsafe_to_string b

let crc32 t ~pos ~len =
  check t ~what:"crc32" ~pos ~len;
  Crc32.big_sub t.ba ~pos ~len

let crc32_update crc t ~pos ~len =
  check t ~what:"crc32" ~pos ~len;
  Crc32.update_big crc t.ba ~pos ~len
