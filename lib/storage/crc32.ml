(* Table-driven CRC-32 over the reflected polynomial 0xEDB88320.  Checksums
   are kept in plain ints (always < 2^32, so exact on 64-bit OCaml). *)

(* Built eagerly at module init: [Lazy.force] is not domain-safe and index
   segments may be loaded from several domains. *)
let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

(* The loops below use unsafe reads: the range is checked once up
   front, and the per-byte bounds check would dominate the whole
   computation (segment opens CRC megabytes of directory). *)
let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    Xk_util.Err.invalid "Crc32.update";
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table
        ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let sub s ~pos ~len = update 0 s ~pos ~len
let string s = sub s ~pos:0 ~len:(String.length s)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Same loop over a mapped byte array: verifying a column checksum reads
   the mapped pages directly instead of copying them into a string. *)
let update_big crc (b : bigstring) ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim b then
    Xk_util.Err.invalid "Crc32.update_big";
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table
        ((!c lxor Char.code (Bigarray.Array1.unsafe_get b i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let big_sub b ~pos ~len = update_big 0 b ~pos ~len
