(* Join-based top-K keyword search (Section IV-C).

   Inverted lists are read in descending damped-score order: per list, rows
   are grouped by sequence length (Figure 7) and the column order is
   recovered by merging the group cursors (within a group the damping
   factor is a common constant, so the local-score order is the damped
   order at every level).

   Columns are processed bottom-up, each through the top-K star join of
   Section IV-B: pulled entries land in a hash bucket keyed by the JDewey
   number, a value whose k slots fill becomes a generated result, and
   generated results are emitted as soon as their score reaches the
   threshold of all unseen results - the star-join bound within the
   current column combined with the static per-column ceilings of the
   shallower columns (including the paper's column-skip rule, which the
   precomputed ceilings implement implicitly).

   Semantic pruning: cursors skip rows erased at deeper levels; when a
   column drains without the K results being found, a merge join over the
   full columns erases every matched value's runs (the range exclusion of
   Section III-E) before the next column starts.  A column that ends early
   - because the K results were emitted - never pays for that scan, which
   is exactly where the top-K algorithm wins. *)

type threshold = Classic | Tight

type stats = {
  mutable pulled : int;
  mutable dead_skipped : int;
  mutable columns : int;
  mutable generated : int;
  mutable early_exit_level : int; (* 0 when every column was processed *)
}

let new_stats () =
  { pulled = 0; dead_skipped = 0; columns = 0; generated = 0; early_exit_level = 0 }

type hit = Join_query.hit = { level : int; value : int; score : float }

type semantics = Join_query.semantics = Elca | Slca

type cursor = {
  rows : int array;
  dfactor : float; (* d(group_len - level) *)
  mutable pos : int;
}

type entry = { slots : float array; mutable mask : int; mutable filled : int }

let topk ?stats ?(threshold = Tight) ?(semantics = Elca)
    ?(budget = Xk_resilience.Budget.unlimited)
    (slists : Xk_index.Score_list.t array) damping ~k:want : hit list =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let k = Array.length slists in
  if k = 0 then Xk_util.Err.invalid "Topk_keyword.topk: no lists";
  let jls = Array.map Xk_index.Score_list.jlist slists in
  if Array.exists (fun jl -> Xk_index.Jlist.length jl = 0) jls then []
  else begin
    let lmin =
      Array.fold_left (fun m jl -> min m (Xk_index.Jlist.max_len jl)) max_int
        jls
    in
    (* Static per-column ceilings: up(l) = sum_i ms_i(l); up_prefix(l) =
       max_{l' <= l} up(l') bounds every result of columns 1..l. *)
    let up = Array.make (lmin + 1) neg_infinity in
    for level = 1 to lmin do
      let s = ref 0. in
      Array.iter
        (fun sl ->
          s := !s +. Xk_index.Score_list.max_damped sl ~level)
        slists;
      up.(level) <- !s
    done;
    let up_prefix = Array.make (lmin + 1) neg_infinity in
    for level = 1 to lmin do
      up_prefix.(level) <- Float.max up_prefix.(level - 1) up.(level)
    done;
    let erased = Array.init k (fun _ -> Erased.create ()) in
    let blocked : hit Xk_util.Heap.t = Xk_util.Heap.create () in
    let out = ref [] and emitted = ref 0 in
    let finished = ref false in
    let level = ref lmin in
    (* Anytime execution: the budget is polled at column entry and on
       every pull; once it trips, the loops unwind and the results already
       emitted - each confirmed against the unseen-results threshold - are
       returned as a valid prefix of the full top-K. *)
    while not !finished && !level >= 1 && Xk_resilience.Budget.alive budget do
      let l = !level in
      stats.columns <- stats.columns + 1;
      (* Dynamic refinement of the cross-column ceilings: with the
         exclusions applied so far, no future result can beat the sum of
         the per-list best damped scores over still-alive rows (each row
         peaks at the future column closest to its own depth).  The static
         ceilings ignore erasure; on correlated data almost everything
         below the current column is already dead and this bound collapses
         right after the deepest column - which is what lets the top-K
         join stop early where the complete join keeps scanning. *)
      let dyn_below =
        if l <= 1 then neg_infinity
        else begin
          let total = ref 0. in
          let any_empty = ref false in
          Array.iteri
            (fun i jl ->
              let best = ref neg_infinity in
              Erased.iter_alive erased.(i) ~lo:0 ~hi:(Xk_index.Jlist.length jl)
                (fun lo hi ->
                  for r = lo to hi - 1 do
                    let len = Xk_index.Jlist.row_len jl r in
                    let v =
                      Xk_index.Jlist.score jl r
                      *. Xk_score.Damping.apply damping (max 0 (len - l + 1))
                    in
                    if v > !best then best := v
                  done);
              if !best = neg_infinity then any_empty := true
              else total := !total +. !best)
            jls;
          if !any_empty then neg_infinity else !total
        end
      in
      (* Fresh cursors: every group of length >= l participates. *)
      let cursors =
        Array.map
          (fun sl ->
            let gs =
              Array.to_list (Xk_index.Score_list.groups sl)
              |> List.filter (fun (g : Xk_index.Score_list.group) -> g.len >= l)
            in
            Array.of_list
              (List.map
                 (fun (g : Xk_index.Score_list.group) ->
                   {
                     rows = g.rows;
                     dfactor = Xk_score.Damping.apply damping (g.len - l);
                     pos = 0;
                   })
                 gs))
          slists
      in
      (* Best cursor per list (highest next damped score), cached and
         refreshed only for the list just pulled from - this sits on the
         per-pull hot path. *)
      let cbest = Array.make k (-1) in
      let cscore = Array.make k neg_infinity in
      let refresh i =
        let best = ref (-1) and bs = ref neg_infinity in
        Array.iteri
          (fun ci c ->
            if c.pos < Array.length c.rows then begin
              let s = Xk_index.Jlist.score jls.(i) c.rows.(c.pos) *. c.dfactor in
              if s > !bs then begin
                bs := s;
                best := ci
              end
            end)
          cursors.(i);
        cbest.(i) <- !best;
        cscore.(i) <- !bs
      in
      for i = 0 to k - 1 do
        refresh i
      done;
      let list_next i = cscore.(i) in
      let bucket : (int, entry) Hashtbl.t = Hashtbl.create 256 in
      (* Values already generated this column: a value can recur in a
         cursor stream (several occurrences per list), and must not be
         generated twice. *)
      let completed : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      let group_max = Array.make (1 lsl k) neg_infinity in
      let column_threshold () =
        match threshold with
        | Classic ->
            (* HRJN-style: one advancing cursor, static maxima elsewhere. *)
            let best = ref neg_infinity in
            for i = 0 to k - 1 do
              let s = list_next i in
              if s > neg_infinity then begin
                let t = ref s in
                for j = 0 to k - 1 do
                  if j <> i then
                    t := !t +. Xk_index.Score_list.max_damped slists.(j) ~level:l
                done;
                if !t > !best then best := !t
              end
            done;
            !best
        | Tight ->
            let case1 = ref 0. in
            for j = 0 to k - 1 do
              case1 := !case1 +. list_next j
            done;
            let best = ref !case1 in
            for p = 1 to (1 lsl k) - 2 do
              if group_max.(p) > neg_infinity then begin
                let t = ref group_max.(p) in
                for j = 0 to k - 1 do
                  if p land (1 lsl j) = 0 then t := !t +. list_next j
                done;
                if !t > !best then best := !t
              end
            done;
            !best
      in
      let below_bound =
        if l > 1 then Float.min up_prefix.(l - 1) dyn_below else neg_infinity
      in
      let global_threshold () = Float.max (column_threshold ()) below_bound in
      let flush () =
        let rec go () =
          if !emitted < want then
            match Xk_util.Heap.peek blocked with
            | Some (score, h) when score >= global_threshold () ->
                ignore (Xk_util.Heap.pop blocked);
                out := h :: !out;
                incr emitted;
                go ()
            | Some _ | None -> ()
        in
        go ()
      in
      let column_exhausted () = Array.for_all (fun b -> b < 0) cbest in
      let rr = ref 0 in
      while
        !emitted < want
        && not (column_exhausted ())
        && Xk_resilience.Budget.alive budget
      do
        (* List choice (Section IV-B): round-robin until K results are
           generated, then the list with the highest next score. *)
        let generated = !emitted + Xk_util.Heap.size blocked in
        let i =
          if generated < want then begin
            let found = ref (-1) and tries = ref 0 in
            while !found < 0 && !tries < k do
              let c = !rr mod k in
              rr := !rr + 1;
              if cbest.(c) >= 0 then found := c;
              incr tries
            done;
            !found
          end
          else begin
            let best = ref (-1) and bs = ref neg_infinity in
            for j = 0 to k - 1 do
              if cbest.(j) >= 0 && cscore.(j) > !bs then begin
                best := j;
                bs := cscore.(j)
              end
            done;
            !best
          end
        in
        assert (i >= 0);
        let c = cursors.(i).(cbest.(i)) in
        let row = c.rows.(c.pos) in
        c.pos <- c.pos + 1;
        refresh i;
        stats.pulled <- stats.pulled + 1;
        if Erased.is_dead erased.(i) row then
          stats.dead_skipped <- stats.dead_skipped + 1
        else begin
          let value = (Xk_index.Jlist.seq jls.(i) row).(l - 1) in
          let s = Xk_index.Jlist.score jls.(i) row *. c.dfactor in
          if Hashtbl.mem completed value then ()
          else begin
          let e =
            match Hashtbl.find_opt bucket value with
            | Some e -> e
            | None ->
                let e =
                  { slots = Array.make k neg_infinity; mask = 0; filled = 0 }
                in
                Hashtbl.add bucket value e;
                e
          in
          if e.slots.(i) = neg_infinity then begin
            e.slots.(i) <- s;
            e.mask <- e.mask lor (1 lsl i);
            e.filled <- e.filled + 1;
            if e.filled = k then begin
              let total = Array.fold_left ( +. ) 0. e.slots in
              Hashtbl.remove bucket value;
              Hashtbl.add completed value ();
              (* SLCA (Section III-F): the value is disqualified if any of
                 its runs contains a row erased by a deeper match - that
                 row witnesses a descendant containing all keywords. *)
              let accept =
                match semantics with
                | Elca -> true
                | Slca ->
                    let clean = ref true in
                    Array.iteri
                      (fun j jl ->
                        match
                          Xk_index.Column.find
                            (Xk_index.Jlist.column jl ~level:l)
                            value
                        with
                        | Some r ->
                            if
                              Erased.covered erased.(j) ~lo:r.start_row
                                ~hi:(r.start_row + r.count)
                              > 0
                            then clean := false
                        | None -> clean := false)
                      jls;
                    !clean
              in
              if accept then begin
                stats.generated <- stats.generated + 1;
                Xk_util.Heap.push blocked total
                  { level = l; value; score = total }
              end
            end
            else begin
              let partial = ref 0. in
              Array.iter
                (fun v -> if v > neg_infinity then partial := !partial +. v)
                e.slots;
              if !partial > group_max.(e.mask) then
                group_max.(e.mask) <- !partial
            end
          end
          end
        end;
        flush ()
      done;
      if !emitted >= want then begin
        stats.early_exit_level <- l;
        finished := true
      end
      else begin
        (* Column drained: apply the range exclusion before moving up.
           The exclusion scan itself is budgeted; if it expires mid-join
           the kills are discarded and the outer loop unwinds with the
           confirmed results. *)
        let cols = Array.map (fun jl -> Xk_index.Jlist.column jl ~level:l) jls in
        match Level_join.join ~budget ~plan:Level_join.Force_merge cols with
        | exception Xk_resilience.Budget.Expired -> ()
        | matches ->
            let kills = Array.make k [] in
            List.iter
              (fun (m : Level_join.match_) ->
                for i = 0 to k - 1 do
                  let r = m.runs.(i) in
                  kills.(i) <- (r.start_row, r.start_row + r.count) :: kills.(i)
                done)
              matches;
            for i = 0 to k - 1 do
              Erased.add_batch erased.(i) (List.rev kills.(i))
            done;
            level := l - 1
      end
    done;
    (* All columns processed: no unseen results remain - but a tripped
       budget means blocked results were never confirmed, so they stay
       unemitted and the prefix property is preserved. *)
    while
      !emitted < want
      && not (Xk_util.Heap.is_empty blocked)
      && not (Xk_resilience.Budget.exhausted budget)
    do
      match Xk_util.Heap.pop blocked with
      | Some (_, h) ->
          out := h :: !out;
          incr emitted
      | None -> ()
    done;
    List.rev !out
  end
