(* Public facade: build an index from an XML document and run keyword
   queries under the ELCA or SLCA semantics, with any of the implemented
   algorithms, in complete-result or top-K mode. *)

type t = { index : Xk_index.Index.t }

type semantics = Elca | Slca

type algorithm =
  | Join_based   (* Algorithm 1 (this paper) *)
  | Stack_based  (* DIL-style merge [5], [6] *)
  | Index_based  (* indexed lookup [6], [8] *)
  | Oracle       (* definitional ground truth (testing) *)

type topk_algorithm =
  | Topk_join           (* the paper's join-based top-K (Section IV) *)
  | Complete_then_sort  (* Algorithm 1 + sort, the paper's "general" *)
  | Rdil_baseline       (* RDIL [5] *)
  | Hybrid              (* Section V-D cardinality-routed choice *)

let create ?damping (doc : Xk_xml.Xml_tree.document) =
  let label = Xk_encoding.Labeling.label doc in
  { index = Xk_index.Index.build ?damping label }

let of_index index = { index }
let of_string ?damping s = create ?damping (Xk_xml.Xml_parser.parse_string_exn s)
let of_file ?damping path = create ?damping (Xk_xml.Xml_parser.parse_file_exn path)

let index t = t.index
let label t = Xk_index.Index.label t.index

(* Distinct term ids of the query keywords; [None] when a keyword does not
   occur in the corpus (the result set is empty then). *)
let resolve t words =
  let ids = List.filter_map (Xk_index.Index.term_id t.index) words in
  if List.length ids <> List.length words then None
  else
    (* Order the query's lists by the terms themselves, not by their
       numeric ids: ids reflect dictionary insertion order and so differ
       between index instances over the same corpus (e.g. shards).  A
       term-ordered plan keeps float summation order - and therefore
       scores, bit for bit - identical across sharded and unsharded
       execution. *)
    let by_term a b =
      String.compare
        (Xk_index.Index.term t.index a)
        (Xk_index.Index.term t.index b)
    in
    Some (List.sort_uniq by_term ids)

let node_of_join_hit t (h : Join_query.hit) =
  match Xk_encoding.Labeling.find (label t) ~depth:h.level ~jnum:h.value with
  | Some node -> { Xk_baselines.Hit.node; score = h.score }
  | None ->
      Xk_util.Err.unreachable
        "Engine.node_of_join_hit: join hit level/jnum has no labeled node"

let query ?(semantics = Elca) ?(algorithm = Join_based) ?plan ?budget t words :
    Xk_baselines.Hit.t list =
  match resolve t words with
  | None -> []
  | Some [] -> []
  | Some ids ->
      let hits =
        match algorithm with
        | Join_based ->
            let jls =
              Array.of_list (List.map (Xk_index.Index.jlist t.index) ids)
            in
            let sem =
              match semantics with
              | Elca -> Join_query.Elca
              | Slca -> Join_query.Slca
            in
            Join_query.run ?plan ?budget jls (Xk_index.Index.damping t.index) sem
            |> List.map (node_of_join_hit t)
        | Stack_based -> (
            match semantics with
            | Elca -> Xk_baselines.Stack.elca ?budget t.index ids
            | Slca -> Xk_baselines.Stack.slca ?budget t.index ids)
        | Index_based -> (
            match semantics with
            | Elca -> Xk_baselines.Indexed.elca ?budget t.index ids
            | Slca -> Xk_baselines.Indexed.slca ?budget t.index ids)
        | Oracle -> (
            match semantics with
            | Elca -> Xk_baselines.Oracle.elca t.index ids
            | Slca -> Xk_baselines.Oracle.slca t.index ids)
      in
      Xk_baselines.Hit.sort_desc hits

(* Top-K.  All algorithms support ELCA; the join-based ones also support
   SLCA (RDIL is ELCA-only and routes SLCA requests through complete
   evaluation). *)
let query_topk ?(semantics = Elca) ?(algorithm = Topk_join) ?stats ?budget t
    words ~k : Xk_baselines.Hit.t list =
  match resolve t words with
  | None -> []
  | Some [] -> []
  | Some ids ->
      let damping = Xk_index.Index.damping t.index in
      let jls = Array.of_list (List.map (Xk_index.Index.jlist t.index) ids) in
      let slists () =
        Array.of_list (List.map (Xk_index.Index.score_list t.index) ids)
      in
      let sem =
        match semantics with Elca -> Join_query.Elca | Slca -> Join_query.Slca
      in
      let level_width l = Xk_encoding.Labeling.level_width (label t) ~depth:l in
      let complete_then_sort () =
        Join_query.run ?budget jls damping sem
        |> List.map (node_of_join_hit t)
        |> Xk_baselines.Hit.top_k k
      in
      let hits =
        match algorithm with
        | Topk_join ->
            Topk_keyword.topk ?stats ~semantics:sem ?budget (slists ()) damping
              ~k
            |> List.map (node_of_join_hit t)
        | Complete_then_sort -> complete_then_sort ()
        | Rdil_baseline -> (
            match semantics with
            | Elca -> Xk_baselines.Rdil.topk ?budget t.index ids ~k
            | Slca -> complete_then_sort ())
        | Hybrid ->
            Hybrid.topk ?stats ~semantics:sem ?budget (slists ()) damping
              ~level_width ~k
            |> List.map (node_of_join_hit t)
      in
      Xk_baselines.Hit.sort_desc hits

(* Batched requests: one self-contained query each, so heterogeneous
   workloads travel through a single batch.  [query_batch] is the
   sequential reference that the parallel service (Xk_exec) reproduces. *)

type mode = Complete of algorithm | Topk of topk_algorithm * int

type request = {
  req_words : string list;
  req_semantics : semantics;
  req_mode : mode;
  req_deadline_ms : float option;
}

let complete_request ?(semantics = Elca) ?(algorithm = Join_based) ?deadline_ms
    words =
  { req_words = words; req_semantics = semantics;
    req_mode = Complete algorithm; req_deadline_ms = deadline_ms }

let topk_request ?(semantics = Elca) ?(algorithm = Topk_join) ?deadline_ms ~k
    words =
  { req_words = words; req_semantics = semantics;
    req_mode = Topk (algorithm, k); req_deadline_ms = deadline_ms }

let run_request t (r : request) =
  match r.req_mode with
  | Complete algorithm ->
      query ~semantics:r.req_semantics ~algorithm t r.req_words
  | Topk (algorithm, k) ->
      query_topk ~semantics:r.req_semantics ~algorithm t r.req_words ~k

let query_batch t reqs = List.map (run_request t) reqs

(* Budget-aware dispatch.  The join-based top-K algorithms are anytime:
   an exhausted budget makes them return the confirmed prefix of the full
   top-K, reported as [Partial].  Complete evaluations (and RDIL, whose
   blocked candidates are unconfirmed) cannot return a meaningful prefix,
   so budget expiry there surfaces as [Timed_out]. *)
type run_outcome =
  | Done of Xk_baselines.Hit.t list
  | Partial of Xk_baselines.Hit.t list
  | Timed_out

let budget_of_request (r : request) =
  match r.req_deadline_ms with
  | None -> Xk_resilience.Budget.unlimited
  | Some deadline_ms -> Xk_resilience.Budget.create ~deadline_ms ()

let run_request_outcome ?budget t (r : request) =
  let budget =
    match budget with Some b -> b | None -> budget_of_request r
  in
  let anytime f =
    let hits = f () in
    if Xk_resilience.Budget.exhausted budget then Partial hits else Done hits
  in
  let complete f =
    match f () with
    | hits -> Done hits
    | exception Xk_resilience.Budget.Expired -> Timed_out
  in
  let sem = r.req_semantics in
  match r.req_mode with
  | Complete algorithm ->
      complete (fun () -> query ~semantics:sem ~algorithm ~budget t r.req_words)
  | Topk (((Topk_join | Hybrid) as algorithm), k) ->
      anytime (fun () ->
          query_topk ~semantics:sem ~algorithm ~budget t r.req_words ~k)
  | Topk (((Complete_then_sort | Rdil_baseline) as algorithm), k) ->
      complete (fun () ->
          query_topk ~semantics:sem ~algorithm ~budget t r.req_words ~k)

let element_of_hit t (h : Xk_baselines.Hit.t) =
  Xk_encoding.Labeling.element_of (label t) h.node

(* Per-keyword witness: the occurrence below the result with the best
   damped contribution (no exclusion applied - presentation, not
   semantics). *)
type witness = { keyword : string; occurrence : int; contribution : float }

let explain t words (h : Xk_baselines.Hit.t) : witness list =
  let lab = label t in
  let damping = Xk_index.Index.damping t.index in
  let u_dewey = Xk_encoding.Labeling.dewey lab h.node in
  let u_depth = Xk_encoding.Labeling.depth lab h.node in
  List.filter_map
    (fun word ->
      match Xk_index.Index.term_id t.index word with
      | None -> None
      | Some id ->
          let p = Xk_index.Index.posting t.index id in
          let lo, hi = Xk_index.Posting.subtree_range p u_dewey in
          let best = ref None in
          for r = lo to hi - 1 do
            let depth = Array.length (Xk_index.Posting.dewey p r) in
            let c =
              Xk_index.Posting.score p r
              *. Xk_score.Damping.apply damping (depth - u_depth)
            in
            match !best with
            | Some (_, bc) when bc >= c -> ()
            | _ -> best := Some (Xk_index.Posting.node p r, c)
          done;
          Option.map
            (fun (occurrence, contribution) ->
              { keyword = word; occurrence; contribution })
            !best)
    words

(* A short text snippet around each witness, for result display. *)
let snippet ?(width = 50) t words (h : Xk_baselines.Hit.t) =
  let lab = label t in
  List.filter_map
    (fun (w : witness) ->
      match Xk_encoding.Labeling.element_of lab w.occurrence with
      | None -> None
      | Some e ->
          let txt = Xk_xml.Xml_tree.text_content e in
          let txt =
            if String.length txt <= width then txt
            else begin
              (* Center the snippet on the keyword when present. *)
              let lower = String.lowercase_ascii txt in
              let kw = String.lowercase_ascii w.keyword in
              let kn = String.length kw and n = String.length lower in
              let pos = ref 0 in
              (try
                 for i = 0 to n - kn do
                   if String.sub lower i kn = kw then begin
                     pos := i;
                     raise Exit
                   end
                 done
               with Exit -> ());
              let start = max 0 (min !pos (String.length txt - width)) in
              String.sub txt start width
            end
          in
          Some (w.keyword, txt))
    (explain t words h)

let pp_hit t ppf (h : Xk_baselines.Hit.t) =
  match element_of_hit t h with
  | Some e ->
      Fmt.pf ppf "%.4f %a" h.score (Xk_xml.Xml_print.pp_element_summary ?max_text:None) e
  | None -> Fmt.pf ppf "%.4f <node %d>" h.score h.node
