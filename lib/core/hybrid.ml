(* Hybrid index discussion of Section V-D: with both the JDewey-ordered
   and the score-ordered lists available, choose the top-K join or the
   complete join from join-cardinality estimation - "the top-K algorithm
   should only be used when the result size is estimated to be large".

   The estimator is the textbook equi-join cardinality over per-level key
   domains: at level l with W_l nodes, the expected number of matched
   values is prod_i |C_i(l)| / W_l^(k-1), where |C_i(l)| is the number of
   distinct JDewey numbers (runs) list i has at level l.  The per-level
   estimates are summed; keyword correlation shows up directly as the
   ratio of actual to independent co-occurrence, so correlated keywords
   yield large estimates and route to the top-K join, matching Figure 10's
   crossover. *)

let estimate_results (lists : Xk_index.Jlist.t array) ~level_width =
  let k = Array.length lists in
  if k = 0 || Array.exists (fun jl -> Xk_index.Jlist.length jl = 0) lists then 0.
  else begin
    let lmin =
      Array.fold_left (fun m jl -> min m (Xk_index.Jlist.max_len jl)) max_int
        lists
    in
    let total = ref 0. in
    for l = 1 to lmin do
      let w = float_of_int (max 1 (level_width l)) in
      let est = ref 1. in
      Array.iter
        (fun jl ->
          let c = Xk_index.Jlist.column jl ~level:l in
          est := !est *. float_of_int (Xk_index.Column.num_runs c))
        lists;
      total := !total +. (!est /. (w ** float_of_int (k - 1)))
    done;
    !total
  end

type choice = Use_topk | Use_complete

(* Prefer the top-K join only when the expected result count comfortably
   exceeds K; otherwise the top-K join would end up draining the columns
   anyway and the complete join's merge scans are cheaper. *)
let default_margin = 4.

let choose ?(margin = default_margin) (lists : Xk_index.Jlist.t array)
    ~level_width ~k:want =
  let est = estimate_results lists ~level_width in
  if est >= margin *. float_of_int want then Use_topk else Use_complete

let topk ?stats ?margin ?(semantics = Join_query.Elca) ?budget
    (slists : Xk_index.Score_list.t array) damping ~level_width ~k:want :
    Join_query.hit list =
  let jls = Array.map Xk_index.Score_list.jlist slists in
  match choose ?margin jls ~level_width ~k:want with
  | Use_topk ->
      Topk_keyword.topk ?stats ~semantics ?budget slists damping ~k:want
  | Use_complete -> (
      (* The complete route has no confirmed prefix mid-run; on expiry the
         anytime contract degrades to the empty partial result. *)
      match Join_query.run ?budget jls damping semantics with
      | exception Xk_resilience.Budget.Expired -> []
      | all ->
          let sorted =
            List.sort
              (fun (a : Join_query.hit) b ->
                let c = Float.compare b.score a.score in
                if c <> 0 then c
                else
                  let c = Int.compare a.level b.level in
                  if c <> 0 then c else Int.compare a.value b.value)
              all
          in
          List.filteri (fun i _ -> i < want) sorted)
