(* Per-level k-way join over JDewey columns (Section III-B/III-C).

   The join is a star equi-join on JDewey numbers with set semantics (runs
   already group duplicates).  The plan is left-deep from the smallest to
   the largest column; each subsequent join picks the merge join or the
   index join from the sizes of the current intermediate result and the
   next column - the dynamic optimization of Section III-C.  [Force_merge]
   and [Force_index] exist for the ablation benches. *)

type plan = Dynamic | Force_merge | Force_index

(* Intermediate result size must be this many times smaller than the next
   column before the index join pays for its logarithmic probes. *)
let index_join_ratio = 16

type match_ = {
  value : int;
  runs : Xk_index.Column.run array; (* aligned with the input column order *)
}

type stats = {
  mutable merge_joins : int;
  mutable index_joins : int;
  mutable probes : int;
  mutable scanned : int;
}

let new_stats () = { merge_joins = 0; index_joins = 0; probes = 0; scanned = 0 }

(* Values (with their runs) surviving a two-way merge between the current
   intermediate and a column.  The budget is polled once per intermediate
   value - granular enough to stop a long scan within milliseconds. *)
let merge_step budget stats inter (col : Xk_index.Column.t) =
  stats.merge_joins <- stats.merge_joins + 1;
  let runs = Xk_index.Column.runs col in
  let n = Array.length runs in
  let out = ref [] in
  let j = ref 0 in
  List.iter
    (fun (value, acc) ->
      Xk_resilience.Budget.check budget;
      while !j < n && runs.(!j).Xk_index.Column.value < value do
        incr j;
        stats.scanned <- stats.scanned + 1
      done;
      if !j < n && runs.(!j).Xk_index.Column.value = value then
        out := (value, runs.(!j) :: acc) :: !out)
    inter;
  List.rev !out

let index_step budget stats inter (col : Xk_index.Column.t) =
  stats.index_joins <- stats.index_joins + 1;
  List.filter_map
    (fun (value, acc) ->
      Xk_resilience.Budget.check budget;
      stats.probes <- stats.probes + 1;
      match Xk_index.Column.find col value with
      | Some r -> Some (value, r :: acc)
      | None -> None)
    inter

let join ?stats ?(budget = Xk_resilience.Budget.unlimited) ~plan
    (cols : Xk_index.Column.t array) : match_ list =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let k = Array.length cols in
  if k = 0 then Xk_util.Err.invalid "Level_join.join: no columns";
  (* Left-deep order: smallest column first (Section III-C). *)
  let order = Array.init k (fun i -> i) in
  Array.sort
    (fun a b ->
      Int.compare (Xk_index.Column.num_runs cols.(a))
        (Xk_index.Column.num_runs cols.(b)))
    order;
  if Xk_index.Column.is_empty cols.(order.(0)) then []
  else begin
    let first = order.(0) in
    let inter =
      ref
        (Array.to_list
           (Array.map
              (fun r -> (r.Xk_index.Column.value, [ r ]))
              (Xk_index.Column.runs cols.(first))))
    in
    for oi = 1 to k - 1 do
      let col = cols.(order.(oi)) in
      let inter_size = List.length !inter in
      let use_index =
        match plan with
        | Force_merge -> false
        | Force_index -> true
        | Dynamic ->
            inter_size * index_join_ratio < Xk_index.Column.num_runs col
      in
      inter :=
        if use_index then index_step budget stats !inter col
        else merge_step budget stats !inter col
    done;
    (* Re-align each match's runs with the original column order.  The
       accumulators were consed in processing order, so they are reversed
       relative to [order]. *)
    List.map
      (fun (value, acc) ->
        let runs =
          Array.make k
            { Xk_index.Column.value = 0; start_row = 0; count = 0 }
        in
        List.iteri
          (fun pos r ->
            (* [acc] is reversed: position 0 is the last processed list. *)
            runs.(order.(k - 1 - pos)) <- r)
          acc;
        { value; runs })
      !inter
  end
