(* The range-checking structure of Section III-E: per inverted list, the
   set of row intervals erased by the semantic pruning.

   Intervals are kept sorted and disjoint.  The paper's containment
   property (a queried range either contains an erased range or is disjoint
   from it - Figure 4(b) cannot happen) holds for the join algorithms'
   usage, but the implementation handles partial overlap anyway so it can
   double as a general interval set. *)

type t = {
  mutable lo : int array; (* inclusive *)
  mutable hi : int array; (* exclusive *)
  mutable len : int;
  mutable covered_total : int;
}

let create () = { lo = Array.make 8 0; hi = Array.make 8 0; len = 0; covered_total = 0 }

let length t = t.len
let covered_total t = t.covered_total

(* Index of the first interval with hi > x, i.e. the first interval that
   can contain or follow position x. *)
let first_after t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.hi.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let is_dead t row =
  let i = first_after t row in
  i < t.len && t.lo.(i) <= row

(* Total erased positions inside [lo, hi). *)
let covered t ~lo ~hi =
  if hi <= lo then 0
  else begin
    let acc = ref 0 in
    let i = ref (first_after t lo) in
    while !i < t.len && t.lo.(!i) < hi do
      let l = max t.lo.(!i) lo and h = min t.hi.(!i) hi in
      if h > l then acc := !acc + (h - l);
      incr i
    done;
    !acc
  end

let alive t ~lo ~hi = hi - lo - covered t ~lo ~hi

let ensure_capacity t =
  if t.len = Array.length t.lo then begin
    let cap = max 16 (2 * t.len) in
    let lo = Array.make cap 0 and hi = Array.make cap 0 in
    Array.blit t.lo 0 lo 0 t.len;
    Array.blit t.hi 0 hi 0 t.len;
    t.lo <- lo;
    t.hi <- hi
  end

(* Insert [lo, hi), merging with any intervals it touches (adjacent
   intervals coalesce, keeping the representation canonical). *)
let add t ~lo ~hi =
  if hi > lo then begin
    let i = first_after t lo in
    (* A left neighbour that exactly touches [lo] joins the merge. *)
    let i = if i > 0 && t.hi.(i - 1) = lo then i - 1 else i in
    (* Intervals i..j-1 overlap or touch [lo, hi). *)
    let j = ref i in
    while !j < t.len && t.lo.(!j) <= hi do
      incr j
    done;
    let j = !j in
    if i = j then begin
      (* Pure insertion at position i. *)
      ensure_capacity t;
      Array.blit t.lo i t.lo (i + 1) (t.len - i);
      Array.blit t.hi i t.hi (i + 1) (t.len - i);
      t.lo.(i) <- lo;
      t.hi.(i) <- hi;
      t.len <- t.len + 1;
      t.covered_total <- t.covered_total + (hi - lo)
    end
    else begin
      let merged_lo = min lo t.lo.(i) in
      let merged_hi = max hi t.hi.(j - 1) in
      let removed = ref 0 in
      for x = i to j - 1 do
        removed := !removed + (t.hi.(x) - t.lo.(x))
      done;
      t.lo.(i) <- merged_lo;
      t.hi.(i) <- merged_hi;
      if j < t.len then begin
        Array.blit t.lo j t.lo (i + 1) (t.len - j);
        Array.blit t.hi j t.hi (i + 1) (t.len - j)
      end;
      t.len <- t.len - (j - i - 1);
      t.covered_total <- t.covered_total + (merged_hi - merged_lo) - !removed
    end
  end

(* Merge a sorted batch of intervals in one linear pass.  The join
   algorithms erase whole levels at a time (matches arrive in ascending
   row order), and one-at-a-time insertion would shift the tail arrays
   quadratically. *)
let add_batch t (batch : (int * int) list) =
  match batch with
  | [] -> ()
  | _ ->
      let n = t.len in
      let m = List.length batch in
      let cap = n + m in
      let lo = Array.make (max cap 8) 0 and hi = Array.make (max cap 8) 0 in
      let out = ref 0 in
      let covered = ref 0 in
      let push l h =
        if !out > 0 && l <= hi.(!out - 1) then begin
          if h > hi.(!out - 1) then begin
            covered := !covered + (h - hi.(!out - 1));
            hi.(!out - 1) <- h
          end
        end
        else begin
          lo.(!out) <- l;
          hi.(!out) <- h;
          covered := !covered + (h - l);
          incr out
        end
      in
      let i = ref 0 in
      let rec go batch =
        match batch with
        | [] ->
            while !i < n do
              push t.lo.(!i) t.hi.(!i);
              incr i
            done
        | (bl, bh) :: rest ->
            if bh <= bl then go rest
            else if !i < n && t.lo.(!i) <= bl then begin
              push t.lo.(!i) t.hi.(!i);
              incr i;
              go batch
            end
            else begin
              push bl bh;
              go rest
            end
      in
      go batch;
      t.lo <- lo;
      t.hi <- hi;
      t.len <- !out;
      t.covered_total <- !covered

(* Iterate the alive (un-erased) sub-ranges of [lo, hi) in order - the
   scoring pass of the join algorithms walks runs this way instead of
   testing rows one by one. *)
let iter_alive t ~lo ~hi f =
  if hi > lo then begin
    let pos = ref lo in
    let i = ref (first_after t lo) in
    while !pos < hi do
      if !i < t.len && t.lo.(!i) < hi then begin
        if t.lo.(!i) > !pos then f !pos (min t.lo.(!i) hi);
        pos := max !pos t.hi.(!i);
        incr i
      end
      else begin
        f !pos hi;
        pos := hi
      end
    done
  end

let to_list t =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((t.lo.(i), t.hi.(i)) :: acc)
  in
  go (t.len - 1) []
