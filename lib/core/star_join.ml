(* Top-K star join (Section IV-B), in its relational form: k relations of
   (id, score) tuples, each sorted by descending score, star-joined on id
   with the aggregate score Sum.

   Two thresholds over the unseen results are implemented:

   - [Classic]: the HRJN bound of [21], max_i (s^i + sum_{j<>i} s_m^j),
     using the per-relation maximum scores s_m;
   - [Tight]: the paper's bound, max_P (ms(G_P) + sum_{j notin P} s^j),
     grouping the partially joined tuples in the hash bucket by the set P
     of relations already seen.

   The per-group maxima ms(G_P) are maintained monotonically (they are not
   decreased when a tuple leaves its group), which keeps them upper bounds
   - the threshold may be slightly conservative but never unsafe. *)

type threshold = Classic | Tight

type relation = { keys : int array; scores : float array }
(* sorted by descending score; keys unique within a relation *)

type result = { key : int; total : float }

type stats = {
  mutable pulled : int;  (* sorted accesses *)
  mutable emitted : int;
  mutable bucket_peak : int;
}

let new_stats () = { pulled = 0; emitted = 0; bucket_peak = 0 }

type entry = { slots : float array; mutable mask : int; mutable filled : int }

let relation ~keys ~scores =
  let n = Array.length keys in
  if Array.length scores <> n then Xk_util.Err.invalid "Star_join.relation";
  for i = 1 to n - 1 do
    if scores.(i) > scores.(i - 1) then
      Xk_util.Err.invalid "Star_join.relation: scores must be descending"
  done;
  { keys; scores }

let topk ?stats ?(threshold = Tight)
    ?(budget = Xk_resilience.Budget.unlimited) (rels : relation array)
    ~k:want : result list =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let k = Array.length rels in
  if k = 0 then Xk_util.Err.invalid "Star_join.topk: no relations";
  let cursors = Array.make k 0 in
  let next_score i =
    if cursors.(i) >= Array.length rels.(i).scores then neg_infinity
    else rels.(i).scores.(cursors.(i))
  in
  let top_score i =
    if Array.length rels.(i).scores = 0 then neg_infinity
    else rels.(i).scores.(0)
  in
  let bucket : (int, entry) Hashtbl.t = Hashtbl.create 256 in
  (* Monotone per-subset maxima of partial sums, indexed by bitmask P. *)
  let group_max = Array.make (1 lsl k) neg_infinity in
  let blocked : result Xk_util.Heap.t = Xk_util.Heap.create () in
  let out = ref [] and emitted = ref 0 in
  let compute_threshold () =
    match threshold with
    | Classic ->
        let best = ref neg_infinity in
        for i = 0 to k - 1 do
          if next_score i > neg_infinity then begin
            let t = ref (next_score i) in
            for j = 0 to k - 1 do
              if j <> i then t := !t +. top_score j
            done;
            if !t > !best then best := !t
          end
        done;
        !best
    | Tight ->
        (* Case 1: ids unseen everywhere. *)
        let case1 = ref 0. in
        for j = 0 to k - 1 do
          case1 := !case1 +. next_score j
        done;
        (* Case 2: partially seen ids, grouped by subset. *)
        let best = ref !case1 in
        for p = 1 to (1 lsl k) - 2 do
          if group_max.(p) > neg_infinity then begin
            let t = ref group_max.(p) in
            for j = 0 to k - 1 do
              if p land (1 lsl j) = 0 then t := !t +. next_score j
            done;
            if !t > !best then best := !t
          end
        done;
        !best
  in
  let flush () =
    let rec go () =
      if !emitted < want then
        match Xk_util.Heap.peek blocked with
        | Some (total, r) when total >= compute_threshold () ->
            ignore (Xk_util.Heap.pop blocked);
            out := r :: !out;
            incr emitted;
            stats.emitted <- stats.emitted + 1;
            go ()
        | Some _ | None -> ()
    in
    go ()
  in
  let exhausted () =
    let all = ref true in
    for i = 0 to k - 1 do
      if cursors.(i) < Array.length rels.(i).keys then all := false
    done;
    !all
  in
  let rr = ref 0 in
  (* Anytime loop: when the budget trips, stop pulling - everything
     emitted so far beat the unseen-results bound and remains a valid
     top-|out| prefix. *)
  while !emitted < want && not (exhausted ()) && Xk_resilience.Budget.alive budget
  do
    (* Relation choice (Section IV-B): round-robin until K results exist,
       then the relation with the highest next score. *)
    let generated = !emitted + Xk_util.Heap.size blocked in
    let i =
      if generated < want then begin
        let tries = ref 0 and found = ref (-1) in
        while !found < 0 && !tries < k do
          let c = !rr mod k in
          rr := !rr + 1;
          if cursors.(c) < Array.length rels.(c).keys then found := c;
          incr tries
        done;
        !found
      end
      else begin
        let best = ref (-1) in
        for j = 0 to k - 1 do
          if
            cursors.(j) < Array.length rels.(j).keys
            && (!best < 0 || next_score j > next_score !best)
          then best := j
        done;
        !best
      end
    in
    assert (i >= 0);
    let pos = cursors.(i) in
    cursors.(i) <- pos + 1;
    stats.pulled <- stats.pulled + 1;
    let key = rels.(i).keys.(pos) and s = rels.(i).scores.(pos) in
    let e =
      match Hashtbl.find_opt bucket key with
      | Some e -> e
      | None ->
          let e =
            { slots = Array.make k neg_infinity; mask = 0; filled = 0 }
          in
          Hashtbl.add bucket key e;
          stats.bucket_peak <- max stats.bucket_peak (Hashtbl.length bucket);
          e
    in
    if e.slots.(i) = neg_infinity then begin
      e.slots.(i) <- s;
      e.mask <- e.mask lor (1 lsl i);
      e.filled <- e.filled + 1;
      if e.filled = k then begin
        let total = Array.fold_left ( +. ) 0. e.slots in
        Hashtbl.remove bucket key;
        Xk_util.Heap.push blocked total { key; total }
      end
      else begin
        let partial = ref 0. in
        Array.iter (fun v -> if v > neg_infinity then partial := !partial +. v) e.slots;
        if !partial > group_max.(e.mask) then group_max.(e.mask) <- !partial
      end
    end;
    flush ()
  done;
  (* Inputs exhausted: everything joinable has joined; drain the heap -
     unless the budget tripped, in which case blocked results were never
     confirmed against the threshold and must not be emitted. *)
  while
    !emitted < want
    && not (Xk_util.Heap.is_empty blocked)
    && not (Xk_resilience.Budget.exhausted budget)
  do
    match Xk_util.Heap.pop blocked with
    | Some (_, r) ->
        out := r :: !out;
        incr emitted;
        stats.emitted <- stats.emitted + 1
    | None -> ()
  done;
  List.rev !out
