(** Public facade: build an index over an XML document and run keyword
    queries under the ELCA or SLCA semantics, complete or top-K, with any
    of the implemented algorithms. *)

type t

type semantics = Elca | Slca

type algorithm =
  | Join_based   (** Algorithm 1 - the paper's contribution *)
  | Stack_based  (** document-order stack merge (XRank / DIL style) *)
  | Index_based  (** indexed lookup baseline *)
  | Oracle       (** definitional ground truth (testing) *)

type topk_algorithm =
  | Topk_join           (** the paper's join-based top-K (Section IV) *)
  | Complete_then_sort  (** Algorithm 1 + sort - the paper's "general" *)
  | Rdil_baseline       (** RDIL (ELCA only; SLCA falls back to complete) *)
  | Hybrid              (** Section V-D cardinality-routed choice *)

val create : ?damping:Xk_score.Damping.t -> Xk_xml.Xml_tree.document -> t
(** Parse nothing - label and index an in-memory document. *)

val of_string : ?damping:Xk_score.Damping.t -> string -> t
(** Parse, label and index an XML string.  Raises {!Xk_xml.Xml_parser.Error}
    on malformed input. *)

val of_file : ?damping:Xk_score.Damping.t -> string -> t

val of_index : Xk_index.Index.t -> t
(** Wrap a prebuilt (e.g. reloaded) index. *)

val index : t -> Xk_index.Index.t
val label : t -> Xk_encoding.Labeling.t

val query :
  ?semantics:semantics ->
  ?algorithm:algorithm ->
  ?plan:Level_join.plan ->
  ?budget:Xk_resilience.Budget.t ->
  t ->
  string list ->
  Xk_baselines.Hit.t list
(** Complete result set, best score first.  Unknown keywords yield an empty
    result; duplicate keywords collapse; matching is case-insensitive.
    All algorithms except [Oracle] poll [budget] in their hot loops and
    raise [Xk_resilience.Budget.Expired] on expiry (a complete result set
    has no meaningful prefix). *)

val query_topk :
  ?semantics:semantics ->
  ?algorithm:topk_algorithm ->
  ?stats:Topk_keyword.stats ->
  ?budget:Xk_resilience.Budget.t ->
  t ->
  string list ->
  k:int ->
  Xk_baselines.Hit.t list
(** The K best results, best first.  [Topk_join] and [Hybrid] are anytime:
    on budget expiry they return the confirmed results emitted so far — a
    prefix of the full top-K — without raising.  [Complete_then_sort] and
    [Rdil_baseline] raise [Xk_resilience.Budget.Expired] instead. *)

(** {1 Batched requests}

    A [request] is one self-contained query — keywords, semantics and
    evaluation mode — so heterogeneous workloads (complete and top-K,
    ELCA and SLCA, any algorithm) can travel through one batch. *)

type mode =
  | Complete of algorithm
  | Topk of topk_algorithm * int  (** algorithm and K *)

type request = {
  req_words : string list;
  req_semantics : semantics;
  req_mode : mode;
  req_deadline_ms : float option;
      (** wall-clock budget for this request; [None] = unlimited *)
}

val complete_request :
  ?semantics:semantics ->
  ?algorithm:algorithm ->
  ?deadline_ms:float ->
  string list ->
  request
(** Defaults: ELCA, join-based, no deadline. *)

val topk_request :
  ?semantics:semantics ->
  ?algorithm:topk_algorithm ->
  ?deadline_ms:float ->
  k:int ->
  string list ->
  request
(** Defaults: ELCA, the paper's join-based top-K, no deadline. *)

val run_request : t -> request -> Xk_baselines.Hit.t list
(** Dispatch one request through {!query} or {!query_topk}, ignoring
    [req_deadline_ms] — the unbudgeted sequential reference. *)

(** {2 Budget-aware dispatch} *)

type run_outcome =
  | Done of Xk_baselines.Hit.t list  (** ran to completion *)
  | Partial of Xk_baselines.Hit.t list
      (** budget expired mid-run; the hits are the confirmed prefix of the
          full top-K (anytime algorithms only) *)
  | Timed_out
      (** budget expired and the algorithm cannot return a partial result *)

val run_request_outcome :
  ?budget:Xk_resilience.Budget.t -> t -> request -> run_outcome
(** Run one request under a budget ([budget] overrides the one implied by
    [req_deadline_ms]).  Top-K via [Topk_join] or [Hybrid] degrades to
    [Partial]; all other modes report [Timed_out] on expiry. *)

val query_batch : t -> request list -> Xk_baselines.Hit.t list list
(** Sequential batch evaluation, one result list per request in order —
    the reference semantics that [Xk_exec.Query_service] must reproduce
    when it executes the same batch on a domain pool. *)

val element_of_hit : t -> Xk_baselines.Hit.t -> Xk_xml.Xml_tree.element option
(** The element to present for a result (a text-node result maps to its
    parent element). *)

type witness = {
  keyword : string;
  occurrence : int;  (** node index of the contributing occurrence *)
  contribution : float;  (** its damped local score *)
}

val explain : t -> string list -> Xk_baselines.Hit.t -> witness list
(** Per query keyword, the best-contributing occurrence below the result
    (presentation aid; no ELCA exclusion applied). *)

val snippet :
  ?width:int -> t -> string list -> Xk_baselines.Hit.t -> (string * string) list
(** Per keyword, a text snippet around its witness. *)

val pp_hit : t -> Format.formatter -> Xk_baselines.Hit.t -> unit
(** One-line rendering: score, tag and truncated text content. *)
