(** Erased-row interval set — the range-checking structure of paper
    Section III-E.  Intervals are half-open [lo, hi) over row indices of one
    inverted list. *)

type t

val create : unit -> t

val add : t -> lo:int -> hi:int -> unit
(** Insert an interval, merging with neighbours. *)

val add_batch : t -> (int * int) list -> unit
(** Insert many intervals in one linear merge.  The batch must be sorted
    ascending by start; intervals may overlap each other or existing
    content.  This is how the join algorithms apply a whole level's
    exclusions. *)

val iter_alive : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [iter_alive t ~lo ~hi f] calls [f sub_lo sub_hi] for each maximal
    un-erased sub-range of [lo, hi), in order. *)

val is_dead : t -> int -> bool

val covered : t -> lo:int -> hi:int -> int
(** Erased positions inside a range. *)

val alive : t -> lo:int -> hi:int -> int
(** Un-erased positions inside a range. *)

val length : t -> int
(** Number of stored (disjoint) intervals. *)

val covered_total : t -> int

val to_list : t -> (int * int) list
