(** Join-based top-K keyword search (paper Section IV-C): score-ordered
    length-grouped columns, a per-column top-K star join, cross-column
    ceilings (static, plus a dynamic alive-rows refinement), and the
    range-checked exclusion applied per drained column. *)

type threshold = Classic | Tight

type semantics = Join_query.semantics = Elca | Slca

type hit = Join_query.hit = { level : int; value : int; score : float }

type stats = {
  mutable pulled : int;        (** sorted accesses (including dead rows) *)
  mutable dead_skipped : int;  (** erased rows encountered by cursors *)
  mutable columns : int;       (** columns entered *)
  mutable generated : int;     (** results completed in the bucket *)
  mutable early_exit_level : int;
      (** the level at which K results were out (0 = ran to the root) *)
}

val new_stats : unit -> stats

val topk :
  ?stats:stats ->
  ?threshold:threshold ->
  ?semantics:semantics ->
  ?budget:Xk_resilience.Budget.t ->
  Xk_index.Score_list.t array ->
  Xk_score.Damping.t ->
  k:int ->
  hit list
(** The K best results, best first, identical (up to ties) to running
    {!Join_query.run} and keeping the K top scores - property-tested in
    [test/test_core.ml].

    Anytime: every emitted result was confirmed against the
    unseen-results threshold, so when the budget expires mid-run the
    function returns early with the results emitted so far - a valid
    prefix of the full top-K under the same scores (never raises
    [Budget.Expired]).  Use [Budget.exhausted] to detect the partial
    case. *)
