(** Top-K star join over ranked relations (paper Section IV-A/B): sorted
    access, hash-bucket matching, and a threshold over the unseen results
    that permits non-blocking emission. *)

type threshold =
  | Classic  (** the HRJN bound of Ilyas et al. *)
  | Tight    (** the paper's group-wise bound over partial results *)

type relation = { keys : int array; scores : float array }

type result = { key : int; total : float }

type stats = {
  mutable pulled : int;  (** sorted accesses performed *)
  mutable emitted : int;
  mutable bucket_peak : int;
}

val new_stats : unit -> stats

val relation : keys:int array -> scores:float array -> relation
(** Validates that scores are descending; keys must be unique within one
    relation. *)

val topk :
  ?stats:stats ->
  ?threshold:threshold ->
  ?budget:Xk_resilience.Budget.t ->
  relation array ->
  k:int ->
  result list
(** The K best star-join results (sum aggregate), best first.  Emits a
    result as soon as its total reaches the unseen-results bound.

    Anytime: if the budget expires mid-run the pull loop stops and the
    results emitted so far - a valid prefix of the full top-K - are
    returned; check [Budget.exhausted] to distinguish a partial return. *)
