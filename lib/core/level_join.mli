(** Per-level k-way star join over JDewey columns (paper Section III-B/C):
    left-deep from the smallest column, merge vs. index join chosen
    dynamically per step. *)

type plan =
  | Dynamic      (** Section III-C dynamic optimization *)
  | Force_merge  (** ablation: always merge join *)
  | Force_index  (** ablation: always index join *)

type match_ = {
  value : int;  (** the matched JDewey number *)
  runs : Xk_index.Column.run array;
      (** the value's run in every input column, in input order *)
}

type stats = {
  mutable merge_joins : int;
  mutable index_joins : int;
  mutable probes : int;
  mutable scanned : int;
}

val new_stats : unit -> stats

val join :
  ?stats:stats ->
  ?budget:Xk_resilience.Budget.t ->
  plan:plan ->
  Xk_index.Column.t array ->
  match_ list
(** Values present in every column, ascending, with set semantics (runs
    already group duplicate numbers).  The budget is polled once per
    intermediate value; raises {!Xk_resilience.Budget.Expired} when it
    runs out (complete-result semantics admit no partial answer). *)
