(* Algorithm 1: the join-based evaluation of complete ELCA/SLCA result
   sets (Sections III-B through III-F).

   Columns are joined bottom-up, from the deepest level every list reaches
   up to the root.  A matched JDewey number N at level l:

   - ELCA: is a result iff every list still has an un-erased row inside
     N's run (the |Ak| > |B2| + |B3| range check of Section III-E);
   - SLCA: is a result iff no run of N contains an erased row (Section
     III-F's ancestor pruning);

   and either way N's full runs are erased from every list, implementing
   the exclusion of subtrees that already contain all keywords. *)

type semantics = Elca | Slca

type hit = { level : int; value : int; score : float }

let max_alive_damped (jl : Xk_index.Jlist.t) damping (erased : Erased.t)
    (run : Xk_index.Column.run) ~level =
  let best = ref neg_infinity in
  Erased.iter_alive erased ~lo:run.start_row ~hi:(run.start_row + run.count)
    (fun lo hi ->
      for r = lo to hi - 1 do
        let v =
          Xk_index.Jlist.score jl r
          *. Xk_score.Damping.apply damping (Xk_index.Jlist.row_len jl r - level)
        in
        if v > !best then best := v
      done);
  !best

let max_damped (jl : Xk_index.Jlist.t) damping (run : Xk_index.Column.run)
    ~level =
  let best = ref neg_infinity in
  for r = run.start_row to run.start_row + run.count - 1 do
    let v =
      Xk_index.Jlist.score jl r
      *. Xk_score.Damping.apply damping (Xk_index.Jlist.row_len jl r - level)
    in
    if v > !best then best := v
  done;
  !best

let run ?(plan = Level_join.Dynamic) ?join_stats
    ?(budget = Xk_resilience.Budget.unlimited)
    (lists : Xk_index.Jlist.t array) damping semantics : hit list =
  let k = Array.length lists in
  if k = 0 then Xk_util.Err.invalid "Join_query.run: no lists";
  if Array.exists (fun jl -> Xk_index.Jlist.length jl = 0) lists then []
  else begin
    let lmin =
      Array.fold_left (fun m jl -> min m (Xk_index.Jlist.max_len jl)) max_int
        lists
    in
    let erased = Array.init k (fun _ -> Erased.create ()) in
    let out = ref [] in
    for level = lmin downto 1 do
      let cols = Array.map (fun jl -> Xk_index.Jlist.column jl ~level) lists in
      let matches = Level_join.join ?stats:join_stats ~budget ~plan cols in
      (* Exclusions of this level are applied in one batch once the level's
         join finishes (Section III-E); matches at one level never share
         rows, so checks within the level only depend on deeper levels. *)
      let kills = Array.make k [] in
      List.iter
        (fun (m : Level_join.match_) ->
          Xk_resilience.Budget.check budget;
          (match semantics with
          | Elca ->
              (* Range check: every list needs an alive row in N's run. *)
              let score = ref 0. and ok = ref true in
              for i = 0 to k - 1 do
                if !ok then begin
                  let best =
                    max_alive_damped lists.(i) damping erased.(i) m.runs.(i)
                      ~level
                  in
                  if best = neg_infinity then ok := false
                  else score := !score +. best
                end
              done;
              if !ok then
                out := { level; value = m.value; score = !score } :: !out
          | Slca ->
              (* N is an SLCA iff no strict descendant matched, i.e. no run
                 of N contains a previously erased row. *)
              let clean = ref true in
              for i = 0 to k - 1 do
                let r = m.runs.(i) in
                if
                  Erased.covered erased.(i) ~lo:r.start_row
                    ~hi:(r.start_row + r.count)
                  > 0
                then clean := false
              done;
              if !clean then begin
                let score = ref 0. in
                for i = 0 to k - 1 do
                  score :=
                    !score +. max_damped lists.(i) damping m.runs.(i) ~level
                done;
                out := { level; value = m.value; score = !score } :: !out
              end);
          (* Exclusion: erase N's full runs from every list. *)
          for i = 0 to k - 1 do
            let r = m.runs.(i) in
            kills.(i) <- (r.start_row, r.start_row + r.count) :: kills.(i)
          done)
        matches;
      for i = 0 to k - 1 do
        Erased.add_batch erased.(i) (List.rev kills.(i))
      done
    done;
    List.rev !out
  end
