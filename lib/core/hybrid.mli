(** The hybrid planner of the paper's Section V-D discussion: route a top-K
    request to the top-K join or to complete evaluation from a
    join-cardinality estimate. *)

type choice = Use_topk | Use_complete

val estimate_results :
  Xk_index.Jlist.t array -> level_width:(int -> int) -> float
(** Expected number of matched JDewey numbers summed over levels, from the
    per-level distinct counts and level widths (textbook equi-join
    cardinality). *)

val default_margin : float

val choose :
  ?margin:float ->
  Xk_index.Jlist.t array ->
  level_width:(int -> int) ->
  k:int ->
  choice
(** [Use_topk] when the estimate exceeds [margin * k]. *)

val topk :
  ?stats:Topk_keyword.stats ->
  ?margin:float ->
  ?semantics:Join_query.semantics ->
  ?budget:Xk_resilience.Budget.t ->
  Xk_index.Score_list.t array ->
  Xk_score.Damping.t ->
  level_width:(int -> int) ->
  k:int ->
  Join_query.hit list
(** Anytime like {!Topk_keyword.topk} (never raises [Budget.Expired]):
    the top-K route returns its confirmed prefix on expiry; the complete
    route, which confirms nothing until it finishes, degrades to the
    empty partial result. *)
