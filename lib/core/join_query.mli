(** Algorithm 1: join-based evaluation of the complete ELCA / SLCA result
    set (paper Sections III-B..III-F), bottom-up over JDewey columns with
    range-checked exclusion. *)

type semantics = Elca | Slca

type hit = {
  level : int;  (** tree depth of the result node (1 = root) *)
  value : int;  (** its JDewey number at that depth *)
  score : float;
}

val max_alive_damped :
  Xk_index.Jlist.t ->
  Xk_score.Damping.t ->
  Erased.t ->
  Xk_index.Column.run ->
  level:int ->
  float
(** Best damped local score among the un-erased rows of a run -
    [neg_infinity] when none survive (the |Ak| > |B2|+|B3| range check). *)

val run :
  ?plan:Level_join.plan ->
  ?join_stats:Level_join.stats ->
  ?budget:Xk_resilience.Budget.t ->
  Xk_index.Jlist.t array ->
  Xk_score.Damping.t ->
  semantics ->
  hit list
(** All results, deepest level first; scores follow Section II-B (per
    keyword the best damped non-excluded witness, summed).  Raises
    {!Xk_resilience.Budget.Expired} if the budget runs out: a complete
    result set has no valid partial prefix. *)
