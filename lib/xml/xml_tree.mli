(** In-memory XML document model.

    Elements, attributes and character data only: that is all the keyword
    search pipeline consumes.  Comments, processing instructions and the
    DOCTYPE are discarded at parse time. *)

type attribute = { attr_name : string; attr_value : string }

type node =
  | Element of element
  | Text of string  (** raw character data, entities already resolved *)

and element = {
  tag : string;
  attrs : attribute list;
  children : node list;
}

type document = { root : element }

val element : ?attrs:attribute list -> string -> node list -> element
(** [element tag children] builds an element. *)

val elem : ?attrs:attribute list -> string -> node list -> node
(** [elem tag children] is [Element (element tag children)]. *)

val text : string -> node
(** [text s] is a character-data node. *)

val attr : string -> string -> attribute

val node_count : document -> int
(** Number of labelled nodes (elements plus text nodes). *)

val depth : document -> int
(** Height of the tree counting the root as depth 1. *)

val fold_nodes : ('a -> int -> node -> 'a) -> 'a -> document -> 'a
(** Document-order fold over all nodes; the callback receives the 1-based
    depth of each node. *)

val iter_nodes : (int -> node -> unit) -> document -> unit

val text_content : element -> string
(** All character data (including attribute values) under an element, in
    document order, space-separated. *)

val equal : document -> document -> bool
(** Structural equality, used by round-trip tests. *)
