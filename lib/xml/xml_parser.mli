(** Parser for the XML 1.0 subset used by the keyword-search pipeline.

    Supported: elements, attributes, character data, CDATA, comments,
    processing instructions, DOCTYPE (skipped), the five predefined entities
    and numeric character references.  Not supported: external/parameter
    entities, namespaces-aware processing (prefixes are kept in tag names). *)

type error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit

exception Error of error

val parse_string :
  ?keep_ws:bool -> string -> (Xml_tree.document, error) result
(** [parse_string s] parses a complete document.  Whitespace-only text nodes
    are dropped unless [keep_ws] is [true] (default [false]). *)

val parse_string_exn : ?keep_ws:bool -> string -> Xml_tree.document
(** Like {!parse_string} but raises {!Error}. *)

val parse_file : ?keep_ws:bool -> string -> (Xml_tree.document, error) result

val parse_file_exn : ?keep_ws:bool -> string -> Xml_tree.document
