(* Recursive-descent parser for the XML 1.0 subset the pipeline needs:
   elements, attributes, character data, CDATA sections, comments,
   processing instructions, a skipped DOCTYPE (with internal subset), the
   five predefined entities and numeric character references.

   The input is treated as a byte string; bytes >= 0x80 flow through
   untouched, so UTF-8 documents work without a decoding pass. *)

type error = { line : int; col : int; message : string }

let pp_error ppf e =
  Fmt.pf ppf "XML parse error at line %d, column %d: %s" e.line e.col e.message

exception Error of error

type state = {
  src : string;
  mutable pos : int;
  keep_ws : bool;
}

let position st =
  (* Line/column are only computed on error, so a linear scan is fine. *)
  let line = ref 1 and col = ref 1 in
  for i = 0 to min st.pos (String.length st.src) - 1 do
    if st.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let fail st fmt =
  Format.kasprintf
    (fun message ->
      let line, col = position st in
      raise (Error { line; col; message }))
    fmt

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st "expected %S" s

let is_ws = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let skip_ws st =
  while (not (eof st)) && is_ws (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || Char.code c >= 0x80

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Resolve one entity/char reference; cursor sits just past '&'. *)
let parse_reference st buf =
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' in
    if hex then advance st;
    let start = st.pos in
    let digit c =
      if hex then
        (c >= '0' && c <= '9')
        || (c >= 'a' && c <= 'f')
        || (c >= 'A' && c <= 'F')
      else c >= '0' && c <= '9'
    in
    while (not (eof st)) && digit (peek st) do
      advance st
    done;
    if st.pos = start then fail st "empty character reference";
    let digits = String.sub st.src start (st.pos - start) in
    expect st ";";
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> fail st "bad character reference &#%s;" digits
    in
    match Uchar.of_int code with
    | u -> Buffer.add_utf_8_uchar buf u
    | exception Invalid_argument _ ->
        fail st "character reference out of range: %d" code
  end
  else begin
    let name = parse_name st in
    expect st ";";
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "apos" -> Buffer.add_char buf '\''
    | "quot" -> Buffer.add_char buf '"'
    | other -> fail st "unknown entity &%s;" other
  end

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value";
    let c = peek st in
    if c = quote then advance st
    else if c = '&' then begin
      advance st;
      parse_reference st buf;
      go ()
    end
    else if c = '<' then fail st "'<' in attribute value"
    else begin
      Buffer.add_char buf c;
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let skip_comment st =
  expect st "<!--";
  let rec go () =
    if eof st then fail st "unterminated comment"
    else if looking_at st "-->" then st.pos <- st.pos + 3
    else begin
      advance st;
      go ()
    end
  in
  go ()

let skip_pi st =
  expect st "<?";
  let rec go () =
    if eof st then fail st "unterminated processing instruction"
    else if looking_at st "?>" then st.pos <- st.pos + 2
    else begin
      advance st;
      go ()
    end
  in
  go ()

let skip_doctype st =
  expect st "<!DOCTYPE";
  (* Skip to the matching '>', honouring an internal subset in brackets. *)
  let rec go depth in_subset =
    if eof st then fail st "unterminated DOCTYPE"
    else
      match peek st with
      | '[' ->
          advance st;
          go depth true
      | ']' ->
          advance st;
          go depth false
      | '<' when in_subset ->
          advance st;
          go (depth + 1) in_subset
      | '>' ->
          advance st;
          if depth > 0 then go (depth - 1) in_subset
      | _ ->
          advance st;
          go depth in_subset
  in
  go 0 false

let parse_cdata st buf =
  expect st "<![CDATA[";
  let rec go () =
    if eof st then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then st.pos <- st.pos + 3
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ()

let is_blank s =
  let n = String.length s in
  let rec go i = i >= n || (is_ws s.[i] && go (i + 1)) in
  go 0

let parse_attributes st =
  let rec go acc =
    skip_ws st;
    let c = peek st in
    if c = '>' || c = '/' || c = '?' then List.rev acc
    else begin
      let name = parse_name st in
      skip_ws st;
      expect st "=";
      skip_ws st;
      let value = parse_attr_value st in
      go (Xml_tree.attr name value :: acc)
    end
  in
  go []

let rec parse_element st =
  expect st "<";
  let tag = parse_name st in
  let attrs = parse_attributes st in
  skip_ws st;
  if looking_at st "/>" then begin
    st.pos <- st.pos + 2;
    Xml_tree.element ~attrs tag []
  end
  else begin
    expect st ">";
    let children = parse_content st tag in
    Xml_tree.element ~attrs tag children
  end

(* Children of [tag] up to and including its end tag. *)
and parse_content st tag =
  let out = ref [] in
  let textbuf = Buffer.create 64 in
  let flush_text () =
    if Buffer.length textbuf > 0 then begin
      let s = Buffer.contents textbuf in
      Buffer.clear textbuf;
      if st.keep_ws || not (is_blank s) then out := Xml_tree.Text s :: !out
    end
  in
  let rec go () =
    if eof st then fail st "unterminated element <%s>" tag
    else if looking_at st "</" then begin
      flush_text ();
      st.pos <- st.pos + 2;
      let close = parse_name st in
      skip_ws st;
      expect st ">";
      if not (String.equal close tag) then
        fail st "mismatched end tag </%s>, expected </%s>" close tag
    end
    else if looking_at st "<![CDATA[" then begin
      parse_cdata st textbuf;
      go ()
    end
    else if looking_at st "<!--" then begin
      skip_comment st;
      go ()
    end
    else if looking_at st "<?" then begin
      skip_pi st;
      go ()
    end
    else if peek st = '<' then begin
      if not (is_name_start (peek2 st)) then fail st "malformed markup";
      flush_text ();
      let e = parse_element st in
      out := Xml_tree.Element e :: !out;
      go ()
    end
    else if peek st = '&' then begin
      advance st;
      parse_reference st textbuf;
      go ()
    end
    else begin
      Buffer.add_char textbuf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  List.rev !out

let parse_prolog st =
  (* Optional UTF-8 BOM. *)
  if looking_at st "\xef\xbb\xbf" then st.pos <- st.pos + 3;
  let rec go () =
    skip_ws st;
    if looking_at st "<?" then begin
      skip_pi st;
      go ()
    end
    else if looking_at st "<!--" then begin
      skip_comment st;
      go ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_doctype st;
      go ()
    end
  in
  go ()

let parse_string_exn ?(keep_ws = false) src =
  let st = { src; pos = 0; keep_ws } in
  parse_prolog st;
  skip_ws st;
  if not (peek st = '<' && is_name_start (peek2 st)) then
    fail st "expected root element";
  let root = parse_element st in
  let rec trailer () =
    skip_ws st;
    if looking_at st "<!--" then begin
      skip_comment st;
      trailer ()
    end
    else if looking_at st "<?" then begin
      skip_pi st;
      trailer ()
    end
    else if not (eof st) then fail st "content after root element"
  in
  trailer ();
  { Xml_tree.root }

let parse_string ?keep_ws src =
  match parse_string_exn ?keep_ws src with
  | doc -> Ok doc
  | exception Error e -> Error e

let parse_file ?keep_ws path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string ?keep_ws s

let parse_file_exn ?keep_ws path =
  match parse_file ?keep_ws path with
  | Ok d -> d
  | Error e -> raise (Error e)
