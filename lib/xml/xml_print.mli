(** XML serialization for {!Xml_tree.document}. *)

val to_buffer : ?indent:bool -> Buffer.t -> Xml_tree.document -> unit

val to_string : ?indent:bool -> Xml_tree.document -> string
(** [to_string d] serializes with an XML declaration.  With [indent:true]
    nodes are placed one per line (this changes whitespace inside mixed
    content; use the default for round-trip fidelity). *)

val to_file : ?indent:bool -> string -> Xml_tree.document -> unit

val pp_element_summary :
  ?max_text:int -> Format.formatter -> Xml_tree.element -> unit
(** One-line summary of a result subtree: tag plus truncated text content. *)
