(* Serializer for the document model.  Used by the data generators to emit
   corpora and by the round-trip tests. *)

let escape_text buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s

let escape_attr buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let add_attrs buf attrs =
  List.iter
    (fun (a : Xml_tree.attribute) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf a.attr_name;
      Buffer.add_string buf "=\"";
      escape_attr buf a.attr_value;
      Buffer.add_char buf '"')
    attrs

let rec add_node ~indent ~level buf (n : Xml_tree.node) =
  match n with
  | Text s ->
      if indent then pad buf level;
      escape_text buf s;
      if indent then Buffer.add_char buf '\n'
  | Element e -> add_element ~indent ~level buf e

and pad buf level =
  for _ = 1 to 2 * level do
    Buffer.add_char buf ' '
  done

and add_element ~indent ~level buf (e : Xml_tree.element) =
  if indent then pad buf level;
  Buffer.add_char buf '<';
  Buffer.add_string buf e.tag;
  add_attrs buf e.attrs;
  match e.children with
  | [] ->
      Buffer.add_string buf "/>";
      if indent then Buffer.add_char buf '\n'
  | [ Text s ] when not indent ->
      Buffer.add_char buf '>';
      escape_text buf s;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.tag;
      Buffer.add_char buf '>'
  | children ->
      Buffer.add_char buf '>';
      if indent then Buffer.add_char buf '\n';
      List.iter (add_node ~indent ~level:(level + 1) buf) children;
      if indent then pad buf level;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.tag;
      Buffer.add_char buf '>';
      if indent then Buffer.add_char buf '\n'

let to_buffer ?(indent = false) buf (d : Xml_tree.document) =
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  Buffer.add_char buf '\n';
  add_element ~indent ~level:0 buf d.root

let to_string ?indent d =
  let buf = Buffer.create 4096 in
  to_buffer ?indent buf d;
  Buffer.contents buf

let to_file ?indent path d =
  let oc = open_out_bin path in
  let buf = Buffer.create (1 lsl 16) in
  to_buffer ?indent buf d;
  Buffer.output_buffer oc buf;
  close_out oc

(* Pretty printer for result subtrees: truncates long text so interactive
   output stays readable. *)
let pp_element_summary ?(max_text = 60) ppf (e : Xml_tree.element) =
  let txt = Xml_tree.text_content e in
  let txt =
    if String.length txt > max_text then String.sub txt 0 max_text ^ "..."
    else txt
  in
  Fmt.pf ppf "<%s> %s" e.tag txt
