(* In-memory XML document model.

   The model is deliberately small: elements, attributes and character data
   are all the paper's pipeline consumes.  Attribute values take part in
   keyword indexing just like text nodes, so they are kept verbatim. *)

type attribute = { attr_name : string; attr_value : string }

type node =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : attribute list;
  children : node list;
}

type document = { root : element }

let element ?(attrs = []) tag children = { tag; attrs; children }

let text s = Text s

let elem ?attrs tag children = Element (element ?attrs tag children)

let attr attr_name attr_value = { attr_name; attr_value }

let rec node_count_of_element (e : element) =
  List.fold_left
    (fun acc child ->
      match child with
      | Element e' -> acc + node_count_of_element e'
      | Text _ -> acc + 1)
    1 e.children

(* Number of labelled nodes: one per element plus one per text node. *)
let node_count (d : document) = node_count_of_element d.root

let rec depth_of_element (e : element) =
  1
  + List.fold_left
      (fun acc child ->
        match child with
        | Element e' -> max acc (depth_of_element e')
        | Text _ -> max acc 1)
      0 e.children

let depth (d : document) = depth_of_element d.root

(* Depth-first, document-order fold over elements and text nodes.  [f] sees
   the 1-based depth of the visited node. *)
let fold_nodes (f : 'a -> int -> node -> 'a) (init : 'a) (d : document) =
  let rec go acc d_lvl n =
    let acc = f acc d_lvl n in
    match n with
    | Text _ -> acc
    | Element e ->
        List.fold_left (fun acc c -> go acc (d_lvl + 1) c) acc e.children
  in
  go init 1 (Element d.root)

let iter_nodes f d = fold_nodes (fun () depth n -> f depth n) () d

(* All character data beneath an element, in document order, separated by
   single spaces.  Used for presenting result subtrees. *)
let text_content (e : element) =
  let buf = Buffer.create 64 in
  let rec go n =
    match n with
    | Text s ->
        if Buffer.length buf > 0 then Buffer.add_char buf ' ';
        Buffer.add_string buf s
    | Element e ->
        List.iter
          (fun a ->
            if Buffer.length buf > 0 then Buffer.add_char buf ' ';
            Buffer.add_string buf a.attr_value)
          e.attrs;
        List.iter go e.children
  in
  go (Element e);
  Buffer.contents buf

let rec equal_element (a : element) (b : element) =
  String.equal a.tag b.tag
  && List.length a.attrs = List.length b.attrs
  && List.for_all2
       (fun x y ->
         String.equal x.attr_name y.attr_name
         && String.equal x.attr_value y.attr_value)
       a.attrs b.attrs
  && List.length a.children = List.length b.children
  && List.for_all2 equal_node a.children b.children

and equal_node a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Element x, Element y -> equal_element x y
  | Text _, Element _ | Element _, Text _ -> false

let equal (a : document) (b : document) = equal_element a.root b.root
