(* Assigns both encodings to every node of a document in one DFS pass:

   - Dewey: 1-based sibling rank per level (stored as the rank; the full id
     is rebuilt by walking the parent chain);
   - JDewey: per-depth counters in document order, optionally multiplied by
     a gap to reserve numbering space for future insertions (the maintenance
     scheme of Section III-A).

   Numbering per depth in document order satisfies JDewey requirement 2: if
   v1 and v2 sit at the same depth and v1's number exceeds v2's, v1 comes
   after v2 in document order, hence so do all its children, hence their
   (document-ordered) numbers are greater. *)

type info = {
  depth : int;  (* 1-based; root = 1 *)
  jnum : int;   (* JDewey number at [depth] *)
  sib : int;    (* 1-based sibling rank (Dewey component) *)
  parent : int; (* index of parent in [nodes]; -1 for the root *)
  xml : Xk_xml.Xml_tree.node;
}

type level = {
  jnums : int array; (* sorted ascending by construction *)
  idxs : int array;  (* node index for each entry of [jnums] *)
}

type t = {
  doc : Xk_xml.Xml_tree.document;
  nodes : info array;
  levels : level array; (* levels.(d-1) indexes depth d *)
  gap : int;
}

type buf = { mutable data : int array; mutable len : int }

let buf_create () = { data = Array.make 16 0; len = 0 }

let buf_push b x =
  if b.len = Array.length b.data then begin
    let data = Array.make (2 * b.len) 0 in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let buf_contents b = Array.sub b.data 0 b.len

let label ?(gap = 1) (doc : Xk_xml.Xml_tree.document) =
  if gap < 1 then Xk_util.Err.invalid "Labeling.label: gap must be >= 1";
  let n = Xk_xml.Xml_tree.node_count doc in
  let height = Xk_xml.Xml_tree.depth doc in
  let nodes =
    Array.make n
      { depth = 0; jnum = 0; sib = 0; parent = -1; xml = Xk_xml.Xml_tree.Text "" }
  in
  let counters = Array.make height 0 in
  let lev_jnums = Array.init height (fun _ -> buf_create ()) in
  let lev_idxs = Array.init height (fun _ -> buf_create ()) in
  let next = ref 0 in
  let rec go depth parent sib (x : Xk_xml.Xml_tree.node) =
    let idx = !next in
    next := idx + 1;
    counters.(depth - 1) <- counters.(depth - 1) + 1;
    let jnum = counters.(depth - 1) * gap in
    nodes.(idx) <- { depth; jnum; sib; parent; xml = x };
    buf_push lev_jnums.(depth - 1) jnum;
    buf_push lev_idxs.(depth - 1) idx;
    match x with
    | Text _ -> ()
    | Element e ->
        List.iteri (fun i c -> go (depth + 1) idx (i + 1) c) e.children
  in
  go 1 (-1) 1 (Element doc.root);
  let levels =
    Array.init height (fun d ->
        { jnums = buf_contents lev_jnums.(d); idxs = buf_contents lev_idxs.(d) })
  in
  { doc; nodes; levels; gap }

let node_count t = Array.length t.nodes
let height t = Array.length t.levels
let gap t = t.gap
let info t i = t.nodes.(i)
let depth t i = t.nodes.(i).depth
let jnum t i = t.nodes.(i).jnum
let parent t i = t.nodes.(i).parent
let xml_node t i = t.nodes.(i).xml

let jdewey_seq t i : Jdewey.t =
  let d = t.nodes.(i).depth in
  let s = Array.make d 0 in
  let rec up i =
    let n = t.nodes.(i) in
    s.(n.depth - 1) <- n.jnum;
    if n.parent >= 0 then up n.parent
  in
  up i;
  s

let dewey t i : Dewey.t =
  let d = t.nodes.(i).depth in
  let s = Array.make d 0 in
  let rec up i =
    let n = t.nodes.(i) in
    s.(n.depth - 1) <- n.sib;
    if n.parent >= 0 then up n.parent
  in
  up i;
  s

(* Node lookup from a (depth, jdewey-number) pair: binary search in the
   per-depth directory (sorted by construction). *)
let find t ~depth ~jnum =
  if depth < 1 || depth > Array.length t.levels then None
  else begin
    let lev = t.levels.(depth - 1) in
    let lo = ref 0 and hi = ref (Array.length lev.jnums - 1) in
    let found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let v = lev.jnums.(mid) in
      if v = jnum then begin
        found := Some lev.idxs.(mid);
        lo := !hi + 1
      end
      else if v < jnum then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

(* The element to present for a result node: the node itself when it is an
   element, otherwise (text node) its parent element. *)
let rec element_of t i =
  match t.nodes.(i).xml with
  | Xk_xml.Xml_tree.Element e -> Some e
  | Xk_xml.Xml_tree.Text _ ->
      let p = t.nodes.(i).parent in
      if p < 0 then None else element_of t p

let level_width t ~depth =
  if depth < 1 || depth > Array.length t.levels then 0
  else Array.length t.levels.(depth - 1).jnums

(* [ancestor_at t i ~depth] is the node index of [i]'s ancestor at [depth]
   (or [i] itself when depths match). *)
let ancestor_at t i ~depth =
  let rec up i =
    let n = t.nodes.(i) in
    if n.depth = depth then Some i
    else if n.depth < depth || n.parent < 0 then None
    else up n.parent
  in
  up i
