(** Dewey identifiers (path-based node labels) used by the baseline
    algorithms.  Component [i] is the 1-based sibling rank at depth [i+1];
    the root is [[|1|]]. *)

type t = int array

val root : t

val child : t -> int -> t
(** [child d rank] extends [d] with a sibling rank. *)

val parent : t -> t option

val length : t -> int

val compare : t -> t -> int
(** Document order: component-wise; a prefix precedes its extensions. *)

val equal : t -> t -> bool

val common_prefix_len : t -> t -> int

val lca : t -> t -> t
(** Lowest common ancestor = longest common prefix. *)

val is_ancestor : t -> t -> bool
(** [is_ancestor a d] iff [a] is a {e strict} ancestor of [d]. *)

val is_ancestor_or_self : t -> t -> bool

val range_end : t -> t
(** Smallest id greater than every descendant of [d]; [\[d, range_end d)] is
    the subtree interval in document order. *)

val to_string : t -> string
val of_string : string -> t
val pp : Format.formatter -> t -> unit
