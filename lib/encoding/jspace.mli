(** JDewey number maintenance (paper Section III-A): gapped numbering with
    midpoint allocation for insertions and bounded renumbering when a gap
    is exhausted. *)

type t

type insert_result =
  | Inserted of int  (** the allocated JDewey number *)
  | Gap_exhausted
      (** no free number in the legal window; renumber before retrying *)

val of_labeling : Labeling.t -> t
(** Snapshot the live numbers of a labeled document. *)

val height : t -> int
val level_size : t -> depth:int -> int
val jnums_at : t -> depth:int -> int array
val parents_at : t -> depth:int -> int array

val insert_child : t -> parent_depth:int -> parent_jnum:int -> insert_result
(** Allocate a number for a new last child of the given parent. *)

val renumber_level : t -> depth:int -> unit
(** Re-spread a whole depth with a fresh gap; children keep their numbers
    (order is what requirement 2 depends on), with parent references
    remapped. *)

val check_invariants : t -> bool
(** Uniqueness + sortedness per depth, requirement 2, parent existence.
    Exposed for the test suite. *)
