(** JDewey sequences (paper Section III-A).

    [s.(i)] is the JDewey number of the node's ancestor at depth [i+1]
    (depth 1 = root).  JDewey numbers are unique within a depth and monotone
    across the children of ordered parents, so [(depth, number)] identifies a
    node and Property 3.1 holds. *)

type t = int array

val length : t -> int

val compare : t -> t -> int
(** The order of Section III-A: positionwise, a prefix precedes its
    extensions. *)

val equal : t -> t -> bool

val lca_level : t -> t -> int
(** Depth of the lowest common ancestor (0 when the paths share nothing). *)

val lca : t -> t -> (int * int) option
(** LCA as [(depth, jdewey_number)]. *)

val is_ancestor : t -> t -> bool
val is_ancestor_or_self : t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val property_3_1 : t -> t -> bool
(** [property_3_1 a b] checks the monotonicity property: when [a <= b],
    [a.(i) <= b.(i)] for every common position.  Exposed for the test
    suite. *)
