(* JDewey sequences (Section III-A of the paper).

   A JDewey sequence is the vector of JDewey numbers on the path from the
   root to a node.  A JDewey number is unique among all nodes of the same
   depth, and numbering is monotone across siblings of ordered parents
   (requirement 2), which the document-order labeler satisfies by
   construction.  Consequently a single pair (level, number) identifies a
   node, and Property 3.1 holds: if S1 < S2 then S1(i) <= S2(i) for every
   common level i. *)

type t = int array
(** [s.(i)] is the JDewey number at depth [i+1]. *)

let length = Array.length

(* Order of Section III-A: S1 < S2 iff some position is smaller or S1 is a
   prefix of S2.  Identical to array lexicographic order with prefix-first. *)
let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

(* Deepest common level of the two paths.  Because a JDewey number uniquely
   identifies a node within its depth, equality at level i implies equality
   at every level above, so the equal positions form a prefix. *)
let lca_level (a : t) (b : t) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i = if i < n && a.(i) = b.(i) then go (i + 1) else i in
  go 0

(* LCA as a (depth, number) pair; [None] when the paths share no node (never
   happens inside one tree, where level 1 is the shared root). *)
let lca (a : t) (b : t) =
  let l = lca_level a b in
  if l = 0 then None else Some (l, a.(l - 1))

let is_ancestor (a : t) (d : t) =
  Array.length a < Array.length d && lca_level a d = Array.length a

let is_ancestor_or_self (a : t) (d : t) =
  Array.length a <= Array.length d && lca_level a d = Array.length a

let to_string (s : t) =
  String.concat "." (Array.to_list (Array.map string_of_int s))

let pp ppf s = Fmt.string ppf (to_string s)

(* Property 3.1 as a runnable check (used by the test suite). *)
let property_3_1 (a : t) (b : t) =
  if compare a b > 0 then true
  else begin
    let n = min (Array.length a) (Array.length b) in
    let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
    go 0
  end
