(* JDewey number maintenance (the Section III-A discussion): gapped
   numbering leaves room to insert nodes, and when a gap is exhausted a
   bounded renumbering restores headroom.

   The structure keeps, per depth, the live (jnum, parent_jnum) pairs
   sorted by jnum.  Requirement 2 of the encoding makes parent numbers
   non-decreasing along that order, so the legal window for a new child of
   parent P at depth d is

     ( largest jnum at d whose parent <= P ,
       smallest jnum at d whose parent > P )

   [insert_child] allocates the midpoint of that window; when the window
   is empty it reports [Gap_exhausted], and [renumber_level] re-spreads a
   whole depth with a fresh gap (renumbering in order preserves
   requirement 2 at every depth below, because only the order matters). *)

type level = {
  mutable jnums : int array;
  mutable parents : int array; (* parent jnum of each entry; 0 at the root *)
  mutable len : int;
}

type t = { mutable levels : level array; gap : int }

type insert_result =
  | Inserted of int (* the allocated JDewey number *)
  | Gap_exhausted

let empty_level () = { jnums = Array.make 8 0; parents = Array.make 8 0; len = 0 }

let of_labeling (lab : Labeling.t) =
  let height = Labeling.height lab in
  let levels = Array.init height (fun _ -> empty_level ()) in
  (* Nodes come in document order, so per-level arrays build sorted. *)
  for i = 0 to Labeling.node_count lab - 1 do
    let d = Labeling.depth lab i in
    let lev = levels.(d - 1) in
    if lev.len = Array.length lev.jnums then begin
      let jn = Array.make (2 * lev.len) 0 and pn = Array.make (2 * lev.len) 0 in
      Array.blit lev.jnums 0 jn 0 lev.len;
      Array.blit lev.parents 0 pn 0 lev.len;
      lev.jnums <- jn;
      lev.parents <- pn
    end;
    lev.jnums.(lev.len) <- Labeling.jnum lab i;
    lev.parents.(lev.len) <-
      (let p = Labeling.parent lab i in
       if p < 0 then 0 else Labeling.jnum lab p);
    lev.len <- lev.len + 1
  done;
  { levels; gap = Labeling.gap lab }

let height t = Array.length t.levels
let level_size t ~depth = t.levels.(depth - 1).len

let jnums_at t ~depth =
  let lev = t.levels.(depth - 1) in
  Array.sub lev.jnums 0 lev.len

let parents_at t ~depth =
  let lev = t.levels.(depth - 1) in
  Array.sub lev.parents 0 lev.len

let ensure_level t depth =
  while Array.length t.levels < depth do
    t.levels <- Array.append t.levels [| empty_level () |]
  done

(* First entry index whose parent jnum exceeds [p]. *)
let first_child_after (lev : level) p =
  let lo = ref 0 and hi = ref lev.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if lev.parents.(mid) <= p then lo := mid + 1 else hi := mid
  done;
  !lo

let insert_at (lev : level) pos jnum parent =
  if lev.len = Array.length lev.jnums then begin
    let cap = max 8 (2 * lev.len) in
    let jn = Array.make cap 0 and pn = Array.make cap 0 in
    Array.blit lev.jnums 0 jn 0 lev.len;
    Array.blit lev.parents 0 pn 0 lev.len;
    lev.jnums <- jn;
    lev.parents <- pn
  end;
  Array.blit lev.jnums pos lev.jnums (pos + 1) (lev.len - pos);
  Array.blit lev.parents pos lev.parents (pos + 1) (lev.len - pos);
  lev.jnums.(pos) <- jnum;
  lev.parents.(pos) <- parent;
  lev.len <- lev.len + 1

(* Allocate a number for a new (last) child of the parent numbered
   [parent_jnum] at depth [parent_depth]. *)
let insert_child t ~parent_depth ~parent_jnum =
  let depth = parent_depth + 1 in
  ensure_level t depth;
  let lev = t.levels.(depth - 1) in
  let pos = first_child_after lev parent_jnum in
  let window_lo = if pos = 0 then 0 else lev.jnums.(pos - 1) in
  let window_hi = if pos = lev.len then max_int else lev.jnums.(pos) in
  if window_hi - window_lo <= 1 then Gap_exhausted
  else begin
    let jnum =
      if window_hi = max_int then window_lo + t.gap
      else window_lo + ((window_hi - window_lo) / 2)
    in
    insert_at lev pos jnum parent_jnum;
    Inserted jnum
  end

(* Renumber every node at [depth] in order with a fresh gap.  Children at
   depth+1 keep their numbers; their parents' relative order is unchanged,
   so requirement 2 still holds - but their recorded parent jnums must be
   remapped. *)
let renumber_level t ~depth =
  if depth >= 1 && depth <= Array.length t.levels then begin
    let lev = t.levels.(depth - 1) in
    let mapping = Hashtbl.create (max 16 lev.len) in
    for i = 0 to lev.len - 1 do
      let fresh = (i + 1) * t.gap in
      Hashtbl.replace mapping lev.jnums.(i) fresh;
      lev.jnums.(i) <- fresh
    done;
    if depth < Array.length t.levels then begin
      let below = t.levels.(depth) in
      for i = 0 to below.len - 1 do
        match Hashtbl.find_opt mapping below.parents.(i) with
        | Some fresh -> below.parents.(i) <- fresh
        | None -> Xk_util.Err.invalid "Jspace.renumber_level: dangling parent"
      done
    end
  end

(* The encoding invariants, as a runnable check for the tests:
   numbers unique and sorted per depth, parent numbers non-decreasing in
   child order (requirement 2), and every parent exists one level up. *)
let check_invariants t =
  let ok = ref true in
  Array.iteri
    (fun d lev ->
      for i = 1 to lev.len - 1 do
        if lev.jnums.(i) <= lev.jnums.(i - 1) then ok := false;
        if lev.parents.(i) < lev.parents.(i - 1) then ok := false
      done;
      if d > 0 then begin
        let above = t.levels.(d - 1) in
        let exists p =
          let lo = ref 0 and hi = ref (above.len - 1) and found = ref false in
          while !lo <= !hi do
            let mid = (!lo + !hi) / 2 in
            if above.jnums.(mid) = p then begin
              found := true;
              lo := !hi + 1
            end
            else if above.jnums.(mid) < p then lo := mid + 1
            else hi := mid - 1
          done;
          !found
        in
        for i = 0 to lev.len - 1 do
          if not (exists lev.parents.(i)) then ok := false
        done
      end)
    t.levels;
  !ok
