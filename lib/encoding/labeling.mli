(** One-pass labeler: assigns Dewey sibling ranks and JDewey numbers to every
    node (elements and text nodes) of a document in document order.

    JDewey numbering is per depth, in document order, optionally multiplied
    by a [gap] to reserve space for insertions (paper Section III-A). *)

type info = {
  depth : int;  (** 1-based depth; root = 1 *)
  jnum : int;   (** JDewey number at [depth] *)
  sib : int;    (** 1-based sibling rank (the node's Dewey component) *)
  parent : int; (** node index of the parent; -1 for the root *)
  xml : Xk_xml.Xml_tree.node;
}

type t

val label : ?gap:int -> Xk_xml.Xml_tree.document -> t
(** Label all nodes.  [gap] (default 1) multiplies every assigned JDewey
    number, leaving [gap - 1] free numbers between consecutive nodes of a
    depth. *)

val node_count : t -> int
val height : t -> int
val gap : t -> int

val info : t -> int -> info
val depth : t -> int -> int
val jnum : t -> int -> int
val parent : t -> int -> int
val xml_node : t -> int -> Xk_xml.Xml_tree.node

val jdewey_seq : t -> int -> Jdewey.t
(** JDewey sequence (root..node) of a node index. *)

val dewey : t -> int -> Dewey.t
(** Dewey id of a node index. *)

val find : t -> depth:int -> jnum:int -> int option
(** Node index identified by a (depth, JDewey-number) pair. *)

val element_of : t -> int -> Xk_xml.Xml_tree.element option
(** The element to present for a node: itself, or for a text node its parent
    element. *)

val level_width : t -> depth:int -> int
(** Number of nodes at a depth. *)

val ancestor_at : t -> int -> depth:int -> int option
