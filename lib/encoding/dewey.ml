(* Dewey identifiers: the classic path-based node labels used by the
   stack-based and index-based baselines.  A Dewey id is the vector of
   1-based sibling ranks on the path from the root, e.g. [|1; 3; 2|] for
   node 1.3.2 in the paper's Figure 1. *)

type t = int array

let root : t = [| 1 |]

let length = Array.length

let child (d : t) rank =
  let n = Array.length d in
  let d' = Array.make (n + 1) 0 in
  Array.blit d 0 d' 0 n;
  d'.(n) <- rank;
  d'

let parent (d : t) =
  let n = Array.length d in
  if n <= 1 then None else Some (Array.sub d 0 (n - 1))

(* Document order: component-wise, a prefix precedes its extensions. *)
let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let common_prefix_len (a : t) (b : t) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i = if i < n && a.(i) = b.(i) then go (i + 1) else i in
  go 0

let lca (a : t) (b : t) : t = Array.sub a 0 (common_prefix_len a b)

(* [is_ancestor a d]: a is a strict ancestor of d. *)
let is_ancestor (a : t) (d : t) =
  Array.length a < Array.length d
  && common_prefix_len a d = Array.length a

let is_ancestor_or_self a d =
  Array.length a <= Array.length d
  && common_prefix_len a d = Array.length a

let to_string (d : t) =
  String.concat "." (Array.to_list (Array.map string_of_int d))

let of_string s =
  match String.split_on_char '.' s with
  | [] -> Xk_util.Err.invalid "Dewey.of_string: empty"
  | parts ->
      let d = Array.of_list (List.map int_of_string parts) in
      if Array.exists (fun x -> x <= 0) d then
        Xk_util.Err.invalid "Dewey.of_string: non-positive component";
      d

let pp ppf d = Fmt.string ppf (to_string d)

(* [range_end d] is the smallest Dewey id strictly greater (in document
   order) than every descendant of [d]: bump the last component.  Together
   with [d] itself this gives the half-open subtree interval
   [d, range_end d) used for binary-search range counting. *)
let range_end (d : t) : t =
  let n = Array.length d in
  let e = Array.copy d in
  e.(n - 1) <- e.(n - 1) + 1;
  e
