(** Damping function d(.) (paper Section II-B): [d dl = decay ** dl],
    memoized for small distances. *)

type t

val make : float -> t
(** [make decay] with [decay] in (0, 1]. *)

val default : t
(** decay = 0.75; see the implementation note - Example 4.1 of the paper
    illustrates with 0.9, deployed ranking functions damp harder. *)

val decay : t -> float

val apply : t -> int -> float
(** [apply t dl] = d(dl); raises on negative distance. *)
