(* The monotone combining function F(.) of Section II-B.  The paper assumes
   sum for exposition; max and weighted sum are provided as alternative
   monotone aggregations.  All top-K machinery only relies on Monotonicity:
   Ii <= Ii' for all i implies F(I) <= F(I'). *)

type t =
  | Sum
  | Max
  | Weighted of float array
      (* non-negative per-keyword weights; index = keyword position *)

let combine t (scores : float array) =
  match t with
  | Sum -> Array.fold_left ( +. ) 0. scores
  | Max -> Array.fold_left Float.max neg_infinity scores
  | Weighted w ->
      if Array.length w < Array.length scores then
        Xk_util.Err.invalid "Agg.combine: not enough weights";
      let acc = ref 0. in
      Array.iteri (fun i s -> acc := !acc +. (w.(i) *. s)) scores;
      !acc

(* Upper bound of F over any score vector dominated componentwise by
   [bounds]; by monotonicity this is just F(bounds). *)
let upper_bound t bounds = combine t bounds

let is_monotone_sample t a b =
  (* Test hook: checks the monotonicity property on one dominated pair. *)
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> x <= y) a b
  && combine t a <= combine t b
