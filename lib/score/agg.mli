(** Monotone combining function F(.) (paper Section II-B). *)

type t =
  | Sum  (** the paper's default *)
  | Max
  | Weighted of float array  (** non-negative per-keyword weights *)

val combine : t -> float array -> float

val upper_bound : t -> float array -> float
(** F applied to componentwise upper bounds; valid by monotonicity. *)

val is_monotone_sample : t -> float array -> float array -> bool
(** Test hook: monotonicity on one dominated pair of score vectors. *)
