(** Local ranking score g(v, w) (paper Section II-B): tf-idf over nodes
    directly containing the keyword, normalized to (0, 1]. *)

type t

val make : total_nodes:int -> t

val local_score : t -> tf:int -> df:int -> float
(** Score of a node that directly contains the keyword [tf] times, where
    [df] nodes in the collection contain the keyword.  Monotone in [tf],
    antitone in [df]; always in (0, 1]. *)

val total_nodes : t -> int
