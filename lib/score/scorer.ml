(* Local ranking score g(v, w) of Section II-B.  The paper leaves g abstract
   (any combination of IR and link-based factors); we use the customary
   tf-idf form over "documents" = nodes directly containing the keyword:

     g = (1 + ln tf) * ln (1 + N / df)   normalized to (0, 1]

   where N is the number of indexed nodes.  Normalization divides by the
   score of a hypothetical maximally-frequent-in-node, unique-in-collection
   term, keeping g comparable across corpora and keeping the top-K
   thresholds well-scaled. *)

type t = { total_nodes : int; norm : float }

let max_tf = 1000.

let make ~total_nodes =
  if total_nodes <= 0 then Xk_util.Err.invalid "Scorer.make";
  let norm =
    (1. +. log max_tf) *. log (1. +. float_of_int total_nodes)
  in
  { total_nodes; norm }

let local_score t ~tf ~df =
  if tf <= 0 || df <= 0 then Xk_util.Err.invalid "Scorer.local_score";
  let tf = float_of_int (min tf 1000) in
  let idf = log (1. +. (float_of_int t.total_nodes /. float_of_int df)) in
  (1. +. log tf) *. idf /. t.norm

let total_nodes t = t.total_nodes
