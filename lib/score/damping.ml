(* The damping function d(.) of Section II-B: a decreasing function of the
   vertical distance between a keyword occurrence and its ELCA/SLCA.  As in
   the paper's running example we use d(dl) = decay^dl, memoized because the
   same small exponents are applied millions of times during evaluation. *)

type t = { decay : float; table : float array }

let max_memo = 64

let make decay =
  if not (decay > 0. && decay <= 1.) then
    Xk_util.Err.invalid "Damping.make: decay must be in (0, 1]";
  let table = Array.init max_memo (fun i -> decay ** float_of_int i) in
  { decay; table }

(* Default decay.  The paper's Example 4.1 illustrates with 0.9; ranking
   systems use stronger damping (XRank's decay lies in [0.25, 0.6]) so
   that tight subtrees actually dominate - 0.75 keeps a one-level-deeper
   witness worth ~3/4 of a direct one while letting compact results beat
   high-tf occurrences four levels up. *)
let default = make 0.75

let decay t = t.decay

let apply t dl =
  if dl < 0 then Xk_util.Err.invalid "Damping.apply: negative distance"
  else if dl < max_memo then t.table.(dl)
  else t.decay ** float_of_int dl
