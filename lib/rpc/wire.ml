(* Payload codecs for the shard RPC.  Encoders build on the storage
   varint; decoders run over a cursor and convert any truncation or bad
   tag into [Frame.Malformed] — no exception escapes on foreign bytes. *)

type query = {
  q_shard : int;
  q_words : string list;
  q_semantics : Xk_core.Engine.semantics;
  q_mode : Xk_core.Engine.mode;
  q_deadline_ms : float option;
  q_ticks : int option;
}

type served = {
  s_summary : Xk_index.Sharding.root_summary option;
  s_outcome : Xk_core.Engine.run_outcome;
  s_bound : float;
}

type reply = Served of served | Refused of string

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* --- primitive writers ------------------------------------------------ *)

let put_int buf n = Xk_storage.Varint.write buf n

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

(* Scores travel as their IEEE-754 bits: the gather's parity checks
   compare floats for equality, so the codec must be exact, including
   the +/- infinity bounds. *)
let put_float buf f = Buffer.add_int64_be buf (Int64.bits_of_float f)

let put_bool buf b = Buffer.add_uint8 buf (if b then 1 else 0)

let put_option put buf = function
  | None -> Buffer.add_uint8 buf 0
  | Some v ->
      Buffer.add_uint8 buf 1;
      put buf v

let put_list put buf xs =
  put_int buf (List.length xs);
  List.iter (put buf) xs

let put_float_array buf a =
  put_int buf (Array.length a);
  Array.iter (put_float buf) a

(* --- primitive readers ------------------------------------------------ *)

let get_int c = Xk_storage.Varint.read c

let take (c : Xk_storage.Varint.cursor) n what =
  if n < 0 || c.pos + n > String.length c.data then bad "truncated %s" what;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_string c =
  let n = get_int c in
  take c n "string"

let get_float c =
  let s = take c 8 "float" in
  Int64.float_of_bits (String.get_int64_be s 0)

let get_byte c =
  let s = take c 1 "byte" in
  Char.code s.[0]

let get_bool c what =
  match get_byte c with
  | 0 -> false
  | 1 -> true
  | b -> bad "bad %s flag %d" what b

let get_option get c what =
  match get_byte c with
  | 0 -> None
  | 1 -> Some (get c)
  | b -> bad "bad %s tag %d" what b

let get_list get c = List.init (get_int c) (fun _ -> get c)

let get_float_array c = Array.init (get_int c) (fun _ -> get_float c)

(* --- domain types ----------------------------------------------------- *)

let semantics_byte : Xk_core.Engine.semantics -> int = function
  | Elca -> 0
  | Slca -> 1

let semantics_of_byte = function
  | 0 -> Xk_core.Engine.Elca
  | 1 -> Xk_core.Engine.Slca
  | b -> bad "bad semantics %d" b

let algorithm_byte : Xk_core.Engine.algorithm -> int = function
  | Join_based -> 0
  | Stack_based -> 1
  | Index_based -> 2
  | Oracle -> 3

let algorithm_of_byte : int -> Xk_core.Engine.algorithm = function
  | 0 -> Join_based
  | 1 -> Stack_based
  | 2 -> Index_based
  | 3 -> Oracle
  | b -> bad "bad algorithm %d" b

let topk_byte : Xk_core.Engine.topk_algorithm -> int = function
  | Topk_join -> 0
  | Complete_then_sort -> 1
  | Rdil_baseline -> 2
  | Hybrid -> 3

let topk_of_byte : int -> Xk_core.Engine.topk_algorithm = function
  | 0 -> Topk_join
  | 1 -> Complete_then_sort
  | 2 -> Rdil_baseline
  | 3 -> Hybrid
  | b -> bad "bad top-K algorithm %d" b

let put_mode buf : Xk_core.Engine.mode -> unit = function
  | Complete a ->
      Buffer.add_uint8 buf 0;
      Buffer.add_uint8 buf (algorithm_byte a)
  | Topk (a, k) ->
      Buffer.add_uint8 buf 1;
      Buffer.add_uint8 buf (topk_byte a);
      put_int buf k

let get_mode c : Xk_core.Engine.mode =
  match get_byte c with
  | 0 -> Complete (algorithm_of_byte (get_byte c))
  | 1 ->
      let a = topk_of_byte (get_byte c) in
      Topk (a, get_int c)
  | b -> bad "bad mode tag %d" b

let put_hit buf (h : Xk_baselines.Hit.t) =
  put_int buf h.node;
  put_float buf h.score

let get_hit c : Xk_baselines.Hit.t =
  let node = get_int c in
  { node; score = get_float c }

let put_outcome buf : Xk_core.Engine.run_outcome -> unit = function
  | Done hits ->
      Buffer.add_uint8 buf 0;
      put_list put_hit buf hits
  | Partial hits ->
      Buffer.add_uint8 buf 1;
      put_list put_hit buf hits
  | Timed_out -> Buffer.add_uint8 buf 2

let get_outcome c : Xk_core.Engine.run_outcome =
  match get_byte c with
  | 0 -> Done (get_list get_hit c)
  | 1 -> Partial (get_list get_hit c)
  | 2 -> Timed_out
  | b -> bad "bad outcome tag %d" b

let put_summary buf (s : Xk_index.Sharding.root_summary) =
  put_float_array buf s.rs_best_all;
  put_float_array buf s.rs_best_free;
  put_bool buf s.rs_full_subtree

let get_summary c : Xk_index.Sharding.root_summary =
  let rs_best_all = get_float_array c in
  let rs_best_free = get_float_array c in
  { rs_best_all; rs_best_free; rs_full_subtree = get_bool c "subtree" }

(* --- messages --------------------------------------------------------- *)

let encode_query q =
  let buf = Buffer.create 128 in
  put_int buf q.q_shard;
  put_list put_string buf q.q_words;
  Buffer.add_uint8 buf (semantics_byte q.q_semantics);
  put_mode buf q.q_mode;
  put_option put_float buf q.q_deadline_ms;
  put_option put_int buf q.q_ticks;
  Buffer.contents buf

let encode_reply r =
  let buf = Buffer.create 256 in
  (match r with
  | Served s ->
      Buffer.add_uint8 buf 0;
      put_option put_summary buf s.s_summary;
      put_outcome buf s.s_outcome;
      put_float buf s.s_bound
  | Refused msg ->
      Buffer.add_uint8 buf 1;
      put_string buf msg);
  Buffer.contents buf

(* Run a decoder over the whole payload; truncation, bad tags and
   trailing bytes all land in [Frame.Malformed]. *)
let decoding what get s =
  let c = Xk_storage.Varint.cursor s in
  match get c with
  | v ->
      if Xk_storage.Varint.at_end c then Ok v
      else
        Error
          (Frame.Malformed
             (Printf.sprintf "%s: %d trailing payload bytes" what
                (String.length s - c.pos)))
  | exception Bad msg -> Error (Frame.Malformed (what ^ ": " ^ msg))
  | exception Invalid_argument msg -> Error (Frame.Malformed (what ^ ": " ^ msg))

let decode_query s =
  decoding "query" (fun c ->
      let q_shard = get_int c in
      let q_words = get_list get_string c in
      let q_semantics = semantics_of_byte (get_byte c) in
      let q_mode = get_mode c in
      let q_deadline_ms = get_option get_float c "deadline" in
      let q_ticks = get_option get_int c "ticks" in
      { q_shard; q_words; q_semantics; q_mode; q_deadline_ms; q_ticks })
    s

let decode_reply s =
  decoding "reply" (fun c ->
      match get_byte c with
      | 0 ->
          let s_summary = get_option get_summary c "summary" in
          let s_outcome = get_outcome c in
          Served { s_summary; s_outcome; s_bound = get_float c }
      | 1 -> Refused (get_string c)
      | b -> bad "bad reply tag %d" b)
    s
