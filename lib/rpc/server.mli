(** Listener side of the shard RPC: an accept loop that feeds every
    decoded frame to a caller-supplied handler.

    By default the server is sequential — one connection at a time, one
    frame at a time; a shard query saturates the process anyway (the
    engine walk is CPU-bound), and scale comes from running more replica
    processes, which is exactly what the manifest describes.  A small
    worker pool ([run ~workers]) exists for the deployment in between:
    one process serving a zero-copy segment to a handful of clients,
    where a slow client draining a large reply must not park everyone
    else behind its socket.  Handlers must then be safe to call from
    multiple domains concurrently (the shard executors are: the engine
    caches are sharded and locked).

    A handler returning [None] closes the connection without a reply —
    that is the chaos [Kill] drill seen from the wire: the client
    observes an abrupt EOF and fails over.  Malformed frames are
    answered with nothing and the connection is dropped; the framing
    layer guarantees they arrive as typed errors, never exceptions. *)

type t

val create : ?host:string -> port:int -> unit -> (t, string) result
(** Bind and listen.  [port = 0] picks an ephemeral port; read it back
    with {!port}.  [host] defaults to ["127.0.0.1"]. *)

val port : t -> int
val host : t -> string

val run :
  ?workers:int ->
  t ->
  handler:(Frame.kind -> string -> (Frame.kind * string) option) ->
  unit
(** Accept connections until {!stop}.  Per connection: read frames until
    EOF or error, pass each to [handler], write back its reply.  An
    exception escaping [handler] drops the connection but keeps the
    server alive.

    [workers] (default 1) sets the number of domains serving accepted
    connections.  At 1 the accept loop serves each connection inline;
    above 1 connections run on a {!Xk_util.Domain_pool} of that size and
    [handler] must be domain-safe.  The hand-off queue is bounded at
    [workers * 8] waiting connections: beyond it a newly accepted
    connection is closed immediately (the client observes an abrupt EOF
    and fails over) rather than queued unboundedly.  Raises
    [Invalid_argument] when [workers < 1]. *)

val stop : t -> unit
(** Stop accepting and close the listening socket.  Safe to call from
    another domain or a signal handler while {!run} is blocked in
    [accept] — the shutdown wakes it. *)
