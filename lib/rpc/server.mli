(** Listener side of the shard RPC: an iterative accept loop that feeds
    every decoded frame to a caller-supplied handler.

    The server is deliberately sequential — one connection at a time,
    one frame at a time.  A shard query saturates the process anyway
    (the engine walk is CPU-bound), so concurrency would only add
    shared-state hazards; scale comes from running more replica
    processes, which is exactly what the manifest describes.

    A handler returning [None] closes the connection without a reply —
    that is the chaos [Kill] drill seen from the wire: the client
    observes an abrupt EOF and fails over.  Malformed frames are
    answered with nothing and the connection is dropped; the framing
    layer guarantees they arrive as typed errors, never exceptions. *)

type t

val create : ?host:string -> port:int -> unit -> (t, string) result
(** Bind and listen.  [port = 0] picks an ephemeral port; read it back
    with {!port}.  [host] defaults to ["127.0.0.1"]. *)

val port : t -> int
val host : t -> string

val run :
  t -> handler:(Frame.kind -> string -> (Frame.kind * string) option) -> unit
(** Accept connections until {!stop}.  Per connection: read frames until
    EOF or error, pass each to [handler], write back its reply.  An
    exception escaping [handler] drops the connection but keeps the
    server alive. *)

val stop : t -> unit
(** Stop accepting and close the listening socket.  Safe to call from
    another domain or a signal handler while {!run} is blocked in
    [accept] — the shutdown wakes it. *)
