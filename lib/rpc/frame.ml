(* The RPC frame codec.  The CRC-32 is computed over the whole frame
   with the checksum field zeroed, so every byte — magic, version, kind,
   length and payload — is covered: any single-bit flip either fails a
   field check or fails the checksum.  All entry points return typed
   errors; malformed input can never raise. *)

type kind = Ping | Pong | Query | Reply

type error =
  | Io of string
  | Timeout
  | Closed
  | Bad_magic of string
  | Bad_version of int
  | Bad_kind of int
  | Oversized of { length : int; limit : int }
  | Truncated of { expected : int; got : int }
  | Trailing of int
  | Crc_mismatch of { expected : int; actual : int }
  | Malformed of string

let error_message = function
  | Io msg -> "io: " ^ msg
  | Timeout -> "timed out waiting for a frame"
  | Closed -> "connection closed"
  | Bad_magic m -> Printf.sprintf "bad frame magic %S" m
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Bad_kind k -> Printf.sprintf "unknown frame kind %d" k
  | Oversized { length; limit } ->
      Printf.sprintf "frame claims %d payload bytes (limit %d)" length limit
  | Truncated { expected; got } ->
      Printf.sprintf "frame cut short: %d of %d bytes" got expected
  | Trailing n -> Printf.sprintf "%d trailing bytes after the frame" n
  | Crc_mismatch { expected; actual } ->
      Printf.sprintf "frame checksum mismatch (stored %08x, computed %08x)"
        expected actual
  | Malformed msg -> "malformed payload: " ^ msg

let magic = "XK"
let version = 1
let header_size = 12
let crc_offset = 8
let default_limit = 16 * 1024 * 1024

let kind_byte = function Ping -> 0 | Pong -> 1 | Query -> 2 | Reply -> 3

let kind_of_byte = function
  | 0 -> Some Ping
  | 1 -> Some Pong
  | 2 -> Some Query
  | 3 -> Some Reply
  | _ -> None

let encode k payload =
  let n = String.length payload in
  if n > default_limit then
    Xk_util.Err.invalidf "Frame.encode: %d-byte payload exceeds the limit" n;
  let b = Bytes.create (header_size + n) in
  Bytes.blit_string magic 0 b 0 2;
  Bytes.set_uint8 b 2 version;
  Bytes.set_uint8 b 3 (kind_byte k);
  Bytes.set_int32_be b 4 (Int32.of_int n);
  Bytes.set_int32_be b crc_offset 0l;
  Bytes.blit_string payload 0 b header_size n;
  let crc = Xk_storage.Crc32.string (Bytes.to_string b) in
  Bytes.set_int32_be b crc_offset (Int32.of_int crc);
  Bytes.to_string b

let u32_be s pos =
  Int32.to_int (String.get_int32_be s pos) land 0xFFFFFFFF

(* Validate one frame held entirely in [s]; shared by the pure decoder
   and the stream reader (which hands in header ^ payload). *)
let check_frame ?(limit = default_limit) s =
  let len = String.length s in
  if len < header_size then
    Error (Truncated { expected = header_size; got = len })
  else if String.sub s 0 2 <> magic then Error (Bad_magic (String.sub s 0 2))
  else if String.get_uint8 s 2 <> version then
    Error (Bad_version (String.get_uint8 s 2))
  else
    match kind_of_byte (String.get_uint8 s 3) with
    | None -> Error (Bad_kind (String.get_uint8 s 3))
    | Some kind ->
        let plen = u32_be s 4 in
        if plen > limit then Error (Oversized { length = plen; limit })
        else if len < header_size + plen then
          Error (Truncated { expected = header_size + plen; got = len })
        else if len > header_size + plen then
          Error (Trailing (len - header_size - plen))
        else
          let stored = u32_be s crc_offset in
          let zeroed = Bytes.of_string s in
          Bytes.set_int32_be zeroed crc_offset 0l;
          let actual = Xk_storage.Crc32.string (Bytes.to_string zeroed) in
          if stored <> actual then
            Error (Crc_mismatch { expected = stored; actual })
          else Ok (kind, String.sub s header_size plen)

let decode ?limit s = check_frame ?limit s

(* --- Stream IO -------------------------------------------------------- *)

(* Loop [Unix.read] until [n] bytes arrived.  [eof_error] distinguishes
   "clean close before any byte" from "stream died mid-frame". *)
let read_exactly fd buf n ~eof_error =
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> Error (if off = 0 then eof_error else Io "EOF inside a frame")
      | r -> go (off + r)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          Error Timeout
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  in
  go 0

let read_fd ?(limit = default_limit) fd =
  let header = Bytes.create header_size in
  match read_exactly fd header header_size ~eof_error:Closed with
  | Error _ as e -> e
  | Ok () -> (
      (* Pre-check the fixed fields so an oversized or foreign header is
         refused before the payload allocation. *)
      let h = Bytes.to_string header in
      if String.sub h 0 2 <> magic then Error (Bad_magic (String.sub h 0 2))
      else if String.get_uint8 h 2 <> version then
        Error (Bad_version (String.get_uint8 h 2))
      else
        let plen = u32_be h 4 in
        if plen > limit then Error (Oversized { length = plen; limit })
        else
          let payload = Bytes.create plen in
          match
            read_exactly fd payload plen ~eof_error:(Io "EOF inside a frame")
          with
          | Error _ as e -> e
          | Ok () -> check_frame ~limit (h ^ Bytes.to_string payload))

let write_fd fd k payload =
  let b = Bytes.of_string (encode k payload) in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write fd b off (n - off) with
      | r -> go (off + r)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          Error Timeout
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  in
  go 0
