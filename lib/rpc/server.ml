(* Iterative accept-loop server.  [stop] must wake a [run] blocked in
   accept from another domain; on Linux closing the fd does not, so stop
   shuts the socket down first (accept fails with EINVAL) and the
   stopping flag tells the loop that the failure was deliberate. *)

type t = {
  fd : Unix.file_descr;
  s_host : string;
  s_port : int;
  stopping : bool Atomic.t;
}

let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ())

let create ?(host = "127.0.0.1") ~port () =
  Lazy.force ignore_sigpipe;
  match
    let addr = Unix.inet_addr_of_string host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (addr, port));
       Unix.listen fd 16
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let s_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> port
    in
    { fd; s_host = host; s_port; stopping = Atomic.make false }
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Failure msg -> Error ("bad listen address: " ^ msg)

let port t = t.s_port
let host t = t.s_host

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Frames arrive until clean EOF, an error, or a [None] from the handler
   (abrupt close — the wire-visible form of a chaos kill). *)
let serve_conn conn ~handler =
  let rec loop () =
    match Frame.read_fd conn with
    | Error _ -> ()
    | Ok (kind, payload) -> (
        match handler kind payload with
        | None | (exception _) -> ()
        | Some (rk, rp) -> (
            match Frame.write_fd conn rk rp with
            | Ok () -> loop ()
            | Error _ -> ()))
  in
  loop ()

let run ?(workers = 1) t ~handler =
  if workers < 1 then Xk_util.Err.invalid "Server.run: workers < 1";
  (* The connection fd must be closed on every exit from serve_conn,
     and no per-connection failure — a client gone mid-frame, a handler
     bug — may take the accept loop (or a pool worker) with it. *)
  let serve_accepted conn =
    Fun.protect
      ~finally:(fun () -> close_quietly conn)
      (fun () ->
        try serve_conn conn ~handler
        with Unix.Unix_error _ | Sys_error _ -> ())
  in
  (* With [workers = 1] connections are served inline on the accepting
     domain (the original iterative server).  With more, accepted
     connections are handed to a small domain pool; the accept loop
     stays responsive while a slow client drains its frames.  The queue
     is bounded: past [workers * 8] waiting connections the server
     sheds the newcomer by closing it immediately — the client sees an
     abrupt EOF, exactly like a chaos kill, and fails over — instead of
     queueing unboundedly ahead of its own timeout. *)
  let pool =
    if workers = 1 then None else Some (Xk_util.Domain_pool.create ~domains:workers ())
  in
  let pending = Atomic.make 0 in
  let max_pending = workers * 8 in
  let dispatch conn =
    match pool with
    | None -> serve_accepted conn
    | Some pool ->
        if Atomic.get pending >= max_pending then close_quietly conn
        else begin
          Atomic.incr pending;
          Xk_util.Domain_pool.submit pool (fun () ->
              Fun.protect
                ~finally:(fun () -> Atomic.decr pending)
                (fun () -> serve_accepted conn))
        end
  in
  let rec accept_loop () =
    match Unix.accept t.fd with
    | conn, _ ->
        dispatch conn;
        if Atomic.get t.stopping then () else accept_loop ()
    | exception
        Unix.Unix_error ((EINTR | ECONNABORTED | EAGAIN | EWOULDBLOCK), _, _)
      ->
        (* Transient: the client aborted between SYN and accept, or a
           signal/readiness blip.  Keep accepting. *)
        if Atomic.get t.stopping then () else accept_loop ()
    | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
        (* Descriptor pressure: back off briefly so in-flight
           connections can release fds instead of hot-spinning on the
           same failure. *)
        if Atomic.get t.stopping then ()
        else begin
          Unix.sleepf 0.05;
          accept_loop ()
        end
    | exception Unix.Unix_error (_, _, _) when Atomic.get t.stopping -> ()
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Xk_util.Domain_pool.shutdown pool)
    accept_loop

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    close_quietly t.fd
  end
