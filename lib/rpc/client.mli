(** Client side of the shard RPC: one TCP connection per call.

    Each call connects, sends a single {!Frame.Query} (or [Ping]), waits
    for the reply with a socket receive timeout, and closes.  The
    timeout is derived from the request's remaining budget when there is
    one, so a SIGSTOPped or wedged server surfaces as a typed [Timeout]
    within the caller's deadline instead of hanging the gather tier.

    All failures — refused connections, malformed frames, remote
    refusals — are wrapped in {!Rpc_failed}, which the remote transport
    in [Shard_exec] treats exactly like a local replica fault: record it
    against the replica's health window and fail over. *)

type error =
  | Frame of Frame.error  (** transport or framing failure *)
  | Remote of string  (** the server answered [Refused] *)
  | Unexpected of Frame.kind  (** protocol confusion: wrong reply kind *)

val error_message : error -> string

exception Rpc_failed of error

val default_timeout_ms : float
(** Receive/send timeout when the request carries no deadline (5000). *)

val query :
  ?timeout_ms:float -> host:string -> port:int -> Wire.query -> Wire.served
(** Run one per-shard query against a shard server.  The socket timeout
    is the query's remaining deadline plus slack when set, otherwise
    [timeout_ms].  Raises {!Rpc_failed} on any failure. *)

val ping : ?timeout_ms:float -> host:string -> port:int -> unit -> unit
(** Liveness probe; raises {!Rpc_failed} if the server does not answer
    [Pong] in time.  Used by CI to wait for fleet readiness. *)
