(** Payload codecs for the shard-serving RPC: a per-shard query request
    and its reply, carried inside {!Frame} payloads.

    Everything reuses the storage codecs: varints ({!Xk_storage.Varint})
    for counts and indices, raw IEEE-754 bits for scores (so a score
    crosses the wire bit-exactly — the gather's parity guarantee needs
    float identity, not approximation), length-prefixed bytes for
    keywords.  Decoders validate every tag and length and return
    [Frame.Malformed] on anything else; they never raise.

    Deadline propagation: the client serializes the {e remaining} budget
    (wall milliseconds and/or deterministic ticks) into the request; the
    server rebuilds a fresh {!Xk_resilience.Budget.t} from it, so a
    remote shard degrades to a confirmed [Partial] prefix exactly like
    an in-process one. *)

type query = {
  q_shard : int;  (** which shard the server is expected to serve *)
  q_words : string list;  (** the request's keywords, as given *)
  q_semantics : Xk_core.Engine.semantics;
  q_mode : Xk_core.Engine.mode;
  q_deadline_ms : float option;  (** remaining wall budget at send time *)
  q_ticks : int option;  (** remaining deterministic tick allowance *)
}

type served = {
  s_summary : Xk_index.Sharding.root_summary option;
      (** [None]: the budget expired before the summary finished *)
  s_outcome : Xk_core.Engine.run_outcome;
      (** hits in global numbering, shard-local root hits dropped *)
  s_bound : float;
      (** upper bound on anything the shard did not confirm *)
}

type reply =
  | Served of served
  | Refused of string
      (** the server could not serve: wrong shard, undecodable request,
          or a handler exception — a replica failure to the client *)

val encode_query : query -> string
val decode_query : string -> (query, Frame.error) result
val encode_reply : reply -> string
val decode_reply : string -> (reply, Frame.error) result
