(* Connection-per-request RPC client.  Plain blocking sockets with
   kernel timeouts: the fleet is loopback-or-LAN scale, so connect
   latency is dwarfed by query time, and a fresh connection per call
   keeps failover trivial (no half-dead pooled sockets). *)

type error =
  | Frame of Frame.error
  | Remote of string
  | Unexpected of Frame.kind

let error_message = function
  | Frame e -> Frame.error_message e
  | Remote msg -> "server refused: " ^ msg
  | Unexpected _ -> "unexpected reply kind"

exception Rpc_failed of error

let fail e = raise (Rpc_failed e)

let default_timeout_ms = 5000.

(* A write to a server that died mid-exchange must surface as EPIPE, not
   kill the process. *)
let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ())

let resolve host port =
  match Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
  with
  | { Unix.ai_addr; _ } :: _ -> ai_addr
  | [] -> fail (Frame (Frame.Io (Printf.sprintf "cannot resolve %s" host)))

let connect ~host ~port ~timeout_ms =
  Lazy.force ignore_sigpipe;
  let addr = resolve host port in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  let secs = Float.max 0.001 (timeout_ms /. 1000.) in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO secs
   with Unix.Unix_error _ -> ());
  match Unix.connect fd addr with
  | () -> fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      fail
        (Frame
           (Frame.Io
              (Printf.sprintf "connect %s:%d: %s" host port
                 (Unix.error_message e))))

let with_connection ~host ~port ~timeout_ms f =
  let fd = connect ~host ~port ~timeout_ms in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let exchange fd kind payload =
  (match Frame.write_fd fd kind payload with
  | Ok () -> ()
  | Error e -> fail (Frame e));
  match Frame.read_fd fd with
  | Ok reply -> reply
  | Error e -> fail (Frame e)

(* Give the server's own budgeted degradation a chance to answer before
   the client cuts the connection. *)
let slack_ms = 250.

let query ?(timeout_ms = default_timeout_ms) ~host ~port (q : Wire.query) =
  let timeout_ms =
    match q.q_deadline_ms with
    | Some d -> Float.max 1. d +. slack_ms
    | None -> timeout_ms
  in
  with_connection ~host ~port ~timeout_ms (fun fd ->
      match exchange fd Frame.Query (Wire.encode_query q) with
      | Frame.Reply, payload -> (
          match Wire.decode_reply payload with
          | Ok (Wire.Served s) -> s
          | Ok (Wire.Refused msg) -> fail (Remote msg)
          | Error e -> fail (Frame e))
      | kind, _ -> fail (Unexpected kind))

let ping ?(timeout_ms = default_timeout_ms) ~host ~port () =
  with_connection ~host ~port ~timeout_ms (fun fd ->
      match exchange fd Frame.Ping "" with
      | Frame.Pong, _ -> ()
      | kind, _ -> fail (Unexpected kind))
