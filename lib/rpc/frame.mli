(** Length-prefixed, CRC-framed binary message layer — the unit of
    exchange between the gather tier and a shard server.

    One frame on the wire:

    {v
    offset  size  field
    0       2     magic "XK"
    2       1     protocol version (currently 1)
    3       1     frame kind
    4       4     payload length, big-endian
    8       4     CRC-32 of the whole frame with this field zeroed
                  (magic, version, kind, length and payload), big-endian
    12      n     payload
    v}

    The checksum covers every other byte of the frame, so any single-bit
    corruption — in the header fields or the payload — surfaces as a
    typed {!error}; nothing in this module ever lets an exception escape
    on malformed input.  Payloads above [limit] (default
    {!default_limit}) are refused before any allocation proportional to
    the claimed length. *)

type kind = Ping | Pong | Query | Reply

type error =
  | Io of string  (** connection-level failure: refused, reset, EOF mid-frame *)
  | Timeout  (** the socket receive timeout expired *)
  | Closed  (** clean EOF at a frame boundary *)
  | Bad_magic of string
  | Bad_version of int
  | Bad_kind of int
  | Oversized of { length : int; limit : int }
  | Truncated of { expected : int; got : int }
      (** the input ends before the header or the declared payload *)
  | Trailing of int  (** whole-string decode: bytes left after the frame *)
  | Crc_mismatch of { expected : int; actual : int }
  | Malformed of string  (** the payload does not decode (see {!Wire}) *)

val error_message : error -> string

val version : int
val header_size : int

val default_limit : int
(** Default maximum payload length (16 MiB). *)

val encode : kind -> string -> string
(** A complete frame for the payload.  Raises [Invalid_argument] only on
    a payload longer than {!default_limit} — a caller bug, not input. *)

val decode : ?limit:int -> string -> (kind * string, error) result
(** Decode exactly one frame spanning the whole string; never raises.
    Validation order: header presence, magic, version, kind, length
    bounds, payload presence, trailing bytes, checksum. *)

val write_fd : Unix.file_descr -> kind -> string -> (unit, error) result
(** Write one frame, looping over partial writes.  [EPIPE]/reset map to
    [Io]; a send timeout maps to [Timeout]. *)

val read_fd : ?limit:int -> Unix.file_descr -> (kind * string, error) result
(** Read exactly one frame.  EOF before the first header byte is
    [Closed]; EOF inside a frame is [Io]; a receive timeout
    ([SO_RCVTIMEO]) is [Timeout].  Never raises. *)
