(* The RPC layer: frame-codec fuzzing (the tentpole property: malformed
   input of any kind yields a typed Frame error, never a raise), wire
   payload round-trips, budget propagation plumbing, and end-to-end
   remote serving drills over real TCP — parity with the in-process
   run, failover past a stopped server, and typed degradation when
   every replica of a shard is gone. *)

open Xk_rpc

let check = Alcotest.check
let tc = Alcotest.test_case

(* --- Frame codec fuzz ------------------------------------------------- *)

let arb_kind =
  QCheck.oneofl [ Frame.Ping; Frame.Pong; Frame.Query; Frame.Reply ]

let arb_payload = QCheck.(string_of_size (Gen.int_bound 300))

(* Any decode call on any input must return; a raise fails the property. *)
let decode_totally ?limit s =
  match Frame.decode ?limit s with
  | Ok _ as r -> r
  | Error _ as r -> r
  | exception e ->
      QCheck.Test.fail_reportf "decode raised %s" (Printexc.to_string e)

let frame_roundtrip =
  QCheck.Test.make ~count:500 ~name:"frame: encode/decode round-trip"
    QCheck.(pair arb_kind arb_payload)
    (fun (kind, payload) ->
      match decode_totally (Frame.encode kind payload) with
      | Ok (k, p) -> k = kind && p = payload
      | Error e ->
          QCheck.Test.fail_reportf "valid frame rejected: %s"
            (Frame.error_message e))

let frame_truncation =
  QCheck.Test.make ~count:200
    ~name:"frame: every strict prefix is a typed error"
    QCheck.(pair arb_kind arb_payload)
    (fun (kind, payload) ->
      let frame = Frame.encode kind payload in
      List.for_all
        (fun n ->
          match decode_totally (String.sub frame 0 n) with
          | Ok _ ->
              QCheck.Test.fail_reportf "truncated frame (%d of %d bytes) \
                                        decoded" n (String.length frame)
          | Error (Frame.Truncated _) -> true
          | Error e ->
              (* A prefix that cuts into the CRC field can also read as a
                 checksum or length anomaly — typed either way. *)
              ignore (Frame.error_message e);
              true)
        (List.init (String.length frame) Fun.id))

let frame_bit_flips =
  QCheck.Test.make ~count:300
    ~name:"frame: any single-bit flip is a typed error"
    QCheck.(triple arb_kind arb_payload (pair small_nat (int_bound 7)))
    (fun (kind, payload, (pos, bit)) ->
      let frame = Frame.encode kind payload in
      let pos = pos mod String.length frame in
      let b = Bytes.of_string frame in
      Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor (1 lsl bit));
      match decode_totally (Bytes.to_string b) with
      | Ok _ ->
          QCheck.Test.fail_reportf
            "bit %d of byte %d flipped and the frame still decoded" bit pos
      | Error _ -> true)

let frame_garbage =
  QCheck.Test.make ~count:500 ~name:"frame: random bytes never raise"
    QCheck.(string_of_size (Gen.int_bound 64))
    (fun s -> Result.is_error (decode_totally s))

let frame_limits () =
  (* An oversized declared length is refused before payload allocation. *)
  let huge = Bytes.of_string (Frame.encode Frame.Query "xyz") in
  Bytes.set_int32_be huge 4 0x7FFFFFFFl;
  (match Frame.decode (Bytes.to_string huge) with
  | Error (Frame.Oversized { length; _ }) ->
      check Alcotest.int "claimed length surfaces" 0x7FFFFFFF length
  | _ -> Alcotest.fail "oversized length accepted");
  (* A per-call limit tightens the default. *)
  let f = Frame.encode Frame.Reply (String.make 100 'a') in
  (match Frame.decode ~limit:10 f with
  | Error (Frame.Oversized { limit = 10; _ }) -> ()
  | _ -> Alcotest.fail "per-call limit ignored");
  (* Wrong protocol version: typed, and checked before the checksum. *)
  let v = Bytes.of_string (Frame.encode Frame.Ping "") in
  Bytes.set_uint8 v 2 (Frame.version + 1);
  (match Frame.decode (Bytes.to_string v) with
  | Error (Frame.Bad_version _) -> ()
  | _ -> Alcotest.fail "future version accepted");
  (* Unknown kind byte. *)
  let k = Bytes.of_string (Frame.encode Frame.Ping "") in
  Bytes.set_uint8 k 3 9;
  (match Frame.decode (Bytes.to_string k) with
  | Error (Frame.Bad_kind 9) -> ()
  | _ -> Alcotest.fail "unknown kind accepted");
  (* Trailing bytes after a complete frame. *)
  match Frame.decode (Frame.encode Frame.Pong "x" ^ "!!") with
  | Error (Frame.Trailing 2) -> ()
  | _ -> Alcotest.fail "trailing bytes accepted"

(* --- Wire payload codecs ---------------------------------------------- *)

let arb_hit =
  QCheck.map
    (fun (node, score) -> { Xk_baselines.Hit.node = node + 1; score })
    QCheck.(pair small_nat (float_bound_inclusive 10.))

let arb_outcome =
  QCheck.oneof
    [
      QCheck.map
        (fun hs -> Xk_core.Engine.Done hs)
        (QCheck.small_list arb_hit);
      QCheck.map
        (fun hs -> Xk_core.Engine.Partial hs)
        (QCheck.small_list arb_hit);
      QCheck.always Xk_core.Engine.Timed_out;
    ]

let arb_mode =
  QCheck.oneof
    [
      QCheck.map
        (fun a -> Xk_core.Engine.Complete a)
        (QCheck.oneofl
           Xk_core.Engine.[ Join_based; Stack_based; Index_based; Oracle ]);
      QCheck.map
        (fun (a, k) -> Xk_core.Engine.Topk (a, k + 1))
        QCheck.(
          pair
            (oneofl
               Xk_core.Engine.
                 [ Topk_join; Complete_then_sort; Rdil_baseline; Hybrid ])
            small_nat);
    ]

let arb_query =
  QCheck.map
    (fun ((shard, words), (mode, (dl, ticks))) ->
      {
        Wire.q_shard = shard;
        q_words = words;
        q_semantics = (if shard mod 2 = 0 then Xk_core.Engine.Elca else Slca);
        q_mode = mode;
        q_deadline_ms = Option.map Float.abs dl;
        q_ticks = Option.map abs ticks;
      })
    QCheck.(
      pair
        (pair small_nat (small_list (string_of_size (Gen.int_bound 12))))
        (pair arb_mode (pair (option float) (option small_nat))))

(* Bounds are routinely +/- infinity (Done / missing shards), so the
   generator must cover them and the codec must keep them exact. *)
let arb_reply =
  QCheck.oneof
    [
      QCheck.map
        (fun (outcome, (bound, summary)) ->
          Wire.Served
            {
              s_summary =
                Option.map
                  (fun (all, free) ->
                    {
                      Xk_index.Sharding.rs_best_all = Array.of_list all;
                      rs_best_free = Array.of_list free;
                      rs_full_subtree = bound > 0.;
                    })
                  summary;
              s_outcome = outcome;
              s_bound = bound;
            })
        QCheck.(
          pair arb_outcome
            (pair
               (oneof
                  [
                    float_bound_inclusive 5.;
                    always infinity;
                    always neg_infinity;
                  ])
               (option
                  (pair (small_list (float_bound_inclusive 3.))
                     (small_list (float_bound_inclusive 3.))))));
      QCheck.map
        (fun m -> Wire.Refused m)
        QCheck.(string_of_size (Gen.int_bound 40));
    ]

let wire_query_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: query round-trip" arb_query
    (fun q ->
      match Wire.decode_query (Wire.encode_query q) with
      | Ok q' -> q = q'
      | Error e ->
          QCheck.Test.fail_reportf "query rejected: %s" (Frame.error_message e))

let wire_reply_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: reply round-trip" arb_reply
    (fun r ->
      match Wire.decode_reply (Wire.encode_reply r) with
      | Ok r' -> r = r'
      | Error e ->
          QCheck.Test.fail_reportf "reply rejected: %s" (Frame.error_message e))

let wire_mutations_typed =
  QCheck.Test.make ~count:300
    ~name:"wire: truncated/mutated payloads are Malformed, never a raise"
    QCheck.(triple arb_reply small_nat (int_bound 7))
    (fun (r, pos, bit) ->
      let payload = Wire.encode_reply r in
      let n = String.length payload in
      let decode s =
        match Wire.decode_reply s with
        | Ok _ -> true
        | Error (Frame.Malformed _) -> true
        | Error e ->
            QCheck.Test.fail_reportf "unexpected error class: %s"
              (Frame.error_message e)
        | exception e ->
            QCheck.Test.fail_reportf "decode_reply raised %s"
              (Printexc.to_string e)
      in
      (* Every strict prefix must be typed (not necessarily an error for
         the empty tail of a list, but never a raise)... *)
      List.for_all (fun i -> decode (String.sub payload 0 i)) (List.init n Fun.id)
      (* ...and so must any single-bit mutation. *)
      && (n = 0 || decode
            (let b = Bytes.of_string payload in
             let pos = pos mod n in
             Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor (1 lsl bit));
             Bytes.to_string b)))

(* --- Budget propagation ----------------------------------------------- *)

let budget_remaining () =
  let b = Xk_resilience.Budget.unlimited in
  check Alcotest.bool "unlimited: no deadline" true
    (Xk_resilience.Budget.remaining_ms b = None);
  check Alcotest.bool "unlimited: no ticks" true
    (Xk_resilience.Budget.ticks_left b = None);
  let b = Xk_resilience.Budget.create ~deadline_ms:60_000. ~ticks:10 () in
  (match Xk_resilience.Budget.remaining_ms b with
  | Some ms when ms > 0. && ms <= 60_000. -> ()
  | Some ms -> Alcotest.failf "remaining %f out of range" ms
  | None -> Alcotest.fail "deadline lost");
  check (Alcotest.option Alcotest.int) "full tick allowance" (Some 10)
    (Xk_resilience.Budget.ticks_left b);
  for _ = 1 to 4 do
    ignore (Xk_resilience.Budget.alive b)
  done;
  check (Alcotest.option Alcotest.int) "ticks consumed" (Some 6)
    (Xk_resilience.Budget.ticks_left b);
  let spent = Xk_resilience.Budget.create ~deadline_ms:0. ~ticks:1 () in
  ignore (Xk_resilience.Budget.alive spent);
  ignore (Xk_resilience.Budget.alive spent);
  check (Alcotest.option Alcotest.int) "ticks clamp at 0" (Some 0)
    (Xk_resilience.Budget.ticks_left spent);
  match Xk_resilience.Budget.remaining_ms spent with
  | Some 0. -> ()
  | other ->
      Alcotest.failf "expired budget reports %s"
        (match other with
        | None -> "no deadline"
        | Some ms -> Printf.sprintf "%f ms" ms)

(* --- End-to-end remote serving ---------------------------------------- *)

let hits_identical (a : Xk_baselines.Hit.t list) (b : Xk_baselines.Hit.t list)
    =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Xk_baselines.Hit.t) (y : Xk_baselines.Hit.t) ->
         x.node = y.node && x.score = y.score)
       a b

type fleet = {
  listeners : Server.t array array;
  domains : unit Domain.t list;
  endpoints : (string * int) array array;
}

(* One server per (shard, replica) on an ephemeral localhost port, each
   run in its own domain — real TCP, in-process only for test hosting. *)
let launch_fleet sharded ~replicas =
  let shards = Xk_index.Sharding.count sharded in
  let listeners =
    Array.init shards (fun shard ->
        Array.init replicas (fun replica ->
            let srv =
              Xk_exec.Shard_server.create ~sharding:sharded ~shard ~replica
            in
            match Xk_exec.Shard_server.serve ~port:0 srv with
            | Error msg -> Alcotest.failf "fleet bring-up: %s" msg
            | Ok l -> (srv, l)))
  in
  let domains =
    Array.to_list listeners
    |> List.concat_map Array.to_list
    |> List.map (fun (srv, l) ->
           Domain.spawn (fun () ->
               Server.run l ~handler:(Xk_exec.Shard_server.dispatch srv)))
  in
  let listeners = Array.map (Array.map snd) listeners in
  {
    listeners;
    domains;
    endpoints = Array.map (Array.map (fun l -> (Server.host l, Server.port l))) listeners;
  }

let stop_fleet f =
  Array.iter (Array.iter Server.stop) f.listeners;
  List.iter Domain.join f.domains

let remote_workload seed =
  let rng = Xk_datagen.Rng.create seed in
  List.concat
    (List.init 4 (fun _ ->
         let words = Tutil.random_query rng ~k:2 ~alphabet:26 in
         Xk_core.Engine.
           [
             complete_request ~semantics:Elca words;
             topk_request ~semantics:Elca ~k:4 words;
             topk_request ~semantics:Slca ~k:3 words;
           ]))

let with_exec sx f =
  Fun.protect ~finally:(fun () -> Xk_exec.Shard_exec.shutdown sx) (fun () -> f sx)

(* Remote serving is bit-identical to the in-process run; a ping
   answers on every replica. *)
let remote_parity () =
  let doc = Tutil.random_doc 2041 in
  let sharded = Xk_index.Sharding.partition ~shards:3 doc in
  let reqs = remote_workload 17 in
  let reference =
    with_exec (Xk_exec.Shard_exec.create ~domains:2 sharded) (fun sx ->
        List.map (Xk_exec.Shard_exec.exec sx) reqs)
  in
  let fleet = launch_fleet sharded ~replicas:2 in
  Fun.protect
    ~finally:(fun () -> stop_fleet fleet)
    (fun () ->
      Array.iter
        (Array.iter (fun (host, port) -> Client.ping ~host ~port ()))
        fleet.endpoints;
      with_exec
        (Xk_exec.Shard_exec.create ~domains:2 ~endpoints:fleet.endpoints
           sharded)
        (fun sx ->
          check Alcotest.bool "remote transport reported" true
            (Xk_exec.Shard_exec.remote sx);
          check Alcotest.int "replica count from the endpoint grid" 2
            (Xk_exec.Shard_exec.replica_count sx);
          List.iter2
            (fun r o ->
              match (r, o) with
              | Xk_exec.Query_service.Ok a, Xk_exec.Query_service.Ok b
                when hits_identical a b ->
                  ()
              | _, o ->
                  Alcotest.failf "remote outcome %s diverged from in-process"
                    (Xk_exec.Query_service.outcome_label o))
            reference
            (List.map (Xk_exec.Shard_exec.exec sx) reqs)))

(* Stopping one server of every shard is invisible (failover), stopping
   every replica of one shard degrades with exactly the reachable
   answer — the +inf bound rule over a real network hop. *)
let remote_kill_drills () =
  let doc = Tutil.random_doc 2042 in
  let sharded = Xk_index.Sharding.partition ~shards:3 doc in
  let assignment = Xk_index.Sharding.assignment sharded in
  let victim = assignment.(0) in
  let queries =
    let rng = Xk_datagen.Rng.create 23 in
    List.init 5 (fun _ -> Tutil.random_query rng ~k:2 ~alphabet:26)
  in
  let complete w = Xk_core.Engine.complete_request ~semantics:Elca w in
  let topk w = Xk_core.Engine.topk_request ~semantics:Elca ~k:4 w in
  let reqs = List.concat_map (fun w -> [ complete w; topk w ]) queries in
  let fleet = launch_fleet sharded ~replicas:2 in
  Fun.protect
    ~finally:(fun () -> stop_fleet fleet)
    (fun () ->
      let run_remote () =
        with_exec
          (Xk_exec.Shard_exec.create ~domains:2 ~endpoints:fleet.endpoints
             sharded)
          (fun sx ->
            let outcomes = List.map (Xk_exec.Shard_exec.exec sx) reqs in
            (outcomes, Xk_exec.Shard_exec.stats sx))
      in
      let reference, _ = run_remote () in
      List.iter
        (fun o ->
          match o with
          | Xk_exec.Query_service.Ok _ -> ()
          | o ->
              Alcotest.failf "fault-free remote run came back %s"
                (Xk_exec.Query_service.outcome_label o))
        reference;
      (* Reachable reference for the degraded drill, from the fault-free
         complete answers. *)
      let sx_ref = Xk_exec.Shard_exec.create ~domains:2 sharded in
      let reachable =
        with_exec sx_ref (fun sx ->
            List.map
              (fun w ->
                match Xk_exec.Shard_exec.exec sx (complete w) with
                | Xk_exec.Query_service.Ok hits ->
                    List.filter
                      (fun (h : Xk_baselines.Hit.t) ->
                        h.node <> 0
                        && fst (Xk_exec.Shard_exec.locate sx h) <> victim)
                      hits
                | o ->
                    Alcotest.failf "reachable reference came back %s"
                      (Xk_exec.Query_service.outcome_label o))
              queries)
      in
      (* Drill 1: stop replica 0 of the victim shard. *)
      Server.stop fleet.listeners.(victim).(0);
      let outcomes, stats = run_remote () in
      List.iter2
        (fun r o ->
          match (r, o) with
          | Xk_exec.Query_service.Ok a, Xk_exec.Query_service.Ok b
            when hits_identical a b ->
              ()
          | _, o ->
              Alcotest.failf
                "one server down: outcome %s diverged from fault-free"
                (Xk_exec.Query_service.outcome_label o))
        reference outcomes;
      if stats.Xk_exec.Shard_exec.failovers = 0 then
        Alcotest.fail "stopped server never exercised failover";
      check Alcotest.int "nothing degraded with a live replica" 0
        stats.Xk_exec.Shard_exec.degraded;
      (* Drill 2: stop the victim's last replica; every query must come
         back Degraded with exactly the reachable answer. *)
      Server.stop fleet.listeners.(victim).(1);
      let outcomes, stats = run_remote () in
      let scores = List.map (fun (h : Xk_baselines.Hit.t) -> h.score) in
      let member_of set (h : Xk_baselines.Hit.t) =
        List.exists
          (fun (f : Xk_baselines.Hit.t) -> f.node = h.node && f.score = h.score)
          set
      in
      List.iteri
        (fun i o ->
          let expected = List.nth reachable (i / 2) in
          match o with
          | Xk_exec.Query_service.Degraded { hits; missing_shards; _ } ->
              check
                (Alcotest.list Alcotest.int)
                "missing shard list" [ victim ] missing_shards;
              if i mod 2 = 0 then begin
                if
                  not
                    (hits_identical (Xk_baselines.Hit.sort_desc expected) hits)
                then
                  Alcotest.fail "degraded complete differs from reachable hits"
              end
              else begin
                let want = Xk_baselines.Hit.top_k 4 expected in
                if scores want <> scores hits then
                  Alcotest.fail "degraded top-K scores differ from reachable";
                if not (List.for_all (member_of expected) hits) then
                  Alcotest.fail "degraded top-K reported an unreachable hit"
              end
          | o ->
              Alcotest.failf "shard fully down: outcome %s, wanted Degraded"
                (Xk_exec.Query_service.outcome_label o))
        outcomes;
      check Alcotest.int "never Failed" 0 stats.Xk_exec.Shard_exec.failed)

(* An armed Drop schedule refuses the connection client-side: failover
   covers it, and the drops counter records the refusals. *)
let drop_schedule () =
  let doc = Tutil.random_doc 2043 in
  let sharded = Xk_index.Sharding.partition ~shards:2 doc in
  let fleet = launch_fleet sharded ~replicas:2 in
  Fun.protect
    ~finally:(fun () ->
      Xk_resilience.Chaos.clear ();
      stop_fleet fleet)
    (fun () ->
      Xk_resilience.Chaos.install
        [
          Xk_resilience.Chaos.Drop
            {
              target = { t_shard = None; t_replica = Some 0 };
              from_tick = 0;
            };
        ];
      with_exec
        (Xk_exec.Shard_exec.create ~domains:2 ~endpoints:fleet.endpoints
           sharded)
        (fun sx ->
          let words = Tutil.random_query (Xk_datagen.Rng.create 5) ~k:2 ~alphabet:26 in
          (match
             Xk_exec.Shard_exec.exec sx
               (Xk_core.Engine.complete_request ~semantics:Elca words)
           with
          | Xk_exec.Query_service.Ok _ -> ()
          | o ->
              Alcotest.failf "dropped connections were not failed over: %s"
                (Xk_exec.Query_service.outcome_label o));
          let stats = Xk_exec.Shard_exec.stats sx in
          if stats.Xk_exec.Shard_exec.failovers = 0 then
            Alcotest.fail "drops never exercised failover";
          if (Xk_resilience.Chaos.counters ()).Xk_resilience.Chaos.drops = 0
          then Alcotest.fail "drop counter never moved"))

(* Deterministic tick budgets propagate: a remote shard served under an
   exhausted tick allowance degrades to a Partial prefix, same as the
   in-process anytime engine. *)
let remote_budget_degrades () =
  let doc = Tutil.random_doc 2044 in
  let sharded = Xk_index.Sharding.partition ~shards:2 doc in
  (* A keyword with at least one posting in shard 0, so the server-side
     budget provably gets polled (root_summary checks per posting). *)
  let word =
    let idx0 = Xk_index.Sharding.index sharded 0 in
    let rec find k =
      if k >= 26 then Alcotest.fail "no keyword present in shard 0"
      else
        let w = Xk_datagen.Random_tree.keyword k in
        if Xk_index.Index.term_id idx0 w <> None then w else find (k + 1)
    in
    find 0
  in
  let req = Xk_core.Engine.topk_request ~semantics:Elca ~k:3 [ word ] in
  let fleet = launch_fleet sharded ~replicas:1 in
  Fun.protect
    ~finally:(fun () -> stop_fleet fleet)
    (fun () ->
      with_exec
        (Xk_exec.Shard_exec.create ~domains:2 ~endpoints:fleet.endpoints
           sharded)
        (fun sx ->
          (* Unbudgeted, the same request serves fine over the wire... *)
          (match Xk_exec.Shard_exec.exec sx req with
          | Xk_exec.Query_service.Ok (_ :: _) -> ()
          | o ->
              Alcotest.failf "unbudgeted remote run came back %s"
                (Xk_exec.Query_service.outcome_label o));
          (* ...while a zero tick allowance, carried in the request
             frame and rebuilt server-side, degrades it. *)
          match
            Xk_exec.Shard_exec.exec sx
              ~budget_for:(fun _ -> Xk_resilience.Budget.create ~ticks:0 ())
              req
          with
          | Xk_exec.Query_service.Partial _ | Xk_exec.Query_service.Timeout ->
              ()
          | o ->
              Alcotest.failf
                "starved remote budget still returned %s (expected \
                 Partial/Timeout)"
                (Xk_exec.Query_service.outcome_label o)))

(* --- Accept-loop resilience ------------------------------------------- *)

let open_fd_count () =
  if Sys.file_exists "/proc/self/fd" then
    Some (Array.length (Sys.readdir "/proc/self/fd"))
  else None

(* A storm of half-open clients — connect and vanish, die mid-frame,
   abort with an RST, or spray garbage — must neither kill the accept
   loop nor leak connection fds: the server still answers a
   well-formed ping afterwards, with no descriptor growth. *)
let half_open_hammer () =
  let srv =
    match Server.create ~port:0 () with
    | Ok s -> s
    | Error msg -> Alcotest.failf "listen: %s" msg
  in
  let handler kind payload =
    match kind with
    | Frame.Ping -> Some (Frame.Pong, "")
    | k -> Some (k, payload)
  in
  let d = Domain.spawn (fun () -> Server.run srv ~handler) in
  let host = Server.host srv and port = Server.port srv in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let baseline = open_fd_count () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Domain.join d)
    (fun () ->
      for i = 0 to 79 do
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd addr;
        (match i mod 4 with
        | 0 -> () (* silent close: clean EOF before any frame *)
        | 1 ->
            (* die mid-frame: a dangling partial header *)
            ignore (Unix.write_substring fd "XK" 0 2)
        | 2 ->
            (* abort with an RST instead of a FIN *)
            ignore (Unix.write_substring fd "xxx" 0 3);
            Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0)
        | _ ->
            (* a full buffer of garbage that fails frame decode *)
            let junk = String.make 64 '\xff' in
            ignore (Unix.write_substring fd junk 0 (String.length junk)));
        Unix.close fd
      done;
      (* The iterative loop drains connections in order, so a served
         ping proves every hammer connection was accepted, failed
         cleanly and was closed. *)
      (try Client.ping ~host ~port ()
       with Client.Rpc_failed e ->
         Alcotest.failf "server did not survive the hammer: %s"
           (Client.error_message e));
      match (baseline, open_fd_count ()) with
      | Some before, Some after ->
          if after > before then
            Alcotest.failf "descriptor leak: %d open fds before, %d after"
              before after
      | _ -> ())

(* Two clients against [run ~workers:2]: the first parks its handler —
   and with it a whole pool worker — until the second client has been
   answered.  Only a concurrent server can satisfy both; the iterative
   loop would serve them in accept order and deadlock the first. *)
let worker_pool_two_clients () =
  let srv =
    match Server.create ~port:0 () with
    | Ok s -> s
    | Error msg -> Alcotest.failf "listen: %s" msg
  in
  let lock = Mutex.create () in
  let released = ref false in
  let handler kind payload =
    match (kind : Frame.kind) with
    | Frame.Ping when payload = "fast" ->
        Mutex.lock lock;
        released := true;
        Mutex.unlock lock;
        Some (Frame.Pong, "fast")
    | Frame.Ping ->
        (* Poll rather than Condition.wait so a starved run times out
           into a distinguishable reply instead of hanging the suite. *)
        let deadline = Unix.gettimeofday () +. 10.0 in
        let rec wait () =
          Mutex.lock lock;
          let r = !released in
          Mutex.unlock lock;
          if r then Some (Frame.Pong, "slow")
          else if Unix.gettimeofday () > deadline then
            Some (Frame.Pong, "starved")
          else begin
            Unix.sleepf 0.005;
            wait ()
          end
        in
        wait ()
    | k -> Some (k, payload)
  in
  let d = Domain.spawn (fun () -> Server.run ~workers:2 srv ~handler) in
  let addr =
    Unix.ADDR_INET (Unix.inet_addr_of_string (Server.host srv), Server.port srv)
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Domain.join d)
    (fun () ->
      let connect () =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd addr;
        fd
      in
      let write fd payload =
        match Frame.write_fd fd Frame.Ping payload with
        | Ok () -> ()
        | Error e -> Alcotest.failf "write %s: %s" payload (Frame.error_message e)
      in
      let slow = connect () in
      write slow "slow";
      (* Give the pool a beat to park the slow connection on a worker. *)
      Unix.sleepf 0.05;
      let fast = connect () in
      write fast "fast";
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close slow with Unix.Unix_error _ -> ());
          try Unix.close fast with Unix.Unix_error _ -> ())
        (fun () ->
          (match Frame.read_fd fast with
          | Ok (Frame.Pong, "fast") -> ()
          | Ok (k, p) ->
              Alcotest.failf "fast client: unexpected reply (%s, %S)"
                (match k with
                | Frame.Ping -> "ping"
                | Frame.Pong -> "pong"
                | Frame.Query -> "query"
                | Frame.Reply -> "reply")
                p
          | Error e ->
              Alcotest.failf "fast client: %s" (Frame.error_message e));
          match Frame.read_fd slow with
          | Ok (Frame.Pong, "slow") -> ()
          | Ok (Frame.Pong, "starved") ->
              Alcotest.fail
                "slow client starved: second connection was never served \
                 concurrently"
          | Ok _ -> Alcotest.fail "slow client: unexpected reply"
          | Error e ->
              Alcotest.failf "slow client: %s" (Frame.error_message e)))

let suite =
  [
    ( "rpc.frame",
      [
        QCheck_alcotest.to_alcotest frame_roundtrip;
        QCheck_alcotest.to_alcotest frame_truncation;
        QCheck_alcotest.to_alcotest frame_bit_flips;
        QCheck_alcotest.to_alcotest frame_garbage;
        tc "limits, versions, kinds, trailing" `Quick frame_limits;
      ] );
    ( "rpc.wire",
      [
        QCheck_alcotest.to_alcotest wire_query_roundtrip;
        QCheck_alcotest.to_alcotest wire_reply_roundtrip;
        QCheck_alcotest.to_alcotest wire_mutations_typed;
      ] );
    ("rpc.budget", [ tc "remaining_ms / ticks_left" `Quick budget_remaining ]);
    ( "rpc.server",
      [
        tc "half-open connect hammer" `Quick half_open_hammer;
        tc "worker pool serves two clients" `Quick worker_pool_two_clients;
      ] );
    ( "rpc.remote",
      [
        tc "parity with in-process serving" `Quick remote_parity;
        tc "kill drills: failover, then degraded" `Quick remote_kill_drills;
        tc "drop schedule refuses connections" `Quick drop_schedule;
        tc "tick budget propagates over the wire" `Quick remote_budget_degrades;
      ] );
  ]
