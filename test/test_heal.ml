(* Self-healing: scrub classification under budgets and throttles,
   replica repair (copy, rebuild, fault-mark round-trip) with post-heal
   query parity, breaker recovery through the half-open probe, and
   fleet supervision drills (kill-then-restart, flap-to-quarantine,
   heal cadence) against a fake process table and a stepped clock. *)

module Scrub = Xk_resilience.Scrub
module Budget = Xk_resilience.Budget
module Chaos = Xk_resilience.Chaos
module Fault_injection = Xk_resilience.Fault_injection
module Circuit_breaker = Xk_resilience.Circuit_breaker
module Shard_io = Xk_index.Shard_io
module Repair = Xk_index.Repair
module Supervisor = Xk_exec.Supervisor

let check = Alcotest.check
let tc = Alcotest.test_case

let with_tmpdir f =
  let dir = Filename.temp_file "xk_heal" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let contains_substring haystack ~sub =
  let n = String.length sub and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = sub || go (i + 1)) in
  go 0

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let flip_mid_byte path =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string data in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
  write_file path (Bytes.to_string b)

(* --- Scrub ------------------------------------------------------------ *)

let scrub_classification () =
  with_tmpdir (fun dir ->
      let file n = Filename.concat dir n in
      write_file (file "good.seg") "good bytes";
      write_file (file "bad.seg") "bad bytes";
      let files =
        [| [| file "good.seg"; file "bad.seg" |]; [| file "gone.seg" |] |]
      in
      let verify p =
        if Filename.basename p = "bad.seg" then Error "checksum mismatch"
        else Ok ()
      in
      let r = Scrub.run ~verify files in
      check Alcotest.int "scanned" 3 r.Scrub.scanned;
      check Alcotest.int "clean" 1 r.Scrub.clean;
      check Alcotest.int "damaged" 1 r.Scrub.damaged;
      check Alcotest.int "missing" 1 r.Scrub.missing;
      check Alcotest.bool "complete" true r.Scrub.complete;
      check Alcotest.bool "not healthy" false (Scrub.healthy r);
      (match Scrub.needs_repair r with
      | [ d; m ] ->
          check Alcotest.string "damaged entry" (file "bad.seg") d.Scrub.e_file;
          (match d.Scrub.e_status with
          | Scrub.Damaged msg ->
              check Alcotest.string "damage cause" "checksum mismatch" msg
          | _ -> Alcotest.fail "expected Damaged");
          check Alcotest.string "missing entry" (file "gone.seg") m.Scrub.e_file;
          check Alcotest.int "missing shard" 1 m.Scrub.e_shard
      | l -> Alcotest.failf "needs_repair returned %d entries" (List.length l));
      (* the background-domain wrapper returns the same report *)
      let r' = Domain.join (Scrub.spawn ~verify files) in
      check Alcotest.int "spawned pass scans the same" r.Scrub.scanned
        r'.Scrub.scanned;
      check Alcotest.bool "spawned pass healthy agrees" (Scrub.healthy r)
        (Scrub.healthy r'))

let scrub_budget_and_throttle () =
  with_tmpdir (fun dir ->
      let files =
        Array.init 3 (fun s ->
            Array.init 2 (fun r ->
                let p =
                  Filename.concat dir (Printf.sprintf "s%dr%d.seg" s r)
                in
                write_file p "x";
                p))
      in
      (* a tick budget stops the walk at a file boundary, incomplete *)
      let budget = Budget.create ~ticks:2 () in
      let r = Scrub.run ~budget ~verify:(fun _ -> Ok ()) files in
      check Alcotest.bool "budgeted pass incomplete" false r.Scrub.complete;
      if r.Scrub.scanned >= 6 then
        Alcotest.failf "budgeted pass scanned all %d files" r.Scrub.scanned;
      check Alcotest.bool "incomplete pass is not healthy" false
        (Scrub.healthy r);
      (* slices of 2 over 6 files: the throttle sleeps twice *)
      let sleeps = ref [] in
      let r =
        Scrub.run ~slice:2 ~throttle_ms:5.
          ~sleep:(fun ms -> sleeps := ms :: !sleeps)
          ~verify:(fun _ -> Ok ())
          files
      in
      check Alcotest.bool "throttled pass complete" true r.Scrub.complete;
      check
        Alcotest.(list (float 1e-9))
        "one throttle sleep per full slice" [ 5.; 5. ] !sleeps;
      (* slice must be positive *)
      match Scrub.run ~slice:0 ~verify:(fun _ -> Ok ()) files with
      | _ -> Alcotest.fail "slice 0 accepted"
      | exception Invalid_argument _ -> ())

(* --- Shard_io.replica_status ----------------------------------------- *)

let saved_manifest ~seed ~shards ~replicas dir =
  let doc = Tutil.random_doc seed in
  let sharded = Xk_index.Sharding.partition ~shards doc in
  let path = Filename.concat dir "corpus.shards" in
  Xk_index.Shard_io.save ~replicas sharded path;
  (doc, sharded, path)

let status_grid path =
  match Shard_io.replica_status ~retries:1 ~backoff_ms:0.01 path with
  | Ok grid -> Array.map (Array.map snd) grid
  | Error e -> Alcotest.failf "replica_status: %s" (Shard_io.error_message e)

let labels grid = Array.map (Array.map Shard_io.copy_status_label) grid

let replica_status_roundtrip () =
  with_tmpdir (fun dir ->
      let _doc, _sharded, path =
        saved_manifest ~seed:91 ~shards:2 ~replicas:2 dir
      in
      let files =
        match Shard_io.replica_files path with
        | Ok f -> f
        | Error e -> Alcotest.failf "replica_files: %s" (Shard_io.error_message e)
      in
      check
        Alcotest.(array (array string))
        "all copies clean"
        [| [| "clean"; "clean" |]; [| "clean"; "clean" |] |]
        (labels (status_grid path));
      (* physical damage is typed per copy *)
      flip_mid_byte files.(0).(1);
      Sys.remove files.(1).(0);
      (match status_grid path with
      | [| [| Shard_io.Copy_clean; Copy_damaged _ |];
           [| Copy_missing; Copy_clean |] |] ->
          ()
      | grid ->
          Alcotest.failf "unexpected grid %s"
            (String.concat ";"
               (Array.to_list
                  (Array.map
                     (fun row -> String.concat "," (Array.to_list row))
                     (labels grid)))));
      (* an injected corruption mark round-trips through the accessor:
         damaged while marked, clean again once healed (the bytes on
         disk never changed) *)
      Fun.protect ~finally:Fault_injection.reset (fun () ->
          Fault_injection.mark_corrupt ~path:files.(1).(1);
          (match (status_grid path).(1).(1) with
          | Shard_io.Copy_damaged _ -> ()
          | s ->
              Alcotest.failf "marked copy reads %s"
                (Shard_io.copy_status_label s));
          Fault_injection.heal ~path:files.(1).(1);
          match (status_grid path).(1).(1) with
          | Shard_io.Copy_clean -> ()
          | s ->
              Alcotest.failf "healed copy reads %s"
                (Shard_io.copy_status_label s)))

(* --- Repair ----------------------------------------------------------- *)

let hits_identical (a : Xk_baselines.Hit.t list) (b : Xk_baselines.Hit.t list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Xk_baselines.Hit.t) (y : Xk_baselines.Hit.t) ->
         x.node = y.node && x.score = y.score)
       a b

(* Bit-identical serving check: load the manifest and answer a complete
   ELCA query through the sharded executor, against the unsharded
   engine's answer for the same document. *)
let serving_hits doc path words =
  match Shard_io.load_result doc path with
  | Error e -> Alcotest.failf "load_result: %s" (Shard_io.error_message e)
  | Ok sharded -> (
      let sx = Xk_exec.Shard_exec.create ~domains:2 sharded in
      Fun.protect
        ~finally:(fun () -> Xk_exec.Shard_exec.shutdown sx)
        (fun () ->
          let req =
            Xk_core.Engine.complete_request ~semantics:Xk_core.Engine.Elca
              words
          in
          match Xk_exec.Shard_exec.exec sx req with
          | Xk_exec.Query_service.Ok hits -> hits
          | o ->
              Alcotest.failf "serving outcome %s"
                (Xk_exec.Query_service.outcome_label o)))

let scrub_manifest path =
  match Repair.scrub ~retries:1 ~backoff_ms:0.01 path with
  | Ok r -> r
  | Error e -> Alcotest.failf "scrub: %s" (Shard_io.error_message e)

let query_words seed =
  let rng = Xk_datagen.Rng.create (seed + 7919) in
  Tutil.random_query rng ~k:2 ~alphabet:26

let repair_from_replica () =
  with_tmpdir (fun dir ->
      let doc, _sharded, path =
        saved_manifest ~seed:17 ~shards:2 ~replicas:2 dir
      in
      let words = query_words 17 in
      let engine = Xk_core.Engine.create doc in
      let expected =
        Xk_core.Engine.run_request engine
          (Xk_core.Engine.complete_request ~semantics:Xk_core.Engine.Elca
             words)
      in
      let baseline = serving_hits doc path words in
      check Alcotest.bool "pre-damage parity" true
        (hits_identical expected baseline);
      let files =
        match Shard_io.replica_files path with
        | Ok f -> f
        | Error e -> Alcotest.failf "replica_files: %s" (Shard_io.error_message e)
      in
      (* the corrupt-then-heal drill: one copy damaged, one gone *)
      flip_mid_byte files.(0).(0);
      Sys.remove files.(1).(1);
      let report = scrub_manifest path in
      check Alcotest.int "scrub sees the damage" 1 report.Scrub.damaged;
      check Alcotest.int "scrub sees the loss" 1 report.Scrub.missing;
      let summary = Repair.repair ~retries:1 ~backoff_ms:0.01 report in
      check Alcotest.int "both copies repaired" 2 summary.Repair.repaired;
      check Alcotest.int "nothing unrepairable" 0 summary.Repair.unrepairable;
      List.iter
        (fun o ->
          match o with
          | Repair.Repaired { source = Repair.From_replica _; _ } -> ()
          | o -> Alcotest.failf "unexpected outcome: %s" (Repair.outcome_line o))
        summary.Repair.outcomes;
      check Alcotest.bool "post-heal scrub is healthy" true
        (Scrub.healthy (scrub_manifest path));
      check
        Alcotest.(array (array string))
        "post-heal status grid clean"
        [| [| "clean"; "clean" |]; [| "clean"; "clean" |] |]
        (labels (status_grid path));
      (* healed replicas answer bit-identically to the pre-damage fleet *)
      check Alcotest.bool "post-heal parity" true
        (hits_identical baseline (serving_hits doc path words)))

let repair_rebuild () =
  with_tmpdir (fun dir ->
      let doc, sharded, path =
        saved_manifest ~seed:29 ~shards:2 ~replicas:2 dir
      in
      let words = query_words 29 in
      let engine = Xk_core.Engine.create doc in
      let expected =
        Xk_core.Engine.run_request engine
          (Xk_core.Engine.complete_request ~semantics:Xk_core.Engine.Elca
             words)
      in
      let files =
        match Shard_io.replica_files path with
        | Ok f -> f
        | Error e -> Alcotest.failf "replica_files: %s" (Shard_io.error_message e)
      in
      (* lose every copy of shard 1: the load itself fails *)
      flip_mid_byte files.(1).(0);
      Sys.remove files.(1).(1);
      (match Shard_io.load_result ~retries:1 ~backoff_ms:0.01 doc path with
      | Error (Shard_io.Shard { shard = 1; _ }) -> ()
      | Error e -> Alcotest.failf "unexpected error %s" (Shard_io.error_message e)
      | Ok _ -> Alcotest.fail "load survived losing every copy of shard 1");
      let report = scrub_manifest path in
      (* without a rebuild source the shard is unrepairable - typed, not
         silent *)
      let stuck = Repair.repair ~retries:1 ~backoff_ms:0.01 report in
      check Alcotest.int "no source, no repair" 0 stuck.Repair.repaired;
      check Alcotest.int "both copies unrepairable" 2 stuck.Repair.unrepairable;
      (* with a rebuild source the first copy is rebuilt and the second
         is then copied from it *)
      let summary =
        Repair.repair ~retries:1 ~backoff_ms:0.01
          ~rebuild:(fun ~shard -> Some (Xk_index.Sharding.index sharded shard))
          report
      in
      check Alcotest.int "both copies repaired" 2 summary.Repair.repaired;
      (match summary.Repair.outcomes with
      | [ Repair.Repaired { source = Repair.Rebuilt; _ };
          Repair.Repaired { source = Repair.From_replica _; _ } ] ->
          ()
      | os ->
          Alcotest.failf "unexpected outcomes: %s"
            (String.concat "; " (List.map Repair.outcome_line os)));
      check Alcotest.bool "post-rebuild scrub is healthy" true
        (Scrub.healthy (scrub_manifest path));
      check Alcotest.bool "rebuilt shard serves bit-identically" true
        (hits_identical expected (serving_hits doc path words)))

let repair_clears_fault_marks () =
  with_tmpdir (fun dir ->
      let _doc, _sharded, path =
        saved_manifest ~seed:43 ~shards:1 ~replicas:2 dir
      in
      let files =
        match Shard_io.replica_files path with
        | Ok f -> f
        | Error e -> Alcotest.failf "replica_files: %s" (Shard_io.error_message e)
      in
      Fun.protect ~finally:Fault_injection.reset (fun () ->
          Fault_injection.mark_corrupt ~path:files.(0).(0);
          let report = scrub_manifest path in
          check Alcotest.int "marked copy scrubs damaged" 1
            report.Scrub.damaged;
          let summary = Repair.repair ~retries:1 ~backoff_ms:0.01 report in
          check Alcotest.int "marked copy healed" 1 summary.Repair.repaired;
          check Alcotest.bool "mark cleared by the heal" false
            (Fault_injection.marked_corrupt ~path:files.(0).(0));
          check Alcotest.bool "healed manifest scrubs healthy" true
            (Scrub.healthy (scrub_manifest path))))

(* --- Breaker recovery end-to-end -------------------------------------- *)

let breaker_transition_hook () =
  let now = ref 0. in
  let transitions = ref [] in
  let b =
    Circuit_breaker.create
      ~config:
        {
          Circuit_breaker.failure_threshold = 2;
          reset_after_ms = 100.;
          half_open_probes = 1;
        }
      ~clock:(fun () -> !now)
      ~on_transition:(fun from_ to_ ->
        transitions :=
          (Circuit_breaker.state_label from_, Circuit_breaker.state_label to_)
          :: !transitions)
      ()
  in
  let seen () = List.rev !transitions in
  Circuit_breaker.record_failure b;
  check Alcotest.int "no transition below the threshold" 0
    (List.length (seen ()));
  Circuit_breaker.record_failure b;
  now := 150.;
  ignore (Circuit_breaker.allow b : bool);
  Circuit_breaker.record_failure b;
  now := 300.;
  ignore (Circuit_breaker.allow b : bool);
  Circuit_breaker.record_success b;
  check
    Alcotest.(list (pair string string))
    "full trip/probe/re-trip/close lifecycle observed"
    [
      ("closed", "open");
      ("open", "half-open");
      ("half-open", "open");
      ("open", "half-open");
      ("half-open", "closed");
    ]
    (seen ())

let breaker_recovery_e2e () =
  let doc = Tutil.random_doc 23 in
  let words = query_words 23 in
  let engine = Xk_core.Engine.create doc in
  let sharded = Xk_index.Sharding.partition ~shards:1 doc in
  let now = ref 0. in
  let sx =
    Xk_exec.Shard_exec.create ~domains:2 ~replicas:2
      ~breaker:
        {
          Circuit_breaker.failure_threshold = 1;
          reset_after_ms = 1000.;
          half_open_probes = 1;
        }
      ~clock:(fun () -> !now)
      sharded
  in
  Fun.protect
    ~finally:(fun () ->
      Chaos.clear ();
      Xk_exec.Shard_exec.shutdown sx)
    (fun () ->
      let req =
        Xk_core.Engine.complete_request ~semantics:Xk_core.Engine.Elca words
      in
      let exec_ok what =
        match Xk_exec.Shard_exec.exec sx req with
        | Xk_exec.Query_service.Ok hits -> hits
        | o ->
            Alcotest.failf "%s: outcome %s" what
              (Xk_exec.Query_service.outcome_label o)
      in
      let state r =
        Circuit_breaker.state_label
          (Xk_exec.Shard_exec.breaker_state sx ~shard:0 ~replica:r)
      in
      let expected =
        Xk_core.Engine.run_request engine req
      in
      let baseline = exec_ok "baseline" in
      check Alcotest.bool "baseline parity" true
        (hits_identical expected baseline);
      (* damage r0: its first attempt fails and trips the breaker;
         failover still answers correctly *)
      Chaos.install
        [ Chaos.Kill
            {
              target = { Chaos.t_shard = Some 0; t_replica = Some 0 };
              from_tick = 0;
            };
        ];
      let under_damage = exec_ok "during damage" in
      check Alcotest.bool "failover answer identical" true
        (hits_identical baseline under_damage);
      check Alcotest.string "breaker tripped open" "open" (state 0);
      (* while Open, no query is routed to the damaged replica: the
         chaos kill counter stays flat across a burst of queries *)
      let kills_at_trip = (Chaos.counters ()).Chaos.kills in
      for _ = 1 to 3 do
        ignore (exec_ok "while open" : Xk_baselines.Hit.t list)
      done;
      check Alcotest.int "no attempts reach an Open replica" kills_at_trip
        (Chaos.counters ()).Chaos.kills;
      check Alcotest.string "still open inside the cooldown" "open" (state 0);
      (* heal r0, let the cooldown elapse, and blip r1 so the half-open
         probe actually lands on the healed replica *)
      Chaos.clear ();
      now := !now +. 1500.;
      Chaos.install
        [ Chaos.Kill
            {
              target = { Chaos.t_shard = Some 0; t_replica = Some 1 };
              from_tick = 0;
            };
        ];
      let post_heal = exec_ok "post-heal probe" in
      check Alcotest.bool "healed replica answers bit-identically" true
        (hits_identical baseline post_heal);
      check Alcotest.string "probe success closed the breaker" "closed"
        (state 0);
      Chaos.clear ();
      (* per-replica isolation: the blip tripped r1's own breaker (one
         failure meets the threshold) without touching the healed r0 *)
      check Alcotest.string "the blip tripped only its own breaker" "open"
        (state 1);
      let settled = exec_ok "settled fleet" in
      check Alcotest.bool "settled parity" true
        (hits_identical baseline settled))

(* --- Supervisor ------------------------------------------------------- *)

type fake_fleet = {
  mutable next_pid : int;
  mutable spawn_count : int;
  mutable refuse_spawn : bool;
  mutable dead_on_arrival : bool;
  live : (int, unit) Hashtbl.t;
  pids : (string, int) Hashtbl.t;  (* spec label -> latest pid *)
  unready : (string, unit) Hashtbl.t;  (* specs that never answer pings *)
}

let fake_fleet () =
  {
    next_pid = 100;
    spawn_count = 0;
    refuse_spawn = false;
    dead_on_arrival = false;
    live = Hashtbl.create 8;
    pids = Hashtbl.create 8;
    unready = Hashtbl.create 8;
  }

let procs_of f =
  {
    Supervisor.spawn =
      (fun spec ->
        if f.refuse_spawn then Error "spawn refused"
        else begin
          f.spawn_count <- f.spawn_count + 1;
          let pid = f.next_pid in
          f.next_pid <- pid + 1;
          if not f.dead_on_arrival then Hashtbl.replace f.live pid ();
          Hashtbl.replace f.pids (Supervisor.spec_label spec) pid;
          Ok pid
        end);
    alive = (fun pid -> Hashtbl.mem f.live pid);
    kill = (fun pid -> Hashtbl.remove f.live pid);
    ping =
      (fun spec ->
        let label = Supervisor.spec_label spec in
        (not (Hashtbl.mem f.unready label))
        &&
        match Hashtbl.find_opt f.pids label with
        | Some pid -> Hashtbl.mem f.live pid
        | None -> false);
  }

let crash f label =
  match Hashtbl.find_opt f.pids label with
  | Some pid -> Hashtbl.remove f.live pid
  | None -> Alcotest.failf "no pid recorded for %s" label

let grid_specs ~shards ~replicas =
  List.concat
    (List.init shards (fun s ->
         List.init replicas (fun r ->
             {
               Supervisor.sv_shard = s;
               sv_replica = r;
               sv_host = "127.0.0.1";
               sv_port = 7000 + (s * replicas) + r;
             })))

let test_config =
  {
    Supervisor.backoff_base_ms = 100.;
    backoff_cap_ms = 1000.;
    flap_cap = 3;
    start_grace_ms = 1000.;
    heal_every = 0;
  }

let supervisor_kill_then_restart () =
  let f = fake_fleet () in
  let now = ref 0. in
  let events = ref [] in
  let sup =
    Supervisor.create ~config:test_config
      ~clock:(fun () -> !now)
      ~seed:5
      ~on_event:(fun e -> events := e :: !events)
      ~procs:(procs_of f)
      (grid_specs ~shards:2 ~replicas:2)
  in
  Supervisor.cycle sup;
  let fl = Supervisor.fleet sup in
  check Alcotest.int "first cycle spawns everything" 4 f.spawn_count;
  check Alcotest.int "spawned but unconfirmed" 4 fl.Supervisor.starting;
  Supervisor.cycle sup;
  check Alcotest.bool "second cycle confirms the fleet" true
    (Supervisor.healthy sup);
  (* the kill-then-restart drill *)
  crash f "s0r1";
  Supervisor.cycle sup;
  let fl = Supervisor.fleet sup in
  check Alcotest.int "crash detected" 3 fl.Supervisor.up;
  check Alcotest.int "restart scheduled" 1 fl.Supervisor.backing_off;
  (* the backoff delay holds until the clock reaches it *)
  Supervisor.cycle sup;
  check Alcotest.int "no respawn before the backoff elapses" 4 f.spawn_count;
  now := 5000.;
  Supervisor.cycle sup;
  check Alcotest.int "respawned after the backoff" 5 f.spawn_count;
  Supervisor.cycle sup;
  check Alcotest.bool "fleet converged back to healthy" true
    (Supervisor.healthy sup);
  check Alcotest.int "one restart counted" 1
    (Supervisor.fleet sup).Supervisor.restarts;
  let died, backed =
    List.fold_left
      (fun (d, b) e ->
        match e with
        | Supervisor.Died { spec; _ } ->
            check Alcotest.string "the crashed replica died" "s0r1"
              (Supervisor.spec_label spec);
            (d + 1, b)
        | Supervisor.Backoff_scheduled { delay_ms; _ } ->
            if delay_ms < 100. || delay_ms > 1000. then
              Alcotest.failf "backoff %f outside [base, cap]" delay_ms;
            (d, b + 1)
        | _ -> (d, b))
      (0, 0) !events
  in
  check Alcotest.int "one death event" 1 died;
  check Alcotest.int "one backoff event" 1 backed;
  check Alcotest.bool "status line mentions the fleet" true
    (String.length (Supervisor.status_line sup) > 0)

let supervisor_flap_quarantine () =
  let delays_of seed =
    let f = fake_fleet () in
    f.dead_on_arrival <- true;
    let now = ref 0. in
    let events = ref [] in
    let sup =
      Supervisor.create ~config:test_config
        ~clock:(fun () -> !now)
        ~seed
        ~on_event:(fun e -> events := e :: !events)
        ~procs:(procs_of f)
        (grid_specs ~shards:1 ~replicas:1)
    in
    (* every spawn dies on arrival: backoffs grow until the flap cap *)
    for _ = 1 to 20 do
      Supervisor.cycle sup;
      now := !now +. 5000.
    done;
    let fl = Supervisor.fleet sup in
    check Alcotest.int "replica quarantined" 1 fl.Supervisor.quarantined;
    check Alcotest.int "spawns capped by flap detection" 4 f.spawn_count;
    (match Supervisor.states sup with
    | [| (_, Supervisor.Quarantined { failures }) |] ->
        check Alcotest.int "failures past the cap" 4 failures
    | _ -> Alcotest.fail "expected a single quarantined replica");
    let quarantines =
      List.length
        (List.filter
           (function Supervisor.Quarantine _ -> true | _ -> false)
           !events)
    in
    check Alcotest.int "quarantine announced once" 1 quarantines;
    check Alcotest.bool "status line reports the quarantine" true
      (contains_substring ~sub:"1 quarantined"
         (Supervisor.status_line sup));
    List.filter_map
      (function
        | Supervisor.Backoff_scheduled { delay_ms; _ } -> Some delay_ms
        | _ -> None)
      (List.rev !events)
  in
  (* deterministic seed => reproducible jittered backoff ladder *)
  check Alcotest.(list (float 1e-9)) "seeded backoffs reproducible"
    (delays_of 9) (delays_of 9);
  if delays_of 9 = delays_of 10 then
    Alcotest.fail "different seeds produced identical backoff ladders"

let supervisor_spawn_failure_and_grace () =
  let f = fake_fleet () in
  let now = ref 0. in
  let events = ref [] in
  let sup =
    Supervisor.create
      ~config:{ test_config with flap_cap = 1 }
      ~clock:(fun () -> !now)
      ~seed:3
      ~on_event:(fun e -> events := e :: !events)
      ~procs:(procs_of f)
      (grid_specs ~shards:1 ~replicas:2)
  in
  (* s0r0 never answers pings: it survives inside the start grace, then
     counts as failed once the grace runs out *)
  Hashtbl.replace f.unready "s0r0" ();
  Supervisor.cycle sup;
  Supervisor.cycle sup;
  let fl = Supervisor.fleet sup in
  check Alcotest.int "unready replica tolerated within grace" 1
    fl.Supervisor.starting;
  check Alcotest.int "ready replica confirmed" 1 fl.Supervisor.up;
  now := 2000.;
  Supervisor.cycle sup;
  let died =
    List.exists
      (function
        | Supervisor.Died { reason; _ } ->
            contains_substring ~sub:"start grace" reason
        | _ -> false)
      !events
  in
  check Alcotest.bool "grace expiry reported" true died;
  (* refused spawns also count toward the flap cap *)
  f.refuse_spawn <- true;
  now := 20000.;
  Supervisor.cycle sup;
  now := 40000.;
  Supervisor.cycle sup;
  check Alcotest.int "persistent spawn refusal quarantines" 1
    (Supervisor.fleet sup).Supervisor.quarantined

let supervisor_heal_cadence () =
  let f = fake_fleet () in
  let now = ref 0. in
  let heals = ref 0 in
  let events = ref [] in
  let sup =
    Supervisor.create
      ~config:{ test_config with heal_every = 2 }
      ~clock:(fun () -> !now)
      ~on_event:(fun e -> events := e :: !events)
      ~heal:(fun () ->
        incr heals;
        {
          Supervisor.h_clean = 4;
          h_damaged = 1;
          h_missing = 0;
          h_repaired = 1;
          h_unrepairable = 0;
        })
      ~procs:(procs_of f)
      (grid_specs ~shards:2 ~replicas:2)
  in
  for _ = 1 to 5 do
    Supervisor.cycle sup
  done;
  check Alcotest.int "heal ran on the cadence" 2 !heals;
  check Alcotest.bool "status line carries the heal report" true
    (contains_substring ~sub:"1 repaired" (Supervisor.status_line sup));
  (* a crashing heal pass is an event, not a supervisor crash *)
  let sup2 =
    Supervisor.create
      ~config:{ test_config with heal_every = 1 }
      ~clock:(fun () -> !now)
      ~on_event:(fun e -> events := e :: !events)
      ~heal:(fun () -> failwith "scrub IO lost")
      ~procs:(procs_of f)
      (grid_specs ~shards:1 ~replicas:1)
  in
  Supervisor.cycle sup2;
  check Alcotest.bool "heal failure surfaced as an event" true
    (List.exists
       (function Supervisor.Heal_failed _ -> true | _ -> false)
       !events);
  (* run drives cycles and stops on request *)
  let cycles_seen = ref 0 in
  Supervisor.run ~cycles:3 ~interval_ms:0.
    ~sleep:(fun _ -> ())
    ~on_cycle:(fun t ->
      incr cycles_seen;
      if !cycles_seen = 2 then Supervisor.stop t)
    sup2;
  check Alcotest.int "stop ends the run mid-flight" 2 !cycles_seen;
  Supervisor.shutdown sup2;
  check Alcotest.bool "shutdown killed the children" true
    (Hashtbl.length f.live = 0
    || Array.for_all
         (fun (spec, _) ->
           not
             (Hashtbl.mem f.live
                (Option.value ~default:(-1)
                   (Hashtbl.find_opt f.pids (Supervisor.spec_label spec)))))
         (Supervisor.states sup2))

let suite =
  [
    ( "heal.scrub",
      [
        tc "clean/damaged/missing classification" `Quick scrub_classification;
        tc "budget stop and slice throttle" `Quick scrub_budget_and_throttle;
      ] );
    ( "heal.replica-status",
      [
        tc "typed per-copy state and fault-mark round-trip" `Quick
          replica_status_roundtrip;
      ] );
    ( "heal.repair",
      [
        tc "corrupt-then-heal from a clean replica" `Quick repair_from_replica;
        tc "rebuild a shard with no surviving copy" `Quick repair_rebuild;
        tc "repair clears injected fault marks" `Quick
          repair_clears_fault_marks;
      ] );
    ( "heal.breaker",
      [
        tc "transition hook observes the lifecycle" `Quick
          breaker_transition_hook;
        tc "trip, no routing while open, half-open re-entry" `Quick
          breaker_recovery_e2e;
      ] );
    ( "heal.supervisor",
      [
        tc "kill-then-restart drill" `Quick supervisor_kill_then_restart;
        tc "flap detection quarantines" `Quick supervisor_flap_quarantine;
        tc "spawn failures and start grace" `Quick
          supervisor_spawn_failure_and_grace;
        tc "heal cadence, run and shutdown" `Quick supervisor_heal_cadence;
      ] );
  ]
