(* Damping, local scorer and aggregation. *)

open Xk_score

let check = Alcotest.check
let tc = Alcotest.test_case
let approx = Alcotest.float 1e-9

let damping_values () =
  let d = Damping.make 0.9 in
  check approx "d(0)" 1.0 (Damping.apply d 0);
  check approx "d(1)" 0.9 (Damping.apply d 1);
  check approx "d(3)" (0.9 ** 3.) (Damping.apply d 3);
  check (Alcotest.float 1e-12) "d(100) beyond memo" (0.9 ** 100.) (Damping.apply d 100)

let damping_invalid () =
  Alcotest.check_raises "zero decay"
    (Invalid_argument "Damping.make: decay must be in (0, 1]") (fun () ->
      ignore (Damping.make 0.));
  Alcotest.check_raises "negative distance"
    (Invalid_argument "Damping.apply: negative distance") (fun () ->
      ignore (Damping.apply Damping.default (-1)))

let scorer_monotone_tf () =
  let s = Scorer.make ~total_nodes:10_000 in
  let g1 = Scorer.local_score s ~tf:1 ~df:100 in
  let g2 = Scorer.local_score s ~tf:5 ~df:100 in
  check Alcotest.bool "tf monotone" true (g2 > g1)

let scorer_antitone_df () =
  let s = Scorer.make ~total_nodes:10_000 in
  let rare = Scorer.local_score s ~tf:1 ~df:10 in
  let common = Scorer.local_score s ~tf:1 ~df:5_000 in
  check Alcotest.bool "idf" true (rare > common)

let scorer_bounded () =
  let s = Scorer.make ~total_nodes:1_000 in
  List.iter
    (fun (tf, df) ->
      let g = Scorer.local_score s ~tf ~df in
      if not (g > 0. && g <= 1.) then
        Alcotest.failf "score %f out of (0,1] for tf=%d df=%d" g tf df)
    [ (1, 1); (1, 1_000); (1_000, 1); (50, 42); (100_000, 1) ]

let agg_sum_max () =
  check approx "sum" 0.6 (Agg.combine Agg.Sum [| 0.1; 0.2; 0.3 |]);
  check approx "max" 0.3 (Agg.combine Agg.Max [| 0.1; 0.2; 0.3 |]);
  check approx "weighted" 0.8
    (Agg.combine (Agg.Weighted [| 2.0; 1.0 |]) [| 0.3; 0.2 |])

let agg_monotone_prop =
  QCheck.Test.make ~count:500 ~name:"aggregation monotonicity"
    QCheck.(list_of_size (Gen.int_range 1 6) (pair pos_float pos_float))
    (fun pairs ->
      let a = Array.of_list (List.map (fun (x, y) -> Float.min x y) pairs) in
      let b = Array.of_list (List.map (fun (x, y) -> Float.max x y) pairs) in
      let w = Array.make (Array.length a) 1.5 in
      Agg.is_monotone_sample Agg.Sum a b
      && Agg.is_monotone_sample Agg.Max a b
      && Agg.is_monotone_sample (Agg.Weighted w) a b)

let suite =
  [
    ( "score",
      [
        tc "damping values" `Quick damping_values;
        tc "damping invalid input" `Quick damping_invalid;
        tc "scorer monotone in tf" `Quick scorer_monotone_tf;
        tc "scorer antitone in df" `Quick scorer_antitone_df;
        tc "scorer bounded" `Quick scorer_bounded;
        tc "aggregation sum/max/weighted" `Quick agg_sum_max;
        QCheck_alcotest.to_alcotest agg_monotone_prop;
      ] );
  ]
