(* Sharded scatter/gather: the partition must be invisible.

   The load-bearing property is exact parity - for any document, any
   shard count and any partitioning, sharded execution returns exactly
   (nodes, bit-identical scores, same order) what the unsharded engine
   returns, for complete ELCA/SLCA and for top-K.  Around it: anytime
   degradation under per-shard tick budgets (a Partial is a true prefix
   of the real top-K), manifest/segment persistence with typed per-shard
   failures, node-numbering round-trips and the root edge cases that make
   cross-shard gathering interesting. *)

open Xk_exec

let check = Alcotest.check
let tc = Alcotest.test_case

let hits_identical (a : Xk_baselines.Hit.t list) (b : Xk_baselines.Hit.t list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Xk_baselines.Hit.t) (y : Xk_baselines.Hit.t) ->
         x.node = y.node && x.score = y.score)
       a b

let pp_outcome = Query_service.outcome_label

(* Top-K comparison robust to score ties: the gather selects canonical
   ties (score desc, node asc) while the unsharded join's emission order
   at equal scores is an internal artifact — so equality is checked as
   bit-identical score sequences plus true membership of every returned
   node, mirroring Tutil.check_topk but without tolerance. *)
let same_topk ~(full : Xk_baselines.Hit.t list) (a : Xk_baselines.Hit.t list)
    (b : Xk_baselines.Hit.t list) =
  let scores hs = List.map (fun (h : Xk_baselines.Hit.t) -> h.score) hs in
  scores a = scores b
  && List.for_all
       (fun (h : Xk_baselines.Hit.t) ->
         List.exists
           (fun (f : Xk_baselines.Hit.t) -> f.node = h.node && f.score = h.score)
           full)
       (a @ b)

(* One engine/sharding pair per trial keeps the property honest: nothing
   is shared between the sharded and unsharded sides but the document. *)
let with_sharded ?assignment ?strategy ~shards seed f =
  let doc = Tutil.random_doc seed in
  let engine = Xk_core.Engine.create doc in
  let sharded = Xk_index.Sharding.partition ?assignment ?strategy ~shards doc in
  let sx = Shard_exec.create ~domains:2 sharded in
  Fun.protect ~finally:(fun () -> Shard_exec.shutdown sx) (fun () ->
      f doc engine sx)

(* --- Exact parity --------------------------------------------------- *)

(* Requests paired with how to compare them: complete results are
   node-exact, top-K results are tie-robust against the complete set of
   the same semantics. *)
let requests_of words =
  Xk_core.Engine.
    [
      (complete_request ~semantics:Elca words, `Complete);
      (complete_request ~semantics:Slca words, `Complete);
      (topk_request ~semantics:Elca ~k:1 words, `Topk Elca);
      (topk_request ~semantics:Elca ~k:4 words, `Topk Elca);
      (topk_request ~semantics:Slca ~k:3 words, `Topk Slca);
      (topk_request ~semantics:Elca ~algorithm:Hybrid ~k:3 words, `Topk Elca);
    ]

let check_one engine sx name words (req, kind) =
  let expected = Xk_core.Engine.run_request engine req in
  match Shard_exec.exec sx req with
  | Query_service.Ok actual ->
      let same =
        match kind with
        | `Complete -> hits_identical expected actual
        | `Topk sem ->
            let full =
              Xk_core.Engine.run_request engine
                (Xk_core.Engine.complete_request ~semantics:sem words)
            in
            same_topk ~full expected actual
      in
      if same then Ok ()
      else
        Error
          (Printf.sprintf "%s: expected [%s], got [%s]" name
             (Tutil.pp_hits expected) (Tutil.pp_hits actual))
  | o -> Error (Printf.sprintf "%s: outcome %s" name (pp_outcome o))

(* Raw ints sanitized in-property: QCheck's int shrinker does not respect
   [int_range] bounds, and an out-of-range input turns a counterexample
   report into an [Invalid_argument] crash. *)
let parity_prop =
  QCheck.Test.make ~count:120
    ~name:"sharded scatter/gather = unsharded engine (exact)"
    QCheck.(triple (int_bound 1_000_000) small_nat small_nat)
    (fun (seed, shards_raw, strat) ->
      let shards = 1 + (shards_raw mod 8) in
      let strategy =
        match strat mod 3 with
        | 0 -> None
        | 1 -> Some Xk_index.Sharding.Round_robin
        | _ -> Some Xk_index.Sharding.Hash
      in
      with_sharded ?strategy ~shards seed (fun _doc engine sx ->
          let rng = Xk_datagen.Rng.create (seed + 7919) in
          List.for_all
            (fun words ->
              List.for_all
                (fun rk ->
                  match
                    check_one engine sx
                      (Printf.sprintf "shards=%d" shards)
                      words rk
                  with
                  | Ok () -> true
                  | Error msg -> QCheck.Test.fail_report msg)
                (requests_of words))
            [
              Tutil.random_query rng ~k:2 ~alphabet:26;
              Tutil.random_query rng ~k:3 ~alphabet:26;
              Tutil.random_query rng ~k:1 ~alphabet:26;
            ]))

(* Explicit random assignments (not just the built-in strategies), and the
   batch path. *)
let parity_assignment_prop =
  QCheck.Test.make ~count:60
    ~name:"sharded parity under arbitrary assignments, batched"
    QCheck.(pair (int_bound 1_000_000) small_nat)
    (fun (seed, shards_raw) ->
      let shards = 2 + (shards_raw mod 5) in
      let doc = Tutil.random_doc seed in
      let subtrees = List.length doc.Xk_xml.Xml_tree.root.children in
      QCheck.assume (subtrees > 0);
      let rng = Xk_datagen.Rng.create (seed lxor 0x5f5f) in
      let assignment =
        Array.init subtrees (fun _ -> Xk_datagen.Rng.int rng shards)
      in
      with_sharded ~assignment ~shards seed (fun _doc engine sx ->
          let words = Tutil.random_query rng ~k:2 ~alphabet:26 in
          let rks = requests_of words in
          let outcomes = Shard_exec.exec_batch sx (List.map fst rks) in
          List.for_all2
            (fun (req, kind) o ->
              let expected = Xk_core.Engine.run_request engine req in
              match o with
              | Query_service.Ok a ->
                  let same =
                    match kind with
                    | `Complete -> hits_identical expected a
                    | `Topk sem ->
                        let full =
                          Xk_core.Engine.run_request engine
                            (Xk_core.Engine.complete_request ~semantics:sem
                               words)
                        in
                        same_topk ~full expected a
                  in
                  same
                  || QCheck.Test.fail_reportf "batch mismatch: %s vs %s"
                       (Tutil.pp_hits expected) (Tutil.pp_hits a)
              | o ->
                  QCheck.Test.fail_reportf "batch outcome %s" (pp_outcome o))
            rks outcomes))

(* --- Anytime degradation under per-shard tick budgets ---------------- *)

let partial_prefix_prop =
  QCheck.Test.make ~count:150
    ~name:"per-shard tick budgets: Partial is a prefix of the true top-K"
    QCheck.(quad (int_bound 1_000_000) small_nat (int_bound 400) small_nat)
    (fun (seed, shards_raw, ticks_raw, k_raw) ->
      let shards = 1 + (shards_raw mod 5) in
      let ticks = 1 + abs ticks_raw in
      let k = 1 + (k_raw mod 4) in
      with_sharded ~shards seed (fun _doc engine sx ->
          let rng = Xk_datagen.Rng.create (seed + 13) in
          let words = Tutil.random_query rng ~k:2 ~alphabet:26 in
          let req = Xk_core.Engine.topk_request ~k words in
          let full =
            Xk_core.Engine.run_request engine
              (Xk_core.Engine.complete_request ~semantics:Elca words)
          in
          let truth =
            Xk_core.Engine.(
              query_topk ~semantics:Elca ~algorithm:Topk_join engine words ~k)
          in
          (* Score-sequence prefix + true membership: canonical tie
             selection in the gather may pick different ids than the
             unsharded join's internal emission order. *)
          let is_prefix hs =
            let scores l = List.map (fun (h : Xk_baselines.Hit.t) -> h.score) l in
            scores hs
            = List.filteri (fun i _ -> i < List.length hs) (scores truth)
            && List.for_all
                 (fun (h : Xk_baselines.Hit.t) ->
                   List.exists
                     (fun (f : Xk_baselines.Hit.t) ->
                       f.node = h.node && f.score = h.score)
                     full)
                 hs
          in
          let budget_for _shard = Xk_resilience.Budget.create ~ticks () in
          match Shard_exec.exec ~budget_for sx req with
          | Query_service.Ok hs ->
              same_topk ~full truth hs
              || QCheck.Test.fail_reportf "budgeted Ok differs: %s vs %s"
                   (Tutil.pp_hits truth) (Tutil.pp_hits hs)
          | Query_service.Partial hs ->
              (hs <> [] && is_prefix hs)
              || QCheck.Test.fail_reportf
                   "Partial [%s] is not a prefix of [%s]" (Tutil.pp_hits hs)
                   (Tutil.pp_hits truth)
          | Query_service.Timeout -> true
          | o -> QCheck.Test.fail_reportf "outcome %s" (pp_outcome o)))

(* --- Node numbering -------------------------------------------------- *)

let mapping_roundtrip () =
  List.iter
    (fun (seed, shards) ->
      let doc = Tutil.random_doc seed in
      let sharded = Xk_index.Sharding.partition ~shards doc in
      let total = Xk_index.Sharding.total_nodes sharded in
      check Alcotest.int "total nodes" (Xk_xml.Xml_tree.node_count doc) total;
      check Alcotest.(pair int int) "root locates to shard 0" (0, 0)
        (Xk_index.Sharding.locate sharded 0);
      for g = 1 to total - 1 do
        let shard, local = Xk_index.Sharding.locate sharded g in
        let g' = Xk_index.Sharding.to_global sharded ~shard local in
        if g' <> g then
          Alcotest.failf "node %d -> shard %d/%d -> %d" g shard local g'
      done;
      (match Xk_index.Sharding.locate sharded total with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "locate past the end accepted");
      (* Every shard's numbering covers its index. *)
      for s = 0 to Xk_index.Sharding.count sharded - 1 do
        let idx = Xk_index.Sharding.index sharded s in
        let n =
          Xk_encoding.Labeling.node_count (Xk_index.Index.label idx)
        in
        for local = 1 to n - 1 do
          let g = Xk_index.Sharding.to_global sharded ~shard:s local in
          let s', local' = Xk_index.Sharding.locate sharded g in
          if s' <> s || local' <> local then
            Alcotest.failf "shard %d local %d -> %d -> shard %d local %d" s
              local g s' local'
        done
      done)
    [ (11, 1); (11, 3); (42, 4); (42, 7); (99, 2) ]

(* --- Root edge cases -------------------------------------------------- *)

let doc_of_string s = (Xk_xml.Xml_parser.parse_string_exn s).root

let parity_doc name xml shards assignment words =
  let doc = { Xk_xml.Xml_tree.root = doc_of_string xml } in
  let engine = Xk_core.Engine.create doc in
  let sharded = Xk_index.Sharding.partition ?assignment ~shards doc in
  let sx = Shard_exec.create ~domains:2 sharded in
  Fun.protect ~finally:(fun () -> Shard_exec.shutdown sx) (fun () ->
      List.iter
        (fun rk ->
          match check_one engine sx name words rk with
          | Ok () -> ()
          | Error msg -> Alcotest.fail msg)
        (requests_of words))

let root_edge_cases () =
  (* Keywords split across shards: the root is the only node containing
     both, and the gather must reconstruct it from the summaries. *)
  parity_doc "split keywords"
    "<r><a>apple orchard</a><b>banana grove</b></r>" 2 (Some [| 0; 1 |])
    [ "apple"; "banana" ];
  (* Root attributes carry a keyword: indexed at the root node itself,
     kept by shard 0 only. *)
  parity_doc "root attribute keyword"
    "<r name='apple'><a>banana</a><b>cherry apple</b></r>" 2 (Some [| 1; 1 |])
    [ "apple"; "banana" ];
  (* A keyword-complete subtree forbids the root SLCA but not deep hits. *)
  parity_doc "keyword-complete subtree"
    "<r><a><x>apple</x><y>banana</y></a><b>apple</b></r>" 2 (Some [| 0; 1 |])
    [ "apple"; "banana" ];
  (* More shards than subtrees: trailing shards are empty. *)
  parity_doc "more shards than subtrees" "<r><a>apple banana</a></r>" 5 None
    [ "apple"; "banana" ];
  (* Unknown keyword: empty everywhere. *)
  parity_doc "unknown keyword" "<r><a>apple</a><b>banana</b></r>" 2 None
    [ "apple"; "zeppelin" ];
  (* Duplicate and case-folded query words collapse identically. *)
  parity_doc "case folding and duplicates"
    "<r><a>Apple apple</a><b>APPLE banana</b></r>" 3 None
    [ "Apple"; "apple"; "APPLE"; "banana" ]

(* --- Persistence ------------------------------------------------------ *)

let with_tmpdir f =
  let dir = Filename.temp_file "xk_shard" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let flip_last_byte path =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string data in
  let i = Bytes.length b - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let shard_io_roundtrip () =
  let seed = 2024 in
  let doc = Tutil.random_doc seed in
  let sharded = Xk_index.Sharding.partition ~shards:3 doc in
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "corpus.shards" in
      Xk_index.Shard_io.save sharded path;
      check Alcotest.bool "manifest sniffs as manifest" true
        (Xk_index.Shard_io.is_manifest path);
      check Alcotest.bool "segment does not sniff as manifest" false
        (Xk_index.Shard_io.is_manifest
           (Xk_index.Shard_io.segment_path path ~shard:0));
      let reloaded =
        match Xk_index.Shard_io.load_result doc path with
        | Ok s -> s
        | Error e -> Alcotest.failf "reload: %s" (Xk_index.Shard_io.error_message e)
      in
      check Alcotest.int "shard count survives" 3
        (Xk_index.Sharding.count reloaded);
      check Alcotest.(array int) "assignment survives"
        (Xk_index.Sharding.assignment sharded)
        (Xk_index.Sharding.assignment reloaded);
      (* Reloaded shards answer exactly like the in-memory ones. *)
      let engine = Xk_core.Engine.create doc in
      let sx = Shard_exec.create ~domains:2 reloaded in
      Fun.protect ~finally:(fun () -> Shard_exec.shutdown sx) (fun () ->
          let rng = Xk_datagen.Rng.create 5 in
          for _ = 1 to 5 do
            let words = Tutil.random_query rng ~k:2 ~alphabet:26 in
            List.iter
              (fun rk ->
                match check_one engine sx "reloaded" words rk with
                | Ok () -> ()
                | Error msg -> Alcotest.fail msg)
              (requests_of words)
          done))

let shard_io_failures () =
  let doc = Tutil.random_doc 77 in
  let sharded = Xk_index.Sharding.partition ~shards:3 doc in
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "corpus.shards" in
      Xk_index.Shard_io.save sharded path;
      (* A corrupted shard segment surfaces as a typed per-shard error
         naming the shard - even with fault injection active, because
         media corruption survives every retry. *)
      flip_last_byte (Xk_index.Shard_io.segment_path path ~shard:1);
      (match Xk_index.Shard_io.load_result doc path with
      | Error
          (Xk_index.Shard_io.Shard
            { shard = 1; failures = [ (_, { error = Corrupted _; _ }) ] }) ->
          ()
      | Error e ->
          Alcotest.failf "corrupt segment: wrong error %s"
            (Xk_index.Shard_io.error_message e)
      | Ok _ -> Alcotest.fail "corrupt segment loaded");
      (* Restore, then corrupt the manifest itself. *)
      Xk_index.Shard_io.save sharded path;
      flip_last_byte path;
      (match Xk_index.Shard_io.load_result doc path with
      | Error (Xk_index.Shard_io.Manifest _) -> ()
      | Error (Xk_index.Shard_io.Shard _ as e) ->
          Alcotest.failf "corrupt manifest: wrong error %s"
            (Xk_index.Shard_io.error_message e)
      | Ok _ -> Alcotest.fail "corrupt manifest loaded");
      (* A missing segment is a per-shard failure too. *)
      Xk_index.Shard_io.save sharded path;
      Sys.remove (Xk_index.Shard_io.segment_path path ~shard:2);
      (match Xk_index.Shard_io.load_result doc path with
      | Error
          (Xk_index.Shard_io.Shard
            { shard = 2; failures = [ (_, { error = Io_failed _; _ }) ] }) ->
          ()
      | Error e ->
          Alcotest.failf "missing segment: wrong error %s"
            (Xk_index.Shard_io.error_message e)
      | Ok _ -> Alcotest.fail "missing segment loaded");
      (* Garbage manifest. *)
      let oc = open_out_bin path in
      output_string oc "not a manifest at all";
      close_out oc;
      check Alcotest.bool "garbage is not a manifest" false
        (Xk_index.Shard_io.is_manifest path);
      match Xk_index.Shard_io.load_result doc path with
      | Error (Xk_index.Shard_io.Manifest { error = Corrupted _; _ }) -> ()
      | Error e ->
          Alcotest.failf "garbage manifest: wrong error %s"
            (Xk_index.Shard_io.error_message e)
      | Ok _ -> Alcotest.fail "garbage manifest loaded")

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* v3 open-path faults: a torn directory, a corrupted mapped column and
   an injected map failure each surface as the right typed error, and a
   single damaged copy is invisible behind replica fallback. *)
let shard_io_v3_faults () =
  let doc = Tutil.random_doc 909 in
  let sharded = Xk_index.Sharding.partition ~shards:2 doc in
  let flip_at path pos =
    let ic = open_in_bin path in
    let data = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let b = Bytes.of_string data in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xA5));
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc
  in
  let layout_of seg =
    match Xk_index.Index_io.layout seg with
    | Ok l -> l
    | Error e ->
        Alcotest.failf "layout %s: %s" seg (Xk_index.Index_io.error_message e)
  in
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "corpus.shards" in
      let resave () = Xk_index.Shard_io.save ~replicas:2 sharded path in
      resave ();
      let files =
        match Xk_index.Shard_io.replica_files path with
        | Ok files -> files
        | Error e ->
            Alcotest.failf "replica_files: %s"
              (Xk_index.Shard_io.error_message e)
      in
      check Alcotest.(option int) "shard segments are v3" (Some 3)
        (Xk_index.Index_io.format_version files.(0).(0));
      (* Torn directory region: the flip defeats the directory checksum.
         One damaged copy falls back to the replica... *)
      flip_at files.(0).(0) (layout_of files.(0).(0)).Xk_index.Index_io.l3_dir_off;
      (match
         Xk_index.Shard_io.load_result ~retries:1 ~backoff_ms:0.1 doc path
       with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "torn directory should fall back: %s"
            (Xk_index.Shard_io.error_message e));
      (* ...and with both copies torn the shard is typed corruption. *)
      flip_at files.(0).(1)
        ((layout_of files.(0).(1)).Xk_index.Index_io.l3_dir_off + 8);
      (match
         Xk_index.Shard_io.load_result ~retries:1 ~backoff_ms:0.1 doc path
       with
      | Error
          (Xk_index.Shard_io.Shard
            {
              shard = 0;
              failures =
                [ (_, { error = Corrupted _; _ }); (_, { error = Corrupted _; _ }) ];
            }) ->
          ()
      | Error e ->
          Alcotest.failf "torn directories: wrong error %s"
            (Xk_index.Shard_io.error_message e)
      | Ok _ -> Alcotest.fail "shard with two torn directories loaded");
      (* Corrupted mapped column: the lazy open defers column checks, so
         paranoid callers pass [verify_columns] and the damage is caught
         at open time - behind fallback first, then as typed corruption
         once the replica is damaged too. *)
      resave ();
      let lay0 = layout_of files.(0).(0) in
      check Alcotest.bool "shard carries rows" true
        (lay0.Xk_index.Index_io.l3_total_rows > 0);
      flip_at files.(0).(0) lay0.Xk_index.Index_io.l3_nodes_off;
      (match
         Xk_index.Shard_io.load_result ~verify_columns:true ~retries:1
           ~backoff_ms:0.1 doc path
       with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "corrupt column should fall back: %s"
            (Xk_index.Shard_io.error_message e));
      flip_at files.(0).(1)
        (layout_of files.(0).(1)).Xk_index.Index_io.l3_tfs_off;
      (match
         Xk_index.Shard_io.load_result ~verify_columns:true ~retries:1
           ~backoff_ms:0.1 doc path
       with
      | Error
          (Xk_index.Shard_io.Shard
            {
              shard = 0;
              failures =
                [ (_, { error = Corrupted _; _ }); (_, { error = Corrupted _; _ }) ];
            }) ->
          ()
      | Error e ->
          Alcotest.failf "corrupt columns: wrong error %s"
            (Xk_index.Shard_io.error_message e)
      | Ok _ -> Alcotest.fail "eager verify accepted corrupt columns");
      (* The same damage without [verify_columns] opens fine and trips
         the per-term checksum on first decode as a [Segment_fault] -
         the query-time form the executor's failover handles. *)
      let solo = Filename.concat dir "solo.seg" in
      let label = Xk_encoding.Labeling.label doc in
      Xk_index.Index_io.save (Xk_index.Index.build label) solo;
      flip_at solo (layout_of solo).Xk_index.Index_io.l3_tfs_off;
      (match Xk_index.Index_io.load_result ~retries:1 label solo with
      | Error e ->
          Alcotest.failf "lazy open should defer column checks: %s"
            (Xk_index.Index_io.load_error_message e)
      | Ok lazy_idx -> (
          match
            for id = 0 to Xk_index.Index.term_count lazy_idx - 1 do
              ignore (Xk_index.Index.raw_rows lazy_idx id)
            done
          with
          | () -> Alcotest.fail "corrupt column decoded without a fault"
          | exception Xk_index.Index_io.Segment_fault _ -> ()));
      (* Injected map failure: the primary cannot be mapped at all; the
         loader classifies it as an IO failure without burning retries
         and serves from the replica. *)
      resave ();
      Fun.protect ~finally:Xk_resilience.Fault_injection.reset (fun () ->
          Xk_resilience.Fault_injection.mark_unmappable ~path:files.(1).(0);
          (match Xk_index.Shard_io.load_result doc path with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "map failure should fall back: %s"
                (Xk_index.Shard_io.error_message e));
          Xk_resilience.Fault_injection.mark_unmappable ~path:files.(1).(1);
          match Xk_index.Shard_io.load_result doc path with
          | Error
              (Xk_index.Shard_io.Shard
                {
                  shard = 1;
                  failures =
                    [
                      (_, { error = Io_failed _; attempts = 1 });
                      (_, { error = Io_failed _; attempts = 1 });
                    ];
                }) ->
              ()
          | Error e ->
              Alcotest.failf "unmappable replicas: wrong error %s"
                (Xk_index.Shard_io.error_message e)
          | Ok _ -> Alcotest.fail "unmappable shard loaded"))

(* Replicated segments: save writes N verified copies per shard, the
   loader falls back across them, and a shard is lost only when every
   copy fails. *)
let shard_io_replicas () =
  let doc = Tutil.random_doc 404 in
  let sharded = Xk_index.Sharding.partition ~shards:3 doc in
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "corpus.shards" in
      Xk_index.Shard_io.save ~replicas:2 sharded path;
      (* The manifest records a [shard][replica] grid and every file in
         it exists; replica 0 is the primary segment path. *)
      let files =
        match Xk_index.Shard_io.replica_files path with
        | Ok files -> files
        | Error e ->
            Alcotest.failf "replica_files: %s"
              (Xk_index.Shard_io.error_message e)
      in
      check Alcotest.int "one replica row per shard" 3 (Array.length files);
      Array.iteri
        (fun s row ->
          check Alcotest.int "two replicas per shard" 2 (Array.length row);
          check Alcotest.string "replica 0 is the primary segment"
            (Xk_index.Shard_io.segment_path path ~shard:s)
            row.(0);
          check Alcotest.string "replica 1 carries the rN infix"
            (Xk_index.Shard_io.replica_path path ~shard:s ~replica:1)
            row.(1);
          Array.iter
            (fun f -> check Alcotest.bool "replica file exists" true
                (Sys.file_exists f))
            row)
        files;
      (* Losing one copy is invisible: corrupt the primary of shard 1
         and the loader serves from replica 1. *)
      flip_last_byte files.(1).(0);
      (match Xk_index.Shard_io.load_result doc path with
      | Ok reloaded ->
          check Alcotest.(array int) "fallback load keeps the assignment"
            (Xk_index.Sharding.assignment sharded)
            (Xk_index.Sharding.assignment reloaded)
      | Error e ->
          Alcotest.failf "one corrupt replica should fall back: %s"
            (Xk_index.Shard_io.error_message e));
      (* Losing every copy is a typed per-shard error carrying each
         replica's failure: corrupt the survivor too. *)
      flip_last_byte files.(1).(1);
      (match Xk_index.Shard_io.load_result doc path with
      | Error
          (Xk_index.Shard_io.Shard
            {
              shard = 1;
              failures =
                [ (_, { error = Corrupted _; _ }); (_, { error = Corrupted _; _ }) ];
            }) ->
          ()
      | Error e ->
          Alcotest.failf "all replicas corrupt: wrong error %s"
            (Xk_index.Shard_io.error_message e)
      | Ok _ -> Alcotest.fail "shard with no clean replica loaded");
      (* Removed copies classify as IO failures, one entry per file. *)
      Sys.remove files.(1).(0);
      Sys.remove files.(1).(1);
      (match Xk_index.Shard_io.load_result doc path with
      | Error
          (Xk_index.Shard_io.Shard
            {
              shard = 1;
              failures =
                [ (_, { error = Io_failed _; _ }); (_, { error = Io_failed _; _ }) ];
            }) ->
          ()
      | Error e ->
          Alcotest.failf "all replicas missing: wrong error %s"
            (Xk_index.Shard_io.error_message e)
      | Ok _ -> Alcotest.fail "shard with no replica files loaded");
      (* A copy that lands damaged surfaces at save time, not at
         failover time: persistent read corruption on one replica path
         defeats the post-save verification no matter the retries. *)
      let path2 = Filename.concat dir "damaged.shards" in
      Xk_resilience.Fault_injection.mark_corrupt
        ~path:(Xk_index.Shard_io.replica_path path2 ~shard:0 ~replica:1);
      Fun.protect ~finally:Xk_resilience.Fault_injection.reset (fun () ->
          match Xk_index.Shard_io.save ~replicas:2 sharded path2 with
          | () -> Alcotest.fail "save verified a damaged replica"
          | exception Xk_index.Shard_io.Verify_failed msg ->
              check Alcotest.bool "verify error names the replica" true
                (contains msg ".r1.seg"));
      (* A legacy v1 manifest is typed corruption telling the operator
         to rebuild, not a crash. *)
      let legacy = Filename.concat dir "legacy.shards" in
      let oc = open_out_bin legacy in
      output_string oc "XKSHM001";
      close_out oc;
      check Alcotest.bool "legacy magic still sniffs as manifest" true
        (Xk_index.Shard_io.is_manifest legacy);
      match Xk_index.Shard_io.load_result doc legacy with
      | Error (Xk_index.Shard_io.Manifest { error = Corrupted msg; _ }) ->
          check Alcotest.bool "legacy error says to rebuild" true
            (contains msg "legacy")
      | Error e ->
          Alcotest.failf "legacy manifest: wrong error %s"
            (Xk_index.Shard_io.error_message e)
      | Ok _ -> Alcotest.fail "legacy manifest loaded")

(* --- Legacy manifest fixtures ----------------------------------------- *)

(* The "v1 is refused, v2 still loads" claims pinned by committed bytes,
   not by round-trips through today's writer.

   [v2_manifest_bytes] is a version-2 manifest (no endpoint records):
   magic "XKSHM002" | version 2 | payload length 53 | payload CRC |
   payload = 2 shards, 3 subtrees, assignment [0; 1; 0], then one
   replica per shard with basenames fixture.shards.00{0,1}.seg.  If the
   decoder's v2 layout ever drifts, this literal stops loading. *)
let v2_manifest_bytes =
  "XKSHM002\x025\x9c\xa0\x88\xb9\x0a\x02\x03\x00\x01\x00\x01\x16fixture.shards.000.seg\x01\x16fixture.shards.001.seg"

(* A version-1 manifest: bare magic, then the pre-replica payload shape
   (assignment only).  Only the magic matters — v1 is typed corruption
   with a rebuild hint no matter the rest. *)
let v1_manifest_bytes = "XKSHM001\x01\x05\x2a\x02\x03\x00\x01\x00"

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let fixture_doc =
  {
    Xk_xml.Xml_tree.root =
      Xk_xml.Xml_tree.element "lib"
        [
          Xk_xml.Xml_tree.elem "a" [ Xk_xml.Xml_tree.text "kw0 kw1" ];
          Xk_xml.Xml_tree.elem "b" [ Xk_xml.Xml_tree.text "kw1 kw2" ];
          Xk_xml.Xml_tree.elem "c" [ Xk_xml.Xml_tree.text "kw0 kw2" ];
        ];
  }

let shard_io_legacy_fixtures () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "fixture.shards" in
      (* Segments come from today's writer — the fixture pins the
         manifest layout; segment framing has its own tests. *)
      let sharded =
        Xk_index.Sharding.partition ~shards:2 ~assignment:[| 0; 1; 0 |]
          fixture_doc
      in
      Xk_index.Shard_io.save sharded path;
      write_file path v2_manifest_bytes;
      check Alcotest.bool "v2 sniffs as manifest" true
        (Xk_index.Shard_io.is_manifest path);
      (match Xk_index.Shard_io.load_result fixture_doc path with
      | Ok loaded ->
          check Alcotest.int "v2 shard count" 2
            (Xk_index.Sharding.count loaded);
          check
            (Alcotest.array Alcotest.int)
            "v2 assignment" [| 0; 1; 0 |]
            (Xk_index.Sharding.assignment loaded)
      | Error e ->
          Alcotest.failf "committed v2 bytes no longer load: %s"
            (Xk_index.Shard_io.error_message e));
      write_file path v1_manifest_bytes;
      check Alcotest.bool "v1 still sniffs as manifest" true
        (Xk_index.Shard_io.is_manifest path);
      match Xk_index.Shard_io.load_result fixture_doc path with
      | Error (Xk_index.Shard_io.Manifest { error = Corrupted msg; _ }) ->
          check Alcotest.bool "v1 error says to rebuild" true
            (contains msg "legacy" && contains msg "rebuild")
      | Error e ->
          Alcotest.failf "committed v1 bytes: wrong error %s"
            (Xk_index.Shard_io.error_message e)
      | Ok _ -> Alcotest.fail "committed v1 bytes loaded")

(* --- Aggregated stats ------------------------------------------------- *)

let cache_aggregate () =
  let s a b c d e =
    {
      Xk_index.Shard_cache.hits = a;
      misses = b;
      evictions = c;
      entries = d;
      capacity = e;
    }
  in
  let total = Xk_index.Shard_cache.aggregate [ s 1 2 3 4 5; s 10 20 30 40 50 ] in
  check Alcotest.int "hits" 11 total.Xk_index.Shard_cache.hits;
  check Alcotest.int "misses" 22 total.misses;
  check Alcotest.int "evictions" 33 total.evictions;
  check Alcotest.int "entries" 44 total.entries;
  check Alcotest.int "capacity" 55 total.capacity;
  check Alcotest.bool "zero is neutral" true
    (Xk_index.Shard_cache.aggregate [] = Xk_index.Shard_cache.zero_stats);
  (* Live aggregation over a sharded index: querying populates some
     shard's caches, and the aggregate sees it. *)
  let doc = Tutil.random_doc 3 in
  let sharded = Xk_index.Sharding.partition ~shards:3 doc in
  let sx = Shard_exec.create ~domains:2 sharded in
  Fun.protect ~finally:(fun () -> Shard_exec.shutdown sx) (fun () ->
      (* Query a term that certainly occurs, so some shard materializes a
         list shape and its cache counts a miss. *)
      let word =
        let idx = Xk_index.Sharding.index sharded 0 in
        Xk_index.Index.term idx 0
      in
      ignore (Shard_exec.exec sx (Xk_core.Engine.complete_request [ word ]));
      let stats = Shard_exec.stats sx in
      check Alcotest.int "shards" 3 stats.Shard_exec.shards;
      check Alcotest.int "queries" 1 stats.queries;
      check Alcotest.int "completed" 1 stats.completed;
      if stats.cache.Xk_index.Shard_cache.misses = 0 then
        Alcotest.fail "aggregated cache stats saw no activity");
  (* Size reports aggregate flavour-wise. *)
  let reports = Xk_index.Sharding.size_reports sharded in
  let agg = Xk_index.Sharding.size_report sharded in
  let sum f = Array.fold_left (fun a r -> a + f r) 0 reports in
  check Alcotest.int "join-based inverted lists aggregate"
    (sum (fun r -> r.Xk_index.Index_sizes.join_based.inverted_lists))
    agg.Xk_index.Index_sizes.join_based.inverted_lists;
  check Alcotest.int "rdil auxiliary aggregate"
    (sum (fun r -> r.Xk_index.Index_sizes.rdil.auxiliary))
    agg.Xk_index.Index_sizes.rdil.auxiliary

(* --- Admission control ------------------------------------------------ *)

let admission () =
  let doc = Tutil.random_doc 21 in
  let sharded = Xk_index.Sharding.partition ~shards:2 doc in
  let sx = Shard_exec.create ~domains:2 ~max_queue:1 sharded in
  Fun.protect ~finally:(fun () -> Shard_exec.shutdown sx) (fun () ->
      let rng = Xk_datagen.Rng.create 4 in
      let words = Tutil.random_query rng ~k:2 ~alphabet:26 in
      let reqs =
        List.init 20 (fun _ -> Xk_core.Engine.complete_request words)
      in
      let outcomes = Shard_exec.exec_batch sx reqs in
      let rejected =
        List.length
          (List.filter (fun o -> o = Query_service.Rejected) outcomes)
      in
      let okd =
        List.length
          (List.filter
             (fun o -> match o with Query_service.Ok _ -> true | _ -> false)
             outcomes)
      in
      if rejected = 0 then
        Alcotest.fail "max_queue=1 never rejected a 20-request burst";
      if okd = 0 then Alcotest.fail "admission starved every request";
      let stats = Shard_exec.stats sx in
      check Alcotest.int "rejections counted" rejected stats.Shard_exec.rejected;
      (* The service recovered: a fresh request is admitted. *)
      match Shard_exec.exec sx (Xk_core.Engine.complete_request words) with
      | Query_service.Ok _ -> ()
      | o -> Alcotest.failf "post-burst request came back %s" (pp_outcome o))

let suite =
  [
    ( "shard.parity",
      [
        QCheck_alcotest.to_alcotest parity_prop;
        QCheck_alcotest.to_alcotest parity_assignment_prop;
        QCheck_alcotest.to_alcotest partial_prefix_prop;
      ] );
    ( "shard.structure",
      [
        tc "node mapping round-trips" `Quick mapping_roundtrip;
        tc "root edge cases" `Quick root_edge_cases;
        tc "aggregated stats" `Quick cache_aggregate;
        tc "admission control" `Quick admission;
      ] );
    ( "shard.io",
      [
        tc "manifest + segments round-trip" `Quick shard_io_roundtrip;
        tc "typed per-shard failures" `Quick shard_io_failures;
        tc "v3 open-path faults" `Quick shard_io_v3_faults;
        tc "replica fallback and loss" `Quick shard_io_replicas;
        tc "committed v1/v2 manifest bytes" `Quick shard_io_legacy_fixtures;
      ] );
  ]
