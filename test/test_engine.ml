(* Engine facade: end-to-end behaviour, result presentation, heap. *)

open Xk_core

let check = Alcotest.check
let tc = Alcotest.test_case

let eng () =
  Engine.of_string
    {|<library>
        <shelf topic="databases">
          <book><title>xml keyword search</title><blurb>ranked retrieval</blurb></book>
          <book><title>relational joins</title><blurb>top k processing</blurb></book>
        </shelf>
        <shelf topic="systems">
          <book><title>keyword indexes</title><blurb>xml storage</blurb></book>
        </shelf>
      </library>|}

let end_to_end () =
  let e = eng () in
  let hits = Engine.query e [ "xml"; "keyword" ] in
  check Alcotest.bool "has results" true (List.length hits > 0);
  (* Results sorted by score descending. *)
  let scores = List.map (fun (h : Xk_baselines.Hit.t) -> h.score) hits in
  check Alcotest.bool "sorted" true
    (List.sort (fun a b -> Float.compare b a) scores = scores);
  (* The title "xml keyword search" text node must be the best hit. *)
  match hits with
  | best :: _ -> (
      match Engine.element_of_hit e best with
      | Some el ->
          check Alcotest.string "best element" "title" el.tag
      | None -> Alcotest.fail "no element")
  | [] -> assert false

let unknown_keyword_empty () =
  let e = eng () in
  check Alcotest.int "empty" 0 (List.length (Engine.query e [ "xml"; "zzz" ]));
  check Alcotest.int "topk empty" 0
    (List.length (Engine.query_topk e [ "xml"; "zzz" ] ~k:5))

let duplicate_keywords_collapse () =
  let e = eng () in
  let a = Engine.query e [ "xml"; "xml" ] in
  let b = Engine.query e [ "xml" ] in
  Tutil.check_same_hits "duplicates collapse" b a

let topk_prefix_of_complete () =
  let e = eng () in
  let full = Engine.query e [ "keyword"; "xml" ] in
  let top1 = Engine.query_topk e [ "keyword"; "xml" ] ~k:1 in
  Tutil.check_topk "top-1 prefix" ~k:1 full top1

let case_insensitive () =
  let e = eng () in
  Tutil.check_same_hits "case folded"
    (Engine.query e [ "xml"; "keyword" ])
    (Engine.query e [ "XML"; "Keyword" ])

let attribute_search () =
  let e = eng () in
  let hits = Engine.query e [ "databases" ] in
  check Alcotest.bool "attribute value found" true (List.length hits = 1);
  match Engine.element_of_hit e (List.hd hits) with
  | Some el -> check Alcotest.string "shelf" "shelf" el.tag
  | None -> Alcotest.fail "no element"

let explain_witnesses () =
  let e = eng () in
  match Engine.query e [ "xml"; "keyword" ] with
  | best :: _ ->
      let ws = Engine.explain e [ "xml"; "keyword" ] best in
      check Alcotest.int "one witness per keyword" 2 (List.length ws);
      List.iter
        (fun (w : Engine.witness) ->
          check Alcotest.bool "positive contribution" true (w.contribution > 0.))
        ws;
      (* SLCA scores have no exclusion, so witness contributions sum to the
         hit score exactly. *)
      let slca_best =
        List.hd (Engine.query ~semantics:Engine.Slca e [ "xml"; "keyword" ])
      in
      let total =
        List.fold_left
          (fun a (w : Engine.witness) -> a +. w.contribution)
          0.
          (Engine.explain e [ "xml"; "keyword" ] slca_best)
      in
      check (Alcotest.float 1e-9) "witnesses sum to SLCA score" slca_best.score
        total
  | [] -> Alcotest.fail "no results"

let snippet_contains_keyword () =
  let e = eng () in
  match Engine.query e [ "xml"; "keyword" ] with
  | best :: _ ->
      let snips = Engine.snippet ~width:30 e [ "xml"; "keyword" ] best in
      check Alcotest.int "two snippets" 2 (List.length snips);
      List.iter
        (fun (kw, text) ->
          let lower = String.lowercase_ascii text in
          let found = ref false in
          let kn = String.length kw in
          for i = 0 to String.length lower - kn do
            if String.sub lower i kn = kw then found := true
          done;
          check Alcotest.bool (kw ^ " visible in snippet") true !found;
          check Alcotest.bool "width respected" true (String.length text <= 30))
        snips
  | [] -> Alcotest.fail "no results"

let heap_basics () =
  let h = Xk_util.Heap.create () in
  check Alcotest.bool "empty" true (Xk_util.Heap.is_empty h);
  List.iter (fun (k, v) -> Xk_util.Heap.push h k v)
    [ (1.0, "a"); (3.0, "c"); (2.0, "b"); (5.0, "e"); (4.0, "d") ];
  check Alcotest.int "size" 5 (Xk_util.Heap.size h);
  check Alcotest.(option (pair (float 0.) string)) "peek" (Some (5.0, "e"))
    (Xk_util.Heap.peek h);
  let order = List.map snd (Xk_util.Heap.drain h) in
  check Alcotest.(list string) "drain order" [ "e"; "d"; "c"; "b"; "a" ] order

let heap_random =
  QCheck.Test.make ~count:300 ~name:"heap sorts random floats"
    QCheck.(list pos_float)
    (fun floats ->
      let h = Xk_util.Heap.create () in
      List.iter (fun f -> Xk_util.Heap.push h f ()) floats;
      let drained = List.map fst (Xk_util.Heap.drain h) in
      drained = List.sort (fun a b -> Float.compare b a) floats)

(* End-to-end integration on a realistic corpus: every algorithm, both
   semantics, every planted query. *)
let dblp_integration () =
  let corpus = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled 0.15) in
  let e = Engine.create corpus.doc in
  List.iter
    (fun q ->
      List.iter
        (fun semantics ->
          let reference = Engine.query ~semantics ~algorithm:Engine.Oracle e q in
          Alcotest.check Alcotest.bool
            ("has results: " ^ String.concat " " q)
            true (reference <> []);
          List.iter
            (fun (name, algorithm) ->
              Tutil.check_same_hits
                (name ^ " on {" ^ String.concat " " q ^ "}")
                reference
                (Engine.query ~semantics ~algorithm e q))
            [
              ("join", Engine.Join_based);
              ("stack", Engine.Stack_based);
              ("indexed", Engine.Index_based);
            ];
          List.iter
            (fun (name, algorithm) ->
              Tutil.check_topk
                (name ^ " top-10 on {" ^ String.concat " " q ^ "}")
                ~k:10 reference
                (Engine.query_topk ~semantics ~algorithm e q ~k:10))
            [
              ("topk-join", Engine.Topk_join);
              ("complete", Engine.Complete_then_sort);
              ("rdil", Engine.Rdil_baseline);
              ("hybrid", Engine.Hybrid);
            ])
        [ Engine.Elca; Engine.Slca ])
    (corpus.correlated_queries @ corpus.uncorrelated_queries)

let suite =
  [
    ( "engine",
      [
        tc "end to end" `Quick end_to_end;
        tc "unknown keyword" `Quick unknown_keyword_empty;
        tc "duplicate keywords" `Quick duplicate_keywords_collapse;
        tc "top-k prefix" `Quick topk_prefix_of_complete;
        tc "case insensitive" `Quick case_insensitive;
        tc "attribute search" `Quick attribute_search;
        tc "explain witnesses" `Quick explain_witnesses;
        tc "snippet contains keyword" `Quick snippet_contains_keyword;
        tc "heap basics" `Quick heap_basics;
        tc "DBLP integration, all algorithms" `Slow dblp_integration;
        QCheck_alcotest.to_alcotest heap_random;
      ] );
  ]
