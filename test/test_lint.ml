(* xklint: fixture snippets per syntactic rule (known-good and
   known-bad), multi-file fixture projects for the whole-program
   analyses (budget reachability, lock-held sets, lock order, mmap
   escapes), the allow mechanisms (config entries, [@xklint.allow]
   attributes, file scoping) and the baseline round trip. *)

open Xklint_lib

let check = Alcotest.check
let tc = Alcotest.test_case

let config_of_string src =
  match Lint_config.of_string src with
  | Ok c -> c
  | Error msg -> Alcotest.failf "config: %s" msg

let lint ?(config = "") ~file src =
  Lint_engine.lint_source (config_of_string config) ~file src

let lint_all ?(config = "") sources =
  (Lint_engine.lint_sources (config_of_string config) sources)
    .Lint_engine.findings

let rules fs = List.map (fun (f : Lint_finding.t) -> f.rule) fs
let slist = Alcotest.slist Alcotest.string String.compare

let check_rules ?config ~file name expected src =
  check slist name expected (rules (lint ?config ~file src))

let check_rules_all ?config name expected sources =
  check slist name expected (rules (lint_all ?config sources))

(* --- bare-lock ------------------------------------------------------- *)

let bare_lock () =
  let bad = "let get t =\n  Mutex.lock t.lock;\n  let v = t.v in\n  Mutex.unlock t.lock;\n  v\n" in
  check slist "lock and unlock flagged" [ "bare-lock"; "bare-lock" ]
    (rules (lint ~file:"lib/index/fixture.ml" bad));
  check_rules ~file:"lib/index/fixture.ml" "with_lock is fine" []
    "let get t = Xk_util.Sync.with_lock t.lock (fun () -> t.v)\n";
  check_rules ~file:"lib/index/fixture.ml" "file-level allow" []
    ("[@@@xklint.allow bare-lock]\n" ^ bad);
  check_rules ~file:"bench/fixture.ml" "outside lib" [] bad

(* --- shared-state ---------------------------------------------------- *)

let shared_state () =
  check_rules ~file:"lib/exec/fixture.ml" "top-level Hashtbl"
    [ "shared-state" ] "let cache = Hashtbl.create 16\n";
  check_rules ~file:"lib/resilience/fixture.ml" "top-level ref"
    [ "shared-state" ] "let counter = ref 0\n";
  check_rules ~file:"lib/exec/fixture.ml" "per-call state is fine" []
    "let fresh () = Hashtbl.create 16\n";
  check_rules ~file:"lib/exec/fixture.ml" "Atomic is fine" []
    "let counter = Atomic.make 0\n";
  check_rules ~file:"lib/exec/fixture.ml" "Protected wrapper is fine" []
    "let state = Xk_util.Sync.Protected.create (Hashtbl.create 16)\n";
  (* only the domain-crossing libraries are covered *)
  check_rules ~file:"lib/score/fixture.ml" "outside domain-crossing dirs" []
    "let cache = Hashtbl.create 16\n";
  check_rules ~file:"lib/index/fixture.ml" "binding attribute allow" []
    "let cache = (Hashtbl.create 16 [@xklint.allow shared-state])\n"

(* --- rpc-budget ------------------------------------------------------ *)

let rpc_budget () =
  let bad = "let handle_query t q = run t q\n" in
  check_rules ~file:"lib/rpc/fixture.ml" "budget-less handler"
    [ "rpc-budget" ] bad;
  check_rules ~file:"lib/exec/fixture.ml" "serving layer covered too"
    [ "rpc-budget" ] bad;
  check_rules ~file:"lib/rpc/fixture.ml" "handler threading a budget" []
    "let handle_query t q =\n\
    \  let budget = Xk_resilience.Budget.create ?deadline_ms:q.dl () in\n\
    \  run t ~budget q\n";
  check_rules ~file:"lib/rpc/fixture.ml" "short Budget path counts" []
    "let handle_ping t q = run t (Budget.unlimited) q\n";
  (* only handle* names are handlers; framing plumbing is exempt *)
  check_rules ~file:"lib/rpc/fixture.ml" "dispatch is not a handler" []
    "let dispatch t q = run t q\n";
  (* non-function bindings are not handlers *)
  check_rules ~file:"lib/rpc/fixture.ml" "value binding is not a handler" []
    "let handled = 12\n";
  check_rules ~file:"lib/core/fixture.ml" "outside the serving layers" [] bad;
  check_rules ~file:"lib/rpc/fixture.ml" "attribute allow" []
    "let handle_query t q = (run t q) [@@xklint.allow rpc-budget]\n";
  check_rules ~file:"lib/rpc/fixture.ml"
    ~config:"allow rpc-budget lib/rpc/fixture.ml handle_query"
    "config allow" [] bad

(* --- typed-error ----------------------------------------------------- *)

let typed_error () =
  check_rules ~file:"lib/text/fixture.ml" "failwith" [ "typed-error" ]
    "let f () = failwith \"boom\"\n";
  check_rules ~file:"lib/text/fixture.ml" "invalid_arg" [ "typed-error" ]
    "let f () = invalid_arg \"boom\"\n";
  check_rules ~file:"lib/text/fixture.ml" "Err.invalid is fine" []
    "let f () = Xk_util.Err.invalid \"boom\"\n";
  check_rules ~file:"lib/text/fixture.ml" "partial calls"
    [ "typed-error"; "typed-error" ]
    "let f xs = (List.hd xs, Option.get None)\n";
  check_rules ~file:"lib/text/fixture.ml" "unsafe access" [ "typed-error" ]
    "let f a = Array.unsafe_get a 0\n";
  check_rules ~file:"lib/text/fixture.ml" "bare assert false"
    [ "typed-error" ] "let f () = assert false\n";
  check_rules ~file:"lib/text/fixture.ml" "assert with condition is fine" []
    "let f x = assert (x > 0)\n";
  check_rules ~file:"lib/text/fixture.ml" "attribute allow" []
    "let f () = (assert false) [@xklint.allow typed-error]\n";
  check_rules ~file:"bench/fixture.ml" "outside the linted trees" []
    "let f () = failwith \"boom\"\n";
  (* the error and lock disciplines extend to the CLI and the tools *)
  check_rules ~file:"bin/fixture.ml" "partial call in bin"
    [ "typed-error" ] "let f xs = List.hd xs\n";
  check_rules ~file:"tools/lint/fixture.ml" "failwith in tools"
    [ "typed-error" ] "let f () = failwith \"boom\"\n";
  check_rules ~file:"bin/fixture.ml" "bare lock in bin" [ "bare-lock" ]
    "let f m = Mutex.lock m\n"

(* --- durability-sync ------------------------------------------------- *)

let durability_sync () =
  let bad =
    "let save path payload =\n\
    \  let oc = open_out_bin (path ^ \".tmp\") in\n\
    \  output_string oc payload;\n\
    \  close_out oc;\n\
    \  Sys.rename (path ^ \".tmp\") path\n"
  in
  check_rules ~file:"lib/index/fixture.ml" "write-then-rename without fsync"
    [ "durability-sync" ] bad;
  check_rules ~file:"lib/storage/fixture.ml" "storage layer covered too"
    [ "durability-sync" ] bad;
  check_rules ~file:"lib/index/fixture.ml" "explicit fsync discharges" []
    "let save path payload =\n\
    \  let oc = open_out_bin (path ^ \".tmp\") in\n\
    \  output_string oc payload;\n\
    \  Unix.fsync (Unix.descr_of_out_channel oc);\n\
    \  close_out oc;\n\
    \  Sys.rename (path ^ \".tmp\") path\n";
  check_rules ~file:"lib/index/fixture.ml" "Durable helper discharges" []
    "let save path payload =\n\
    \  Xk_storage.Durable.write_atomically path (fun oc ->\n\
    \      output_string oc payload)\n";
  check_rules ~file:"lib/index/fixture.ml" "rename without a write is fine" []
    "let promote path = Sys.rename (path ^ \".tmp\") path\n";
  (* only the persistence layers are covered *)
  check_rules ~file:"lib/exec/fixture.ml" "outside the persistence layers" []
    bad;
  check_rules ~file:"lib/index/fixture.ml" "attribute allow" []
    ("let save path payload =\n\
     \  (let oc = open_out_bin (path ^ \".tmp\") in\n\
     \  output_string oc payload;\n\
     \  close_out oc;\n\
     \  Sys.rename (path ^ \".tmp\") path)\n\
      [@@xklint.allow durability-sync]\n");
  check_rules ~file:"lib/index/fixture.ml"
    ~config:"allow durability-sync lib/index/fixture.ml save" "config allow" []
    bad

(* --- no-blocking-in-callback ----------------------------------------- *)

let no_blocking_in_callback () =
  let bad =
    "let make () =\n\
    \  Circuit_breaker.create\n\
    \    ~on_transition:(fun _from _to -> Unix.sleepf 0.1)\n\
    \    ()\n"
  in
  check_rules ~file:"lib/exec/fixture.ml" "sleeping transition hook flagged"
    [ "no-blocking-in-callback" ] bad;
  check_rules ~file:"lib/exec/fixture.ml" "RPC inside a supervisor event hook"
    [ "no-blocking-in-callback" ]
    "let make procs specs =\n\
    \  Supervisor.create\n\
    \    ~on_event:(fun e -> ignore (Xk_rpc.Client.ping e))\n\
    \    ~procs specs\n";
  check_rules ~file:"lib/exec/fixture.ml"
    "fully qualified owner covered too" [ "no-blocking-in-callback" ]
    "let make () =\n\
    \  Xk_resilience.Circuit_breaker.create\n\
    \    ~on_transition:(fun _ _ -> In_channel.input_line stdin |> ignore)\n\
    \    ()\n";
  check_rules ~file:"lib/exec/fixture.ml" "pure counter hook is fine" []
    "let make hits =\n\
    \  Circuit_breaker.create ~on_transition:(fun _ _ -> incr hits) ()\n";
  check_rules ~file:"lib/exec/fixture.ml" "named function by value is fine" []
    "let make log_event procs specs =\n\
    \  Supervisor.create ~on_event:log_event ~procs specs\n";
  check_rules ~file:"lib/exec/fixture.ml" "non-callback owners exempt" []
    "let make () = Listener.create ~on_accept:(fun fd -> Unix.close fd) ()\n";
  check_rules ~file:"lib/exec/fixture.ml" "attribute waiver" []
    "let make () =\n\
    \  Circuit_breaker.create\n\
    \    ~on_transition:((fun _ _ -> Unix.sleepf 0.1)\n\
    \      [@xklint.allow \"no-blocking-in-callback\"])\n\
    \    ()\n";
  check_rules ~file:"bench/fixture.ml" "outside the linted trees" [] bad

let parse_error () =
  check slist "unparsable file" [ "parse-error" ]
    (rules (lint ~file:"lib/text/fixture.ml" "let let let\n"))

(* --- budget-loop: whole-program reachability ------------------------- *)

let budget_entry_loop () =
  let unpolled =
    "let handle_query t q =\n  while live t do\n    step t q\n  done\n"
  in
  check_rules ~file:"lib/index/fixture.ml" "unpolled loop in a handler"
    [ "budget-loop" ] unpolled;
  check_rules ~file:"lib/index/fixture.ml" "polling loop in a handler" []
    "let handle_query t q =\n\
    \  while live t do\n\
    \    Xk_resilience.Budget.check q.budget;\n\
    \    step t q\n\
    \  done\n";
  (* a loop no entry point reaches is someone's bounded helper *)
  check_rules ~file:"lib/core/fixture.ml" "loop not reachable from entries" []
    "let scan t q =\n  while live t do\n    step t q\n  done\n";
  check_rules ~file:"bench/fixture.ml" "outside the serving scope" [] unpolled

let budget_cross_module () =
  let entry = ("lib/core/engine.ml", "let run_request t q = Xk_index.Walk.descend t q\n") in
  let fs =
    lint_all
      [
        entry;
        ( "lib/index/walk.ml",
          "let scan t q =\n\
          \  while more t do\n\
          \    advance t q\n\
          \  done\n\n\
           let descend t q = scan t q\n" );
      ]
  in
  check slist "loop two calls below an entry" [ "budget-loop" ] (rules fs);
  (match fs with
  | [ f ] ->
      check Alcotest.string "finding sits on the loop" "lib/index/walk.ml"
        f.Lint_finding.file;
      check Alcotest.int "trace spans every frame" 4
        (List.length f.Lint_finding.trace);
      check Alcotest.bool "rendered trace starts at the entry" true
        (Lint_util.contains_substring
           ~sub:"    via lib/core/engine.ml:1  entry point Engine.run_request"
           (Lint_finding.to_string f))
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
  (* a poll on an intermediate frame suppresses everything below it *)
  check_rules_all "poll on an intermediate frame suppresses" []
    [
      entry;
      ( "lib/index/walk.ml",
        "let scan t q =\n\
        \  while more t do\n\
        \    advance t q\n\
        \  done\n\n\
         let descend t q =\n\
        \  Xk_resilience.Budget.check q.budget;\n\
        \  scan t q\n" );
    ];
  (* ... and so does a poll in the loop itself *)
  check_rules_all "poll in the loop suppresses" []
    [
      entry;
      ( "lib/index/walk.ml",
        "let scan t q =\n\
        \  while more t do\n\
        \    Xk_resilience.Budget.check q.budget;\n\
        \    advance t q\n\
        \  done\n\n\
         let descend t q = scan t q\n" );
    ]

let budget_loop_coverage () =
  (* a call made from inside a polled loop is covered: the work between
     two polls of the driving loop is assumed bounded *)
  let helper =
    ("lib/index/walk.ml", "let step t q =\n  while busy t do\n    advance t q\n  done\n")
  in
  check_rules_all "call site inside a polled loop is covered" []
    [
      ( "lib/core/engine.ml",
        "let run_request t q =\n\
        \  while more t do\n\
        \    Xk_resilience.Budget.check q.budget;\n\
        \    Xk_index.Walk.step t q\n\
        \  done\n" );
      helper;
    ];
  (* without the poll, both the driving loop and the helper's flag *)
  check_rules_all "unpolled driving loop exposes the helper"
    [ "budget-loop"; "budget-loop" ]
    [
      ( "lib/core/engine.ml",
        "let run_request t q =\n\
        \  while more t do\n\
        \    Xk_index.Walk.step t q\n\
        \  done\n" );
      helper;
    ]

let budget_recursion () =
  let entry = ("lib/core/engine.ml", "let run_request t q = Xk_index.Walk.ping t q\n") in
  check_rules_all "mutual recursion without a poll" [ "budget-loop" ]
    [
      entry;
      ( "lib/index/walk.ml",
        "let rec ping t q = pong t q\nand pong t q = if more t then ping t q\n" );
    ];
  check_rules_all "polling recursion is fine" []
    [
      entry;
      ( "lib/index/walk.ml",
        "let rec ping t q =\n\
        \  Xk_resilience.Budget.check q.budget;\n\
        \  pong t q\n\
         and pong t q = if more t then ping t q\n" );
    ];
  (* a recursive helper nested in a handler body is reachable too *)
  check_rules ~file:"lib/index/fixture.ml" "nested recursion in a handler"
    [ "budget-loop" ]
    "let handle_load t =\n  let rec go () = if live t then go () in\n  go ()\n"

let budget_allows () =
  let project =
    [
      ("lib/core/engine.ml", "let run_request t q = Xk_index.Walk.descend t q\n");
      ( "lib/index/walk.ml",
        "let scan t q =\n\
        \  while more t do\n\
        \    advance t q\n\
        \  done\n\n\
         let descend t q = scan t q\n" );
    ]
  in
  check_rules_all "unwaived baseline" [ "budget-loop" ] project;
  check_rules_all ~config:"allow budget-loop lib/index/walk.ml scan"
    "config allow by containing function" [] project;
  check_rules_all ~config:"allow budget-loop lib/index/other.ml scan"
    "config allow elsewhere does not apply" [ "budget-loop" ] project;
  check_rules ~file:"lib/index/fixture.ml" "attribute allow on the loop" []
    "let handle_load t =\n\
    \  (while live t do\n\
    \     step t\n\
    \   done)\n\
    \  [@xklint.allow budget-loop]\n";
  check_rules ~file:"lib/index/fixture.ml" "attribute allow on the binding" []
    "let handle_load t =\n\
    \  while live t do\n\
    \    step t\n\
    \  done\n\
    \  [@@xklint.allow budget-loop]\n"

(* --- blocking-io-under-lock ------------------------------------------ *)

let lock_io () =
  let bad =
    "let read t =\n\
    \  Xk_util.Sync.with_lock t.lock (fun () -> Unix.read t.fd buf 0 len)\n"
  in
  check_rules ~file:"lib/index/fixture.ml" "Unix call under with_lock"
    [ "blocking-io-under-lock" ] bad;
  check_rules ~file:"lib/resilience/fixture.ml" "channel IO under Protected"
    [ "blocking-io-under-lock" ]
    "let dump t oc =\n\
    \  Xk_util.Sync.Protected.with_ t (fun st ->\n\
    \      Out_channel.output_string oc st.log)\n";
  check_rules ~file:"lib/exec/fixture.ml" "sleep under short Sync path"
    [ "blocking-io-under-lock" ]
    "let wait t = Sync.with_lock t.lock (fun () -> Unix.sleepf 0.1)\n";
  check_rules ~file:"lib/index/fixture.ml" "decide under lock, act outside" []
    "let read t =\n\
    \  let fd = Xk_util.Sync.with_lock t.lock (fun () -> t.fd) in\n\
    \  Unix.read fd buf 0 len\n";
  (* a nested critical section is scanned on its own visit, not twice *)
  check slist "nested sections report once" [ "blocking-io-under-lock" ]
    (rules
       (lint ~file:"lib/index/fixture.ml"
          "let f t =\n\
          \  Xk_util.Sync.with_lock a (fun () ->\n\
          \      Xk_util.Sync.with_lock b (fun () -> Unix.close t.fd))\n"));
  check_rules ~file:"lib/index/fixture.ml" "attribute allow" []
    "let read t =\n\
    \  Xk_util.Sync.with_lock t.lock (fun () ->\n\
    \      (Unix.read t.fd buf 0 len) [@xklint.allow blocking-io-under-lock])\n";
  check_rules ~file:"bench/fixture.ml" "outside lib" [] bad

let lock_io_transitive () =
  let caller =
    ( "lib/index/segment.ml",
      "let sync t =\n\
      \  Xk_util.Sync.with_lock t.lock (fun () -> Writer.flush_all t)\n" )
  in
  let fs =
    lint_all
      [ caller; ("lib/index/writer.ml", "let flush_all t = Unix.fsync t.fd\n") ]
  in
  check slist "callee blocks under the caller's lock"
    [ "blocking-io-under-lock" ] (rules fs);
  (match fs with
  | [ f ] ->
      check Alcotest.string "finding sits at the call site"
        "lib/index/segment.ml" f.Lint_finding.file;
      check Alcotest.bool "trace ends at the blocking call" true
        (match List.rev f.Lint_finding.trace with
        | (file, _, note) :: _ ->
            file = "lib/index/writer.ml" && note = "blocking call Unix.fsync"
        | [] -> false)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
  check_rules_all "non-blocking callee is fine" []
    [ caller; ("lib/index/writer.ml", "let flush_all t = note t\n") ]

let lock_io_closure () =
  let cache =
    ( "lib/index/shard_cache.ml",
      "let find_or_add t id compute =\n\
      \  Xk_util.Sync.with_lock t.lock (fun () -> compute id)\n" )
  in
  check_rules_all "closure runs under the callee's lock"
    [ "blocking-io-under-lock" ]
    [
      cache;
      ( "lib/index/reader.ml",
        "let rows t id =\n\
        \  Shard_cache.find_or_add t.cache id (fun _ -> Unix.read t.fd buf 0 len)\n"
      );
    ];
  check_rules_all "pure closure under the callee's lock is fine" []
    [
      cache;
      ( "lib/index/reader.ml",
        "let rows t id =\n\
        \  Shard_cache.find_or_add t.cache id (fun _ -> decode t id)\n" );
    ]

(* --- lock-order ------------------------------------------------------- *)

let lock_order () =
  check_rules ~file:"lib/exec/fixture.ml" "nested inversion in one module"
    [ "lock-order" ]
    "let ab t =\n\
    \  Xk_util.Sync.with_lock t.a (fun () ->\n\
    \      Xk_util.Sync.with_lock t.b (fun () -> tick t))\n\n\
     let ba t =\n\
    \  Xk_util.Sync.with_lock t.b (fun () ->\n\
    \      Xk_util.Sync.with_lock t.a (fun () -> tick t))\n";
  check_rules ~file:"lib/exec/fixture.ml" "consistent order is fine" []
    "let ab t =\n\
    \  Xk_util.Sync.with_lock t.a (fun () ->\n\
    \      Xk_util.Sync.with_lock t.b (fun () -> tick t))\n\n\
     let ab2 t =\n\
    \  Xk_util.Sync.with_lock t.a (fun () ->\n\
    \      Xk_util.Sync.with_lock t.b (fun () -> tock t))\n";
  (* same printed key: sharded-cache re-entry by design, not an order *)
  check_rules ~file:"lib/exec/fixture.ml" "same-key re-entry is fine" []
    "let re t =\n\
    \  Xk_util.Sync.with_lock t.a (fun () ->\n\
    \      Xk_util.Sync.with_lock t.a (fun () -> tick t))\n";
  check_rules_all "inversion across modules" [ "lock-order" ]
    [
      ( "lib/exec/a.ml",
        "let fwd t = Xk_util.Sync.with_lock t.la (fun () -> B.grab t)\n\n\
         let take t = Xk_util.Sync.with_lock t.la (fun () -> tick t)\n" );
      ( "lib/exec/b.ml",
        "let grab t = Xk_util.Sync.with_lock t.lb (fun () -> tick t)\n\n\
         let rev t = Xk_util.Sync.with_lock t.lb (fun () -> A.take t)\n" );
    ];
  check_rules_all "one direction across modules is fine" []
    [
      ( "lib/exec/a.ml",
        "let fwd t = Xk_util.Sync.with_lock t.la (fun () -> B.grab t)\n" );
      ( "lib/exec/b.ml",
        "let grab t = Xk_util.Sync.with_lock t.lb (fun () -> tick t)\n" );
    ]

(* --- mmap-lifetime --------------------------------------------------- *)

let mmap_sinks () =
  let raw_view =
    "let stash t id =\n\
    \  Hashtbl.replace t.cache id (Xk_storage.Mmap.view t.map ~pos:0)\n"
  in
  check_rules ~file:"lib/index/fixture.ml" "raw view into Hashtbl"
    [ "mmap-lifetime" ] raw_view;
  check_rules ~file:"lib/storage/fixture.ml" "storage layer covered too"
    [ "mmap-lifetime" ] raw_view;
  check_rules ~file:"lib/index/fixture.ml" "cache closure over the map"
    [ "mmap-lifetime" ]
    "let rows t id =\n\
    \  Shard_cache.find_or_add t.cache id (fun () -> Mmap.u32 t.map ~pos:id)\n";
  check_rules ~file:"lib/index/fixture.ml" "ref cell capture"
    [ "mmap-lifetime" ]
    "let set t = t.slot := Xk_storage.Mmap.view t.map ~pos:0\n";
  (* a copying accessor at value depth is the decode-to-plain pattern *)
  check_rules ~file:"lib/index/fixture.ml" "copying accessor decodes" []
    "let stash t id =\n\
    \  Hashtbl.replace t.cache id (Xk_storage.Mmap.u32 t.map ~pos:0)\n";
  check_rules ~file:"lib/index/fixture.ml" "decode into plain values first" []
    "let cache_rows t id rows =\n\
    \  let nodes = decode_nodes rows in\n\
    \  Hashtbl.replace t.cache id nodes\n";
  (* only the zero-copy layers are covered *)
  check_rules ~file:"lib/core/fixture.ml" "outside the zero-copy layers" []
    raw_view;
  check_rules ~file:"lib/index/fixture.ml" "attribute allow" []
    "let stash t id =\n\
    \  (Hashtbl.replace t.cache id (Xk_storage.Mmap.view t.map ~pos:0))\n\
    \  [@xklint.allow mmap-lifetime]\n";
  check_rules ~file:"lib/index/fixture.ml"
    ~config:"allow mmap-lifetime lib/index/fixture.ml Hashtbl.replace"
    "config allow by sink" [] raw_view

let mmap_returns () =
  let reader =
    ("lib/storage/reader.ml", "let window t pos = Xk_storage.Mmap.view t.map pos\n")
  in
  let fs =
    lint_all
      [
        reader;
        ( "lib/index/cache.ml",
          "let remember t id =\n\
          \  Hashtbl.replace t.tbl id (Xk_storage.Reader.window t.r 0)\n" );
      ]
  in
  check slist "returned view reaching a sink" [ "mmap-lifetime" ] (rules fs);
  (match fs with
  | [ f ] ->
      check Alcotest.bool "trace names the returning function" true
        (List.exists
           (fun (_, _, note) ->
             note = "Reader.window returns an Mmap-backed value")
           f.Lint_finding.trace)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
  check_rules_all "let-bound view chased to the sink" [ "mmap-lifetime" ]
    [
      reader;
      ( "lib/index/cache.ml",
        "let remember t id =\n\
        \  let w = Xk_storage.Reader.window t.r 0 in\n\
        \  Hashtbl.replace t.tbl id w\n" );
    ];
  (* a function that decodes to plain values does not taint its callers *)
  check_rules_all "decoded return is fine" []
    [
      ( "lib/storage/reader.ml",
        "let width t pos = Xk_storage.Mmap.u32 t.map ~pos\n" );
      ( "lib/index/cache.ml",
        "let remember t id =\n\
        \  Hashtbl.replace t.tbl id (Xk_storage.Reader.width t.r 0)\n" );
    ]

(* --- engine: determinism, SARIF, graph ------------------------------- *)

let finding_order () =
  let fs =
    lint_all
      [
        ("lib/text/b.ml", "let f () = failwith \"x\"\n\nlet g xs = List.hd xs\n");
        ("lib/text/a.ml", "let h () = invalid_arg \"y\"\n");
      ]
  in
  check Alcotest.bool "sorted and deduplicated" true
    (fs = List.sort_uniq Lint_finding.compare fs);
  check Alcotest.int "all three reported" 3 (List.length fs);
  match fs with
  | first :: _ ->
      check Alcotest.string "a.ml sorts before b.ml" "lib/text/a.ml"
        first.Lint_finding.file
  | [] -> Alcotest.fail "expected findings"

let sarif_output () =
  let fs =
    lint_all
      [
        ("lib/core/engine.ml", "let run_request t q = Xk_index.Walk.descend t q\n");
        ( "lib/index/walk.ml",
          "let descend t q =\n  while more t do\n    advance t q\n  done\n" );
      ]
  in
  check slist "fixture finding" [ "budget-loop" ] (rules fs);
  let sarif = Lint_sarif.to_string ~tool_version:"test" fs in
  let has sub =
    check Alcotest.bool sub true (Lint_util.contains_substring ~sub sarif)
  in
  has "\"version\":\"2.1.0\"";
  has "{\"id\":\"budget-loop\"}";
  has "\"relatedLocations\":[";
  has "entry point Engine.run_request"

let call_graph () =
  let { Lint_engine.files; graph; findings = _ } =
    Lint_engine.lint_sources (config_of_string "")
      [ ("lib/core/a.ml", "let f x = g x\n\nlet g x = x + 1\n") ]
  in
  check Alcotest.int "file count" 1 files;
  check Alcotest.bool "defs collected" true (Lint_callgraph.n_defs graph >= 2);
  check Alcotest.bool "edges recorded" true (Lint_callgraph.n_edges graph >= 1);
  let dot = Lint_callgraph.to_dot graph in
  check Alcotest.bool "dot names the defs" true
    (Lint_util.contains_substring ~sub:"A.f" dot)

(* --- config ---------------------------------------------------------- *)

let config_parse () =
  let cfg =
    config_of_string
      "# comment\n\n\
       allow budget-loop lib/core/erased.ml first_after\n\
       allow bare-lock lib/util/sync.ml *\n\
       allow * lib/legacy/\n"
  in
  let allowed = Lint_config.allowed cfg in
  check Alcotest.bool "by name" true
    (allowed ~rule:"budget-loop" ~file:"lib/core/erased.ml"
       ~name:(Some "first_after"));
  check Alcotest.bool "wrong name" false
    (allowed ~rule:"budget-loop" ~file:"lib/core/erased.ml"
       ~name:(Some "other"));
  check Alcotest.bool "star name" true
    (allowed ~rule:"bare-lock" ~file:"lib/util/sync.ml" ~name:(Some "anything"));
  check Alcotest.bool "dir prefix + star rule" true
    (allowed ~rule:"typed-error" ~file:"lib/legacy/old.ml" ~name:None);
  check Alcotest.bool "suffix match" true
    (allowed ~rule:"budget-loop" ~file:"repo/lib/core/erased.ml"
       ~name:(Some "first_after"));
  match Lint_config.of_string "allow\n" with
  | Ok _ -> Alcotest.fail "malformed config accepted"
  | Error _ -> ()

(* --- baseline -------------------------------------------------------- *)

let findings_of src = lint ~file:"lib/text/fixture.ml" src

let baseline_roundtrip () =
  let findings = findings_of "let f xs = (List.hd xs, failwith \"x\")\n" in
  check Alcotest.int "two findings" 2 (List.length findings);
  let reloaded = Lint_baseline.of_string (Lint_baseline.to_string findings) in
  let { Lint_baseline.fresh; baselined; stale } =
    Lint_baseline.filter reloaded findings
  in
  check Alcotest.int "none fresh" 0 (List.length fresh);
  check Alcotest.int "all baselined" 2 baselined;
  check Alcotest.int "none stale" 0 (List.length stale)

let baseline_fresh_and_stale () =
  let old = findings_of "let f () = failwith \"x\"\n" in
  let baseline = Lint_baseline.of_string (Lint_baseline.to_string old) in
  (* the failwith moved (same key) and a new partial call appeared *)
  let now = findings_of "let g xs = List.hd xs\n\nlet f () = failwith \"x\"\n" in
  let { Lint_baseline.fresh; baselined; stale } =
    Lint_baseline.filter baseline now
  in
  check Alcotest.int "one fresh" 1 (List.length fresh);
  check Alcotest.int "one baselined" 1 baselined;
  check Alcotest.int "none stale" 0 (List.length stale);
  (* and with the failwith fixed, its entry goes stale *)
  let { Lint_baseline.fresh; baselined; stale } =
    Lint_baseline.filter baseline (findings_of "let g xs = List.hd xs\n")
  in
  check Alcotest.int "still one fresh" 1 (List.length fresh);
  check Alcotest.int "none baselined" 0 baselined;
  check Alcotest.int "one stale" 1 (List.length stale)

let baseline_counts_duplicates () =
  let two = findings_of "let f () = failwith \"a\"\n\nlet g () = failwith \"a\"\n" in
  check Alcotest.int "two identical keys" 2 (List.length two);
  let one = Lint_baseline.of_string "lib/text/fixture.ml\ttyped-error\t'failwith' raises untyped Failure; raise a typed exception (Xk_util.Err or a module-specific one)\n" in
  let { Lint_baseline.fresh; baselined; stale = _ } =
    Lint_baseline.filter one two
  in
  check Alcotest.int "one grandfathered" 1 baselined;
  check Alcotest.int "one fresh" 1 (List.length fresh)

let finding_format () =
  match findings_of "let f () = failwith \"x\"\n" with
  | [ f ] ->
      check Alcotest.string "file:line severity rule message"
        "lib/text/fixture.ml:1 error typed-error 'failwith' raises untyped \
         Failure; raise a typed exception (Xk_util.Err or a module-specific \
         one)"
        (Lint_finding.to_string f)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let suite =
  [
    ( "lint.rules",
      [
        tc "bare-lock" `Quick bare_lock;
        tc "shared-state" `Quick shared_state;
        tc "rpc-budget" `Quick rpc_budget;
        tc "typed-error" `Quick typed_error;
        tc "durability-sync" `Quick durability_sync;
        tc "no-blocking-in-callback" `Quick no_blocking_in_callback;
        tc "parse error" `Quick parse_error;
      ] );
    ( "lint.budget",
      [
        tc "entry-point loops" `Quick budget_entry_loop;
        tc "cross-module reachability" `Quick budget_cross_module;
        tc "polled-loop edge coverage" `Quick budget_loop_coverage;
        tc "recursion cycles" `Quick budget_recursion;
        tc "allows" `Quick budget_allows;
      ] );
    ( "lint.locks",
      [
        tc "blocking IO: lexical" `Quick lock_io;
        tc "blocking IO: transitive" `Quick lock_io_transitive;
        tc "blocking IO: closure under callee lock" `Quick lock_io_closure;
        tc "lock-order inversions" `Quick lock_order;
      ] );
    ( "lint.mmap",
      [
        tc "sink arguments" `Quick mmap_sinks;
        tc "returned views" `Quick mmap_returns;
      ] );
    ( "lint.engine",
      [
        tc "deterministic finding order" `Quick finding_order;
        tc "sarif output" `Quick sarif_output;
        tc "call graph" `Quick call_graph;
      ] );
    ( "lint.config",
      [ tc "parse + matching" `Quick config_parse ] );
    ( "lint.baseline",
      [
        tc "round trip" `Quick baseline_roundtrip;
        tc "fresh and stale" `Quick baseline_fresh_and_stale;
        tc "duplicate keys counted" `Quick baseline_counts_duplicates;
        tc "finding format" `Quick finding_format;
      ] );
  ]
