(* xklint: fixture snippets per rule (known-good and known-bad), the
   allow mechanisms (config entries, [@xklint.allow] attributes, file
   scoping) and the baseline round trip. *)

open Xklint_lib

let check = Alcotest.check
let tc = Alcotest.test_case

let config_of_string src =
  match Lint_config.of_string src with
  | Ok c -> c
  | Error msg -> Alcotest.failf "config: %s" msg

let lint ?(config = "") ~file src =
  Lint_engine.lint_source (config_of_string config) ~file src

let rules fs = List.map (fun (f : Lint_finding.t) -> f.rule) fs
let slist = Alcotest.slist Alcotest.string String.compare

let check_rules ?config ~file name expected src =
  check slist name expected (rules (lint ?config ~file src))

(* --- budget-loop ----------------------------------------------------- *)

let budget_while () =
  let bad = "let serve () =\n  while true do\n    step ()\n  done\n" in
  check_rules ~file:"lib/core/fixture.ml" "budget-less while" [ "budget-loop" ]
    bad;
  check_rules ~file:"lib/core/fixture.ml" "polled while" []
    "let serve b =\n\
    \  while Xk_resilience.Budget.alive b do\n\
    \    step ()\n\
    \  done\n";
  check_rules ~file:"lib/core/fixture.ml" "short Budget path counts" []
    "let serve b =\n  while true do\n    Budget.check b;\n    step ()\n  done\n";
  (* the rule only covers the algorithm layers *)
  check_rules ~file:"lib/xml/fixture.ml" "outside algo layers" [] bad;
  check_rules ~file:"bench/fixture.ml" "outside lib" [] bad

let budget_rec () =
  let bad = "let rec drain h =\n  match pop h with Some _ -> drain h | None -> ()\n" in
  check_rules ~file:"lib/baselines/fixture.ml" "budget-less rec"
    [ "budget-loop" ] bad;
  check_rules ~file:"lib/baselines/fixture.ml" "polled rec" []
    "let rec drain b h =\n\
    \  Xk_resilience.Budget.check b;\n\
    \  match pop h with Some _ -> drain b h | None -> ()\n";
  (* nested let rec inside a function body is checked too *)
  check_rules ~file:"lib/core/fixture.ml" "nested rec" [ "budget-loop" ]
    "let topk () =\n  let rec go () = go () in\n  go ()\n"

let budget_allow () =
  let bad = "let bsearch () =\n  while !lo < !hi do\n    narrow ()\n  done\n" in
  check_rules ~file:"lib/core/fixture.ml"
    ~config:"allow budget-loop lib/core/fixture.ml bsearch"
    "config allow by function" [] bad;
  check_rules ~file:"lib/core/fixture.ml"
    ~config:"allow budget-loop lib/core/other.ml bsearch"
    "config allow other file" [ "budget-loop" ] bad;
  check_rules ~file:"lib/core/fixture.ml" "attribute allow" []
    "let bsearch () =\n\
    \  (while !lo < !hi do\n\
    \     narrow ()\n\
    \   done)\n\
    \  [@xklint.allow budget-loop]\n"

(* --- bare-lock ------------------------------------------------------- *)

let bare_lock () =
  let bad = "let get t =\n  Mutex.lock t.lock;\n  let v = t.v in\n  Mutex.unlock t.lock;\n  v\n" in
  check slist "lock and unlock flagged" [ "bare-lock"; "bare-lock" ]
    (rules (lint ~file:"lib/index/fixture.ml" bad));
  check_rules ~file:"lib/index/fixture.ml" "with_lock is fine" []
    "let get t = Xk_util.Sync.with_lock t.lock (fun () -> t.v)\n";
  check_rules ~file:"lib/index/fixture.ml" "file-level allow" []
    ("[@@@xklint.allow bare-lock]\n" ^ bad);
  check_rules ~file:"bench/fixture.ml" "outside lib" [] bad

(* --- blocking-io-under-lock ------------------------------------------ *)

let lock_io () =
  let bad =
    "let read t =\n\
    \  Xk_util.Sync.with_lock t.lock (fun () -> Unix.read t.fd buf 0 len)\n"
  in
  check_rules ~file:"lib/index/fixture.ml" "Unix call under with_lock"
    [ "blocking-io-under-lock" ] bad;
  check_rules ~file:"lib/resilience/fixture.ml" "channel IO under Protected"
    [ "blocking-io-under-lock" ]
    "let dump t oc =\n\
    \  Xk_util.Sync.Protected.with_ t (fun st ->\n\
    \      Out_channel.output_string oc st.log)\n";
  check_rules ~file:"lib/exec/fixture.ml" "sleep under short Sync path"
    [ "blocking-io-under-lock" ]
    "let wait t = Sync.with_lock t.lock (fun () -> Unix.sleepf 0.1)\n";
  check_rules ~file:"lib/index/fixture.ml" "decide under lock, act outside" []
    "let read t =\n\
    \  let fd = Xk_util.Sync.with_lock t.lock (fun () -> t.fd) in\n\
    \  Unix.read fd buf 0 len\n";
  (* a nested critical section is scanned on its own visit, not twice *)
  check slist "nested sections report once" [ "blocking-io-under-lock" ]
    (rules
       (lint ~file:"lib/index/fixture.ml"
          "let f t =\n\
          \  Xk_util.Sync.with_lock a (fun () ->\n\
          \      Xk_util.Sync.with_lock b (fun () -> Unix.close t.fd))\n"));
  check_rules ~file:"lib/index/fixture.ml" "attribute allow" []
    "let read t =\n\
    \  Xk_util.Sync.with_lock t.lock (fun () ->\n\
    \      (Unix.read t.fd buf 0 len) [@xklint.allow blocking-io-under-lock])\n";
  check_rules ~file:"bench/fixture.ml" "outside lib" [] bad

(* --- shared-state ---------------------------------------------------- *)

let shared_state () =
  check_rules ~file:"lib/exec/fixture.ml" "top-level Hashtbl"
    [ "shared-state" ] "let cache = Hashtbl.create 16\n";
  check_rules ~file:"lib/resilience/fixture.ml" "top-level ref"
    [ "shared-state" ] "let counter = ref 0\n";
  check_rules ~file:"lib/exec/fixture.ml" "per-call state is fine" []
    "let fresh () = Hashtbl.create 16\n";
  check_rules ~file:"lib/exec/fixture.ml" "Atomic is fine" []
    "let counter = Atomic.make 0\n";
  check_rules ~file:"lib/exec/fixture.ml" "Protected wrapper is fine" []
    "let state = Xk_util.Sync.Protected.create (Hashtbl.create 16)\n";
  (* only the domain-crossing libraries are covered *)
  check_rules ~file:"lib/score/fixture.ml" "outside domain-crossing dirs" []
    "let cache = Hashtbl.create 16\n";
  check_rules ~file:"lib/index/fixture.ml" "binding attribute allow" []
    "let cache = (Hashtbl.create 16 [@xklint.allow shared-state])\n"

(* --- rpc-budget ------------------------------------------------------ *)

let rpc_budget () =
  let bad = "let handle_query t q = run t q\n" in
  check_rules ~file:"lib/rpc/fixture.ml" "budget-less handler"
    [ "rpc-budget" ] bad;
  check_rules ~file:"lib/exec/fixture.ml" "serving layer covered too"
    [ "rpc-budget" ] bad;
  check_rules ~file:"lib/rpc/fixture.ml" "handler threading a budget" []
    "let handle_query t q =\n\
    \  let budget = Xk_resilience.Budget.create ?deadline_ms:q.dl () in\n\
    \  run t ~budget q\n";
  check_rules ~file:"lib/rpc/fixture.ml" "short Budget path counts" []
    "let handle_ping t q = run t (Budget.unlimited) q\n";
  (* only handle* names are handlers; framing plumbing is exempt *)
  check_rules ~file:"lib/rpc/fixture.ml" "dispatch is not a handler" []
    "let dispatch t q = run t q\n";
  (* non-function bindings are not handlers *)
  check_rules ~file:"lib/rpc/fixture.ml" "value binding is not a handler" []
    "let handled = 12\n";
  check_rules ~file:"lib/core/fixture.ml" "outside the serving layers" [] bad;
  check_rules ~file:"lib/rpc/fixture.ml" "attribute allow" []
    "let handle_query t q = (run t q) [@@xklint.allow rpc-budget]\n";
  check_rules ~file:"lib/rpc/fixture.ml"
    ~config:"allow rpc-budget lib/rpc/fixture.ml handle_query"
    "config allow" [] bad

(* --- typed-error ----------------------------------------------------- *)

let typed_error () =
  check_rules ~file:"lib/text/fixture.ml" "failwith" [ "typed-error" ]
    "let f () = failwith \"boom\"\n";
  check_rules ~file:"lib/text/fixture.ml" "invalid_arg" [ "typed-error" ]
    "let f () = invalid_arg \"boom\"\n";
  check_rules ~file:"lib/text/fixture.ml" "Err.invalid is fine" []
    "let f () = Xk_util.Err.invalid \"boom\"\n";
  check_rules ~file:"lib/text/fixture.ml" "partial calls"
    [ "typed-error"; "typed-error" ]
    "let f xs = (List.hd xs, Option.get None)\n";
  check_rules ~file:"lib/text/fixture.ml" "unsafe access" [ "typed-error" ]
    "let f a = Array.unsafe_get a 0\n";
  check_rules ~file:"lib/text/fixture.ml" "bare assert false"
    [ "typed-error" ] "let f () = assert false\n";
  check_rules ~file:"lib/text/fixture.ml" "assert with condition is fine" []
    "let f x = assert (x > 0)\n";
  check_rules ~file:"lib/text/fixture.ml" "attribute allow" []
    "let f () = (assert false) [@xklint.allow typed-error]\n";
  check_rules ~file:"bench/fixture.ml" "outside the linted trees" []
    "let f () = failwith \"boom\"\n";
  (* the error and lock disciplines extend to the CLI and the tools *)
  check_rules ~file:"bin/fixture.ml" "partial call in bin"
    [ "typed-error" ] "let f xs = List.hd xs\n";
  check_rules ~file:"tools/lint/fixture.ml" "failwith in tools"
    [ "typed-error" ] "let f () = failwith \"boom\"\n";
  check_rules ~file:"bin/fixture.ml" "bare lock in bin" [ "bare-lock" ]
    "let f m = Mutex.lock m\n"

(* --- durability-sync ------------------------------------------------- *)

let durability_sync () =
  let bad =
    "let save path payload =\n\
    \  let oc = open_out_bin (path ^ \".tmp\") in\n\
    \  output_string oc payload;\n\
    \  close_out oc;\n\
    \  Sys.rename (path ^ \".tmp\") path\n"
  in
  check_rules ~file:"lib/index/fixture.ml" "write-then-rename without fsync"
    [ "durability-sync" ] bad;
  check_rules ~file:"lib/storage/fixture.ml" "storage layer covered too"
    [ "durability-sync" ] bad;
  check_rules ~file:"lib/index/fixture.ml" "explicit fsync discharges" []
    "let save path payload =\n\
    \  let oc = open_out_bin (path ^ \".tmp\") in\n\
    \  output_string oc payload;\n\
    \  Unix.fsync (Unix.descr_of_out_channel oc);\n\
    \  close_out oc;\n\
    \  Sys.rename (path ^ \".tmp\") path\n";
  check_rules ~file:"lib/index/fixture.ml" "Durable helper discharges" []
    "let save path payload =\n\
    \  Xk_storage.Durable.write_atomically path (fun oc ->\n\
    \      output_string oc payload)\n";
  check_rules ~file:"lib/index/fixture.ml" "rename without a write is fine" []
    "let promote path = Sys.rename (path ^ \".tmp\") path\n";
  (* only the persistence layers are covered *)
  check_rules ~file:"lib/exec/fixture.ml" "outside the persistence layers" []
    bad;
  check_rules ~file:"lib/index/fixture.ml" "attribute allow" []
    ("let save path payload =\n\
     \  (let oc = open_out_bin (path ^ \".tmp\") in\n\
     \  output_string oc payload;\n\
     \  close_out oc;\n\
     \  Sys.rename (path ^ \".tmp\") path)\n\
      [@@xklint.allow durability-sync]\n");
  check_rules ~file:"lib/index/fixture.ml"
    ~config:"allow durability-sync lib/index/fixture.ml save" "config allow" []
    bad

(* --- mmap-lifetime --------------------------------------------------- *)

let mmap_lifetime () =
  let bad =
    "let cache_rows t id =\n\
    \  Hashtbl.replace t.cache id\n\
    \    (Xk_storage.Mmap.sub_string t.map ~pos:0 ~len:8)\n"
  in
  check_rules ~file:"lib/index/fixture.ml" "mapped bytes into Hashtbl"
    [ "mmap-lifetime" ] bad;
  check_rules ~file:"lib/storage/fixture.ml" "storage layer covered too"
    [ "mmap-lifetime" ] bad;
  check_rules ~file:"lib/index/fixture.ml" "cache closure over the map"
    [ "mmap-lifetime" ]
    "let rows t id =\n\
    \  Shard_cache.find_or_add t.cache id (fun () -> Mmap.u32 t.map ~pos:id)\n";
  check_rules ~file:"lib/index/fixture.ml" "ref cell capture"
    [ "mmap-lifetime" ]
    "let stash t = t.slot := Xk_storage.Mmap.sub_string t.map ~pos:0 ~len:4\n";
  check_rules ~file:"lib/index/fixture.ml" "decode into plain values first" []
    "let cache_rows t id rows =\n\
    \  let nodes = decode_nodes rows in\n\
    \  Hashtbl.replace t.cache id nodes\n";
  (* only the zero-copy layers are covered *)
  check_rules ~file:"lib/core/fixture.ml" "outside the zero-copy layers" [] bad;
  check_rules ~file:"lib/index/fixture.ml" "attribute allow" []
    "let cache_rows t id =\n\
    \  (Hashtbl.replace t.cache id\n\
    \     (Xk_storage.Mmap.sub_string t.map ~pos:0 ~len:8))\n\
    \  [@xklint.allow mmap-lifetime]\n";
  check_rules ~file:"lib/index/fixture.ml"
    ~config:"allow mmap-lifetime lib/index/fixture.ml Hashtbl.replace"
    "config allow by sink" [] bad

let parse_error () =
  check slist "unparsable file" [ "parse-error" ]
    (rules (lint ~file:"lib/text/fixture.ml" "let let let\n"))

(* --- config ---------------------------------------------------------- *)

let config_parse () =
  let cfg =
    config_of_string
      "# comment\n\n\
       allow budget-loop lib/core/erased.ml first_after\n\
       allow bare-lock lib/util/sync.ml *\n\
       allow * lib/legacy/\n"
  in
  let allowed = Lint_config.allowed cfg in
  check Alcotest.bool "by name" true
    (allowed ~rule:"budget-loop" ~file:"lib/core/erased.ml"
       ~name:(Some "first_after"));
  check Alcotest.bool "wrong name" false
    (allowed ~rule:"budget-loop" ~file:"lib/core/erased.ml"
       ~name:(Some "other"));
  check Alcotest.bool "star name" true
    (allowed ~rule:"bare-lock" ~file:"lib/util/sync.ml" ~name:(Some "anything"));
  check Alcotest.bool "dir prefix + star rule" true
    (allowed ~rule:"typed-error" ~file:"lib/legacy/old.ml" ~name:None);
  check Alcotest.bool "suffix match" true
    (allowed ~rule:"budget-loop" ~file:"repo/lib/core/erased.ml"
       ~name:(Some "first_after"));
  match Lint_config.of_string "allow\n" with
  | Ok _ -> Alcotest.fail "malformed config accepted"
  | Error _ -> ()

(* --- baseline -------------------------------------------------------- *)

let findings_of src = lint ~file:"lib/text/fixture.ml" src

let baseline_roundtrip () =
  let findings = findings_of "let f xs = (List.hd xs, failwith \"x\")\n" in
  check Alcotest.int "two findings" 2 (List.length findings);
  let reloaded = Lint_baseline.of_string (Lint_baseline.to_string findings) in
  let { Lint_baseline.fresh; baselined; stale } =
    Lint_baseline.filter reloaded findings
  in
  check Alcotest.int "none fresh" 0 (List.length fresh);
  check Alcotest.int "all baselined" 2 baselined;
  check Alcotest.int "none stale" 0 (List.length stale)

let baseline_fresh_and_stale () =
  let old = findings_of "let f () = failwith \"x\"\n" in
  let baseline = Lint_baseline.of_string (Lint_baseline.to_string old) in
  (* the failwith moved (same key) and a new partial call appeared *)
  let now = findings_of "let g xs = List.hd xs\n\nlet f () = failwith \"x\"\n" in
  let { Lint_baseline.fresh; baselined; stale } =
    Lint_baseline.filter baseline now
  in
  check Alcotest.int "one fresh" 1 (List.length fresh);
  check Alcotest.int "one baselined" 1 baselined;
  check Alcotest.int "none stale" 0 (List.length stale);
  (* and with the failwith fixed, its entry goes stale *)
  let { Lint_baseline.fresh; baselined; stale } =
    Lint_baseline.filter baseline (findings_of "let g xs = List.hd xs\n")
  in
  check Alcotest.int "still one fresh" 1 (List.length fresh);
  check Alcotest.int "none baselined" 0 baselined;
  check Alcotest.int "one stale" 1 (List.length stale)

let baseline_counts_duplicates () =
  let two = findings_of "let f () = failwith \"a\"\n\nlet g () = failwith \"a\"\n" in
  check Alcotest.int "two identical keys" 2 (List.length two);
  let one = Lint_baseline.of_string "lib/text/fixture.ml\ttyped-error\t'failwith' raises untyped Failure; raise a typed exception (Xk_util.Err or a module-specific one)\n" in
  let { Lint_baseline.fresh; baselined; stale = _ } =
    Lint_baseline.filter one two
  in
  check Alcotest.int "one grandfathered" 1 baselined;
  check Alcotest.int "one fresh" 1 (List.length fresh)

let finding_format () =
  match findings_of "let f () = failwith \"x\"\n" with
  | [ f ] ->
      check Alcotest.string "file:line severity rule message"
        "lib/text/fixture.ml:1 error typed-error 'failwith' raises untyped \
         Failure; raise a typed exception (Xk_util.Err or a module-specific \
         one)"
        (Lint_finding.to_string f)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let suite =
  [
    ( "lint.rules",
      [
        tc "budget-loop: while" `Quick budget_while;
        tc "budget-loop: let rec" `Quick budget_rec;
        tc "budget-loop: allows" `Quick budget_allow;
        tc "bare-lock" `Quick bare_lock;
        tc "blocking-io-under-lock" `Quick lock_io;
        tc "shared-state" `Quick shared_state;
        tc "rpc-budget" `Quick rpc_budget;
        tc "typed-error" `Quick typed_error;
        tc "durability-sync" `Quick durability_sync;
        tc "mmap-lifetime" `Quick mmap_lifetime;
        tc "parse error" `Quick parse_error;
      ] );
    ( "lint.config",
      [ tc "parse + matching" `Quick config_parse ] );
    ( "lint.baseline",
      [
        tc "round trip" `Quick baseline_roundtrip;
        tc "fresh and stale" `Quick baseline_fresh_and_stale;
        tc "duplicate keys counted" `Quick baseline_counts_duplicates;
        tc "finding format" `Quick finding_format;
      ] );
  ]
