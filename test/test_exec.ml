(* The concurrent serving layer: domain pool primitives, batch-vs-
   sequential equivalence (same hits, same order, across semantics and
   modes) and a multi-client hammer against one shared engine. *)

open Xk_exec

let check = Alcotest.check
let tc = Alcotest.test_case

(* --- Domain_pool primitives --------------------------------------- *)

let pool_map_array () =
  let pool = Domain_pool.create ~domains:3 () in
  let xs = Array.init 100 (fun i -> i) in
  let ys = Domain_pool.map_array pool (fun x -> x * x) xs in
  Domain_pool.shutdown pool;
  check Alcotest.(array int) "squares" (Array.map (fun x -> x * x) xs) ys

exception Boom of int

let pool_exception_propagates () =
  let pool = Domain_pool.create ~domains:2 () in
  let fut = Domain_pool.async pool (fun () -> raise (Boom 7)) in
  (match Domain_pool.await fut with
  | Error (Boom 7, _) -> ()
  | Error (e, _) -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | Ok _ -> Alcotest.fail "no exception");
  (* await_exn re-raises with the original backtrace. *)
  (match Domain_pool.await_exn (Domain_pool.async pool (fun () -> raise (Boom 3))) with
  | exception Boom 3 -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "await_exn did not raise");
  (* The worker survived the raising jobs. *)
  check Alcotest.int "pool still alive" 5
    (Domain_pool.await_exn (Domain_pool.async pool (fun () -> 5)));
  Domain_pool.shutdown pool

let pool_shutdown_drains () =
  let pool = Domain_pool.create ~domains:2 () in
  let counter = Atomic.make 0 in
  for _ = 1 to 50 do
    Domain_pool.submit pool (fun () -> Atomic.incr counter)
  done;
  Domain_pool.shutdown pool;
  check Alcotest.int "all jobs ran" 50 (Atomic.get counter);
  Domain_pool.shutdown pool (* idempotent *);
  match Domain_pool.submit pool (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "submit after shutdown accepted"

(* --- Batch equivalence -------------------------------------------- *)

let hits_equal (a : Xk_baselines.Hit.t list) (b : Xk_baselines.Hit.t list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Xk_baselines.Hit.t) (y : Xk_baselines.Hit.t) ->
         x.node = y.node && x.score = y.score)
       a b

let check_batches msg expected actual =
  check Alcotest.int (msg ^ ": batch size") (List.length expected)
    (List.length actual);
  List.iteri
    (fun i (e, a) ->
      if not (hits_equal e a) then
        Alcotest.failf "%s: request %d differs (same hits, same order required)"
          msg i)
    (List.combine expected actual)

(* A heterogeneous batch: both semantics, complete and top-K, several
   algorithms, over random 2- and 3-keyword queries. *)
let mixed_requests rng ~queries ~alphabet =
  List.concat_map
    (fun i ->
      let q = Tutil.random_query rng ~k:(2 + (i mod 2)) ~alphabet in
      Xk_core.Engine.
        [
          complete_request ~semantics:Elca q;
          complete_request ~semantics:Slca q;
          complete_request ~semantics:Elca ~algorithm:Stack_based q;
          topk_request ~semantics:Elca ~k:5 q;
          topk_request ~semantics:Slca ~k:5 q;
          topk_request ~semantics:Elca ~algorithm:Complete_then_sort ~k:3 q;
        ])
    (List.init queries (fun i -> i))

let batch_equivalence () =
  let eng = Tutil.random_engine 1234 in
  let rng = Xk_datagen.Rng.create 7 in
  let reqs = mixed_requests rng ~queries:10 ~alphabet:40 in
  let expected = Xk_core.Engine.query_batch eng reqs in
  let svc = Query_service.create ~domains:4 eng in
  let outcomes = Query_service.exec_batch svc reqs in
  let st = Query_service.stats svc in
  Query_service.shutdown svc;
  List.iter
    (fun o ->
      match o with
      | Query_service.Ok _ -> ()
      | o -> Alcotest.failf "unexpected outcome %s" (Query_service.outcome_label o))
    outcomes;
  check_batches "parallel vs sequential" expected
    (List.map Query_service.hits outcomes);
  check Alcotest.int "one batch counted" 1 st.batches;
  check Alcotest.int "queries counted" (List.length reqs) st.queries;
  check Alcotest.int "all completed" (List.length reqs) st.completed;
  check Alcotest.int "four domains" 4 st.domains

let batch_empty_and_unknown () =
  let eng = Tutil.random_engine 55 in
  let reqs =
    Xk_core.Engine.
      [
        complete_request [ "zzz-not-a-keyword" ];
        topk_request ~k:4 [ "also"; "absent" ];
      ]
  in
  let svc = Query_service.create ~domains:2 eng in
  let out = Query_service.exec_batch_hits svc reqs in
  let empty = Query_service.exec_batch svc [] in
  Query_service.shutdown svc;
  check Alcotest.int "empty batch" 0 (List.length empty);
  List.iter (fun hits -> check Alcotest.int "no hits" 0 (List.length hits)) out

(* --- Hammer: many concurrent clients, one engine ------------------- *)

let hammer () =
  (* Fresh engine over a term-rich corpus, with a deliberately tiny cache
     so concurrent batches keep materializing and evicting under
     contention. *)
  let doc =
    Tutil.random_doc
      ~config:
        {
          Xk_datagen.Random_tree.default with
          max_depth = 7;
          max_children = 5;
          keywords = 24;
        }
      43
  in
  let idx =
    Xk_index.Index.build ~cache_capacity:4 (Xk_encoding.Labeling.label doc)
  in
  let eng = Xk_core.Engine.of_index idx in
  (* Queries over terms that actually occur, so every request
     materializes shapes and the tiny cache is forced to evict. *)
  let ids = Xk_index.Index.terms_by_df idx in
  let take = min 12 (Array.length ids) in
  let word i = Xk_index.Index.term idx ids.(i) in
  let reqs =
    List.concat_map
      (fun i ->
        let q = [ word i; word (i + 1) ] in
        Xk_core.Engine.
          [
            complete_request ~semantics:Elca q;
            complete_request ~semantics:Slca q;
            topk_request ~semantics:Elca ~k:5 q;
          ])
      (List.init (take - 1) (fun i -> i))
  in
  let expected = Xk_core.Engine.query_batch eng reqs in
  let svc = Query_service.create ~domains:4 eng in
  let clients = 4 and rounds = 5 in
  let workers =
    Array.init clients (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              let got = Query_service.exec_batch_hits svc reqs in
              if not (List.for_all2 hits_equal expected got) then
                failwith "hammer: results diverged from sequential"
            done))
  in
  Array.iter Domain.join workers;
  let st = Query_service.stats svc in
  Query_service.shutdown svc;
  check Alcotest.int "batches counted" (clients * rounds) st.batches;
  check Alcotest.int "queries counted"
    (clients * rounds * List.length reqs)
    st.queries;
  check Alcotest.bool "cache under pressure" true (st.cache.evictions > 0);
  check Alcotest.bool "occupancy bounded" true
    (st.cache.entries <= st.cache.capacity)

let suite =
  [
    ( "exec.pool",
      [
        tc "map_array" `Quick pool_map_array;
        tc "exception propagates" `Quick pool_exception_propagates;
        tc "shutdown drains and closes" `Quick pool_shutdown_drains;
      ] );
    ( "exec.service",
      [
        tc "batch equals sequential" `Quick batch_equivalence;
        tc "empty and unknown keywords" `Quick batch_empty_and_unknown;
        tc "concurrent clients hammer" `Slow hammer;
      ] );
  ]
