(* Columns, JDewey lists, score lists, postings, sparse index and the
   index builder. *)

open Xk_index

let check = Alcotest.check
let tc = Alcotest.test_case

let seqs_of l = Array.of_list (List.map Array.of_list l)

let column_runs () =
  let seqs = seqs_of [ [ 1; 1 ]; [ 1; 1; 3 ]; [ 1; 2 ]; [ 1; 2 ]; [ 1; 5; 9 ] ] in
  let c1 = Column.build seqs ~level:1 in
  check Alcotest.int "level1 one run" 1 (Column.num_runs c1);
  check Alcotest.int "level1 entries" 5 (Column.entries c1);
  let c2 = Column.build seqs ~level:2 in
  check Alcotest.int "level2 runs" 3 (Column.num_runs c2);
  (match Column.find c2 2 with
  | Some r ->
      check Alcotest.int "run start" 2 r.start_row;
      check Alcotest.int "run count" 2 r.count
  | None -> Alcotest.fail "find 2");
  check Alcotest.bool "missing value" true (Column.find c2 4 = None);
  let c3 = Column.build seqs ~level:3 in
  check Alcotest.int "level3 skips short rows" 2 (Column.entries c3);
  check Alcotest.(option int) "max value" (Some 9) (Column.max_value c3)

let column_lower_bound () =
  let seqs = seqs_of [ [ 2 ]; [ 4 ]; [ 7 ] ] in
  let c = Column.build seqs ~level:1 in
  check Alcotest.int "lb 1" 0 (Column.lower_bound c 1);
  check Alcotest.int "lb 4" 1 (Column.lower_bound c 4);
  check Alcotest.int "lb 5" 2 (Column.lower_bound c 5);
  check Alcotest.int "lb 99" 3 (Column.lower_bound c 99)

(* The run-contiguity property behind the range checking: in a labeled
   random tree, every column built from a term's rows must consist of runs
   over consecutive row indexes with strictly increasing values (this is
   asserted inside Column.build; here we rebuild columns for many random
   corpora to exercise it). *)
let run_contiguity_prop =
  QCheck.Test.make ~count:200 ~name:"column runs contiguous on random trees"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Xk_datagen.Rng.create seed in
      let doc = Xk_datagen.Random_tree.generate rng in
      let lab = Xk_encoding.Labeling.label doc in
      let idx = Index.build lab in
      let ok = ref true in
      for id = 0 to Index.term_count idx - 1 do
        let jl = Index.jlist idx id in
        for level = 1 to Jlist.max_len jl do
          let c = Jlist.column jl ~level in
          let runs = Column.runs c in
          Array.iteri
            (fun i (r : Column.run) ->
              if i > 0 then begin
                let p = runs.(i - 1) in
                if r.value <= p.value then ok := false
              end;
              (* Every row in the run really has this value at the level. *)
              for row = r.start_row to r.start_row + r.count - 1 do
                let s = Jlist.seq jl row in
                if Array.length s < level || s.(level - 1) <> r.value then
                  ok := false
              done)
            runs
        done
      done;
      !ok)

let small_index () =
  let doc =
    Xk_xml.Xml_parser.parse_string_exn
      "<r><a>xml data xml</a><b>data</b><c>other</c></r>"
  in
  Index.build (Xk_encoding.Labeling.label doc)

let index_stats () =
  let idx = small_index () in
  (match Index.term_id idx "xml" with
  | Some id ->
      check Alcotest.int "df xml" 1 (Index.df idx id);
      let _, tfs = Index.raw_rows idx id in
      check Alcotest.(array int) "tf" [| 2 |] tfs
  | None -> Alcotest.fail "xml missing");
  (match Index.term_id idx "data" with
  | Some id -> check Alcotest.int "df data" 2 (Index.df idx id)
  | None -> Alcotest.fail "data missing");
  check Alcotest.bool "case insensitive" true (Index.term_id idx "XML" <> None);
  check Alcotest.bool "unknown" true (Index.term_id idx "absent" = None)

let index_attributes_indexed () =
  let doc =
    Xk_xml.Xml_parser.parse_string_exn {|<r><conf name="sigmod record"/></r>|}
  in
  let idx = Index.build (Xk_encoding.Labeling.label doc) in
  (match Index.term_id idx "sigmod" with
  | Some id ->
      check Alcotest.int "attribute term df" 1 (Index.df idx id);
      let nodes, _ = Index.raw_rows idx id in
      (* The occurrence is attributed to the element node itself. *)
      check Alcotest.int "element node" 1 nodes.(0)
  | None -> Alcotest.fail "attribute text not indexed")

let posting_probes () =
  let doc =
    Xk_xml.Xml_parser.parse_string_exn
      "<r><a>kw</a><b><c>kw</c><d>kw</d></b><e>kw</e></r>"
  in
  let idx = Index.build (Xk_encoding.Labeling.label doc) in
  let id = Option.get (Index.term_id idx "kw") in
  let p = Index.posting idx id in
  check Alcotest.int "length" 4 (Posting.length p);
  (* Occurrences are the text nodes, doc-ordered. *)
  let b = Xk_encoding.Dewey.of_string "1.2" in
  let lo, hi = Posting.subtree_range p b in
  check Alcotest.int "two under b" 2 (hi - lo);
  check Alcotest.int "count" 2 (Posting.count_in_subtree p b);
  (match Posting.pred p b with
  | Some r ->
      check Alcotest.string "pred" "1.1.1" (Xk_encoding.Dewey.to_string (Posting.dewey p r))
  | None -> Alcotest.fail "pred");
  (match Posting.succ p b with
  | Some r ->
      check Alcotest.string "succ" "1.2.1.1"
        (Xk_encoding.Dewey.to_string (Posting.dewey p r))
  | None -> Alcotest.fail "succ");
  check Alcotest.bool "pred of first" true
    (Posting.pred p (Xk_encoding.Dewey.of_string "1.1") = None);
  check Alcotest.bool "succ past last" true
    (Posting.succ p (Xk_encoding.Dewey.of_string "1.9") = None)

let score_list_groups () =
  let idx = small_index () in
  let id = Option.get (Index.term_id idx "data") in
  let sl = Index.score_list idx id in
  let groups = Score_list.groups sl in
  check Alcotest.bool "at least one group" true (Array.length groups >= 1);
  Array.iter
    (fun (g : Score_list.group) ->
      let jl = Score_list.jlist sl in
      Array.iteri
        (fun i r ->
          check Alcotest.int "group row length" g.len (Jlist.row_len jl r);
          if i > 0 then
            check Alcotest.bool "descending scores" true
              (Jlist.score jl r <= Jlist.score jl g.rows.(i - 1)))
        g.rows)
    groups

let score_list_max_damped () =
  let idx = small_index () in
  let id = Option.get (Index.term_id idx "data") in
  let sl = Index.score_list idx id in
  let jl = Score_list.jlist sl in
  let damping = Index.damping idx in
  for level = 1 to Jlist.max_len jl do
    let ceiling = Score_list.max_damped sl ~level in
    (* No row may beat the ceiling at this level. *)
    for r = 0 to Jlist.length jl - 1 do
      if Jlist.row_len jl r >= level then begin
        let v =
          Jlist.score jl r
          *. Xk_score.Damping.apply damping (Jlist.row_len jl r - level)
        in
        check Alcotest.bool "ceiling holds" true (v <= ceiling +. 1e-12)
      end
    done
  done

let sparse_index_probe () =
  let seqs = seqs_of (List.init 1000 (fun i -> [ (2 * i) + 1 ])) in
  let c = Column.build seqs ~level:1 in
  let sp = Sparse_index.build ~stride:32 c in
  let runs = Column.runs c in
  let num_runs = Column.num_runs c in
  Array.iteri
    (fun i (r : Column.run) ->
      let lo, hi = Sparse_index.probe sp ~num_runs r.value in
      check Alcotest.bool "window contains run" true (lo <= i && i < hi);
      check Alcotest.bool "window narrow" true (hi - lo <= 32))
    runs;
  check Alcotest.bool "size accounted" true (Sparse_index.encoded_size sp > 0)

let jlist_encoded_size () =
  let idx = small_index () in
  let id = Option.get (Index.term_id idx "data") in
  let jl = Index.jlist idx id in
  check Alcotest.bool "positive size" true (Jlist.encoded_size jl > 0)

let sizes_report () =
  let corpus = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled 0.05) in
  let idx = Index.build (Xk_encoding.Labeling.label corpus.doc) in
  let r = Index_sizes.report idx in
  check Alcotest.bool "join IL positive" true (r.join_based.inverted_lists > 0);
  check Alcotest.bool "index-based largest" true
    (r.index_based.inverted_lists > r.join_based.inverted_lists
    && r.index_based.inverted_lists > r.stack_based.inverted_lists);
  check Alcotest.bool "topk IL >= join IL" true
    (r.topk_join.inverted_lists >= r.join_based.inverted_lists);
  check Alcotest.bool "rdil aux positive" true (r.rdil.auxiliary > 0);
  check Alcotest.bool "sparse much smaller than IL" true
    (r.join_based.auxiliary * 4 < r.join_based.inverted_lists)

(* The sharded LRU cache behind the shape accessors. *)

let shard_cache_lru () =
  (* One shard of capacity 2 so the LRU order is observable. *)
  let c = Shard_cache.create ~shards:1 ~capacity:2 () in
  let computes = ref 0 in
  let get k =
    Shard_cache.find_or_add c k ~compute:(fun k ->
        incr computes;
        k * 10)
  in
  check Alcotest.int "miss computes" 10 (get 1);
  check Alcotest.int "second miss" 20 (get 2);
  check Alcotest.int "hit" 10 (get 1);
  (* 2 is now LRU; inserting 3 evicts it. *)
  check Alcotest.int "third key" 30 (get 3);
  check Alcotest.bool "1 retained" true (Shard_cache.mem c 1);
  check Alcotest.bool "2 evicted" false (Shard_cache.mem c 2);
  check Alcotest.int "computed thrice" 3 !computes;
  let st = Shard_cache.stats c in
  check Alcotest.int "hits" 1 st.hits;
  check Alcotest.int "misses" 3 st.misses;
  check Alcotest.int "evictions" 1 st.evictions;
  check Alcotest.int "entries" 2 st.entries

let shard_cache_compute_failure () =
  let c = Shard_cache.create ~shards:1 ~capacity:4 () in
  (match Shard_cache.find_or_add c 1 ~compute:(fun _ -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "no exception");
  check Alcotest.bool "nothing cached" false (Shard_cache.mem c 1);
  (* The shard lock was released by the failing compute. *)
  check Alcotest.int "recovers" 7
    (Shard_cache.find_or_add c 1 ~compute:(fun _ -> 7))

let cache_eviction_consistency () =
  (* A capacity-1 cache refetches shapes constantly; results must not
     change, and the counters must reflect the thrashing. *)
  let doc =
    Xk_xml.Xml_parser.parse_string_exn
      "<r><a>alpha beta</a><b>beta gamma</b><c>gamma alpha</c></r>"
  in
  let lab = Xk_encoding.Labeling.label doc in
  let idx = Index.build ~cache_capacity:1 lab in
  let ref_idx = Index.build lab in
  for _ = 1 to 3 do
    for id = 0 to Index.term_count idx - 1 do
      let jl = Index.jlist idx id and jr = Index.jlist ref_idx id in
      check Alcotest.int "jlist length stable" (Jlist.length jr) (Jlist.length jl);
      let p = Index.posting idx id and pr = Index.posting ref_idx id in
      check Alcotest.int "posting length stable" (Posting.length pr)
        (Posting.length p)
    done
  done;
  let st = Index.cache_stats idx in
  check Alcotest.bool "evictions happened" true (st.evictions > 0);
  check Alcotest.bool "occupancy bounded" true (st.entries <= st.capacity)

(* Interleaved warm/jlist/posting/score_list calls from several domains
   must never disagree with a cold single-threaded materialization - the
   service-path invariant behind Xk_exec. *)

let jlist_agrees jc jh =
  Jlist.length jc = Jlist.length jh
  && Jlist.max_len jc = Jlist.max_len jh
  &&
  let ok = ref true in
  for r = 0 to Jlist.length jc - 1 do
    if
      Jlist.node jc r <> Jlist.node jh r
      || Jlist.score jc r <> Jlist.score jh r
      || Jlist.seq jc r <> Jlist.seq jh r
    then ok := false
  done;
  !ok

let posting_agrees pc ph =
  Posting.length pc = Posting.length ph
  &&
  let ok = ref true in
  for r = 0 to Posting.length pc - 1 do
    if
      Posting.node pc r <> Posting.node ph r
      || Posting.score pc r <> Posting.score ph r
      || Posting.dewey pc r <> Posting.dewey ph r
    then ok := false
  done;
  !ok

let concurrent_materialization_prop =
  QCheck.Test.make ~count:15
    ~name:"concurrent warm/jlist/posting matches cold materialization"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Xk_datagen.Rng.create seed in
      let doc = Xk_datagen.Random_tree.generate rng in
      let cold = Index.build (Xk_encoding.Labeling.label doc) in
      (* Tiny cache so the domains also race through evictions. *)
      let hot =
        Index.build ~cache_capacity:8 (Xk_encoding.Labeling.label doc)
      in
      let n = Index.term_count hot in
      n = 0
      ||
      begin
        let workers =
          Array.init 3 (fun w ->
              Domain.spawn (fun () ->
                  (* Each domain walks the terms in a different order and
                     mixes the three access paths. *)
                  for round = 0 to 1 do
                    for i = 0 to n - 1 do
                      let id = (i * ((2 * w) + 1) + (round * 7)) mod n in
                      match (id + w + round) mod 4 with
                      | 0 -> ignore (Index.jlist hot id)
                      | 1 -> ignore (Index.posting hot id)
                      | 2 -> ignore (Index.score_list hot id)
                      | _ -> Index.warm hot [ id ]
                    done
                  done))
        in
        Array.iter Domain.join workers;
        let ok = ref true in
        for id = 0 to n - 1 do
          if not (jlist_agrees (Index.jlist cold id) (Index.jlist hot id)) then
            ok := false;
          if not (posting_agrees (Index.posting cold id) (Index.posting hot id))
          then ok := false
        done;
        !ok
      end)

(* Index persistence. *)

let tmpfile name = Filename.concat (Filename.get_temp_dir_name ()) name

let index_io_roundtrip () =
  let corpus = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled 0.05) in
  let label = Xk_encoding.Labeling.label corpus.doc in
  let idx = Index.build label in
  let path = tmpfile "xk_index_io_test.idx" in
  Index_io.save idx path;
  check Alcotest.bool "file written" true (Index_io.file_size path > 0);
  let label2 = Xk_encoding.Labeling.label corpus.doc in
  let idx2 = Index_io.load label2 path in
  check Alcotest.int "term count" (Index.term_count idx) (Index.term_count idx2);
  (* Same dfs and same rows for every term. *)
  for id = 0 to Index.term_count idx - 1 do
    let term = Index.term idx id in
    match Index.term_id idx2 term with
    | None -> Alcotest.failf "term %s lost" term
    | Some id2 ->
        check Alcotest.int ("df " ^ term) (Index.df idx id) (Index.df idx2 id2);
        let n1, t1 = Index.raw_rows idx id and n2, t2 = Index.raw_rows idx2 id2 in
        if n1 <> n2 || t1 <> t2 then Alcotest.failf "rows differ for %s" term
  done;
  (* Query results identical through the reloaded index. *)
  let e1 = Xk_core.Engine.of_index idx and e2 = Xk_core.Engine.of_index idx2 in
  let q = List.nth corpus.correlated_queries 0 in
  Tutil.check_same_hits "reloaded query" (Xk_core.Engine.query e1 q)
    (Xk_core.Engine.query e2 q);
  Sys.remove path

let index_io_rejects_garbage () =
  let path = tmpfile "xk_index_io_garbage.idx" in
  let oc = open_out_bin path in
  output_string oc "NOTANIDX and some more bytes";
  close_out oc;
  let corpus = Xk_datagen.Random_tree.generate (Xk_datagen.Rng.create 3) in
  let label = Xk_encoding.Labeling.label corpus in
  (match Index_io.load label path with
  | exception Index_io.Format_error _ -> ()
  | _ -> Alcotest.fail "garbage accepted");
  Sys.remove path

let index_io_rejects_mismatch () =
  let c1 = Xk_datagen.Random_tree.generate (Xk_datagen.Rng.create 4) in
  let c2 = Xk_datagen.Random_tree.generate (Xk_datagen.Rng.create 5) in
  let l1 = Xk_encoding.Labeling.label c1 and l2 = Xk_encoding.Labeling.label c2 in
  if Xk_encoding.Labeling.node_count l1 <> Xk_encoding.Labeling.node_count l2
  then begin
    let path = tmpfile "xk_index_io_mismatch.idx" in
    Index_io.save (Index.build l1) path;
    (match Index_io.load l2 path with
    | exception Index_io.Format_error _ -> ()
    | _ -> Alcotest.fail "mismatched document accepted");
    Sys.remove path
  end

(* v3 zero-copy generation: layout introspection, full verification, and
   bit-identical parity against both the v2 channel loader and a fresh
   in-memory build. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  b

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let index_io_v3_roundtrip () =
  let corpus = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled 0.05) in
  let label = Xk_encoding.Labeling.label corpus.doc in
  let idx = Index.build label in
  let path = tmpfile "xk_index_io_v3.seg" in
  Index_io.save idx path;
  check Alcotest.(option int) "v3 magic" (Some 3) (Index_io.format_version path);
  (match Index_io.layout path with
  | Error e -> Alcotest.failf "v3 layout unreadable: %s" (Index_io.error_message e)
  | Ok lay ->
      check Alcotest.int "layout node count"
        (Xk_encoding.Labeling.node_count label)
        lay.Index_io.l3_node_count;
      check Alcotest.int "layout term count" (Index.term_count idx)
        lay.Index_io.l3_term_count;
      List.iter
        (fun (what, off) ->
          if off mod Index_io.page_size <> 0 then
            Alcotest.failf "%s region not page-aligned (offset %d)" what off)
        [
          ("terms", lay.Index_io.l3_terms_off);
          ("nodes", lay.Index_io.l3_nodes_off);
          ("tfs", lay.Index_io.l3_tfs_off);
          ("dir", lay.Index_io.l3_dir_off);
        ];
      check Alcotest.int "exact file size" lay.Index_io.l3_file_size
        (Index_io.file_size path));
  (match Index_io.verify path with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "full verify rejected a fresh v3 segment: %s"
        (Index_io.load_error_message e));
  let idx2 = Index_io.load (Xk_encoding.Labeling.label corpus.doc) path in
  check Alcotest.int "term count" (Index.term_count idx) (Index.term_count idx2);
  for id = 0 to Index.term_count idx - 1 do
    let term = Index.term idx id in
    match Index.term_id idx2 term with
    | None -> Alcotest.failf "term %s lost" term
    | Some id2 ->
        check Alcotest.int ("df " ^ term) (Index.df idx id) (Index.df idx2 id2);
        if Index.raw_rows idx id <> Index.raw_rows idx2 id2 then
          Alcotest.failf "rows differ for %s" term;
        (* Bit-identical scores: exact float equality, no tolerance. *)
        if Index.local_scores idx id <> Index.local_scores idx2 id2 then
          Alcotest.failf "local scores differ for %s" term
  done;
  let e1 = Xk_core.Engine.of_index idx and e2 = Xk_core.Engine.of_index idx2 in
  List.iteri
    (fun i q ->
      Tutil.check_same_hits
        (Printf.sprintf "mmap query %d" i)
        (Xk_core.Engine.query e1 q)
        (Xk_core.Engine.query e2 q))
    corpus.correlated_queries;
  Sys.remove path

let index_io_v3_rejects_mangled_header () =
  let doc = Tutil.random_doc 11 in
  let label = Xk_encoding.Labeling.label doc in
  Index.build label |> fun idx ->
  let path = tmpfile "xk_index_io_v3_mangle.seg" in
  Index_io.save idx path;
  let good = read_file path in
  let expect_error what =
    match Index_io.load_result ~retries:1 label path with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" what
    | exception e ->
        Alcotest.failf "%s raised %s instead of a typed error" what
          (Printexc.to_string e)
  in
  (* Header truncated mid-field: typed error, never a panic. *)
  write_file path (String.sub good 0 50);
  expect_error "truncated header";
  (* A flipped byte anywhere in the checksummed header prefix. *)
  List.iter
    (fun pos ->
      let b = Bytes.of_string good in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a));
      write_file path (Bytes.to_string b);
      expect_error (Printf.sprintf "header byte %d flipped" pos))
    [ 8 (* version *); 16 (* node count *); 40 (* terms offset *); 96 (* crc *) ];
  (* Restored bytes load again — the mangles above were the only issue. *)
  write_file path good;
  (match Index_io.load_result label path with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "restored segment rejected: %s"
        (Index_io.load_error_message e));
  Sys.remove path

let v3_parity_prop =
  QCheck.Test.make ~count:15
    ~name:"v3 mmap load is bit-identical to v2 channel load and fresh build"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Xk_datagen.Rng.create seed in
      let doc = Xk_datagen.Random_tree.generate rng in
      let label = Xk_encoding.Labeling.label doc in
      let fresh = Index.build label in
      let p3 = tmpfile (Printf.sprintf "xk_v3_parity_%d.seg" seed) in
      let p2 = tmpfile (Printf.sprintf "xk_v2_parity_%d.seg" seed) in
      Index_io.save fresh p3;
      Index_io.save_v2 fresh p2;
      let ok =
        ref
          (Index_io.format_version p3 = Some 3
          && Index_io.format_version p2 = Some 2)
      in
      (match
         ( Index_io.load_result (Xk_encoding.Labeling.label doc) p3,
           Index_io.load_result (Xk_encoding.Labeling.label doc) p2 )
       with
      | Ok v3, Ok v2 ->
          let n = Index.term_count fresh in
          if Index.term_count v3 <> n || Index.term_count v2 <> n then
            ok := false;
          if !ok then
            for id = 0 to n - 1 do
              let term = Index.term fresh id in
              match (Index.term_id v3 term, Index.term_id v2 term) with
              | Some i3, Some i2 ->
                  if
                    Index.raw_rows v3 i3 <> Index.raw_rows fresh id
                    || Index.raw_rows v2 i2 <> Index.raw_rows fresh id
                  then ok := false;
                  (* Exact float equality: the same (tf, df) integers must
                     feed the same scorer on every path. *)
                  if
                    Index.local_scores v3 i3 <> Index.local_scores fresh id
                    || Index.local_scores v2 i2 <> Index.local_scores fresh id
                  then ok := false
              | _ -> ok := false
            done;
          if !ok then begin
            let ef = Xk_core.Engine.of_index fresh
            and e3 = Xk_core.Engine.of_index v3
            and ev2 = Xk_core.Engine.of_index v2 in
            for _ = 1 to 3 do
              let words = Tutil.random_query rng ~k:2 ~alphabet:6 in
              let hf = Tutil.sort_hits (Xk_core.Engine.query ef words)
              and h3 = Tutil.sort_hits (Xk_core.Engine.query e3 words)
              and h2 = Tutil.sort_hits (Xk_core.Engine.query ev2 words) in
              if h3 <> hf || h2 <> hf then ok := false;
              let tf = Xk_core.Engine.query_topk ef words ~k:3
              and t3 = Xk_core.Engine.query_topk e3 words ~k:3 in
              if t3 <> tf then ok := false
            done
          end
      | _ -> ok := false);
      Sys.remove p3;
      Sys.remove p2;
      !ok)

let suite =
  [
    ( "index",
      [
        tc "column runs" `Quick column_runs;
        tc "column lower_bound" `Quick column_lower_bound;
        tc "index stats" `Quick index_stats;
        tc "attributes indexed on elements" `Quick index_attributes_indexed;
        tc "posting probes" `Quick posting_probes;
        tc "score list groups" `Quick score_list_groups;
        tc "score list ceilings" `Quick score_list_max_damped;
        tc "sparse index probe" `Quick sparse_index_probe;
        tc "jlist encoded size" `Quick jlist_encoded_size;
        tc "index sizes report" `Slow sizes_report;
        QCheck_alcotest.to_alcotest run_contiguity_prop;
      ] );
    ( "index.cache",
      [
        tc "shard cache LRU" `Quick shard_cache_lru;
        tc "shard cache compute failure" `Quick shard_cache_compute_failure;
        tc "eviction keeps results consistent" `Quick cache_eviction_consistency;
        QCheck_alcotest.to_alcotest concurrent_materialization_prop;
      ] );
    ( "index.io",
      [
        tc "save/load roundtrip" `Quick index_io_roundtrip;
        tc "rejects garbage" `Quick index_io_rejects_garbage;
        tc "rejects mismatched document" `Quick index_io_rejects_mismatch;
        tc "v3 layout and roundtrip" `Quick index_io_v3_roundtrip;
        tc "v3 rejects mangled header" `Quick index_io_v3_rejects_mangled_header;
        QCheck_alcotest.to_alcotest v3_parity_prop;
      ] );
  ]
