(* Baseline algorithms (stack-based, index-based, RDIL) validated against
   the definitional oracle on random trees and hand cases. *)

open Xk_core

let check = Alcotest.check
let tc = Alcotest.test_case

let vs_oracle algorithm semantics name =
  QCheck.Test.make ~count:300 ~name
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, k) ->
      let eng = Tutil.random_engine seed in
      let rng = Xk_datagen.Rng.create (seed + 31) in
      let q = Tutil.random_query rng ~k ~alphabet:4 in
      let expected = Engine.query ~semantics ~algorithm:Engine.Oracle eng q in
      let actual = Engine.query ~semantics ~algorithm eng q in
      Tutil.check_same_hits name expected actual;
      true)

let rdil_vs_oracle =
  QCheck.Test.make ~count:300 ~name:"RDIL top-K = oracle top-K (random trees)"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 3))
    (fun (seed, k) ->
      let eng = Tutil.random_engine seed in
      let rng = Xk_datagen.Rng.create (seed + 41) in
      let q = Tutil.random_query rng ~k ~alphabet:4 in
      let want = 1 + Xk_datagen.Rng.int rng 6 in
      let full = Engine.query ~algorithm:Engine.Oracle eng q in
      let actual = Engine.query_topk ~algorithm:Engine.Rdil_baseline eng q ~k:want in
      Tutil.check_topk "rdil" ~k:want full actual;
      true)

let all_complete_algorithms_agree =
  QCheck.Test.make ~count:200
    ~name:"join = stack = indexed = oracle on the same query"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let eng = Tutil.random_engine seed in
      let rng = Xk_datagen.Rng.create (seed + 77) in
      let q = Tutil.random_query rng ~k:3 ~alphabet:4 in
      List.iter
        (fun semantics ->
          let oracle = Engine.query ~semantics ~algorithm:Engine.Oracle eng q in
          List.iter
            (fun (name, algorithm) ->
              Tutil.check_same_hits name oracle
                (Engine.query ~semantics ~algorithm eng q))
            [
              ("join", Engine.Join_based);
              ("stack", Engine.Stack_based);
              ("indexed", Engine.Index_based);
            ])
        [ Engine.Elca; Engine.Slca ];
      true)

let stack_doc_order () =
  (* The stack baseline must produce results in document order before the
     engine re-sorts: check via the raw API. *)
  let doc =
    Xk_xml.Xml_parser.parse_string_exn
      "<r><a>xml data</a><b>xml data</b><c>xml data</c></r>"
  in
  let idx = Xk_index.Index.build (Xk_encoding.Labeling.label doc) in
  let ids = Xk_index.Index.term_ids_exn idx [ "xml"; "data" ] in
  let hits = Xk_baselines.Stack.elca idx ids in
  let nodes = Xk_baselines.Hit.nodes hits in
  check Alcotest.(list int) "document order" (List.sort Int.compare nodes) nodes

let rdil_stats_report () =
  let doc = Tutil.random_doc 2024 in
  let idx = Xk_index.Index.build (Xk_encoding.Labeling.label doc) in
  match Xk_index.Index.term_id idx "kw0", Xk_index.Index.term_id idx "kw1" with
  | Some a, Some b ->
      let stats = { Xk_baselines.Rdil.pulled = 0; verified = 0 } in
      ignore (Xk_baselines.Rdil.topk ~stats idx [ a; b ] ~k:3);
      check Alcotest.bool "pulled counted" true (stats.pulled > 0)
  | _ -> ()

(* Naive LCA semantics: characterization vs brute force, and the
   containment chain ELCA, SLCA subseteq LCA-set. *)
let naive_lca_prop =
  QCheck.Test.make ~count:300 ~name:"naive LCA: lca_set = brute; ELCA/SLCA subsets"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 3))
    (fun (seed, k) ->
      let eng = Tutil.random_engine seed in
      let idx = Engine.index eng in
      let rng = Xk_datagen.Rng.create (seed + 51) in
      let q = Tutil.random_query rng ~k ~alphabet:3 in
      match List.map (Xk_index.Index.term_id idx) q with
      | ids when List.for_all Option.is_some ids ->
          let ids = List.sort_uniq Int.compare (List.map Option.get ids) in
          let fast = List.sort Int.compare (Xk_baselines.Naive_lca.lca_set idx ids) in
          let slow = Xk_baselines.Naive_lca.brute idx ids in
          if fast <> slow then
            QCheck.Test.fail_reportf "lca_set [%s] <> brute [%s]"
              (String.concat ";" (List.map string_of_int fast))
              (String.concat ";" (List.map string_of_int slow));
          let subset hits =
            List.for_all
              (fun (h : Xk_baselines.Hit.t) -> List.mem h.node fast)
              hits
          in
          subset (Engine.query ~algorithm:Engine.Oracle eng q)
          && subset (Engine.query ~semantics:Engine.Slca ~algorithm:Engine.Oracle eng q)
      | _ -> true)

let naive_lca_blowup () =
  (* Two keywords spread over m and n leaves with a common root: m*n
     combinations but the LCA set stays small - the paper's motivating
     observation. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<r>";
  for _ = 1 to 30 do
    Buffer.add_string buf "<a>alpha</a><b>beta</b>"
  done;
  Buffer.add_string buf "</r>";
  let eng = Engine.of_string (Buffer.contents buf) in
  let idx = Engine.index eng in
  let ids = Xk_index.Index.term_ids_exn idx [ "alpha"; "beta" ] in
  check (Alcotest.float 0.5) "combinations" 900.
    (Xk_baselines.Naive_lca.combination_count idx ids);
  check Alcotest.int "distinct LCAs" 1
    (List.length (Xk_baselines.Naive_lca.lca_set idx ids));
  check Alcotest.int "elcas" 1 (List.length (Engine.query eng [ "alpha"; "beta" ]))

let oracle_empty_query () =
  let eng = Tutil.random_engine 5 in
  Alcotest.check_raises "empty query rejected"
    (Invalid_argument "Oracle.run: 1..62 keywords") (fun () ->
      ignore (Xk_baselines.Oracle.elca (Engine.index eng) []))

let suite =
  [
    ( "baselines",
      [
        tc "stack emits in document order" `Quick stack_doc_order;
        tc "rdil stats" `Quick rdil_stats_report;
        tc "naive LCA blowup" `Quick naive_lca_blowup;
        tc "oracle rejects empty query" `Quick oracle_empty_query;
        QCheck_alcotest.to_alcotest naive_lca_prop;
        QCheck_alcotest.to_alcotest
          (vs_oracle Engine.Stack_based Engine.Elca "stack ELCA = oracle");
        QCheck_alcotest.to_alcotest
          (vs_oracle Engine.Stack_based Engine.Slca "stack SLCA = oracle");
        QCheck_alcotest.to_alcotest
          (vs_oracle Engine.Index_based Engine.Elca "indexed ELCA = oracle");
        QCheck_alcotest.to_alcotest
          (vs_oracle Engine.Index_based Engine.Slca "indexed SLCA = oracle");
        QCheck_alcotest.to_alcotest rdil_vs_oracle;
        QCheck_alcotest.to_alcotest all_complete_algorithms_agree;
      ] );
  ]
