(* Generators and workload: determinism, planted frequencies, bucket
   selection. *)

let check = Alcotest.check
let tc = Alcotest.test_case

let rng_deterministic () =
  let a = Xk_datagen.Rng.create 7 and b = Xk_datagen.Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Xk_datagen.Rng.int a 1000)
      (Xk_datagen.Rng.int b 1000)
  done

let rng_bounds () =
  let rng = Xk_datagen.Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Xk_datagen.Rng.int rng 10 in
    check Alcotest.bool "in range" true (v >= 0 && v < 10);
    let f = Xk_datagen.Rng.float rng in
    check Alcotest.bool "float range" true (f >= 0. && f < 1.);
    let r = Xk_datagen.Rng.range rng 5 9 in
    check Alcotest.bool "range incl" true (r >= 5 && r <= 9)
  done

let rng_sample () =
  let rng = Xk_datagen.Rng.create 11 in
  let s = Xk_datagen.Rng.sample rng ~n:50 ~k:20 in
  check Alcotest.int "size" 20 (Array.length s);
  let sorted = Array.copy s in
  Array.sort Int.compare sorted;
  for i = 1 to Array.length sorted - 1 do
    check Alcotest.bool "distinct" true (sorted.(i) <> sorted.(i - 1))
  done

let zipf_shape () =
  let rng = Xk_datagen.Rng.create 23 in
  let z = Xk_datagen.Zipf.make ~n:1000 ~exponent:1.1 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let r = Xk_datagen.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  check Alcotest.bool "rank0 most frequent" true (counts.(0) > counts.(10));
  check Alcotest.bool "heavy head" true (counts.(0) > 50_000 / 25);
  check Alcotest.bool "long tail sampled" true
    (Array.exists (fun c -> c > 0) (Array.sub counts 500 500))

let dblp_deterministic () =
  let c1 = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled 0.05) in
  let c2 = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled 0.05) in
  check Alcotest.bool "same corpus" true (Xk_xml.Xml_tree.equal c1.doc c2.doc)

let small_dblp = lazy (Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled 0.1))

let dblp_structure () =
  let c = Lazy.force small_dblp in
  check Alcotest.string "root" "dblp" c.doc.root.tag;
  check Alcotest.bool "papers counted" true (c.total_papers > 100);
  check Alcotest.bool "reasonable depth" true (Xk_xml.Xml_tree.depth c.doc >= 6)

let dblp_planted_frequencies () =
  let c = Lazy.force small_dblp in
  let idx = Xk_index.Index.build (Xk_encoding.Labeling.label c.doc) in
  List.iter
    (fun q ->
      List.iter
        (fun w ->
          match Xk_index.Index.term_id idx w with
          | Some id ->
              check Alcotest.bool
                (Printf.sprintf "planted term %s present" w)
                true
                (Xk_index.Index.df idx id > 0)
          | None -> Alcotest.failf "planted term %s missing" w)
        q)
    (c.correlated_queries @ c.uncorrelated_queries)

let dblp_correlation_contrast () =
  (* Correlated pairs must co-occur at the paper level (depth >= 4) far
     more than the frequency-matched uncorrelated pairs - whose
     co-occurrences live at the conference/year levels only.  This is the
     context-bound-correlation effect of Section III-C. *)
  let c = Lazy.force small_dblp in
  let eng =
    Xk_core.Engine.of_index
      (Xk_index.Index.build (Xk_encoding.Labeling.label c.doc))
  in
  let lab = Xk_core.Engine.label eng in
  let deep_results q =
    List.length
      (List.filter
         (fun (h : Xk_baselines.Hit.t) -> Xk_encoding.Labeling.depth lab h.node >= 4)
         (Xk_core.Engine.query eng q))
  in
  let corr = deep_results (List.nth c.correlated_queries 2) in
  let uncorr = deep_results (List.nth c.uncorrelated_queries 2) in
  check Alcotest.bool
    (Printf.sprintf "deep correlated (%d) >> deep uncorrelated (%d)" corr uncorr)
    true
    (corr > 4 * max 1 uncorr)

let xmark_basics () =
  let c = Xk_datagen.Xmark_gen.generate (Xk_datagen.Xmark_gen.scaled 0.1) in
  check Alcotest.string "root" "site" c.doc.root.tag;
  check Alcotest.bool "deep" true (Xk_xml.Xml_tree.depth c.doc >= 8);
  let idx = Xk_index.Index.build (Xk_encoding.Labeling.label c.doc) in
  List.iter
    (fun q ->
      List.iter
        (fun w ->
          check Alcotest.bool (w ^ " planted") true
            (Xk_index.Index.term_id idx w <> None))
        q)
    c.correlated_queries

let workload_buckets () =
  let c = Lazy.force small_dblp in
  let idx = Xk_index.Index.build (Xk_encoding.Labeling.label c.doc) in
  let rng = Xk_datagen.Rng.create 31 in
  let high = Xk_workload.Workload.max_df idx in
  check Alcotest.bool "corpus has frequent terms" true (high > 100);
  let qs = Xk_workload.Workload.random_queries rng idx ~k:3 ~high ~low:10 ~n:20 in
  check Alcotest.int "twenty queries" 20 (List.length qs);
  List.iter
    (fun q ->
      check Alcotest.int "three keywords" 3 (List.length q);
      check Alcotest.int "distinct" 3 (List.length (List.sort_uniq compare q));
      (* One keyword near the high frequency, others near low. *)
      let dfs =
        List.map
          (fun w -> Xk_index.Index.df idx (Option.get (Xk_index.Index.term_id idx w)))
          q
      in
      let sorted = List.sort Int.compare dfs in
      check Alcotest.bool "high present" true
        (List.nth sorted 2 >= high / 4);
      check Alcotest.bool "lows low" true (List.hd sorted <= 40))
    qs

let workload_no_control_terms () =
  let c = Lazy.force small_dblp in
  let idx = Xk_index.Index.build (Xk_encoding.Labeling.label c.doc) in
  let rng = Xk_datagen.Rng.create 13 in
  let qs = Xk_workload.Workload.equal_freq_queries rng idx ~k:2 ~freq:50 ~n:30 in
  List.iter
    (fun q ->
      List.iter
        (fun w ->
          check Alcotest.bool (w ^ " is not a control term") false
            (Xk_workload.Workload.has_digit w))
        q)
    qs

let suite =
  [
    ( "datagen",
      [
        tc "rng deterministic" `Quick rng_deterministic;
        tc "rng bounds" `Quick rng_bounds;
        tc "rng sample distinct" `Quick rng_sample;
        tc "zipf shape" `Quick zipf_shape;
        tc "dblp deterministic" `Slow dblp_deterministic;
        tc "dblp structure" `Quick dblp_structure;
        tc "dblp planted terms" `Quick dblp_planted_frequencies;
        tc "dblp correlation contrast" `Quick dblp_correlation_contrast;
        tc "xmark basics" `Quick xmark_basics;
        tc "workload buckets" `Quick workload_buckets;
        tc "workload avoids control terms" `Quick workload_no_control_terms;
      ] );
  ]
