(* Dewey ids, JDewey sequences and the labeler. *)

open Xk_encoding

let check = Alcotest.check
let tc = Alcotest.test_case

let dewey_basics () =
  let d = Dewey.of_string "1.3.2" in
  check Alcotest.string "to_string" "1.3.2" (Dewey.to_string d);
  check Alcotest.int "length" 3 (Dewey.length d);
  check Alcotest.string "child" "1.3.2.5" (Dewey.to_string (Dewey.child d 5));
  (match Dewey.parent d with
  | Some p -> check Alcotest.string "parent" "1.3" (Dewey.to_string p)
  | None -> Alcotest.fail "parent");
  check Alcotest.bool "no parent of root" true (Dewey.parent Dewey.root = None)

let dewey_order () =
  let sorted =
    List.sort Dewey.compare
      (List.map Dewey.of_string [ "1.2"; "1"; "1.10"; "1.2.1"; "1.3" ])
  in
  check
    Alcotest.(list string)
    "document order"
    [ "1"; "1.2"; "1.2.1"; "1.3"; "1.10" ]
    (List.map Dewey.to_string sorted)

let dewey_lca () =
  let a = Dewey.of_string "1.2.3.1" and b = Dewey.of_string "1.2.4" in
  check Alcotest.string "lca" "1.2" (Dewey.to_string (Dewey.lca a b));
  check Alcotest.bool "ancestor" true (Dewey.is_ancestor (Dewey.of_string "1.2") a);
  check Alcotest.bool "not strict" false (Dewey.is_ancestor a a);
  check Alcotest.bool "or self" true (Dewey.is_ancestor_or_self a a)

let dewey_range () =
  let u = Dewey.of_string "1.2" in
  check Alcotest.string "range end" "1.3" (Dewey.to_string (Dewey.range_end u));
  check Alcotest.bool "descendant inside" true
    (Dewey.compare (Dewey.of_string "1.2.9.9") (Dewey.range_end u) < 0);
  check Alcotest.bool "sibling outside" false
    (Dewey.compare (Dewey.of_string "1.3") (Dewey.range_end u) < 0)

let jdewey_order_and_lca () =
  let a = [| 1; 2; 5 |] and b = [| 1; 2; 7 |] and c = [| 1; 3 |] in
  check Alcotest.bool "a < b" true (Jdewey.compare a b < 0);
  check Alcotest.bool "prefix first" true (Jdewey.compare [| 1; 2 |] a < 0);
  check Alcotest.(option (pair int int)) "lca a b" (Some (2, 2)) (Jdewey.lca a b);
  check Alcotest.(option (pair int int)) "lca a c" (Some (1, 1)) (Jdewey.lca a c);
  check Alcotest.bool "ancestor" true (Jdewey.is_ancestor [| 1; 2 |] a)

(* The labeler on a hand-built document. *)
let doc () =
  Xk_xml.Xml_parser.parse_string_exn
    "<r><a><b>t1</b><b>t2</b></a><a><c>t3</c></a></r>"

let labeling_basics () =
  let lab = Labeling.label (doc ()) in
  check Alcotest.int "count" 9 (Labeling.node_count lab);
  check Alcotest.int "height" 4 (Labeling.height lab);
  (* Root. *)
  check Alcotest.int "root depth" 1 (Labeling.depth lab 0);
  check Alcotest.string "root dewey" "1" (Dewey.to_string (Labeling.dewey lab 0));
  (* Second <a> is node index 6 (doc order: r a b t1 b t2 a c t3). *)
  check Alcotest.string "a2 dewey" "1.2" (Dewey.to_string (Labeling.dewey lab 6));
  check Alcotest.string "a2 jdewey" "1.2" (Jdewey.to_string (Labeling.jdewey_seq lab 6));
  (* t3 text node. *)
  check Alcotest.string "t3 dewey" "1.2.1.1" (Dewey.to_string (Labeling.dewey lab 8));
  check Alcotest.string "t3 jdewey" "1.2.3.3" (Jdewey.to_string (Labeling.jdewey_seq lab 8))

let labeling_find () =
  let lab = Labeling.label (doc ()) in
  for i = 0 to Labeling.node_count lab - 1 do
    let depth = Labeling.depth lab i and jnum = Labeling.jnum lab i in
    match Labeling.find lab ~depth ~jnum with
    | Some j -> check Alcotest.int "find roundtrip" i j
    | None -> Alcotest.fail "find failed"
  done;
  check Alcotest.(option int) "missing" None (Labeling.find lab ~depth:2 ~jnum:99);
  check Alcotest.(option int) "bad depth" None (Labeling.find lab ~depth:9 ~jnum:1)

let labeling_gap () =
  let lab = Labeling.label ~gap:8 (doc ()) in
  check Alcotest.int "gap" 8 (Labeling.gap lab);
  check Alcotest.string "jdewey with gap" "8.16.24.24"
    (Jdewey.to_string (Labeling.jdewey_seq lab 8));
  (* find still works with gapped numbers *)
  match Labeling.find lab ~depth:4 ~jnum:24 with
  | Some 8 -> ()
  | _ -> Alcotest.fail "gapped find"

let labeling_ancestor_at () =
  let lab = Labeling.label (doc ()) in
  check Alcotest.(option int) "self" (Some 8) (Labeling.ancestor_at lab 8 ~depth:4);
  check Alcotest.(option int) "parent" (Some 7) (Labeling.ancestor_at lab 8 ~depth:3);
  check Alcotest.(option int) "root" (Some 0) (Labeling.ancestor_at lab 8 ~depth:1);
  check Alcotest.(option int) "too deep" None (Labeling.ancestor_at lab 0 ~depth:3)

(* Properties over random trees. *)
let random_labeling seed =
  let rng = Xk_datagen.Rng.create seed in
  let d = Xk_datagen.Random_tree.generate rng in
  Labeling.label d

let prop_3_1 =
  QCheck.Test.make ~count:200 ~name:"JDewey Property 3.1 on random trees"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let lab = random_labeling seed in
      let n = Labeling.node_count lab in
      let rng = Xk_datagen.Rng.create (seed + 1) in
      let ok = ref true in
      for _ = 1 to 100 do
        let i = Xk_datagen.Rng.int rng n and j = Xk_datagen.Rng.int rng n in
        let a = Labeling.jdewey_seq lab i and b = Labeling.jdewey_seq lab j in
        let a, b = if Jdewey.compare a b <= 0 then (a, b) else (b, a) in
        if not (Jdewey.property_3_1 a b) then ok := false
      done;
      !ok)

let prop_lca_agree =
  QCheck.Test.make ~count:200
    ~name:"Dewey LCA depth = JDewey LCA level on random trees"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let lab = random_labeling seed in
      let n = Labeling.node_count lab in
      let rng = Xk_datagen.Rng.create (seed + 7) in
      let ok = ref true in
      for _ = 1 to 100 do
        let i = Xk_datagen.Rng.int rng n and j = Xk_datagen.Rng.int rng n in
        let dl =
          Dewey.common_prefix_len (Labeling.dewey lab i) (Labeling.dewey lab j)
        in
        let jl = Jdewey.lca_level (Labeling.jdewey_seq lab i) (Labeling.jdewey_seq lab j) in
        if dl <> jl then ok := false;
        (* And the identified node is a common ancestor of both. *)
        (match Jdewey.lca (Labeling.jdewey_seq lab i) (Labeling.jdewey_seq lab j) with
        | Some (depth, jnum) -> (
            match Labeling.find lab ~depth ~jnum with
            | Some u ->
                let du = Labeling.dewey lab u in
                if
                  not
                    (Dewey.is_ancestor_or_self du (Labeling.dewey lab i)
                    && Dewey.is_ancestor_or_self du (Labeling.dewey lab j))
                then ok := false
            | None -> ok := false)
        | None -> ok := false)
      done;
      !ok)

let prop_doc_order_is_jdewey_order =
  QCheck.Test.make ~count:200 ~name:"node index order = JDewey order"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let lab = random_labeling seed in
      let n = Labeling.node_count lab in
      let ok = ref true in
      for i = 0 to n - 2 do
        if Jdewey.compare (Labeling.jdewey_seq lab i) (Labeling.jdewey_seq lab (i + 1)) >= 0
        then ok := false;
        if Dewey.compare (Labeling.dewey lab i) (Labeling.dewey lab (i + 1)) >= 0
        then ok := false
      done;
      !ok)

(* Jspace: gapped insertion and renumbering. *)

let jspace_of ?gap s =
  Jspace.of_labeling (Labeling.label ?gap (Xk_xml.Xml_parser.parse_string_exn s))

let jspace_snapshot () =
  let sp = jspace_of ~gap:4 "<r><a><b/></a><a/></r>" in
  check Alcotest.int "height" 3 (Jspace.height sp);
  check Alcotest.(array int) "level2 jnums" [| 4; 8 |] (Jspace.jnums_at sp ~depth:2);
  check Alcotest.(array int) "level2 parents" [| 4; 4 |] (Jspace.parents_at sp ~depth:2);
  check Alcotest.bool "invariants" true (Jspace.check_invariants sp)

let jspace_insert_with_gap () =
  let sp = jspace_of ~gap:4 "<r><a/><a/></r>" in
  (* New child of the first <a> (depth 2, jnum 4): the window between the
     existing depth-3 numbers is empty of nodes, so allocation succeeds. *)
  (match Jspace.insert_child sp ~parent_depth:2 ~parent_jnum:4 with
  | Jspace.Inserted j -> check Alcotest.bool "fresh number" true (j >= 1)
  | Jspace.Gap_exhausted -> Alcotest.fail "expected headroom");
  check Alcotest.bool "invariants" true (Jspace.check_invariants sp)

let jspace_gap_exhaustion () =
  let sp = jspace_of ~gap:4 "<r><a/><a><b/></a></r>" in
  (* Keep appending children to the FIRST <a>: the second <a>'s child pins
     the window on the right, so a gap of 4 cannot take unbounded
     inserts. *)
  let inserted = ref 0 in
  (try
     for _ = 1 to 100 do
       match Jspace.insert_child sp ~parent_depth:2 ~parent_jnum:4 with
       | Jspace.Inserted _ -> incr inserted
       | Jspace.Gap_exhausted -> raise Exit
     done;
     Alcotest.fail "gap never exhausted"
   with Exit -> ());
  check Alcotest.bool "some inserts before exhaustion" true (!inserted >= 1);
  check Alcotest.bool "invariants kept" true (Jspace.check_invariants sp);
  (* Renumber the saturated level and retry. *)
  Jspace.renumber_level sp ~depth:3;
  check Alcotest.bool "invariants after renumber" true (Jspace.check_invariants sp);
  (match Jspace.insert_child sp ~parent_depth:2 ~parent_jnum:4 with
  | Jspace.Inserted _ -> ()
  | Jspace.Gap_exhausted -> Alcotest.fail "renumbering must restore headroom")

let jspace_random_prop =
  QCheck.Test.make ~count:150 ~name:"jspace invariants under random inserts"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Xk_datagen.Rng.create seed in
      let doc = Xk_datagen.Random_tree.generate rng in
      let lab = Labeling.label ~gap:8 doc in
      let sp = Jspace.of_labeling lab in
      let ok = ref true in
      for _ = 1 to 60 do
        (* Pick a random live parent. *)
        let depth = 1 + Xk_datagen.Rng.int rng (Jspace.height sp) in
        let jn = Jspace.jnums_at sp ~depth in
        if Array.length jn > 0 then begin
          let parent_jnum = jn.(Xk_datagen.Rng.int rng (Array.length jn)) in
          match Jspace.insert_child sp ~parent_depth:depth ~parent_jnum with
          | Jspace.Inserted _ -> ()
          | Jspace.Gap_exhausted ->
              if depth + 1 <= Jspace.height sp then
                Jspace.renumber_level sp ~depth:(depth + 1)
        end;
        if not (Jspace.check_invariants sp) then ok := false
      done;
      !ok)

let suite =
  [
    ( "encoding",
      [
        tc "dewey basics" `Quick dewey_basics;
        tc "dewey order" `Quick dewey_order;
        tc "dewey lca/ancestor" `Quick dewey_lca;
        tc "dewey subtree range" `Quick dewey_range;
        tc "jdewey order and lca" `Quick jdewey_order_and_lca;
        tc "labeling basics" `Quick labeling_basics;
        tc "labeling find" `Quick labeling_find;
        tc "labeling with gap" `Quick labeling_gap;
        tc "ancestor_at" `Quick labeling_ancestor_at;
        QCheck_alcotest.to_alcotest prop_3_1;
        QCheck_alcotest.to_alcotest prop_lca_agree;
        QCheck_alcotest.to_alcotest prop_doc_order_is_jdewey_order;
      ] );
    ( "encoding.jspace",
      [
        tc "snapshot" `Quick jspace_snapshot;
        tc "insert with gap" `Quick jspace_insert_with_gap;
        tc "gap exhaustion and renumbering" `Quick jspace_gap_exhaustion;
        QCheck_alcotest.to_alcotest jspace_random_prop;
      ] );
  ]
