(* XML parser and printer tests. *)

open Xk_xml

let check = Alcotest.check
let tc = Alcotest.test_case

let parse s = Xml_parser.parse_string_exn s

let root_tag () =
  let d = parse "<a/>" in
  check Alcotest.string "tag" "a" d.root.tag

let nested () =
  let d = parse "<a><b><c>hello</c></b><b/></a>" in
  check Alcotest.int "children" 2 (List.length d.root.children);
  check Alcotest.int "node count" 5 (Xml_tree.node_count d);
  check Alcotest.int "depth" 4 (Xml_tree.depth d)

let attributes () =
  let d = parse {|<a x="1" y='two &amp; three'/>|} in
  match d.root.attrs with
  | [ x; y ] ->
      check Alcotest.string "x" "1" x.attr_value;
      check Alcotest.string "y" "two & three" y.attr_value
  | _ -> Alcotest.fail "expected two attributes"

let entities () =
  let d = parse "<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</a>" in
  check Alcotest.string "text" "<tag> & \"q\" 'a' AB"
    (Xml_tree.text_content d.root)

let cdata () =
  let d = parse "<a><![CDATA[<not> & parsed]]></a>" in
  check Alcotest.string "cdata" "<not> & parsed" (Xml_tree.text_content d.root)

let comments_pis_doctype () =
  let d =
    parse
      {|<?xml version="1.0"?>
<!DOCTYPE root [ <!ELEMENT a ANY> ]>
<!-- top comment -->
<a><!-- inner --><?pi data?>text</a>
<!-- trailing -->|}
  in
  check Alcotest.string "text" "text" (Xml_tree.text_content d.root)

let whitespace_dropped () =
  let d = parse "<a>\n  <b>x</b>\n</a>" in
  check Alcotest.int "children" 1 (List.length d.root.children)

let whitespace_kept () =
  let d = Xml_parser.parse_string_exn ~keep_ws:true "<a>\n  <b>x</b>\n</a>" in
  check Alcotest.int "children" 3 (List.length d.root.children)

let mixed_content () =
  let d = parse "<p>one <b>two</b> three</p>" in
  check Alcotest.int "children" 3 (List.length d.root.children);
  check Alcotest.string "text" "one  two  three" (Xml_tree.text_content d.root)

let self_closing () =
  let d = parse "<a><b/><c x=\"1\"/></a>" in
  check Alcotest.int "children" 2 (List.length d.root.children)

let utf8_passthrough () =
  let d = parse "<a>caf\xc3\xa9 \xe6\x97\xa5\xe6\x9c\xac</a>" in
  check Alcotest.string "text" "caf\xc3\xa9 \xe6\x97\xa5\xe6\x9c\xac"
    (Xml_tree.text_content d.root)

let fails s () =
  match Xml_parser.parse_string s with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" s
  | Error _ -> ()

let error_positions () =
  match Xml_parser.parse_string "<a>\n<b></c></a>" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
      check Alcotest.int "line" 2 e.line;
      check Alcotest.bool "message mentions tags" true
        (String.length e.message > 0)

let roundtrip () =
  let src =
    {|<dblp><conf name="icde"><paper><title>top-k &amp; xml</title><authors><author>chen</author></authors></paper></conf></dblp>|}
  in
  let d = parse src in
  let printed = Xml_print.to_string d in
  let d2 = parse printed in
  check Alcotest.bool "roundtrip equal" true (Xml_tree.equal d d2)

(* Property: any generated random document survives print -> parse. *)
let roundtrip_prop =
  let gen_doc seed =
    let rng = Xk_datagen.Rng.create seed in
    Xk_datagen.Random_tree.generate rng
  in
  QCheck.Test.make ~count:200 ~name:"print/parse roundtrip"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let d = gen_doc seed in
      let d2 = Xml_parser.parse_string_exn ~keep_ws:true (Xml_print.to_string d) in
      Xml_tree.equal d d2)

let fold_order () =
  let d = parse "<a><b>x</b><c><d/></c></a>" in
  let tags = ref [] in
  Xml_tree.iter_nodes
    (fun depth n ->
      match n with
      | Xml_tree.Element e -> tags := (e.tag, depth) :: !tags
      | Xml_tree.Text s -> tags := (s, depth) :: !tags)
    d;
  check
    Alcotest.(list (pair string int))
    "document order"
    [ ("a", 1); ("b", 2); ("x", 3); ("c", 2); ("d", 3) ]
    (List.rev !tags)

let suite =
  [
    ( "xml",
      [
        tc "root tag" `Quick root_tag;
        tc "nested structure" `Quick nested;
        tc "attributes with entities" `Quick attributes;
        tc "entities" `Quick entities;
        tc "cdata" `Quick cdata;
        tc "comments, PIs, doctype" `Quick comments_pis_doctype;
        tc "whitespace dropped by default" `Quick whitespace_dropped;
        tc "whitespace kept on demand" `Quick whitespace_kept;
        tc "mixed content" `Quick mixed_content;
        tc "self-closing" `Quick self_closing;
        tc "utf8 passthrough" `Quick utf8_passthrough;
        tc "error: mismatched tags" `Quick (fails "<a><b></a></b>");
        tc "error: unterminated" `Quick (fails "<a><b>");
        tc "error: garbage after root" `Quick (fails "<a/>junk");
        tc "error: bad entity" `Quick (fails "<a>&unknown;</a>");
        tc "error: empty input" `Quick (fails "");
        tc "error positions" `Quick error_positions;
        tc "roundtrip" `Quick roundtrip;
        tc "fold order" `Quick fold_order;
        QCheck_alcotest.to_alcotest roundtrip_prop;
      ] );
  ]
