(* Crash-safe live mutation.

   The load-bearing property: crash the process at ANY durability step
   of a mutation or compaction, reopen the directory, and the recovered
   store is some per-operation prefix of the batch — never a torn state
   — with top-K answers bit-identical to a from-scratch engine over the
   surviving documents.  Around it: WAL framing and torn-tail healing,
   delta semantics, snapshot isolation under concurrent mutation, and
   compaction durability. *)

open Xk_index
module Chaos = Xk_resilience.Chaos
module Engine = Xk_core.Engine
module Shard_exec = Xk_exec.Shard_exec
module Query_service = Xk_exec.Query_service

let check = Alcotest.check
let tc = Alcotest.test_case

let with_tmpdir f =
  let dir = Filename.temp_file "xk_live" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Live.error_message e)

let wal_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Wal.error_message e)

(* Subtrees that exercise both node kinds, drawn from the random-tree
   generator's documents. *)
let subtree_pool seed =
  let doc = Tutil.random_doc seed in
  match doc.root.children with
  | [] -> [ Xk_xml.Xml_tree.elem "item" [ Xk_xml.Xml_tree.text "kw0 kw1" ] ]
  | cs -> cs

let nth_subtree pool i = List.nth pool (i mod List.length pool)

(* Round-trip a subtree through the WAL codec: what the store itself
   holds after a mutation, hence what recovery reconstructs. *)
let canon node =
  let buf = Buffer.create 256 in
  Wal.encode_subtree buf node;
  match Wal.decode_subtree (Xk_storage.Varint.cursor (Buffer.contents buf)) with
  | Ok n -> n
  | Error m -> Alcotest.failf "subtree does not round-trip: %s" m

(* --- WAL framing ------------------------------------------------------ *)

let wal_ops =
  [
    Wal.Insert
      {
        doc_id = 0;
        subtree = Xk_xml.Xml_tree.elem "a" [ Xk_xml.Xml_tree.text "kw0" ];
      };
    Wal.Insert { doc_id = 1; subtree = Xk_xml.Xml_tree.Text "kw1 kw2" };
    Wal.Delete { doc_id = 0 };
    Wal.Insert
      {
        doc_id = 2;
        subtree =
          Xk_xml.Xml_tree.elem "b"
            ~attrs:[ Xk_xml.Xml_tree.attr "x" "kw3" ]
            [ Xk_xml.Xml_tree.elem "c" []; Xk_xml.Xml_tree.text "kw0" ];
      };
  ]

let op_equal a b =
  match (a, b) with
  | Wal.Delete { doc_id = x }, Wal.Delete { doc_id = y } -> x = y
  | Wal.Insert { doc_id = x; subtree = sx }, Wal.Insert { doc_id = y; subtree = sy }
    ->
      x = y
      && Xk_xml.Xml_tree.equal
           { root = Xk_xml.Xml_tree.element "r" [ sx ] }
           { root = Xk_xml.Xml_tree.element "r" [ sy ] }
  | _ -> false

let wal_roundtrip () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = wal_ok "create" (Wal.create ~fsync:false ~base_lsn:7 path) in
      List.iter
        (fun op -> ignore (wal_ok "append" (Wal.append w op)))
        wal_ops;
      check Alcotest.int "lsn after appends" 11 (Wal.lsn w);
      Wal.close w;
      let w, records = wal_ok "reopen" (Wal.open_existing ~fsync:false path) in
      check Alcotest.int "base lsn" 7 (Wal.base_lsn w);
      check Alcotest.int "records" (List.length wal_ops) (List.length records);
      List.iteri
        (fun i (r : Wal.record) ->
          check Alcotest.int "lsn sequence" (8 + i) r.lsn;
          if not (op_equal (List.nth wal_ops i) r.op) then
            Alcotest.failf "record %d does not round-trip" i)
        records;
      Wal.close w)

let file_size path = (Unix.stat path).Unix.st_size

let wal_torn_tail () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = wal_ok "create" (Wal.create ~fsync:false ~base_lsn:0 path) in
      List.iter (fun op -> ignore (wal_ok "append" (Wal.append w op))) wal_ops;
      Wal.close w;
      let intact = file_size path in
      (* Simulate a crash mid-append: a dangling half record. *)
      let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
      output_string oc "\xf3\x01\x9a";
      close_out oc;
      let w, records = wal_ok "heal" (Wal.open_existing ~fsync:false path) in
      check Alcotest.int "all intact records survive" (List.length wal_ops)
        (List.length records);
      check Alcotest.int "torn tail truncated away" intact (file_size path);
      (* The healed log accepts appends again. *)
      ignore (wal_ok "append after heal" (Wal.append w (Wal.Delete { doc_id = 9 })));
      Wal.close w;
      let _, records = wal_ok "reopen" (Wal.open_existing ~fsync:false path) in
      check Alcotest.int "post-heal append recovered" (List.length wal_ops + 1)
        (List.length records))

let wal_truncated_payload () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = wal_ok "create" (Wal.create ~fsync:false ~base_lsn:0 path) in
      List.iter (fun op -> ignore (wal_ok "append" (Wal.append w op))) wal_ops;
      Wal.close w;
      (* Chop the final record mid-payload. *)
      Unix.truncate path (file_size path - 2);
      let _, records = wal_ok "heal" (Wal.open_existing ~fsync:false path) in
      check Alcotest.int "final record dropped" (List.length wal_ops - 1)
        (List.length records))

let wal_midfile_corruption () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = wal_ok "create" (Wal.create ~fsync:false ~base_lsn:0 path) in
      List.iter (fun op -> ignore (wal_ok "append" (Wal.append w op))) wal_ops;
      Wal.close w;
      (* Flip a byte in the middle of the file: an EARLY record's payload.
         That is bit rot, not a torn write - it must NOT be healed. *)
      let data = In_channel.with_open_bin path In_channel.input_all in
      let pos = 14 in
      let b = Bytes.of_string data in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc b);
      match Wal.open_existing ~fsync:false path with
      | Error (Wal.Corrupted _) -> ()
      | Error (Wal.Io m) -> Alcotest.failf "expected Corrupted, got Io %s" m
      | Ok _ -> Alcotest.fail "mid-file corruption slipped through recovery")

let wal_bad_magic () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "NOTAWAL0\x01\x00");
      match Wal.open_existing ~fsync:false path with
      | Error (Wal.Corrupted _) -> ()
      | _ -> Alcotest.fail "bad magic accepted")

(* --- Delta semantics -------------------------------------------------- *)

let sub = Xk_xml.Xml_tree.elem "d" [ Xk_xml.Xml_tree.text "kw0" ]

let delta_semantics () =
  let d = Delta.empty in
  check Alcotest.bool "empty" true (Delta.is_empty d);
  let d = Delta.apply d (Wal.Insert { doc_id = 3; subtree = sub }) in
  let d = Delta.apply d (Wal.Insert { doc_id = 1; subtree = sub }) in
  check (Alcotest.list Alcotest.int) "upserts ascending" [ 1; 3 ]
    (List.map fst (Delta.upserts d));
  check Alcotest.int "ops" 2 (Delta.ops d);
  (* delete cancels the pending upsert *)
  let d = Delta.apply d (Wal.Delete { doc_id = 3 }) in
  check (Alcotest.list Alcotest.int) "upsert dropped" [ 1 ]
    (List.map fst (Delta.upserts d));
  check (Alcotest.list Alcotest.int) "delete recorded" [ 3 ] (Delta.deletes d);
  check Alcotest.bool "is_deleted" true (Delta.is_deleted d 3);
  check Alcotest.bool "touches delete" true (Delta.touches d 3);
  check Alcotest.bool "touches upsert" true (Delta.touches d 1);
  check Alcotest.bool "touches other" false (Delta.touches d 2);
  (* re-insert cancels the pending delete *)
  let d = Delta.apply d (Wal.Insert { doc_id = 3; subtree = sub }) in
  check (Alcotest.list Alcotest.int) "undeleted" [] (Delta.deletes d);
  check (Alcotest.list Alcotest.int) "re-upserted" [ 1; 3 ]
    (List.map fst (Delta.upserts d))

(* --- Query helpers ---------------------------------------------------- *)

let queries = [ [ "kw0"; "kw1" ]; [ "kw2" ]; [ "kw0"; "kw2"; "kw3" ] ]

let exec_topk sx words ~k =
  match Shard_exec.exec sx (Engine.topk_request ~k words) with
  | Query_service.Ok hits -> hits
  | o ->
      Alcotest.failf "query [%s] did not complete: %s"
        (String.concat " " words)
        (match o with
        | Query_service.Partial _ -> "Partial"
        | Degraded _ -> "Degraded"
        | Failed { message; _ } -> "Failed: " ^ message
        | Timeout -> "Timeout"
        | Rejected -> "Rejected"
        | Ok _ -> "Ok")

(* Exact equality: the snapshot's sharded answers must be bit-identical
   to the from-scratch engine, ties aside. *)
let same_topk ~(full : Xk_baselines.Hit.t list) (a : Xk_baselines.Hit.t list)
    (b : Xk_baselines.Hit.t list) =
  let scores hs = List.map (fun (h : Xk_baselines.Hit.t) -> h.score) hs in
  scores a = scores b
  && List.for_all
       (fun (h : Xk_baselines.Hit.t) ->
         List.exists
           (fun (f : Xk_baselines.Hit.t) -> f.node = h.node && f.score = h.score)
           full)
       (a @ b)

(* Every query answered through the snapshot's shards must match a
   from-scratch engine built over the snapshot's own document. *)
let check_parity msg snap =
  let engine = Engine.create (Snapshot.document snap) in
  let sx = Shard_exec.create ~domains:2 (Snapshot.sharding snap) in
  Fun.protect
    ~finally:(fun () -> Shard_exec.shutdown sx)
    (fun () ->
      List.iter
        (fun words ->
          let full = Engine.query engine words in
          let expected = Engine.query_topk engine words ~k:4 in
          let actual = exec_topk sx words ~k:4 in
          if not (same_topk ~full expected actual) then
            Alcotest.failf "%s: [%s] expected [%s], got [%s]" msg
              (String.concat " " words)
              (Tutil.pp_hits expected) (Tutil.pp_hits actual))
        queries)

(* --- Live store basics ------------------------------------------------ *)

let live_insert_query () =
  with_tmpdir (fun dir ->
      let t =
        ok_exn "create" (Live.create ~fsync:false ~root_tag:"lib" dir)
      in
      let pool = subtree_pool 42 in
      let ids =
        ok_exn "mutate"
          (Live.mutate t [ Live.Add (nth_subtree pool 0); Add (nth_subtree pool 1); Add (nth_subtree pool 2) ])
      in
      check (Alcotest.list Alcotest.int) "assigned ids" [ 0; 1; 2 ] ids;
      check Alcotest.int "doc count" 3 (Live.doc_count t);
      check Alcotest.int "lsn" 3 (Live.lsn t);
      check_parity "after insert" (Live.snapshot t);
      Live.close t)

let live_replace_remove () =
  with_tmpdir (fun dir ->
      let t =
        ok_exn "create" (Live.create ~fsync:false ~root_tag:"lib" dir)
      in
      let pool = subtree_pool 43 in
      let _ =
        ok_exn "seed"
          (Live.mutate t
             [ Live.Add (nth_subtree pool 0); Add (nth_subtree pool 1); Add (nth_subtree pool 2) ])
      in
      let ids =
        ok_exn "edit"
          (Live.mutate t [ Live.Replace (1, nth_subtree pool 3); Remove 0 ])
      in
      check (Alcotest.list Alcotest.int) "touched ids" [ 1; 0 ] ids;
      check Alcotest.int "doc count after remove" 2 (Live.doc_count t);
      let snap = Live.snapshot t in
      check
        (Alcotest.list Alcotest.int)
        "surviving ids" [ 1; 2 ]
        (Array.to_list (Snapshot.doc_ids snap));
      check_parity "after edit" snap;
      (* Unknown ids are typed errors, rejected before any WAL write. *)
      let lsn = Live.lsn t in
      (match Live.mutate t [ Live.Replace (0, nth_subtree pool 0) ] with
      | Error (Live.Unknown_doc 0) -> ()
      | _ -> Alcotest.fail "replace of removed doc accepted");
      (match Live.mutate t [ Live.Remove 77 ] with
      | Error (Live.Unknown_doc 77) -> ()
      | _ -> Alcotest.fail "remove of unknown doc accepted");
      check Alcotest.int "failed batches leave no WAL records" lsn (Live.lsn t);
      Live.close t)

let live_reopen () =
  with_tmpdir (fun dir ->
      let pool = subtree_pool 44 in
      let t =
        ok_exn "create" (Live.create ~fsync:false ~root_tag:"lib" dir)
      in
      let _ =
        ok_exn "seed"
          (Live.mutate t
             [ Live.Add (nth_subtree pool 0); Add (nth_subtree pool 1); Add (nth_subtree pool 2); Add (nth_subtree pool 3) ])
      in
      let _ = ok_exn "edit" (Live.mutate t [ Live.Remove 2 ]) in
      let before = Snapshot.document (Live.snapshot t) in
      Live.close t;
      let t = ok_exn "reopen" (Live.open_ ~fsync:false dir) in
      check Alcotest.bool "content survives reopen" true
        (Xk_xml.Xml_tree.equal before (Snapshot.document (Live.snapshot t)));
      check Alcotest.int "lsn survives" 5 (Live.lsn t);
      (* New inserts never reuse ids: next_doc recovered from the WAL. *)
      let ids = ok_exn "insert" (Live.mutate t [ Live.Add (nth_subtree pool 4) ]) in
      check (Alcotest.list Alcotest.int) "fresh id" [ 4 ] ids;
      check_parity "after reopen" (Live.snapshot t);
      Live.close t)

let live_create_refuses_existing () =
  with_tmpdir (fun dir ->
      let t =
        ok_exn "create" (Live.create ~fsync:false ~root_tag:"lib" dir)
      in
      Live.close t;
      match Live.create ~fsync:false ~root_tag:"lib" dir with
      | Error (Live.Io _) -> ()
      | _ -> Alcotest.fail "second create clobbered a live store")

(* --- Compaction ------------------------------------------------------- *)

let live_compact () =
  with_tmpdir (fun dir ->
      let pool = subtree_pool 45 in
      let t =
        ok_exn "create" (Live.create ~fsync:false ~root_tag:"lib" dir)
      in
      let _ =
        ok_exn "seed"
          (Live.mutate t
             [ Live.Add (nth_subtree pool 0); Add (nth_subtree pool 1); Add (nth_subtree pool 2) ])
      in
      let before = Snapshot.document (Live.snapshot t) in
      ok_exn "compact" (Live.compact t);
      check Alcotest.int "delta drained" 0 (Live.pending_ops t);
      check (Alcotest.list Alcotest.int) "one sealed gen" [ 1 ] (Live.sealed_gens t);
      (* Sealed generations are written in the zero-copy v3 format, so a
         reopen goes through the mmap path. *)
      check
        Alcotest.(option int)
        "sealed segment is v3" (Some 3)
        (Index_io.format_version (Filename.concat dir "seg-0001.idx"));
      check Alcotest.bool "content unchanged" true
        (Xk_xml.Xml_tree.equal before (Snapshot.document (Live.snapshot t)));
      (* Compacting a quiescent store is a no-op. *)
      ok_exn "idempotent" (Live.compact t);
      check (Alcotest.list Alcotest.int) "still one gen" [ 1 ] (Live.sealed_gens t);
      (* Dirty the sealed generation, compact again: the old generation's
         files are rewritten and unlinked. *)
      let _ =
        ok_exn "edit" (Live.mutate t [ Live.Remove 1; Add (nth_subtree pool 3) ])
      in
      ok_exn "recompact" (Live.compact t);
      check (Alcotest.list Alcotest.int) "rewritten gen" [ 2 ] (Live.sealed_gens t);
      check Alcotest.bool "old segment unlinked" false
        (Sys.file_exists (Filename.concat dir "seg-0001.docs"));
      check_parity "after recompact" (Live.snapshot t);
      Live.close t;
      (* The compacted store reopens with an empty WAL and full content. *)
      let t = ok_exn "reopen" (Live.open_ ~fsync:false dir) in
      check Alcotest.int "no replay needed" 0 (Live.pending_ops t);
      check
        (Alcotest.list Alcotest.int)
        "ids preserved" [ 0; 2; 3 ]
        (Array.to_list (Snapshot.doc_ids (Live.snapshot t)));
      check_parity "after reopen of compacted" (Live.snapshot t);
      Live.close t)

let live_auto_compact () =
  with_tmpdir (fun dir ->
      let pool = subtree_pool 46 in
      let t =
        ok_exn "create"
          (Live.create ~fsync:false ~auto_compact:2 ~root_tag:"lib" dir)
      in
      let _ = ok_exn "one" (Live.mutate t [ Live.Add (nth_subtree pool 0) ]) in
      check Alcotest.int "below threshold" 1 (Live.pending_ops t);
      let _ = ok_exn "two" (Live.mutate t [ Live.Add (nth_subtree pool 1) ]) in
      check Alcotest.int "auto-compacted" 0 (Live.pending_ops t);
      check Alcotest.bool "sealed" true (Live.sealed_gens t <> []);
      Live.close t)

(* --- Snapshot isolation ----------------------------------------------- *)

let snapshot_isolation () =
  with_tmpdir (fun dir ->
      let pool = subtree_pool 47 in
      let t =
        ok_exn "create" (Live.create ~fsync:false ~root_tag:"lib" dir)
      in
      let _ =
        ok_exn "seed"
          (Live.mutate t
             [ Live.Add (nth_subtree pool 0); Add (nth_subtree pool 1); Add (nth_subtree pool 2) ])
      in
      let pinned = Live.snapshot t in
      let engine = Engine.create (Snapshot.document pinned) in
      let sx = Shard_exec.create ~domains:2 (Snapshot.sharding pinned) in
      Fun.protect
        ~finally:(fun () -> Shard_exec.shutdown sx)
        (fun () ->
          let baseline =
            List.map (fun words -> exec_topk sx words ~k:4) queries
          in
          (* Mutate and compact underneath the pinned snapshot. *)
          let _ =
            ok_exn "mutate under reader"
              (Live.mutate t [ Live.Remove 0; Add (nth_subtree pool 3) ])
          in
          ok_exn "compact under reader" (Live.compact t);
          let _ =
            ok_exn "mutate again" (Live.mutate t [ Live.Remove 1 ])
          in
          (* The pinned snapshot still answers exactly as before. *)
          List.iter2
            (fun words before ->
              let after = exec_topk sx words ~k:4 in
              let full = Engine.query engine words in
              if not (same_topk ~full before after) then
                Alcotest.failf "pinned snapshot moved under reader: [%s]"
                  (String.concat " " words))
            queries baseline;
          (* While the current snapshot reflects the edits. *)
          check
            (Alcotest.list Alcotest.int)
            "current snapshot moved on" [ 2; 3 ]
            (Array.to_list (Snapshot.doc_ids (Live.snapshot t))));
      check_parity "current snapshot" (Live.snapshot t);
      Live.close t)

let concurrent_reads_during_mutation () =
  with_tmpdir (fun dir ->
      let pool = subtree_pool 48 in
      let t =
        ok_exn "create" (Live.create ~fsync:false ~root_tag:"lib" dir)
      in
      let _ =
        ok_exn "seed"
          (Live.mutate t
             [ Live.Add (nth_subtree pool 0); Add (nth_subtree pool 1); Add (nth_subtree pool 2); Add (nth_subtree pool 3) ])
      in
      let stop = Atomic.make false in
      let failures = Atomic.make 0 in
      let reader =
        Domain.spawn (fun () ->
            (* Pin one snapshot per iteration; its answers must be
               internally consistent no matter what the writer does. *)
            while not (Atomic.get stop) do
              let snap = Live.snapshot t in
              let engine = Engine.create (Snapshot.document snap) in
              let sx = Shard_exec.create ~domains:1 (Snapshot.sharding snap) in
              Fun.protect
                ~finally:(fun () -> Shard_exec.shutdown sx)
                (fun () ->
                  let words = List.hd queries in
                  let full = Engine.query engine words in
                  let expected = Engine.query_topk engine words ~k:3 in
                  let actual = exec_topk sx words ~k:3 in
                  if not (same_topk ~full expected actual) then
                    Atomic.incr failures)
            done)
      in
      let finish () =
        Atomic.set stop true;
        Domain.join reader
      in
      Fun.protect ~finally:finish (fun () ->
          let live = ref [ 0; 1; 2; 3 ] in
          for i = 4 to 18 do
            if i mod 3 = 0 then begin
              match !live with
              | id :: rest ->
                  live := rest;
                  ignore (ok_exn "writer remove" (Live.mutate t [ Live.Remove id ]))
              | [] -> ()
            end
            else begin
              let ids =
                ok_exn "writer add" (Live.mutate t [ Live.Add (nth_subtree pool i) ])
              in
              live := !live @ ids
            end;
            if i mod 5 = 0 then ok_exn "writer compact" (Live.compact t)
          done);
      check Alcotest.int "no inconsistent read" 0 (Atomic.get failures);
      check_parity "final state" (Live.snapshot t);
      Live.close t)

(* --- Crash-point recovery drills -------------------------------------- *)

(* The model: the store's logical content as a sorted (id, subtree)
   assoc, advanced one operation at a time.  Because every operation is
   individually WAL-framed and fsynced, a crash anywhere in a batch must
   recover to the content after some per-operation PREFIX of it. *)
let model_apply (docs, next) mut =
  match mut with
  | Live.Add subtree ->
      ( List.sort (fun (a, _) (b, _) -> Int.compare a b)
          ((next, canon subtree) :: docs),
        next + 1 )
  | Live.Replace (id, subtree) ->
      ( List.map (fun (i, s) -> if i = id then (i, canon subtree) else (i, s)) docs,
        next )
  | Live.Remove id -> (List.filter (fun (i, _) -> i <> id) docs, next)

let model_doc docs =
  {
    Xk_xml.Xml_tree.root =
      Xk_xml.Xml_tree.element "lib" (List.map snd docs);
  }

let rec prefixes = function [] -> [ [] ] | x :: rest -> [] :: List.map (fun p -> x :: p) (prefixes rest)

(* Drive one drill: arm [step], run a mutation batch then a compaction
   (catching the simulated crash), reopen, and check the recovered
   content is a per-operation prefix state with bit-identical answers. *)
let run_drill ~dir ~pool ~seed_muts ~drill_muts ~step =
  let t = ok_exn "create" (Live.create ~fsync:false ~root_tag:"lib" dir) in
  let state0 =
    List.fold_left model_apply ([], 0) seed_muts
  in
  let _ = ok_exn "seed" (Live.mutate t seed_muts) in
  ok_exn "seed compact" (Live.compact t);
  (* a pending delta on top of the sealed generation *)
  let pre_muts = [ Live.Add (nth_subtree pool 9) ] in
  let state_pre = List.fold_left model_apply state0 pre_muts in
  let _ = ok_exn "pre" (Live.mutate t pre_muts) in
  Chaos.install [ Chaos.Crash { step } ];
  let crashed = ref false in
  Fun.protect
    ~finally:(fun () -> Chaos.clear ())
    (fun () ->
      (match Live.mutate t drill_muts with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "drilled mutate: %s" (Live.error_message e)
      | exception Chaos.Crashed s ->
          crashed := true;
          check Alcotest.string "crashed at the armed step" step s);
      (if not !crashed then
         match Live.compact t with
         | Ok () -> ()
         | Error e ->
             Alcotest.failf "drilled compact: %s" (Live.error_message e)
         | exception Chaos.Crashed s ->
             crashed := true;
             check Alcotest.string "crashed at the armed step" step s);
      if !crashed then
        check Alcotest.int "crash point fired once" 1
          (Chaos.counters ()).crashes);
  Live.close t;
  (* "Reboot": recovery must land on a per-operation prefix state. *)
  let t = ok_exn "recover" (Live.open_ ~fsync:false dir) in
  let recovered = Snapshot.document (Live.snapshot t) in
  let candidates =
    List.map
      (fun prefix -> List.fold_left model_apply state_pre prefix)
      (prefixes drill_muts)
  in
  let matching =
    List.filter
      (fun (docs, _) -> Xk_xml.Xml_tree.equal (model_doc docs) recovered)
      candidates
  in
  (if matching = [] then
     let ids =
       String.concat ";"
         (List.map string_of_int
            (Array.to_list (Snapshot.doc_ids (Live.snapshot t))))
     in
     Alcotest.failf
       "crash@%s: recovered state (ids %s) is not a prefix state (crashed=%b)"
       step ids !crashed);
  (* Post-crash top-K answers are bit-identical to a from-scratch engine
     over the surviving documents. *)
  check_parity (Printf.sprintf "crash@%s recovery" step) (Live.snapshot t);
  (* And the recovered store still accepts mutations. *)
  let _ = ok_exn "mutate after recovery" (Live.mutate t [ Live.Add (nth_subtree pool 10) ]) in
  check_parity (Printf.sprintf "crash@%s post-recovery mutate" step)
    (Live.snapshot t);
  Live.close t

let drill_steps () =
  let pool = subtree_pool 49 in
  let seed_muts =
    [ Live.Add (nth_subtree pool 0); Add (nth_subtree pool 1); Add (nth_subtree pool 2); Add (nth_subtree pool 3) ]
  in
  let drill_muts =
    [ Live.Add (nth_subtree pool 4); Live.Replace (1, nth_subtree pool 5); Live.Remove 0 ]
  in
  List.iter
    (fun step ->
      with_tmpdir (fun dir ->
          run_drill ~dir ~pool ~seed_muts ~drill_muts ~step))
    Live.crash_steps

(* Randomized: any batch, any crash point, same invariant. *)
let crash_recovery_prop =
  QCheck.Test.make ~count:30 ~name:"recovery at any crash point is consistent"
    QCheck.(triple (int_bound 1_000_000) (int_bound 1_000_000) small_nat)
    (fun (seed, opseed, stepi) ->
      let pool = subtree_pool seed in
      let step =
        List.nth Live.crash_steps (stepi mod List.length Live.crash_steps)
      in
      let rng = Xk_datagen.Rng.create opseed in
      let seed_count = 2 + Xk_datagen.Rng.int rng 4 in
      let seed_muts =
        List.init seed_count (fun i -> Live.Add (nth_subtree pool i))
      in
      (* Random drilled batch over ids [0, seed_count+1): some will be
         invalid targets, so sanitize against the model's live set. *)
      let live = ref (List.init seed_count Fun.id) in
      let next = ref (seed_count + 1) (* the pre-batch Add takes seed_count *) in
      let drill_muts =
        List.filter_map
          (fun _ ->
            match Xk_datagen.Rng.int rng 3 with
            | 0 ->
                let id = !next in
                incr next;
                live := id :: !live;
                Some (Live.Add (nth_subtree pool (Xk_datagen.Rng.int rng 20)))
            | 1 -> (
                match !live with
                | [] -> None
                | l ->
                    let id = List.nth l (Xk_datagen.Rng.int rng (List.length l)) in
                    Some (Live.Replace (id, nth_subtree pool (Xk_datagen.Rng.int rng 20))))
            | _ -> (
                match !live with
                | [] -> None
                | l ->
                    let id = List.nth l (Xk_datagen.Rng.int rng (List.length l)) in
                    live := List.filter (( <> ) id) !live;
                    Some (Live.Remove id)))
          (List.init (1 + Xk_datagen.Rng.int rng 3) Fun.id)
      in
      with_tmpdir (fun dir ->
          run_drill ~dir ~pool ~seed_muts ~drill_muts ~step);
      true)

let suite =
  [
    ( "live.wal",
      [
        tc "append/reopen round-trip" `Quick wal_roundtrip;
        tc "torn tail is healed" `Quick wal_torn_tail;
        tc "truncated payload is healed" `Quick wal_truncated_payload;
        tc "mid-file corruption is reported" `Quick wal_midfile_corruption;
        tc "bad magic is reported" `Quick wal_bad_magic;
      ] );
    ("live.delta", [ tc "upsert/delete algebra" `Quick delta_semantics ]);
    ( "live.store",
      [
        tc "insert and query" `Quick live_insert_query;
        tc "replace and remove" `Quick live_replace_remove;
        tc "reopen recovers WAL" `Quick live_reopen;
        tc "create refuses existing store" `Quick live_create_refuses_existing;
        tc "compaction" `Quick live_compact;
        tc "auto-compaction" `Quick live_auto_compact;
      ] );
    ( "live.snapshot",
      [
        tc "pinned snapshots are isolated" `Quick snapshot_isolation;
        tc "concurrent reads during mutation" `Slow
          concurrent_reads_during_mutation;
      ] );
    ( "live.crash",
      [
        tc "drill every crash step" `Slow drill_steps;
        QCheck_alcotest.to_alcotest crash_recovery_prop;
      ] );
  ]
