(* Deterministic chaos for replicated shard serving.

   The two load-bearing acceptance properties: with two replicas per
   shard, killing any one replica of every shard is invisible — every
   outcome is bit-identical to the fault-free run — and killing every
   replica of one shard yields Degraded answers whose hits are exactly
   the true results restricted to the reachable shards, never Failed.
   Around them: schedule spec parsing, tick-deterministic replay, and
   the corrupt-target plumbing. *)

open Xk_exec
module Chaos = Xk_resilience.Chaos

let check = Alcotest.check
let tc = Alcotest.test_case

let hits_identical (a : Xk_baselines.Hit.t list) (b : Xk_baselines.Hit.t list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Xk_baselines.Hit.t) (y : Xk_baselines.Hit.t) ->
         x.node = y.node && x.score = y.score)
       a b

let target ?shard ?replica () = { Chaos.t_shard = shard; t_replica = replica }

(* --- Schedule specs --------------------------------------------------- *)

let spec_parsing () =
  (match Chaos.of_spec "kill@s1r0:3,slow@s*r1:2:5.5,corrupt@s0r*" with
  | Ok
      [
        Kill { target = { t_shard = Some 1; t_replica = Some 0 }; from_tick = 3 };
        Slow { target = { t_shard = None; t_replica = Some 1 }; from_tick = 2; ms };
        Corrupt { target = { t_shard = Some 0; t_replica = None } };
      ] ->
      check (Alcotest.float 1e-9) "slow ms" 5.5 ms
  | Ok _ -> Alcotest.fail "spec parsed into the wrong events"
  | Error e -> Alcotest.failf "spec rejected: %s" e);
  List.iter
    (fun bad ->
      match Chaos.of_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bad spec %S accepted" bad)
    [
      "boom@s0r0:1";
      "kill@s0:1";
      "kill@sxr0:1";
      "kill@s0r0";
      "kill@s0r0:-1";
      "slow@s0r0:1";
      "corrupt@s0r0:1";
      "kill";
    ]

(* --- Deterministic replay --------------------------------------------- *)

let replay () =
  let slept = ref [] in
  Chaos.install
    ~sleep:(fun ms -> slept := ms :: !slept)
    [
      Chaos.Kill { target = target ~shard:0 ~replica:0 (); from_tick = 2 };
      Chaos.Slow { target = target ~replica:1 (); from_tick = 0; ms = 7. };
      Chaos.Corrupt { target = target ~shard:2 () };
    ];
  Fun.protect ~finally:Chaos.clear (fun () ->
      check Alcotest.bool "schedule active" true (Chaos.active ());
      (* tick 0: the kill is not armed yet *)
      Chaos.on_attempt ~shard:0 ~replica:0;
      (* tick 1: the slowdown matches replica 1 of any shard *)
      Chaos.on_attempt ~shard:3 ~replica:1;
      check Alcotest.(list (float 1e-9)) "slowdown serviced" [ 7. ] !slept;
      (* tick 2: the kill arms for its target only *)
      (match Chaos.on_attempt ~shard:0 ~replica:0 with
      | () -> Alcotest.fail "armed kill did not fire"
      | exception Chaos.Killed { shard = 0; replica = 0 } -> ()
      | exception Chaos.Killed { shard; replica } ->
          Alcotest.failf "kill hit the wrong target s%dr%d" shard replica);
      Chaos.on_attempt ~shard:1 ~replica:0;
      check Alcotest.int "tick advances per attempt" 4 (Chaos.tick ());
      let c = Chaos.counters () in
      check Alcotest.int "kills counted" 1 c.Chaos.kills;
      check Alcotest.int "slowdowns counted" 1 c.Chaos.slowdowns;
      (* corruption is disk-level: exposed as targets, not attempts *)
      check Alcotest.int "one corrupt target" 1
        (List.length (Chaos.corrupt_targets ()));
      check Alcotest.bool "corrupt matches its shard" true
        (Chaos.corrupt_matches ~shard:2 ~replica:1);
      check Alcotest.bool "corrupt ignores other shards" false
        (Chaos.corrupt_matches ~shard:0 ~replica:0))

let idle_without_schedule () =
  Chaos.clear ();
  let before = Chaos.tick () in
  Chaos.on_attempt ~shard:0 ~replica:0;
  Chaos.on_attempt ~shard:5 ~replica:9;
  check Alcotest.int "tick frozen without a schedule" before (Chaos.tick ());
  check Alcotest.bool "inactive" false (Chaos.active ())

(* --- Acceptance: replicated serving under chaos ----------------------- *)

let workload seed =
  let rng = Xk_datagen.Rng.create seed in
  List.concat
    (List.init 6 (fun _ ->
         let words = Tutil.random_query rng ~k:2 ~alphabet:26 in
         Xk_core.Engine.
           [
             complete_request ~semantics:Elca words;
             topk_request ~semantics:Elca ~k:4 words;
             topk_request ~semantics:Slca ~k:3 words;
           ]))

let run_batch sharded ~replicas reqs =
  let sx = Shard_exec.create ~domains:2 ~replicas sharded in
  Fun.protect
    ~finally:(fun () -> Shard_exec.shutdown sx)
    (fun () ->
      let outcomes = List.map (fun r -> Shard_exec.exec sx r) reqs in
      (outcomes, Shard_exec.stats sx))

(* Killing any single replica of every shard must be invisible: the
   survivors serve every query with results bit-identical to the
   fault-free run. *)
let kill_one_replica_everywhere () =
  let doc = Tutil.random_doc 2026 in
  let sharded = Xk_index.Sharding.partition ~shards:3 doc in
  let reqs = workload 11 in
  Chaos.clear ();
  let reference, _ = run_batch sharded ~replicas:2 reqs in
  List.iter
    (fun o ->
      match o with
      | Query_service.Ok _ -> ()
      | o ->
          Alcotest.failf "fault-free run came back %s"
            (Query_service.outcome_label o))
    reference;
  List.iter
    (fun dead ->
      Chaos.install
        [ Chaos.Kill { target = target ~replica:dead (); from_tick = 0 } ];
      Fun.protect ~finally:Chaos.clear (fun () ->
          let outcomes, stats = run_batch sharded ~replicas:2 reqs in
          List.iter2
            (fun r o ->
              match (r, o) with
              | Query_service.Ok a, Query_service.Ok b when hits_identical a b
                ->
                  ()
              | _, o ->
                  Alcotest.failf
                    "replica %d dead everywhere: outcome %s diverged from the \
                     fault-free run"
                    dead
                    (Query_service.outcome_label o))
            reference outcomes;
          check Alcotest.int "no hard failures" 0 stats.Shard_exec.failed;
          check Alcotest.int "nothing degraded" 0 stats.Shard_exec.degraded;
          if stats.Shard_exec.failovers = 0 then
            Alcotest.fail "kills never exercised failover";
          if (Chaos.counters ()).Chaos.kills = 0 then
            Alcotest.fail "schedule never fired"))
    [ 0; 1 ]

(* Killing every replica of one shard must degrade, not fail: the
   Degraded hits are exactly the true results restricted to the
   reachable shards (top-K ties compared by score sequence plus
   membership, as the shard-local truncation may pick either side of a
   tie at the cut). *)
let losing_a_shard_degrades () =
  let doc = Tutil.random_doc 2032 in
  let sharded = Xk_index.Sharding.partition ~shards:3 doc in
  (* Kill the shard owning the first top-level subtree: provably
     non-empty, so losing it must show up as partial coverage.  The doc
     must spread across shards for the degradation to be partial. *)
  let assignment = Xk_index.Sharding.assignment sharded in
  let victim = assignment.(0) in
  let expected_coverage =
    let reachable =
      Array.fold_left (fun n s -> if s = victim then n else n + 1) 0 assignment
    in
    float_of_int reachable /. float_of_int (Array.length assignment)
  in
  if not (expected_coverage > 0. && expected_coverage < 1.) then
    Alcotest.failf
      "test corpus does not spread across shards (expected coverage %f)"
      expected_coverage;
  let k = 4 in
  let rng = Xk_datagen.Rng.create 9 in
  let queries =
    List.init 8 (fun _ -> Tutil.random_query rng ~k:2 ~alphabet:26)
  in
  let sx = Shard_exec.create ~domains:2 ~replicas:2 sharded in
  Fun.protect
    ~finally:(fun () ->
      Chaos.clear ();
      Shard_exec.shutdown sx)
    (fun () ->
      Chaos.clear ();
      (* Reachable reference: the fault-free complete result minus the
         root (dropped in degraded answers) and minus the victim
         shard's hits. *)
      let reachable words =
        match
          Shard_exec.exec sx (Xk_core.Engine.complete_request ~semantics:Elca words)
        with
        | Query_service.Ok hits ->
            List.filter
              (fun (h : Xk_baselines.Hit.t) ->
                h.node <> 0 && fst (Shard_exec.locate sx h) <> victim)
              hits
        | o ->
            Alcotest.failf "fault-free reference came back %s"
              (Query_service.outcome_label o)
      in
      let refs = List.map (fun w -> (w, reachable w)) queries in
      Chaos.install
        [ Chaos.Kill { target = target ~shard:victim (); from_tick = 0 } ];
      let scores = List.map (fun (h : Xk_baselines.Hit.t) -> h.score) in
      let member_of set (h : Xk_baselines.Hit.t) =
        List.exists
          (fun (f : Xk_baselines.Hit.t) -> f.node = h.node && f.score = h.score)
          set
      in
      List.iter
        (fun (words, expected) ->
          (match
             Shard_exec.exec sx
               (Xk_core.Engine.complete_request ~semantics:Elca words)
           with
          | Query_service.Degraded { hits; missing_shards; coverage } ->
              check (Alcotest.list Alcotest.int) "missing shard list"
                [ victim ] missing_shards;
              check (Alcotest.float 1e-9) "coverage matches the assignment"
                expected_coverage coverage;
              if not (hits_identical (Xk_baselines.Hit.sort_desc expected) hits)
              then
                Alcotest.failf "degraded complete differs from reachable hits"
          | o ->
              Alcotest.failf "complete with a lost shard came back %s"
                (Query_service.outcome_label o));
          match
            Shard_exec.exec sx
              (Xk_core.Engine.topk_request ~semantics:Elca ~k words)
          with
          | Query_service.Degraded { hits; missing_shards = [ m ]; _ }
            when m = victim ->
              let want = Xk_baselines.Hit.top_k k expected in
              if scores want <> scores hits then
                Alcotest.failf "degraded top-K scores differ from reachable top-K";
              if not (List.for_all (member_of expected) hits) then
                Alcotest.failf "degraded top-K reported an unreachable hit"
          | o ->
              Alcotest.failf "top-K with a lost shard came back %s"
                (Query_service.outcome_label o))
        refs;
      let stats = Shard_exec.stats sx in
      check Alcotest.int "never Failed" 0 stats.Shard_exec.failed;
      check Alcotest.int "every chaos query degraded" (2 * List.length refs)
        stats.Shard_exec.degraded)

let suite =
  [
    ( "chaos.schedule",
      [
        tc "spec parsing" `Quick spec_parsing;
        tc "deterministic replay" `Quick replay;
        tc "no schedule, no tick" `Quick idle_without_schedule;
      ] );
    ( "chaos.serving",
      [
        tc "one replica of every shard may die" `Quick
          kill_one_replica_everywhere;
        tc "losing a whole shard degrades, never fails" `Quick
          losing_a_shard_degrades;
      ] );
  ]
