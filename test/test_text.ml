(* Tokenizer and dictionary. *)

open Xk_text

let check = Alcotest.check
let tc = Alcotest.test_case

let basic_tokens () =
  check
    Alcotest.(list string)
    "tokens"
    [ "top"; "keyword"; "search"; "xml" ]
    (Tokenizer.tokens "Top-K keyword search (XML)!")

let min_length () =
  check Alcotest.(list string) "short dropped" [ "ab" ] (Tokenizer.tokens "a ab x")

let numbers_kept () =
  check Alcotest.(list string) "numbers" [ "2004"; "vldb" ] (Tokenizer.tokens "2004 VLDB")

let lowercasing () =
  check Alcotest.(list string) "lower" [ "icde" ] (Tokenizer.tokens "ICDE")

let unicode_words () =
  check
    Alcotest.(list string)
    "utf8 words stay whole"
    [ "caf\xc3\xa9" ]
    (Tokenizer.tokens "caf\xc3\xa9")

let max_length () =
  let long = String.make 50 'a' in
  check Alcotest.(list string) "too long dropped" [] (Tokenizer.tokens long)

let stopwords () =
  check Alcotest.bool "the" true (Tokenizer.is_stopword "the");
  check Alcotest.bool "xml" false (Tokenizer.is_stopword "xml");
  let out = ref [] in
  Tokenizer.iter_indexed "the quick fox" (fun t -> out := t :: !out);
  check Alcotest.(list string) "indexed skips stopwords" [ "quick"; "fox" ]
    (List.rev !out)

let dictionary_basics () =
  let d = Dictionary.create () in
  let a = Dictionary.intern d "xml" in
  let b = Dictionary.intern d "data" in
  let a' = Dictionary.intern d "xml" in
  check Alcotest.int "stable id" a a';
  check Alcotest.bool "distinct ids" true (a <> b);
  check Alcotest.(option int) "find" (Some b) (Dictionary.find d "data");
  check Alcotest.(option int) "missing" None (Dictionary.find d "nope");
  check Alcotest.string "term" "xml" (Dictionary.term d a);
  check Alcotest.int "size" 2 (Dictionary.size d);
  Dictionary.bump_df d a;
  Dictionary.bump_cf d a 3;
  check Alcotest.int "df" 1 (Dictionary.df d a);
  check Alcotest.int "cf" 3 (Dictionary.cf d a)

let dictionary_growth () =
  let d = Dictionary.create () in
  for i = 0 to 4999 do
    ignore (Dictionary.intern d (Printf.sprintf "term%d" i))
  done;
  check Alcotest.int "size" 5000 (Dictionary.size d);
  check Alcotest.string "term 4321" "term4321" (Dictionary.term d 4321);
  check Alcotest.bool "bytes accounted" true (Dictionary.approx_bytes d > 5000 * 8)

let vocab_distinct () =
  let seen = Hashtbl.create 1024 in
  for r = 0 to 9999 do
    let w = Xk_datagen.Vocab.word r in
    if Hashtbl.mem seen w then Alcotest.failf "duplicate word %s at rank %d" w r;
    Hashtbl.add seen w ();
    (* Words must survive tokenization unchanged (indexable). *)
    match Tokenizer.tokens w with
    | [ t ] when String.equal t w -> ()
    | _ -> Alcotest.failf "word %s not tokenizer-stable" w
  done

let suite =
  [
    ( "text",
      [
        tc "basic tokens" `Quick basic_tokens;
        tc "minimum length" `Quick min_length;
        tc "numbers kept" `Quick numbers_kept;
        tc "lowercasing" `Quick lowercasing;
        tc "unicode words" `Quick unicode_words;
        tc "maximum length" `Quick max_length;
        tc "stopwords" `Quick stopwords;
        tc "dictionary basics" `Quick dictionary_basics;
        tc "dictionary growth" `Quick dictionary_growth;
        tc "vocab words distinct and indexable" `Quick vocab_distinct;
      ] );
  ]
