(* Edge cases and contract checks across modules: invalid inputs raise,
   boundary conditions behave, optional paths (SLCA top-K, empty
   structures, K beyond result count) work through the public API. *)

open Xk_core

let check = Alcotest.check
let tc = Alcotest.test_case

(* -------- encodings -------- *)

let dewey_of_string_invalid () =
  List.iter
    (fun s ->
      match Xk_encoding.Dewey.of_string s with
      | exception (Invalid_argument _ | Failure _) -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ "0"; "1.0"; "1.-2"; "a.b"; "1..2" ]

let labeling_rejects_bad_gap () =
  let doc = Xk_xml.Xml_parser.parse_string_exn "<a/>" in
  Alcotest.check_raises "gap 0" (Invalid_argument "Labeling.label: gap must be >= 1")
    (fun () -> ignore (Xk_encoding.Labeling.label ~gap:0 doc))

let single_node_document () =
  let eng = Engine.of_string "<lonely/>" in
  check Alcotest.int "no results" 0 (List.length (Engine.query eng [ "anything" ]));
  let lab = Engine.label eng in
  check Alcotest.int "one node" 1 (Xk_encoding.Labeling.node_count lab);
  check Alcotest.int "height" 1 (Xk_encoding.Labeling.height lab)

(* -------- index structures -------- *)

let jlist_length_mismatch () =
  match Xk_index.Jlist.make ~seqs:[| [| 1 |] |] ~nodes:[| 1; 2 |] ~scores:[| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatch accepted"

let posting_length_mismatch () =
  match
    Xk_index.Posting.make ~deweys:[| [| 1 |] |] ~nodes:[||] ~scores:[||]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatch accepted"

let empty_column () =
  let c = Xk_index.Column.build [||] ~level:1 in
  check Alcotest.bool "empty" true (Xk_index.Column.is_empty c);
  check Alcotest.(option int) "max" None (Xk_index.Column.max_value c);
  check Alcotest.bool "find" true (Xk_index.Column.find c 5 = None);
  check Alcotest.int "lower bound" 0 (Xk_index.Column.lower_bound c 5)

let scorer_extremes () =
  let s = Xk_score.Scorer.make ~total_nodes:100 in
  (* df equal to the whole collection still gives a positive score. *)
  let g = Xk_score.Scorer.local_score s ~tf:1 ~df:100 in
  check Alcotest.bool "positive" true (g > 0.);
  Alcotest.check_raises "tf 0" (Invalid_argument "Scorer.local_score") (fun () ->
      ignore (Xk_score.Scorer.local_score s ~tf:0 ~df:1))

(* -------- star join -------- *)

let star_join_single_relation () =
  let r =
    Star_join.relation ~keys:[| 7; 8; 9 |] ~scores:[| 0.9; 0.5; 0.1 |]
  in
  let out = Star_join.topk [| r |] ~k:2 in
  check Alcotest.int "two results" 2 (List.length out);
  (match out with
  | { key = 7; _ } :: { key = 8; _ } :: _ -> ()
  | _ -> Alcotest.fail "wrong order")

let star_join_rejects_ascending () =
  match Star_join.relation ~keys:[| 1; 2 |] ~scores:[| 0.1; 0.9 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ascending scores accepted"

let star_join_disjoint_keys () =
  let r1 = Star_join.relation ~keys:[| 1; 2 |] ~scores:[| 0.9; 0.8 |] in
  let r2 = Star_join.relation ~keys:[| 3; 4 |] ~scores:[| 0.9; 0.8 |] in
  check Alcotest.int "no joinable keys" 0
    (List.length (Star_join.topk [| r1; r2 |] ~k:5))

(* -------- top-K through the engine -------- *)

let corpus =
  lazy
    (Engine.of_string
       {|<db>
           <x><y>apple banana</y><y>apple</y></x>
           <x><y>banana</y><z>apple banana cherry</z></x>
           <x><y>apple banana</y></x>
         </db>|})

let topk_beyond_results () =
  let eng = Lazy.force corpus in
  let full = Engine.query eng [ "apple"; "banana" ] in
  let top99 = Engine.query_topk eng [ "apple"; "banana" ] ~k:99 in
  check Alcotest.int "everything returned" (List.length full) (List.length top99);
  Tutil.check_same_hits "same results" full top99

let topk_zero () =
  let eng = Lazy.force corpus in
  check Alcotest.int "k=0" 0
    (List.length (Engine.query_topk eng [ "apple"; "banana" ] ~k:0))

let slca_topk_via_engine () =
  let eng = Lazy.force corpus in
  let full = Engine.query ~semantics:Engine.Slca eng [ "apple"; "banana" ] in
  let top2 =
    Engine.query_topk ~semantics:Engine.Slca eng [ "apple"; "banana" ] ~k:2
  in
  Tutil.check_topk "slca engine top-2" ~k:2 full top2;
  (* RDIL requests under SLCA fall back to complete evaluation. *)
  let rd =
    Engine.query_topk ~semantics:Engine.Slca ~algorithm:Engine.Rdil_baseline eng
      [ "apple"; "banana" ] ~k:2
  in
  Tutil.check_topk "slca rdil fallback" ~k:2 full rd

let slca_topk_prop =
  QCheck.Test.make ~count:200 ~name:"engine SLCA top-K = oracle (random trees)"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 3))
    (fun (seed, k) ->
      let eng = Tutil.random_engine seed in
      let rng = Xk_datagen.Rng.create (seed + 91) in
      let q = Tutil.random_query rng ~k ~alphabet:3 in
      let full = Engine.query ~semantics:Engine.Slca ~algorithm:Engine.Oracle eng q in
      let top =
        Engine.query_topk ~semantics:Engine.Slca eng q ~k:4
      in
      Tutil.check_topk "slca topk" ~k:4 full top;
      true)

(* -------- tokenizer property -------- *)

let tokenizer_prop =
  QCheck.Test.make ~count:500 ~name:"tokens are lowercase, bounded, non-stopword"
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun s ->
      let ok = ref true in
      Xk_text.Tokenizer.iter_indexed s (fun t ->
          let n = String.length t in
          if n < Xk_text.Tokenizer.default_min_len then ok := false;
          if n > Xk_text.Tokenizer.default_max_len then ok := false;
          if Xk_text.Tokenizer.is_stopword t then ok := false;
          String.iter
            (fun c -> if c >= 'A' && c <= 'Z' then ok := false)
            t);
      !ok)

(* -------- naive LCA edge -------- *)

let naive_lca_k1 () =
  let eng = Lazy.force corpus in
  let idx = Engine.index eng in
  let ids = Xk_index.Index.term_ids_exn idx [ "apple" ] in
  let set = Xk_baselines.Naive_lca.lca_set idx ids in
  (* k = 1: the LCA set is exactly the occurrence set. *)
  check Alcotest.int "occurrences" (Xk_index.Index.df idx (List.hd ids))
    (List.length set);
  check Alcotest.(list int) "brute agrees"
    (List.sort Int.compare set)
    (Xk_baselines.Naive_lca.brute idx ids)

let naive_lca_cap () =
  let eng = Lazy.force corpus in
  let idx = Engine.index eng in
  let ids = Xk_index.Index.term_ids_exn idx [ "apple"; "banana" ] in
  match Xk_baselines.Naive_lca.brute ~max_combinations:1 idx ids with
  | exception Xk_baselines.Naive_lca.Too_many_combinations -> ()
  | _ -> Alcotest.fail "cap ignored"

(* -------- hybrid routing -------- *)

let hybrid_margin_routes () =
  let eng = Lazy.force corpus in
  let idx = Engine.index eng in
  let ids = Xk_index.Index.term_ids_exn idx [ "apple"; "banana" ] in
  let jls = Array.of_list (List.map (Xk_index.Index.jlist idx) ids) in
  let level_width l =
    Xk_encoding.Labeling.level_width (Engine.label eng) ~depth:l
  in
  (* A tiny margin routes to the top-K join; a huge one to complete. *)
  check Alcotest.bool "low margin" true
    (Hybrid.choose ~margin:0.0001 jls ~level_width ~k:1 = Hybrid.Use_topk);
  check Alcotest.bool "high margin" true
    (Hybrid.choose ~margin:1e9 jls ~level_width ~k:1 = Hybrid.Use_complete)

(* -------- presentation helpers -------- *)

let hit_top_k () =
  let hits =
    [
      { Xk_baselines.Hit.node = 1; score = 0.2 };
      { Xk_baselines.Hit.node = 2; score = 0.9 };
      { Xk_baselines.Hit.node = 3; score = 0.5 };
    ]
  in
  check Alcotest.(list int) "top 2 by score" [ 2; 3 ]
    (Xk_baselines.Hit.nodes (Xk_baselines.Hit.top_k 2 hits));
  check Alcotest.int "top 0" 0 (List.length (Xk_baselines.Hit.top_k 0 hits));
  check Alcotest.int "top beyond" 3 (List.length (Xk_baselines.Hit.top_k 9 hits))

let element_summary_truncates () =
  let doc =
    Xk_xml.Xml_parser.parse_string_exn
      ("<a>" ^ String.make 200 'x' ^ "</a>")
  in
  let s =
    Fmt.str "%a" (Xk_xml.Xml_print.pp_element_summary ~max_text:20) doc.root
  in
  check Alcotest.bool "truncated" true (String.length s < 40);
  check Alcotest.bool "ellipsis" true
    (String.length s >= 3 && String.sub s (String.length s - 3) 3 = "...")

let element_of_text_node () =
  let eng = Engine.of_string "<a><b>needle</b></a>" in
  match Engine.query eng [ "needle" ] with
  | [ h ] -> (
      (* The result is the text node; presentation maps to its parent. *)
      match Engine.element_of_hit eng h with
      | Some e -> check Alcotest.string "parent element" "b" e.tag
      | None -> Alcotest.fail "no element")
  | other -> Alcotest.failf "expected one hit, got %d" (List.length other)

(* level_join over an empty column short-circuits. *)
let level_join_empty_column () =
  let full = Xk_index.Column.build [| [| 1 |]; [| 2 |] |] ~level:1 in
  let empty = Xk_index.Column.build [||] ~level:1 in
  check Alcotest.int "no matches" 0
    (List.length (Level_join.join ~plan:Level_join.Dynamic [| full; empty |]))

(* Column.of_runs must mirror build. *)
let column_of_runs_roundtrip () =
  let seqs = Array.map (fun v -> [| v |]) [| 1; 1; 3; 7; 7; 7 |] in
  let built = Xk_index.Column.build seqs ~level:1 in
  let rebuilt = Xk_index.Column.of_runs (Xk_index.Column.runs built) in
  check Alcotest.bool "same runs" true
    (Xk_index.Column.runs built = Xk_index.Column.runs rebuilt);
  check Alcotest.int "entries" (Xk_index.Column.entries built)
    (Xk_index.Column.entries rebuilt)

let suite =
  [
    ( "edge",
      [
        tc "dewey of_string invalid" `Quick dewey_of_string_invalid;
        tc "labeling bad gap" `Quick labeling_rejects_bad_gap;
        tc "single node document" `Quick single_node_document;
        tc "jlist length mismatch" `Quick jlist_length_mismatch;
        tc "posting length mismatch" `Quick posting_length_mismatch;
        tc "empty column" `Quick empty_column;
        tc "scorer extremes" `Quick scorer_extremes;
        tc "star join single relation" `Quick star_join_single_relation;
        tc "star join rejects ascending" `Quick star_join_rejects_ascending;
        tc "star join disjoint keys" `Quick star_join_disjoint_keys;
        tc "top-K beyond result count" `Quick topk_beyond_results;
        tc "top-K k=0" `Quick topk_zero;
        tc "SLCA top-K via engine" `Quick slca_topk_via_engine;
        tc "naive LCA k=1" `Quick naive_lca_k1;
        tc "naive LCA combination cap" `Quick naive_lca_cap;
        tc "hybrid margin routing" `Quick hybrid_margin_routes;
        tc "hit top_k" `Quick hit_top_k;
        tc "element summary truncates" `Quick element_summary_truncates;
        tc "element_of maps text to parent" `Quick element_of_text_node;
        tc "level join with empty column" `Quick level_join_empty_column;
        tc "column of_runs roundtrip" `Quick column_of_runs_roundtrip;
        QCheck_alcotest.to_alcotest slca_topk_prop;
        QCheck_alcotest.to_alcotest tokenizer_prop;
      ] );
  ]
