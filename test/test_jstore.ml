(* Column store: roundtrip fidelity, store-backed query equality, and the
   paper's I/O claim (queries decode only the columns they join). *)

open Xk_index

let check = Alcotest.check
let tc = Alcotest.test_case

let tmpfile name = Filename.concat (Filename.get_temp_dir_name ()) name

let with_store corpus f =
  let label = Xk_encoding.Labeling.label corpus in
  let idx = Index.build label in
  let path = tmpfile "xk_jstore_test.col" in
  Jstore.write idx path;
  let store = Jstore.open_file path in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f idx store)

let columns_roundtrip () =
  let corpus = Xk_datagen.Random_tree.generate (Xk_datagen.Rng.create 11) in
  with_store corpus (fun idx store ->
      check Alcotest.int "term count" (Index.term_count idx)
        (Jstore.term_count store);
      for id = 0 to Index.term_count idx - 1 do
        let mem = Index.jlist idx id in
        let sid = Option.get (Jstore.term_id store (Index.term idx id)) in
        let disk = Jstore.jlist store sid in
        check Alcotest.int "rows" (Jlist.length mem) (Jlist.length disk);
        check Alcotest.int "max_len" (Jlist.max_len mem) (Jlist.max_len disk);
        for level = 1 to Jlist.max_len mem do
          let rm = Column.runs (Jlist.column mem ~level) in
          let rd = Column.runs (Jlist.column disk ~level) in
          if rm <> rd then
            Alcotest.failf "column %d of %s differs" level (Index.term idx id)
        done;
        for r = 0 to Jlist.length mem - 1 do
          check Alcotest.int "node" (Jlist.node mem r) (Jlist.node disk r);
          check (Alcotest.float 0.) "score" (Jlist.score mem r) (Jlist.score disk r);
          check Alcotest.int "row len" (Jlist.row_len mem r) (Jlist.row_len disk r);
          (* Forcing sequences reconstructs them from the columns. *)
          check Alcotest.(array int) "seq" (Jlist.seq mem r) (Jlist.seq disk r)
        done
      done)

let store_backed_queries_prop =
  QCheck.Test.make ~count:100
    ~name:"store-backed join & top-K = in-memory (random trees)"
    QCheck.(pair (int_bound 1_000_000) (int_range 2 3))
    (fun (seed, k) ->
      let corpus = Xk_datagen.Random_tree.generate (Xk_datagen.Rng.create seed) in
      with_store corpus (fun idx store ->
          let rng = Xk_datagen.Rng.create (seed + 61) in
          let q = Tutil.random_query rng ~k ~alphabet:4 in
          let ids = List.filter_map (Index.term_id idx) q in
          if List.length ids <> List.length q then true
          else begin
            let ids = List.sort_uniq Int.compare ids in
            let mem_lists =
              Array.of_list (List.map (Index.jlist idx) ids)
            in
            let disk_lists =
              Array.of_list
                (List.map
                   (fun id ->
                     Jstore.jlist store
                       (Option.get (Jstore.term_id store (Index.term idx id))))
                   ids)
            in
            let damping = Index.damping idx in
            let run lists sem = Xk_core.Join_query.run lists damping sem in
            let same a b =
              List.length a = List.length b
              && List.for_all2
                   (fun (x : Xk_core.Join_query.hit) (y : Xk_core.Join_query.hit) ->
                     x.level = y.level && x.value = y.value
                     && Float.abs (x.score -. y.score) < 1e-9)
                   a b
            in
            let ok =
              same (run mem_lists Xk_core.Join_query.Elca)
                (run disk_lists Xk_core.Join_query.Elca)
              && same (run mem_lists Xk_core.Join_query.Slca)
                   (run disk_lists Xk_core.Join_query.Slca)
            in
            (* Top-K through store-backed score lists (forces sequences). *)
            let slists lists =
              Array.map (fun jl -> Score_list.make jl damping) lists
            in
            let tk lists =
              Xk_core.Topk_keyword.topk (slists lists) damping ~k:5
            in
            ok && same (tk mem_lists) (tk disk_lists)
          end))

let io_laziness () =
  (* Keywords living only at deep levels: joining must not decode the
     shallow... rather, the join starts at the min of max_lens and walks
     up; every level's column is shared, but the store never decodes
     columns of OTHER terms, and never the payloads of unqueried terms. *)
  let corpus = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled 0.05) in
  let label = Xk_encoding.Labeling.label corpus.doc in
  let idx = Index.build label in
  let path = tmpfile "xk_jstore_lazy.col" in
  Jstore.write idx path;
  let store = Jstore.open_file path in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      (* Mix a deep keyword (planted in titles, depth 6) with a shallow one
         ("1998" lives in year attributes, depth 3): the join starts at
         the shallower list's bottom, so the deep list's lower columns are
         never decoded - the Section III-B I/O saving. *)
      let deep = List.hd (List.nth corpus.correlated_queries 0) in
      let q = [ deep; "1998" ] in
      let ids = List.map (fun w -> Option.get (Jstore.term_id store w)) q in
      Jstore.reset_stats store;
      let lists = Array.of_list (List.map (Jstore.jlist store) ids) in
      let lmin =
        Array.fold_left (fun m jl -> min m (Jlist.max_len jl)) max_int lists
      in
      let hits =
        Xk_core.Join_query.run lists (Index.damping idx) Xk_core.Join_query.Elca
      in
      check Alcotest.bool "query returned results" true (hits <> []);
      let s = Jstore.stats store in
      check Alcotest.int "payloads = query terms" (List.length ids)
        s.payloads_decoded;
      let total =
        List.fold_left (fun a id -> a + Jstore.term_bytes store id) 0 ids
      in
      check Alcotest.bool "decoded less than full lists" true
        (s.bytes_decoded < total);
      (* Only levels lmin..1 of each list decode. *)
      check Alcotest.int "columns = k * lmin" (List.length ids * lmin)
        s.columns_decoded;
      check Alcotest.bool "deep levels skipped" true
        (lmin < Array.fold_left (fun m jl -> max m (Jlist.max_len jl)) 0 lists))

let garbage_rejected () =
  let path = tmpfile "xk_jstore_garbage.col" in
  let oc = open_out_bin path in
  output_string oc "garbage bytes here that are not a store";
  close_out oc;
  (match Jstore.open_file path with
  | exception Jstore.Format_error _ -> ()
  | _ -> Alcotest.fail "garbage accepted");
  Sys.remove path

let suite =
  [
    ( "index.jstore",
      [
        tc "columns roundtrip" `Quick columns_roundtrip;
        tc "I/O laziness" `Quick io_laziness;
        tc "garbage rejected" `Quick garbage_rejected;
        QCheck_alcotest.to_alcotest store_backed_queries_prop;
      ] );
  ]
