(* Core algorithms: erased-interval set, level joins, Algorithm 1 (ELCA and
   SLCA) against the oracle, the top-K star join against a naive join, and
   the join-based top-K against complete evaluation. *)

open Xk_core

let check = Alcotest.check
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Erased intervals                                                    *)

let erased_basics () =
  let e = Erased.create () in
  check Alcotest.bool "empty alive" false (Erased.is_dead e 5);
  Erased.add e ~lo:10 ~hi:20;
  check Alcotest.bool "dead inside" true (Erased.is_dead e 15);
  check Alcotest.bool "alive at hi" false (Erased.is_dead e 20);
  check Alcotest.bool "alive before" false (Erased.is_dead e 9);
  check Alcotest.int "covered" 10 (Erased.covered e ~lo:0 ~hi:100);
  check Alcotest.int "partial" 5 (Erased.covered e ~lo:15 ~hi:30);
  check Alcotest.int "alive" 20 (Erased.alive e ~lo:15 ~hi:40)

let erased_merge () =
  let e = Erased.create () in
  Erased.add e ~lo:10 ~hi:20;
  Erased.add e ~lo:30 ~hi:40;
  Erased.add e ~lo:50 ~hi:60;
  check Alcotest.int "three intervals" 3 (Erased.length e);
  (* Bridge them all. *)
  Erased.add e ~lo:15 ~hi:55;
  check Alcotest.int "merged to one" 1 (Erased.length e);
  check Alcotest.(list (pair int int)) "span" [ (10, 60) ] (Erased.to_list e);
  check Alcotest.int "covered total" 50 (Erased.covered_total e)

let erased_nested () =
  let e = Erased.create () in
  Erased.add e ~lo:0 ~hi:100;
  Erased.add e ~lo:10 ~hi:20;
  check Alcotest.int "still one" 1 (Erased.length e);
  check Alcotest.int "covered total" 100 (Erased.covered_total e)

let erased_add_batch () =
  let e = Erased.create () in
  Erased.add e ~lo:5 ~hi:8;
  Erased.add e ~lo:50 ~hi:60;
  Erased.add_batch e [ (0, 2); (6, 12); (20, 30); (28, 40); (90, 95) ];
  check
    Alcotest.(list (pair int int))
    "merged"
    [ (0, 2); (5, 12); (20, 40); (50, 60); (90, 95) ]
    (Erased.to_list e);
  check Alcotest.int "covered total" (2 + 7 + 20 + 10 + 5) (Erased.covered_total e);
  (* Empty batch and empty intervals are no-ops. *)
  Erased.add_batch e [];
  Erased.add_batch e [ (3, 3) ];
  check Alcotest.int "unchanged" 5 (Erased.length e)

let erased_iter_alive () =
  let e = Erased.create () in
  Erased.add e ~lo:10 ~hi:20;
  Erased.add e ~lo:30 ~hi:35;
  let collect ~lo ~hi =
    let acc = ref [] in
    Erased.iter_alive e ~lo ~hi (fun a b -> acc := (a, b) :: !acc);
    List.rev !acc
  in
  check Alcotest.(list (pair int int)) "spanning" [ (0, 10); (20, 30); (35, 40) ]
    (collect ~lo:0 ~hi:40);
  check Alcotest.(list (pair int int)) "inside dead" [] (collect ~lo:12 ~hi:18);
  check Alcotest.(list (pair int int)) "all alive" [ (21, 29) ] (collect ~lo:21 ~hi:29);
  check Alcotest.(list (pair int int)) "edges" [ (20, 30) ] (collect ~lo:15 ~hi:30)

(* add_batch must agree with repeated single adds; iter_alive must cover
   exactly the complement. *)
let erased_batch_prop =
  QCheck.Test.make ~count:500 ~name:"add_batch = repeated add; iter_alive complements"
    QCheck.(pair (int_bound 1_000_000) (int_range 0 30))
    (fun (seed, nb) ->
      let rng = Xk_datagen.Rng.create seed in
      let size = 150 in
      let a = Erased.create () and b = Erased.create () in
      (* Pre-existing intervals. *)
      for _ = 1 to 5 do
        let lo = Xk_datagen.Rng.int rng size in
        let hi = lo + Xk_datagen.Rng.int rng (size - lo) in
        Erased.add a ~lo ~hi;
        Erased.add b ~lo ~hi
      done;
      (* A sorted batch. *)
      let batch =
        List.init nb (fun _ ->
            let lo = Xk_datagen.Rng.int rng size in
            (lo, lo + Xk_datagen.Rng.int rng (size - lo)))
        |> List.sort compare
      in
      Erased.add_batch a batch;
      List.iter (fun (lo, hi) -> Erased.add b ~lo ~hi) batch;
      let ok = ref (Erased.to_list a = Erased.to_list b) in
      (* iter_alive vs is_dead. *)
      let alive = Array.make size false in
      Erased.iter_alive a ~lo:0 ~hi:size (fun l h ->
          for x = l to h - 1 do
            alive.(x) <- true
          done);
      for x = 0 to size - 1 do
        if alive.(x) = Erased.is_dead a x then ok := false
      done;
      !ok)

(* Reference implementation: a boolean array. *)
let erased_prop =
  QCheck.Test.make ~count:500 ~name:"erased intervals vs boolean array"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 60))
    (fun (seed, ops) ->
      let rng = Xk_datagen.Rng.create seed in
      let size = 200 in
      let reference = Array.make size false in
      let e = Erased.create () in
      let ok = ref true in
      for _ = 1 to ops do
        let lo = Xk_datagen.Rng.int rng size in
        let hi = lo + Xk_datagen.Rng.int rng (size - lo) in
        Erased.add e ~lo ~hi;
        Array.fill reference lo (hi - lo) true;
        (* Spot-check queries. *)
        for _ = 1 to 5 do
          let qlo = Xk_datagen.Rng.int rng size in
          let qhi = qlo + Xk_datagen.Rng.int rng (size - qlo) in
          let expect = ref 0 in
          for x = qlo to qhi - 1 do
            if reference.(x) then incr expect
          done;
          if Erased.covered e ~lo:qlo ~hi:qhi <> !expect then ok := false;
          let row = Xk_datagen.Rng.int rng size in
          if Erased.is_dead e row <> reference.(row) then ok := false
        done
      done;
      let total = Array.fold_left (fun a b -> if b then a + 1 else a) 0 reference in
      !ok && Erased.covered_total e = total)

(* ------------------------------------------------------------------ *)
(* Level join                                                          *)

let column_of_values values =
  Xk_index.Column.build (Array.map (fun v -> [| v |]) values) ~level:1

let naive_intersection (cols : Xk_index.Column.t array) =
  let values c =
    Array.to_list (Array.map (fun (r : Xk_index.Column.run) -> r.value) (Xk_index.Column.runs c))
  in
  match Array.to_list cols with
  | [] -> []
  | first :: rest ->
      List.filter
        (fun v -> List.for_all (fun c -> List.mem v (values c)) rest)
        (values first)

let level_join_matches_naive plan () =
  let rng = Xk_datagen.Rng.create 99 in
  for _ = 1 to 50 do
    let k = 2 + Xk_datagen.Rng.int rng 3 in
    let cols =
      Array.init k (fun _ ->
          let n = Xk_datagen.Rng.int rng 30 in
          let v = ref 0 in
          column_of_values
            (Array.init n (fun _ ->
                 v := !v + 1 + Xk_datagen.Rng.int rng 4;
                 !v)))
    in
    let expected = naive_intersection cols in
    let got =
      List.map (fun (m : Level_join.match_) -> m.value) (Level_join.join ~plan cols)
    in
    check Alcotest.(list int) "match values" expected (List.sort Int.compare got)
  done

let level_join_runs_aligned () =
  let cols =
    [|
      column_of_values [| 1; 3; 5; 7 |];
      column_of_values [| 2; 3; 4; 5; 6; 7; 8; 9; 10 |];
    |]
  in
  let ms = Level_join.join ~plan:Level_join.Dynamic cols in
  List.iter
    (fun (m : Level_join.match_) ->
      Array.iteri
        (fun i (r : Xk_index.Column.run) ->
          (* The run in slot i must come from column i and hold the value. *)
          check Alcotest.int "run value" m.value r.value;
          match Xk_index.Column.find cols.(i) m.value with
          | Some r' -> check Alcotest.int "run start" r'.start_row r.start_row
          | None -> Alcotest.fail "value missing from column")
        m.runs)
    ms;
  check Alcotest.(list int) "values" [ 3; 5; 7 ]
    (List.sort Int.compare (List.map (fun (m : Level_join.match_) -> m.value) ms))

let level_join_stats () =
  let small = column_of_values (Array.init 3 (fun i -> (i * 100) + 1)) in
  let big = column_of_values (Array.init 1000 (fun i -> i + 1)) in
  let stats = Level_join.new_stats () in
  ignore (Level_join.join ~stats ~plan:Level_join.Dynamic [| small; big |]);
  check Alcotest.int "dynamic chose index join" 1 stats.index_joins;
  let stats = Level_join.new_stats () in
  ignore (Level_join.join ~stats ~plan:Level_join.Force_merge [| small; big |]);
  check Alcotest.int "forced merge" 1 stats.merge_joins

(* ------------------------------------------------------------------ *)
(* Algorithm 1 vs oracle                                               *)

let join_vs_oracle semantics name =
  QCheck.Test.make ~count:300 ~name
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, k) ->
      let eng = Tutil.random_engine seed in
      let rng = Xk_datagen.Rng.create (seed + 13) in
      let q = Tutil.random_query rng ~k ~alphabet:4 in
      let expected = Engine.query ~semantics ~algorithm:Engine.Oracle eng q in
      let actual = Engine.query ~semantics ~algorithm:Engine.Join_based eng q in
      Tutil.check_same_hits "join vs oracle" expected actual;
      true)

let join_plans_agree =
  QCheck.Test.make ~count:150 ~name:"forced merge/index plans give same ELCAs"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let eng = Tutil.random_engine seed in
      let rng = Xk_datagen.Rng.create (seed + 3) in
      let q = Tutil.random_query rng ~k:2 ~alphabet:3 in
      let m = Engine.query ~algorithm:Engine.Join_based ~plan:Level_join.Force_merge eng q in
      let i = Engine.query ~algorithm:Engine.Join_based ~plan:Level_join.Force_index eng q in
      let d = Engine.query ~algorithm:Engine.Join_based ~plan:Level_join.Dynamic eng q in
      Tutil.check_same_hits "merge vs index" m i;
      Tutil.check_same_hits "merge vs dynamic" m d;
      true)

let join_empty_keyword () =
  let eng = Engine.of_string "<r><a>xml</a></r>" in
  check Alcotest.int "missing keyword empty" 0
    (List.length (Engine.query eng [ "xml"; "ghost" ]))

let join_single_keyword () =
  let eng = Engine.of_string "<r><a>xml <b>xml</b></a><c>xml</c></r>" in
  (* k=1: every occurrence node is an ELCA. *)
  let hits = Engine.query ~algorithm:Engine.Join_based eng [ "xml" ] in
  let oracle = Engine.query ~algorithm:Engine.Oracle eng [ "xml" ] in
  Tutil.check_same_hits "k=1" oracle hits;
  check Alcotest.int "three occurrences" 3 (List.length hits)

let paper_example () =
  (* A hand-checked instance of the running example's structure: two
     keywords whose deepest co-occurrences exclude their ancestors. *)
  let eng =
    Engine.of_string
      {|<db>
          <conf>
            <paper><title>xml data</title></paper>
            <paper><title>data mining</title></paper>
          </conf>
          <conf>
            <paper><title>xml</title></paper>
            <paper><title>data</title></paper>
          </conf>
        </db>|}
  in
  let nodes hits = List.sort Int.compare (Xk_baselines.Hit.nodes hits) in
  (* Node numbering (doc order): 0 db, 1 conf1, 2 paper, 3 title, 4 "xml
     data", 5 paper, 6 title, 7 "data mining", 8 conf2, 9 paper, 10 title,
     11 "xml", 12 paper, 13 title, 14 "data". *)
  let elca = Engine.query ~semantics:Engine.Elca eng [ "xml"; "data" ] in
  check Alcotest.(list int) "ELCAs" [ 4; 8 ] (nodes elca);
  let slca = Engine.query ~semantics:Engine.Slca eng [ "xml"; "data" ] in
  check Alcotest.(list int) "SLCAs" [ 4; 8 ] (nodes slca);
  (* conf2 (node 8) scores lower: its witnesses sit 3 levels down. *)
  (match Xk_baselines.Hit.sort_desc elca with
  | [ first; second ] ->
      check Alcotest.int "text node wins" 4 first.node;
      check Alcotest.int "conf second" 8 second.node
  | _ -> Alcotest.fail "expected two results");
  (* With "mining" added, only conf1 subsumes all three keywords. *)
  let three = Engine.query eng [ "xml"; "data"; "mining" ] in
  check Alcotest.(list int) "three keywords" [ 1 ] (nodes three)

(* ------------------------------------------------------------------ *)
(* Star join                                                           *)

let naive_star_topk (rels : Star_join.relation array) ~k =
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun i (r : Star_join.relation) ->
      Array.iteri
        (fun p key ->
          let slots =
            match Hashtbl.find_opt tbl key with
            | Some s -> s
            | None ->
                let s = Array.make (Array.length rels) neg_infinity in
                Hashtbl.add tbl key s;
                s
          in
          if r.scores.(p) > slots.(i) then slots.(i) <- r.scores.(p))
        r.keys)
    rels;
  let all =
    Hashtbl.fold
      (fun key slots acc ->
        if Array.for_all (fun s -> s > neg_infinity) slots then
          { Star_join.key; total = Array.fold_left ( +. ) 0. slots } :: acc
        else acc)
      tbl []
  in
  let sorted =
    List.sort
      (fun (a : Star_join.result) b -> Float.compare b.total a.total)
      all
  in
  List.filteri (fun i _ -> i < k) sorted

let random_relation rng ~n ~key_space =
  let keys = Xk_datagen.Rng.sample rng ~n:key_space ~k:(min n key_space) in
  let scores =
    Array.init (Array.length keys) (fun _ -> Xk_datagen.Rng.float rng)
  in
  Array.sort (fun a b -> Float.compare b a) scores;
  Star_join.relation ~keys ~scores

let star_join_prop threshold name =
  QCheck.Test.make ~count:300 ~name
    QCheck.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (seed, k) ->
      let rng = Xk_datagen.Rng.create seed in
      let rels =
        Array.init k (fun _ ->
            random_relation rng ~n:(5 + Xk_datagen.Rng.int rng 40) ~key_space:30)
      in
      let want = 1 + Xk_datagen.Rng.int rng 8 in
      let expected = naive_star_topk rels ~k:want in
      let actual = Star_join.topk ~threshold rels ~k:want in
      List.length expected = List.length actual
      && List.for_all2
           (fun (e : Star_join.result) (a : Star_join.result) ->
             Float.abs (e.total -. a.total) < 1e-9)
           expected actual)

let star_join_tight_reads_less () =
  (* On a workload with matching keys near the top, the paper's threshold
     must terminate with no more sorted accesses than HRJN's. *)
  let rng = Xk_datagen.Rng.create 4242 in
  let trials = ref 0 and tight_wins = ref 0 and ties = ref 0 in
  for _ = 1 to 50 do
    let rels =
      Array.init 3 (fun _ -> random_relation rng ~n:60 ~key_space:80)
    in
    let s_classic = Star_join.new_stats () in
    ignore (Star_join.topk ~stats:s_classic ~threshold:Star_join.Classic rels ~k:5);
    let s_tight = Star_join.new_stats () in
    ignore (Star_join.topk ~stats:s_tight ~threshold:Star_join.Tight rels ~k:5);
    incr trials;
    if s_tight.pulled < s_classic.pulled then incr tight_wins
    else if s_tight.pulled = s_classic.pulled then incr ties
  done;
  check Alcotest.bool "tight never loses" true (!tight_wins + !ties = !trials);
  check Alcotest.bool "tight wins sometimes" true (!tight_wins > 0)

let star_join_early_termination () =
  (* A matching pair at the very top must be emitted after a handful of
     accesses, not after draining the inputs. *)
  let keys = Array.init 1000 (fun i -> i) in
  let scores = Array.init 1000 (fun i -> 1. /. float_of_int (i + 1)) in
  let r1 = Star_join.relation ~keys ~scores in
  let r2 = Star_join.relation ~keys ~scores in
  let stats = Star_join.new_stats () in
  let out = Star_join.topk ~stats [| r1; r2 |] ~k:1 in
  (match out with
  | [ r ] ->
      check Alcotest.int "key" 0 r.key;
      check (Alcotest.float 1e-9) "total" 2. r.total
  | _ -> Alcotest.fail "expected one result");
  check Alcotest.bool "early termination" true (stats.pulled < 100)

(* ------------------------------------------------------------------ *)
(* Join-based top-K vs complete evaluation                             *)

let topk_vs_complete ?(semantics = Engine.Elca) threshold name =
  QCheck.Test.make ~count:300 ~name
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, k) ->
      let eng = Tutil.random_engine seed in
      let rng = Xk_datagen.Rng.create (seed + 21) in
      let q = Tutil.random_query rng ~k ~alphabet:4 in
      let want = 1 + Xk_datagen.Rng.int rng 6 in
      let full = Engine.query ~semantics ~algorithm:Engine.Oracle eng q in
      let ids =
        List.filter_map (Xk_index.Index.term_id (Engine.index eng)) q
      in
      let topk =
        if List.length ids < List.length q then []
        else begin
          let slists =
            Array.of_list
              (List.map (Xk_index.Index.score_list (Engine.index eng))
                 (List.sort_uniq Int.compare ids))
          in
          let sem =
            match semantics with
            | Engine.Elca -> Topk_keyword.Elca
            | Engine.Slca -> Topk_keyword.Slca
          in
          Topk_keyword.topk ~threshold ~semantics:sem slists
            (Xk_index.Index.damping (Engine.index eng))
            ~k:want
          |> List.map (fun (h : Join_query.hit) ->
                 match
                   Xk_encoding.Labeling.find (Engine.label eng) ~depth:h.level
                     ~jnum:h.value
                 with
                 | Some node -> { Xk_baselines.Hit.node; score = h.score }
                 | None -> assert false)
        end
      in
      Tutil.check_topk name ~k:want full topk;
      true)

let hybrid_matches_topk =
  QCheck.Test.make ~count:200 ~name:"hybrid top-K matches oracle top-K"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let eng = Tutil.random_engine seed in
      let rng = Xk_datagen.Rng.create (seed + 5) in
      let q = Tutil.random_query rng ~k:2 ~alphabet:3 in
      let full = Engine.query ~algorithm:Engine.Oracle eng q in
      let actual = Engine.query_topk ~algorithm:Engine.Hybrid eng q ~k:5 in
      Tutil.check_topk "hybrid" ~k:5 full actual;
      true)

let topk_stats_early_exit () =
  (* Correlated keywords at a deep level: the top-K join must not visit
     every column. *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<db>";
  for i = 0 to 199 do
    Buffer.add_string buf
      (Printf.sprintf "<x><y><z>alpha beta gamma%d</z></y></x>" i)
  done;
  Buffer.add_string buf "</db>";
  let eng = Engine.of_string (Buffer.contents buf) in
  let stats = Topk_keyword.new_stats () in
  let hits = Engine.query_topk ~stats eng [ "alpha"; "beta" ] ~k:5 in
  check Alcotest.int "five results" 5 (List.length hits);
  check Alcotest.bool "early exit happened" true (stats.early_exit_level > 1);
  check Alcotest.bool "did not pull everything" true (stats.pulled < 2 * 200)

let suite =
  [
    ( "core.erased",
      [
        tc "basics" `Quick erased_basics;
        tc "merge" `Quick erased_merge;
        tc "nested" `Quick erased_nested;
        tc "add_batch" `Quick erased_add_batch;
        tc "iter_alive" `Quick erased_iter_alive;
        QCheck_alcotest.to_alcotest erased_prop;
        QCheck_alcotest.to_alcotest erased_batch_prop;
      ] );
    ( "core.level_join",
      [
        tc "dynamic vs naive" `Quick (level_join_matches_naive Level_join.Dynamic);
        tc "merge vs naive" `Quick (level_join_matches_naive Level_join.Force_merge);
        tc "index vs naive" `Quick (level_join_matches_naive Level_join.Force_index);
        tc "runs aligned" `Quick level_join_runs_aligned;
        tc "plan statistics" `Quick level_join_stats;
      ] );
    ( "core.join_query",
      [
        tc "missing keyword" `Quick join_empty_keyword;
        tc "single keyword" `Quick join_single_keyword;
        tc "paper-style example" `Quick paper_example;
        QCheck_alcotest.to_alcotest
          (join_vs_oracle Engine.Elca "join ELCA = oracle (random trees)");
        QCheck_alcotest.to_alcotest
          (join_vs_oracle Engine.Slca "join SLCA = oracle (random trees)");
        QCheck_alcotest.to_alcotest join_plans_agree;
      ] );
    ( "core.star_join",
      [
        tc "tight threshold reads less" `Quick star_join_tight_reads_less;
        tc "early termination" `Quick star_join_early_termination;
        QCheck_alcotest.to_alcotest
          (star_join_prop Star_join.Tight "star join tight = naive");
        QCheck_alcotest.to_alcotest
          (star_join_prop Star_join.Classic "star join classic = naive");
      ] );
    ( "core.topk",
      [
        tc "early exit on correlated data" `Quick topk_stats_early_exit;
        QCheck_alcotest.to_alcotest
          (topk_vs_complete Topk_keyword.Tight "top-K join = oracle top-K (tight)");
        QCheck_alcotest.to_alcotest
          (topk_vs_complete Topk_keyword.Classic "top-K join = oracle top-K (classic)");
        QCheck_alcotest.to_alcotest
          (topk_vs_complete ~semantics:Engine.Slca Topk_keyword.Tight
             "SLCA top-K join = oracle SLCA top-K");
        QCheck_alcotest.to_alcotest hybrid_matches_topk;
      ] );
  ]
