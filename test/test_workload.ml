(* Workload construction details not covered by the datagen suite. *)

let check = Alcotest.check
let tc = Alcotest.test_case

let small_engine =
  lazy
    (let corpus = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled 0.1) in
     Xk_core.Engine.create corpus.doc)

let pick_near_widens () =
  (* Asking for a frequency with no inhabitants must widen the window
     rather than fail, as long as the corpus has any term at all. *)
  let idx = Xk_core.Engine.index (Lazy.force small_engine) in
  let rng = Xk_datagen.Rng.create 5 in
  let w = Xk_workload.Workload.pick_near rng idx ~near:123_456_789 in
  check Alcotest.bool "found something" true (String.length w > 0)

let terms_in_range_sorted () =
  let idx = Xk_core.Engine.index (Lazy.force small_engine) in
  let pool = Xk_workload.Workload.terms_in_df_range idx ~lo:10 ~hi:100 in
  check Alcotest.bool "non-empty" true (Array.length pool > 0);
  Array.iter
    (fun id ->
      let df = Xk_index.Index.df idx id in
      check Alcotest.bool "df in range" true (df >= 10 && df <= 100))
    pool;
  (* Most frequent first. *)
  for i = 1 to Array.length pool - 1 do
    check Alcotest.bool "descending df" true
      (Xk_index.Index.df idx pool.(i) <= Xk_index.Index.df idx pool.(i - 1))
  done

let queries_deterministic () =
  let idx = Xk_core.Engine.index (Lazy.force small_engine) in
  let mk () =
    let rng = Xk_datagen.Rng.create 77 in
    Xk_workload.Workload.random_queries rng idx ~k:3
      ~high:(Xk_workload.Workload.max_df idx)
      ~low:20 ~n:10
  in
  check Alcotest.bool "same seed, same workload" true (mk () = mk ())

let max_df_excludes_controls () =
  let idx = Xk_core.Engine.index (Lazy.force small_engine) in
  let high = Xk_workload.Workload.max_df idx in
  (* The planted control terms can be frequent, but max_df must come from
     the natural vocabulary. *)
  check Alcotest.bool "positive" true (high > 0);
  let ids = Xk_index.Index.terms_by_df idx in
  let top_natural =
    let rec go i =
      if Xk_workload.Workload.has_digit (Xk_index.Index.term idx ids.(i)) then
        go (i + 1)
      else Xk_index.Index.df idx ids.(i)
    in
    go 0
  in
  check Alcotest.int "matches top natural term" top_natural high

let suite =
  [
    ( "workload",
      [
        tc "pick_near widens" `Quick pick_near_widens;
        tc "terms_in_df_range" `Quick terms_in_range_sorted;
        tc "deterministic workloads" `Quick queries_deterministic;
        tc "max_df excludes control terms" `Quick max_df_excludes_controls;
      ] );
  ]
