(* Shared helpers for the test suites: random corpora, random queries and
   tolerant result comparison. *)

let random_doc ?config seed =
  let rng = Xk_datagen.Rng.create seed in
  Xk_datagen.Random_tree.generate ?config rng

let random_engine ?config seed = Xk_core.Engine.create (random_doc ?config seed)

(* A query of [k] distinct keywords from the random-tree alphabet. *)
let random_query rng ~k ~alphabet =
  let ks = Xk_datagen.Rng.sample rng ~n:alphabet ~k in
  Array.to_list (Array.map Xk_datagen.Random_tree.keyword ks)

let sort_hits (hits : Xk_baselines.Hit.t list) =
  List.sort Xk_baselines.Hit.compare_node hits

let score_tolerance = 1e-9

(* Same node sets with matching scores. *)
let same_hits (a : Xk_baselines.Hit.t list) (b : Xk_baselines.Hit.t list) =
  let a = sort_hits a and b = sort_hits b in
  List.length a = List.length b
  && List.for_all2
       (fun (x : Xk_baselines.Hit.t) (y : Xk_baselines.Hit.t) ->
         x.node = y.node && Float.abs (x.score -. y.score) < score_tolerance)
       a b

let pp_hits hits =
  String.concat "; "
    (List.map
       (fun (h : Xk_baselines.Hit.t) -> Printf.sprintf "(%d, %.6f)" h.node h.score)
       (sort_hits hits))

let check_same_hits msg expected actual =
  if not (same_hits expected actual) then
    Alcotest.failf "%s:\n  expected %s\n  actual   %s" msg (pp_hits expected)
      (pp_hits actual)

(* Top-K validation robust to ties: the returned score sequence must equal
   the oracle's best-K scores, and each returned node must carry its true
   score. *)
let check_topk msg ~k (full : Xk_baselines.Hit.t list)
    (topk : Xk_baselines.Hit.t list) =
  let expected_scores =
    List.filteri (fun i _ -> i < k) (Xk_baselines.Hit.sort_desc full)
    |> List.map (fun (h : Xk_baselines.Hit.t) -> h.score)
  in
  let actual_scores = List.map (fun (h : Xk_baselines.Hit.t) -> h.score) topk in
  if List.length expected_scores <> List.length actual_scores then
    Alcotest.failf "%s: expected %d results, got %d (full=%s, topk=%s)" msg
      (List.length expected_scores)
      (List.length actual_scores)
      (pp_hits full) (pp_hits topk);
  List.iter2
    (fun e a ->
      if Float.abs (e -. a) > score_tolerance then
        Alcotest.failf "%s: score sequences differ\n  expected %s\n  actual %s"
          msg
          (String.concat ", " (List.map (Printf.sprintf "%.6f") expected_scores))
          (String.concat ", " (List.map (Printf.sprintf "%.6f") actual_scores)))
    expected_scores actual_scores;
  (* Per-node score fidelity. *)
  List.iter
    (fun (h : Xk_baselines.Hit.t) ->
      match List.find_opt (fun (f : Xk_baselines.Hit.t) -> f.node = h.node) full with
      | Some f ->
          if Float.abs (f.score -. h.score) > score_tolerance then
            Alcotest.failf "%s: node %d score %.9f, oracle says %.9f" msg h.node
              h.score f.score
      | None -> Alcotest.failf "%s: node %d is not a result at all" msg h.node)
    topk
