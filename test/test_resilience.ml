(* Resilience: budget semantics, anytime partial-prefix correctness,
   fault-tolerant index IO, and service-level outcomes under injected
   faults, deadlines and overload. *)

open Xk_resilience

let check = Alcotest.check
let tc = Alcotest.test_case

(* --- Budget primitives --------------------------------------------- *)

let budget_ticks () =
  let b = Budget.create ~ticks:5 () in
  for i = 1 to 5 do
    check Alcotest.bool (Printf.sprintf "tick %d alive" i) true (Budget.alive b)
  done;
  check Alcotest.bool "tick 6 expired" false (Budget.alive b);
  check Alcotest.bool "stays expired" false (Budget.alive b);
  check Alcotest.bool "exhausted" true (Budget.exhausted b);
  Alcotest.check_raises "check raises" Budget.Expired (fun () ->
      Budget.check (Budget.create ~ticks:0 ()))

let budget_cancel () =
  let b = Budget.create () in
  check Alcotest.bool "alive before cancel" true (Budget.alive b);
  Budget.cancel b;
  check Alcotest.bool "dead after cancel" false (Budget.alive b);
  check Alcotest.bool "exhausted after cancel" true (Budget.exhausted b);
  (match Budget.cancel Budget.unlimited with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "cancelling the unlimited budget accepted")

let budget_deadline () =
  (* A deadline in the past trips on the first poll, deterministically. *)
  let b = Budget.create ~deadline_ms:(-1.) () in
  check Alcotest.bool "expired deadline" false (Budget.alive b);
  check Alcotest.bool "exhausted" true (Budget.exhausted b);
  let u = Budget.unlimited in
  for _ = 1 to 100 do
    check Alcotest.bool "unlimited alive" true (Budget.alive u)
  done;
  check Alcotest.bool "unlimited never exhausted" false (Budget.exhausted u);
  check Alcotest.bool "unlimited is not limited" false (Budget.is_limited u);
  check Alcotest.bool "deadline is limited" true
    (Budget.is_limited (Budget.create ~deadline_ms:1000. ()))

(* --- Anytime top-K: partial results are a prefix of the full top-K --- *)

let scores (hits : Xk_baselines.Hit.t list) =
  List.map (fun (h : Xk_baselines.Hit.t) -> h.score) hits

let assert_prefix msg (full : Xk_baselines.Hit.t list)
    (partial : Xk_baselines.Hit.t list) =
  let fs = scores full and ps = scores partial in
  if List.length ps > List.length fs then
    Alcotest.failf "%s: partial larger than full" msg;
  (* The emitted score sequence must be the first |partial| scores of the
     full top-K... *)
  List.iteri
    (fun i p ->
      let f = List.nth fs i in
      if Float.abs (f -. p) > Tutil.score_tolerance then
        Alcotest.failf "%s: score %d is %.9f, full run has %.9f" msg i p f)
    ps;
  (* ... and every emitted hit is a true result with its true score. *)
  List.iter
    (fun (h : Xk_baselines.Hit.t) ->
      match
        List.find_opt (fun (f : Xk_baselines.Hit.t) -> f.node = h.node) full
      with
      | Some f ->
          if Float.abs (f.score -. h.score) > Tutil.score_tolerance then
            Alcotest.failf "%s: node %d score drifted" msg h.node
      | None -> Alcotest.failf "%s: node %d not in the full top-K" msg h.node)
    partial

(* A term-rich corpus and queries over terms that actually occur, so the
   evaluators do real level-by-level work and the budget is polled. *)
let rich_engine seed =
  Xk_core.Engine.create
    (Tutil.random_doc
       ~config:
         {
           Xk_datagen.Random_tree.default with
           max_depth = 7;
           max_children = 5;
           keywords = 24;
         }
       seed)

let frequent_query eng i =
  let idx = Xk_core.Engine.index eng in
  let ids = Xk_index.Index.terms_by_df idx in
  let word j = Xk_index.Index.term idx ids.(j mod Array.length ids) in
  [ word i; word (i + 1) ]

let partial_prefix () =
  let eng = rich_engine 1234 in
  let strict = ref 0 in
  for qi = 1 to 8 do
    let q = frequent_query eng (qi - 1) in
    let full = Xk_core.Engine.query_topk eng q ~k:10 in
    if full = [] then Alcotest.failf "query %d has no results" qi;
    List.iter
      (fun ticks ->
        let budget = Budget.create ~ticks () in
        let partial = Xk_core.Engine.query_topk ~budget eng q ~k:10 in
        let msg = Printf.sprintf "query %d ticks %d" qi ticks in
        assert_prefix msg full partial;
        if Budget.exhausted budget then begin
          if
            List.length partial > 0 && List.length partial < List.length full
          then incr strict
        end
        else
          check Alcotest.int (msg ^ ": unexhausted budget = full run")
            (List.length full) (List.length partial))
      [ 1; 2; 3; 5; 8; 13; 21; 55; 144; 1_000_000 ]
  done;
  (* The sweep must actually exercise the anytime cutoff somewhere. *)
  check Alcotest.bool "some strict partials observed" true (!strict > 0)

let partial_prefix_hybrid () =
  let eng = rich_engine 4321 in
  for qi = 0 to 3 do
    let q = frequent_query eng qi in
    let full = Xk_core.Engine.query_topk ~algorithm:Hybrid eng q ~k:8 in
    List.iter
      (fun ticks ->
        let budget = Budget.create ~ticks () in
        let partial =
          Xk_core.Engine.query_topk ~algorithm:Hybrid ~budget eng q ~k:8
        in
        assert_prefix "hybrid" full partial)
      [ 1; 4; 16; 64 ]
  done

let complete_raises () =
  let eng = rich_engine 1234 in
  let q = frequent_query eng 0 in
  if Xk_core.Engine.query eng q = [] then Alcotest.fail "query has no results";
  List.iter
    (fun algorithm ->
      let budget = Budget.create ~ticks:0 () in
      match Xk_core.Engine.query ~algorithm ~budget eng q with
      | exception Budget.Expired -> ()
      | _ -> Alcotest.fail "complete evaluation ignored an expired budget")
    Xk_core.Engine.[ Join_based; Stack_based; Index_based ]

let outcome_dispatch () =
  let eng = rich_engine 77 in
  let q = frequent_query eng 0 in
  let topk = Xk_core.Engine.topk_request ~k:5 q in
  let complete = Xk_core.Engine.complete_request q in
  (* No deadline: both run to completion. *)
  (match Xk_core.Engine.run_request_outcome eng topk with
  | Xk_core.Engine.Done hits ->
      Tutil.check_same_hits "outcome = run_request" hits
        (Xk_core.Engine.run_request eng topk)
  | _ -> Alcotest.fail "unlimited top-K not Done");
  (* Expired deadline: anytime degrades, complete times out. *)
  (match
     Xk_core.Engine.run_request_outcome
       ~budget:(Budget.create ~deadline_ms:(-1.) ())
       eng topk
   with
  | Xk_core.Engine.Partial _ -> ()
  | _ -> Alcotest.fail "expired top-K not Partial");
  (match
     Xk_core.Engine.run_request_outcome
       ~budget:(Budget.create ~ticks:0 ())
       eng complete
   with
  | Xk_core.Engine.Timed_out -> ()
  | _ -> Alcotest.fail "expired complete not Timed_out");
  (* The deadline can also travel inside the request. *)
  match
    Xk_core.Engine.run_request_outcome eng
      (Xk_core.Engine.topk_request ~deadline_ms:(-1.) ~k:5 q)
  with
  | Xk_core.Engine.Partial _ -> ()
  | _ -> Alcotest.fail "request-carried deadline ignored"

(* --- Fault-tolerant index IO --------------------------------------- *)

let with_saved_index f =
  let eng = Tutil.random_engine 2020 in
  let idx = Xk_core.Engine.index eng in
  let label = Xk_index.Index.label idx in
  let path = Filename.temp_file "xk_resilience" ".idx" in
  Xk_index.Index_io.save idx path;
  Fun.protect
    ~finally:(fun () ->
      Fault_injection.reset ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f idx label path)

let load_ok label path =
  match Xk_index.Index_io.load_result ~backoff_ms:0. label path with
  | Ok idx -> idx
  | Error e ->
      Alcotest.failf "load failed: %s" (Xk_index.Index_io.load_error_message e)

let io_transients_heal () =
  with_saved_index (fun idx label path ->
      Fault_injection.configure { Fault_injection.none with io_failures = 2 };
      let reloaded = load_ok label path in
      check Alcotest.int "terms survive retries"
        (Xk_index.Index.term_count idx)
        (Xk_index.Index.term_count reloaded))

let io_transients_exhaust () =
  with_saved_index (fun _ label path ->
      Fault_injection.configure { Fault_injection.none with io_failures = 10 };
      match Xk_index.Index_io.load_result ~retries:2 ~backoff_ms:0. label path with
      | Error { error = Io_failed _; attempts = 3 } -> ()
      | Error e ->
          Alcotest.failf "wrong class: %s"
            (Xk_index.Index_io.load_error_message e)
      | Ok _ -> Alcotest.fail "10 injected failures survived 2 retries")

let torn_reads_heal () =
  with_saved_index (fun idx label path ->
      (* Byte-flipped reads fail the checksum; the re-read is clean. *)
      Fault_injection.configure { Fault_injection.none with corrupt_reads = 2 };
      let reloaded = load_ok label path in
      check Alcotest.int "terms survive torn reads"
        (Xk_index.Index.term_count idx)
        (Xk_index.Index.term_count reloaded))

let persistent_corruption () =
  with_saved_index (fun _ label path ->
      Fault_injection.configure Fault_injection.none;
      (* Flip a byte of the payload on disk: every re-read sees it. *)
      let data =
        let ic = open_in_bin path in
        let d = really_input_string ic (in_channel_length ic) in
        close_in ic;
        d
      in
      let b = Bytes.of_string data in
      let pos = Bytes.length b - 5 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      match Xk_index.Index_io.load_result ~backoff_ms:0. label path with
      | Error { error = Corrupted _; _ } -> ()
      | Error e ->
          Alcotest.failf "wrong class: %s"
            (Xk_index.Index_io.load_error_message e)
      | Ok _ -> Alcotest.fail "corrupted payload loaded")

let truncation_detected () =
  with_saved_index (fun _ label path ->
      Fault_injection.configure Fault_injection.none;
      let full = Xk_index.Index_io.file_size path in
      List.iter
        (fun keep ->
          let data =
            let ic = open_in_bin path in
            let d = really_input_string ic keep in
            close_in ic;
            d
          in
          let cut = path ^ ".cut" in
          let oc = open_out_bin cut in
          output_string oc data;
          close_out oc;
          Fun.protect
            ~finally:(fun () -> try Sys.remove cut with Sys_error _ -> ())
            (fun () ->
              match
                Xk_index.Index_io.load_result ~backoff_ms:0. label cut
              with
              | Error { error = Truncated _; _ } -> ()
              | Error e ->
                  Alcotest.failf "keep=%d: wrong class: %s" keep
                    (Xk_index.Index_io.load_error_message e)
              | Ok _ -> Alcotest.failf "keep=%d: truncated segment loaded" keep))
        [ 4; 9; full / 2; full - 1 ])

let garbage_classified () =
  with_saved_index (fun _ label path ->
      Fault_injection.configure Fault_injection.none;
      let write s =
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc
      in
      write "this is not an index segment at all";
      (match Xk_index.Index_io.load_result ~backoff_ms:0. label path with
      | Error { error = Corrupted _; _ } -> ()
      | _ -> Alcotest.fail "garbage not classified as corrupted");
      write "XKIDX001legacy-body";
      (match Xk_index.Index_io.load_result ~backoff_ms:0. label path with
      | Error { error = Corrupted msg; _ } ->
          check Alcotest.bool "legacy message" true (String.length msg > 0)
      | _ -> Alcotest.fail "v1 segment not classified as corrupted");
      (* The legacy raising wrapper still raises on errors. *)
      match Xk_index.Index_io.load label path with
      | exception Xk_index.Index_io.Format_error _ -> ()
      | _ -> Alcotest.fail "legacy load did not raise")

(* --- Service outcomes under faults, deadlines and overload ---------- *)

let sample_requests eng n =
  let idx = Xk_core.Engine.index eng in
  let ids = Xk_index.Index.terms_by_df idx in
  let word i = Xk_index.Index.term idx ids.(i mod Array.length ids) in
  List.init n (fun i ->
      Xk_core.Engine.topk_request ~k:5 [ word i; word (i + 1) ])

let service_failures_captured () =
  Fun.protect ~finally:Fault_injection.reset (fun () ->
      let eng = Tutil.random_engine 31 in
      Fault_injection.configure { Fault_injection.none with query_failures = 2 };
      let svc = Xk_exec.Query_service.create ~domains:2 eng in
      let reqs = sample_requests eng 6 in
      let outcomes = Xk_exec.Query_service.exec_batch svc reqs in
      let failed =
        List.filter Xk_exec.Query_service.is_failure outcomes |> List.length
      in
      check Alcotest.int "exactly the injected failures" 2 failed;
      List.iter
        (fun o ->
          match o with
          | Xk_exec.Query_service.Failed f ->
              check Alcotest.bool "message captured" true
                (String.length f.message > 0)
          | Xk_exec.Query_service.Ok _ -> ()
          | o ->
              Alcotest.failf "unexpected outcome %s"
                (Xk_exec.Query_service.outcome_label o))
        outcomes;
      (* All worker domains survived: a clean batch fully succeeds. *)
      Fault_injection.configure Fault_injection.none;
      let clean = Xk_exec.Query_service.exec_batch svc reqs in
      List.iter
        (fun o ->
          match o with
          | Xk_exec.Query_service.Ok _ -> ()
          | o ->
              Alcotest.failf "after failures: %s"
                (Xk_exec.Query_service.outcome_label o))
        clean;
      let st = Xk_exec.Query_service.stats svc in
      Xk_exec.Query_service.shutdown svc;
      check Alcotest.int "failed counter" 2 st.failed;
      check Alcotest.int "completed counter" (2 * List.length reqs - 2)
        st.completed)

let service_deadlines () =
  Fun.protect ~finally:Fault_injection.reset (fun () ->
      Fault_injection.configure Fault_injection.none;
      let eng = Tutil.random_engine 62 in
      let svc = Xk_exec.Query_service.create ~domains:2 eng in
      let topk = sample_requests eng 4 in
      let complete =
        List.map
          (fun (r : Xk_core.Engine.request) ->
            { r with req_mode = Xk_core.Engine.Complete Join_based })
          topk
      in
      (* An already-expired deadline: anytime requests degrade to Partial,
         complete requests time out; nothing fails. *)
      let out =
        Xk_exec.Query_service.exec_batch ~deadline_ms:(-1.) svc
          (topk @ complete)
      in
      List.iteri
        (fun i o ->
          match (o, i < List.length topk) with
          | Xk_exec.Query_service.Partial _, true -> ()
          | Xk_exec.Query_service.Timeout, false -> ()
          | o, _ ->
              Alcotest.failf "request %d: unexpected %s" i
                (Xk_exec.Query_service.outcome_label o))
        out;
      let st = Xk_exec.Query_service.stats svc in
      check Alcotest.int "partials counted" (List.length topk) st.partials;
      check Alcotest.int "timeouts counted" (List.length complete) st.timeouts;
      (* Without a deadline the same batch fully completes. *)
      let clean = Xk_exec.Query_service.exec_batch svc (topk @ complete) in
      List.iter
        (fun o ->
          match o with
          | Xk_exec.Query_service.Ok _ -> ()
          | o ->
              Alcotest.failf "clean run: %s"
                (Xk_exec.Query_service.outcome_label o))
        clean;
      Xk_exec.Query_service.shutdown svc)

let overload_rejects () =
  Fun.protect ~finally:Fault_injection.reset (fun () ->
      let eng = Tutil.random_engine 93 in
      (* Slow queries + a tiny admission bound + a burst: the submission
         loop runs in microseconds while every admitted job sleeps, so
         exactly [max_queue] requests are admitted. *)
      Fault_injection.configure
        { Fault_injection.none with query_latency_ms = 50. };
      let svc = Xk_exec.Query_service.create ~domains:2 ~max_queue:2 eng in
      let reqs = sample_requests eng 12 in
      let outcomes = Xk_exec.Query_service.exec_batch svc reqs in
      let count p = List.length (List.filter p outcomes) in
      let rejected =
        count (function Xk_exec.Query_service.Rejected -> true | _ -> false)
      in
      let ok =
        count (function Xk_exec.Query_service.Ok _ -> true | _ -> false)
      in
      check Alcotest.bool "overload rejects" true (rejected >= 8);
      check Alcotest.int "admitted requests succeed" (12 - rejected) ok;
      check Alcotest.int "no hard failures" 0
        (count Xk_exec.Query_service.is_failure);
      (* The service remains fully usable after the overload burst (the
         clean batch stays within the admission bound). *)
      Fault_injection.configure Fault_injection.none;
      let clean = Xk_exec.Query_service.exec_batch svc (sample_requests eng 2) in
      List.iter
        (fun o ->
          match o with
          | Xk_exec.Query_service.Ok _ -> ()
          | o ->
              Alcotest.failf "after overload: %s"
                (Xk_exec.Query_service.outcome_label o))
        clean;
      let st = Xk_exec.Query_service.stats svc in
      Xk_exec.Query_service.shutdown svc;
      check Alcotest.int "rejected counter" rejected st.rejected;
      check Alcotest.bool "max_queue recorded" true (st.max_queue = Some 2))

let fault_spec_parsing () =
  (match Fault_injection.of_spec "io,corrupt,latency,query" with
  | Ok c ->
      check Alcotest.bool "io" true (c.io_failures > 0);
      check Alcotest.bool "corrupt" true (c.corrupt_reads > 0);
      check Alcotest.bool "latency" true (c.io_latency_ms > 0.);
      check Alcotest.bool "query" true (c.query_failures > 0)
  | Error msg -> Alcotest.failf "spec rejected: %s" msg);
  match Fault_injection.of_spec "io,bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus fault class accepted"

(* --- Retry policy ---------------------------------------------------- *)

let retry_classification () =
  (* Drive the loop with a scripted error sequence: transients burn the
     retry budget, the first permanent error returns immediately. *)
  let run ~retryable script =
    let q = ref script in
    Retry.with_backoff_info ~retries:3 ~backoff_ms:0.
      ~sleep:(fun _ -> ())
      ~retryable
      (fun () ->
        match !q with
        | [] -> Ok ()
        | r :: rest ->
            q := rest;
            r)
  in
  let transient = function `Transient -> true | `Permanent -> false in
  (match run ~retryable:transient [ Error `Transient; Error `Transient ] with
  | Ok (), 3 -> ()
  | _, n -> Alcotest.failf "two transients should heal on attempt 3, got %d" n);
  (match run ~retryable:transient [ Error `Permanent ] with
  | Error `Permanent, 1 -> ()
  | _, n -> Alcotest.failf "permanent error retried: %d attempts" n);
  (match run ~retryable:transient [ Error `Transient; Error `Permanent ] with
  | Error `Permanent, 2 -> ()
  | _, n ->
      Alcotest.failf "permanent after transient should stop at 2, got %d" n);
  match run ~retryable:transient [] with
  | Ok (), 1 -> ()
  | _, n -> Alcotest.failf "clean first try made %d attempts" n

let retry_backoff_growth () =
  let slept = ref [] in
  let result, attempts =
    Retry.with_backoff_info ~retries:4 ~backoff_ms:2.
      ~sleep:(fun ms -> slept := ms :: !slept)
      ~retryable:(fun _ -> true)
      (fun () -> Error `Transient)
  in
  (match result with
  | Error `Transient -> ()
  | Ok () -> Alcotest.fail "always-failing thunk returned Ok");
  check Alcotest.int "exhaustion reports retries + 1 attempts" 5 attempts;
  check
    Alcotest.(list (float 1e-9))
    "backoff doubles, no sleep after the last attempt" [ 2.; 4.; 8.; 16. ]
    (List.rev !slept);
  (* with_backoff is the same loop minus the attempt count *)
  match
    Retry.with_backoff ~retries:1 ~backoff_ms:0.
      ~sleep:(fun _ -> ())
      ~retryable:(fun _ -> true)
      (fun () -> Error `Transient)
  with
  | Error `Transient -> ()
  | Ok () -> Alcotest.fail "with_backoff disagreed with with_backoff_info"

let jitter_determinism () =
  let draw seed =
    let j = Retry.Jitter.create ~seed () in
    List.init 32 (fun i ->
        Retry.Jitter.next j ~base_ms:100. ~cap_ms:5000.
          ~prev_ms:(100. *. float_of_int (i + 1)))
  in
  check
    Alcotest.(list (float 1e-9))
    "same seed, same delay sequence" (draw 7) (draw 7);
  if draw 7 = draw 8 then
    Alcotest.fail "different seeds produced identical sequences"

let jitter_bounds () =
  let j = Retry.Jitter.create ~seed:11 () in
  let prev = ref 100. in
  for _ = 1 to 200 do
    let d = Retry.Jitter.next j ~base_ms:100. ~cap_ms:2000. ~prev_ms:!prev in
    if d < 100. -. 1e-9 then Alcotest.failf "delay %f below the base" d;
    if d > 2000. +. 1e-9 then Alcotest.failf "delay %f above the cap" d;
    if d > Float.max 100. (!prev *. 3.) +. 1e-9 then
      Alcotest.failf "delay %f above 3x prev (%f)" d !prev;
    prev := d
  done

let retry_jitter_backoff () =
  (* Under jitter the delays are seeded-random within the decorrelated
     envelope, not the deterministic doubling - and still reproducible
     for a fixed seed. *)
  let run seed =
    let slept = ref [] in
    (match
       Retry.with_backoff ~retries:4 ~backoff_ms:10. ~max_backoff_ms:100.
         ~jitter:(Retry.Jitter.create ~seed ())
         ~sleep:(fun ms -> slept := ms :: !slept)
         ~retryable:(fun _ -> true)
         (fun () -> Error `Transient)
     with
    | Error `Transient -> ()
    | Ok () -> Alcotest.fail "always-failing thunk returned Ok");
    List.rev !slept
  in
  let delays = run 42 in
  check Alcotest.int "one sleep per retry" 4 (List.length delays);
  check Alcotest.(list (float 1e-9)) "seeded jitter reproducible" delays (run 42);
  List.iter
    (fun d ->
      if d < 10. -. 1e-9 || d > 100. +. 1e-9 then
        Alcotest.failf "jittered delay %f outside [base, cap]" d)
    delays;
  if delays = [ 10.; 20.; 40.; 80. ] then
    Alcotest.fail "jitter reproduced the deterministic doubling exactly";
  (* the cap also clamps the un-jittered ladder *)
  let slept = ref [] in
  (match
     Retry.with_backoff ~retries:4 ~backoff_ms:10. ~max_backoff_ms:25.
       ~sleep:(fun ms -> slept := ms :: !slept)
       ~retryable:(fun _ -> true)
       (fun () -> Error `Transient)
   with
  | Error `Transient -> ()
  | Ok () -> Alcotest.fail "always-failing thunk returned Ok");
  check
    Alcotest.(list (float 1e-9))
    "doubling clamps at the cap" [ 10.; 20.; 25.; 25. ]
    (List.rev !slept)

(* --- Replica health -------------------------------------------------- *)

let health_window () =
  let h = Health.create ~window:4 () in
  let s0 = Health.snapshot h in
  check (Alcotest.float 0.) "fresh window is fully healthy" 1.0
    s0.Health.success_rate;
  Health.record h ~ok:false ~latency_ms:10.;
  Health.record h ~ok:false ~latency_ms:10.;
  Health.record h ~ok:true ~latency_ms:2.;
  Health.record h ~ok:true ~latency_ms:4.;
  let s = Health.snapshot h in
  check Alcotest.int "successes" 2 s.Health.successes;
  check Alcotest.int "failures" 2 s.Health.failures;
  check (Alcotest.float 1e-9) "success rate" 0.5 s.Health.success_rate;
  check (Alcotest.float 1e-9) "mean latency" 6.5 s.Health.mean_latency_ms;
  (* the window rolls: two more successes evict the two failures *)
  Health.record h ~ok:true ~latency_ms:2.;
  Health.record h ~ok:true ~latency_ms:2.;
  let s = Health.snapshot h in
  check (Alcotest.float 1e-9) "window rolled" 1.0 s.Health.success_rate;
  check Alcotest.int "observations keep counting" 6 s.Health.observations

let health_score_orders () =
  let window = 8 in
  let filled ~ok ~latency_ms =
    let h = Health.create ~window () in
    for _ = 1 to window do
      Health.record h ~ok ~latency_ms
    done;
    h
  in
  let good = filled ~ok:true ~latency_ms:1. in
  let bad = filled ~ok:false ~latency_ms:1. in
  check Alcotest.bool "healthy outranks failing" true
    (Health.score good > Health.score bad);
  let slow = filled ~ok:true ~latency_ms:500. in
  check Alcotest.bool "latency breaks success-rate ties" true
    (Health.score good > Health.score slow);
  (* ...but can never outweigh a real success-rate difference *)
  let flaky_fast = Health.create ~window () in
  for i = 1 to window do
    Health.record flaky_fast ~ok:(i > 1) ~latency_ms:0.01
  done;
  check Alcotest.bool "success rate dominates latency" true
    (Health.score slow > Health.score flaky_fast)

(* --- Circuit breaker ------------------------------------------------- *)

let breaker_config =
  {
    Circuit_breaker.failure_threshold = 3;
    reset_after_ms = 100.;
    half_open_probes = 1;
  }

let breaker_state b = Circuit_breaker.state_label (Circuit_breaker.state b)

let breaker_trips_and_recovers () =
  let now = ref 0. in
  let b =
    Circuit_breaker.create ~config:breaker_config ~clock:(fun () -> !now) ()
  in
  check Alcotest.bool "closed admits" true (Circuit_breaker.allow b);
  Circuit_breaker.record_failure b;
  Circuit_breaker.record_failure b;
  check Alcotest.string "below threshold stays closed" "closed"
    (breaker_state b);
  Circuit_breaker.record_failure b;
  check Alcotest.string "opens at the threshold" "open" (breaker_state b);
  check Alcotest.bool "open rejects" false (Circuit_breaker.allow b);
  now := 50.;
  check Alcotest.bool "cooldown not elapsed" false (Circuit_breaker.allow b);
  now := 100.;
  check Alcotest.bool "cooldown admits a probe" true (Circuit_breaker.allow b);
  check Alcotest.string "half-open" "half-open" (breaker_state b);
  check Alcotest.bool "probe budget bounds admissions" false
    (Circuit_breaker.allow b);
  Circuit_breaker.record_success b;
  check Alcotest.string "probe success closes" "closed" (breaker_state b);
  let st = Circuit_breaker.stats b in
  check Alcotest.int "one open counted" 1 st.Circuit_breaker.opens;
  check Alcotest.bool "rejections counted" true (st.Circuit_breaker.rejected >= 3)

let breaker_probe_failure_reopens () =
  let now = ref 0. in
  let b =
    Circuit_breaker.create ~config:breaker_config ~clock:(fun () -> !now) ()
  in
  for _ = 1 to 3 do
    Circuit_breaker.record_failure b
  done;
  now := 100.;
  check Alcotest.bool "probe admitted" true (Circuit_breaker.allow b);
  Circuit_breaker.record_failure b;
  check Alcotest.string "probe failure re-opens" "open" (breaker_state b);
  (* the cooldown restarted at the re-trip, not the original trip *)
  now := 150.;
  check Alcotest.bool "cooldown restarted" false (Circuit_breaker.allow b);
  now := 200.;
  check Alcotest.bool "second probe admitted" true (Circuit_breaker.allow b);
  Circuit_breaker.record_success b;
  check Alcotest.string "recovers" "closed" (breaker_state b)

let breaker_consecutive_only () =
  let b = Circuit_breaker.create ~config:breaker_config ~clock:(fun () -> 0.) () in
  for _ = 1 to 10 do
    Circuit_breaker.record_failure b;
    Circuit_breaker.record_success b
  done;
  check Alcotest.string "interleaved successes keep it closed" "closed"
    (breaker_state b);
  (* a late success while Open does not short-circuit the cooldown *)
  for _ = 1 to 3 do
    Circuit_breaker.record_failure b
  done;
  Circuit_breaker.record_success b;
  check Alcotest.string "late success while open is ignored" "open"
    (breaker_state b);
  check Alcotest.bool "still rejecting" false (Circuit_breaker.allow b)

(* --- Hedged attempts -------------------------------------------------- *)

(* [spawn] stands in for the pool: [run_now] is an idle worker that runs
   the job inline (so with delay 0 the hedge starts before the primary),
   [drop] is a saturated pool that never runs it. *)
let run_now f = f ()
let drop (_ : unit -> unit) = ()
let no_sleep (_ : float) = ()

let hedge_primary_wins () =
  let o =
    Hedge.run ~clock:(fun () -> 0.) ~sleep:no_sleep ~spawn:drop ~delay_ms:5.
      ~primary:(fun _ -> "primary")
      ~hedge:(fun _ -> "hedge")
      ()
  in
  check Alcotest.string "primary's answer" "primary" o.Hedge.value;
  check Alcotest.bool "primary won" true (o.Hedge.winner = Hedge.Primary);
  check Alcotest.bool "hedge never fired" false o.Hedge.fired

let hedge_fires_and_wins () =
  let budgets = ref [] in
  let make_budget () =
    let b = Budget.create () in
    budgets := !budgets @ [ b ];
    b
  in
  let o =
    Hedge.run ~clock:(fun () -> 0.) ~sleep:no_sleep ~make_budget ~spawn:run_now
      ~delay_ms:0.
      ~primary:(fun _ -> "primary")
      ~hedge:(fun _ -> "hedge")
      ()
  in
  check Alcotest.string "hedge answered first" "hedge" o.Hedge.value;
  check Alcotest.bool "hedge won" true (o.Hedge.winner = Hedge.Hedge);
  check Alcotest.bool "fired" true o.Hedge.fired;
  match !budgets with
  | [ primary; hedge ] ->
      check Alcotest.bool "loser's budget cancelled" false (Budget.alive primary);
      check Alcotest.bool "winner's budget lives" true (Budget.alive hedge)
  | bs -> Alcotest.failf "expected two budgets, got %d" (List.length bs)

let hedge_covers_primary_failure () =
  let o =
    Hedge.run ~clock:(fun () -> 0.) ~sleep:no_sleep ~spawn:run_now ~delay_ms:0.
      ~primary:(fun _ -> failwith "primary down")
      ~hedge:(fun _ -> "hedge")
      ()
  in
  check Alcotest.string "hedge rescued the request" "hedge" o.Hedge.value

let hedge_failure_never_preempts () =
  let o =
    Hedge.run ~clock:(fun () -> 0.) ~sleep:no_sleep ~spawn:run_now ~delay_ms:0.
      ~primary:(fun _ -> "primary")
      ~hedge:(fun _ -> failwith "hedge down")
      ()
  in
  check Alcotest.string "primary survives a failed hedge" "primary"
    o.Hedge.value;
  check Alcotest.bool "hedge was fired" true o.Hedge.fired;
  check Alcotest.bool "primary won" true (o.Hedge.winner = Hedge.Primary)

let hedge_both_fail_raises_primary () =
  (match
     Hedge.run ~clock:(fun () -> 0.) ~sleep:no_sleep ~spawn:run_now ~delay_ms:0.
       ~primary:(fun _ -> failwith "primary down")
       ~hedge:(fun _ -> failwith "hedge down")
       ()
   with
  | (_ : string Hedge.outcome) ->
      Alcotest.fail "both attempts failed yet run returned"
  | exception Failure msg ->
      check Alcotest.string "the primary's error surfaces" "primary down" msg);
  (* a queued-but-never-started hedge is revoked, not waited on *)
  match
    Hedge.run ~clock:(fun () -> 0.) ~sleep:no_sleep ~spawn:drop ~delay_ms:0.
      ~primary:(fun _ -> failwith "primary down")
      ~hedge:(fun _ -> "hedge")
      ()
  with
  | (_ : string Hedge.outcome) -> Alcotest.fail "expected the primary's error"
  | exception Failure msg -> check Alcotest.string "raises" "primary down" msg

let hedge_unlimited_budget_ok () =
  (* Budget.unlimited refuses cancellation; the loser-kill is skipped. *)
  let o =
    Hedge.run ~clock:(fun () -> 0.) ~sleep:no_sleep
      ~make_budget:(fun () -> Budget.unlimited)
      ~spawn:run_now ~delay_ms:0.
      ~primary:(fun _ -> "primary")
      ~hedge:(fun _ -> "hedge")
      ()
  in
  check Alcotest.string "uncancellable budgets tolerated" "hedge" o.Hedge.value

let suite =
  [
    ( "resilience.budget",
      [
        tc "tick allowance" `Quick budget_ticks;
        tc "cancellation" `Quick budget_cancel;
        tc "deadlines and unlimited" `Quick budget_deadline;
      ] );
    ( "resilience.anytime",
      [
        tc "partial is a prefix of full top-K" `Quick partial_prefix;
        tc "hybrid partial prefix" `Quick partial_prefix_hybrid;
        tc "complete modes raise" `Quick complete_raises;
        tc "outcome dispatch" `Quick outcome_dispatch;
      ] );
    ( "resilience.storage",
      [
        tc "transient IO heals via retry" `Quick io_transients_heal;
        tc "transient IO exhausts retries" `Quick io_transients_exhaust;
        tc "torn reads heal via checksum" `Quick torn_reads_heal;
        tc "persistent corruption detected" `Quick persistent_corruption;
        tc "truncation detected" `Quick truncation_detected;
        tc "garbage and legacy segments" `Quick garbage_classified;
      ] );
    ( "resilience.service",
      [
        tc "failures captured, workers survive" `Quick service_failures_captured;
        tc "deadlines degrade and time out" `Quick service_deadlines;
        tc "overload rejects, service recovers" `Quick overload_rejects;
        tc "fault spec parsing" `Quick fault_spec_parsing;
      ] );
    ( "resilience.retry",
      [
        tc "transient/permanent classification" `Quick retry_classification;
        tc "backoff growth and exhaustion" `Quick retry_backoff_growth;
        tc "jitter determinism" `Quick jitter_determinism;
        tc "jitter stays in the decorrelated envelope" `Quick jitter_bounds;
        tc "jittered and capped backoff" `Quick retry_jitter_backoff;
      ] );
    ( "resilience.health",
      [
        tc "rolling window" `Quick health_window;
        tc "routing score ordering" `Quick health_score_orders;
      ] );
    ( "resilience.breaker",
      [
        tc "trips, cools down, recovers" `Quick breaker_trips_and_recovers;
        tc "probe failure re-opens" `Quick breaker_probe_failure_reopens;
        tc "consecutive failures only" `Quick breaker_consecutive_only;
      ] );
    ( "resilience.hedge",
      [
        tc "primary wins on a saturated pool" `Quick hedge_primary_wins;
        tc "hedge fires and wins" `Quick hedge_fires_and_wins;
        tc "hedge covers a failed primary" `Quick hedge_covers_primary_failure;
        tc "hedge failure never preempts" `Quick hedge_failure_never_preempts;
        tc "both failing raises the primary's error" `Quick
          hedge_both_fail_raises_primary;
        tc "unlimited budgets tolerated" `Quick hedge_unlimited_budget_ok;
      ] );
  ]
