let () =
  Alcotest.run "xkeyword"
    (Test_xml.suite @ Test_encoding.suite @ Test_text.suite @ Test_storage.suite
   @ Test_score.suite @ Test_index.suite @ Test_core.suite
   @ Test_baselines.suite @ Test_datagen.suite @ Test_engine.suite
   @ Test_edge.suite @ Test_jstore.suite @ Test_workload.suite
   @ Test_exec.suite @ Test_resilience.suite @ Test_shard.suite
   @ Test_chaos.suite @ Test_rpc.suite @ Test_live.suite @ Test_heal.suite
   @ Test_lint.suite)
