(* Varint, column codec, Dewey codec and the B-tree size model. *)

open Xk_storage

let check = Alcotest.check
let tc = Alcotest.test_case

let varint_roundtrip () =
  let values = [ 0; 1; 127; 128; 300; 16_383; 16_384; 1_000_000; max_int ] in
  let buf = Buffer.create 64 in
  List.iter (Varint.write buf) values;
  let c = Varint.cursor (Buffer.contents buf) in
  List.iter (fun v -> check Alcotest.int "value" v (Varint.read c)) values;
  check Alcotest.bool "at end" true (Varint.at_end c)

let varint_signed () =
  let values = [ 0; -1; 1; -64; 64; -1_000_000; 1_000_000 ] in
  let buf = Buffer.create 64 in
  List.iter (Varint.write_signed buf) values;
  let c = Varint.cursor (Buffer.contents buf) in
  List.iter (fun v -> check Alcotest.int "signed" v (Varint.read_signed c)) values

let varint_negative () =
  let buf = Buffer.create 4 in
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Varint.write: negative") (fun () -> Varint.write buf (-1))

let varint_size () =
  check Alcotest.int "1 byte" 1 (Varint.size 127);
  check Alcotest.int "2 bytes" 2 (Varint.size 128);
  check Alcotest.int "3 bytes" 3 (Varint.size 16_384)

let truncated () =
  let buf = Buffer.create 4 in
  Varint.write buf 1_000_000;
  let s = Buffer.contents buf in
  let c = Varint.cursor (String.sub s 0 (String.length s - 1)) in
  Alcotest.check_raises "truncated"
    (Invalid_argument "Varint.read: truncated input") (fun () ->
      ignore (Varint.read c))

let runs_of_list l =
  Array.of_list (List.map (fun (v, c) -> { Column_codec.value = v; count = c }) l)

let column_roundtrip_cases () =
  let cases =
    [
      [];
      [ (1, 1) ];
      [ (1, 5); (2, 1); (9, 3) ];
      [ (5, 1); (6, 1); (7, 1); (8, 1) ];
      [ (1, 100); (2, 200); (1000, 1) ];
      List.init 500 (fun i -> ((i * 3) + 1, 1 + (i mod 4)));
    ]
  in
  List.iter
    (fun case ->
      let runs = runs_of_list case in
      let buf = Buffer.create 64 in
      let (_ : Column_codec.scheme) = Column_codec.encode buf runs in
      let decoded = Column_codec.decode (Varint.cursor (Buffer.contents buf)) in
      check Alcotest.bool "roundtrip" true (runs = decoded))
    cases

let column_scheme_choice () =
  (* Many duplicates -> RLE; all distinct -> Delta. *)
  check Alcotest.bool "rle" true
    (Column_codec.choose_scheme (runs_of_list [ (1, 10); (2, 20) ]) = Column_codec.Rle);
  check Alcotest.bool "delta" true
    (Column_codec.choose_scheme (runs_of_list [ (1, 1); (2, 1); (3, 1) ])
    = Column_codec.Delta)

let column_rle_compresses () =
  (* A highly duplicated column must be much smaller than raw entries. *)
  let runs = runs_of_list (List.init 50 (fun i -> (i + 1, 1000))) in
  let bytes = Column_codec.encoded_size runs in
  check Alcotest.bool "compressed below one byte per row" true (bytes < 50_000 / 8)

let column_codec_prop =
  QCheck.Test.make ~count:300 ~name:"column codec roundtrip (random runs)"
    QCheck.(pair (int_bound 1_000_000) (int_range 0 400))
    (fun (seed, n) ->
      let rng = Xk_datagen.Rng.create seed in
      let v = ref 0 in
      let runs =
        Array.init n (fun _ ->
            v := !v + 1 + Xk_datagen.Rng.int rng 50;
            { Column_codec.value = !v; count = 1 + Xk_datagen.Rng.int rng 20 })
      in
      let buf = Buffer.create 64 in
      let scheme =
        if Xk_datagen.Rng.bool rng then Column_codec.Delta else Column_codec.Rle
      in
      Column_codec.encode_with buf scheme runs;
      Column_codec.decode (Varint.cursor (Buffer.contents buf)) = runs)

let dewey_codec_roundtrip () =
  let ids =
    Array.of_list
      (List.map Xk_encoding.Dewey.of_string
         [ "1"; "1.1"; "1.1.4"; "1.1.5"; "1.2.3.4.5"; "1.10" ])
  in
  let buf = Buffer.create 64 in
  Dewey_codec.encode buf ids;
  let back = Dewey_codec.decode (Varint.cursor (Buffer.contents buf)) in
  check Alcotest.bool "roundtrip" true (ids = back)

let dewey_codec_prop =
  QCheck.Test.make ~count:200 ~name:"dewey codec roundtrip (random trees)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Xk_datagen.Rng.create seed in
      let d = Xk_datagen.Random_tree.generate rng in
      let lab = Xk_encoding.Labeling.label d in
      let ids =
        Array.init (Xk_encoding.Labeling.node_count lab) (fun i ->
            Xk_encoding.Labeling.dewey lab i)
      in
      let buf = Buffer.create 256 in
      Dewey_codec.encode buf ids;
      Dewey_codec.decode (Varint.cursor (Buffer.contents buf)) = ids)

let dewey_codec_compresses () =
  (* Shared prefixes must be stored once: a long chain of siblings under a
     deep path should cost far less than re-encoding full paths. *)
  let deep = Xk_encoding.Dewey.of_string "1.2.3.4.5.6.7.8" in
  let ids = Array.init 1000 (fun i -> Xk_encoding.Dewey.child deep (i + 1)) in
  let bytes = Dewey_codec.encoded_size ids in
  check Alcotest.bool "prefix sharing" true (bytes < 1000 * 6)

let crc32_vectors () =
  (* IEEE 802.3 check values. *)
  check Alcotest.int "empty" 0 (Crc32.string "");
  check Alcotest.int "check string" 0xCBF43926 (Crc32.string "123456789");
  check Alcotest.int "single byte" 0xD202EF8D (Crc32.string "\x00")

let crc32_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let n = String.length s in
  let split = n / 3 in
  let inc =
    Crc32.update (Crc32.update 0 s ~pos:0 ~len:split) s ~pos:split
      ~len:(n - split)
  in
  check Alcotest.int "incremental = one-shot" (Crc32.string s) inc;
  check Alcotest.int "sub window" (Crc32.string "quick")
    (Crc32.sub s ~pos:4 ~len:5)

let crc32_detects_flips () =
  let s = Bytes.of_string (String.init 256 Char.chr) in
  let reference = Crc32.string (Bytes.to_string s) in
  for i = 0 to Bytes.length s - 1 do
    let orig = Bytes.get s i in
    Bytes.set s i (Char.chr (Char.code orig lxor 0x01));
    if Crc32.string (Bytes.to_string s) = reference then
      Alcotest.failf "single-bit flip at byte %d undetected" i;
    Bytes.set s i orig
  done

let btree_sizes () =
  let mk n = Array.init n (fun i -> Xk_encoding.Dewey.of_string (Printf.sprintf "1.%d.2" (i + 1))) in
  let postings = [ ("alpha", mk 1000); ("beta", mk 10) ] in
  let composite = Btree_sim.composite_btree_size postings in
  let per_list = Btree_sim.per_list_btree_size postings in
  check Alcotest.bool "composite dominated by big term" true (composite > 1000 * 10);
  (* The B+-tree must cost more than the raw prefix-compressed list but not
     orders of magnitude more. *)
  let raw = Array.fold_left (fun a d -> a + Btree_sim.dewey_bytes d) 0 (snd (List.hd postings)) in
  check Alcotest.bool "per-list above raw bytes" true (per_list > raw);
  check Alcotest.bool "per-list within 10x of raw" true (per_list < 10 * raw);
  (* The composite B-tree repeats keyword bytes per occurrence: doubling
     the long list should roughly double the size. *)
  let composite2 = Btree_sim.composite_btree_size [ ("alpha", mk 2000); ("beta", mk 10) ] in
  check Alcotest.bool "grows linearly" true
    (float_of_int composite2 /. float_of_int composite > 1.6)

let suite =
  [
    ( "storage",
      [
        tc "varint roundtrip" `Quick varint_roundtrip;
        tc "varint signed" `Quick varint_signed;
        tc "varint negative rejected" `Quick varint_negative;
        tc "varint size" `Quick varint_size;
        tc "varint truncated input" `Quick truncated;
        tc "column codec roundtrips" `Quick column_roundtrip_cases;
        tc "column scheme choice" `Quick column_scheme_choice;
        tc "rle compresses duplicates" `Quick column_rle_compresses;
        tc "dewey codec roundtrip" `Quick dewey_codec_roundtrip;
        tc "dewey codec shares prefixes" `Quick dewey_codec_compresses;
        tc "crc32 known vectors" `Quick crc32_vectors;
        tc "crc32 incremental" `Quick crc32_incremental;
        tc "crc32 detects bit flips" `Quick crc32_detects_flips;
        tc "btree size model" `Quick btree_sizes;
        QCheck_alcotest.to_alcotest column_codec_prop;
        QCheck_alcotest.to_alcotest dewey_codec_prop;
      ] );
  ]
