(* Varint, column codec, Dewey codec and the B-tree size model. *)

open Xk_storage

let check = Alcotest.check
let tc = Alcotest.test_case

let varint_roundtrip () =
  let values = [ 0; 1; 127; 128; 300; 16_383; 16_384; 1_000_000; max_int ] in
  let buf = Buffer.create 64 in
  List.iter (Varint.write buf) values;
  let c = Varint.cursor (Buffer.contents buf) in
  List.iter (fun v -> check Alcotest.int "value" v (Varint.read c)) values;
  check Alcotest.bool "at end" true (Varint.at_end c)

let varint_signed () =
  let values = [ 0; -1; 1; -64; 64; -1_000_000; 1_000_000 ] in
  let buf = Buffer.create 64 in
  List.iter (Varint.write_signed buf) values;
  let c = Varint.cursor (Buffer.contents buf) in
  List.iter (fun v -> check Alcotest.int "signed" v (Varint.read_signed c)) values

let varint_negative () =
  let buf = Buffer.create 4 in
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Varint.write: negative") (fun () -> Varint.write buf (-1))

let varint_size () =
  check Alcotest.int "1 byte" 1 (Varint.size 127);
  check Alcotest.int "2 bytes" 2 (Varint.size 128);
  check Alcotest.int "3 bytes" 3 (Varint.size 16_384)

let truncated () =
  let buf = Buffer.create 4 in
  Varint.write buf 1_000_000;
  let s = Buffer.contents buf in
  let c = Varint.cursor (String.sub s 0 (String.length s - 1)) in
  Alcotest.check_raises "truncated"
    (Invalid_argument "Varint.read: truncated input") (fun () ->
      ignore (Varint.read c))

let runs_of_list l =
  Array.of_list (List.map (fun (v, c) -> { Column_codec.value = v; count = c }) l)

let column_roundtrip_cases () =
  let cases =
    [
      [];
      [ (1, 1) ];
      [ (1, 5); (2, 1); (9, 3) ];
      [ (5, 1); (6, 1); (7, 1); (8, 1) ];
      [ (1, 100); (2, 200); (1000, 1) ];
      List.init 500 (fun i -> ((i * 3) + 1, 1 + (i mod 4)));
    ]
  in
  List.iter
    (fun case ->
      let runs = runs_of_list case in
      let buf = Buffer.create 64 in
      let (_ : Column_codec.scheme) = Column_codec.encode buf runs in
      let decoded = Column_codec.decode (Varint.cursor (Buffer.contents buf)) in
      check Alcotest.bool "roundtrip" true (runs = decoded))
    cases

let column_scheme_choice () =
  (* Many duplicates -> RLE; all distinct -> Delta. *)
  check Alcotest.bool "rle" true
    (Column_codec.choose_scheme (runs_of_list [ (1, 10); (2, 20) ]) = Column_codec.Rle);
  check Alcotest.bool "delta" true
    (Column_codec.choose_scheme (runs_of_list [ (1, 1); (2, 1); (3, 1) ])
    = Column_codec.Delta)

let column_rle_compresses () =
  (* A highly duplicated column must be much smaller than raw entries. *)
  let runs = runs_of_list (List.init 50 (fun i -> (i + 1, 1000))) in
  let bytes = Column_codec.encoded_size runs in
  check Alcotest.bool "compressed below one byte per row" true (bytes < 50_000 / 8)

let column_codec_prop =
  QCheck.Test.make ~count:300 ~name:"column codec roundtrip (random runs)"
    QCheck.(pair (int_bound 1_000_000) (int_range 0 400))
    (fun (seed, n) ->
      let rng = Xk_datagen.Rng.create seed in
      let v = ref 0 in
      let runs =
        Array.init n (fun _ ->
            v := !v + 1 + Xk_datagen.Rng.int rng 50;
            { Column_codec.value = !v; count = 1 + Xk_datagen.Rng.int rng 20 })
      in
      let buf = Buffer.create 64 in
      let scheme =
        if Xk_datagen.Rng.bool rng then Column_codec.Delta else Column_codec.Rle
      in
      Column_codec.encode_with buf scheme runs;
      Column_codec.decode (Varint.cursor (Buffer.contents buf)) = runs)

let dewey_codec_roundtrip () =
  let ids =
    Array.of_list
      (List.map Xk_encoding.Dewey.of_string
         [ "1"; "1.1"; "1.1.4"; "1.1.5"; "1.2.3.4.5"; "1.10" ])
  in
  let buf = Buffer.create 64 in
  Dewey_codec.encode buf ids;
  let back = Dewey_codec.decode (Varint.cursor (Buffer.contents buf)) in
  check Alcotest.bool "roundtrip" true (ids = back)

let dewey_codec_prop =
  QCheck.Test.make ~count:200 ~name:"dewey codec roundtrip (random trees)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Xk_datagen.Rng.create seed in
      let d = Xk_datagen.Random_tree.generate rng in
      let lab = Xk_encoding.Labeling.label d in
      let ids =
        Array.init (Xk_encoding.Labeling.node_count lab) (fun i ->
            Xk_encoding.Labeling.dewey lab i)
      in
      let buf = Buffer.create 256 in
      Dewey_codec.encode buf ids;
      Dewey_codec.decode (Varint.cursor (Buffer.contents buf)) = ids)

let dewey_codec_compresses () =
  (* Shared prefixes must be stored once: a long chain of siblings under a
     deep path should cost far less than re-encoding full paths. *)
  let deep = Xk_encoding.Dewey.of_string "1.2.3.4.5.6.7.8" in
  let ids = Array.init 1000 (fun i -> Xk_encoding.Dewey.child deep (i + 1)) in
  let bytes = Dewey_codec.encoded_size ids in
  check Alcotest.bool "prefix sharing" true (bytes < 1000 * 6)

let crc32_vectors () =
  (* IEEE 802.3 check values. *)
  check Alcotest.int "empty" 0 (Crc32.string "");
  check Alcotest.int "check string" 0xCBF43926 (Crc32.string "123456789");
  check Alcotest.int "single byte" 0xD202EF8D (Crc32.string "\x00")

let crc32_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let n = String.length s in
  let split = n / 3 in
  let inc =
    Crc32.update (Crc32.update 0 s ~pos:0 ~len:split) s ~pos:split
      ~len:(n - split)
  in
  check Alcotest.int "incremental = one-shot" (Crc32.string s) inc;
  check Alcotest.int "sub window" (Crc32.string "quick")
    (Crc32.sub s ~pos:4 ~len:5)

let crc32_detects_flips () =
  let s = Bytes.of_string (String.init 256 Char.chr) in
  let reference = Crc32.string (Bytes.to_string s) in
  for i = 0 to Bytes.length s - 1 do
    let orig = Bytes.get s i in
    Bytes.set s i (Char.chr (Char.code orig lxor 0x01));
    if Crc32.string (Bytes.to_string s) = reference then
      Alcotest.failf "single-bit flip at byte %d undetected" i;
    Bytes.set s i orig
  done

let btree_sizes () =
  let mk n = Array.init n (fun i -> Xk_encoding.Dewey.of_string (Printf.sprintf "1.%d.2" (i + 1))) in
  let postings = [ ("alpha", mk 1000); ("beta", mk 10) ] in
  let composite = Btree_sim.composite_btree_size postings in
  let per_list = Btree_sim.per_list_btree_size postings in
  check Alcotest.bool "composite dominated by big term" true (composite > 1000 * 10);
  (* The B+-tree must cost more than the raw prefix-compressed list but not
     orders of magnitude more. *)
  let raw = Array.fold_left (fun a d -> a + Btree_sim.dewey_bytes d) 0 (snd (List.hd postings)) in
  check Alcotest.bool "per-list above raw bytes" true (per_list > raw);
  check Alcotest.bool "per-list within 10x of raw" true (per_list < 10 * raw);
  (* The composite B-tree repeats keyword bytes per occurrence: doubling
     the long list should roughly double the size. *)
  let composite2 = Btree_sim.composite_btree_size [ ("alpha", mk 2000); ("beta", mk 10) ] in
  check Alcotest.bool "grows linearly" true
    (float_of_int composite2 /. float_of_int composite > 1.6)

(* --- mmap ------------------------------------------------------------ *)

let with_tmp_file data f =
  let path = Filename.temp_file "xk_mmap" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc data;
      close_out oc;
      f path)

let mmap_accessors () =
  let data = "\x01\x02\x03\x04\x05\x06\x07\x08hello" in
  with_tmp_file data (fun path ->
      match Mmap.map path with
      | Error e -> Alcotest.failf "map: %s" (Mmap.error_message e)
      | Ok m ->
          check Alcotest.int "size" (String.length data) (Mmap.size m);
          check Alcotest.string "path" path (Mmap.path m);
          check Alcotest.int "u8" 1 (Mmap.u8 m 0);
          check Alcotest.int "u8 at" 8 (Mmap.u8 m 7);
          check Alcotest.int "u32" 0x04030201 (Mmap.u32 m 0);
          check Alcotest.int "u32 shifted" 0x05040302 (Mmap.u32 m 1);
          check Alcotest.int "u64" 0x0807060504030201 (Mmap.u64 m 0);
          check Alcotest.string "sub_string" "hello"
            (Mmap.sub_string m ~pos:8 ~len:5);
          check Alcotest.int "crc over window"
            (Crc32.sub data ~pos:8 ~len:5)
            (Mmap.crc32 m ~pos:8 ~len:5);
          check Alcotest.int "incremental crc" (Crc32.string data)
            (Mmap.crc32_update (Mmap.crc32 m ~pos:0 ~len:4) m ~pos:4
               ~len:(String.length data - 4)))

let mmap_bounds_and_close () =
  let data = String.init 16 Char.chr in
  with_tmp_file data (fun path ->
      match Mmap.map path with
      | Error e -> Alcotest.failf "map: %s" (Mmap.error_message e)
      | Ok m ->
          (match Mmap.u32 m 14 with
          | _ -> Alcotest.fail "out-of-bounds u32 not rejected"
          | exception Mmap.Fault (Mmap.Bounds _) -> ());
          (match Mmap.sub_string m ~pos:(-1) ~len:2 with
          | _ -> Alcotest.fail "negative pos not rejected"
          | exception Mmap.Fault (Mmap.Bounds _) -> ());
          check Alcotest.bool "open before close" false (Mmap.is_closed m);
          Mmap.close m;
          Mmap.close m (* idempotent *);
          check Alcotest.bool "closed" true (Mmap.is_closed m);
          match Mmap.u8 m 0 with
          | _ -> Alcotest.fail "closed handle still readable"
          | exception Mmap.Fault (Mmap.Closed _) -> ())

let mmap_u64_overflow () =
  (* A stored 64-bit value whose top bits exceed the host's 63-bit int
     cannot be a valid offset and must fault, not wrap. *)
  let data = "\x00\x00\x00\x00\x00\x00\x00\xff" in
  with_tmp_file data (fun path ->
      match Mmap.map path with
      | Error e -> Alcotest.failf "map: %s" (Mmap.error_message e)
      | Ok m -> (
          match Mmap.u64 m 0 with
          | v -> Alcotest.failf "overflowing u64 decoded to %d" v
          | exception Mmap.Fault (Mmap.Bounds _) -> ()))

let mmap_failures () =
  (match Mmap.map "/nonexistent/xk/segment.seg" with
  | Ok _ -> Alcotest.fail "mapped a missing file"
  | Error (Mmap.Map_failed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Mmap.error_message e));
  with_tmp_file "" (fun path ->
      match Mmap.map path with
      | Ok _ -> Alcotest.fail "mapped an empty file"
      | Error (Mmap.Map_failed _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Mmap.error_message e))

(* --- v2 segment compatibility fixture -------------------------------- *)

(* Literal bytes of an Index_io v2 segment as written by the previous
   release's writer, committed so the channel load path keeps accepting
   historical segments byte-for-byte even now that [save] writes v3.
   Generated from [v2_fixture_xml] with [Index.build] + the v2 writer. *)
let v2_fixture_xml =
  "<bib><book year=\"2010\"><title>top k keyword search</title><author>chen</author></book><book><title>xml databases keyword</title></book></bib>"

let v2_fixture_bytes =
  "\x58\x4b\x49\x44\x58\x30\x30\x32\x02\x44\xad\xd1\xce\x81\x05\x09\x07\x04\x32\x30\x31\x30\x01\x01\x01\x03\x74\x6f\x70\x01\x03\x01\x07\x6b\x65\x79\x77\x6f\x72\x64\x02\x03\x05\x01\x01\x06\x73\x65\x61\x72\x63\x68\x01\x03\x01\x04\x63\x68\x65\x6e\x01\x05\x01\x03\x78\x6d\x6c\x01\x08\x01\x09\x64\x61\x74\x61\x62\x61\x73\x65\x73\x01\x08\x01"

let v2_fixture_loads () =
  let doc = Xk_xml.Xml_parser.parse_string_exn v2_fixture_xml in
  let label = Xk_encoding.Labeling.label doc in
  with_tmp_file v2_fixture_bytes (fun path ->
      check
        Alcotest.(option int)
        "sniffs as v2" (Some 2)
        (Xk_index.Index_io.format_version path);
      match Xk_index.Index_io.load_result label path with
      | Error e ->
          Alcotest.failf "fixture load: %s"
            (Xk_index.Index_io.load_error_message e)
      | Ok idx ->
          let fresh = Xk_index.Index.build label in
          check Alcotest.int "term count"
            (Xk_index.Index.term_count fresh)
            (Xk_index.Index.term_count idx);
          for id = 0 to Xk_index.Index.term_count fresh - 1 do
            let w = Xk_index.Index.term fresh id in
            match Xk_index.Index.term_id idx w with
            | None -> Alcotest.failf "term %S missing from fixture" w
            | Some fid ->
                let n1, t1 = Xk_index.Index.raw_rows fresh id in
                let n2, t2 = Xk_index.Index.raw_rows idx fid in
                check Alcotest.(array int) ("nodes of " ^ w) n1 n2;
                check Alcotest.(array int) ("tfs of " ^ w) t1 t2;
                let s1 = Xk_index.Index.local_scores fresh id in
                let s2 = Xk_index.Index.local_scores idx fid in
                check Alcotest.bool
                  ("scores of " ^ w ^ " bit-identical")
                  true (s1 = s2)
          done)

let v2_writer_stable () =
  (* [save_v2] must keep producing exactly the committed bytes: the
     fixture pins the writer, not just the reader. *)
  let doc = Xk_xml.Xml_parser.parse_string_exn v2_fixture_xml in
  let label = Xk_encoding.Labeling.label doc in
  let idx = Xk_index.Index.build label in
  let path = Filename.temp_file "xk_v2" ".seg" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Xk_index.Index_io.save_v2 idx path;
      let ic = open_in_bin path in
      let data =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check Alcotest.int "fixture length"
        (String.length v2_fixture_bytes)
        (String.length data);
      check Alcotest.bool "bytes identical" true (data = v2_fixture_bytes))

let suite =
  [
    ( "storage",
      [
        tc "varint roundtrip" `Quick varint_roundtrip;
        tc "varint signed" `Quick varint_signed;
        tc "varint negative rejected" `Quick varint_negative;
        tc "varint size" `Quick varint_size;
        tc "varint truncated input" `Quick truncated;
        tc "column codec roundtrips" `Quick column_roundtrip_cases;
        tc "column scheme choice" `Quick column_scheme_choice;
        tc "rle compresses duplicates" `Quick column_rle_compresses;
        tc "dewey codec roundtrip" `Quick dewey_codec_roundtrip;
        tc "dewey codec shares prefixes" `Quick dewey_codec_compresses;
        tc "crc32 known vectors" `Quick crc32_vectors;
        tc "crc32 incremental" `Quick crc32_incremental;
        tc "crc32 detects bit flips" `Quick crc32_detects_flips;
        tc "btree size model" `Quick btree_sizes;
        QCheck_alcotest.to_alcotest column_codec_prop;
        QCheck_alcotest.to_alcotest dewey_codec_prop;
      ] );
    ( "storage.mmap",
      [
        tc "accessors" `Quick mmap_accessors;
        tc "bounds and close faults" `Quick mmap_bounds_and_close;
        tc "u64 overflow rejected" `Quick mmap_u64_overflow;
        tc "map failures are values" `Quick mmap_failures;
      ] );
    ( "storage.v2-fixture",
      [
        tc "committed v2 segment loads" `Quick v2_fixture_loads;
        tc "v2 writer reproduces fixture bytes" `Quick v2_writer_stable;
      ] );
  ]
